#!/usr/bin/env bash
# Build and run the Table VIII cache sweep plus the resolver-pool sweep,
# the crash-recovery bench, the event-store replay bench, the shard
# scaling sweep, and the transport hop bench, checking that the
# machine-readable BENCH_*.json files landed.
#
# The resolver sweep pays the modeled fid2path cost for real (RealClock
# nanosleeps), so this takes a few seconds of wall time per row.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target bench_table8_cache_sweep bench_recovery bench_store bench_shards bench_transport bench_fanout bench_nsindex

./build/bench/bench_table8_cache_sweep

if [[ ! -s BENCH_resolution.json ]]; then
  echo "FAIL: bench did not write BENCH_resolution.json" >&2
  exit 1
fi
echo "OK: BENCH_resolution.json written."

# Recovery: baseline-vs-faulted pipeline plus aggregator restart latency.
# Exits nonzero if any run loses or duplicates events.
./build/bench/bench_recovery

if [[ ! -s BENCH_recovery.json ]]; then
  echo "FAIL: bench did not write BENCH_recovery.json" >&2
  exit 1
fi
echo "OK: BENCH_recovery.json written."

# Event store: replay throughput and resident bytes vs store size, with
# the tail cache on, off, and effectively unbounded (old in-memory path).
# Exits nonzero if replay is not byte-identical across configurations,
# the cache bound is violated, or disk replay falls below half the
# in-memory throughput.
./build/bench/bench_store

if [[ ! -s BENCH_store.json ]]; then
  echo "FAIL: bench did not write BENCH_store.json" >&2
  exit 1
fi
echo "OK: BENCH_store.json written."

# Shard scaling: 1/2/4 aggregator shards over the same workload, with
# the modeled per-batch durable-commit latency the shards overlap.
# Exits nonzero if any run loses events or 4 shards scale below 3.0x.
./build/bench/bench_shards

if [[ ! -s BENCH_shards.json ]]; then
  echo "FAIL: bench did not write BENCH_shards.json" >&2
  exit 1
fi
echo "OK: BENCH_shards.json written."

# Transport: the zero-copy FrameRef hop over in-proc/shm/TCP against the
# copy-per-hop msgq baseline (the old BM_BatchedHop loop). Exits nonzero
# if the in-proc or shm hop falls below 2x the baseline at batch 64, any
# in-proc/shm hop copies a frame payload, or the one-serialization-per-
# event codec invariant breaks.
./build/bench/bench_transport

if [[ ! -s BENCH_transport.json ]]; then
  echo "FAIL: bench did not write BENCH_transport.json" >&2
  exit 1
fi
echo "OK: BENCH_transport.json written."

# Fan-out: shared subscription index vs per-consumer matching across a
# 10 -> 10k subscriber sweep at fixed matched volume, plus the hub's
# stalled-consumer isolation run. Exits nonzero if the index cost at 10k
# subscribers exceeds 2x the 10-subscriber cost or a stalled sibling
# cuts healthy throughput below 0.9x baseline.
./build/bench/bench_fanout

if [[ ! -s BENCH_fanout.json ]]; then
  echo "FAIL: bench did not write BENCH_fanout.json" >&2
  exit 1
fi
echo "OK: BENCH_fanout.json written."

# Namespace index: applier fold throughput, query latency at 1x vs 10x
# event volume over a fixed path population (must stay flat — queries
# hit materialized state, never the stream), and snapshot + delta
# restart cost vs delta size. Exits nonzero if any query's latency at
# 10x events exceeds 3x its 1x latency.
./build/bench/bench_nsindex

if [[ ! -s BENCH_nsindex.json ]]; then
  echo "FAIL: bench did not write BENCH_nsindex.json" >&2
  exit 1
fi
echo "OK: BENCH_nsindex.json written."
