#!/usr/bin/env bash
# Build and run the Table VIII cache sweep plus the resolver-pool sweep
# and the crash-recovery bench, checking that the machine-readable
# BENCH_resolution.json / BENCH_recovery.json landed.
#
# The resolver sweep pays the modeled fid2path cost for real (RealClock
# nanosleeps), so this takes a few seconds of wall time per row.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target bench_table8_cache_sweep bench_recovery

./build/bench/bench_table8_cache_sweep

if [[ ! -s BENCH_resolution.json ]]; then
  echo "FAIL: bench did not write BENCH_resolution.json" >&2
  exit 1
fi
echo "OK: BENCH_resolution.json written."

# Recovery: baseline-vs-faulted pipeline plus aggregator restart latency.
# Exits nonzero if any run loses or duplicates events.
./build/bench/bench_recovery

if [[ ! -s BENCH_recovery.json ]]; then
  echo "FAIL: bench did not write BENCH_recovery.json" >&2
  exit 1
fi
echo "OK: BENCH_recovery.json written."
