// fsmonitorwait: an inotifywait-style command-line monitor built on
// FSMonitor.
//
// Unlike inotifywait it is recursive by default (FSMonitor implements
// recursion as an interface-layer filtering rule instead of per-
// directory watchers, Section V-C1), standardizes output, and can render
// any supported dialect.
//
// Usage:
//   fsmonitorwait <path> [options]
//     recursive=true|false     watch the whole subtree (default true)
//     dialect=inotify|kqueue|fsevents|filesystemwatcher
//     pattern=<glob>           only events whose name matches
//     kinds=CREATE,MODIFY,...  only these event kinds
//     seconds=N                exit after N seconds (default: run forever)
//     count=N                  exit after N events
#include <atomic>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <thread>

#include "src/common/config.hpp"
#include "src/common/string_util.hpp"
#include "src/core/monitor.hpp"

using namespace fsmon;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  common::Config config;
  const auto positional = config.parse_args(argc, argv);
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: fsmonitorwait <path> [recursive=bool] [dialect=name]\n"
                 "                     [pattern=glob] [kinds=A,B] [seconds=N] [count=N]\n");
    return 2;
  }

  core::register_builtin_dsis();
  core::MonitorOptions options;
  options.storage.root = positional[0];
  options.storage.params.set("recursive", config.get_or("recursive", "true"));
  options.output_dialect =
      core::parse_dialect(config.get_or("dialect", "inotify")).value_or(core::Dialect::kInotify);

  core::FilterRule rule;
  rule.recursive = config.get_bool("recursive", true);
  rule.name_pattern = config.get_or("pattern", "");
  if (auto kinds = config.get("kinds")) {
    std::set<core::EventKind> set;
    for (const auto& name : common::split(*kinds, ',')) {
      if (auto kind = core::parse_event_kind(std::string(common::trim(name)))) {
        set.insert(*kind);
      } else {
        std::fprintf(stderr, "unknown event kind: %s\n", name.c_str());
        return 2;
      }
    }
    rule.kinds = std::move(set);
  }

  const auto max_events = static_cast<std::uint64_t>(config.get_int("count", 0));
  const auto seconds = config.get_int("seconds", 0);

  core::FsMonitor monitor(options);
  std::mutex mu;
  std::atomic<std::uint64_t> printed{0};
  monitor.subscribe(rule, [&](const std::vector<core::StdEvent>& batch) {
    std::lock_guard lock(mu);
    for (const auto& event : batch) {
      std::printf("%s\n", monitor.render_line(event).c_str());
      std::fflush(stdout);
      if (max_events > 0 && printed.fetch_add(1) + 1 >= max_events) g_stop.store(true);
    }
  });

  if (auto status = monitor.start(); !status.is_ok()) {
    std::fprintf(stderr, "fsmonitorwait: %s\n", status.to_string().c_str());
    return 1;
  }
  std::fprintf(stderr, "fsmonitorwait: watching %s via %s (Ctrl-C to stop)\n",
               positional[0].c_str(), monitor.dsi_name().c_str());
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (!g_stop.load()) {
    if (seconds > 0 && std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  monitor.stop();
  return 0;
}
