// nsquery: answer namespace queries from a persisted event store
// without touching (or even having) the monitored file system.
//
// Usage:
//   nsquery <store_dir> [shards=N] [snapshot.dir=DIR] <command> [args]
//
// Commands:
//   lookup <path>        attrs + rename chain for one path
//   ls <path>            direct children of a directory
//   top [k]              k most active directories (default 10)
//   chain <path>         rename history, oldest name first
//   dump                 full index state (debugging)
//
// The store directory is the aggregator's (`shard<k>` suffixes are
// derived when shards>1). With `snapshot.dir=` the newest valid
// snapshot seeds the index and only the delta above its cursor is
// folded — the same O(delta) path IndexConsumer uses at restart.
#include <cstdio>
#include <string>

#include "src/common/config.hpp"
#include "src/nsindex/index_consumer.hpp"

using namespace fsmon;

namespace {

void print_node(const std::string& path, const nsindex::NodeView& node) {
  std::printf("%s  %s%s  node=%llu  events=%llu  create_id=%llu  last_id=%llu\n",
              path.c_str(), node.is_dir ? "dir" : "file",
              node.implicit ? " (implicit)" : "",
              static_cast<unsigned long long>(node.node_id),
              static_cast<unsigned long long>(node.events),
              static_cast<unsigned long long>(node.create_event),
              static_cast<unsigned long long>(node.last_event));
  for (const auto& hop : node.chain)
    std::printf("  was %s (until event %llu)\n", hop.old_path.c_str(),
                static_cast<unsigned long long>(hop.event_id));
}

int usage() {
  std::fprintf(stderr,
               "usage: nsquery <store_dir> [shards=N] [snapshot.dir=DIR] "
               "<lookup|ls|top|chain|dump> [args]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  common::Config config;
  const auto positional = config.parse_args(argc, argv);
  if (positional.size() < 2) return usage();
  const std::string& store_dir = positional[0];
  const std::string& command = positional[1];
  const auto shards = static_cast<std::size_t>(config.get_int("shards", 1));

  msgq::Bus bus;
  scalable::ShardedAggregatorOptions options;
  options.shards = shards;
  eventstore::EventStoreOptions store;
  store.directory = store_dir;
  options.aggregator.store = store;
  auto& clock = common::RealClock::instance();
  // Constructing the tier recovers each shard's store from disk; we
  // never start() it — nsquery only reads the merged replay.
  scalable::ShardedAggregator aggregator(bus, "nsquery", options, clock);

  nsindex::NamespaceIndex index;
  const std::string snapshot_dir = config.get_or("snapshot.dir", "");
  if (!snapshot_dir.empty()) {
    nsindex::SnapshotStore snapshots({snapshot_dir, 2, nullptr});
    auto recovered = snapshots.recover(index);
    if (!recovered.is_ok()) {
      std::fprintf(stderr, "snapshot recovery failed: %s\n",
                   recovered.status().to_string().c_str());
      return 1;
    }
  }
  // Fold the delta above the (possibly zero) snapshot cursor.
  scalable::VectorCursor cursor = index.applied_cursor();
  cursor.ensure(aggregator.shard_count());
  for (;;) {
    auto events = aggregator.events_since(cursor, 4096);
    if (!events.is_ok()) {
      std::fprintf(stderr, "store replay failed: %s\n",
                   events.status().to_string().c_str());
      return 1;
    }
    if (events.value().empty()) break;
    for (const auto& event : events.value()) {
      const std::size_t shard =
          shards == 1 ? 0 : aggregator.map().shard_of(event.source);
      index.apply(shard, event);
    }
    if (events.value().size() < 4096) break;
  }
  std::fprintf(stderr, "# folded %llu events, %zu nodes\n",
               static_cast<unsigned long long>(index.applied_seq()),
               index.node_count());

  if (command == "lookup" || command == "chain") {
    if (positional.size() < 3) return usage();
    auto node = index.lookup(positional[2]);
    if (!node.has_value()) {
      std::fprintf(stderr, "not found: %s\n", positional[2].c_str());
      return 1;
    }
    if (command == "lookup") {
      print_node(positional[2], *node);
    } else {
      auto chain = index.resolve_rename_chain(positional[2]);
      if (chain.is_ok()) {
        for (const auto& hop : chain.value().hops)
          std::printf("%s (until event %llu)\n", hop.old_path.c_str(),
                      static_cast<unsigned long long>(hop.event_id));
        std::printf("%s (current)\n", positional[2].c_str());
      }
    }
    return 0;
  }
  if (command == "ls") {
    if (positional.size() < 3) return usage();
    auto listing = index.list_dir(positional[2]);
    if (!listing.is_ok()) {
      std::fprintf(stderr, "ls failed: %s\n",
                   listing.status().to_string().c_str());
      return 1;
    }
    for (const auto& entry : listing.value())
      std::printf("%s%s\n", entry.name.c_str(), entry.is_dir ? "/" : "");
    return 0;
  }
  if (command == "top") {
    const std::size_t k =
        positional.size() > 2 ? std::stoul(positional[2]) : 10;
    for (const auto& dir : index.activity_topk(k))
      std::printf("%8llu  %s\n", static_cast<unsigned long long>(dir.events),
                  dir.path.c_str());
    return 0;
  }
  if (command == "dump") {
    std::printf("%s", index.debug_dump().c_str());
    return 0;
  }
  return usage();
}
