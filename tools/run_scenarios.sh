#!/usr/bin/env bash
# Sweep the declarative scenario matrix (scenarios/*.scenario) through
# the run_scenario binary and summarize per-scenario pass/fail plus
# throughput. Output is machine-readable:
#
#   RESULT scenario=<name> status=PASS|FAIL events=<n> events_per_sec=<r> ...
#   MOUNT scenario=<name> mount=<m> backend=<b> emitted=<n> received=<n> ...
#   SWEEP total=<n> passed=<n> failed=<n>
#
# Usage:
#   tools/run_scenarios.sh                # sweep every scenarios/*.scenario
#   tools/run_scenarios.sh --smoke        # CI subset (fast, fault-injected)
#   tools/run_scenarios.sh foo.scenario   # run specific files
#   FSMON_CHAOS_SEED=7 tools/run_scenarios.sh   # override fault seeds
set -uo pipefail

cd "$(dirname "$0")/.."

# The smoke subset keeps CI fast while still covering one federated
# topology (three backend families) under the chaos babysitter, the TCP
# carrier with drops, and the localfs dialect matrix.
smoke_set=(
  scenarios/smoke_federated_mix.scenario
  scenarios/fed_tcp_drop.scenario
  scenarios/localfs_dialects.scenario
)

files=()
for arg in "$@"; do
  case "$arg" in
    --smoke) files+=("${smoke_set[@]}") ;;
    --help|-h)
      echo "usage: $0 [--smoke] [file.scenario ...]"
      exit 0
      ;;
    *) files+=("$arg") ;;
  esac
done
if (( ${#files[@]} == 0 )); then
  files=(scenarios/*.scenario)
fi

if [[ ! -x build/tools/run_scenario ]]; then
  cmake -B build -S . > /dev/null
  cmake --build build -j "$(nproc)" --target run_scenario > /dev/null
fi

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

failed=0
total=0
for file in "${files[@]}"; do
  total=$((total + 1))
  if ! timeout 300 ./build/tools/run_scenario "$file" >> "$out" 2>&1; then
    failed=$((failed + 1))
  fi
done

cat "$out"
passed=$((total - failed))
echo "SWEEP total=$total passed=$passed failed=$failed"
(( failed == 0 ))
