#!/usr/bin/env bash
# Tier-1 verification: build, run the full test suite, then prove the
# observability story end to end — the instrumented quickstart pipeline
# must emit a metrics snapshot with a nonzero publish count.
#
# --tsan: additionally build a ThreadSanitizer configuration in
# build-tsan and run the concurrency-heavy suites (message queue,
# threaded pipeline, transport layer) plus the ctest `concurrency` label
# (resolver pool, reorder buffer, single-flight, sharded cache) under it.
#
# --asan: additionally build an AddressSanitizer configuration in
# build-asan and run the transport suites and the `concurrency` label
# under it.
#
# Both sanitizer passes also run the namespace-index suite (ctest label
# `nsindex`): the applier is queried from application threads while the
# consumer's delivery thread folds events into it, so it is
# concurrency-sensitive by construction.
#
# --chaos N: sweep the chaos verification suite (ctest label `chaos`)
# over fault-schedule seeds 1..N by exporting FSMON_CHAOS_SEED per run.
# Combined with --tsan/--asan the same sweep also runs in the sanitizer
# builds.
#
# --scenarios: additionally run the scenario smoke subset
# (tools/run_scenarios.sh --smoke): a federated three-backend topology
# under the chaos babysitter, the TCP carrier with frame drops, and the
# localfs dialect matrix. See docs/SCENARIOS.md.
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=false
run_asan=false
run_scenarios=false
chaos_seeds=0
expect_seeds=false
for arg in "$@"; do
  if $expect_seeds; then
    chaos_seeds="$arg"
    expect_seeds=false
    continue
  fi
  case "$arg" in
    --tsan) run_tsan=true ;;
    --asan) run_asan=true ;;
    --scenarios) run_scenarios=true ;;
    --chaos) expect_seeds=true ;;
    --chaos=*) chaos_seeds="${arg#--chaos=}" ;;
    *) echo "usage: $0 [--tsan] [--asan] [--scenarios] [--chaos N]" >&2; exit 2 ;;
  esac
done
if $expect_seeds || ! [[ "$chaos_seeds" =~ ^[0-9]+$ ]]; then
  echo "usage: $0 [--tsan] [--asan] [--scenarios] [--chaos N]" >&2
  exit 2
fi

# Sweep the `chaos` ctest label across deterministic fault-schedule
# seeds in the given build directory.
chaos_sweep() {
  local builddir="$1"
  local seed
  for seed in $(seq 1 "$chaos_seeds"); do
    echo "chaos sweep [$builddir]: seed $seed/$chaos_seeds"
    (cd "$builddir" && FSMON_CHAOS_SEED="$seed" ctest -L chaos --output-on-failure)
  done
}

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# Run the instrumented pipeline demo from a scratch directory and check
# the snapshot it writes.
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
(cd "$workdir" && "$OLDPWD/build/examples/quickstart" pipeline)

snapshot="$workdir/quickstart_metrics.json"
if [[ ! -f "$snapshot" ]]; then
  echo "FAIL: quickstart pipeline did not write $snapshot" >&2
  exit 1
fi
if ! grep '"name":"collector.records_published"' "$snapshot" \
    | grep -qv '"value":0'; then
  echo "FAIL: collector.records_published is zero or missing in the snapshot:" >&2
  grep '"name":"collector.records_published"' "$snapshot" >&2 || true
  exit 1
fi
echo "OK: tier-1 tests passed and the metrics snapshot shows published records."

if (( chaos_seeds > 0 )); then
  chaos_sweep build
  echo "OK: chaos sweep over $chaos_seeds seeds reported exactly-once delivery."
fi

if $run_scenarios; then
  ./tools/run_scenarios.sh --smoke
  echo "OK: scenario smoke subset passed (federated mix, tcp drops, localfs dialects)."
fi

if $run_tsan; then
  echo "Building ThreadSanitizer configuration (build-tsan)..."
  cmake -B build-tsan -S . -DFSMON_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  # Both test targets must build: ctest's discovery includes error out on
  # a configured-but-unbuilt gtest executable.
  cmake --build build-tsan -j "$(nproc)" \
    --target fsmon_tests fsmon_concurrency_tests fsmon_chaos_tests fsmon_nsindex_tests
  tsan_filter="PubSubTest.*:BusTest.*:TopicMatchTest.*:FrameTest.*:TcpTest.*"
  tsan_filter+=":TcpSubscriberTest.*:PipelineTest.*:FaultToleranceTest.*"
  tsan_filter+=":ConsumerOverflowTest.*:TcpBridgeTest.*:CollectorCostsTest.*"
  tsan_filter+=":ProcessorTest.*:SimDriverTest.*"
  tsan_filter+=":ShardMapTest.*:VectorCursorTest.*:ShardRouterTest.*:ShardMergeTest.*"
  tsan_filter+=":FrameRefTest.*:SpscRingTest.*:ShmRingTest.*:*TransportTest.*"
  tsan_filter+=":ByteIdentityTest.*"
  tsan_filter+=":SubIndexTest.*:SubIndexPropertyTest.*:FlowControlTest.*"
  ./build-tsan/tests/fsmon_tests --gtest_filter="$tsan_filter"
  (cd build-tsan && ctest -L concurrency --output-on-failure)
  (cd build-tsan && ctest -L nsindex --output-on-failure)
  if (( chaos_seeds > 0 )); then chaos_sweep build-tsan; fi
  echo "OK: ThreadSanitizer pass over the concurrency suites is clean."
fi

if $run_asan; then
  echo "Building AddressSanitizer configuration (build-asan)..."
  cmake -B build-asan -S . -DFSMON_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$(nproc)" \
    --target fsmon_tests fsmon_concurrency_tests fsmon_chaos_tests fsmon_nsindex_tests
  # The transport suites shuttle zero-copy frames across threads and
  # carriers, so run them under ASan as well as the concurrency label.
  asan_filter="FrameRefTest.*:SpscRingTest.*:ShmRingTest.*:*TransportTest.*"
  asan_filter+=":ByteIdentityTest.*"
  asan_filter+=":SubIndexTest.*:SubIndexPropertyTest.*:FlowControlTest.*"
  ./build-asan/tests/fsmon_tests --gtest_filter="$asan_filter"
  (cd build-asan && ctest -L concurrency --output-on-failure)
  (cd build-asan && ctest -L nsindex --output-on-failure)
  if (( chaos_seeds > 0 )); then chaos_sweep build-asan; fi
  echo "OK: AddressSanitizer pass over the concurrency label is clean."
fi
