#!/usr/bin/env bash
# Tier-1 verification: build, run the full test suite, then prove the
# observability story end to end — the instrumented quickstart pipeline
# must emit a metrics snapshot with a nonzero publish count.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# Run the instrumented pipeline demo from a scratch directory and check
# the snapshot it writes.
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
(cd "$workdir" && "$OLDPWD/build/examples/quickstart" pipeline)

snapshot="$workdir/quickstart_metrics.json"
if [[ ! -f "$snapshot" ]]; then
  echo "FAIL: quickstart pipeline did not write $snapshot" >&2
  exit 1
fi
if ! grep '"name":"collector.records_published"' "$snapshot" \
    | grep -qv '"value":0'; then
  echo "FAIL: collector.records_published is zero or missing in the snapshot:" >&2
  grep '"name":"collector.records_published"' "$snapshot" >&2 || true
  exit 1
fi
echo "OK: tier-1 tests passed and the metrics snapshot shows published records."
