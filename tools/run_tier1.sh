#!/usr/bin/env bash
# Tier-1 verification: build, run the full test suite, then prove the
# observability story end to end — the instrumented quickstart pipeline
# must emit a metrics snapshot with a nonzero publish count.
#
# --tsan: additionally build a ThreadSanitizer configuration in
# build-tsan and run the concurrency-heavy suites (message queue and
# threaded pipeline) plus the ctest `concurrency` label (resolver pool,
# reorder buffer, single-flight, sharded cache) under it.
#
# --asan: additionally build an AddressSanitizer configuration in
# build-asan and run the `concurrency` label under it.
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=false
run_asan=false
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=true ;;
    --asan) run_asan=true ;;
    *) echo "usage: $0 [--tsan] [--asan]" >&2; exit 2 ;;
  esac
done

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# Run the instrumented pipeline demo from a scratch directory and check
# the snapshot it writes.
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
(cd "$workdir" && "$OLDPWD/build/examples/quickstart" pipeline)

snapshot="$workdir/quickstart_metrics.json"
if [[ ! -f "$snapshot" ]]; then
  echo "FAIL: quickstart pipeline did not write $snapshot" >&2
  exit 1
fi
if ! grep '"name":"collector.records_published"' "$snapshot" \
    | grep -qv '"value":0'; then
  echo "FAIL: collector.records_published is zero or missing in the snapshot:" >&2
  grep '"name":"collector.records_published"' "$snapshot" >&2 || true
  exit 1
fi
echo "OK: tier-1 tests passed and the metrics snapshot shows published records."

if $run_tsan; then
  echo "Building ThreadSanitizer configuration (build-tsan)..."
  cmake -B build-tsan -S . -DFSMON_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  # Both test targets must build: ctest's discovery includes error out on
  # a configured-but-unbuilt gtest executable.
  cmake --build build-tsan -j "$(nproc)" --target fsmon_tests fsmon_concurrency_tests
  tsan_filter="PubSubTest.*:BusTest.*:TopicMatchTest.*:FrameTest.*:TcpTest.*"
  tsan_filter+=":TcpSubscriberTest.*:PipelineTest.*:FaultToleranceTest.*"
  tsan_filter+=":ConsumerOverflowTest.*:TcpBridgeTest.*:CollectorCostsTest.*"
  tsan_filter+=":ProcessorTest.*:SimDriverTest.*"
  ./build-tsan/tests/fsmon_tests --gtest_filter="$tsan_filter"
  (cd build-tsan && ctest -L concurrency --output-on-failure)
  echo "OK: ThreadSanitizer pass over the concurrency suites is clean."
fi

if $run_asan; then
  echo "Building AddressSanitizer configuration (build-asan)..."
  cmake -B build-asan -S . -DFSMON_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$(nproc)" --target fsmon_tests fsmon_concurrency_tests
  (cd build-asan && ctest -L concurrency --output-on-failure)
  echo "OK: AddressSanitizer pass over the concurrency label is clean."
fi
