// run_scenario: execute one or more declarative scenario files and print
// one machine-readable RESULT line per scenario (plus MOUNT detail
// lines). Exit status is the number of failed scenarios (capped at 125)
// so shell sweeps can sum failures.
//
//   run_scenario scenarios/smoke_federated_mix.scenario [...more files]
//   run_scenario --list scenarios/*.scenario   # print names, do not run
#include <cstdio>
#include <string>
#include <vector>

#include "src/scenarios/scenario.hpp"

int main(int argc, char** argv) {
  bool list_only = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list_only = true;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: run_scenario [--list] <file.scenario>...\n");
    return 2;
  }
  int failed = 0;
  for (const auto& file : files) {
    auto spec = fsmon::scenarios::ScenarioSpec::load_file(file);
    if (!spec) {
      std::fprintf(stderr, "ERROR %s\n", spec.status().to_string().c_str());
      ++failed;
      continue;
    }
    if (list_only) {
      std::printf("%s\t%s\n", spec.value().name.c_str(), file.c_str());
      continue;
    }
    const auto result = fsmon::scenarios::run_scenario(spec.value());
    std::printf("%s\n", result.to_line().c_str());
    for (const auto& mount : result.mounts) {
      std::printf("%s\n", mount.to_line(result.name).c_str());
    }
    for (const auto& failure : result.failures) {
      std::printf("FAILURE scenario=%s reason=\"%s\"\n", result.name.c_str(),
                  failure.c_str());
    }
    std::fflush(stdout);
    if (!result.passed) ++failed;
  }
  return failed > 125 ? 125 : failed;
}
