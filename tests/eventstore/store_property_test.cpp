// Model-based property test: the EventStore against a trivial in-memory
// reference model under randomized operation sequences, including
// periodic close/reopen (crash-recovery) cycles.
#include <deque>
#include <filesystem>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/common/random.hpp"
#include "src/eventstore/store.hpp"

namespace fsmon::eventstore {
namespace {

std::vector<std::byte> payload_of(std::uint64_t id, common::Rng& rng) {
  std::vector<std::byte> out;
  const auto len = 1 + rng.next_below(64);
  out.reserve(len + 8);
  for (std::uint64_t i = 0; i < len; ++i)
    out.push_back(static_cast<std::byte>((id + i) & 0xFF));
  return out;
}

struct ModelRecord {
  common::EventId id;
  std::vector<std::byte> payload;
  bool reported = false;
};

class StorePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_store_prop_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  EventStoreOptions options() {
    EventStoreOptions o;
    o.directory = dir_;
    o.segment_bytes = 512;  // force rotation under test
    o.cache_bytes = 1024;   // tiny tail cache: queries must hit the disk path
    o.index_stride = 4;     // several sparse entries per small segment
    return o;
  }

  std::filesystem::path dir_;
};

TEST_P(StorePropertyTest, MatchesReferenceModelAcrossReopen) {
  common::Rng rng(GetParam());
  auto store = std::make_unique<EventStore>(options());
  std::deque<ModelRecord> model;
  common::EventId next_id = 1;

  for (int step = 0; step < 600; ++step) {
    switch (rng.next_below(10)) {
      case 0:
      case 1:
      case 2:
      case 3:
      case 4: {  // append (most common)
        const auto id = next_id++;
        auto payload = payload_of(id, rng);
        ASSERT_TRUE(store->append(id, payload).is_ok());
        model.push_back(ModelRecord{id, std::move(payload), false});
        break;
      }
      case 5: {  // mark_reported up to a random live id
        if (model.empty()) break;
        const auto up_to =
            model[rng.next_below(model.size())].id;
        store->mark_reported(up_to);
        for (auto& record : model) {
          if (record.id <= up_to) record.reported = true;
        }
        break;
      }
      case 6: {  // purge
        const auto removed = store->purge_reported();
        std::size_t expected = 0;
        while (!model.empty() && model.front().reported) {
          model.pop_front();
          ++expected;
        }
        EXPECT_EQ(removed, expected);
        break;
      }
      case 7: {  // query from a random point
        const common::EventId after =
            model.empty() ? 0 : model[rng.next_below(model.size())].id;
        const auto got = store->events_since(after);
        std::size_t index = 0;
        for (const auto& record : model) {
          if (record.id <= after) continue;
          ASSERT_LT(index, got.size());
          EXPECT_EQ(got[index].id, record.id);
          EXPECT_EQ(got[index].payload, record.payload);
          EXPECT_EQ(got[index].reported, record.reported);
          ++index;
        }
        EXPECT_EQ(index, got.size());
        break;
      }
      default: {  // crash and recover
        store->flush();
        store.reset();
        store = std::make_unique<EventStore>(options());
        // The reported watermark is persisted alongside the WAL, so
        // recovery keeps both the records and their reported flags.
        break;
      }
    }
    ASSERT_EQ(store->live_records(), model.size()) << "step " << step;
    if (!model.empty()) {
      EXPECT_EQ(store->first_id(), model.front().id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorePropertyTest, ::testing::Values(3, 11, 27, 1001));

}  // namespace
}  // namespace fsmon::eventstore
