#include "src/eventstore/wal.hpp"

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include <gtest/gtest.h>

namespace fsmon::eventstore {
namespace {

std::vector<std::byte> bytes_of(std::string_view text) {
  std::vector<std::byte> out;
  for (char c : text) out.push_back(static_cast<std::byte>(c));
  return out;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_wal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(WalTest, AppendAndScanRoundTrip) {
  const auto path = dir_ / "seg.wal";
  {
    WalSegment segment(path);
    EXPECT_TRUE(segment.append(1, bytes_of("first")).is_ok());
    EXPECT_TRUE(segment.append(2, bytes_of("second")).is_ok());
    EXPECT_TRUE(segment.flush().is_ok());
  }
  auto records = WalSegment::scan(path);
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[0].id, 1u);
  EXPECT_EQ(records.value()[0].payload, bytes_of("first"));
  EXPECT_EQ(records.value()[1].id, 2u);
}

TEST_F(WalTest, EmptyPayloadAllowed) {
  const auto path = dir_ / "seg.wal";
  {
    WalSegment segment(path);
    segment.append(7, {});
  }
  auto records = WalSegment::scan(path);
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_TRUE(records.value()[0].payload.empty());
}

TEST_F(WalTest, ScanMissingFileFails) {
  EXPECT_EQ(WalSegment::scan(dir_ / "nope.wal").code(), common::ErrorCode::kNotFound);
}

TEST_F(WalTest, TornTailIsTruncatedNotFatal) {
  const auto path = dir_ / "seg.wal";
  {
    WalSegment segment(path);
    segment.append(1, bytes_of("keep me"));
    segment.append(2, bytes_of("torn"));
  }
  // Chop bytes off the end, simulating a crash mid-write.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);
  auto records = WalSegment::scan(path);
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].id, 1u);
}

TEST_F(WalTest, MidFileCorruptionIsFatal) {
  const auto path = dir_ / "seg.wal";
  {
    WalSegment segment(path);
    segment.append(1, bytes_of("aaaa"));
    segment.append(2, bytes_of("bbbb"));
  }
  // Flip a byte inside the FIRST record's payload.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(13);
  file.put('X');
  file.close();
  EXPECT_EQ(WalSegment::scan(path).code(), common::ErrorCode::kCorrupt);
}

TEST_F(WalTest, AppendBatchScansBackIdenticallyToSingleAppends) {
  const auto path = dir_ / "seg.wal";
  const std::vector<std::vector<std::byte>> payloads = {
      bytes_of("alpha"), bytes_of(""), bytes_of("a much longer third payload")};
  {
    WalSegment segment(path);
    std::vector<std::span<const std::byte>> spans(payloads.begin(), payloads.end());
    ASSERT_TRUE(segment.append_batch(10, spans).is_ok());
    ASSERT_TRUE(segment.flush().is_ok());
  }
  auto records = WalSegment::scan(path);
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(records.value()[i].id, 10 + i);
    EXPECT_EQ(records.value()[i].payload, payloads[i]);
  }
}

TEST_F(WalTest, AppendBatchGroupCommitsOneFlushPerBatch) {
  obs::MetricsRegistry registry;
  const WalMetrics metrics = WalMetrics::create(registry);
  const auto path = dir_ / "seg.wal";
  const std::vector<std::vector<std::byte>> payloads = {
      bytes_of("a"), bytes_of("b"), bytes_of("c"), bytes_of("d")};
  {
    WalSegment segment(path, &metrics);
    std::vector<std::span<const std::byte>> spans(payloads.begin(), payloads.end());
    ASSERT_TRUE(segment.append_batch(1, spans).is_ok());
    ASSERT_TRUE(segment.flush().is_ok());
  }
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_total("wal.appends"), 4u);
  EXPECT_EQ(snapshot.counter_total("wal.fsyncs"), 1u);  // one barrier for the batch
  const auto batch_hist = snapshot.histogram_merged("wal.batch_size");
  EXPECT_EQ(batch_hist.count(), 1u);
  EXPECT_EQ(batch_hist.sum(), 4u);
}

TEST_F(WalTest, EmptyBatchIsANoOp) {
  const auto path = dir_ / "seg.wal";
  {
    WalSegment segment(path);
    EXPECT_TRUE(segment.append_batch(1, {}).is_ok());
  }
  auto records = WalSegment::scan(path);
  ASSERT_TRUE(records.is_ok());
  EXPECT_TRUE(records.value().empty());
}

TEST_F(WalTest, ReopenAppendsAfterExistingRecords) {
  const auto path = dir_ / "seg.wal";
  {
    WalSegment segment(path);
    segment.append(1, bytes_of("one"));
  }
  {
    WalSegment segment(path);
    EXPECT_GT(segment.bytes_written(), 0u);  // sees prior size
    segment.append(2, bytes_of("two"));
  }
  auto records = WalSegment::scan(path);
  ASSERT_TRUE(records.is_ok());
  EXPECT_EQ(records.value().size(), 2u);
}

}  // namespace
}  // namespace fsmon::eventstore
