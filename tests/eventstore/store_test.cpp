#include "src/eventstore/store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include <gtest/gtest.h>

namespace fsmon::eventstore {
namespace {

std::vector<std::byte> bytes_of(std::string_view text) {
  std::vector<std::byte> out;
  for (char c : text) out.push_back(static_cast<std::byte>(c));
  return out;
}

class EventStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_store_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  EventStoreOptions options() {
    EventStoreOptions o;
    o.directory = dir_;
    return o;
  }

  std::filesystem::path dir_;
};

TEST_F(EventStoreTest, AppendAndQuery) {
  EventStore store(options());
  ASSERT_TRUE(store.append(1, bytes_of("a")).is_ok());
  ASSERT_TRUE(store.append(2, bytes_of("b")).is_ok());
  EXPECT_EQ(store.live_records(), 2u);
  EXPECT_EQ(store.last_id(), 2u);
  EXPECT_EQ(store.first_id(), 1u);
  auto events = store.events_since(0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].payload, bytes_of("a"));
}

TEST_F(EventStoreTest, EventsSinceSkipsOlder) {
  EventStore store(options());
  for (common::EventId id = 1; id <= 10; ++id) store.append(id, bytes_of("x"));
  auto events = store.events_since(7);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].id, 8u);
  EXPECT_EQ(store.events_since(7, 2).size(), 2u);
  EXPECT_TRUE(store.events_since(10).empty());
}

TEST_F(EventStoreTest, NonMonotonicIdRejected) {
  EventStore store(options());
  store.append(5, bytes_of("a"));
  EXPECT_EQ(store.append(5, bytes_of("b")).code(), common::ErrorCode::kInvalid);
  EXPECT_EQ(store.append(4, bytes_of("b")).code(), common::ErrorCode::kInvalid);
}

TEST_F(EventStoreTest, MarkAndPurgeReported) {
  EventStore store(options());
  for (common::EventId id = 1; id <= 5; ++id) store.append(id, bytes_of("x"));
  store.mark_reported(3);
  EXPECT_EQ(store.purge_reported(), 3u);
  EXPECT_EQ(store.live_records(), 2u);
  EXPECT_EQ(store.first_id(), 4u);
  // Purge only removes a reported prefix.
  store.mark_reported(5);
  EXPECT_EQ(store.purge_reported(), 2u);
  EXPECT_EQ(store.live_records(), 0u);
}

TEST_F(EventStoreTest, PurgeStopsAtFirstUnreported) {
  EventStore store(options());
  for (common::EventId id = 1; id <= 4; ++id) store.append(id, bytes_of("x"));
  // Only id 2..3 reported: nothing can be purged while id 1 is live.
  store.mark_reported(0);
  EXPECT_EQ(store.purge_reported(), 0u);
  EXPECT_EQ(store.live_records(), 4u);
}

TEST_F(EventStoreTest, RecoveryAfterReopen) {
  {
    EventStore store(options());
    for (common::EventId id = 1; id <= 20; ++id) store.append(id, bytes_of("payload"));
    store.flush();
  }
  EventStore reopened(options());
  EXPECT_EQ(reopened.live_records(), 20u);
  EXPECT_EQ(reopened.last_id(), 20u);
  // Ids continue after recovery.
  EXPECT_TRUE(reopened.append(21, bytes_of("new")).is_ok());
}

TEST_F(EventStoreTest, SegmentRotation) {
  auto o = options();
  o.segment_bytes = 64;  // force frequent rotation
  EventStore store(o);
  for (common::EventId id = 1; id <= 30; ++id)
    store.append(id, bytes_of("0123456789abcdef"));
  EXPECT_GT(store.segment_count(), 3u);
  // All records still readable.
  EXPECT_EQ(store.events_since(0).size(), 30u);
}

TEST_F(EventStoreTest, RecoveryAcrossManySegments) {
  auto o = options();
  o.segment_bytes = 64;
  {
    EventStore store(o);
    for (common::EventId id = 1; id <= 25; ++id) store.append(id, bytes_of("0123456789"));
    store.flush();
  }
  EventStore reopened(o);
  EXPECT_EQ(reopened.live_records(), 25u);
  auto events = reopened.events_since(20);
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[4].id, 25u);
}

TEST_F(EventStoreTest, SizeCapEvictsOldest) {
  auto o = options();
  o.max_bytes = 100;
  EventStore store(o);
  for (common::EventId id = 1; id <= 50; ++id)
    store.append(id, bytes_of("ten bytes!"));  // 10 bytes each
  EXPECT_LE(store.live_bytes(), 100u);
  EXPECT_GT(store.first_id(), 1u);  // oldest evicted
  EXPECT_EQ(store.last_id(), 50u);  // newest kept
}

TEST_F(EventStoreTest, PurgeDeletesEmptySegmentFiles) {
  auto o = options();
  o.segment_bytes = 64;
  EventStore store(o);
  for (common::EventId id = 1; id <= 30; ++id)
    store.append(id, bytes_of("0123456789abcdef"));
  const auto before = store.segment_count();
  store.mark_reported(30);
  store.purge_reported();
  EXPECT_LT(store.segment_count(), before);
}

TEST_F(EventStoreTest, AppendBatchAssignsConsecutiveIdsAndRecovers) {
  const std::vector<std::vector<std::byte>> payloads = {
      bytes_of("a"), bytes_of("bb"), bytes_of("ccc")};
  {
    EventStore store(options());
    std::vector<std::span<const std::byte>> spans(payloads.begin(), payloads.end());
    ASSERT_TRUE(store.append_batch(1, spans).is_ok());
    EXPECT_EQ(store.last_id(), 3u);
    EXPECT_EQ(store.live_records(), 3u);
    // A batch whose first id is not past the head is rejected whole.
    EXPECT_EQ(store.append_batch(3, spans).code(), common::ErrorCode::kInvalid);
    store.flush();
  }
  EventStore reopened(options());
  ASSERT_EQ(reopened.live_records(), 3u);
  auto events = reopened.events_since(0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(events[i].id, i + 1);
    EXPECT_EQ(events[i].payload, payloads[i]);
  }
}

TEST_F(EventStoreTest, AppendBatchChunksAcrossSegmentRolls) {
  auto o = options();
  o.segment_bytes = 64;
  o.flush_each_append = true;
  obs::MetricsRegistry registry;
  o.metrics = &registry;
  EventStore store(o);
  std::vector<std::vector<std::byte>> payloads;
  for (int i = 0; i < 30; ++i) payloads.push_back(bytes_of("0123456789abcdef"));
  std::vector<std::span<const std::byte>> spans(payloads.begin(), payloads.end());
  ASSERT_TRUE(store.append_batch(1, spans).is_ok());
  EXPECT_GT(store.segment_count(), 3u);
  EXPECT_EQ(store.events_since(0).size(), 30u);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_total("wal.appends"), 30u);
  // Group commit: flushes happen per segment seal plus one per batch —
  // never one per record.
  EXPECT_LE(snapshot.counter_total("wal.fsyncs"), store.segment_count() + 1);
  EXPECT_LT(snapshot.counter_total("wal.fsyncs"), 30u);
}

TEST_F(EventStoreTest, MarkReportedSurvivesQuery) {
  EventStore store(options());
  store.append(1, bytes_of("a"));
  store.mark_reported(1);
  auto events = store.events_since(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].reported);
}

TEST_F(EventStoreTest, AckLoopNeverRescansRecords) {
  // Regression: mark_reported used to rescan the live deque from begin()
  // on every ack — O(live) per ack, quadratic under a consumer acking
  // frequently. The watermark implementation must visit zero records no
  // matter how many are live or how often acks arrive.
  EventStore store(options());
  for (common::EventId id = 1; id <= 2000; ++id) store.append(id, bytes_of("payload"));
  for (common::EventId id = 1; id <= 2000; ++id) store.mark_reported(id);
  EXPECT_EQ(store.ack_scan_records(), 0u);
  EXPECT_EQ(store.purge_reported(), 2000u);
}

TEST_F(EventStoreTest, ReportedWatermarkSurvivesReopen) {
  {
    EventStore store(options());
    for (common::EventId id = 1; id <= 5; ++id) store.append(id, bytes_of("x"));
    store.mark_reported(3);
    store.flush();
  }
  EventStore reopened(options());
  auto events = reopened.events_since(0);
  ASSERT_EQ(events.size(), 5u);
  EXPECT_TRUE(events[2].reported);
  EXPECT_FALSE(events[3].reported);
  // The persisted watermark still drives the purge after a restart.
  EXPECT_EQ(reopened.purge_reported(), 3u);
  EXPECT_EQ(reopened.first_id(), 4u);
}

TEST_F(EventStoreTest, RecoveryDeletesFullyPurgedSegments) {
  auto o = options();
  o.segment_bytes = 64;
  common::EventId cutoff = 0;
  {
    EventStore store(o);
    for (common::EventId id = 1; id <= 30; ++id)
      store.append(id, bytes_of("0123456789abcdef"));
    ASSERT_GT(store.segment_count(), 3u);
    store.flush();
    // Everything in the first few segments is below this cutoff.
    cutoff = 10;
  }
  // Simulate a purge whose watermark landed but whose segment deletion
  // did not (crash between the two): recovery must finish the job.
  {
    std::ofstream out(dir_ / "purge.watermark", std::ios::trunc);
    out << cutoff;
  }
  obs::MetricsRegistry registry;
  o.metrics = &registry;
  EventStore reopened(o);
  EXPECT_EQ(reopened.live_records(), 30u - cutoff);
  EXPECT_EQ(reopened.first_id(), cutoff + 1);
  // No registered segment may be fully below the watermark, and its file
  // must be gone from disk.
  std::size_t wal_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".wal") ++wal_files;
  }
  EXPECT_EQ(wal_files, reopened.segment_count());
  EXPECT_EQ(registry.snapshot().gauge_total("store.segments"),
            static_cast<std::int64_t>(reopened.segment_count()));
  auto events = reopened.events_since(0);
  ASSERT_EQ(events.size(), 30u - cutoff);
  EXPECT_EQ(events.front().id, cutoff + 1);
}

TEST_F(EventStoreTest, RecoveryRebuildsMissingOrCorruptIndex) {
  auto o = options();
  o.segment_bytes = 64;
  o.cache_bytes = 0;  // queries must come from disk via the index
  o.index_stride = 4;
  std::vector<StoredEvent> before;
  {
    EventStore store(o);
    for (common::EventId id = 1; id <= 30; ++id)
      store.append(id, bytes_of("0123456789abcdef"));
    ASSERT_GT(store.segment_count(), 3u);
    store.flush();
    before = store.events_since(0);
  }
  // Delete one index and corrupt another: both must be rebuilt by scan.
  std::vector<std::filesystem::path> idx_files;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".idx") idx_files.push_back(entry.path());
  }
  ASSERT_GE(idx_files.size(), 2u);
  std::sort(idx_files.begin(), idx_files.end());
  std::filesystem::remove(idx_files[0]);
  {
    std::ofstream out(idx_files[1], std::ios::trunc | std::ios::binary);
    out << "garbage, not an index";
  }
  EventStore reopened(o);
  EXPECT_GE(reopened.index_rebuilds(), 2u);
  auto after = reopened.events_since(0);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].id, before[i].id);
    EXPECT_EQ(after[i].payload, before[i].payload);
  }
}

TEST_F(EventStoreTest, PagedQueriesAcrossSealedSegmentsMatchFullAnswer) {
  auto o = options();
  o.segment_bytes = 64;
  o.cache_bytes = 0;  // sealed records served from disk
  o.index_stride = 4;
  EventStore store(o);
  std::vector<std::vector<std::byte>> payloads;
  for (common::EventId id = 1; id <= 40; ++id) {
    payloads.push_back(bytes_of("payload-" + std::to_string(id)));
    ASSERT_TRUE(store.append(id, payloads.back()).is_ok());
  }
  ASSERT_GT(store.segment_count(), 2u);
  // Page with a max_events that lands mid-segment; stitching the pages
  // together must reproduce the full in-memory answer byte for byte.
  std::vector<StoredEvent> paged;
  common::EventId cursor = 0;
  for (;;) {
    auto page = store.events_since(cursor, 7);
    if (page.empty()) break;
    cursor = page.back().id;
    for (auto& event : page) paged.push_back(std::move(event));
  }
  ASSERT_EQ(paged.size(), payloads.size());
  for (std::size_t i = 0; i < paged.size(); ++i) {
    EXPECT_EQ(paged[i].id, i + 1);
    EXPECT_EQ(paged[i].payload, payloads[i]);
  }
}

TEST_F(EventStoreTest, TailCacheStaysBoundedWithUnlimitedRetention) {
  auto o = options();
  o.max_bytes = 0;  // unlimited retention: the original OOM scenario
  o.segment_bytes = 256;
  o.cache_bytes = 512;
  obs::MetricsRegistry registry;
  o.metrics = &registry;
  EventStore store(o);
  std::vector<std::vector<std::byte>> payloads;
  for (common::EventId id = 1; id <= 2000; ++id) {
    payloads.push_back(bytes_of("payload-" + std::to_string(id)));
    ASSERT_TRUE(store.append(id, payloads.back()).is_ok());
  }
  // Retained bytes grow without bound, resident bytes do not: the cache
  // holds at most cache_bytes of sealed payload plus the active segment.
  EXPECT_GT(store.live_bytes(), 10u * 1024u);
  EXPECT_LE(store.cache_resident_bytes(), o.cache_bytes + o.segment_bytes);
  EXPECT_EQ(registry.snapshot().gauge_total("store.cache_bytes"),
            static_cast<std::int64_t>(store.cache_resident_bytes()));
  // Every record is still served, byte-identical, from disk + cache.
  auto events = store.events_since(0);
  ASSERT_EQ(events.size(), payloads.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i + 1);
    EXPECT_EQ(events[i].payload, payloads[i]);
  }
  const auto snapshot = registry.snapshot();
  EXPECT_GT(snapshot.counter_total("store.replay_disk_records"), 0u);
  EXPECT_GT(snapshot.counter_total("store.replay_cache_records"), 0u);
}

}  // namespace
}  // namespace fsmon::eventstore
