#include "src/eventstore/store.hpp"

#include <filesystem>

#include <unistd.h>

#include <gtest/gtest.h>

namespace fsmon::eventstore {
namespace {

std::vector<std::byte> bytes_of(std::string_view text) {
  std::vector<std::byte> out;
  for (char c : text) out.push_back(static_cast<std::byte>(c));
  return out;
}

class EventStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_store_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  EventStoreOptions options() {
    EventStoreOptions o;
    o.directory = dir_;
    return o;
  }

  std::filesystem::path dir_;
};

TEST_F(EventStoreTest, AppendAndQuery) {
  EventStore store(options());
  ASSERT_TRUE(store.append(1, bytes_of("a")).is_ok());
  ASSERT_TRUE(store.append(2, bytes_of("b")).is_ok());
  EXPECT_EQ(store.live_records(), 2u);
  EXPECT_EQ(store.last_id(), 2u);
  EXPECT_EQ(store.first_id(), 1u);
  auto events = store.events_since(0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].payload, bytes_of("a"));
}

TEST_F(EventStoreTest, EventsSinceSkipsOlder) {
  EventStore store(options());
  for (common::EventId id = 1; id <= 10; ++id) store.append(id, bytes_of("x"));
  auto events = store.events_since(7);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].id, 8u);
  EXPECT_EQ(store.events_since(7, 2).size(), 2u);
  EXPECT_TRUE(store.events_since(10).empty());
}

TEST_F(EventStoreTest, NonMonotonicIdRejected) {
  EventStore store(options());
  store.append(5, bytes_of("a"));
  EXPECT_EQ(store.append(5, bytes_of("b")).code(), common::ErrorCode::kInvalid);
  EXPECT_EQ(store.append(4, bytes_of("b")).code(), common::ErrorCode::kInvalid);
}

TEST_F(EventStoreTest, MarkAndPurgeReported) {
  EventStore store(options());
  for (common::EventId id = 1; id <= 5; ++id) store.append(id, bytes_of("x"));
  store.mark_reported(3);
  EXPECT_EQ(store.purge_reported(), 3u);
  EXPECT_EQ(store.live_records(), 2u);
  EXPECT_EQ(store.first_id(), 4u);
  // Purge only removes a reported prefix.
  store.mark_reported(5);
  EXPECT_EQ(store.purge_reported(), 2u);
  EXPECT_EQ(store.live_records(), 0u);
}

TEST_F(EventStoreTest, PurgeStopsAtFirstUnreported) {
  EventStore store(options());
  for (common::EventId id = 1; id <= 4; ++id) store.append(id, bytes_of("x"));
  // Only id 2..3 reported: nothing can be purged while id 1 is live.
  store.mark_reported(0);
  EXPECT_EQ(store.purge_reported(), 0u);
  EXPECT_EQ(store.live_records(), 4u);
}

TEST_F(EventStoreTest, RecoveryAfterReopen) {
  {
    EventStore store(options());
    for (common::EventId id = 1; id <= 20; ++id) store.append(id, bytes_of("payload"));
    store.flush();
  }
  EventStore reopened(options());
  EXPECT_EQ(reopened.live_records(), 20u);
  EXPECT_EQ(reopened.last_id(), 20u);
  // Ids continue after recovery.
  EXPECT_TRUE(reopened.append(21, bytes_of("new")).is_ok());
}

TEST_F(EventStoreTest, SegmentRotation) {
  auto o = options();
  o.segment_bytes = 64;  // force frequent rotation
  EventStore store(o);
  for (common::EventId id = 1; id <= 30; ++id)
    store.append(id, bytes_of("0123456789abcdef"));
  EXPECT_GT(store.segment_count(), 3u);
  // All records still readable.
  EXPECT_EQ(store.events_since(0).size(), 30u);
}

TEST_F(EventStoreTest, RecoveryAcrossManySegments) {
  auto o = options();
  o.segment_bytes = 64;
  {
    EventStore store(o);
    for (common::EventId id = 1; id <= 25; ++id) store.append(id, bytes_of("0123456789"));
    store.flush();
  }
  EventStore reopened(o);
  EXPECT_EQ(reopened.live_records(), 25u);
  auto events = reopened.events_since(20);
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[4].id, 25u);
}

TEST_F(EventStoreTest, SizeCapEvictsOldest) {
  auto o = options();
  o.max_bytes = 100;
  EventStore store(o);
  for (common::EventId id = 1; id <= 50; ++id)
    store.append(id, bytes_of("ten bytes!"));  // 10 bytes each
  EXPECT_LE(store.live_bytes(), 100u);
  EXPECT_GT(store.first_id(), 1u);  // oldest evicted
  EXPECT_EQ(store.last_id(), 50u);  // newest kept
}

TEST_F(EventStoreTest, PurgeDeletesEmptySegmentFiles) {
  auto o = options();
  o.segment_bytes = 64;
  EventStore store(o);
  for (common::EventId id = 1; id <= 30; ++id)
    store.append(id, bytes_of("0123456789abcdef"));
  const auto before = store.segment_count();
  store.mark_reported(30);
  store.purge_reported();
  EXPECT_LT(store.segment_count(), before);
}

TEST_F(EventStoreTest, AppendBatchAssignsConsecutiveIdsAndRecovers) {
  const std::vector<std::vector<std::byte>> payloads = {
      bytes_of("a"), bytes_of("bb"), bytes_of("ccc")};
  {
    EventStore store(options());
    std::vector<std::span<const std::byte>> spans(payloads.begin(), payloads.end());
    ASSERT_TRUE(store.append_batch(1, spans).is_ok());
    EXPECT_EQ(store.last_id(), 3u);
    EXPECT_EQ(store.live_records(), 3u);
    // A batch whose first id is not past the head is rejected whole.
    EXPECT_EQ(store.append_batch(3, spans).code(), common::ErrorCode::kInvalid);
    store.flush();
  }
  EventStore reopened(options());
  ASSERT_EQ(reopened.live_records(), 3u);
  auto events = reopened.events_since(0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(events[i].id, i + 1);
    EXPECT_EQ(events[i].payload, payloads[i]);
  }
}

TEST_F(EventStoreTest, AppendBatchChunksAcrossSegmentRolls) {
  auto o = options();
  o.segment_bytes = 64;
  o.flush_each_append = true;
  obs::MetricsRegistry registry;
  o.metrics = &registry;
  EventStore store(o);
  std::vector<std::vector<std::byte>> payloads;
  for (int i = 0; i < 30; ++i) payloads.push_back(bytes_of("0123456789abcdef"));
  std::vector<std::span<const std::byte>> spans(payloads.begin(), payloads.end());
  ASSERT_TRUE(store.append_batch(1, spans).is_ok());
  EXPECT_GT(store.segment_count(), 3u);
  EXPECT_EQ(store.events_since(0).size(), 30u);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_total("wal.appends"), 30u);
  // Group commit: flushes happen per segment seal plus one per batch —
  // never one per record.
  EXPECT_LE(snapshot.counter_total("wal.fsyncs"), store.segment_count() + 1);
  EXPECT_LT(snapshot.counter_total("wal.fsyncs"), 30u);
}

TEST_F(EventStoreTest, MarkReportedSurvivesQuery) {
  EventStore store(options());
  store.append(1, bytes_of("a"));
  store.mark_reported(1);
  auto events = store.events_since(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].reported);
}

}  // namespace
}  // namespace fsmon::eventstore
