#include <cmath>

#include <gtest/gtest.h>

#include "src/workloads/filebench.hpp"
#include "src/workloads/hacc.hpp"
#include "src/workloads/ior.hpp"
#include "src/workloads/scripts.hpp"

namespace fsmon::workloads {
namespace {

class WorkloadsTest : public ::testing::Test {
 protected:
  WorkloadsTest() : lustre_fs(lustre::LustreFsOptions{}, clock), lustre_target(lustre_fs) {
    mem_fs.mkdir("/base");
  }
  common::ManualClock clock;
  localfs::MemFs mem_fs;
  lustre::LustreFs lustre_fs;
  LustreTarget lustre_target;
};

TEST_F(WorkloadsTest, OutputScriptFootprintOnMemFs) {
  MemFsTarget target(mem_fs);
  auto fp = run_evaluate_output_script(target, "/base");
  EXPECT_EQ(fp.creates, 1u);
  EXPECT_EQ(fp.modifies, 1u);
  EXPECT_EQ(fp.closes, 1u);
  EXPECT_EQ(fp.renames, 2u);  // hello->hi, hi->okdir/hi
  EXPECT_EQ(fp.mkdirs, 1u);
  EXPECT_EQ(fp.deletes, 1u);
  EXPECT_EQ(fp.rmdirs, 1u);
  // Everything cleaned up.
  EXPECT_FALSE(mem_fs.exists("/base/okdir"));
  EXPECT_FALSE(mem_fs.exists("/base/hello.txt"));
}

TEST_F(WorkloadsTest, OutputScriptOnLustreEmitsRecords) {
  lustre_fs.mkdir("/base");
  auto fp = run_evaluate_output_script(lustre_target, "/base");
  EXPECT_EQ(fp.renames, 2u);
  // mkdir(base)+create+mtime+close+renme+mkdir+renme+unlnk+rmdir = 9.
  EXPECT_EQ(lustre_fs.total_records(), 9u);
}

TEST_F(WorkloadsTest, PerformanceScriptLoops) {
  MemFsTarget target(mem_fs);
  PerformanceScriptOptions options;
  options.iterations = 50;
  auto fp = run_performance_script(target, "/base", options);
  EXPECT_EQ(fp.creates, 50u);
  EXPECT_EQ(fp.modifies, 50u);
  EXPECT_EQ(fp.deletes, 50u);
  EXPECT_FALSE(mem_fs.exists("/base/hello.txt"));
}

TEST_F(WorkloadsTest, PerformanceScriptNoDeleteVariantUsesUniqueNames) {
  MemFsTarget target(mem_fs);
  PerformanceScriptOptions options;
  options.iterations = 10;
  options.do_delete = false;
  auto fp = run_performance_script(target, "/base", options);
  EXPECT_EQ(fp.creates, 10u);
  EXPECT_EQ(fp.deletes, 0u);
  EXPECT_TRUE(mem_fs.exists("/base/hello0.txt"));
  EXPECT_TRUE(mem_fs.exists("/base/hello9.txt"));
}

TEST_F(WorkloadsTest, PerformanceScriptNoModifyVariant) {
  MemFsTarget target(mem_fs);
  PerformanceScriptOptions options;
  options.iterations = 10;
  options.do_modify = false;
  auto fp = run_performance_script(target, "/base", options);
  EXPECT_EQ(fp.creates, 10u);
  EXPECT_EQ(fp.modifies, 0u);
  EXPECT_EQ(fp.deletes, 10u);
}

TEST_F(WorkloadsTest, IorSingleSharedFileFootprint) {
  // Table IX: SSF mode produces exactly one create and one delete.
  lustre_fs.mkdir("/base");
  IorOptions options;
  options.processes = 128;
  auto fp = run_ior(lustre_target, "/base", options);
  EXPECT_EQ(fp.creates, 1u);
  EXPECT_EQ(fp.deletes, 1u);
  EXPECT_EQ(fp.modifies, 128u);  // every rank writes
  EXPECT_GE(fp.closes, 1u);
  EXPECT_FALSE(lustre_fs.exists("/base/ior/src/testFileSSF"));
}

TEST_F(WorkloadsTest, IorFilePerProcessFootprint) {
  lustre_fs.mkdir("/base");
  IorOptions options;
  options.processes = 16;
  options.single_shared_file = false;
  auto fp = run_ior(lustre_target, "/base", options);
  EXPECT_EQ(fp.creates, 16u);
  EXPECT_EQ(fp.deletes, 16u);
}

TEST_F(WorkloadsTest, HaccFileNamesMatchPaperTableNine) {
  EXPECT_EQ(hacc_file_name(0, 256), "FPP1-Part00000000-of-00000256.data");
  EXPECT_EQ(hacc_file_name(255, 256), "FPP1-Part00000255-of-00000256.data");
}

TEST_F(WorkloadsTest, HaccIoFootprint) {
  // Table IX: 256 files created and deleted in FPP mode.
  lustre_fs.mkdir("/base");
  HaccIoOptions options;
  options.processes = 256;
  auto fp = run_hacc_io(lustre_target, "/base", options);
  EXPECT_EQ(fp.creates, 256u);
  EXPECT_EQ(fp.closes, 256u);
  EXPECT_EQ(fp.deletes, 256u);
  EXPECT_EQ(fp.bytes_written, 4'096'000ull / 256 * 38 * 256);
}

TEST_F(WorkloadsTest, HaccIoWithoutCleanupKeepsFiles) {
  lustre_fs.mkdir("/base");
  HaccIoOptions options;
  options.processes = 8;
  options.cleanup = false;
  auto fp = run_hacc_io(lustre_target, "/base", options);
  EXPECT_EQ(fp.deletes, 0u);
  EXPECT_TRUE(lustre_fs.exists("/base/hacc-io/" + hacc_file_name(7, 8)));
}

TEST_F(WorkloadsTest, FilebenchCreatesRequestedFiles) {
  MemFsTarget target(mem_fs);
  FilebenchOptions options;
  options.files = 2000;  // scaled down for unit-test speed
  auto report = run_filebench_create(target, "/base", options);
  EXPECT_EQ(report.footprint.creates, 2000u);
  EXPECT_EQ(report.footprint.modifies, 2000u);
  EXPECT_EQ(report.footprint.closes, 2000u);
  EXPECT_GT(report.directories, 10u);
}

TEST_F(WorkloadsTest, FilebenchFileSizesFollowGamma) {
  MemFsTarget target(mem_fs);
  FilebenchOptions options;
  options.files = 5000;
  auto report = run_filebench_create(target, "/base", options);
  // Mean file size should be near 16384 (paper: 50 000 files = 782.8 MB,
  // i.e. mean approximately 16.4 KB).
  const double mean = static_cast<double>(report.footprint.bytes_written) /
                      static_cast<double>(options.files);
  EXPECT_NEAR(mean, 16384.0, 16384.0 * 0.10);
}

TEST_F(WorkloadsTest, FilebenchDepthNearConfigured) {
  MemFsTarget target(mem_fs);
  FilebenchOptions options;
  options.files = 3000;
  auto report = run_filebench_create(target, "/base", options);
  EXPECT_GE(report.mean_depth, 3.0);
  EXPECT_LE(report.mean_depth, 7.0);
}

TEST_F(WorkloadsTest, FilebenchDeterministicForSeed) {
  MemFsTarget target(mem_fs);
  FilebenchOptions options;
  options.files = 500;
  auto a = run_filebench_create(target, "/base", options);
  localfs::MemFs fs2;
  fs2.mkdir("/base");
  MemFsTarget target2(fs2);
  auto b = run_filebench_create(target2, "/base", options);
  EXPECT_EQ(a.footprint.bytes_written, b.footprint.bytes_written);
  EXPECT_EQ(a.directories, b.directories);
}

}  // namespace
}  // namespace fsmon::workloads
