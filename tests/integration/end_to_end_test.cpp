// Cross-module integration tests: the full FsMonitor facade over the
// simulated local platforms and over the scalable Lustre DSI, including
// the paper's Table II standardization experiment.
#include <mutex>

#include <gtest/gtest.h>

#include "src/core/monitor.hpp"
#include "src/localfs/sim_dsi.hpp"
#include "src/scalable/scalable_monitor.hpp"
#include "src/workloads/scripts.hpp"

namespace fsmon {
namespace {

using core::EventKind;
using core::StdEvent;

/// Run Evaluate_Output_Script against a MemFs monitored through `scheme`
/// and return the standardized inotify-format lines.
std::vector<std::string> table2_lines(const std::string& scheme) {
  common::ManualClock clock;
  localfs::MemFs fs;
  fs.mkdir("/home");
  fs.mkdir("/home/arnab");
  fs.mkdir("/home/arnab/test");
  core::DsiRegistry registry;
  localfs::register_sim_dsis(registry, fs, clock);

  core::MonitorOptions options;
  options.storage.scheme = scheme;
  options.storage.root = "/home/arnab/test";
  core::FsMonitor monitor(options, &registry, &clock);
  std::mutex mu;
  std::vector<std::string> lines;
  monitor.subscribe({}, [&](const std::vector<StdEvent>& batch) {
    std::lock_guard lock(mu);
    for (const auto& event : batch) lines.push_back(core::to_inotify_line(event));
  });
  EXPECT_TRUE(monitor.start().is_ok());

  workloads::MemFsTarget target(fs);
  workloads::run_evaluate_output_script(target, "/home/arnab/test");
  monitor.stop();
  return lines;
}

TEST(TableTwoTest, InotifyDialectSequence) {
  // Table II: the standardized event stream of Evaluate_Output_Script.
  const auto lines = table2_lines("sim-inotify");
  const std::vector<std::string> expected = {
      "/home/arnab/test CREATE /hello.txt",
      "/home/arnab/test MODIFY /hello.txt",
      "/home/arnab/test CLOSE /hello.txt",
      "/home/arnab/test MOVED_FROM /hello.txt",
      "/home/arnab/test MOVED_TO /hi.txt",
      "/home/arnab/test CREATE,ISDIR /okdir",
      "/home/arnab/test MOVED_FROM /hi.txt",
      "/home/arnab/test MOVED_TO /okdir/hi.txt",
      "/home/arnab/test DELETE /okdir/hi.txt",
      "/home/arnab/test DELETE,ISDIR /okdir",
  };
  EXPECT_EQ(lines, expected);
}

TEST(TableTwoTest, AllSimulatedPlatformsAgreeOnCoreSequence) {
  // "FSMonitor gives the same event definitions on both macOS as well as
  // Linux environments" — the standardized core sequence (creates, moves,
  // deletes) must be identical across backends even though the native
  // dialects differ wildly.
  auto essential = [](const std::vector<std::string>& lines) {
    std::vector<std::string> out;
    for (const auto& line : lines) {
      // CLOSE visibility differs per platform (FSEvents/FSW cannot see
      // closes); compare the rest.
      if (line.find(" CLOSE") == std::string::npos) out.push_back(line);
    }
    return out;
  };
  const auto inotify = essential(table2_lines("sim-inotify"));
  const auto kqueue = essential(table2_lines("sim-kqueue"));
  const auto fsevents = essential(table2_lines("sim-fsevents"));
  const auto fsw = essential(table2_lines("sim-filesystemwatcher"));
  EXPECT_EQ(inotify, fsevents);
  EXPECT_EQ(inotify, fsw);
  EXPECT_EQ(inotify, kqueue);
}

TEST(LustreEndToEndTest, FsMonitorFacadeOverScalableDsi) {
  common::RealClock clock;
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
  core::DsiRegistry registry;
  scalable::register_lustre_dsi(registry, fs, clock);

  core::MonitorOptions options;
  options.storage.scheme = "lustre";
  options.storage.root = "/";
  core::FsMonitor monitor(options, &registry, &clock);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<StdEvent> events;
  monitor.subscribe({}, [&](const std::vector<StdEvent>& batch) {
    std::lock_guard lock(mu);
    for (const auto& event : batch) events.push_back(event);
    cv.notify_all();
  });
  ASSERT_TRUE(monitor.start().is_ok());
  EXPECT_EQ(monitor.dsi_name(), "lustre");

  workloads::LustreTarget target(fs);
  workloads::run_evaluate_output_script(target, "/");
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10), [&] {
      return events.size() >= 10;  // 8 ops, renames doubled = 10 events
    }));
  }
  monitor.stop();
  // Event ids assigned by the interface layer are strictly increasing.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_EQ(events[i].id, events[i - 1].id + 1);
  // Source tags identify the producing MDT.
  EXPECT_EQ(events[0].source, "lustre:MDT0");
  // The stream contains the script's shape.
  EXPECT_EQ(events[0].kind, EventKind::kCreate);
  EXPECT_EQ(events[0].path, "/hello.txt");
}

TEST(LustreEndToEndTest, DneEventsCarryPerMdtSources) {
  common::RealClock clock;
  lustre::LustreFsOptions fs_options;
  fs_options.mdt_count = 4;
  lustre::LustreFs fs(fs_options, clock);
  core::DsiRegistry registry;
  scalable::register_lustre_dsi(registry, fs, clock);

  core::MonitorOptions options;
  options.storage.scheme = "lustre";
  options.storage.root = "/";
  core::FsMonitor monitor(options, &registry, &clock);
  std::mutex mu;
  std::condition_variable cv;
  std::set<std::string> sources;
  std::atomic<int> count{0};
  monitor.subscribe({}, [&](const std::vector<StdEvent>& batch) {
    std::lock_guard lock(mu);
    for (const auto& event : batch) sources.insert(event.source);
    count += static_cast<int>(batch.size());
    cv.notify_all();
  });
  ASSERT_TRUE(monitor.start().is_ok());
  for (int i = 0; i < 32; ++i) fs.mkdir("/d" + std::to_string(i));
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return count.load() >= 32; }));
  }
  monitor.stop();
  EXPECT_GE(sources.size(), 2u);  // events arrived from multiple MDTs
}

}  // namespace
}  // namespace fsmon
