// Integration: the full FSMonitor stack on a REAL directory — auto-
// detected inotify DSI, resolution layer, interface layer with the
// reliable event store — including replay-since-id and the
// acknowledge/purge cycle. Skipped where inotify is unavailable.
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/core/monitor.hpp"
#include "src/localfs/inotify_dsi.hpp"

namespace fsmon {
namespace {

using core::EventKind;
using core::StdEvent;

class LocalReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!localfs::InotifyDsi::available()) GTEST_SKIP() << "inotify unavailable";
    core::register_builtin_dsis();
    base_ = std::filesystem::temp_directory_path() /
            ("fsmon_local_replay_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_ / "watched");
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  core::MonitorOptions options() {
    core::MonitorOptions o;
    o.storage.root = (base_ / "watched").string();  // auto-detect -> inotify
    eventstore::EventStoreOptions store;
    store.directory = base_ / "store";
    o.interface.store = store;
    return o;
  }

  void touch(const std::string& name) {
    std::ofstream out(base_ / "watched" / name);
    out << "data";
  }

  std::filesystem::path base_;
};

TEST_F(LocalReplayTest, AutoDetectPicksInotifyAndStoresEvents) {
  core::FsMonitor monitor(options());
  std::mutex mu;
  std::condition_variable cv;
  std::vector<StdEvent> live;
  monitor.subscribe({}, [&](const std::vector<StdEvent>& batch) {
    std::lock_guard lock(mu);
    for (const auto& event : batch) live.push_back(event);
    cv.notify_all();
  });
  ASSERT_TRUE(monitor.start().is_ok());
  EXPECT_EQ(monitor.dsi_name(), "inotify");

  touch("a.txt");
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] {
      for (const auto& event : live) {
        if (event.kind == EventKind::kClose && event.path == "/a.txt") return true;
      }
      return false;
    }));
  }
  monitor.stop();

  // Replay from the store: the same events, by id.
  auto replay = monitor.events_since(0);
  ASSERT_TRUE(replay.is_ok());
  ASSERT_GE(replay.value().size(), 2u);  // CREATE, MODIFY, CLOSE at least
  EXPECT_EQ(replay.value()[0].kind, EventKind::kCreate);
  EXPECT_EQ(replay.value()[0].path, "/a.txt");
  EXPECT_EQ(replay.value()[0].id, 1u);

  // Acknowledge + purge shrinks the store; later events remain.
  const auto first_id = replay.value()[0].id;
  monitor.acknowledge(first_id);
  EXPECT_EQ(monitor.purge(), 1u);
  auto after = monitor.events_since(0);
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(after.value().size(), replay.value().size() - 1);
}

TEST_F(LocalReplayTest, ReplaySurvivesMonitorRestart) {
  {
    core::FsMonitor monitor(options());
    ASSERT_TRUE(monitor.start().is_ok());
    touch("persisted.txt");
    // Wait until the event reaches the store.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      auto events = monitor.events_since(0);
      if (events && !events.value().empty()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    monitor.stop();
  }
  // A fresh monitor instance over the same store replays history without
  // the DSI ever starting.
  core::FsMonitor revived(options());
  auto events = revived.events_since(0);
  ASSERT_TRUE(events.is_ok());
  ASSERT_FALSE(events.value().empty());
  EXPECT_EQ(events.value()[0].path, "/persisted.txt");
}

}  // namespace
}  // namespace fsmon
