// Failure-injection tests: consumer failure with historic replay from
// the reliable store, collector restart resuming from the un-purged
// changelog, and event-store crash recovery inside the pipeline.
#include <filesystem>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/scalable/scalable_monitor.hpp"

namespace fsmon::scalable {
namespace {

using core::StdEvent;
using lustre::LustreFs;
using lustre::LustreFsOptions;

class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_ft_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ScalableMonitorOptions options() {
    ScalableMonitorOptions o;
    eventstore::EventStoreOptions store;
    store.directory = dir_;
    o.aggregator.store = store;
    return o;
  }

  void wait_until(const std::function<bool()>& predicate) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!predicate() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(predicate());
  }

  std::filesystem::path dir_;
  common::RealClock clock;
};

TEST_F(FaultToleranceTest, FailedConsumerReplaysHistoricEvents) {
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitor monitor(fs, options(), clock);
  ASSERT_TRUE(monitor.start().is_ok());

  // A consumer that "fails" (never started) while events flow.
  fs.create("/a");
  fs.create("/b");
  fs.create("/c");
  wait_until([&] { return monitor.aggregator().persisted() >= 3; });

  std::vector<std::string> paths;
  auto consumer = monitor.make_consumer(
      "late", ConsumerOptions{},
      [&](const StdEvent& event) { paths.push_back(event.path); });
  // Section IV "Consumption": retrieve historic events after a fault.
  auto replayed = consumer->replay_historic(0);
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(replayed.value(), 3u);
  EXPECT_EQ(paths, (std::vector<std::string>{"/a", "/b", "/c"}));
  monitor.stop();
}

TEST_F(FaultToleranceTest, ReplayRespectsFilter) {
  LustreFs fs(LustreFsOptions{}, clock);
  fs.mkdir("/keep");
  ScalableMonitor monitor(fs, options(), clock);
  ASSERT_TRUE(monitor.start().is_ok());
  fs.create("/keep/a");
  fs.create("/other");
  wait_until([&] { return monitor.aggregator().persisted() >= 2; });

  ConsumerOptions consumer_options;
  core::FilterRule rule;
  rule.root = "/keep";
  consumer_options.rules.push_back(rule);
  int delivered = 0;
  auto consumer = monitor.make_consumer("c", consumer_options,
                                        [&](const StdEvent&) { ++delivered; });
  auto replayed = consumer->replay_historic(0);
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(delivered, 1);
  monitor.stop();
}

TEST_F(FaultToleranceTest, AcknowledgedEventsPurgeFromStore) {
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitor monitor(fs, options(), clock);
  ASSERT_TRUE(monitor.start().is_ok());
  for (int i = 0; i < 5; ++i) fs.create("/f" + std::to_string(i));
  wait_until([&] { return monitor.aggregator().persisted() >= 5; });
  monitor.aggregator().acknowledge(3);
  EXPECT_EQ(monitor.aggregator().purge(), 3u);
  auto remaining = monitor.aggregator().events_since(0);
  ASSERT_TRUE(remaining.is_ok());
  EXPECT_EQ(remaining.value().size(), 2u);
  monitor.stop();
}

TEST_F(FaultToleranceTest, CollectorRestartLosesNothing) {
  // Records appended while no collector thread runs stay in the
  // changelog (purge happens only after processing), so a restarted
  // collector resumes exactly where it left off.
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitor monitor(fs, options(), clock);
  ASSERT_TRUE(monitor.start().is_ok());
  fs.create("/before");
  wait_until([&] { return monitor.total_records_processed() >= 1; });
  monitor.stop();  // "crash"

  fs.create("/during-outage-1");
  fs.create("/during-outage-2");
  EXPECT_EQ(fs.mds(0).mdt().changelog().retained(), 2u);

  ASSERT_TRUE(monitor.start().is_ok());  // restart
  wait_until([&] { return monitor.total_records_processed() >= 3; });
  monitor.stop();
  EXPECT_EQ(fs.mds(0).mdt().changelog().retained(), 0u);
}

TEST_F(FaultToleranceTest, StoreSurvivesAggregatorRestart) {
  LustreFs fs(LustreFsOptions{}, clock);
  {
    ScalableMonitor monitor(fs, options(), clock);
    ASSERT_TRUE(monitor.start().is_ok());
    fs.create("/persisted");
    wait_until([&] { return monitor.aggregator().persisted() >= 1; });
    monitor.stop();
  }
  // A new monitor over the same store directory recovers the events and
  // continues the id sequence.
  ScalableMonitor revived(fs, options(), clock);
  auto events = revived.aggregator().events_since(0);
  ASSERT_TRUE(events.is_ok());
  ASSERT_EQ(events.value().size(), 1u);
  EXPECT_EQ(events.value()[0].path, "/persisted");
  EXPECT_EQ(revived.aggregator().last_event_id(), 1u);

  ASSERT_TRUE(revived.start().is_ok());
  fs.create("/after-restart");
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (revived.aggregator().persisted() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  revived.stop();
  auto all = revived.aggregator().events_since(0);
  ASSERT_TRUE(all.is_ok());
  ASSERT_EQ(all.value().size(), 2u);
  EXPECT_EQ(all.value()[1].id, 2u);  // numbering continued
}


TEST_F(FaultToleranceTest, CorruptBatchFrameIsDroppedAndPipelineKeepsFlowing) {
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitor monitor(fs, options(), clock);
  std::atomic<int> received{0};
  auto consumer = monitor.make_consumer("c", ConsumerOptions{},
                                        [&](const StdEvent&) { received.fetch_add(1); });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  // Inject garbage straight into the aggregator's fan-in inbox, as a
  // misbehaving collector would: plain junk, a frame whose CRC trailer
  // is wrong, and a valid-but-empty batch.
  auto rogue = monitor.bus().make_publisher("rogue");
  rogue->connect(monitor.aggregator().inbox());
  rogue->publish("fsmon/rogue", "not a batch frame at all");
  auto bad_crc = core::encode_batch(core::EventBatch{});
  bad_crc.back() ^= std::byte{0xFF};
  rogue->publish("fsmon/rogue",
                 std::string(reinterpret_cast<const char*>(bad_crc.data()),
                             bad_crc.size()));
  const auto empty = core::encode_batch(core::EventBatch{});
  rogue->publish("fsmon/rogue",
                 std::string(reinterpret_cast<const char*>(empty.data()), empty.size()));

  // Real events published after the corruption still flow end-to-end,
  // with ids untouched by the dropped frames.
  fs.create("/a");
  fs.create("/b");
  wait_until([&] {
    return received.load() >= 2 && monitor.aggregator().persisted() >= 2;
  });
  consumer->stop();
  monitor.stop();
  EXPECT_EQ(received.load(), 2);
  EXPECT_EQ(monitor.aggregator().aggregated(), 2u);
  auto replay = monitor.aggregator().events_since(0);
  ASSERT_TRUE(replay.is_ok());
  ASSERT_EQ(replay.value().size(), 2u);
  EXPECT_EQ(replay.value()[0].id, 1u);
  EXPECT_EQ(replay.value()[1].id, 2u);
}

TEST_F(FaultToleranceTest, PeriodicPurgeCycleRemovesAcknowledgedEvents) {
  LustreFs fs(LustreFsOptions{}, clock);
  auto o = options();
  o.aggregator.purge_interval = std::chrono::milliseconds(30);
  ScalableMonitor monitor(fs, o, clock);
  ASSERT_TRUE(monitor.start().is_ok());
  for (int i = 0; i < 4; ++i) fs.create("/f" + std::to_string(i));
  wait_until([&] { return monitor.aggregator().persisted() >= 4; });
  monitor.aggregator().acknowledge(4);
  // The purge cycle, not a manual purge() call, removes them. Wait on
  // both conditions: the cycle counter increments just after the purge,
  // so checking it separately would race.
  wait_until([&] {
    return monitor.aggregator().store()->live_records() == 0 &&
           monitor.aggregator().purge_cycles() >= 1;
  });
  monitor.stop();
}

}  // namespace
}  // namespace fsmon::scalable
