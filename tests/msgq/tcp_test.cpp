// Tests for the TCP pub/sub transport (loopback sockets). Skipped when
// the sandbox forbids socket creation.
#include "src/msgq/tcp.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

namespace fsmon::msgq {
namespace {

bool sockets_available() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!sockets_available()) GTEST_SKIP() << "sockets unavailable in this sandbox";
    ASSERT_TRUE(publisher.start(0).is_ok());
    ASSERT_NE(publisher.port(), 0);
  }

  /// Publish until the subscriber's filter registration has landed
  /// (registration is asynchronous on the publisher side).
  void wait_for_delivery(TcpSubscriber& subscriber, const std::string& topic) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (publisher.publish(topic, "ping") > 0) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    FAIL() << "subscription never became active";
    (void)subscriber;
  }

  TcpPublisher publisher;
};

TEST_F(TcpTest, PublishReachesSubscriber) {
  TcpSubscriber subscriber;
  ASSERT_TRUE(subscriber.connect("127.0.0.1", publisher.port()).is_ok());
  ASSERT_TRUE(subscriber.subscribe("fsmon/").is_ok());
  wait_for_delivery(subscriber, "fsmon/mdt0");
  publisher.publish("fsmon/mdt0", "event-payload");
  // Drain the pings, find the payload.
  for (;;) {
    auto message = subscriber.recv();
    ASSERT_TRUE(message.has_value());
    if (message->payload == "event-payload") {
      EXPECT_EQ(message->topic, "fsmon/mdt0");
      break;
    }
  }
}

TEST_F(TcpTest, TopicFilteringAppliesRemotely) {
  TcpSubscriber subscriber;
  ASSERT_TRUE(subscriber.connect("127.0.0.1", publisher.port()).is_ok());
  ASSERT_TRUE(subscriber.subscribe("wanted/").is_ok());
  wait_for_delivery(subscriber, "wanted/x");
  EXPECT_EQ(publisher.publish("unwanted/x", "nope"), 0u);
  publisher.publish("wanted/x", "yes");
  for (;;) {
    auto message = subscriber.recv();
    ASSERT_TRUE(message.has_value());
    EXPECT_NE(message->payload, "nope");
    if (message->payload == "yes") break;
  }
}

TEST_F(TcpTest, MultipleSubscribersFanOut) {
  TcpSubscriber a, b;
  ASSERT_TRUE(a.connect("127.0.0.1", publisher.port()).is_ok());
  ASSERT_TRUE(b.connect("127.0.0.1", publisher.port()).is_ok());
  ASSERT_TRUE(a.subscribe("t").is_ok());
  ASSERT_TRUE(b.subscribe("t").is_ok());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (publisher.publish("t", "ping") == 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(publisher.publish("t", "final"), 2u);
  EXPECT_EQ(publisher.connection_count(), 2u);
}

TEST_F(TcpTest, ManyFramesInOrder) {
  TcpSubscriber subscriber;
  ASSERT_TRUE(subscriber.connect("127.0.0.1", publisher.port()).is_ok());
  ASSERT_TRUE(subscriber.subscribe("seq").is_ok());
  wait_for_delivery(subscriber, "seq");
  constexpr int kCount = 2000;
  for (int i = 0; i < kCount; ++i) publisher.publish("seq", std::to_string(i));
  int expected = 0;
  while (expected < kCount) {
    auto message = subscriber.recv();
    ASSERT_TRUE(message.has_value());
    if (message->payload == "ping") continue;
    EXPECT_EQ(message->payload, std::to_string(expected));
    ++expected;
  }
}

TEST_F(TcpTest, UnsubscribeStopsRemoteDelivery) {
  TcpSubscriber subscriber;
  ASSERT_TRUE(subscriber.connect("127.0.0.1", publisher.port()).is_ok());
  ASSERT_TRUE(subscriber.subscribe("t").is_ok());
  wait_for_delivery(subscriber, "t");
  ASSERT_TRUE(subscriber.unsubscribe("t").is_ok());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (publisher.publish("t", "x") == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(publisher.publish("t", "x"), 0u);
}

TEST_F(TcpTest, SubscriberDisconnectDetected) {
  auto subscriber = std::make_unique<TcpSubscriber>();
  ASSERT_TRUE(subscriber->connect("127.0.0.1", publisher.port()).is_ok());
  ASSERT_TRUE(subscriber->subscribe("t").is_ok());
  wait_for_delivery(*subscriber, "t");
  subscriber.reset();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (publisher.publish("t", "x") == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(publisher.publish("t", "x"), 0u);
}

TEST_F(TcpTest, LargePayloadRoundTrip) {
  TcpSubscriber subscriber;
  ASSERT_TRUE(subscriber.connect("127.0.0.1", publisher.port()).is_ok());
  ASSERT_TRUE(subscriber.subscribe("big").is_ok());
  wait_for_delivery(subscriber, "big");
  std::string payload(512 * 1024, 'x');
  payload[12345] = 'y';
  publisher.publish("big", payload);
  for (;;) {
    auto message = subscriber.recv();
    ASSERT_TRUE(message.has_value());
    if (message->payload.size() == payload.size()) {
      EXPECT_EQ(message->payload, payload);
      break;
    }
  }
}

TEST(TcpSubscriberTest, ConnectToNothingFails) {
  if (!sockets_available()) GTEST_SKIP();
  TcpSubscriber subscriber;
  // Port 1 on loopback: connection refused.
  EXPECT_FALSE(subscriber.connect("127.0.0.1", 1).is_ok());
  EXPECT_FALSE(subscriber.subscribe("t").is_ok());
}

TEST(TcpSubscriberTest, BadAddressRejected) {
  if (!sockets_available()) GTEST_SKIP();
  TcpSubscriber subscriber;
  EXPECT_EQ(subscriber.connect("not-an-ip", 1234).code(), common::ErrorCode::kInvalid);
}

}  // namespace
}  // namespace fsmon::msgq
