#include "src/msgq/pubsub.hpp"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

namespace fsmon::msgq {
namespace {

TEST(PubSubTest, DeliversToMatchingSubscriber) {
  Bus bus;
  auto pub = bus.make_publisher("p");
  auto sub = bus.make_subscriber("s", 16);
  sub->subscribe("fsmon/");
  pub->connect(sub);
  EXPECT_EQ(pub->publish("fsmon/mdt0", "hello"), 1u);
  auto message = sub->try_recv();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->payload, "hello");
}

TEST(PubSubTest, NoFiltersMeansNoDelivery) {
  Bus bus;
  auto pub = bus.make_publisher("p");
  auto sub = bus.make_subscriber("s", 16);
  pub->connect(sub);
  EXPECT_EQ(pub->publish("any", "x"), 0u);
  EXPECT_FALSE(sub->try_recv().has_value());
}

TEST(PubSubTest, TopicFilterExcludesNonMatching) {
  Bus bus;
  auto pub = bus.make_publisher("p");
  auto sub = bus.make_subscriber("s", 16);
  sub->subscribe("a/");
  pub->connect(sub);
  pub->publish("a/1", "yes");
  pub->publish("b/1", "no");
  EXPECT_EQ(sub->pending(), 1u);
  EXPECT_EQ(sub->try_recv()->payload, "yes");
}

TEST(PubSubTest, UnsubscribeStopsDelivery) {
  Bus bus;
  auto pub = bus.make_publisher("p");
  auto sub = bus.make_subscriber("s", 16);
  sub->subscribe("t");
  pub->connect(sub);
  pub->publish("t", "1");
  sub->unsubscribe("t");
  pub->publish("t", "2");
  EXPECT_EQ(sub->pending(), 1u);
}

TEST(PubSubTest, FanOutToMultipleSubscribers) {
  Bus bus;
  auto pub = bus.make_publisher("p");
  auto s1 = bus.make_subscriber("s1", 16);
  auto s2 = bus.make_subscriber("s2", 16);
  s1->subscribe("");
  s2->subscribe("");
  pub->connect(s1);
  pub->connect(s2);
  EXPECT_EQ(pub->publish("t", "x"), 2u);
  EXPECT_EQ(s1->pending(), 1u);
  EXPECT_EQ(s2->pending(), 1u);
}

TEST(PubSubTest, FanInFromMultiplePublishers) {
  // The aggregator pattern: N collectors -> one inbox.
  Bus bus;
  auto inbox = bus.make_subscriber("aggregator", 64);
  inbox->subscribe("");
  std::vector<std::shared_ptr<Publisher>> collectors;
  for (int i = 0; i < 4; ++i) {
    auto pub = bus.make_publisher("collector" + std::to_string(i));
    pub->connect(inbox);
    collectors.push_back(std::move(pub));
  }
  for (int i = 0; i < 4; ++i)
    collectors[static_cast<std::size_t>(i)]->publish("fsmon/mdt" + std::to_string(i), "e");
  EXPECT_EQ(inbox->pending(), 4u);
}

TEST(PubSubTest, DropNewestAtHighWaterMark) {
  Bus bus;
  auto pub = bus.make_publisher("p");
  auto sub = bus.make_subscriber("s", 2, common::OverflowPolicy::kDropNewest);
  sub->subscribe("");
  pub->connect(sub);
  EXPECT_EQ(pub->publish("t", "1"), 1u);
  EXPECT_EQ(pub->publish("t", "2"), 1u);
  EXPECT_EQ(pub->publish("t", "3"), 0u);  // dropped at HWM
  EXPECT_EQ(sub->dropped(), 1u);
}

TEST(PubSubTest, BlockPolicyIsLossless) {
  Bus bus;
  auto pub = bus.make_publisher("p");
  auto sub = bus.make_subscriber("s", 4, common::OverflowPolicy::kBlock);
  sub->subscribe("");
  pub->connect(sub);
  constexpr int kCount = 5000;
  std::jthread producer([&] {
    for (int i = 0; i < kCount; ++i) pub->publish("t", std::to_string(i));
  });
  int received = 0;
  while (received < kCount) {
    if (auto m = sub->recv()) {
      EXPECT_EQ(m->payload, std::to_string(received));
      ++received;
    }
  }
  EXPECT_EQ(received, kCount);
}

TEST(PubSubTest, CloseUnblocksReceiver) {
  Bus bus;
  auto sub = bus.make_subscriber("s", 4);
  sub->subscribe("");
  std::jthread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sub->close();
  });
  EXPECT_FALSE(sub->recv().has_value());
}

TEST(PubSubTest, DeadSubscribersArePruned) {
  Bus bus;
  auto pub = bus.make_publisher("p");
  {
    auto sub = std::make_shared<Subscriber>("ephemeral", 4);
    sub->subscribe("");
    pub->connect(sub);
    EXPECT_EQ(pub->subscriber_count(), 1u);
  }
  EXPECT_EQ(pub->subscriber_count(), 0u);
  EXPECT_EQ(pub->publish("t", "x"), 0u);
}

TEST(PubSubTest, DisconnectByName) {
  Bus bus;
  auto pub = bus.make_publisher("p");
  auto sub = bus.make_subscriber("s", 4);
  sub->subscribe("");
  pub->connect(sub);
  pub->disconnect("s");
  EXPECT_EQ(pub->publish("t", "x"), 0u);
}

TEST(BusTest, ConnectByName) {
  Bus bus;
  bus.make_publisher("p");
  auto sub = bus.make_subscriber("s", 4);
  sub->subscribe("");
  EXPECT_TRUE(bus.connect("p", "s"));
  EXPECT_FALSE(bus.connect("missing", "s"));
  EXPECT_FALSE(bus.connect("p", "missing"));
  bus.find_publisher("p")->publish("t", "x");
  EXPECT_EQ(sub->pending(), 1u);
}

TEST(PubSubTest, BlockedDeliveryDoesNotHoldPublisherLock) {
  // Regression: publish must snapshot the subscriber list under the lock
  // and deliver outside it. A subscriber at HWM with kBlock stalls the
  // delivering thread; connect/disconnect/subscriber_count and publishes
  // to other subscribers must still complete while it is stalled.
  Bus bus;
  auto pub = bus.make_publisher("p");
  auto full = bus.make_subscriber("full", 1, common::OverflowPolicy::kBlock);
  full->subscribe("t");  // not "": the "u" publish below must bypass it
  pub->connect(full);
  ASSERT_EQ(pub->publish("t", "fills the inbox"), 1u);

  std::atomic<bool> blocked_publish_done{false};
  std::jthread blocked([&] {
    pub->publish("t", "blocks until the inbox drains");
    blocked_publish_done.store(true);
  });
  // Give the blocked publisher time to park inside deliver().
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_FALSE(blocked_publish_done.load());

  // All of these deadlock if publish still holds mu_ while delivering.
  auto other = bus.make_subscriber("other", 16);
  other->subscribe("");
  pub->connect(other);
  EXPECT_EQ(pub->subscriber_count(), 2u);
  EXPECT_EQ(pub->publish("u", "reaches the unblocked subscriber"), 1u);
  EXPECT_EQ(other->pending(), 1u);
  pub->disconnect("other");
  EXPECT_EQ(pub->subscriber_count(), 1u);

  // Drain the full inbox so the stalled publish completes.
  while (!blocked_publish_done.load()) {
    full->try_recv();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(PubSubTest, RecvBatchDrains) {
  Bus bus;
  auto pub = bus.make_publisher("p");
  auto sub = bus.make_subscriber("s", 64);
  sub->subscribe("");
  pub->connect(sub);
  for (int i = 0; i < 10; ++i) pub->publish("t", std::to_string(i));
  auto batch = sub->recv_batch(6);
  EXPECT_EQ(batch.size(), 6u);
  EXPECT_EQ(sub->pending(), 4u);
}

}  // namespace
}  // namespace fsmon::msgq
