#include "src/msgq/message.hpp"

#include <gtest/gtest.h>

#include "src/common/random.hpp"

namespace fsmon::msgq {
namespace {

TEST(TopicMatchTest, PrefixSemantics) {
  EXPECT_TRUE(topic_matches("", "anything"));
  EXPECT_TRUE(topic_matches("fsmon/", "fsmon/mdt0"));
  EXPECT_FALSE(topic_matches("fsmon/mdt1", "fsmon/mdt0"));
  EXPECT_TRUE(topic_matches("fsmon/mdt0", "fsmon/mdt0"));
  EXPECT_FALSE(topic_matches("longer-than-topic", "short"));
}

TEST(FrameTest, EncodeDecodeRoundTrip) {
  const Message message{"fsmon/mdt0", "payload bytes"};
  const auto frame = encode_frame(message);
  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, message);
  EXPECT_EQ(decoded->second, frame.size());
}

TEST(FrameTest, EmptyTopicAndPayload) {
  const Message message{"", ""};
  const auto frame = encode_frame(message);
  EXPECT_EQ(frame.size(), 12u);
  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, message);
}

TEST(FrameTest, PartialFrameReturnsNullopt) {
  const auto frame = encode_frame(Message{"topic", "payload"});
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(decode_frame(std::span(frame.data(), len)).has_value()) << len;
  }
}

TEST(FrameTest, CorruptPayloadThrows) {
  auto frame = encode_frame(Message{"topic", "payload"});
  frame[6] ^= std::byte{0xFF};  // flip a topic byte
  EXPECT_THROW(decode_frame(frame), std::runtime_error);
}

TEST(FrameTest, CorruptCrcThrows) {
  auto frame = encode_frame(Message{"t", "p"});
  frame.back() ^= std::byte{0x01};
  EXPECT_THROW(decode_frame(frame), std::runtime_error);
}

TEST(FrameTest, BackToBackFramesDecodeSequentially) {
  auto a = encode_frame(Message{"t1", "p1"});
  const auto b = encode_frame(Message{"t2", "payload-two"});
  a.insert(a.end(), b.begin(), b.end());
  auto first = decode_frame(a);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->first.topic, "t1");
  auto second = decode_frame(std::span(a).subspan(first->second));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->first.payload, "payload-two");
}

TEST(FrameTest, FuzzRoundTripRandomPayloads) {
  common::Rng rng(1234);
  for (int i = 0; i < 200; ++i) {
    Message message;
    const auto topic_len = rng.next_below(32);
    const auto payload_len = rng.next_below(512);
    for (std::uint64_t k = 0; k < topic_len; ++k)
      message.topic.push_back(static_cast<char>(rng.next_below(256)));
    for (std::uint64_t k = 0; k < payload_len; ++k)
      message.payload.push_back(static_cast<char>(rng.next_below(256)));
    auto decoded = decode_frame(encode_frame(message));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->first, message);
  }
}

}  // namespace
}  // namespace fsmon::msgq
