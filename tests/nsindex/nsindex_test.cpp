// NamespaceIndex applier/query unit tests: ordering contract, create /
// touch / delete semantics, rename-chain resolution (including subtree
// moves), as-of reads, and the canonical serialize/restore round trip.
#include <gtest/gtest.h>

#include "src/nsindex/nsindex.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::nsindex {
namespace {

using core::EventKind;
using core::StdEvent;

StdEvent make_event(common::EventId id, EventKind kind, std::string path,
                    bool is_dir = false, std::uint64_t cookie = 0) {
  StdEvent event;
  event.id = id;
  event.kind = kind;
  event.is_dir = is_dir;
  event.watch_root = "/mnt/lustre";
  event.path = std::move(path);
  event.cookie = cookie != 0 ? cookie : id;
  event.timestamp = common::TimePoint{common::Duration{static_cast<std::int64_t>(id) * 1000}};
  event.source = "lustre:MDT0";
  return event;
}

/// Apply a dense sequence to shard 0, asserting every event folds.
void apply_all(NamespaceIndex& index, const std::vector<StdEvent>& events) {
  for (const StdEvent& event : events)
    ASSERT_EQ(index.apply(0, event), NamespaceIndex::ApplyResult::kApplied)
        << "event id " << event.id << " path " << event.path;
}

TEST(NamespaceIndexTest, CreateLookupAndImplicitAncestors) {
  NamespaceIndex index;
  apply_all(index, {make_event(1, EventKind::kCreate, "/a/b/f.txt")});

  auto node = index.lookup("/a/b/f.txt");
  ASSERT_TRUE(node.has_value());
  EXPECT_FALSE(node->is_dir);
  EXPECT_FALSE(node->implicit);
  EXPECT_EQ(node->create_event, 1u);
  EXPECT_EQ(node->last_event, 1u);
  EXPECT_EQ(node->last_kind, EventKind::kCreate);
  EXPECT_EQ(node->events, 1u);

  // /a and /a/b were materialized as implicit directories.
  auto a = index.lookup("/a");
  auto b = index.lookup("/a/b");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(a->is_dir);
  EXPECT_TRUE(a->implicit);
  EXPECT_TRUE(b->implicit);
  EXPECT_EQ(index.node_count(), 3u);
  EXPECT_EQ(index.dir_count(), 2u);

  // An explicit mkdir later promotes the implicit node.
  ASSERT_EQ(index.apply(0, make_event(2, EventKind::kCreate, "/a/b", true)),
            NamespaceIndex::ApplyResult::kApplied);
  b = index.lookup("/a/b");
  EXPECT_FALSE(b->implicit);
  EXPECT_EQ(b->create_event, 2u);
  EXPECT_EQ(b->node_id, index.lookup("/a/b")->node_id) << "promotion keeps identity";
}

TEST(NamespaceIndexTest, OrderingContractRefusesDuplicatesAndGaps) {
  NamespaceIndex index;
  EXPECT_EQ(index.apply(0, make_event(1, EventKind::kCreate, "/f")),
            NamespaceIndex::ApplyResult::kApplied);
  EXPECT_EQ(index.apply(0, make_event(1, EventKind::kCreate, "/f")),
            NamespaceIndex::ApplyResult::kDuplicate);
  EXPECT_EQ(index.apply(0, make_event(3, EventKind::kModify, "/f")),
            NamespaceIndex::ApplyResult::kOutOfOrder);
  // The refused event left no trace: id 2 then 3 still apply.
  EXPECT_EQ(index.apply(0, make_event(2, EventKind::kModify, "/f")),
            NamespaceIndex::ApplyResult::kApplied);
  EXPECT_EQ(index.apply(0, make_event(3, EventKind::kModify, "/f")),
            NamespaceIndex::ApplyResult::kApplied);
  EXPECT_EQ(index.lookup("/f")->events, 3u);
  // Independent per-shard sequences.
  EXPECT_EQ(index.apply(1, make_event(1, EventKind::kCreate, "/g")),
            NamespaceIndex::ApplyResult::kApplied);
  EXPECT_EQ(index.applied_cursor().at(0), 3u);
  EXPECT_EQ(index.applied_cursor().at(1), 1u);
}

TEST(NamespaceIndexTest, ListDirSkipsSubtreesAndRejectsFiles) {
  NamespaceIndex index;
  apply_all(index, {
    make_event(1, EventKind::kCreate, "/d", true),
    make_event(2, EventKind::kCreate, "/d/a.txt"),
    make_event(3, EventKind::kCreate, "/d/sub", true),
    make_event(4, EventKind::kCreate, "/d/sub/deep.txt"),
    make_event(5, EventKind::kCreate, "/d/z.txt"),
    make_event(6, EventKind::kCreate, "/top.txt"),
  });

  auto root = index.list_dir("/");
  ASSERT_TRUE(root.is_ok());
  ASSERT_EQ(root.value().size(), 2u);
  EXPECT_EQ(root.value()[0].name, "d");
  EXPECT_TRUE(root.value()[0].is_dir);
  EXPECT_EQ(root.value()[1].name, "top.txt");

  auto d = index.list_dir("/d");
  ASSERT_TRUE(d.is_ok());
  ASSERT_EQ(d.value().size(), 3u);
  EXPECT_EQ(d.value()[0].name, "a.txt");
  EXPECT_EQ(d.value()[1].name, "sub");
  EXPECT_EQ(d.value()[2].name, "z.txt");

  EXPECT_EQ(index.list_dir("/missing").status().code(), common::ErrorCode::kNotFound);
  EXPECT_EQ(index.list_dir("/top.txt").status().code(),
            common::ErrorCode::kNotADirectory);
}

TEST(NamespaceIndexTest, ListDirKeepsSiblingsSortingBetweenDirAndItsSubtree) {
  // "/d/sub.txt" and "/d/sub-x" sort between "/d/sub" and "/d/sub/"
  // ('.' and '-' are below '/'): a listing that blindly jumps from a
  // directory entry to the end of its subtree key range skips them.
  NamespaceIndex index;
  apply_all(index, {
    make_event(1, EventKind::kCreate, "/d", true),
    make_event(2, EventKind::kCreate, "/d/sub", true),
    make_event(3, EventKind::kCreate, "/d/sub/inner.txt"),
    make_event(4, EventKind::kCreate, "/d/sub.txt"),
    make_event(5, EventKind::kCreate, "/d/sub-x"),
    make_event(6, EventKind::kCreate, "/d/sub0y"),
  });
  auto listing = index.list_dir("/d");
  ASSERT_TRUE(listing.is_ok());
  ASSERT_EQ(listing.value().size(), 4u);
  EXPECT_EQ(listing.value()[0].name, "sub");
  EXPECT_TRUE(listing.value()[0].is_dir);
  EXPECT_EQ(listing.value()[1].name, "sub-x");
  EXPECT_EQ(listing.value()[2].name, "sub.txt");
  EXPECT_EQ(listing.value()[3].name, "sub0y");
}

TEST(NamespaceIndexTest, DeleteRemovesWholeSubtree) {
  NamespaceIndex index;
  apply_all(index, {
    make_event(1, EventKind::kCreate, "/d", true),
    make_event(2, EventKind::kCreate, "/d/f"),
    make_event(3, EventKind::kCreate, "/d/sub/g"),
    make_event(4, EventKind::kDelete, "/d", true),
  });
  EXPECT_FALSE(index.lookup("/d").has_value());
  EXPECT_FALSE(index.lookup("/d/f").has_value());
  EXPECT_FALSE(index.lookup("/d/sub/g").has_value());
  EXPECT_EQ(index.node_count(), 0u);
  // Key-range discipline: /dz is NOT under /d and must survive a /d wipe.
  apply_all(index, {
    make_event(5, EventKind::kCreate, "/e", true),
    make_event(6, EventKind::kCreate, "/ez.txt"),
    make_event(7, EventKind::kDelete, "/e", true),
  });
  EXPECT_TRUE(index.lookup("/ez.txt").has_value());
}

TEST(NamespaceIndexTest, RenamePairMovesNodeAndRecordsChain) {
  NamespaceIndex index;
  apply_all(index, {
    make_event(1, EventKind::kCreate, "/old.txt"),
    make_event(2, EventKind::kMovedFrom, "/old.txt", false, 77),
    make_event(3, EventKind::kMovedTo, "/new.txt", false, 77),
  });
  EXPECT_FALSE(index.lookup("/old.txt").has_value());
  auto node = index.lookup("/new.txt");
  ASSERT_TRUE(node.has_value());
  ASSERT_EQ(node->chain.size(), 1u);
  EXPECT_EQ(node->chain[0].old_path, "/old.txt");
  EXPECT_EQ(node->last_kind, EventKind::kMovedTo);

  // Identity survives the rename: chain resolvable by node id.
  auto chain = index.resolve_rename_chain(node->node_id);
  ASSERT_TRUE(chain.is_ok());
  EXPECT_EQ(chain.value().current_path, "/new.txt");
  ASSERT_EQ(chain.value().hops.size(), 1u);
  EXPECT_EQ(chain.value().hops[0].old_path, "/old.txt");
}

TEST(NamespaceIndexTest, DirectoryRenameMovesSubtreeWithHops) {
  NamespaceIndex index;
  apply_all(index, {
    make_event(1, EventKind::kCreate, "/proj", true),
    make_event(2, EventKind::kCreate, "/proj/src", true),
    make_event(3, EventKind::kCreate, "/proj/src/main.c"),
    make_event(4, EventKind::kCreate, "/proj/README"),
    make_event(5, EventKind::kMovedFrom, "/proj", true, 99),
    make_event(6, EventKind::kMovedTo, "/archive", true, 99),
  });
  EXPECT_FALSE(index.lookup("/proj").has_value());
  EXPECT_FALSE(index.lookup("/proj/src/main.c").has_value());
  ASSERT_TRUE(index.lookup("/archive").has_value());
  ASSERT_TRUE(index.lookup("/archive/src").has_value());
  auto main_c = index.lookup("/archive/src/main.c");
  ASSERT_TRUE(main_c.has_value());
  // The descendant records the hop its ancestor's rename imposed.
  ASSERT_EQ(main_c->chain.size(), 1u);
  EXPECT_EQ(main_c->chain[0].old_path, "/proj/src/main.c");
  // Listing works at the new location.
  auto listing = index.list_dir("/archive");
  ASSERT_TRUE(listing.is_ok());
  ASSERT_EQ(listing.value().size(), 2u);
  EXPECT_EQ(listing.value()[0].name, "README");
  EXPECT_EQ(listing.value()[1].name, "src");
  // A second rename stacks a second hop.
  apply_all(index, {
    make_event(7, EventKind::kMovedFrom, "/archive/src/main.c", false, 123),
    make_event(8, EventKind::kMovedTo, "/archive/src/main_v2.c", false, 123),
  });
  auto v2 = index.resolve_rename_chain(std::string_view("/archive/src/main_v2.c"));
  ASSERT_TRUE(v2.is_ok());
  ASSERT_EQ(v2.value().hops.size(), 2u);
  EXPECT_EQ(v2.value().hops[0].old_path, "/proj/src/main.c");
  EXPECT_EQ(v2.value().hops[1].old_path, "/archive/src/main.c");
  EXPECT_EQ(v2.value().node_id, main_c->node_id);
}

TEST(NamespaceIndexTest, OrphanMovedToFoldsAsCreate) {
  obs::MetricsRegistry registry;
  NamespaceIndexOptions options;
  options.metrics = &registry;
  NamespaceIndex index(options);
  // MOVED_TO with no stashed MOVED_FROM (source was outside the watch).
  apply_all(index, {make_event(1, EventKind::kMovedTo, "/imported.txt", false, 5)});
  auto node = index.lookup("/imported.txt");
  ASSERT_TRUE(node.has_value());
  EXPECT_TRUE(node->chain.empty());
  EXPECT_EQ(registry.counter("nsidx.rename_orphans", {}).value(), 1u);
}

TEST(NamespaceIndexTest, PendingRenameCapEvictsOldestHalf) {
  obs::MetricsRegistry registry;
  NamespaceIndexOptions options;
  options.pending_rename_cap = 2;
  options.metrics = &registry;
  NamespaceIndex index(options);
  apply_all(index, {
    make_event(1, EventKind::kCreate, "/a"),
    make_event(2, EventKind::kCreate, "/b"),
    make_event(3, EventKind::kCreate, "/c"),
    // Three dangling MOVED_FROM halves against a cap of two: the oldest
    // (cookie 100) is evicted when the third one parks.
    make_event(4, EventKind::kMovedFrom, "/a", false, 100),
    make_event(5, EventKind::kMovedFrom, "/b", false, 101),
    make_event(6, EventKind::kMovedFrom, "/c", false, 102),
  });
  EXPECT_EQ(registry.counter("nsidx.pending_rename_evictions", {}).value(), 1u);
  EXPECT_EQ(registry.gauge("nsidx.pending_renames", {}).value(), 2);
  // The evicted half's MOVED_TO folds as an orphan create; the source
  // node stays (its removal would have been the pairing's job).
  apply_all(index, {make_event(7, EventKind::kMovedTo, "/a2", false, 100)});
  EXPECT_EQ(registry.counter("nsidx.rename_orphans", {}).value(), 1u);
  ASSERT_TRUE(index.lookup("/a2").has_value());
  EXPECT_TRUE(index.lookup("/a2")->chain.empty());
  // A surviving half still pairs normally.
  apply_all(index, {make_event(8, EventKind::kMovedTo, "/b2", false, 101)});
  ASSERT_TRUE(index.lookup("/b2").has_value());
  ASSERT_EQ(index.lookup("/b2")->chain.size(), 1u);
  EXPECT_EQ(index.lookup("/b2")->chain[0].old_path, "/b");
  EXPECT_FALSE(index.lookup("/b").has_value());
  // Cookie 102's half is still parked; 101's was consumed by the pair.
  EXPECT_EQ(registry.gauge("nsidx.pending_renames", {}).value(), 1);
}

TEST(NamespaceIndexTest, UnlinkThenRecreateGetsFreshIdentity) {
  NamespaceIndex index;
  apply_all(index, {
    make_event(1, EventKind::kCreate, "/f"),
    make_event(2, EventKind::kMovedFrom, "/f", false, 42),
    make_event(3, EventKind::kMovedTo, "/g", false, 42),
  });
  const std::uint64_t old_id = index.lookup("/g")->node_id;
  apply_all(index, {
    make_event(4, EventKind::kDelete, "/g"),
    make_event(5, EventKind::kCreate, "/g"),
  });
  auto fresh = index.lookup("/g");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_NE(fresh->node_id, old_id);
  EXPECT_TRUE(fresh->chain.empty()) << "recreated node must not inherit the chain";
  EXPECT_EQ(fresh->create_event, 5u);
  EXPECT_EQ(index.resolve_rename_chain(old_id).status().code(),
            common::ErrorCode::kNotFound);
}

TEST(NamespaceIndexTest, ActivityTopkCountsDirectChildren) {
  NamespaceIndex index;
  apply_all(index, {
    make_event(1, EventKind::kCreate, "/hot", true),
    make_event(2, EventKind::kCreate, "/hot/a"),
    make_event(3, EventKind::kModify, "/hot/a"),
    make_event(4, EventKind::kModify, "/hot/a"),
    make_event(5, EventKind::kCreate, "/cold", true),
    make_event(6, EventKind::kCreate, "/cold/b"),
  });
  auto top = index.activity_topk(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].path, "/hot");
  EXPECT_EQ(top[0].events, 3u);  // create + 2 modifies of /hot/a
  EXPECT_EQ(top[1].path, "/");
  EXPECT_EQ(top[1].events, 2u);  // the two top-level mkdirs
}

TEST(NamespaceIndexTest, ActivityMovesWithDirectoryRename) {
  NamespaceIndex index;
  apply_all(index, {
    make_event(1, EventKind::kCreate, "/d", true),
    make_event(2, EventKind::kCreate, "/d/f"),
    make_event(3, EventKind::kModify, "/d/f"),
    make_event(4, EventKind::kMovedFrom, "/d", true, 9),
    make_event(5, EventKind::kMovedTo, "/e", true, 9),
  });
  auto top = index.activity_topk(10);
  for (const auto& entry : top) EXPECT_NE(entry.path, "/d");
  bool found = false;
  for (const auto& entry : top)
    if (entry.path == "/e") {
      found = true;
      EXPECT_EQ(entry.events, 2u);
    }
  EXPECT_TRUE(found);
}

TEST(NamespaceIndexTest, AsOfLookupWalksUndoLog) {
  NamespaceIndex index;
  apply_all(index, {
    make_event(1, EventKind::kCreate, "/f"),        // seq 1
    make_event(2, EventKind::kModify, "/f"),        // seq 2
    make_event(3, EventKind::kDelete, "/f"),        // seq 3
    make_event(4, EventKind::kCreate, "/f"),        // seq 4
  });
  // As of seq 1: created, one event.
  auto at1 = index.lookup_as_of("/f", 1);
  ASSERT_TRUE(at1.is_ok());
  ASSERT_TRUE(at1.value().has_value());
  EXPECT_EQ(at1.value()->events, 1u);
  EXPECT_EQ(at1.value()->last_kind, EventKind::kCreate);
  // As of seq 2: modified.
  auto at2 = index.lookup_as_of("/f", 2);
  ASSERT_TRUE(at2.is_ok());
  EXPECT_EQ(at2.value()->events, 2u);
  EXPECT_EQ(at2.value()->last_kind, EventKind::kModify);
  // As of seq 3: deleted — no node.
  auto at3 = index.lookup_as_of("/f", 3);
  ASSERT_TRUE(at3.is_ok());
  EXPECT_FALSE(at3.value().has_value());
  // As of seq 4 (current): the recreated node, with a fresh identity.
  auto at4 = index.lookup_as_of("/f", 4);
  ASSERT_TRUE(at4.is_ok());
  ASSERT_TRUE(at4.value().has_value());
  EXPECT_NE(at4.value()->node_id, at1.value()->node_id);
}

TEST(NamespaceIndexTest, AsOfWindowIsBounded) {
  NamespaceIndexOptions options;
  options.undo_capacity = 4;
  NamespaceIndex index(options);
  std::vector<core::StdEvent> events;
  for (common::EventId id = 1; id <= 10; ++id)
    events.push_back(make_event(id, id == 1 ? EventKind::kCreate : EventKind::kModify,
                                "/f"));
  apply_all(index, events);
  EXPECT_GT(index.as_of_floor(), 0u);
  EXPECT_EQ(index.lookup_as_of("/f", 1).status().code(),
            common::ErrorCode::kOutOfRange);
  auto recent = index.lookup_as_of("/f", 9);
  ASSERT_TRUE(recent.is_ok());
  EXPECT_EQ(recent.value()->events, 9u);
}

TEST(NamespaceIndexTest, ChainCapTruncatesOldestHops) {
  NamespaceIndexOptions options;
  options.chain_cap = 2;
  NamespaceIndex index(options);
  apply_all(index, {make_event(1, EventKind::kCreate, "/n0")});
  common::EventId id = 2;
  for (int hop = 0; hop < 4; ++hop) {
    apply_all(index, {
      make_event(id, EventKind::kMovedFrom, "/n" + std::to_string(hop), false, 1000 + hop),
      make_event(id + 1, EventKind::kMovedTo, "/n" + std::to_string(hop + 1), false,
                 1000 + hop),
    });
    id += 2;
  }
  auto chain = index.resolve_rename_chain(std::string_view("/n4"));
  ASSERT_TRUE(chain.is_ok());
  EXPECT_TRUE(chain.value().truncated);
  ASSERT_EQ(chain.value().hops.size(), 2u);
  EXPECT_EQ(chain.value().hops[0].old_path, "/n2");
  EXPECT_EQ(chain.value().hops[1].old_path, "/n3");
}

TEST(NamespaceIndexTest, SerializeRestoreRoundTripIsByteExact) {
  NamespaceIndex index;
  apply_all(index, {
    make_event(1, EventKind::kCreate, "/d", true),
    make_event(2, EventKind::kCreate, "/d/f"),
    make_event(3, EventKind::kMovedFrom, "/d/f", false, 7),
    make_event(4, EventKind::kMovedTo, "/d/g", false, 7),
    make_event(5, EventKind::kModify, "/d/g"),
    // A dangling MOVED_FROM half: pending state must round-trip too.
    make_event(6, EventKind::kMovedFrom, "/d/g", false, 8),
  });
  std::vector<std::byte> image;
  index.serialize(image);

  NamespaceIndex restored;
  ASSERT_TRUE(restored.restore(image).is_ok());
  EXPECT_EQ(restored.applied_seq(), index.applied_seq());
  EXPECT_EQ(restored.applied_cursor().at(0), 6u);
  EXPECT_EQ(restored.debug_dump(), index.debug_dump());
  std::vector<std::byte> image2;
  restored.serialize(image2);
  EXPECT_EQ(image, image2);
  // The restored index has no undo history: as-of floor is the restored
  // step, and the pending rename half still resolves.
  EXPECT_EQ(restored.as_of_floor(), 6u);
  ASSERT_EQ(restored.apply(0, make_event(7, EventKind::kMovedTo, "/d/h", false, 8)),
            NamespaceIndex::ApplyResult::kApplied);
  ASSERT_TRUE(restored.lookup("/d/h").has_value());
  EXPECT_EQ(restored.lookup("/d/h")->chain.size(), 2u);
}

TEST(NamespaceIndexTest, RestoreRejectsCorruptImages) {
  NamespaceIndex index;
  apply_all(index, {make_event(1, EventKind::kCreate, "/f")});
  std::vector<std::byte> image;
  index.serialize(image);

  NamespaceIndex victim;
  // Truncated image.
  ASSERT_FALSE(
      victim.restore(std::span<const std::byte>(image).first(image.size() / 2))
          .is_ok());
  EXPECT_EQ(victim.node_count(), 0u);
  // Flipped magic.
  std::vector<std::byte> bad = image;
  bad[0] = static_cast<std::byte>(0xFF);
  ASSERT_FALSE(victim.restore(bad).is_ok());
  // Trailing garbage.
  bad = image;
  bad.push_back(std::byte{0});
  ASSERT_FALSE(victim.restore(bad).is_ok());
  // A valid image still restores after the failures.
  ASSERT_TRUE(victim.restore(image).is_ok());
  EXPECT_TRUE(victim.lookup("/f").has_value());
}

TEST(NamespaceIndexTest, MetricsCountApplierWork) {
  obs::MetricsRegistry registry;
  NamespaceIndexOptions options;
  options.metrics = &registry;
  NamespaceIndex index(options);
  apply_all(index, {
    make_event(1, EventKind::kCreate, "/d", true),
    make_event(2, EventKind::kCreate, "/d/f"),
    make_event(3, EventKind::kMovedFrom, "/d", true, 3),
    make_event(4, EventKind::kMovedTo, "/e", true, 3),
  });
  (void)index.apply(0, make_event(4, EventKind::kMovedTo, "/e", true, 3));  // dup
  EXPECT_EQ(registry.counter("nsidx.applied_events", {}).value(), 4u);
  EXPECT_EQ(registry.counter("nsidx.duplicate_events", {}).value(), 1u);
  EXPECT_EQ(registry.counter("nsidx.renames_applied", {}).value(), 1u);
  EXPECT_EQ(registry.counter("nsidx.subtree_moves", {}).value(), 1u);  // /d/f
  EXPECT_EQ(registry.gauge("nsidx.nodes", {}).value(), 2);
  EXPECT_EQ(registry.gauge("nsidx.dir_nodes", {}).value(), 1);
  (void)index.lookup("/e");
  EXPECT_EQ(registry.counter("nsidx.queries", {}).value(), 1u);
}

}  // namespace
}  // namespace fsmon::nsindex
