// IndexConsumer recovery tests: O(delta) restart (nsidx.replayed_events
// counts only the post-snapshot delta), torn-snapshot fallback with
// nsidx.snapshot_rebuilds, and cold-start full replay.
#include <chrono>
#include <filesystem>
#include <thread>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/chaos/fault.hpp"
#include "src/nsindex/index_consumer.hpp"
#include "src/scalable/scalable_monitor.hpp"

namespace fsmon::nsindex {
namespace {

using lustre::LustreFs;
using lustre::LustreFsOptions;

class NsIndexRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_nsidx_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  scalable::ScalableMonitorOptions monitor_options() {
    scalable::ScalableMonitorOptions o;
    o.collector.cache_size = 64;
    eventstore::EventStoreOptions store;
    store.directory = dir_ / "store";
    store.flush_each_append = true;
    o.aggregator.store = store;
    return o;
  }

  IndexConsumerOptions index_options(obs::MetricsRegistry* metrics) {
    IndexConsumerOptions o;
    o.snapshot_dir = dir_ / "snaps";
    o.snapshot_every = 0;  // explicit checkpoints only
    o.metrics = metrics;
    return o;
  }

  static bool wait_for(const std::function<bool()>& pred,
                       std::chrono::seconds timeout = std::chrono::seconds(15)) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
  }

  /// Wait until the merged store can serve `expected` events from zero —
  /// persistence is async, so replay-based assertions gate on this.
  static bool wait_persisted(scalable::ShardedAggregator& aggregator,
                             std::uint64_t expected) {
    return wait_for([&] {
      scalable::VectorCursor cursor(aggregator.shard_count());
      std::uint64_t seen = 0;
      for (;;) {
        auto events = aggregator.events_since(cursor, 4096);
        if (!events) return false;
        seen += events.value().size();
        if (events.value().size() < 4096) break;
      }
      return seen >= expected;
    });
  }

  std::filesystem::path dir_;
  common::RealClock clock;
};

TEST_F(NsIndexRecoveryTest, RestartReplaysOnlyThePostSnapshotDelta) {
  LustreFs fs(LustreFsOptions{}, clock);
  scalable::ScalableMonitor monitor(fs, monitor_options(), clock);
  ASSERT_TRUE(monitor.start().is_ok());

  std::uint64_t expected = 0;
  {
    obs::MetricsRegistry registry;
    IndexConsumer first(monitor.bus(), monitor.sharded(), "nsidx-a",
                        index_options(&registry));
    ASSERT_TRUE(first.start().is_ok());

    for (int i = 0; i < 20; ++i) {
      const std::string dir = "/d" + std::to_string(i);
      ASSERT_TRUE(fs.mkdir(dir).is_ok());
      ASSERT_TRUE(fs.create(dir + "/f").is_ok());
      ASSERT_TRUE(fs.modify(dir + "/f", 64).is_ok());
      expected += 3;
    }
    ASSERT_TRUE(wait_for([&] { return first.index().applied_seq() == expected; }))
        << "applied " << first.index().applied_seq() << " of " << expected;
    ASSERT_TRUE(first.checkpoint().is_ok());
    EXPECT_EQ(first.last_checkpoint_seq(), expected);
    first.stop();
  }
  const std::uint64_t checkpointed = expected;

  // Delta written while the index consumer is down.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs.create("/d0/extra" + std::to_string(i)).is_ok());
    ++expected;
  }
  ASSERT_TRUE(wait_persisted(monitor.sharded(), expected));

  obs::MetricsRegistry registry;
  IndexConsumer second(monitor.bus(), monitor.sharded(), "nsidx-b",
                       index_options(&registry));
  ASSERT_TRUE(second.start().is_ok());
  // O(delta): recovery replayed exactly the events above the snapshot
  // cursor, not the full history.
  EXPECT_EQ(second.replayed_events(), expected - checkpointed);
  EXPECT_EQ(registry.counter("nsidx.replayed_events", {}).value(),
            expected - checkpointed);
  ASSERT_TRUE(wait_for([&] { return second.index().applied_seq() == expected; }));

  // The recovered state equals a from-scratch fold of the full history.
  NamespaceIndex reference;
  auto folded = fold_namespace(monitor.sharded(), reference);
  ASSERT_TRUE(folded.is_ok());
  EXPECT_EQ(folded.value(), expected);
  EXPECT_EQ(second.index().debug_dump(), reference.debug_dump());

  second.stop();
  monitor.stop();
}

TEST_F(NsIndexRecoveryTest, TornSnapshotFallsBackToPreviousAndReplays) {
  LustreFs fs(LustreFsOptions{}, clock);
  scalable::ScalableMonitor monitor(fs, monitor_options(), clock);
  ASSERT_TRUE(monitor.start().is_ok());

  std::uint64_t expected = 0;
  std::uint64_t good_checkpoint = 0;
  {
    obs::MetricsRegistry registry;
    IndexConsumer first(monitor.bus(), monitor.sharded(), "nsidx-a",
                        index_options(&registry));
    ASSERT_TRUE(first.start().is_ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(fs.create("/f" + std::to_string(i)).is_ok());
      ++expected;
    }
    ASSERT_TRUE(wait_for([&] { return first.index().applied_seq() == expected; }));
    ASSERT_TRUE(first.checkpoint().is_ok());
    good_checkpoint = expected;

    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(fs.modify("/f" + std::to_string(i), 32).is_ok());
      ++expected;
    }
    ASSERT_TRUE(wait_for([&] { return first.index().applied_seq() == expected; }));
    {
      chaos::FaultPlan plan;
      plan.seed = 42;
      plan.rules.push_back(chaos::FaultRule{"nsindex.snapshot_torn",
                                            chaos::FaultAction::kFail, 0, 1.0, 1,
                                            std::chrono::nanoseconds(0), 0});
      chaos::ScopedFaultPlan scoped(std::move(plan));
      EXPECT_FALSE(first.checkpoint().is_ok()) << "torn write must not report success";
    }
    // The torn file reached the final snapshot name.
    EXPECT_EQ(first.snapshots().list().size(), 2u);
    first.stop();
  }
  ASSERT_TRUE(wait_persisted(monitor.sharded(), expected));

  obs::MetricsRegistry registry;
  IndexConsumer second(monitor.bus(), monitor.sharded(), "nsidx-b",
                       index_options(&registry));
  ASSERT_TRUE(second.start().is_ok());
  // The torn snapshot was discarded (counted), the previous one loaded,
  // and the delta above it — not just above the torn one — replayed.
  EXPECT_EQ(registry.counter("nsidx.snapshot_rebuilds", {}).value(), 1u);
  EXPECT_EQ(second.replayed_events(), expected - good_checkpoint);
  EXPECT_EQ(second.snapshots().list().size(), 1u) << "torn file deleted";
  ASSERT_TRUE(wait_for([&] { return second.index().applied_seq() == expected; }));

  NamespaceIndex reference;
  ASSERT_TRUE(fold_namespace(monitor.sharded(), reference).is_ok());
  EXPECT_EQ(second.index().debug_dump(), reference.debug_dump());

  second.stop();
  monitor.stop();
}

TEST_F(NsIndexRecoveryTest, ColdStartWithNoSnapshotReplaysEverything) {
  LustreFs fs(LustreFsOptions{}, clock);
  scalable::ScalableMonitor monitor(fs, monitor_options(), clock);
  ASSERT_TRUE(monitor.start().is_ok());

  std::uint64_t expected = 0;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(fs.create("/f" + std::to_string(i)).is_ok());
    ++expected;
  }
  ASSERT_TRUE(wait_persisted(monitor.sharded(), expected));

  obs::MetricsRegistry registry;
  IndexConsumer consumer(monitor.bus(), monitor.sharded(), "nsidx",
                         index_options(&registry));
  ASSERT_TRUE(consumer.start().is_ok());
  EXPECT_EQ(consumer.replayed_events(), expected);
  ASSERT_TRUE(wait_for([&] { return consumer.index().applied_seq() == expected; }));
  EXPECT_EQ(consumer.index().node_count(), 12u);

  consumer.stop();
  monitor.stop();
}

TEST_F(NsIndexRecoveryTest, PeriodicCheckpointsAdvanceTheAckFloorLive) {
  LustreFs fs(LustreFsOptions{}, clock);
  scalable::ScalableMonitor monitor(fs, monitor_options(), clock);
  ASSERT_TRUE(monitor.start().is_ok());

  obs::MetricsRegistry registry;
  IndexConsumerOptions options = index_options(&registry);
  options.snapshot_every = 16;  // automatic checkpoints while live
  IndexConsumer consumer(monitor.bus(), monitor.sharded(), "nsidx",
                         std::move(options));
  ASSERT_TRUE(consumer.start().is_ok());

  std::uint64_t expected = 0;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(fs.create("/f" + std::to_string(i)).is_ok());
    ++expected;
  }
  ASSERT_TRUE(wait_for([&] { return consumer.index().applied_seq() == expected; }));
  ASSERT_TRUE(wait_for([&] { return consumer.last_checkpoint_seq() >= 16; }));
  EXPECT_GE(registry.counter("nsidx.snapshots_written", {}).value(), 1u);
  EXPECT_FALSE(consumer.snapshots().list().empty());
  // Queries work while live.
  auto listing = consumer.index().list_dir("/");
  ASSERT_TRUE(listing.is_ok());
  EXPECT_EQ(listing.value().size(), 40u);

  consumer.stop();
  monitor.stop();
}

}  // namespace
}  // namespace fsmon::nsindex
