// Property test: whatever the crash/checkpoint/restart schedule, the
// recovered namespace index is byte-identical to a from-scratch fold of
// the full replayed stream. The workload includes directory renames
// (subtree moves), unlink-then-recreate of the same path, and rmdir;
// the schedule includes checkpoints at arbitrary points and crashes
// with un-checkpointed suffixes.
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/nsindex/index_consumer.hpp"
#include "src/scalable/scalable_monitor.hpp"

namespace fsmon::nsindex {
namespace {

using lustre::LustreFs;
using lustre::LustreFsOptions;

class ShadowWorkload {
 public:
  ShadowWorkload(LustreFs& fs, std::uint64_t seed) : fs_(fs), rng_(seed) {}

  /// Run one random namespace operation; returns events it published.
  std::uint64_t step() {
    switch (rng_() % 10) {
      case 0:
      case 1: return do_create();
      case 2: return do_mkdir();
      case 3:
      case 4: return do_modify();
      case 5: return do_rename_file();
      case 6: return do_rename_dir();
      case 7: return do_unlink();
      case 8: return do_recreate();
      default: return do_rmdir();
    }
  }

 private:
  std::string pick(const std::vector<std::string>& from) {
    return from[rng_() % from.size()];
  }
  std::string fresh_name(const std::string& dir) {
    const std::string name = (dir == "/" ? "" : dir) + "/n" + std::to_string(next_++);
    return name;
  }

  std::uint64_t do_create() {
    const std::string path = fresh_name(pick(dirs_));
    if (!fs_.create(path).is_ok()) return 0;
    files_.push_back(path);
    return 1;
  }
  std::uint64_t do_mkdir() {
    const std::string path = fresh_name(pick(dirs_));
    if (!fs_.mkdir(path).is_ok()) return 0;
    dirs_.push_back(path);
    return 1;
  }
  std::uint64_t do_modify() {
    if (files_.empty()) return do_create();
    if (!fs_.modify(pick(files_), 1 + rng_() % 4096).is_ok()) return 0;
    return 1;
  }
  std::uint64_t do_rename_file() {
    if (files_.empty()) return do_create();
    const std::size_t at = rng_() % files_.size();
    const std::string from = files_[at];
    const std::string to = fresh_name(pick(dirs_));
    if (!fs_.rename(from, to).is_ok()) return 0;
    files_[at] = to;
    return 2;  // MOVED_FROM + MOVED_TO
  }
  std::uint64_t do_rename_dir() {
    if (dirs_.size() < 2) return do_mkdir();
    const std::size_t at = 1 + rng_() % (dirs_.size() - 1);  // never "/"
    const std::string from = dirs_[at];
    // A destination under the source would be a cycle; pick parents
    // outside the moved subtree.
    std::vector<std::string> candidates;
    for (const std::string& dir : dirs_)
      if (dir != from && dir.rfind(from + "/", 0) != 0) candidates.push_back(dir);
    if (candidates.empty()) return 0;
    const std::string to = fresh_name(pick(candidates));
    if (!fs_.rename(from, to).is_ok()) return 0;
    // Rewrite every shadow path under the moved subtree.
    const auto rewrite = [&](std::string& path) {
      if (path == from)
        path = to;
      else if (path.rfind(from + "/", 0) == 0)
        path = to + path.substr(from.size());
    };
    for (std::string& dir : dirs_) rewrite(dir);
    for (std::string& file : files_) rewrite(file);
    return 2;
  }
  std::uint64_t do_unlink() {
    if (files_.empty()) return do_create();
    const std::size_t at = rng_() % files_.size();
    const std::string path = files_[at];
    if (!fs_.unlink(path).is_ok()) return 0;
    files_.erase(files_.begin() + static_cast<std::ptrdiff_t>(at));
    return 1;
  }
  /// The unlink-then-recreate-same-path pattern: the index must mint a
  /// fresh identity, not resurrect the old node.
  std::uint64_t do_recreate() {
    if (files_.empty()) return do_create();
    const std::string path = pick(files_);
    if (!fs_.unlink(path).is_ok()) return 0;
    if (!fs_.create(path).is_ok()) return 1;
    return 2;
  }
  std::uint64_t do_rmdir() {
    if (dirs_.size() < 2) return do_mkdir();
    const std::string path = dirs_[1 + rng_() % (dirs_.size() - 1)];
    // Only empty directories can be removed; let the fs veto.
    if (!fs_.rmdir(path).is_ok()) return 0;
    std::erase(dirs_, path);
    return 1;
  }

  LustreFs& fs_;
  std::mt19937_64 rng_;
  std::vector<std::string> dirs_{{"/"}};
  std::vector<std::string> files_;
  std::uint64_t next_ = 0;
};

bool wait_for(const std::function<bool()>& pred,
              std::chrono::seconds timeout = std::chrono::seconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

class NsIndexPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_nsprop_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  common::RealClock clock;
};

/// One full randomized schedule at one shard (byte-determinism holds:
/// a single dense id sequence fixes node-id assignment completely).
void run_schedule(const std::filesystem::path& dir, common::RealClock& clock,
                  std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  LustreFs fs(LustreFsOptions{}, clock);
  scalable::ScalableMonitorOptions options;
  options.collector.cache_size = 64;
  eventstore::EventStoreOptions store;
  store.directory = dir / ("store_" + std::to_string(seed));
  store.flush_each_append = true;
  options.aggregator.store = store;
  scalable::ScalableMonitor monitor(fs, options, clock);
  ASSERT_TRUE(monitor.start().is_ok());

  const auto make_options = [&] {
    IndexConsumerOptions o;
    o.snapshot_dir = dir / ("snaps_" + std::to_string(seed));
    o.snapshot_every = 0;
    return o;
  };
  int generation = 0;
  auto consumer = std::make_unique<IndexConsumer>(
      monitor.bus(), monitor.sharded(),
      "nsidx-g" + std::to_string(generation), make_options());
  ASSERT_TRUE(consumer->start().is_ok());

  ShadowWorkload workload(fs, seed);
  std::mt19937_64 schedule_rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::uint64_t expected = 0;

  for (int round = 0; round < 6; ++round) {
    for (int op = 0; op < 25; ++op) expected += workload.step();
    ASSERT_TRUE(wait_for([&] { return consumer->index().applied_seq() == expected; }))
        << "round " << round << ": applied " << consumer->index().applied_seq()
        << " of " << expected;

    switch (schedule_rng() % 3) {
      case 0:
        // Checkpoint here: later events are the recovery delta.
        ASSERT_TRUE(consumer->checkpoint().is_ok());
        break;
      case 1: {
        // Crash (acks frozen at the last checkpoint) and restart: a new
        // consumer recovers from snapshot + delta replay mid-schedule.
        consumer.reset();
        ++generation;
        consumer = std::make_unique<IndexConsumer>(
            monitor.bus(), monitor.sharded(),
            "nsidx-g" + std::to_string(generation), make_options());
        ASSERT_TRUE(consumer->start().is_ok());
        ASSERT_TRUE(
            wait_for([&] { return consumer->index().applied_seq() == expected; }))
            << "recovery stalled at " << consumer->index().applied_seq();
        break;
      }
      default:
        break;  // keep running
    }
  }

  ASSERT_TRUE(wait_for([&] { return consumer->index().applied_seq() == expected; }));

  // Reference: fold the whole persisted history from scratch. Wait for
  // the async persister to catch up to everything the index applied.
  ASSERT_TRUE(wait_for([&] {
    NamespaceIndex fresh;
    auto folded = fold_namespace(monitor.sharded(), fresh);
    return folded.is_ok() && folded.value() >= expected;
  }));
  NamespaceIndex reference;
  ASSERT_TRUE(fold_namespace(monitor.sharded(), reference).is_ok());

  // Byte-exact: same serialized image, same dump, same query answers.
  std::vector<std::byte> live_image;
  std::vector<std::byte> reference_image;
  consumer->index().serialize(live_image);
  reference.serialize(reference_image);
  EXPECT_EQ(live_image, reference_image);
  EXPECT_EQ(consumer->index().debug_dump(), reference.debug_dump());

  // Spot-check the query surface against the reference.
  auto live_root = consumer->index().list_dir("/");
  auto ref_root = reference.list_dir("/");
  ASSERT_TRUE(live_root.is_ok());
  ASSERT_TRUE(ref_root.is_ok());
  ASSERT_EQ(live_root.value().size(), ref_root.value().size());
  for (std::size_t i = 0; i < live_root.value().size(); ++i) {
    EXPECT_EQ(live_root.value()[i].name, ref_root.value()[i].name);
    EXPECT_EQ(live_root.value()[i].node_id, ref_root.value()[i].node_id);
  }
  auto live_top = consumer->index().activity_topk(5);
  auto ref_top = reference.activity_topk(5);
  ASSERT_EQ(live_top.size(), ref_top.size());
  for (std::size_t i = 0; i < live_top.size(); ++i) {
    EXPECT_EQ(live_top[i].path, ref_top[i].path);
    EXPECT_EQ(live_top[i].events, ref_top[i].events);
  }

  consumer->stop();
  monitor.stop();
}

TEST_F(NsIndexPropertyTest, RecoveredStateMatchesFromScratchFold) {
  for (std::uint64_t seed : {11u, 23u, 47u}) run_schedule(dir_, clock, seed);
}

TEST_F(NsIndexPropertyTest, TwoShardFoldMatchesStructurally) {
  // Across shards the apply interleaving (and so node-id assignment) is
  // not deterministic, but the per-path state is: every path's events
  // come from its owning MDT in dense order. Compare structure, not
  // bytes.
  LustreFsOptions fs_options;
  fs_options.mdt_count = 2;
  LustreFs fs(fs_options, clock);
  scalable::ScalableMonitorOptions options;
  options.collector.cache_size = 64;
  options.shards = 2;
  eventstore::EventStoreOptions store;
  store.directory = dir_ / "store2";
  store.flush_each_append = true;
  options.aggregator.store = store;
  scalable::ScalableMonitor monitor(fs, options, clock);
  ASSERT_TRUE(monitor.start().is_ok());

  IndexConsumerOptions ic_options;
  ic_options.snapshot_dir = dir_ / "snaps2";
  ic_options.snapshot_every = 0;
  IndexConsumer consumer(monitor.bus(), monitor.sharded(), "nsidx2",
                         std::move(ic_options));
  ASSERT_TRUE(consumer.start().is_ok());

  std::uint64_t expected = 0;
  for (int i = 0; i < 12; ++i) {
    const std::string dir = "/tree" + std::to_string(i);
    ASSERT_TRUE(fs.mkdir(dir).is_ok());
    ASSERT_TRUE(fs.create(dir + "/a").is_ok());
    ASSERT_TRUE(fs.modify(dir + "/a", 128).is_ok());
    expected += 3;
  }
  ASSERT_TRUE(wait_for([&] { return consumer.index().applied_seq() == expected; }));
  ASSERT_TRUE(consumer.checkpoint().is_ok());

  NamespaceIndex reference;
  ASSERT_TRUE(wait_for([&] {
    NamespaceIndex fresh;
    auto folded = fold_namespace(monitor.sharded(), fresh);
    return folded.is_ok() && folded.value() >= expected;
  }));
  ASSERT_TRUE(fold_namespace(monitor.sharded(), reference).is_ok());

  EXPECT_EQ(consumer.index().node_count(), reference.node_count());
  EXPECT_EQ(consumer.index().dir_count(), reference.dir_count());
  auto live_root = consumer.index().list_dir("/");
  auto ref_root = reference.list_dir("/");
  ASSERT_TRUE(live_root.is_ok());
  ASSERT_TRUE(ref_root.is_ok());
  ASSERT_EQ(live_root.value().size(), ref_root.value().size());
  for (std::size_t i = 0; i < live_root.value().size(); ++i) {
    EXPECT_EQ(live_root.value()[i].name, ref_root.value()[i].name);
    const std::string path = "/" + live_root.value()[i].name;
    auto live_node = consumer.index().lookup(path);
    auto ref_node = reference.lookup(path);
    ASSERT_TRUE(live_node.has_value());
    ASSERT_TRUE(ref_node.has_value());
    EXPECT_EQ(live_node->events, ref_node->events);
    EXPECT_EQ(live_node->is_dir, ref_node->is_dir);
    EXPECT_EQ(live_node->last_event, ref_node->last_event);
  }

  consumer.stop();
  monitor.stop();
}

}  // namespace
}  // namespace fsmon::nsindex
