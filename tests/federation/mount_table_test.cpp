// MountTable: longest-prefix resolution at component boundaries, cookie
// domain separation, and the path-translation edge cases a federated
// namespace has to get right.
#include "src/federation/mount_table.hpp"

#include <gtest/gtest.h>

namespace fsmon::federation {
namespace {

TEST(MountTableTest, AddResolveRoundTrip) {
  MountTable table;
  auto a = table.add("iota", "/mnt/iota");
  ASSERT_TRUE(a);
  const auto hit = table.resolve("/mnt/iota/dir/file.txt");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->mount_id, a.value());
  EXPECT_EQ(hit->local_path, "/dir/file.txt");
  EXPECT_EQ(table.federate_path(a.value(), "/dir/file.txt"), "/mnt/iota/dir/file.txt");
}

TEST(MountTableTest, PrefixAmbiguityIsComponentWise) {
  // "/mnt/a" must NOT capture "/mnt/ab/..." — the boundary is a path
  // component, not a string prefix.
  MountTable table;
  auto a = table.add("a", "/mnt/a");
  auto ab = table.add("ab", "/mnt/ab");
  ASSERT_TRUE(a);
  ASSERT_TRUE(ab);

  const auto in_a = table.resolve("/mnt/a/f");
  ASSERT_TRUE(in_a.has_value());
  EXPECT_EQ(in_a->mount_id, a.value());

  const auto in_ab = table.resolve("/mnt/ab/f");
  ASSERT_TRUE(in_ab.has_value());
  EXPECT_EQ(in_ab->mount_id, ab.value());
  EXPECT_EQ(in_ab->local_path, "/f");

  const auto exact = table.resolve("/mnt/ab");
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->mount_id, ab.value());
  EXPECT_EQ(exact->local_path, "/");

  EXPECT_FALSE(table.resolve("/mnt/abc").has_value());
}

TEST(MountTableTest, LongestPrefixWinsOnNestedMounts) {
  MountTable table;
  auto outer = table.add("outer", "/mnt");
  auto inner = table.add("inner", "/mnt/deep");
  ASSERT_TRUE(outer);
  ASSERT_TRUE(inner);
  EXPECT_EQ(table.resolve("/mnt/deep/x")->mount_id, inner.value());
  EXPECT_EQ(table.resolve("/mnt/shallow/x")->mount_id, outer.value());
}

TEST(MountTableTest, RejectsDuplicatesAndBadInput) {
  MountTable table;
  ASSERT_TRUE(table.add("a", "/mnt/a"));
  EXPECT_FALSE(table.add("a", "/mnt/b"));        // duplicate name
  EXPECT_FALSE(table.add("b", "/mnt/a"));        // duplicate prefix
  EXPECT_FALSE(table.add("x:y", "/mnt/c"));      // ':' collides with source tag
  EXPECT_FALSE(table.add("x/y", "/mnt/c"));      // '/' not allowed in names
  EXPECT_FALSE(table.add("", "/mnt/c"));         // empty name
  EXPECT_FALSE(table.add("c", "relative/p"));    // non-absolute prefix
  EXPECT_FALSE(table.add("c", "/mnt/../etc"));   // traversal
}

TEST(MountTableTest, CookieDomainsNeverCollideAcrossMounts) {
  MountTable table;
  auto a = table.add("a", "/mnt/a");
  auto b = table.add("b", "/mnt/b");
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  // The same backend-local cookie lands in different federated domains.
  const auto fa = table.federate_cookie(a.value(), 42);
  const auto fb = table.federate_cookie(b.value(), 42);
  EXPECT_NE(fa, fb);
  EXPECT_EQ(MountTable::cookie_domain(fa), a.value());
  EXPECT_EQ(MountTable::cookie_domain(fb), b.value());
  EXPECT_EQ(MountTable::local_cookie(fa), 42u);
  EXPECT_EQ(MountTable::local_cookie(fb), 42u);
  // Zero stays zero: "no cookie" must not acquire a domain.
  EXPECT_EQ(table.federate_cookie(a.value(), 0), 0u);
  // A local cookie that folds to zero still gets a nonzero federated
  // value (it must remain pairable).
  EXPECT_NE(MountTable::local_cookie(table.federate_cookie(a.value(), 1ull << 48)), 0u);
}

TEST(MountTableTest, RemoveFreesPrefixButNotName) {
  MountTable table;
  auto a = table.add("a", "/mnt/a");
  ASSERT_TRUE(a);
  ASSERT_TRUE(table.remove(a.value()));
  EXPECT_FALSE(table.resolve("/mnt/a/f").has_value());
  // Prefix is reusable; the new mount gets a fresh id (and with it a
  // fresh cookie domain, so stale cookies cannot alias the new mount).
  auto again = table.add("a2", "/mnt/a");
  ASSERT_TRUE(again);
  EXPECT_NE(again.value(), a.value());
}

TEST(MountTableTest, RootPrefixMountCatchesEverything) {
  MountTable table;
  auto root = table.add("root", "/");
  ASSERT_TRUE(root);
  const auto hit = table.resolve("/any/path");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->local_path, "/any/path");
  EXPECT_EQ(table.federate_path(root.value(), "/any/path"), "/any/path");
}

TEST(MountTableTest, FederateSourceTagsMountName) {
  MountTable table;
  auto a = table.add("iota", "/mnt/iota");
  ASSERT_TRUE(a);
  EXPECT_EQ(table.federate_source(a.value(), "lustre:MDT0"), "iota:lustre:MDT0");
}

}  // namespace
}  // namespace fsmon::federation
