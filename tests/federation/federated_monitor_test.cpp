// FederatedMonitor: heterogeneous DSIs mounted under one namespace —
// path translation under each mount prefix, cookie domain separation
// across mounts, dense merged ids, per-mount metrics, and the
// unmount-while-replaying stale path.
#include "src/federation/federated_monitor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.hpp"
#include "src/localfs/memfs.hpp"
#include "src/localfs/sim_dsi.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::federation {
namespace {

using core::EventKind;
using core::StdEvent;

/// Scripted DSI: emits whatever the test tells it to, including during
/// stop() — the "replay still in flight" shape of a real backend whose
/// capture thread drains a backlog while being torn down.
class ScriptedDsi final : public core::DsiBase {
 public:
  std::string name() const override { return "scripted"; }
  common::Status start(EventCallback callback) override {
    callback_ = std::move(callback);
    running_ = true;
    return common::Status::ok();
  }
  void stop() override {
    // Late replay: one more event escapes while the DSI winds down.
    if (emit_on_stop_) emit("/late.txt", EventKind::kCreate);
    running_ = false;
  }
  bool running() const override { return running_; }

  void emit(const std::string& path, EventKind kind, std::uint64_t cookie = 0) {
    if (!callback_) return;
    StdEvent event;
    event.kind = kind;
    event.path = path;
    event.cookie = cookie;
    event.source = "scripted";
    callback_(event);
  }
  void set_emit_on_stop(bool on) { emit_on_stop_ = on; }

 private:
  EventCallback callback_;
  bool running_ = false;
  bool emit_on_stop_ = false;
};

class FederatedMonitorTest : public ::testing::Test {
 protected:
  std::vector<StdEvent> events() {
    std::lock_guard lock(mu_);
    return events_;
  }

  void subscribe_capture(FederatedMonitor& fed) {
    fed.subscribe([this](const StdEvent& event) {
      std::lock_guard lock(mu_);
      events_.push_back(event);
    });
  }

  common::ManualClock clock_;
  std::mutex mu_;
  std::vector<StdEvent> events_;
};

TEST_F(FederatedMonitorTest, TranslatesPathsUnderMountPrefixes) {
  localfs::MemFs fs_a;
  localfs::MemFs fs_b;
  FederatedMonitor fed;
  subscribe_capture(fed);
  ASSERT_TRUE(fed.mount("a", "/mnt/a", std::make_unique<localfs::SimInotifyDsi>(fs_a, clock_)));
  ASSERT_TRUE(fed.mount("b", "/mnt/b", std::make_unique<localfs::SimKqueueDsi>(fs_b, clock_)));
  ASSERT_TRUE(fed.start().is_ok());

  ASSERT_TRUE(fs_a.create("/x.txt").is_ok());
  ASSERT_TRUE(fs_b.create("/y.txt").is_ok());
  fed.stop();

  const auto seen = events();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].full_path(), "/mnt/a/x.txt");
  EXPECT_EQ(seen[0].watch_root, "/mnt/a");
  EXPECT_EQ(seen[0].source, "a:sim-inotify");
  EXPECT_EQ(seen[1].full_path(), "/mnt/b/y.txt");
  EXPECT_EQ(seen[1].source, "b:sim-kqueue");
  // Merged ids are dense and unique across mounts.
  EXPECT_EQ(seen[0].id, 1u);
  EXPECT_EQ(seen[1].id, 2u);
}

TEST_F(FederatedMonitorTest, RenameCookiesStayPairedWithinAMountButNeverAcross) {
  localfs::MemFs fs_a;
  localfs::MemFs fs_b;
  FederatedMonitor fed;
  subscribe_capture(fed);
  auto a = fed.mount("a", "/mnt/a", std::make_unique<localfs::SimInotifyDsi>(fs_a, clock_));
  auto b = fed.mount("b", "/mnt/b", std::make_unique<localfs::SimInotifyDsi>(fs_b, clock_));
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  ASSERT_TRUE(fed.start().is_ok());

  // Both backends run their first rename concurrently: each emits the
  // same backend-local cookie for its MOVED_FROM/MOVED_TO pair.
  ASSERT_TRUE(fs_a.create("/f").is_ok());
  ASSERT_TRUE(fs_b.create("/g").is_ok());
  ASSERT_TRUE(fs_a.rename("/f", "/f2").is_ok());
  ASSERT_TRUE(fs_b.rename("/g", "/g2").is_ok());
  fed.stop();

  std::vector<StdEvent> a_pair;
  std::vector<StdEvent> b_pair;
  for (const auto& event : events()) {
    if (event.kind != EventKind::kMovedFrom && event.kind != EventKind::kMovedTo) continue;
    (event.source.front() == 'a' ? a_pair : b_pair).push_back(event);
  }
  ASSERT_EQ(a_pair.size(), 2u);
  ASSERT_EQ(b_pair.size(), 2u);
  // Within a mount the rename halves still pair on the same cookie...
  EXPECT_EQ(a_pair[0].cookie, a_pair[1].cookie);
  EXPECT_EQ(b_pair[0].cookie, b_pair[1].cookie);
  EXPECT_NE(a_pair[0].cookie, 0u);
  // ...but the two mounts' pairs live in different domains even when the
  // backend-local cookies collide.
  EXPECT_NE(a_pair[0].cookie, b_pair[0].cookie);
  EXPECT_EQ(MountTable::cookie_domain(a_pair[0].cookie), a.value());
  EXPECT_EQ(MountTable::cookie_domain(b_pair[0].cookie), b.value());
  EXPECT_EQ(MountTable::local_cookie(a_pair[0].cookie),
            MountTable::local_cookie(b_pair[0].cookie));
}

TEST_F(FederatedMonitorTest, UnmountWhileReplayingCountsStaleNeverDelivers) {
  auto scripted = std::make_unique<ScriptedDsi>();
  ScriptedDsi* raw = scripted.get();
  raw->set_emit_on_stop(true);

  obs::MetricsRegistry registry;
  FederatedMonitor fed({&registry});
  subscribe_capture(fed);
  auto id = fed.mount("replay", "/mnt/replay", std::move(scripted));
  ASSERT_TRUE(id);
  ASSERT_TRUE(fed.start().is_ok());

  raw->emit("/live.txt", EventKind::kCreate);
  ASSERT_EQ(events().size(), 1u);

  // Unmount stops the DSI, which emits one last in-flight event — it
  // must be counted stale, not delivered into the namespace.
  ASSERT_TRUE(fed.unmount(id.value()).is_ok());
  auto seen = events();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].full_path(), "/mnt/replay/live.txt");
  EXPECT_EQ(fed.stale_events(), 1u);

  // And anything a still-running worker emits after the unmount
  // completes is equally stale.
  raw->emit("/even-later.txt", EventKind::kModify);
  EXPECT_EQ(events().size(), 1u);
  EXPECT_EQ(fed.stale_events(), 2u);

  // The prefix is free again for a replacement mount.
  EXPECT_FALSE(fed.resolve("/mnt/replay/live.txt").has_value());
  EXPECT_TRUE(fed.mount("replay2", "/mnt/replay", std::make_unique<ScriptedDsi>()));
}

TEST_F(FederatedMonitorTest, PerMountMetricsTrackEventsAndStale) {
  obs::MetricsRegistry registry;
  auto scripted = std::make_unique<ScriptedDsi>();
  ScriptedDsi* raw = scripted.get();
  FederatedMonitor fed({&registry});
  subscribe_capture(fed);
  auto id = fed.mount("m", "/mnt/m", std::move(scripted));
  ASSERT_TRUE(id);
  ASSERT_TRUE(fed.start().is_ok());
  raw->emit("/a", EventKind::kCreate);
  raw->emit("/b", EventKind::kModify);

  auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_total("mount.events"), 2u);
  EXPECT_EQ(snapshot.counter_total("mount.stale_events"), 0u);
  EXPECT_EQ(snapshot.gauge_total("mount.active"), 1);

  ASSERT_TRUE(fed.unmount(id.value()).is_ok());
  raw->emit("/after-unmount", EventKind::kDelete);
  snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_total("mount.stale_events"), 1u);
  EXPECT_EQ(snapshot.gauge_total("mount.active"), 0);
  fed.stop();
}

TEST_F(FederatedMonitorTest, SentinelPathsPassThroughUntranslated) {
  auto scripted = std::make_unique<ScriptedDsi>();
  ScriptedDsi* raw = scripted.get();
  FederatedMonitor fed;
  subscribe_capture(fed);
  ASSERT_TRUE(fed.mount("m", "/mnt/m", std::move(scripted)));
  ASSERT_TRUE(fed.start().is_ok());
  raw->emit(std::string(core::kEventQueueOverflow), EventKind::kModify, 3);
  const auto seen = events();
  ASSERT_EQ(seen.size(), 1u);
  // The sentinel is not a location: it keeps its form (has_path() stays
  // false) while the watch_root still identifies the mount.
  EXPECT_EQ(seen[0].path, core::kEventQueueOverflow);
  EXPECT_FALSE(seen[0].has_path());
  EXPECT_EQ(seen[0].watch_root, "/mnt/m");
  fed.stop();
}

}  // namespace
}  // namespace fsmon::federation
