// MetricsRegistry semantics: instrument identity, concurrent updates,
// snapshot isolation, and golden exporter formats.
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/exporters.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::obs {
namespace {

TEST(MetricsRegistryTest, CounterGetOrCreateReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("pipeline.records", {}, "records seen", "records");
  Counter& b = registry.counter("pipeline.records");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(registry.instrument_count(), 1u);
}

TEST(MetricsRegistryTest, SameNameDifferentLabelsAreDistinct) {
  MetricsRegistry registry;
  Counter& mdt0 = registry.counter("collector.records", {{"mdt", "0"}});
  Counter& mdt1 = registry.counter("collector.records", {{"mdt", "1"}});
  EXPECT_NE(&mdt0, &mdt1);
  mdt0.inc(10);
  mdt1.inc(5);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_total("collector.records"), 15u);
  EXPECT_EQ(registry.instrument_count(), 2u);
}

TEST(MetricsRegistryTest, TypeMismatchOnReRegistrationThrows) {
  MetricsRegistry registry;
  registry.counter("stage.depth");
  EXPECT_THROW(registry.gauge("stage.depth"), std::logic_error);
  EXPECT_THROW(registry.histogram("stage.depth"), std::logic_error);
}

TEST(MetricsRegistryTest, GaugeSetAddAndPeak) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("queue.depth");
  gauge.set(10);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 7);
  Gauge& peak = registry.gauge("queue.depth_peak");
  peak.set_max(5);
  peak.set_max(12);
  peak.set_max(8);  // lower than current peak: no effect
  EXPECT_EQ(peak.value(), 12);
}

TEST(MetricsRegistryTest, HistogramRecordsQuantilesAndSum) {
  MetricsRegistry registry;
  HistogramMetric& hist = registry.histogram("latency_us", {}, "", "us");
  for (std::uint64_t v = 1; v <= 100; ++v) hist.record(v);
  const auto h = hist.snapshot();
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_GE(h.quantile(0.99), h.quantile(0.5));
}

TEST(MetricsRegistryTest, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  Counter& counter = registry.counter("hot.counter");
  HistogramMetric& hist = registry.histogram("hot.hist");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.inc();
        hist.record(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(hist.snapshot().count(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationYieldsOneInstrument) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) registry.counter("contended.name").inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.instrument_count(), 1u);
  EXPECT_EQ(registry.snapshot().counter_total("contended.name"), 8000u);
}

TEST(MetricsRegistryTest, SnapshotIsIsolatedFromLaterUpdates) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("iso.counter");
  HistogramMetric& hist = registry.histogram("iso.hist");
  counter.inc(3);
  hist.record(7);
  const auto before = registry.snapshot();
  counter.inc(100);
  hist.record(9999);
  EXPECT_EQ(before.counter_total("iso.counter"), 3u);
  EXPECT_EQ(before.histogram_merged("iso.hist").count(), 1u);
  const auto after = registry.snapshot();
  EXPECT_EQ(after.counter_total("iso.counter"), 103u);
  EXPECT_EQ(after.histogram_merged("iso.hist").count(), 2u);
}

TEST(MetricsRegistryTest, SnapshotOrderIsDeterministic) {
  MetricsRegistry registry;
  registry.counter("z.last");
  registry.counter("a.first");
  registry.counter("m.middle", {{"mdt", "1"}});
  registry.counter("m.middle", {{"mdt", "0"}});
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.samples.size(), 4u);
  EXPECT_EQ(snapshot.samples[0].name, "a.first");
  EXPECT_EQ(snapshot.samples[1].name, "m.middle");
  EXPECT_EQ(snapshot.samples[1].labels.at("mdt"), "0");
  EXPECT_EQ(snapshot.samples[2].name, "m.middle");
  EXPECT_EQ(snapshot.samples[2].labels.at("mdt"), "1");
  EXPECT_EQ(snapshot.samples[3].name, "z.last");
}

TEST(MetricsRegistryTest, MissingNamesReadAsZero) {
  MetricsRegistry registry;
  const auto snapshot = registry.snapshot();
  EXPECT_FALSE(snapshot.contains("no.such"));
  EXPECT_EQ(snapshot.counter_total("no.such"), 0u);
  EXPECT_EQ(snapshot.gauge_total("no.such"), 0);
  EXPECT_EQ(snapshot.histogram_merged("no.such").count(), 0u);
}

TEST(ExporterTest, JsonGolden) {
  MetricsRegistry registry;
  registry.counter("a.counter", {{"mdt", "0"}}, "help text", "records").inc(42);
  registry.gauge("b.gauge", {}, "", "events").set(-7);
  const auto json = to_json(registry.snapshot());
  const std::string expected =
      "{\"metrics\":[\n"
      "  {\"name\":\"a.counter\",\"type\":\"counter\",\"labels\":{\"mdt\":\"0\"},"
      "\"unit\":\"records\",\"value\":42},\n"
      "  {\"name\":\"b.gauge\",\"type\":\"gauge\",\"labels\":{},"
      "\"unit\":\"events\",\"value\":-7}\n"
      "]}\n";
  EXPECT_EQ(json, expected);
}

TEST(ExporterTest, JsonHistogramFields) {
  MetricsRegistry registry;
  auto& hist = registry.histogram("h.lat", {}, "", "us");
  hist.record(10);
  hist.record(20);
  const auto json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":30"), std::string::npos);
  EXPECT_NE(json.find("\"min\":10"), std::string::npos);
  EXPECT_NE(json.find("\"max\":20"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
}

TEST(ExporterTest, PrometheusGolden) {
  MetricsRegistry registry;
  registry.counter("collector.records_published", {{"mdt", "0"}}, "Events published",
                   "events").inc(5);
  registry.counter("collector.records_published", {{"mdt", "1"}}).inc(7);
  registry.gauge("aggregator.queue_depth", {}, "Backlog", "events").set(3);
  const auto text = to_prometheus(registry.snapshot());
  const std::string expected =
      "# HELP fsmon_aggregator_queue_depth Backlog\n"
      "# TYPE fsmon_aggregator_queue_depth gauge\n"
      "fsmon_aggregator_queue_depth 3\n"
      "# HELP fsmon_collector_records_published Events published\n"
      "# TYPE fsmon_collector_records_published counter\n"
      "fsmon_collector_records_published{mdt=\"0\"} 5\n"
      "fsmon_collector_records_published{mdt=\"1\"} 7\n";
  EXPECT_EQ(text, expected);
}

TEST(ExporterTest, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  auto& hist = registry.histogram("wal.fsync_latency_us", {}, "Fsync latency", "us");
  hist.record(1);
  hist.record(100);
  hist.record(100000);
  const auto text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE fsmon_wal_fsync_latency_us histogram"), std::string::npos);
  EXPECT_NE(text.find("fsmon_wal_fsync_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("fsmon_wal_fsync_latency_us_sum 100101"), std::string::npos);
  EXPECT_NE(text.find("fsmon_wal_fsync_latency_us_count 3"), std::string::npos);
  // Bucket counts must be non-decreasing in le order (cumulative form).
  std::vector<std::uint64_t> counts;
  std::size_t pos = 0;
  const std::string needle = "fsmon_wal_fsync_latency_us_bucket{le=\"";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const std::size_t space = text.find(' ', pos);
    counts.push_back(std::stoull(text.substr(space + 1)));
    pos = space;
  }
  ASSERT_GE(counts.size(), 2u);
  for (std::size_t i = 1; i < counts.size(); ++i) EXPECT_GE(counts[i], counts[i - 1]);
  EXPECT_EQ(counts.back(), 3u);  // +Inf bucket equals total count
}

TEST(ExporterTest, WriteSnapshotRoundTrip) {
  MetricsRegistry registry;
  registry.counter("file.counter").inc(9);
  const auto path = std::filesystem::temp_directory_path() / "fsmon_obs_test.json";
  std::filesystem::remove(path);
  ASSERT_TRUE(write_snapshot(registry, path, ExportFormat::kJson).is_ok());
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(text, to_json(registry.snapshot()));
  std::filesystem::remove(path);
}

TEST(ExporterTest, SnapshotWriterWritesOnStartAndStop) {
  MetricsRegistry registry;
  registry.counter("writer.counter").inc(1);
  const auto path = std::filesystem::temp_directory_path() / "fsmon_obs_writer.json";
  std::filesystem::remove(path);
  SnapshotWriter::Options options;
  options.path = path;
  options.interval = std::chrono::hours(1);  // only start/stop writes fire
  SnapshotWriter writer(registry, options);
  ASSERT_TRUE(writer.start().is_ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  registry.counter("writer.counter").inc(41);
  writer.stop();
  EXPECT_EQ(writer.writes(), 2u);
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"value\":42"), std::string::npos);  // final totals
  std::filesystem::remove(path);
}

TEST(ExporterTest, ExporterFromConfigHonoursKeys) {
  MetricsRegistry registry;
  common::Config config;
  EXPECT_EQ(exporter_from_config(registry, config), nullptr);  // no path: disabled
  const auto path = std::filesystem::temp_directory_path() / "fsmon_obs_cfg.prom";
  config.set("metrics.path", path.string());
  config.set("metrics.format", "prometheus");
  config.set("metrics.interval_ms", "250");
  auto writer = exporter_from_config(registry, config);
  ASSERT_NE(writer, nullptr);
  EXPECT_EQ(writer->options().format, ExportFormat::kPrometheus);
  EXPECT_EQ(writer->options().interval, std::chrono::milliseconds(250));
  EXPECT_EQ(writer->options().path, path);
}

}  // namespace
}  // namespace fsmon::obs
