// Every registered metric name must be documented in
// docs/OBSERVABILITY.md. The test exercises the real threaded pipeline,
// the simulator, and the TCP transport so that every instrumentation
// site registers, then greps the doc for each name.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/federation/federated_monitor.hpp"
#include "src/localfs/inotify_dsi.hpp"
#include "src/localfs/memfs.hpp"
#include "src/localfs/sim_dsi.hpp"
#include "src/lustre/filesystem.hpp"
#include "src/msgq/tcp.hpp"
#include "src/nsindex/index_consumer.hpp"
#include "src/obs/metrics.hpp"
#include "src/scalable/scalable_monitor.hpp"
#include "src/scalable/sim_driver.hpp"

#ifndef FSMON_SOURCE_DIR
#error "FSMON_SOURCE_DIR must be defined by the build (tests/CMakeLists.txt)"
#endif

namespace fsmon {
namespace {

std::string read_doc() {
  const std::filesystem::path path =
      std::filesystem::path(FSMON_SOURCE_DIR) / "docs" / "OBSERVABILITY.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Register every instrument the codebase knows how to create.
void exercise_all_stages(obs::MetricsRegistry& registry) {
  // Threaded pipeline: collectors -> aggregator (WAL store) -> consumer.
  auto& clock = common::RealClock::instance();
  lustre::LustreFsOptions fs_options;
  fs_options.mdt_count = 1;
  lustre::LustreFs fs(fs_options, clock);
  fs.attach_metrics(registry);

  const auto store_dir =
      std::filesystem::temp_directory_path() / "fsmon_doc_coverage_store";
  std::filesystem::remove_all(store_dir);
  scalable::ScalableMonitorOptions options;
  options.collector.metrics = &registry;
  options.aggregator.metrics = &registry;
  eventstore::EventStoreOptions store;
  store.directory = store_dir;
  store.flush_each_append = true;
  options.aggregator.store = store;
  // Hub mode registers the subscription-index (subidx.*) and
  // flow-control (flow.*) instruments, plus aggregator.fanout_receivers.
  options.fanout_hub = true;
  scalable::ScalableMonitor monitor(fs, options, clock);
  scalable::ConsumerOptions consumer_options;
  consumer_options.metrics = &registry;
  auto consumer =
      monitor.make_consumer("doc", consumer_options, [](const core::StdEvent&) {});

  fs.mkdir("/doc");
  fs.create("/doc/f");
  monitor.drain_collectors_once();

  // Sharded tier: router.* plus the shard=<k>-labelled per-shard
  // aggregator/store/wal instruments.
  const auto sharded_dir =
      std::filesystem::temp_directory_path() / "fsmon_doc_coverage_shards";
  std::filesystem::remove_all(sharded_dir);
  {
    lustre::LustreFsOptions sharded_fs_options;
    sharded_fs_options.mdt_count = 2;
    lustre::LustreFs sharded_fs(sharded_fs_options, clock);
    scalable::ScalableMonitorOptions sharded_options = options;
    sharded_options.shards = 2;
    sharded_options.aggregator.store->directory = sharded_dir;
    scalable::ScalableMonitor sharded_monitor(sharded_fs, sharded_options, clock);
    sharded_fs.mkdir("/doc");
    sharded_fs.create("/doc/f");
    sharded_monitor.drain_collectors_once();
  }
  std::filesystem::remove_all(sharded_dir);

  // Namespace index (nsidx.*): constructing the consumer registers the
  // applier, snapshot-store, and recovery instruments.
  nsindex::IndexConsumerOptions idx_options;
  idx_options.snapshot_dir = store_dir / "nsidx";
  idx_options.metrics = &registry;
  nsindex::IndexConsumer idx_consumer(monitor.bus(), monitor.sharded(),
                                      "doc-nsidx", std::move(idx_options));

  // Simulator-only instruments (sim.*, consumer.delivery_latency_us, ...).
  scalable::SimConfig sim_config;
  sim_config.profile = lustre::TestbedProfile::iota();
  sim_config.duration = std::chrono::milliseconds(50);
  sim_config.metrics = &registry;
  scalable::run_pipeline_sim(sim_config);

  // Federation tier (mount.events / mount.stale_events / mount.active):
  // mount a sim DSI, deliver one event, then unmount so the stale path
  // registers too.
  {
    localfs::MemFs memfs;  // declared first: must outlive the monitor
    federation::FederatedMonitor fed({&registry});
    auto mount_id = fed.mount(
        "doc", "/mnt/doc", std::make_unique<localfs::SimInotifyDsi>(memfs, clock));
    if (mount_id && fed.start().is_ok()) {
      memfs.create("/f");
      fed.unmount(mount_id.value());
    }
    fed.stop();
  }

  // Real inotify (inotify.queue_overflows), where the kernel offers it.
  if (localfs::InotifyDsi::available()) {
    const auto watch_dir =
        std::filesystem::temp_directory_path() / "fsmon_doc_coverage_inotify";
    std::filesystem::create_directories(watch_dir);
    localfs::InotifyDsiOptions inotify_options;
    inotify_options.root = watch_dir.string();
    inotify_options.metrics = &registry;
    localfs::InotifyDsi inotify_dsi(std::move(inotify_options));
    if (inotify_dsi.start([](const core::StdEvent&) {}).is_ok()) inotify_dsi.stop();
    std::filesystem::remove_all(watch_dir);
  }

  // TCP transport instruments.
  msgq::TcpPublisher publisher;
  publisher.attach_metrics(registry, {{"endpoint", "doc"}});
  msgq::TcpSubscriber subscriber;
  subscriber.attach_metrics(registry, {{"endpoint", "doc"}});

  monitor.stop();
  std::filesystem::remove_all(store_dir);
}

TEST(DocCoverageTest, EveryRegisteredMetricIsDocumented) {
  obs::MetricsRegistry registry;
  exercise_all_stages(registry);
  ASSERT_GT(registry.instrument_count(), 30u)
      << "pipeline exercise registered suspiciously few instruments";

  const std::string doc = read_doc();
  std::set<std::string> undocumented;
  for (const auto& sample : registry.snapshot().samples) {
    if (doc.find("`" + sample.name + "`") == std::string::npos)
      undocumented.insert(sample.name);
  }
  EXPECT_TRUE(undocumented.empty())
      << "metrics missing from docs/OBSERVABILITY.md: " << [&] {
           std::string joined;
           for (const auto& name : undocumented) joined += name + " ";
           return joined;
         }();
}

}  // namespace
}  // namespace fsmon
