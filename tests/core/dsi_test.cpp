#include "src/core/dsi.hpp"

#include <gtest/gtest.h>

namespace fsmon::core {
namespace {

/// Minimal DSI that emits a fixed number of events synchronously.
class FakeDsi final : public DsiBase {
 public:
  explicit FakeDsi(std::string name, int events = 0)
      : name_(std::move(name)), events_(events) {}

  std::string name() const override { return name_; }

  common::Status start(EventCallback callback) override {
    running_ = true;
    for (int i = 0; i < events_; ++i) {
      StdEvent event;
      event.path = "/f" + std::to_string(i);
      callback(std::move(event));
    }
    return common::Status::ok();
  }

  void stop() override { running_ = false; }
  bool running() const override { return running_; }

 private:
  std::string name_;
  int events_;
  bool running_ = false;
};

common::Result<std::unique_ptr<DsiBase>> make_fake(const std::string& name) {
  return common::Result<std::unique_ptr<DsiBase>>(std::make_unique<FakeDsi>(name));
}

TEST(DsiRegistryTest, CreateByScheme) {
  DsiRegistry registry;
  registry.register_dsi("fake", [](const StorageDescriptor&) { return make_fake("fake"); });
  StorageDescriptor descriptor;
  descriptor.scheme = "fake";
  auto dsi = registry.create(descriptor);
  ASSERT_TRUE(dsi.is_ok());
  EXPECT_EQ(dsi.value()->name(), "fake");
}

TEST(DsiRegistryTest, UnknownSchemeFails) {
  DsiRegistry registry;
  StorageDescriptor descriptor;
  descriptor.scheme = "missing";
  EXPECT_EQ(registry.create(descriptor).code(), common::ErrorCode::kNotFound);
}

TEST(DsiRegistryTest, ProbeSelectsHighestScore) {
  DsiRegistry registry;
  registry.register_dsi(
      "low", [](const StorageDescriptor&) { return make_fake("low"); },
      [](const StorageDescriptor&) { return 1; });
  registry.register_dsi(
      "high", [](const StorageDescriptor&) { return make_fake("high"); },
      [](const StorageDescriptor&) { return 10; });
  StorageDescriptor descriptor;  // no scheme: auto-detect
  auto dsi = registry.create(descriptor);
  ASSERT_TRUE(dsi.is_ok());
  EXPECT_EQ(dsi.value()->name(), "high");
}

TEST(DsiRegistryTest, ProbeScoreZeroMeansUnusable) {
  DsiRegistry registry;
  registry.register_dsi(
      "never", [](const StorageDescriptor&) { return make_fake("never"); },
      [](const StorageDescriptor&) { return 0; });
  StorageDescriptor descriptor;
  EXPECT_EQ(registry.create(descriptor).code(), common::ErrorCode::kNotFound);
}

TEST(DsiRegistryTest, ProbeCanInspectDescriptor) {
  DsiRegistry registry;
  registry.register_dsi(
      "lustre", [](const StorageDescriptor&) { return make_fake("lustre"); },
      [](const StorageDescriptor& d) { return d.root == "/mnt/lustre" ? 100 : 0; });
  registry.register_dsi(
      "local", [](const StorageDescriptor&) { return make_fake("local"); },
      [](const StorageDescriptor&) { return 1; });
  StorageDescriptor lustre_root;
  lustre_root.root = "/mnt/lustre";
  EXPECT_EQ(registry.create(lustre_root).value()->name(), "lustre");
  StorageDescriptor other;
  other.root = "/home";
  EXPECT_EQ(registry.create(other).value()->name(), "local");
}

TEST(DsiRegistryTest, ReRegisterReplaces) {
  DsiRegistry registry;
  registry.register_dsi("x", [](const StorageDescriptor&) { return make_fake("v1"); });
  registry.register_dsi("x", [](const StorageDescriptor&) { return make_fake("v2"); });
  StorageDescriptor descriptor;
  descriptor.scheme = "x";
  EXPECT_EQ(registry.create(descriptor).value()->name(), "v2");
  EXPECT_EQ(registry.schemes().size(), 1u);
}

TEST(DsiRegistryTest, SchemesListing) {
  DsiRegistry registry;
  registry.register_dsi("a", [](const StorageDescriptor&) { return make_fake("a"); });
  registry.register_dsi("b", [](const StorageDescriptor&) { return make_fake("b"); });
  EXPECT_TRUE(registry.has_scheme("a"));
  EXPECT_FALSE(registry.has_scheme("c"));
  EXPECT_EQ(registry.schemes().size(), 2u);
}

}  // namespace
}  // namespace fsmon::core
