#include "src/core/interface.hpp"

#include <filesystem>

#include <unistd.h>

#include <gtest/gtest.h>

namespace fsmon::core {
namespace {

StdEvent event_at(const std::string& path, EventKind kind = EventKind::kCreate) {
  StdEvent event;
  event.kind = kind;
  event.path = path;
  event.watch_root = "/w";
  return event;
}

class InterfaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_iface_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  InterfaceOptions with_store() {
    InterfaceOptions options;
    eventstore::EventStoreOptions store;
    store.directory = dir_;
    options.store = store;
    return options;
  }

  std::filesystem::path dir_;
};

TEST_F(InterfaceTest, AssignsMonotonicIds) {
  InterfaceLayer layer(InterfaceOptions{});
  std::vector<common::EventId> ids;
  layer.subscribe(FilterRule{}, [&](const std::vector<StdEvent>& batch) {
    for (const auto& event : batch) ids.push_back(event.id);
  });
  layer.ingest({event_at("/a"), event_at("/b")});
  layer.ingest({event_at("/c")});
  EXPECT_EQ(ids, (std::vector<common::EventId>{1, 2, 3}));
  EXPECT_EQ(layer.last_event_id(), 3u);
  EXPECT_EQ(layer.ingested(), 3u);
}

TEST_F(InterfaceTest, FiltersPerSubscriber) {
  InterfaceLayer layer(InterfaceOptions{});
  int csv_count = 0, all_count = 0;
  FilterRule csv_rule;
  csv_rule.name_pattern = "*.csv";
  layer.subscribe(csv_rule, [&](const std::vector<StdEvent>& batch) {
    csv_count += static_cast<int>(batch.size());
  });
  layer.subscribe(FilterRule{}, [&](const std::vector<StdEvent>& batch) {
    all_count += static_cast<int>(batch.size());
  });
  layer.ingest({event_at("/a.csv"), event_at("/b.txt")});
  EXPECT_EQ(csv_count, 1);
  EXPECT_EQ(all_count, 2);
  EXPECT_EQ(layer.subscriber_count(), 2u);
}

TEST_F(InterfaceTest, UnsubscribeStopsDelivery) {
  InterfaceLayer layer(InterfaceOptions{});
  int count = 0;
  auto id = layer.subscribe(FilterRule{}, [&](const std::vector<StdEvent>& batch) {
    count += static_cast<int>(batch.size());
  });
  layer.ingest({event_at("/a")});
  layer.unsubscribe(id);
  layer.ingest({event_at("/b")});
  EXPECT_EQ(count, 1);
}

TEST_F(InterfaceTest, DeliveryBatchSplitsLargeBatches) {
  InterfaceOptions options;
  options.delivery_batch = 2;
  InterfaceLayer layer(options);
  std::vector<std::size_t> batch_sizes;
  layer.subscribe(FilterRule{}, [&](const std::vector<StdEvent>& batch) {
    batch_sizes.push_back(batch.size());
  });
  layer.ingest({event_at("/a"), event_at("/b"), event_at("/c"), event_at("/d"),
                event_at("/e")});
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{2, 2, 1}));
}

TEST_F(InterfaceTest, EventsSinceRequiresStore) {
  InterfaceLayer layer(InterfaceOptions{});
  EXPECT_FALSE(layer.has_store());
  EXPECT_EQ(layer.events_since(0).code(), common::ErrorCode::kUnavailable);
}

TEST_F(InterfaceTest, ReplaySinceEventId) {
  InterfaceLayer layer(with_store());
  layer.ingest({event_at("/a"), event_at("/b"), event_at("/c")});
  auto replay = layer.events_since(1);
  ASSERT_TRUE(replay.is_ok());
  ASSERT_EQ(replay.value().size(), 2u);
  EXPECT_EQ(replay.value()[0].path, "/b");
  EXPECT_EQ(replay.value()[0].id, 2u);
}

TEST_F(InterfaceTest, AcknowledgeAndPurge) {
  InterfaceLayer layer(with_store());
  layer.ingest({event_at("/a"), event_at("/b")});
  layer.acknowledge(1);
  EXPECT_EQ(layer.purge(), 1u);
  auto replay = layer.events_since(0);
  ASSERT_TRUE(replay.is_ok());
  ASSERT_EQ(replay.value().size(), 1u);
  EXPECT_EQ(replay.value()[0].path, "/b");
}

TEST_F(InterfaceTest, IdNumberingContinuesAfterRecovery) {
  {
    InterfaceLayer layer(with_store());
    layer.ingest({event_at("/a"), event_at("/b")});
  }
  InterfaceLayer recovered(with_store());
  int delivered = 0;
  recovered.subscribe(FilterRule{}, [&](const std::vector<StdEvent>& batch) {
    for (const auto& event : batch) {
      EXPECT_EQ(event.id, 3u);
      ++delivered;
    }
  });
  recovered.ingest({event_at("/c")});
  EXPECT_EQ(delivered, 1);
  auto all = recovered.events_since(0);
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(all.value().size(), 3u);
}

TEST_F(InterfaceTest, EmptyIngestIsNoOp) {
  InterfaceLayer layer(InterfaceOptions{});
  layer.ingest({});
  EXPECT_EQ(layer.last_event_id(), 0u);
}

}  // namespace
}  // namespace fsmon::core
