#include "src/core/monitor.hpp"

#include <atomic>
#include <mutex>

#include <gtest/gtest.h>

#include "src/localfs/memfs.hpp"
#include "src/localfs/sim_dsi.hpp"

namespace fsmon::core {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() { localfs::register_sim_dsis(registry, fs, clock); }

  MonitorOptions options(const std::string& scheme) {
    MonitorOptions o;
    o.storage.scheme = scheme;
    o.storage.root = "/watched";
    return o;
  }

  common::ManualClock clock;
  localfs::MemFs fs;
  DsiRegistry registry;
};

TEST_F(MonitorTest, StartSelectsDsiByScheme) {
  FsMonitor monitor(options("sim-inotify"), &registry, &clock);
  ASSERT_TRUE(monitor.start().is_ok());
  EXPECT_EQ(monitor.dsi_name(), "sim-inotify");
  EXPECT_TRUE(monitor.running());
  monitor.stop();
  EXPECT_FALSE(monitor.running());
}

TEST_F(MonitorTest, UnknownSchemeFailsToStart) {
  FsMonitor monitor(options("no-such-dsi"), &registry, &clock);
  EXPECT_EQ(monitor.start().code(), common::ErrorCode::kNotFound);
}

TEST_F(MonitorTest, EndToEndEventDelivery) {
  fs.mkdir("/watched");
  FsMonitor monitor(options("sim-inotify"), &registry, &clock);
  std::vector<std::string> lines;
  std::mutex mu;
  monitor.subscribe(FilterRule{}, [&](const std::vector<StdEvent>& batch) {
    std::lock_guard lock(mu);
    for (const auto& event : batch) lines.push_back(to_inotify_line(event));
  });
  ASSERT_TRUE(monitor.start().is_ok());
  fs.create("/watched/hello.txt");
  fs.write("/watched/hello.txt");
  monitor.stop();  // drains the resolution queue
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "/watched CREATE /hello.txt");
  EXPECT_EQ(lines[1], "/watched MODIFY /hello.txt");
}

TEST_F(MonitorTest, RenderLineUsesConfiguredDialect) {
  MonitorOptions o = options("sim-inotify");
  o.output_dialect = Dialect::kFileSystemWatcher;
  FsMonitor monitor(o, &registry, &clock);
  StdEvent event;
  event.kind = EventKind::kCreate;
  event.watch_root = "/watched";
  event.path = "/f";
  EXPECT_EQ(monitor.render_line(event), "Created: /watched/f");
}

TEST_F(MonitorTest, SubscriptionFilteringAppliesThroughFacade) {
  fs.mkdir("/watched");
  fs.mkdir("/watched/interesting");
  FsMonitor monitor(options("sim-inotify"), &registry, &clock);
  std::atomic<int> count{0};
  FilterRule rule;
  rule.root = "/interesting";
  monitor.subscribe(rule, [&](const std::vector<StdEvent>& batch) {
    count += static_cast<int>(batch.size());
  });
  ASSERT_TRUE(monitor.start().is_ok());
  fs.create("/watched/interesting/a");
  fs.create("/watched/boring");
  monitor.stop();
  EXPECT_EQ(count.load(), 1);
}

TEST_F(MonitorTest, StartIsIdempotent) {
  FsMonitor monitor(options("sim-inotify"), &registry, &clock);
  ASSERT_TRUE(monitor.start().is_ok());
  EXPECT_TRUE(monitor.start().is_ok());
  monitor.stop();
}

}  // namespace
}  // namespace fsmon::core
