#include "src/core/dialects.hpp"

#include <gtest/gtest.h>

namespace fsmon::core {
namespace {

StdEvent event_of(EventKind kind, bool is_dir = false) {
  StdEvent event;
  event.kind = kind;
  event.is_dir = is_dir;
  event.watch_root = "/w";
  event.path = "/f.txt";
  return event;
}

TEST(DialectTest, NameRoundTrip) {
  for (auto d : {Dialect::kInotify, Dialect::kKqueue, Dialect::kFsEvents,
                 Dialect::kFileSystemWatcher}) {
    EXPECT_EQ(parse_dialect(to_string(d)), d);
  }
  EXPECT_FALSE(parse_dialect("nope").has_value());
}

TEST(DialectTest, InotifyTokens) {
  // Section II-A: creating/modifying a file raises IN_CREATE, IN_MODIFY...
  EXPECT_EQ(native_tokens(Dialect::kInotify, event_of(EventKind::kCreate)),
            (std::vector<std::string>{"IN_CREATE"}));
  EXPECT_EQ(native_tokens(Dialect::kInotify, event_of(EventKind::kOpen)),
            (std::vector<std::string>{"IN_OPEN"}));
  EXPECT_EQ(native_tokens(Dialect::kInotify, event_of(EventKind::kCreate, true)),
            (std::vector<std::string>{"IN_CREATE", "IN_ISDIR"}));
}

TEST(DialectTest, KqueueTokens) {
  // Section II-A: "NOTE_OPEN, NOTE_EXTEND, NOTE_WRITE, NOTE_CLOSE".
  EXPECT_EQ(native_tokens(Dialect::kKqueue, event_of(EventKind::kCreate)),
            (std::vector<std::string>{"NOTE_WRITE", "NOTE_EXTEND"}));
  EXPECT_EQ(native_tokens(Dialect::kKqueue, event_of(EventKind::kModify)),
            (std::vector<std::string>{"NOTE_WRITE"}));
  EXPECT_EQ(native_tokens(Dialect::kKqueue, event_of(EventKind::kDelete)),
            (std::vector<std::string>{"NOTE_DELETE"}));
}

TEST(DialectTest, FsEventsTokens) {
  // Section II-A: "ItemCreated and ItemModified events".
  auto created = native_tokens(Dialect::kFsEvents, event_of(EventKind::kCreate));
  ASSERT_EQ(created.size(), 2u);
  EXPECT_EQ(created[0], "kFSEventStreamEventFlagItemCreated");
  EXPECT_EQ(created[1], "kFSEventStreamEventFlagItemIsFile");
  auto dir_removed = native_tokens(Dialect::kFsEvents, event_of(EventKind::kDelete, true));
  EXPECT_EQ(dir_removed[1], "kFSEventStreamEventFlagItemIsDir");
}

TEST(DialectTest, FswFourEventTypes) {
  // Section II-A: "Four event types are reported: Changed, Created,
  // Deleted, and Renamed."
  EXPECT_EQ(native_tokens(Dialect::kFileSystemWatcher, event_of(EventKind::kCreate)),
            (std::vector<std::string>{"Created"}));
  EXPECT_EQ(native_tokens(Dialect::kFileSystemWatcher, event_of(EventKind::kModify)),
            (std::vector<std::string>{"Changed"}));
  EXPECT_EQ(native_tokens(Dialect::kFileSystemWatcher, event_of(EventKind::kAttrib)),
            (std::vector<std::string>{"Changed"}));
  EXPECT_EQ(native_tokens(Dialect::kFileSystemWatcher, event_of(EventKind::kDelete)),
            (std::vector<std::string>{"Deleted"}));
  EXPECT_EQ(native_tokens(Dialect::kFileSystemWatcher, event_of(EventKind::kMovedFrom)),
            (std::vector<std::string>{"Renamed"}));
}

TEST(DialectTest, RenderFormats) {
  EXPECT_EQ(render(Dialect::kInotify, event_of(EventKind::kCreate)),
            "/w CREATE /f.txt");
  EXPECT_EQ(render(Dialect::kKqueue, event_of(EventKind::kCreate)),
            "/w/f.txt NOTE_WRITE|NOTE_EXTEND");
  EXPECT_EQ(render(Dialect::kFileSystemWatcher, event_of(EventKind::kDelete)),
            "Deleted: /w/f.txt");
  const auto fse = render(Dialect::kFsEvents, event_of(EventKind::kModify));
  EXPECT_NE(fse.find("ItemModified"), std::string::npos);
  EXPECT_NE(fse.find("/w/f.txt"), std::string::npos);
}

TEST(DialectTest, EveryKindRendersInEveryDialect) {
  for (auto dialect : {Dialect::kInotify, Dialect::kKqueue, Dialect::kFsEvents,
                       Dialect::kFileSystemWatcher}) {
    for (auto kind : {EventKind::kCreate, EventKind::kModify, EventKind::kAttrib,
                      EventKind::kClose, EventKind::kDelete, EventKind::kMovedFrom,
                      EventKind::kMovedTo}) {
      EXPECT_FALSE(render(dialect, event_of(kind)).empty())
          << to_string(dialect) << "/" << to_string(kind);
    }
  }
}

}  // namespace
}  // namespace fsmon::core
