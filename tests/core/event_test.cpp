#include "src/core/event.hpp"

#include <gtest/gtest.h>

namespace fsmon::core {
namespace {

StdEvent sample_event() {
  StdEvent event;
  event.id = 42;
  event.kind = EventKind::kMovedTo;
  event.is_dir = true;
  event.watch_root = "/mnt/lustre";
  event.path = "/okdir/hi.txt";
  event.cookie = 7;
  event.timestamp = common::TimePoint{std::chrono::nanoseconds(123456789)};
  event.source = "lustre:MDT2";
  return event;
}

TEST(EventKindTest, NamesMatchPaperTableTwo) {
  EXPECT_EQ(to_string(EventKind::kCreate), "CREATE");
  EXPECT_EQ(to_string(EventKind::kModify), "MODIFY");
  EXPECT_EQ(to_string(EventKind::kClose), "CLOSE");
  EXPECT_EQ(to_string(EventKind::kDelete), "DELETE");
  EXPECT_EQ(to_string(EventKind::kMovedFrom), "MOVED_FROM");
  EXPECT_EQ(to_string(EventKind::kMovedTo), "MOVED_TO");
}

TEST(EventKindTest, ParseRoundTrip) {
  for (auto kind : {EventKind::kCreate, EventKind::kModify, EventKind::kAttrib,
                    EventKind::kClose, EventKind::kOpen, EventKind::kDelete,
                    EventKind::kMovedFrom, EventKind::kMovedTo}) {
    EXPECT_EQ(parse_event_kind(to_string(kind)), kind);
  }
  EXPECT_FALSE(parse_event_kind("BOGUS").has_value());
}

TEST(StdEventTest, InotifyLineFormat) {
  // Table II format: "<root> <KIND>[,ISDIR] <path>".
  StdEvent event;
  event.kind = EventKind::kCreate;
  event.watch_root = "/home/arnab/test";
  event.path = "/hello.txt";
  EXPECT_EQ(to_inotify_line(event), "/home/arnab/test CREATE /hello.txt");
  event.kind = EventKind::kCreate;
  event.is_dir = true;
  event.path = "/okdir";
  EXPECT_EQ(to_inotify_line(event), "/home/arnab/test CREATE,ISDIR /okdir");
}

TEST(StdEventTest, FullPathJoinsRootAndPath) {
  StdEvent event;
  event.watch_root = "/mnt/lustre";
  event.path = "/a/b";
  EXPECT_EQ(event.full_path(), "/mnt/lustre/a/b");
  event.watch_root = "/";
  EXPECT_EQ(event.full_path(), "/a/b");
}

TEST(StdEventTest, RenameHalfAccessorsAndKey) {
  StdEvent from = sample_event();
  from.kind = EventKind::kMovedFrom;
  StdEvent to = sample_event();
  to.kind = EventKind::kMovedTo;
  to.path = "/okdir/renamed.txt";
  EXPECT_TRUE(from.is_rename_from());
  EXPECT_FALSE(from.is_rename_to());
  EXPECT_TRUE(to.is_rename_to());
  EXPECT_TRUE(from.is_rename_half());
  EXPECT_TRUE(to.is_rename_half());
  // Both halves of one RENME record share the same (source, cookie) key.
  EXPECT_EQ(from.rename_key(), to.rename_key());
  StdEvent other = to;
  other.cookie = 8;
  EXPECT_NE(from.rename_key(), other.rename_key());
  StdEvent create = sample_event();
  create.kind = EventKind::kCreate;
  EXPECT_FALSE(create.is_rename_half());
}

TEST(StdEventTest, HasPathRejectsSentinelAndEmpty) {
  StdEvent event = sample_event();
  EXPECT_TRUE(event.has_path());
  event.path = kParentDirectoryRemoved;
  EXPECT_FALSE(event.has_path());
  event.path.clear();
  EXPECT_FALSE(event.has_path());
}

TEST(StdEventTest, ParentPathAndBaseName) {
  StdEvent event = sample_event();
  event.path = "/a/b/c.txt";
  EXPECT_EQ(event.parent_path(), "/a/b");
  EXPECT_EQ(event.base_name(), "c.txt");
  event.path = "/top";
  EXPECT_EQ(event.parent_path(), "/");
  EXPECT_EQ(event.base_name(), "top");
  event.path = kParentDirectoryRemoved;
  EXPECT_EQ(event.parent_path(), "/");
  EXPECT_EQ(event.base_name(), "");
}

TEST(SerializationTest, RoundTripPreservesAllFields) {
  const StdEvent original = sample_event();
  const auto bytes = serialize_event(original);
  auto decoded = deserialize_event(bytes);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().first, original);
  EXPECT_EQ(decoded.value().second, bytes.size());
}

TEST(SerializationTest, EmptyStringsRoundTrip) {
  StdEvent event;
  const auto bytes = serialize_event(event);
  auto decoded = deserialize_event(bytes);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().first, event);
}

TEST(SerializationTest, TruncatedInputFails) {
  const auto bytes = serialize_event(sample_event());
  for (std::size_t len = 0; len + 1 < bytes.size(); len += 7) {
    auto decoded = deserialize_event(std::span(bytes.data(), len));
    EXPECT_FALSE(decoded.is_ok()) << "len=" << len;
    EXPECT_EQ(decoded.code(), common::ErrorCode::kCorrupt);
  }
}

TEST(SerializationTest, BadKindRejected) {
  auto bytes = serialize_event(sample_event());
  bytes[8] = std::byte{0xEE};  // kind byte follows the 8-byte id
  EXPECT_EQ(deserialize_event(bytes).code(), common::ErrorCode::kCorrupt);
}

EventBatch sample_batch(std::size_t n) {
  EventBatch batch;
  for (std::size_t i = 0; i < n; ++i) {
    StdEvent event = sample_event();
    event.id = 100 + i;
    event.path = "/file" + std::to_string(i);
    batch.events.push_back(std::move(event));
  }
  return batch;
}

TEST(BatchCodecTest, RoundTripPreservesAllEvents) {
  const EventBatch original = sample_batch(5);
  const auto bytes = encode_batch(original);
  auto decoded = decode_batch(bytes);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value(), original);
}

TEST(BatchCodecTest, EmptyBatchIsValid) {
  const auto bytes = encode_batch(EventBatch{});
  auto decoded = decode_batch(bytes);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(BatchCodecTest, BadMagicRejected) {
  auto bytes = encode_batch(sample_batch(2));
  bytes[0] = std::byte{0x00};
  EXPECT_EQ(decode_batch(bytes).code(), common::ErrorCode::kCorrupt);
}

TEST(BatchCodecTest, TruncatedFrameRejectedAtEveryLength) {
  const auto bytes = encode_batch(sample_batch(3));
  for (std::size_t len = 0; len < bytes.size(); len += 5) {
    auto decoded = decode_batch(std::span(bytes.data(), len));
    EXPECT_FALSE(decoded.is_ok()) << "len=" << len;
    EXPECT_EQ(decoded.code(), common::ErrorCode::kCorrupt);
  }
}

TEST(BatchCodecTest, CrcMismatchRejected) {
  auto bytes = encode_batch(sample_batch(3));
  // Flip a payload byte mid-batch; the trailer CRC catches it.
  bytes[bytes.size() / 2] ^= std::byte{0xFF};
  EXPECT_EQ(decode_batch(bytes).code(), common::ErrorCode::kCorrupt);
}

TEST(BatchCodecTest, TrailingGarbageRejected) {
  auto bytes = encode_batch(sample_batch(1));
  bytes.push_back(std::byte{0x00});
  EXPECT_EQ(decode_batch(bytes).code(), common::ErrorCode::kCorrupt);
}

TEST(BatchCodecTest, ViewIndexesEveryEventWithoutDecoding) {
  const EventBatch batch = sample_batch(4);
  const auto bytes = encode_batch(batch);
  auto view = view_batch(bytes);
  ASSERT_TRUE(view.is_ok());
  ASSERT_EQ(view.value().count, 4u);
  ASSERT_EQ(view.value().events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto [offset, length] = view.value().events[i];
    auto decoded = deserialize_event(std::span(bytes).subspan(offset, length));
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value().first, batch.events[i]);
  }
}

TEST(BatchCodecTest, PatchIdsRenumbersInPlaceAndCrcStaysValid) {
  auto bytes = encode_batch(sample_batch(4));
  auto patched = patch_batch_ids(bytes, 1000);
  ASSERT_TRUE(patched.is_ok()) << patched.status().to_string();
  EXPECT_EQ(patched.value(), 4u);
  // The patched frame still passes full CRC verification...
  auto decoded = decode_batch(bytes);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  // ...and only the ids changed, to the consecutive block.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(decoded.value().events[i].id, 1000 + i);
    EXPECT_EQ(decoded.value().events[i].path, "/file" + std::to_string(i));
  }
}

TEST(BatchCodecTest, PeekTimestampMatchesDecodedEvent) {
  const StdEvent event = sample_event();
  const auto bytes = serialize_event(event);
  auto peeked = peek_event_timestamp(bytes);
  ASSERT_TRUE(peeked.is_ok());
  EXPECT_EQ(peeked.value(), event.timestamp);
  EXPECT_EQ(peek_event_timestamp(std::span(bytes.data(), 10)).code(),
            common::ErrorCode::kCorrupt);
}

TEST(BatchCodecTest, PeekKindAndIsDirMatchDecodedEvent) {
  const StdEvent event = sample_event();  // kMovedTo, is_dir=true
  const auto bytes = serialize_event(event);
  auto kind = peek_event_kind(bytes);
  ASSERT_TRUE(kind.is_ok());
  EXPECT_EQ(kind.value(), EventKind::kMovedTo);
  auto is_dir = peek_event_is_dir(bytes);
  ASSERT_TRUE(is_dir.is_ok());
  EXPECT_TRUE(is_dir.value());

  StdEvent file = event;
  file.kind = EventKind::kModify;
  file.is_dir = false;
  const auto file_bytes = serialize_event(file);
  EXPECT_EQ(peek_event_kind(file_bytes).value(), EventKind::kModify);
  EXPECT_FALSE(peek_event_is_dir(file_bytes).value());

  // Short buffers and corrupt kind bytes are rejected, not misread.
  EXPECT_EQ(peek_event_kind(std::span(bytes.data(), 8)).code(),
            common::ErrorCode::kCorrupt);
  EXPECT_EQ(peek_event_is_dir(std::span(bytes.data(), 9)).code(),
            common::ErrorCode::kCorrupt);
  auto corrupt = serialize_event(event);
  corrupt[8] = std::byte{0xEE};
  EXPECT_EQ(peek_event_kind(corrupt).code(), common::ErrorCode::kCorrupt);
}

TEST(BatchCodecTest, CodecCountersAdvance) {
  const auto before = codec_counters();
  const auto bytes = encode_batch(sample_batch(3));
  auto decoded = decode_batch(bytes);
  ASSERT_TRUE(decoded.is_ok());
  const auto after = codec_counters();
  EXPECT_EQ(after.serialize_calls - before.serialize_calls, 3u);
  EXPECT_EQ(after.deserialize_calls - before.deserialize_calls, 3u);
}

TEST(SerializationTest, ConsecutiveEventsDecodeSequentially) {
  std::vector<std::byte> buffer;
  StdEvent a = sample_event();
  StdEvent b = sample_event();
  b.id = 43;
  b.path = "/other";
  serialize_event(a, buffer);
  serialize_event(b, buffer);
  auto first = deserialize_event(buffer);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().first.id, 42u);
  auto second = deserialize_event(std::span(buffer).subspan(first.value().second));
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().first.path, "/other");
}

}  // namespace
}  // namespace fsmon::core
