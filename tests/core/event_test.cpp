#include "src/core/event.hpp"

#include <gtest/gtest.h>

namespace fsmon::core {
namespace {

StdEvent sample_event() {
  StdEvent event;
  event.id = 42;
  event.kind = EventKind::kMovedTo;
  event.is_dir = true;
  event.watch_root = "/mnt/lustre";
  event.path = "/okdir/hi.txt";
  event.cookie = 7;
  event.timestamp = common::TimePoint{std::chrono::nanoseconds(123456789)};
  event.source = "lustre:MDT2";
  return event;
}

TEST(EventKindTest, NamesMatchPaperTableTwo) {
  EXPECT_EQ(to_string(EventKind::kCreate), "CREATE");
  EXPECT_EQ(to_string(EventKind::kModify), "MODIFY");
  EXPECT_EQ(to_string(EventKind::kClose), "CLOSE");
  EXPECT_EQ(to_string(EventKind::kDelete), "DELETE");
  EXPECT_EQ(to_string(EventKind::kMovedFrom), "MOVED_FROM");
  EXPECT_EQ(to_string(EventKind::kMovedTo), "MOVED_TO");
}

TEST(EventKindTest, ParseRoundTrip) {
  for (auto kind : {EventKind::kCreate, EventKind::kModify, EventKind::kAttrib,
                    EventKind::kClose, EventKind::kOpen, EventKind::kDelete,
                    EventKind::kMovedFrom, EventKind::kMovedTo}) {
    EXPECT_EQ(parse_event_kind(to_string(kind)), kind);
  }
  EXPECT_FALSE(parse_event_kind("BOGUS").has_value());
}

TEST(StdEventTest, InotifyLineFormat) {
  // Table II format: "<root> <KIND>[,ISDIR] <path>".
  StdEvent event;
  event.kind = EventKind::kCreate;
  event.watch_root = "/home/arnab/test";
  event.path = "/hello.txt";
  EXPECT_EQ(to_inotify_line(event), "/home/arnab/test CREATE /hello.txt");
  event.kind = EventKind::kCreate;
  event.is_dir = true;
  event.path = "/okdir";
  EXPECT_EQ(to_inotify_line(event), "/home/arnab/test CREATE,ISDIR /okdir");
}

TEST(StdEventTest, FullPathJoinsRootAndPath) {
  StdEvent event;
  event.watch_root = "/mnt/lustre";
  event.path = "/a/b";
  EXPECT_EQ(event.full_path(), "/mnt/lustre/a/b");
  event.watch_root = "/";
  EXPECT_EQ(event.full_path(), "/a/b");
}

TEST(SerializationTest, RoundTripPreservesAllFields) {
  const StdEvent original = sample_event();
  const auto bytes = serialize_event(original);
  auto decoded = deserialize_event(bytes);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().first, original);
  EXPECT_EQ(decoded.value().second, bytes.size());
}

TEST(SerializationTest, EmptyStringsRoundTrip) {
  StdEvent event;
  const auto bytes = serialize_event(event);
  auto decoded = deserialize_event(bytes);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().first, event);
}

TEST(SerializationTest, TruncatedInputFails) {
  const auto bytes = serialize_event(sample_event());
  for (std::size_t len = 0; len + 1 < bytes.size(); len += 7) {
    auto decoded = deserialize_event(std::span(bytes.data(), len));
    EXPECT_FALSE(decoded.is_ok()) << "len=" << len;
    EXPECT_EQ(decoded.code(), common::ErrorCode::kCorrupt);
  }
}

TEST(SerializationTest, BadKindRejected) {
  auto bytes = serialize_event(sample_event());
  bytes[8] = std::byte{0xEE};  // kind byte follows the 8-byte id
  EXPECT_EQ(deserialize_event(bytes).code(), common::ErrorCode::kCorrupt);
}

TEST(SerializationTest, ConsecutiveEventsDecodeSequentially) {
  std::vector<std::byte> buffer;
  StdEvent a = sample_event();
  StdEvent b = sample_event();
  b.id = 43;
  b.path = "/other";
  serialize_event(a, buffer);
  serialize_event(b, buffer);
  auto first = deserialize_event(buffer);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().first.id, 42u);
  auto second = deserialize_event(std::span(buffer).subspan(first.value().second));
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().first.path, "/other");
}

}  // namespace
}  // namespace fsmon::core
