#include "src/core/filter.hpp"

#include <gtest/gtest.h>

#include "src/common/string_util.hpp"

namespace fsmon::core {
namespace {

StdEvent event_at(const std::string& path, EventKind kind = EventKind::kCreate) {
  StdEvent event;
  event.kind = kind;
  event.path = path;
  return event;
}

TEST(FilterRuleTest, DefaultMatchesEverything) {
  FilterRule rule;
  EXPECT_TRUE(rule.matches(event_at("/any/path")));
  EXPECT_TRUE(rule.matches(event_at("/x")));
}

TEST(FilterRuleTest, SubtreeRoot) {
  FilterRule rule;
  rule.root = "/project";
  EXPECT_TRUE(rule.matches(event_at("/project/file")));
  EXPECT_TRUE(rule.matches(event_at("/project/deep/er/file")));
  EXPECT_FALSE(rule.matches(event_at("/other/file")));
  EXPECT_FALSE(rule.matches(event_at("/projectile")));  // boundary check
}

TEST(FilterRuleTest, NonRecursiveIsDirectChildrenOnly) {
  // This is inotify's single-directory semantics, implemented as a
  // filtering rule (Section V-C1).
  FilterRule rule;
  rule.root = "/dir";
  rule.recursive = false;
  EXPECT_TRUE(rule.matches(event_at("/dir/file")));
  EXPECT_FALSE(rule.matches(event_at("/dir/sub/file")));
  EXPECT_FALSE(rule.matches(event_at("/dir")));
}

TEST(FilterRuleTest, RecursiveSeesSubdirectories) {
  FilterRule rule;
  rule.root = "/dir";
  rule.recursive = true;
  EXPECT_TRUE(rule.matches(event_at("/dir/sub/deeper/file")));
}

TEST(FilterRuleTest, NamePattern) {
  FilterRule rule;
  rule.name_pattern = "*.h5";
  EXPECT_TRUE(rule.matches(event_at("/data/run1.h5")));
  EXPECT_FALSE(rule.matches(event_at("/data/run1.txt")));
}

TEST(FilterRuleTest, KindRestriction) {
  FilterRule rule;
  rule.kinds = std::set<EventKind>{EventKind::kCreate, EventKind::kDelete};
  EXPECT_TRUE(rule.matches(event_at("/f", EventKind::kCreate)));
  EXPECT_TRUE(rule.matches(event_at("/f", EventKind::kDelete)));
  EXPECT_FALSE(rule.matches(event_at("/f", EventKind::kModify)));
}

TEST(FilterRuleTest, CombinedConstraints) {
  FilterRule rule;
  rule.root = "/data";
  rule.recursive = false;
  rule.name_pattern = "*.csv";
  rule.kinds = std::set<EventKind>{EventKind::kClose};
  EXPECT_TRUE(rule.matches(event_at("/data/x.csv", EventKind::kClose)));
  EXPECT_FALSE(rule.matches(event_at("/data/sub/x.csv", EventKind::kClose)));
  EXPECT_FALSE(rule.matches(event_at("/data/x.csv", EventKind::kCreate)));
  EXPECT_FALSE(rule.matches(event_at("/data/x.txt", EventKind::kClose)));
}

TEST(FilterRuleTest, PathNormalizationApplied) {
  FilterRule rule;
  rule.root = "/dir/";
  EXPECT_TRUE(rule.matches(event_at("/dir//file")));
}

// Boundary regressions pinned for both the legacy matcher and the
// compiled rule the subscription index is built from: the two paths must
// agree byte-for-byte on every edge case.

bool compiled_matches(const FilterRule& rule, const StdEvent& event) {
  const CompiledRule compiled = CompiledRule::compile(rule);
  const std::string path = common::normalize_path(event.path);
  return compiled.matches(path, common::base_name(path), event.kind);
}

void expect_both(const FilterRule& rule, const std::string& path, bool expected,
                 bool recursive) {
  FilterRule r = rule;
  r.recursive = recursive;
  EXPECT_EQ(r.matches(event_at(path)), expected)
      << "legacy root=" << r.root << " path=" << path << " recursive=" << recursive;
  EXPECT_EQ(compiled_matches(r, event_at(path)), expected)
      << "compiled root=" << r.root << " path=" << path << " recursive=" << recursive;
}

TEST(FilterBoundaryTest, PrefixRuleDoesNotMatchSiblingWithSharedPrefix) {
  FilterRule rule;
  rule.root = "/foo";
  for (bool recursive : {true, false}) {
    expect_both(rule, "/foobar", false, recursive);
    expect_both(rule, "/foobar/x", false, recursive);
  }
  expect_both(rule, "/foo/x", true, true);
  expect_both(rule, "/foo/x", true, false);
}

TEST(FilterBoundaryTest, TrailingSlashRootIsEquivalent) {
  FilterRule plain;
  plain.root = "/foo";
  FilterRule slashed;
  slashed.root = "/foo/";
  for (bool recursive : {true, false}) {
    for (const std::string path : {"/foo", "/foo/x", "/foo/x/y", "/foobar"}) {
      FilterRule a = plain;
      a.recursive = recursive;
      FilterRule b = slashed;
      b.recursive = recursive;
      EXPECT_EQ(a.matches(event_at(path)), b.matches(event_at(path)))
          << path << " recursive=" << recursive;
      EXPECT_EQ(compiled_matches(a, event_at(path)),
                compiled_matches(b, event_at(path)))
          << path << " recursive=" << recursive;
    }
  }
}

TEST(FilterBoundaryTest, RootSlashRecursiveMatchesEverything) {
  FilterRule rule;
  rule.root = "/";
  expect_both(rule, "/", true, true);
  expect_both(rule, "/a", true, true);
  expect_both(rule, "/a/b/c", true, true);
}

TEST(FilterBoundaryTest, RootSlashNonRecursiveMatchesRootAndDirectChildren) {
  // Legacy quirk, deliberately preserved: parent_path("/") == "/", so a
  // non-recursive "/" rule matches the root path itself.
  FilterRule rule;
  rule.root = "/";
  expect_both(rule, "/", true, false);
  expect_both(rule, "/a", true, false);
  expect_both(rule, "/a/b", false, false);
}

TEST(FilterBoundaryTest, NonRecursiveRootNeverMatchesItself) {
  FilterRule rule;
  rule.root = "/foo";
  expect_both(rule, "/foo", false, false);
  expect_both(rule, "/foo", true, true);
}

}  // namespace
}  // namespace fsmon::core
