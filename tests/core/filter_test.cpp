#include "src/core/filter.hpp"

#include <gtest/gtest.h>

namespace fsmon::core {
namespace {

StdEvent event_at(const std::string& path, EventKind kind = EventKind::kCreate) {
  StdEvent event;
  event.kind = kind;
  event.path = path;
  return event;
}

TEST(FilterRuleTest, DefaultMatchesEverything) {
  FilterRule rule;
  EXPECT_TRUE(rule.matches(event_at("/any/path")));
  EXPECT_TRUE(rule.matches(event_at("/x")));
}

TEST(FilterRuleTest, SubtreeRoot) {
  FilterRule rule;
  rule.root = "/project";
  EXPECT_TRUE(rule.matches(event_at("/project/file")));
  EXPECT_TRUE(rule.matches(event_at("/project/deep/er/file")));
  EXPECT_FALSE(rule.matches(event_at("/other/file")));
  EXPECT_FALSE(rule.matches(event_at("/projectile")));  // boundary check
}

TEST(FilterRuleTest, NonRecursiveIsDirectChildrenOnly) {
  // This is inotify's single-directory semantics, implemented as a
  // filtering rule (Section V-C1).
  FilterRule rule;
  rule.root = "/dir";
  rule.recursive = false;
  EXPECT_TRUE(rule.matches(event_at("/dir/file")));
  EXPECT_FALSE(rule.matches(event_at("/dir/sub/file")));
  EXPECT_FALSE(rule.matches(event_at("/dir")));
}

TEST(FilterRuleTest, RecursiveSeesSubdirectories) {
  FilterRule rule;
  rule.root = "/dir";
  rule.recursive = true;
  EXPECT_TRUE(rule.matches(event_at("/dir/sub/deeper/file")));
}

TEST(FilterRuleTest, NamePattern) {
  FilterRule rule;
  rule.name_pattern = "*.h5";
  EXPECT_TRUE(rule.matches(event_at("/data/run1.h5")));
  EXPECT_FALSE(rule.matches(event_at("/data/run1.txt")));
}

TEST(FilterRuleTest, KindRestriction) {
  FilterRule rule;
  rule.kinds = std::set<EventKind>{EventKind::kCreate, EventKind::kDelete};
  EXPECT_TRUE(rule.matches(event_at("/f", EventKind::kCreate)));
  EXPECT_TRUE(rule.matches(event_at("/f", EventKind::kDelete)));
  EXPECT_FALSE(rule.matches(event_at("/f", EventKind::kModify)));
}

TEST(FilterRuleTest, CombinedConstraints) {
  FilterRule rule;
  rule.root = "/data";
  rule.recursive = false;
  rule.name_pattern = "*.csv";
  rule.kinds = std::set<EventKind>{EventKind::kClose};
  EXPECT_TRUE(rule.matches(event_at("/data/x.csv", EventKind::kClose)));
  EXPECT_FALSE(rule.matches(event_at("/data/sub/x.csv", EventKind::kClose)));
  EXPECT_FALSE(rule.matches(event_at("/data/x.csv", EventKind::kCreate)));
  EXPECT_FALSE(rule.matches(event_at("/data/x.txt", EventKind::kClose)));
}

TEST(FilterRuleTest, PathNormalizationApplied) {
  FilterRule rule;
  rule.root = "/dir/";
  EXPECT_TRUE(rule.matches(event_at("/dir//file")));
}

}  // namespace
}  // namespace fsmon::core
