#include "src/core/watchdog_api.hpp"

#include <gtest/gtest.h>

#include "src/localfs/memfs.hpp"
#include "src/localfs/sim_dsi.hpp"

namespace fsmon::core {
namespace {

/// Records every hook invocation.
class RecordingHandler : public EventHandler {
 public:
  void on_created(const StdEvent& event) override { log("created:" + event.path); }
  void on_modified(const StdEvent& event) override { log("modified:" + event.path); }
  void on_deleted(const StdEvent& event) override { log("deleted:" + event.path); }
  void on_closed(const StdEvent& event) override { log("closed:" + event.path); }
  void on_attrib(const StdEvent& event) override { log("attrib:" + event.path); }
  void on_moved(const StdEvent& from, const StdEvent& to) override {
    log("moved:" + from.path + "->" + to.path);
  }
  void on_moved_away(const StdEvent& from) override { log("moved_away:" + from.path); }
  void on_moved_in(const StdEvent& to) override { log("moved_in:" + to.path); }

  std::vector<std::string> entries;

 private:
  void log(std::string entry) { entries.push_back(std::move(entry)); }
};

StdEvent event_of(EventKind kind, const std::string& path, std::uint64_t cookie = 0) {
  StdEvent event;
  event.kind = kind;
  event.path = path;
  event.cookie = cookie;
  return event;
}

TEST(HandlerDispatcherTest, RoutesKindsToHooks) {
  RecordingHandler handler;
  HandlerDispatcher dispatcher(handler);
  dispatcher.dispatch(event_of(EventKind::kCreate, "/a"));
  dispatcher.dispatch(event_of(EventKind::kModify, "/a"));
  dispatcher.dispatch(event_of(EventKind::kClose, "/a"));
  dispatcher.dispatch(event_of(EventKind::kAttrib, "/a"));
  dispatcher.dispatch(event_of(EventKind::kDelete, "/a"));
  EXPECT_EQ(handler.entries,
            (std::vector<std::string>{"created:/a", "modified:/a", "closed:/a",
                                      "attrib:/a", "deleted:/a"}));
  EXPECT_EQ(dispatcher.dispatched(), 5u);
}

TEST(HandlerDispatcherTest, PairsRenamesOnCookie) {
  RecordingHandler handler;
  HandlerDispatcher dispatcher(handler);
  dispatcher.dispatch(event_of(EventKind::kMovedFrom, "/old", 7));
  EXPECT_TRUE(handler.entries.empty());  // held until the pair completes
  dispatcher.dispatch(event_of(EventKind::kMovedTo, "/new", 7));
  EXPECT_EQ(handler.entries, (std::vector<std::string>{"moved:/old->/new"}));
}

TEST(HandlerDispatcherTest, InterleavedRenamePairs) {
  RecordingHandler handler;
  HandlerDispatcher dispatcher(handler);
  dispatcher.dispatch(event_of(EventKind::kMovedFrom, "/a", 1));
  dispatcher.dispatch(event_of(EventKind::kMovedFrom, "/b", 2));
  dispatcher.dispatch(event_of(EventKind::kMovedTo, "/b2", 2));
  dispatcher.dispatch(event_of(EventKind::kMovedTo, "/a2", 1));
  EXPECT_EQ(handler.entries,
            (std::vector<std::string>{"moved:/b->/b2", "moved:/a->/a2"}));
}

TEST(HandlerDispatcherTest, UnpairedMoves) {
  RecordingHandler handler;
  HandlerDispatcher dispatcher(handler);
  dispatcher.dispatch(event_of(EventKind::kMovedTo, "/incoming", 9));
  EXPECT_EQ(handler.entries, (std::vector<std::string>{"moved_in:/incoming"}));
  dispatcher.dispatch(event_of(EventKind::kMovedFrom, "/outgoing", 10));
  dispatcher.flush_pending_moves();
  EXPECT_EQ(handler.entries.back(), "moved_away:/outgoing");
  // Cookie 0 means the backend could not pair at all.
  dispatcher.dispatch(event_of(EventKind::kMovedFrom, "/nocookie", 0));
  EXPECT_EQ(handler.entries.back(), "moved_away:/nocookie");
}

TEST(HandlerDispatcherTest, DefaultHandlerIgnoresEverything) {
  EventHandler handler;  // no overrides
  HandlerDispatcher dispatcher(handler);
  dispatcher.dispatch(event_of(EventKind::kCreate, "/a"));
  dispatcher.dispatch(event_of(EventKind::kOpen, "/a"));
  EXPECT_EQ(dispatcher.dispatched(), 2u);
}

class ObserverTest : public ::testing::Test {
 protected:
  ObserverTest() {
    localfs::register_sim_dsis(registry, fs, clock);
    fs.mkdir("/data");
    MonitorOptions options;
    options.storage.scheme = "sim-inotify";
    options.storage.root = "/";
    monitor = std::make_unique<FsMonitor>(options, &registry, &clock);
  }

  common::ManualClock clock;
  localfs::MemFs fs;
  DsiRegistry registry;
  std::unique_ptr<FsMonitor> monitor;
};

TEST_F(ObserverTest, HandlerReceivesLiveEvents) {
  RecordingHandler handler;
  Observer observer;
  observer.schedule(handler, *monitor, "/data", true);
  ASSERT_TRUE(monitor->start().is_ok());
  fs.create("/data/f.txt");
  fs.rename("/data/f.txt", "/data/g.txt");
  fs.remove("/data/g.txt");
  monitor->stop();
  EXPECT_EQ(handler.entries,
            (std::vector<std::string>{"created:/data/f.txt",
                                      "moved:/data/f.txt->/data/g.txt",
                                      "deleted:/data/g.txt"}));
}

TEST_F(ObserverTest, NonRecursiveWatchScopesEvents) {
  fs.mkdir("/data/sub");
  RecordingHandler handler;
  Observer observer;
  observer.schedule(handler, *monitor, "/data", /*recursive=*/false);
  ASSERT_TRUE(monitor->start().is_ok());
  fs.create("/data/direct");
  fs.create("/data/sub/nested");
  monitor->stop();
  EXPECT_EQ(handler.entries, (std::vector<std::string>{"created:/data/direct"}));
}

TEST_F(ObserverTest, UnscheduleStopsDelivery) {
  RecordingHandler handler;
  Observer observer;
  const auto id = observer.schedule(handler, *monitor, "/data", true);
  ASSERT_TRUE(monitor->start().is_ok());
  fs.create("/data/one");
  monitor->stop();
  observer.unschedule(id);
  EXPECT_EQ(observer.watch_count(), 0u);
  ASSERT_TRUE(monitor->start().is_ok());
  fs.create("/data/two");
  monitor->stop();
  EXPECT_EQ(handler.entries, (std::vector<std::string>{"created:/data/one"}));
}

TEST_F(ObserverTest, MultipleHandlersIndependent) {
  RecordingHandler a, b;
  Observer observer;
  fs.mkdir("/data/a");
  fs.mkdir("/data/b");
  observer.schedule(a, *monitor, "/data/a", true);
  observer.schedule(b, *monitor, "/data/b", true);
  EXPECT_EQ(observer.watch_count(), 2u);
  ASSERT_TRUE(monitor->start().is_ok());
  fs.create("/data/a/x");
  fs.create("/data/b/y");
  monitor->stop();
  EXPECT_EQ(a.entries, (std::vector<std::string>{"created:/data/a/x"}));
  EXPECT_EQ(b.entries, (std::vector<std::string>{"created:/data/b/y"}));
  observer.unschedule_all();
  EXPECT_EQ(observer.watch_count(), 0u);
}

}  // namespace
}  // namespace fsmon::core
