#include "src/core/resolution.hpp"

#include <condition_variable>
#include <mutex>

#include <gtest/gtest.h>

namespace fsmon::core {
namespace {

class ResolutionTest : public ::testing::Test {
 protected:
  ResolutionOptions options(const std::string& root = "/watch") {
    ResolutionOptions o;
    o.watch_root = root;
    o.batch_size = 4;
    return o;
  }
  common::RealClock clock;
};

TEST_F(ResolutionTest, ResolveRelativizesAgainstRoot) {
  ResolutionLayer layer(options(), clock);
  StdEvent event;
  event.path = "/watch/sub/file.txt";
  layer.resolve(event);
  EXPECT_EQ(event.path, "/sub/file.txt");
  EXPECT_EQ(event.watch_root, "/watch");
}

TEST_F(ResolutionTest, ResolveKeepsAlreadyRelativePaths) {
  ResolutionLayer layer(options(), clock);
  StdEvent event;
  event.path = "/file.txt";  // not under /watch: treated as store-relative
  layer.resolve(event);
  EXPECT_EQ(event.path, "/file.txt");
  EXPECT_EQ(event.watch_root, "/watch");
}

TEST_F(ResolutionTest, ResolveNormalizesMessyPaths) {
  ResolutionLayer layer(options(), clock);
  StdEvent event;
  event.path = "/watch//a/./b/../c";
  layer.resolve(event);
  EXPECT_EQ(event.path, "/a/c");
}

TEST_F(ResolutionTest, ResolveRootItself) {
  ResolutionLayer layer(options(), clock);
  StdEvent event;
  event.path = "/watch";
  layer.resolve(event);
  EXPECT_EQ(event.path, "/");
}

TEST_F(ResolutionTest, StampsMissingTimestamp) {
  ResolutionLayer layer(options(), clock);
  StdEvent event;
  layer.resolve(event);
  EXPECT_NE(event.timestamp, common::TimePoint{});
}

TEST_F(ResolutionTest, PreservesExistingTimestamp) {
  ResolutionLayer layer(options(), clock);
  StdEvent event;
  event.timestamp = common::TimePoint{std::chrono::nanoseconds(1)};
  layer.resolve(event);
  EXPECT_EQ(event.timestamp.time_since_epoch(), std::chrono::nanoseconds(1));
}

TEST_F(ResolutionTest, WorkerDeliversBatchesToSink) {
  ResolutionLayer layer(options(), clock);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<StdEvent> received;
  layer.start([&](std::vector<StdEvent> batch) {
    std::lock_guard lock(mu);
    for (auto& event : batch) received.push_back(std::move(event));
    cv.notify_one();
  });
  for (int i = 0; i < 10; ++i) {
    StdEvent event;
    event.path = "/watch/f" + std::to_string(i);
    ASSERT_TRUE(layer.submit(std::move(event)));
  }
  {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(5), [&] { return received.size() == 10; });
  }
  layer.stop();
  ASSERT_EQ(received.size(), 10u);
  EXPECT_EQ(received[0].path, "/f0");
  EXPECT_EQ(received[9].path, "/f9");
  EXPECT_EQ(layer.processed(), 10u);
  EXPECT_GE(layer.batches(), 3u);  // batch_size=4 -> at least ceil(10/4)
}

TEST_F(ResolutionTest, StopDrainsQueue) {
  ResolutionLayer layer(options(), clock);
  std::atomic<int> count{0};
  layer.start([&](std::vector<StdEvent> batch) {
    count += static_cast<int>(batch.size());
  });
  for (int i = 0; i < 100; ++i) layer.submit(StdEvent{});
  layer.stop();
  EXPECT_EQ(count.load(), 100);
}

TEST_F(ResolutionTest, SubmitAfterStopFails) {
  ResolutionLayer layer(options(), clock);
  layer.start([](std::vector<StdEvent>) {});
  layer.stop();
  EXPECT_FALSE(layer.submit(StdEvent{}));
}

TEST_F(ResolutionTest, DropNewestPolicyCountsDrops) {
  ResolutionOptions o = options();
  o.queue_capacity = 2;
  o.overflow_policy = common::OverflowPolicy::kDropNewest;
  ResolutionLayer layer(o, clock);
  // Worker not started: queue fills and drops.
  EXPECT_TRUE(layer.submit(StdEvent{}));
  EXPECT_TRUE(layer.submit(StdEvent{}));
  EXPECT_FALSE(layer.submit(StdEvent{}));
  EXPECT_EQ(layer.dropped(), 1u);
}

}  // namespace
}  // namespace fsmon::core
