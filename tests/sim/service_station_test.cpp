#include "src/sim/service_station.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace fsmon::sim {
namespace {

using common::TimePoint;
using std::chrono::milliseconds;

TEST(ServiceStationTest, ProcessesJobsSerially) {
  Engine engine;
  ServiceStation station(engine, "s");
  std::vector<common::Duration> completion_times;
  for (int i = 0; i < 3; ++i) {
    station.submit(milliseconds(10), [&] {
      completion_times.push_back(engine.now().time_since_epoch());
    });
  }
  engine.run();
  ASSERT_EQ(completion_times.size(), 3u);
  EXPECT_EQ(completion_times[0], milliseconds(10));
  EXPECT_EQ(completion_times[1], milliseconds(20));
  EXPECT_EQ(completion_times[2], milliseconds(30));
  EXPECT_EQ(station.completed(), 3u);
}

TEST(ServiceStationTest, UsageChargedExplicitlyByCaller) {
  Engine engine;
  ServiceStation station(engine, "s");
  // Occupancy (service time) and CPU are independent: a stage can hold a
  // job for 25ms of wait while burning only 5ms of cycles.
  station.usage().charge_busy(milliseconds(5));
  station.submit(milliseconds(25), nullptr);
  station.usage().charge_busy(milliseconds(5));
  station.submit(milliseconds(25), nullptr);
  engine.run();
  // 10ms CPU over a 100ms window = 10% of one core.
  EXPECT_NEAR(station.usage().cpu_percent(milliseconds(100)), 10.0, 1e-9);
  // Occupancy still advanced virtual time by the full 50ms.
  EXPECT_EQ(engine.now().time_since_epoch(), milliseconds(50));
}

TEST(ServiceStationTest, QueueDepthAndPeak) {
  Engine engine;
  ServiceStation station(engine, "s");
  station.submit(milliseconds(10), nullptr);
  station.submit(milliseconds(10), nullptr);
  station.submit(milliseconds(10), nullptr);
  EXPECT_EQ(station.queue_depth(), 3u);
  EXPECT_EQ(station.peak_queue_depth(), 3u);
  engine.run();
  EXPECT_EQ(station.queue_depth(), 0u);
  EXPECT_EQ(station.peak_queue_depth(), 3u);
}

TEST(ServiceStationTest, JobsSubmittedDuringRunAreServed) {
  Engine engine;
  ServiceStation station(engine, "s");
  int completions = 0;
  station.submit(milliseconds(5), [&] {
    ++completions;
    station.submit(milliseconds(5), [&] { ++completions; });
  });
  engine.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(engine.now().time_since_epoch(), milliseconds(10));
}

TEST(ServiceStationTest, ZeroServiceTimeCompletesImmediately) {
  Engine engine;
  ServiceStation station(engine, "s");
  bool done = false;
  station.submit(common::Duration::zero(), [&] { done = true; });
  engine.run();
  EXPECT_TRUE(done);
}

TEST(ServiceStationTest, NegativeServiceTimeThrows) {
  Engine engine;
  ServiceStation station(engine, "s");
  EXPECT_THROW(station.submit(milliseconds(-1), nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace fsmon::sim
