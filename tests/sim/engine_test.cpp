#include "src/sim/engine.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace fsmon::sim {
namespace {

using common::Duration;
using common::TimePoint;
using std::chrono::milliseconds;

TEST(EngineTest, RunsCallbacksInTimestampOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(milliseconds(30), [&] { order.push_back(3); });
  engine.schedule(milliseconds(10), [&] { order.push_back(1); });
  engine.schedule(milliseconds(20), [&] { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineTest, FifoAmongEqualTimestamps) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    engine.schedule(milliseconds(5), [&, i] { order.push_back(i); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, NowAdvancesToCallbackTime) {
  Engine engine;
  TimePoint seen{};
  engine.schedule(milliseconds(42), [&] { seen = engine.now(); });
  engine.run();
  EXPECT_EQ(seen.time_since_epoch(), milliseconds(42));
  EXPECT_EQ(engine.now().time_since_epoch(), milliseconds(42));
}

TEST(EngineTest, CallbacksCanScheduleMore) {
  Engine engine;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) engine.schedule(milliseconds(1), tick);
  };
  engine.schedule(milliseconds(1), tick);
  engine.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(engine.now().time_since_epoch(), milliseconds(10));
}

TEST(EngineTest, RunUntilStopsAtBoundaryAndSetsNow) {
  Engine engine;
  int fired = 0;
  engine.schedule(milliseconds(10), [&] { ++fired; });
  engine.schedule(milliseconds(30), [&] { ++fired; });
  EXPECT_EQ(engine.run_until(TimePoint{} + milliseconds(20)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now().time_since_epoch(), milliseconds(20));
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, RunUntilInclusiveOfBoundary) {
  Engine engine;
  bool fired = false;
  engine.schedule(milliseconds(20), [&] { fired = true; });
  engine.run_until(TimePoint{} + milliseconds(20));
  EXPECT_TRUE(fired);
}

TEST(EngineTest, NegativeDelayThrows) {
  Engine engine;
  EXPECT_THROW(engine.schedule(milliseconds(-1), [] {}), std::invalid_argument);
}

TEST(EngineTest, SchedulePastThrows) {
  Engine engine;
  engine.schedule(milliseconds(10), [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(TimePoint{} + milliseconds(5), [] {}),
               std::invalid_argument);
}

TEST(EngineTest, ClockViewTracksEngine) {
  Engine engine;
  Duration seen{};
  engine.schedule(milliseconds(7), [&] { seen = engine.clock().now().time_since_epoch(); });
  engine.run();
  EXPECT_EQ(seen, milliseconds(7));
}

TEST(EngineTest, ClockViewSleepThrows) {
  Engine engine;
  EXPECT_THROW(engine.clock().sleep_for(milliseconds(1)), std::logic_error);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i)
      engine.schedule(milliseconds(i % 7), [&, i] { order.push_back(i); });
    engine.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fsmon::sim
