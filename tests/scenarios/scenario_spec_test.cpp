// ScenarioSpec: the declarative scenario file format (parse + validation).
// Execution is covered end-to-end by tools/run_scenarios.sh; these tests
// pin the parser contract so a malformed file fails loudly, not mid-run.
#include "src/scenarios/scenario.hpp"

#include <gtest/gtest.h>

namespace fsmon::scenarios {
namespace {

TEST(ScenarioSpecTest, ParsesNameAndConfigKeys) {
  const auto spec = ScenarioSpec::parse(R"(
# comment
name = demo
mounts = alpha,beta
mount.alpha.backend = lustre
mount.alpha.prefix = /mnt/alpha
workload = churn
workload.steps = 100
faults = none
subscribers = 4
)");
  ASSERT_TRUE(spec);
  EXPECT_EQ(spec->name, "demo");
  EXPECT_EQ(spec->config.get_or("mounts", ""), "alpha,beta");
  EXPECT_EQ(spec->config.get_or("mount.alpha.backend", ""), "lustre");
  EXPECT_EQ(spec->config.get_int("workload.steps", 0), 100);
  EXPECT_EQ(spec->config.get_int("subscribers", 0), 4);
}

TEST(ScenarioSpecTest, RequiresAName) {
  const auto spec = ScenarioSpec::parse("mounts = a\nworkload = churn\n");
  EXPECT_FALSE(spec);
}

TEST(ScenarioSpecTest, RejectsMalformedLinesAsStatusNotException) {
  const auto spec = ScenarioSpec::parse("name demo without equals\n");
  ASSERT_FALSE(spec);
  EXPECT_EQ(spec.status().code(), common::ErrorCode::kInvalid);
}

TEST(ScenarioSpecTest, LoadFileReportsMissingFile) {
  EXPECT_FALSE(ScenarioSpec::load_file("/nonexistent/path.scenario"));
}

TEST(ScenarioSpecTest, ShippedScenariosAllParse) {
  // Every scenario in the shipped matrix must load; run_scenarios.sh
  // depends on the whole directory being valid.
  const char* files[] = {
      "smoke_federated_mix", "fed_exactly_once_inproc", "fed_exactly_once_tcp",
      "lustre_ior_clean",    "localfs_dialects",        "spectrumscale_hacc",
      "fed_wal_torn",        "fed_tcp_drop",            "soak_24h_subscribers",
  };
  for (const char* file : files) {
    const auto spec = ScenarioSpec::load_file(std::string(FSMON_SOURCE_DIR) +
                                              "/scenarios/" + file + ".scenario");
    ASSERT_TRUE(spec) << file;
    EXPECT_EQ(spec->name, file);
    EXPECT_FALSE(spec->config.get_or("mounts", "").empty()) << file;
  }
}

}  // namespace
}  // namespace fsmon::scenarios
