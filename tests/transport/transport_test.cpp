// The Transport contract, checked identically over all three
// implementations (in-process, shared-memory ring, TCP): exact byte
// delivery, prefix filters, the refusal protocol the collector rewind
// depends on, wrong-kind connect rejection, the transport.before_send
// chaos lever, per-transport metrics, and zero-copy hops.
#include "src/transport/transport.hpp"

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/chaos/fault.hpp"
#include "src/msgq/pubsub.hpp"
#include "src/obs/metrics.hpp"
#include "src/transport/inproc.hpp"
#include "src/transport/shm.hpp"
#include "src/transport/tcp.hpp"

namespace fsmon::transport {
namespace {

constexpr auto kRecvTimeout = std::chrono::milliseconds(5000);

class TransportTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  std::unique_ptr<Transport> make_transport(TransportKind kind) {
    switch (kind) {
      case TransportKind::kInProc:
        return std::make_unique<InProcTransport>(bus_);
      case TransportKind::kShm:
        return std::make_unique<ShmTransport>();
      case TransportKind::kTcp:
        return std::make_unique<TcpTransport>();
    }
    return nullptr;
  }

  std::unique_ptr<Transport> make_transport() { return make_transport(GetParam()); }

  void TearDown() override { chaos::FaultInjector::instance().disarm(); }

  msgq::Bus bus_;
};

TEST_P(TransportTest, RoundtripDeliversExactBytes) {
  auto transport = make_transport();
  EXPECT_EQ(transport->kind(), GetParam());
  auto sender = transport->make_sender("s");
  auto receiver = transport->make_receiver("r", 1024, OverflowPolicy::kBlock);
  receiver->subscribe("");
  sender->connect(receiver);
  EXPECT_EQ(sender->receiver_count(), 1u);

  const std::string payload("encoded-batch\x00with-binary\xff-bytes", 32);
  const auto result = sender->send("events/shard0", FrameRef::adopt(std::string(payload)));
  EXPECT_EQ(result.accepted, 1u);
  EXPECT_EQ(result.receivers, 1u);
  EXPECT_FALSE(result.refused());
  EXPECT_EQ(sender->sent(), 1u);

  auto frame = receiver->recv(kRecvTimeout);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->topic, "events/shard0");
  EXPECT_EQ(frame->payload.chars(), payload);
}

TEST_P(TransportTest, PerSenderOrderIsPreserved) {
  auto transport = make_transport();
  auto sender = transport->make_sender("s");
  auto receiver = transport->make_receiver("r", 1024, OverflowPolicy::kBlock);
  receiver->subscribe("");
  sender->connect(receiver);
  for (int i = 0; i < 50; ++i) {
    const auto result =
        sender->send("t", FrameRef::adopt("frame" + std::to_string(i)));
    ASSERT_EQ(result.accepted, 1u) << "frame " << i;
  }
  for (int i = 0; i < 50; ++i) {
    auto frame = receiver->recv(kRecvTimeout);
    ASSERT_TRUE(frame.has_value()) << "frame " << i;
    EXPECT_EQ(frame->payload.chars(), "frame" + std::to_string(i));
  }
}

TEST_P(TransportTest, TopicPrefixFilterApplies) {
  auto transport = make_transport();
  auto sender = transport->make_sender("s");
  auto receiver = transport->make_receiver("r", 1024, OverflowPolicy::kBlock);
  receiver->subscribe("alpha");
  sender->connect(receiver);

  sender->send("beta/filtered-out", FrameRef::adopt(std::string("nope")));
  sender->send("alpha/kept", FrameRef::adopt(std::string("yes")));

  // The first frame through the filter must be the alpha one: the beta
  // frame was never enqueued (never even crossed the wire on TCP, where
  // filters run publisher-side).
  auto frame = receiver->recv(kRecvTimeout);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->topic, "alpha/kept");
  EXPECT_EQ(frame->payload.chars(), "yes");
  EXPECT_FALSE(receiver->try_recv().has_value());
}

TEST_P(TransportTest, NoFiltersReceiveNothing) {
  auto transport = make_transport();
  auto sender = transport->make_sender("s");
  auto receiver = transport->make_receiver("r", 1024, OverflowPolicy::kBlock);
  sender->connect(receiver);  // connected but not subscribed

  sender->send("t", FrameRef::adopt(std::string("invisible")));
  receiver->subscribe("");
  // A post-connect subscribe registers asynchronously on TCP (production
  // stages subscribe before connect, which waits). Keep sending sentinels
  // until one lands; whatever arrives first must be a sentinel — the
  // pre-subscription frame stays invisible on every carrier.
  std::optional<Frame> frame;
  for (int i = 0; i < 200 && !frame.has_value(); ++i) {
    sender->send("t", FrameRef::adopt(std::string("sentinel")));
    frame = receiver->recv(std::chrono::milliseconds(25));
  }
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.chars(), "sentinel");
}

TEST_P(TransportTest, ConnectingForeignReceiverThrows) {
  auto transport = make_transport();
  auto sender = transport->make_sender("s");
  // A receiver made by a *different* transport kind must be rejected at
  // connect time, not fail silently at send time.
  const auto other_kind = GetParam() == TransportKind::kInProc ? TransportKind::kShm
                                                              : TransportKind::kInProc;
  auto other = make_transport(other_kind);
  auto foreign = other->make_receiver("foreign", 16, OverflowPolicy::kBlock);
  EXPECT_THROW(sender->connect(foreign), std::invalid_argument);
  EXPECT_EQ(sender->receiver_count(), 0u);
}

TEST_P(TransportTest, BeforeSendFaultSurfacesAsRefusal) {
  auto transport = make_transport();
  auto sender = transport->make_sender("s");
  auto receiver = transport->make_receiver("r", 1024, OverflowPolicy::kBlock);
  receiver->subscribe("");
  sender->connect(receiver);

  chaos::FaultPlan plan;
  chaos::FaultRule rule;
  rule.point = "transport.before_send";
  rule.action = chaos::FaultAction::kDrop;
  rule.max_fires = 1;
  plan.rules.push_back(rule);
  chaos::FaultInjector::instance().arm(std::move(plan));

  // The faulted send is a refusal — the producer's signal to rewind.
  const auto refused = sender->send("t", FrameRef::adopt(std::string("dropped")));
  EXPECT_EQ(refused.accepted, 0u);
  EXPECT_TRUE(refused.refused());

  // One fire only: the retry goes through, and the receiver never saw
  // the refused frame.
  const auto retried = sender->send("t", FrameRef::adopt(std::string("retried")));
  EXPECT_EQ(retried.accepted, 1u);
  auto frame = receiver->recv(kRecvTimeout);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.chars(), "retried");
}

TEST_P(TransportTest, ClosedReceiverRefusesAndReopenDiscardsBacklog) {
  // Regression test for the TCP reconnect suffix-loss race: a receiver
  // that was connected and is now gone must surface as a *refusal*
  // (receivers > 0, accepted == 0 — the producer's rewind signal), never
  // as receivers == 0 ("nobody ever listened, fine to drop"). In-proc
  // and shm always behaved this way because the inbox object survives a
  // close; TCP used to report the empty connection table as an empty
  // audience, silently losing every frame a collector replayed into a
  // crashed shard's teardown/re-dial window.
  auto transport = make_transport();
  auto sender = transport->make_sender("s");
  auto receiver = transport->make_receiver("r", 1024, OverflowPolicy::kBlock);
  receiver->subscribe("");
  sender->connect(receiver);

  ASSERT_EQ(sender->send("t", FrameRef::adopt(std::string("pre-close"))).accepted, 1u);
  receiver->close();
  EXPECT_TRUE(receiver->closed());
  // The carriers learn of the dead peer at different speeds: in-proc and
  // shm refuse on the first send; TCP may buffer a few writes into the
  // half-closed socket before the failure surfaces. Bounded retries,
  // then the result must be a refusal.
  SendResult result;
  for (int i = 0; i < 500; ++i) {
    result = sender->send("t", FrameRef::adopt(std::string("refused")));
    if (result.refused()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(result.accepted, 0u);
  EXPECT_GE(result.receivers, 1u);
  EXPECT_TRUE(result.refused());

  // Reopen drops the pre-crash backlog (restart semantics): the first
  // frame a restarted stage sees is one sent after the reopen. On TCP
  // the re-dialed subscription registers asynchronously, so retry until
  // a send is accepted.
  receiver->reopen();
  EXPECT_FALSE(receiver->closed());
  SendResult reopened;
  for (int i = 0; i < 500; ++i) {
    reopened = sender->send("t", FrameRef::adopt(std::string("post-reopen")));
    if (reopened.accepted > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(reopened.accepted, 0u);
  auto frame = receiver->recv(kRecvTimeout);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.chars(), "post-reopen");
  // Nothing from before the close may leak through; only (possibly
  // repeated) post-reopen sends are visible.
  while (auto extra = receiver->try_recv()) {
    EXPECT_EQ(extra->payload.chars(), "post-reopen");
  }
}

TEST_P(TransportTest, MetricsCountAcceptedFramesAndBytes) {
  obs::MetricsRegistry registry;
  auto transport = make_transport();
  transport->attach_metrics(&registry);
  auto sender = transport->make_sender("s");
  auto receiver = transport->make_receiver("r", 1024, OverflowPolicy::kBlock);
  receiver->subscribe("");
  sender->connect(receiver);

  std::uint64_t bytes = 0;
  for (int i = 0; i < 3; ++i) {
    const std::string payload(10 + i, 'x');
    bytes += payload.size();
    ASSERT_EQ(sender->send("t", FrameRef::adopt(std::string(payload))).accepted, 1u);
  }

  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_total("transport.frames"), 3u);
  EXPECT_EQ(snapshot.counter_total("transport.bytes"), bytes);
  EXPECT_TRUE(snapshot.contains("transport.ring_full_waits"));
  EXPECT_TRUE(snapshot.contains("frame.copies"));
  // The label identifies which transport moved the frames.
  bool labelled = false;
  for (const auto& sample : snapshot.samples) {
    if (sample.name == "transport.frames") {
      const auto it = sample.labels.find("transport");
      labelled = it != sample.labels.end() && it->second == to_string(GetParam());
    }
  }
  EXPECT_TRUE(labelled) << "transport.frames missing transport=<kind> label";
}

TEST_P(TransportTest, HopIsZeroCopy) {
  auto transport = make_transport();
  auto sender = transport->make_sender("s");
  auto receiver = transport->make_receiver("r", 1024, OverflowPolicy::kBlock);
  receiver->subscribe("");
  sender->connect(receiver);

  const std::uint64_t before = frame_copies();
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(sender->send("t", FrameRef::adopt(std::string(512, 'z'))).accepted, 1u);
    auto frame = receiver->recv(kRecvTimeout);
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frame->payload.size(), 512u);
  }
  // In-proc: shared_ptr bump. Shm: one write into the ring, read in
  // place. TCP: scatter-gather send + wire transfer (not a frame copy).
  EXPECT_EQ(frame_copies(), before);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TransportTest,
                         ::testing::Values(TransportKind::kInProc, TransportKind::kShm,
                                           TransportKind::kTcp),
                         [](const ::testing::TestParamInfo<TransportKind>& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace fsmon::transport
