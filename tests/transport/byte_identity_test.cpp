// Satellite invariant of the transport layer: the carrier must be
// invisible. The same 4-shard workload routed over the in-process bus,
// the shared-memory rings and the TCP bridge must deliver byte-identical
// per-shard consumer streams — same frames, same bytes, same order. The
// in-proc and shm runs must additionally complete with zero frame
// copies (TCP's receive side materializes bytes off the socket; that is
// a wire transfer, not a counted copy — see src/transport/frame.hpp).
#include <array>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/event.hpp"
#include "src/scalable/sharded_aggregator.hpp"
#include "src/transport/inproc.hpp"
#include "src/transport/shm.hpp"
#include "src/transport/tcp.hpp"

namespace fsmon::transport {
namespace {

constexpr std::size_t kShards = 4;
constexpr int kRounds = 8;

std::string make_frame(const std::string& source, std::uint64_t first_cookie,
                       int count) {
  core::EventBatch batch;
  for (int i = 0; i < count; ++i) {
    core::StdEvent event;
    event.source = source;
    event.cookie = first_cookie + static_cast<std::uint64_t>(i);
    event.path = "/f" + std::to_string(event.cookie);
    batch.events.push_back(std::move(event));
  }
  const auto bytes = core::encode_batch(batch);
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

/// topic -> ordered frame payloads, i.e. one byte stream per shard.
using Streams = std::map<std::string, std::vector<std::string>>;

Streams run_workload(Transport& transport) {
  msgq::Bus bus;
  common::RealClock clock;
  scalable::ShardedAggregatorOptions options;
  options.shards = kShards;
  options.transport = &transport;
  scalable::ShardedAggregator sharded(bus, "aggregator", std::move(options), clock);

  auto tap = transport.make_receiver("tap", 1 << 16, OverflowPolicy::kBlock);
  tap->subscribe("");
  for (std::size_t k = 0; k < kShards; ++k) sharded.shard(k).connect_output(tap);

  // Fixed global route order from this one thread: per-shard arrival
  // order (and so per-shard id assignment) is the same on every carrier.
  // MDT i -> shard i via the trailing-index rule.
  std::size_t frames_routed = 0;
  std::uint64_t events_routed = 0;
  std::array<std::uint64_t, kShards> next_cookie;
  next_cookie.fill(1);
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t m = 0; m < kShards; ++m) {
      const int count = 1 + (round + static_cast<int>(m)) % 5;
      const std::string source = "lustre:MDT" + std::to_string(m);
      const auto result =
          sharded.router().route("events", make_frame(source, next_cookie[m], count));
      EXPECT_EQ(result.accepted, 1u) << source << " round " << round;
      next_cookie[m] += static_cast<std::uint64_t>(count);
      ++frames_routed;
      events_routed += static_cast<std::uint64_t>(count);
    }
  }

  // Synchronous shard drains; over TCP the routed frames arrive through
  // sockets, so poll until every event has been pumped.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (sharded.aggregated() < events_routed &&
         std::chrono::steady_clock::now() < deadline) {
    for (std::size_t k = 0; k < kShards; ++k) sharded.shard(k).drain_once();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(sharded.aggregated(), events_routed);

  Streams streams;
  for (std::size_t i = 0; i < frames_routed; ++i) {
    auto frame = tap->recv(std::chrono::milliseconds(5000));
    if (!frame.has_value()) break;
    streams[frame->topic].push_back(std::string(frame->payload.chars()));
  }
  EXPECT_FALSE(tap->try_recv().has_value());
  return streams;
}

TEST(ByteIdentityTest, AllTransportsDeliverIdenticalConsumerStreams) {
  msgq::Bus inproc_bus;
  InProcTransport inproc(inproc_bus);
  ShmTransport shm;
  TcpTransport tcp;

  const std::uint64_t copies_before = frame_copies();
  const Streams via_inproc = run_workload(inproc);
  const Streams via_shm = run_workload(shm);
  // In-proc handoffs are refcount bumps; shm writes each frame once into
  // the ring and patches ids in place. Neither run may copy any payload.
  EXPECT_EQ(frame_copies(), copies_before);
  const Streams via_tcp = run_workload(tcp);

  // One stream per shard, every shard saw traffic.
  ASSERT_EQ(via_inproc.size(), kShards);
  for (const auto& [topic, frames] : via_inproc) {
    EXPECT_EQ(frames.size(), kRounds) << topic;
  }

  // The tentpole assertion: carrier changes nothing, byte for byte.
  EXPECT_EQ(via_shm, via_inproc);
  EXPECT_EQ(via_tcp, via_inproc);
}

TEST(ByteIdentityTest, ShardStreamsDifferButUnionCoversWorkload) {
  // Sanity on the harness itself: the per-shard streams are genuinely
  // partitioned (no two shards carry the same frames), and decoding the
  // union recovers every routed (source, cookie) exactly once.
  msgq::Bus bus;
  InProcTransport transport(bus);
  const Streams streams = run_workload(transport);
  std::map<std::pair<std::string, std::uint64_t>, int> seen;
  for (const auto& [topic, frames] : streams) {
    for (const auto& payload : frames) {
      auto batch = core::decode_batch(
          {reinterpret_cast<const std::byte*>(payload.data()), payload.size()});
      ASSERT_TRUE(batch.is_ok()) << batch.status().to_string();
      for (const auto& event : batch.value().events) {
        ++seen[{event.source, event.cookie}];
        EXPECT_EQ("lustre:MDT" + topic.substr(topic.size() - 1), event.source)
            << "event routed to the wrong shard stream " << topic;
      }
    }
  }
  std::size_t expected = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t m = 0; m < kShards; ++m) {
      expected += static_cast<std::size_t>(1 + (round + static_cast<int>(m)) % 5);
    }
  }
  EXPECT_EQ(seen.size(), expected);
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << key.first << " cookie " << key.second;
  }
}

}  // namespace
}  // namespace fsmon::transport
