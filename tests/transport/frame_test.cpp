// FrameRef ownership semantics: handoffs are shared_ptr bumps, the
// frame_copies() counter moves only when payload bytes are actually
// duplicated, and borrowed regions release exactly once when the last
// retainer drops.
#include "src/transport/frame.hpp"

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace fsmon::transport {
namespace {

std::span<const std::byte> as_bytes(std::string_view view) {
  return {reinterpret_cast<const std::byte*>(view.data()), view.size()};
}

TEST(FrameRefTest, NullRefIsEmpty) {
  FrameRef ref;
  EXPECT_FALSE(ref);
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(ref.size(), 0u);
  EXPECT_EQ(ref.use_count(), 0);
  EXPECT_TRUE(ref.bytes().empty());
}

TEST(FrameRefTest, AdoptTakesBufferWithoutCopying) {
  const std::uint64_t before = frame_copies();
  std::string payload = "encoded-batch-bytes";
  const char* storage = payload.data();
  auto ref = FrameRef::adopt(std::move(payload));
  EXPECT_EQ(ref.chars(), "encoded-batch-bytes");
  // The adopted string's storage is the frame's storage: no duplication.
  EXPECT_EQ(static_cast<const void*>(ref.chars().data()),
            static_cast<const void*>(storage));
  EXPECT_EQ(frame_copies(), before);
}

TEST(FrameRefTest, AdoptVectorWithoutCopying) {
  const std::uint64_t before = frame_copies();
  std::vector<std::byte> payload{std::byte{1}, std::byte{2}, std::byte{3}};
  const std::byte* storage = payload.data();
  auto ref = FrameRef::adopt(std::move(payload));
  ASSERT_EQ(ref.size(), 3u);
  EXPECT_EQ(ref.bytes().data(), storage);
  EXPECT_EQ(frame_copies(), before);
}

TEST(FrameRefTest, HandoffIsRefcountBumpNotCopy) {
  const std::uint64_t before = frame_copies();
  auto ref = FrameRef::adopt(std::string("payload"));
  EXPECT_EQ(ref.use_count(), 1);
  FrameRef fanout = ref;  // the pipeline handoff
  EXPECT_EQ(ref.use_count(), 2);
  EXPECT_EQ(fanout.bytes().data(), ref.bytes().data());  // same storage
  EXPECT_EQ(frame_copies(), before);
}

TEST(FrameRefTest, CopyDuplicatesAndCounts) {
  const std::uint64_t before = frame_copies();
  const std::string payload = "explicit-slow-path";
  auto ref = FrameRef::copy(as_bytes(payload));
  EXPECT_EQ(ref.chars(), payload);
  EXPECT_NE(static_cast<const void*>(ref.chars().data()),
            static_cast<const void*>(payload.data()));
  EXPECT_EQ(frame_copies(), before + 1);
}

TEST(FrameRefTest, BorrowReleasesExactlyOnceAfterLastDrop) {
  std::string region = "ring-record-bytes";
  int released = 0;
  {
    auto ref = FrameRef::borrow(
        {reinterpret_cast<std::byte*>(region.data()), region.size()},
        [&] { ++released; });
    EXPECT_EQ(ref.chars(), region);
    // Retain from a second stage (persist queue) and drop the original:
    // the region must stay live for the retainer.
    FrameRef retained = ref;
    ref = FrameRef();
    EXPECT_EQ(released, 0);
    EXPECT_EQ(retained.chars(), "ring-record-bytes");
  }
  EXPECT_EQ(released, 1);
}

TEST(FrameRefTest, MutableBytesInPlaceWhenSoleOwner) {
  const std::uint64_t before = frame_copies();
  auto ref = FrameRef::adopt(std::string("abc"));
  const void* storage = ref.bytes().data();
  auto bytes = ref.mutable_bytes();
  bytes[0] = std::byte{'z'};
  EXPECT_EQ(ref.chars(), "zbc");
  EXPECT_EQ(static_cast<const void*>(ref.bytes().data()), storage);
  EXPECT_EQ(frame_copies(), before);  // sole owner: no detach
}

TEST(FrameRefTest, MutableBytesDetachesWhenShared) {
  const std::uint64_t before = frame_copies();
  auto ref = FrameRef::adopt(std::string("abc"));
  FrameRef other = ref;
  auto bytes = ref.mutable_bytes();
  bytes[0] = std::byte{'z'};
  // Copy-on-write: the patch lands in a private buffer, the other
  // retainer still sees the original bytes, and the detach was counted.
  EXPECT_EQ(ref.chars(), "zbc");
  EXPECT_EQ(other.chars(), "abc");
  EXPECT_NE(ref.bytes().data(), other.bytes().data());
  EXPECT_EQ(frame_copies(), before + 1);
}

TEST(FrameRefTest, BorrowedRecordPatchesInPlaceWhenExclusive) {
  // The shard aggregator patches ids directly inside the shm ring record
  // when it is the only retainer (see frame.hpp file comment).
  const std::uint64_t before = frame_copies();
  std::string region = "abc";
  bool released = false;
  {
    auto ref = FrameRef::borrow(
        {reinterpret_cast<std::byte*>(region.data()), region.size()},
        [&] { released = true; });
    ref.mutable_bytes()[1] = std::byte{'X'};
  }
  EXPECT_EQ(region, "aXc");  // the patch hit the owner's memory
  EXPECT_TRUE(released);
  EXPECT_EQ(frame_copies(), before);
}

TEST(FrameRefTest, EqualityComparesBytesNotStorage) {
  auto a = FrameRef::adopt(std::string("same"));
  auto b = FrameRef::copy(as_bytes("same"));
  auto c = FrameRef::adopt(std::string("different"));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace fsmon::transport
