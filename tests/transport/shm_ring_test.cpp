// ShmRing: the variable-length SPSC byte ring under ShmTransport. The
// invariants under test are the ones the zero-copy path stands on: the
// payload is written once and read in place (borrowing FrameRef),
// records never straddle the wrap (padding records), a popped record's
// bytes stay live until its last retainer drops, and release may happen
// out of order while reclamation stays in tail order.
#include "src/transport/shm_ring.hpp"

#include <chrono>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fsmon::transport {
namespace {

std::span<const std::byte> as_bytes(std::string_view view) {
  return {reinterpret_cast<const std::byte*>(view.data()), view.size()};
}

std::string pattern(std::size_t i, std::size_t length) {
  std::string out(length, char('a' + i % 26));
  if (!out.empty()) out.front() = char('0' + i % 10);
  return out;
}

/// Popped records carry release hooks that retain the ring via
/// shared_from_this, so every test owns its ring through a shared_ptr
/// (exactly how ShmSender/ShmReceiver hold their edges).
std::shared_ptr<ShmRing> make_ring(std::size_t capacity) {
  return std::make_shared<ShmRing>(capacity);
}

TEST(ShmRingTest, PushPopRoundtripPreservesTopicAndPayload) {
  const std::uint64_t copies_before = frame_copies();
  auto ring_owner = make_ring(1024);
  auto& ring = *ring_owner;
  EXPECT_EQ(ring.try_push("events/shard0", as_bytes("payload-bytes")),
            ShmRing::PushResult::kOk);
  EXPECT_EQ(ring.pending(), 1u);
  auto popped = ring.try_pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->topic, "events/shard0");
  EXPECT_EQ(popped->payload.chars(), "payload-bytes");
  EXPECT_EQ(ring.pending(), 0u);
  // The consumer read the record in place: no frame copy anywhere.
  EXPECT_EQ(frame_copies(), copies_before);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(ShmRingTest, EmptyPayloadRoundtrips) {
  auto ring_owner = make_ring(1024);
  auto& ring = *ring_owner;
  EXPECT_EQ(ring.try_push("t", {}), ShmRing::PushResult::kOk);
  auto popped = ring.try_pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->topic, "t");
  EXPECT_TRUE(popped->payload.empty());
}

TEST(ShmRingTest, OversizedRecordReportsTooLarge) {
  auto ring_owner = make_ring(1024);
  auto& ring = *ring_owner;
  const std::string huge(2048, 'x');
  EXPECT_EQ(ring.try_push("t", as_bytes(huge)), ShmRing::PushResult::kTooLarge);
  // kTooLarge is permanent (the record can never fit), unlike kFull.
  EXPECT_EQ(ring.try_push("t", as_bytes("small")), ShmRing::PushResult::kOk);
}

TEST(ShmRingTest, HeldRecordsBlockReclamationUntilReleased) {
  auto ring_owner = make_ring(1024);
  auto& ring = *ring_owner;
  // Two ~504-byte records fill the 1024-byte ring.
  const std::string half(480, 'h');
  ASSERT_EQ(ring.try_push("a", as_bytes(half)), ShmRing::PushResult::kOk);
  ASSERT_EQ(ring.try_push("b", as_bytes(half)), ShmRing::PushResult::kOk);
  EXPECT_EQ(ring.try_push("c", as_bytes(half)), ShmRing::PushResult::kFull);

  auto first = ring.try_pop();
  auto second = ring.try_pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // Popped but still retained: the bytes are live in the ring, so the
  // producer still has no space.
  EXPECT_EQ(ring.try_push("c", as_bytes(half)), ShmRing::PushResult::kFull);

  first.reset();
  second.reset();
  EXPECT_EQ(ring.try_push("c", as_bytes(half)), ShmRing::PushResult::kOk);
  auto third = ring.try_pop();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->topic, "c");
  EXPECT_EQ(third->payload.chars(), half);
}

TEST(ShmRingTest, OutOfOrderReleaseReclaimsInTailOrder) {
  auto ring_owner = make_ring(1024);
  auto& ring = *ring_owner;
  const std::string half(480, 'h');
  ASSERT_EQ(ring.try_push("a", as_bytes(half)), ShmRing::PushResult::kOk);
  ASSERT_EQ(ring.try_push("b", as_bytes(half)), ShmRing::PushResult::kOk);
  auto first = ring.try_pop();
  auto second = ring.try_pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());

  // Release the SECOND record first (the persist queue holding frame N
  // while frame N+1's consumers already finished). Tail is pinned by the
  // still-live first record, so no space is reclaimable yet.
  second.reset();
  EXPECT_EQ(ring.try_push("c", as_bytes(half)), ShmRing::PushResult::kFull);

  // Dropping the first record lets tail sweep over both released records.
  first.reset();
  EXPECT_EQ(ring.try_push("c", as_bytes(half)), ShmRing::PushResult::kOk);
  auto third = ring.try_pop();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->payload.chars(), half);
}

TEST(ShmRingTest, WraparoundWithVariableRecordSizes) {
  // Far more bytes than capacity, with record sizes swept across the
  // whole range, so the wrap point lands at every offset and padding
  // records of every size get exercised. Payload verified byte-for-byte.
  auto ring_owner = make_ring(1024);
  auto& ring = *ring_owner;
  std::uint64_t total_bytes = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    const std::string payload = pattern(i, 1 + i % 300);
    const std::string topic = "topic" + std::to_string(i % 7);
    ASSERT_EQ(ring.try_push(topic, as_bytes(payload)), ShmRing::PushResult::kOk)
        << "iteration " << i;
    total_bytes += payload.size();
    auto popped = ring.try_pop();
    ASSERT_TRUE(popped.has_value()) << "iteration " << i;
    EXPECT_EQ(popped->topic, topic);
    ASSERT_EQ(popped->payload.chars(), payload) << "iteration " << i;
  }
  EXPECT_GT(total_bytes, 10u * ring.capacity());  // really lapped the ring
  EXPECT_EQ(ring.pending(), 0u);
}

TEST(ShmRingTest, BatchedFillAndDrainAcrossWrap) {
  // Fill several records deep, then drain, repeatedly: unlike the
  // one-in-one-out sweep this keeps multiple committed records resident
  // while the wrap happens between them.
  auto ring_owner = make_ring(1024);
  auto& ring = *ring_owner;
  std::size_t sequence = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<std::string> written;
    for (int i = 0; i < 3; ++i) {
      const std::string payload = pattern(sequence, 40 + sequence % 60);
      if (ring.try_push("t", as_bytes(payload)) != ShmRing::PushResult::kOk) break;
      written.push_back(payload);
      ++sequence;
    }
    ASSERT_FALSE(written.empty()) << "round " << round;
    for (const auto& expected : written) {
      auto popped = ring.try_pop();
      ASSERT_TRUE(popped.has_value());
      ASSERT_EQ(popped->payload.chars(), expected);
    }
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(ShmRingTest, CrossThreadTransferIsLosslessAndOrdered) {
  // SPSC contract under TSan: one pusher, one popper, release hooks
  // firing from the consumer side with a small retention window so
  // reclamation lags consumption (the shape the aggregator's persist
  // queue produces).
  constexpr std::size_t kCount = 20'000;
  auto ring_owner = make_ring(4096);
  auto& ring = *ring_owner;
  std::jthread consumer([&] {
    std::deque<FrameRef> window;
    for (std::size_t i = 0; i < kCount;) {
      auto popped = ring.try_pop();
      if (!popped) {
        std::this_thread::yield();
        continue;
      }
      const std::string expected = pattern(i, 1 + i % 97);
      ASSERT_EQ(popped->topic, "t" + std::to_string(i % 10));
      ASSERT_EQ(popped->payload.chars(), expected) << "record " << i;
      window.push_back(std::move(popped->payload));
      if (window.size() > 3) window.pop_front();
      ++i;
    }
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    const std::string payload = pattern(i, 1 + i % 97);
    const std::string topic = "t" + std::to_string(i % 10);
    for (;;) {
      const auto pushed = ring.try_push(topic, as_bytes(payload));
      ASSERT_NE(pushed, ShmRing::PushResult::kTooLarge);
      if (pushed == ShmRing::PushResult::kOk) break;
      ring.wait_for_space(std::chrono::milliseconds(1));
    }
  }
  consumer.join();
  EXPECT_EQ(ring.pending(), 0u);
}

}  // namespace
}  // namespace fsmon::transport
