#include "src/lustre/mdt.hpp"

#include <gtest/gtest.h>

namespace fsmon::lustre {
namespace {

ChangelogRecord record_of(ChangelogType type) {
  ChangelogRecord record;
  record.type = type;
  record.target = Fid{1, 1, 0};
  record.name = "f";
  return record;
}

TEST(MdsTest, RegisterReturnsSequentialUserIds) {
  Mds mds(0);
  EXPECT_EQ(mds.register_changelog_user(), "cl1");
  EXPECT_EQ(mds.register_changelog_user(), "cl2");
  EXPECT_EQ(mds.changelog_user_count(), 2u);
}

TEST(MdsTest, NewUserStartsAtLogHead) {
  Mds mds(0);
  mds.mdt().changelog().append(record_of(ChangelogType::kCreat));
  const auto user = mds.register_changelog_user();
  // Records appended before registration are not delivered.
  EXPECT_TRUE(mds.changelog_read(user, 10).value().empty());
  mds.mdt().changelog().append(record_of(ChangelogType::kMtime));
  EXPECT_EQ(mds.changelog_read(user, 10).value().size(), 1u);
}

TEST(MdsTest, ReadUnregisteredUserFails) {
  Mds mds(0);
  EXPECT_EQ(mds.changelog_read("cl9", 10).code(), common::ErrorCode::kNotFound);
  EXPECT_EQ(mds.changelog_clear("cl9", 1).code(), common::ErrorCode::kNotFound);
}

TEST(MdsTest, ClearAdvancesUserPointer) {
  Mds mds(0);
  const auto user = mds.register_changelog_user();
  for (int i = 0; i < 5; ++i) mds.mdt().changelog().append(record_of(ChangelogType::kCreat));
  auto records = mds.changelog_read(user, 10);
  ASSERT_EQ(records.value().size(), 5u);
  EXPECT_TRUE(mds.changelog_clear(user, 3).is_ok());
  records = mds.changelog_read(user, 10);
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[0].index, 4u);
}

TEST(MdsTest, PurgeWaitsForSlowestUser) {
  Mds mds(0);
  const auto fast = mds.register_changelog_user();
  const auto slow = mds.register_changelog_user();
  for (int i = 0; i < 4; ++i) mds.mdt().changelog().append(record_of(ChangelogType::kCreat));
  mds.changelog_clear(fast, 4);
  // Slow user has cleared nothing; all records must be retained.
  EXPECT_EQ(mds.mdt().changelog().retained(), 4u);
  mds.changelog_clear(slow, 2);
  EXPECT_EQ(mds.mdt().changelog().retained(), 2u);
  // Slow user still sees records 3-4.
  EXPECT_EQ(mds.changelog_read(slow, 10).value().size(), 2u);
}

TEST(MdsTest, ClearBeyondHeadRejected) {
  Mds mds(0);
  const auto user = mds.register_changelog_user();
  mds.mdt().changelog().append(record_of(ChangelogType::kCreat));
  EXPECT_EQ(mds.changelog_clear(user, 2).code(), common::ErrorCode::kOutOfRange);
}

TEST(MdsTest, DeregisterRemovesUser) {
  Mds mds(0);
  const auto user = mds.register_changelog_user();
  EXPECT_TRUE(mds.deregister_changelog_user(user).is_ok());
  EXPECT_EQ(mds.deregister_changelog_user(user).code(), common::ErrorCode::kNotFound);
  EXPECT_EQ(mds.changelog_user_count(), 0u);
}

TEST(MdsTest, ClearIsMonotonic) {
  Mds mds(0);
  const auto user = mds.register_changelog_user();
  for (int i = 0; i < 5; ++i) mds.mdt().changelog().append(record_of(ChangelogType::kCreat));
  mds.changelog_clear(user, 4);
  mds.changelog_clear(user, 2);  // going backwards must not rewind
  EXPECT_EQ(mds.changelog_read(user, 10).value().size(), 1u);
}

TEST(MdtTest, NamesAndAllocator) {
  Mdt mdt(3);
  EXPECT_EQ(mdt.name(), "MDT3");
  Mds mds(3);
  EXPECT_EQ(mds.name(), "MDS3");
  const Fid f = mdt.allocator().next();
  EXPECT_FALSE(f.is_null());
}

}  // namespace
}  // namespace fsmon::lustre
