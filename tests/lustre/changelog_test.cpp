#include "src/lustre/changelog.hpp"

#include <gtest/gtest.h>

namespace fsmon::lustre {
namespace {

ChangelogRecord make_record(ChangelogType type, const std::string& name) {
  ChangelogRecord record;
  record.type = type;
  record.target = Fid{0x300005716ull, 0x626c, 0};
  record.parent = Fid{0x300005716ull, 0xe7, 0};
  record.name = name;
  return record;
}

TEST(ChangelogTypeTest, TagsMatchLfsOutput) {
  // Paper Table I: "01CREAT", "17MTIME", "08RENME", "02MKDIR", "06UNLNK".
  EXPECT_EQ(type_tag(ChangelogType::kCreat), "01CREAT");
  EXPECT_EQ(type_tag(ChangelogType::kMtime), "17MTIME");
  EXPECT_EQ(type_tag(ChangelogType::kRenme), "08RENME");
  EXPECT_EQ(type_tag(ChangelogType::kMkdir), "02MKDIR");
  EXPECT_EQ(type_tag(ChangelogType::kUnlnk), "06UNLNK");
}

TEST(ChangelogTypeTest, ParseAcceptsBothForms) {
  EXPECT_EQ(parse_changelog_type("CREAT"), ChangelogType::kCreat);
  EXPECT_EQ(parse_changelog_type("01CREAT"), ChangelogType::kCreat);
  EXPECT_EQ(parse_changelog_type("17MTIME"), ChangelogType::kMtime);
  EXPECT_FALSE(parse_changelog_type("NOPE").has_value());
}

TEST(ChangelogTypeTest, AllPaperEventTypesExist) {
  // Section IV-1 lists these record types.
  for (const char* name : {"CREAT", "MKDIR", "HLINK", "SLINK", "MKNOD", "MTIME", "UNLNK",
                           "RMDIR", "RENME", "RNMTO", "IOCTL", "TRUNC", "SATTR", "XATTR"}) {
    EXPECT_TRUE(parse_changelog_type(name).has_value()) << name;
  }
}

TEST(ChangelogTest, AppendAssignsIncreasingIndices) {
  Changelog log;
  EXPECT_EQ(log.append(make_record(ChangelogType::kCreat, "a")), 1u);
  EXPECT_EQ(log.append(make_record(ChangelogType::kMtime, "a")), 2u);
  EXPECT_EQ(log.last_index(), 2u);
  EXPECT_EQ(log.retained(), 2u);
}

TEST(ChangelogTest, ReadAfterIndex) {
  Changelog log;
  for (int i = 0; i < 5; ++i) log.append(make_record(ChangelogType::kCreat, "f"));
  auto records = log.read(2, 10);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].index, 3u);
  EXPECT_EQ(records[2].index, 5u);
}

TEST(ChangelogTest, ReadHonorsMaxRecords) {
  Changelog log;
  for (int i = 0; i < 10; ++i) log.append(make_record(ChangelogType::kCreat, "f"));
  EXPECT_EQ(log.read(0, 4).size(), 4u);
  EXPECT_TRUE(log.read(0, 0).empty());
  EXPECT_TRUE(log.read(10, 4).empty());
}

TEST(ChangelogTest, ClearUptoPurges) {
  Changelog log;
  for (int i = 0; i < 5; ++i) log.append(make_record(ChangelogType::kCreat, "f"));
  EXPECT_TRUE(log.clear_upto(3).is_ok());
  EXPECT_EQ(log.retained(), 2u);
  EXPECT_EQ(log.first_retained_index(), 4u);
  EXPECT_EQ(log.total_purged(), 3u);
  // Reads past the purge point still work.
  EXPECT_EQ(log.read(0, 10).size(), 2u);
}

TEST(ChangelogTest, ClearBeyondLastFails) {
  Changelog log;
  log.append(make_record(ChangelogType::kCreat, "f"));
  EXPECT_EQ(log.clear_upto(5).code(), common::ErrorCode::kOutOfRange);
}

TEST(ChangelogTest, IndicesContinueAfterPurge) {
  Changelog log;
  log.append(make_record(ChangelogType::kCreat, "f"));
  log.clear_upto(1);
  EXPECT_EQ(log.append(make_record(ChangelogType::kUnlnk, "f")), 2u);
}

TEST(ChangelogRecordTest, LineRenderingContainsPaperFields) {
  ChangelogRecord record = make_record(ChangelogType::kCreat, "hello.txt");
  record.index = 11332885;
  const std::string line = record.to_line();
  EXPECT_NE(line.find("11332885"), std::string::npos);
  EXPECT_NE(line.find("01CREAT"), std::string::npos);
  EXPECT_NE(line.find("t=[0x300005716:0x626c:0x0]"), std::string::npos);
  EXPECT_NE(line.find("p=[0x300005716:0xe7:0x0]"), std::string::npos);
  EXPECT_NE(line.find("hello.txt"), std::string::npos);
}

TEST(ChangelogRecordTest, RenameLineShowsSourceAndTargetFids) {
  ChangelogRecord record = make_record(ChangelogType::kRenme, "hello.txt");
  record.rename_new = Fid{0x300005716ull, 0x626b, 0};
  record.rename_old = Fid{0x300005716ull, 0x626c, 0};
  record.rename_target_name = "hi.txt";
  const std::string line = record.to_line();
  EXPECT_NE(line.find("s=[0x300005716:0x626b:0x0]"), std::string::npos);
  EXPECT_NE(line.find("sp=[0x300005716:0x626c:0x0]"), std::string::npos);
  EXPECT_NE(line.find("hi.txt"), std::string::npos);
}

TEST(ChangelogRecordTest, MtimeLineOmitsParent) {
  ChangelogRecord record = make_record(ChangelogType::kMtime, "hello.txt");
  record.parent.reset();
  record.flags = 0x7;
  const std::string line = record.to_line();
  EXPECT_EQ(line.find("p=["), std::string::npos);
  EXPECT_NE(line.find("0x7"), std::string::npos);
}

}  // namespace
}  // namespace fsmon::lustre
