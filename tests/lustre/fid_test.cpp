#include "src/lustre/fid.hpp"

#include <unordered_set>

#include <gtest/gtest.h>

namespace fsmon::lustre {
namespace {

TEST(FidTest, FormatMatchesPaperTableOne) {
  // The paper's Table I shows FIDs like [0x300005716:0x626c:0x0].
  const Fid fid{0x300005716ull, 0x626c, 0x0};
  EXPECT_EQ(to_string(fid), "[0x300005716:0x626c:0x0]");
}

TEST(FidTest, ParseBracketedForm) {
  auto fid = parse_fid("[0x300005716:0x626c:0x0]");
  ASSERT_TRUE(fid.has_value());
  EXPECT_EQ(fid->seq, 0x300005716ull);
  EXPECT_EQ(fid->oid, 0x626cu);
  EXPECT_EQ(fid->ver, 0u);
}

TEST(FidTest, ParseUnbracketedForm) {
  auto fid = parse_fid("0x1:0x2:0x3");
  ASSERT_TRUE(fid.has_value());
  EXPECT_EQ(*fid, (Fid{1, 2, 3}));
}

TEST(FidTest, RoundTrip) {
  const Fid original{0xDEADBEEFull, 0xCAFE, 0x7};
  EXPECT_EQ(parse_fid(to_string(original)), original);
}

TEST(FidTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_fid("").has_value());
  EXPECT_FALSE(parse_fid("[0x1:0x2]").has_value());
  EXPECT_FALSE(parse_fid("[0x1:0x2:0x3:0x4]").has_value());
  EXPECT_FALSE(parse_fid("[1:2:3]").has_value());       // missing 0x
  EXPECT_FALSE(parse_fid("[0x1:0x2:0x3").has_value());  // unbalanced bracket
  EXPECT_FALSE(parse_fid("[0xZZ:0x2:0x3]").has_value());
}

TEST(FidTest, NullFid) {
  EXPECT_TRUE(kNullFid.is_null());
  EXPECT_FALSE((Fid{1, 0, 0}).is_null());
}

TEST(FidAllocatorTest, SequenceBaseMatchesPaper) {
  FidAllocator allocator(0);
  const Fid first = allocator.next();
  EXPECT_EQ(first.seq, 0x300005716ull);
  EXPECT_EQ(first.oid, 1u);
}

TEST(FidAllocatorTest, DisjointRangesAcrossMdts) {
  FidAllocator a(0), b(1);
  std::unordered_set<Fid> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(a.next()).second);
    EXPECT_TRUE(seen.insert(b.next()).second);
  }
  EXPECT_EQ(a.allocated(), 1000u);
}

TEST(FidAllocatorTest, MonotonicWithinMdt) {
  FidAllocator allocator(2);
  Fid prev = allocator.next();
  for (int i = 0; i < 100; ++i) {
    const Fid next = allocator.next();
    EXPECT_NE(next, prev);
    EXPECT_GE(next.seq, prev.seq);
    prev = next;
  }
}

TEST(FidTest, HashDistribution) {
  std::unordered_set<std::size_t> hashes;
  FidAllocator allocator(0);
  for (int i = 0; i < 1000; ++i) hashes.insert(std::hash<Fid>{}(allocator.next()));
  // All distinct FIDs should hash to (nearly) all distinct values.
  EXPECT_GT(hashes.size(), 990u);
}

}  // namespace
}  // namespace fsmon::lustre
