#include "src/lustre/namespace.hpp"

#include <gtest/gtest.h>

namespace fsmon::lustre {
namespace {

class NamespaceTest : public ::testing::Test {
 protected:
  Fid fid(std::uint32_t oid) { return Fid{0x1000, oid, 0}; }

  Fid must_create(const Fid& parent, const std::string& name, NodeType type,
                  std::uint32_t oid) {
    const Fid f = fid(oid);
    EXPECT_TRUE(ns.create(parent, name, type, f, 0).is_ok());
    return f;
  }

  Namespace ns;
};

TEST_F(NamespaceTest, RootExists) {
  EXPECT_TRUE(ns.exists(ns.root_fid()));
  EXPECT_EQ(ns.path_of(ns.root_fid()).value(), "/");
  EXPECT_EQ(ns.lookup("/").value(), ns.root_fid());
}

TEST_F(NamespaceTest, CreateAndLookupFile) {
  const Fid f = must_create(ns.root_fid(), "hello.txt", NodeType::kFile, 1);
  EXPECT_EQ(ns.lookup("/hello.txt").value(), f);
  EXPECT_EQ(ns.path_of(f).value(), "/hello.txt");
  EXPECT_EQ((*ns.stat(f))->type, NodeType::kFile);
}

TEST_F(NamespaceTest, NestedPaths) {
  const Fid d1 = must_create(ns.root_fid(), "a", NodeType::kDirectory, 1);
  const Fid d2 = must_create(d1, "b", NodeType::kDirectory, 2);
  const Fid f = must_create(d2, "c.txt", NodeType::kFile, 3);
  EXPECT_EQ(ns.path_of(f).value(), "/a/b/c.txt");
  EXPECT_EQ(ns.lookup("/a/b/c.txt").value(), f);
}

TEST_F(NamespaceTest, DuplicateNameRejected) {
  must_create(ns.root_fid(), "x", NodeType::kFile, 1);
  EXPECT_EQ(ns.create(ns.root_fid(), "x", NodeType::kFile, fid(2), 0).code(),
            common::ErrorCode::kAlreadyExists);
}

TEST_F(NamespaceTest, FidReuseRejected) {
  must_create(ns.root_fid(), "x", NodeType::kFile, 1);
  EXPECT_EQ(ns.create(ns.root_fid(), "y", NodeType::kFile, fid(1), 0).code(),
            common::ErrorCode::kAlreadyExists);
}

TEST_F(NamespaceTest, BadNamesRejected) {
  EXPECT_EQ(ns.create(ns.root_fid(), "", NodeType::kFile, fid(1), 0).code(),
            common::ErrorCode::kInvalid);
  EXPECT_EQ(ns.create(ns.root_fid(), "a/b", NodeType::kFile, fid(2), 0).code(),
            common::ErrorCode::kInvalid);
}

TEST_F(NamespaceTest, CreateUnderFileFails) {
  const Fid f = must_create(ns.root_fid(), "file", NodeType::kFile, 1);
  EXPECT_EQ(ns.create(f, "child", NodeType::kFile, fid(2), 0).code(),
            common::ErrorCode::kNotADirectory);
}

TEST_F(NamespaceTest, UnlinkRemovesInode) {
  const Fid f = must_create(ns.root_fid(), "gone.txt", NodeType::kFile, 1);
  EXPECT_TRUE(ns.unlink(ns.root_fid(), "gone.txt").is_ok());
  EXPECT_FALSE(ns.exists(f));
  EXPECT_EQ(ns.path_of(f).code(), common::ErrorCode::kNotFound);
  EXPECT_EQ(ns.lookup("/gone.txt").code(), common::ErrorCode::kNotFound);
}

TEST_F(NamespaceTest, UnlinkDirectoryFails) {
  must_create(ns.root_fid(), "d", NodeType::kDirectory, 1);
  EXPECT_EQ(ns.unlink(ns.root_fid(), "d").code(), common::ErrorCode::kIsADirectory);
}

TEST_F(NamespaceTest, RmdirRequiresEmpty) {
  const Fid d = must_create(ns.root_fid(), "d", NodeType::kDirectory, 1);
  must_create(d, "f", NodeType::kFile, 2);
  EXPECT_EQ(ns.rmdir(ns.root_fid(), "d").code(), common::ErrorCode::kNotEmpty);
  EXPECT_TRUE(ns.unlink(d, "f").is_ok());
  EXPECT_TRUE(ns.rmdir(ns.root_fid(), "d").is_ok());
  EXPECT_FALSE(ns.exists(d));
}

TEST_F(NamespaceTest, HardlinkSharesInode) {
  const Fid f = must_create(ns.root_fid(), "orig", NodeType::kFile, 1);
  EXPECT_TRUE(ns.hardlink(f, ns.root_fid(), "link").is_ok());
  EXPECT_EQ(ns.lookup("/link").value(), f);
  EXPECT_EQ((*ns.stat(f))->nlink(), 2u);
  // Removing one link keeps the inode.
  EXPECT_TRUE(ns.unlink(ns.root_fid(), "orig").is_ok());
  EXPECT_TRUE(ns.exists(f));
  // path_of now resolves via the surviving link.
  EXPECT_EQ(ns.path_of(f).value(), "/link");
  EXPECT_TRUE(ns.unlink(ns.root_fid(), "link").is_ok());
  EXPECT_FALSE(ns.exists(f));
}

TEST_F(NamespaceTest, HardlinkToDirectoryFails) {
  const Fid d = must_create(ns.root_fid(), "d", NodeType::kDirectory, 1);
  EXPECT_EQ(ns.hardlink(d, ns.root_fid(), "dlink").code(),
            common::ErrorCode::kIsADirectory);
}

TEST_F(NamespaceTest, SymlinkStoresTarget) {
  EXPECT_TRUE(ns.symlink(ns.root_fid(), "s", "/some/target", fid(1), 0).is_ok());
  auto inode = ns.stat(ns.lookup("/s").value());
  EXPECT_EQ((*inode)->type, NodeType::kSymlink);
  EXPECT_EQ((*inode)->symlink_target, "/some/target");
}

TEST_F(NamespaceTest, RenameWithinDirectory) {
  const Fid f = must_create(ns.root_fid(), "hello.txt", NodeType::kFile, 1);
  auto replaced = ns.rename(ns.root_fid(), "hello.txt", ns.root_fid(), "hi.txt");
  ASSERT_TRUE(replaced.is_ok());
  EXPECT_TRUE(replaced->is_null());
  EXPECT_EQ(ns.lookup("/hi.txt").value(), f);
  EXPECT_EQ(ns.path_of(f).value(), "/hi.txt");
  EXPECT_EQ(ns.lookup("/hello.txt").code(), common::ErrorCode::kNotFound);
}

TEST_F(NamespaceTest, RenameAcrossDirectories) {
  const Fid d = must_create(ns.root_fid(), "okdir", NodeType::kDirectory, 1);
  const Fid f = must_create(ns.root_fid(), "hi.txt", NodeType::kFile, 2);
  ASSERT_TRUE(ns.rename(ns.root_fid(), "hi.txt", d, "hi.txt").is_ok());
  EXPECT_EQ(ns.path_of(f).value(), "/okdir/hi.txt");
}

TEST_F(NamespaceTest, RenameReplacesExistingFile) {
  must_create(ns.root_fid(), "src", NodeType::kFile, 1);
  const Fid victim = must_create(ns.root_fid(), "dst", NodeType::kFile, 2);
  auto replaced = ns.rename(ns.root_fid(), "src", ns.root_fid(), "dst");
  ASSERT_TRUE(replaced.is_ok());
  EXPECT_EQ(*replaced, victim);
  EXPECT_FALSE(ns.exists(victim));
}

TEST_F(NamespaceTest, RenameOntoNonEmptyDirFails) {
  must_create(ns.root_fid(), "src", NodeType::kDirectory, 1);
  const Fid dst = must_create(ns.root_fid(), "dst", NodeType::kDirectory, 2);
  must_create(dst, "child", NodeType::kFile, 3);
  EXPECT_EQ(ns.rename(ns.root_fid(), "src", ns.root_fid(), "dst").code(),
            common::ErrorCode::kNotEmpty);
}

TEST_F(NamespaceTest, RebindFidRekeysInode) {
  const Fid old_fid = must_create(ns.root_fid(), "f", NodeType::kFile, 1);
  const Fid new_fid = fid(99);
  EXPECT_TRUE(ns.rebind_fid(old_fid, new_fid).is_ok());
  EXPECT_FALSE(ns.exists(old_fid));
  EXPECT_EQ(ns.lookup("/f").value(), new_fid);
  EXPECT_EQ(ns.path_of(new_fid).value(), "/f");
}

TEST_F(NamespaceTest, RebindDirectoryFails) {
  const Fid d = must_create(ns.root_fid(), "d", NodeType::kDirectory, 1);
  EXPECT_EQ(ns.rebind_fid(d, fid(99)).code(), common::ErrorCode::kIsADirectory);
}

TEST_F(NamespaceTest, WriteAndTruncateAdjustSize) {
  const Fid f = must_create(ns.root_fid(), "f", NodeType::kFile, 1);
  EXPECT_TRUE(ns.write(f, 1000).is_ok());
  EXPECT_EQ((*ns.stat(f))->size, 1000u);
  EXPECT_TRUE(ns.truncate(f, 100).is_ok());
  EXPECT_EQ((*ns.stat(f))->size, 100u);
  EXPECT_TRUE(ns.truncate(f, 5000).is_ok());  // truncate never grows
  EXPECT_EQ((*ns.stat(f))->size, 100u);
}

TEST_F(NamespaceTest, ListDirectory) {
  const Fid d = must_create(ns.root_fid(), "d", NodeType::kDirectory, 1);
  must_create(d, "a", NodeType::kFile, 2);
  must_create(d, "b", NodeType::kFile, 3);
  auto names = ns.list(d);
  ASSERT_TRUE(names.is_ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"a", "b"}));
}

TEST_F(NamespaceTest, InodeCountTracksLifecycle) {
  EXPECT_EQ(ns.inode_count(), 1u);  // root
  must_create(ns.root_fid(), "f", NodeType::kFile, 1);
  EXPECT_EQ(ns.inode_count(), 2u);
  ns.unlink(ns.root_fid(), "f");
  EXPECT_EQ(ns.inode_count(), 1u);
}

}  // namespace
}  // namespace fsmon::lustre
