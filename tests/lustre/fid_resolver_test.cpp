#include "src/lustre/fid_resolver.hpp"

#include <gtest/gtest.h>

#include "src/common/thread_pool.hpp"

namespace fsmon::lustre {
namespace {

class FidResolverTest : public ::testing::Test {
 protected:
  FidResolverTest() : fs(LustreFsOptions{}, clock) {}
  common::ManualClock clock;
  LustreFs fs;
};

TEST_F(FidResolverTest, ResolvesExistingFid) {
  auto created = fs.create("/hello.txt");
  FidResolver resolver(fs, FidResolverOptions{});
  auto outcome = resolver.resolve(created->fid);
  ASSERT_TRUE(outcome.path.is_ok());
  EXPECT_EQ(outcome.path.value(), "/hello.txt");
  EXPECT_EQ(resolver.calls(), 1u);
  EXPECT_EQ(resolver.failures(), 0u);
}

TEST_F(FidResolverTest, FailsForDeletedFid) {
  auto created = fs.create("/gone");
  fs.unlink("/gone");
  FidResolver resolver(fs, FidResolverOptions{});
  auto outcome = resolver.resolve(created->fid);
  EXPECT_EQ(outcome.path.code(), common::ErrorCode::kNotFound);
  EXPECT_EQ(resolver.failures(), 1u);
  // A failed call still costs time — that is the paper's UNLNK penalty.
  EXPECT_GT(outcome.cost.count(), 0);
}

TEST_F(FidResolverTest, CostGrowsWithDepth) {
  fs.mkdir("/a");
  fs.mkdir("/a/b");
  fs.mkdir("/a/b/c");
  auto shallow = fs.create("/f");
  auto deep = fs.create("/a/b/c/f");
  FidResolverOptions options;
  options.base_cost = std::chrono::microseconds(10);
  options.per_component_cost = std::chrono::microseconds(5);
  FidResolver resolver(fs, options);
  const auto shallow_cost = resolver.resolve(shallow->fid).cost;
  const auto deep_cost = resolver.resolve(deep->fid).cost;
  EXPECT_GT(deep_cost, shallow_cost);
  EXPECT_EQ(shallow_cost, std::chrono::microseconds(15));   // base + 1 component
  EXPECT_EQ(deep_cost, std::chrono::microseconds(30));      // base + 4 components
}

TEST_F(FidResolverTest, SleepsOnInjectedClock) {
  auto created = fs.create("/f");
  FidResolverOptions options;
  options.base_cost = std::chrono::microseconds(100);
  options.per_component_cost = {};
  FidResolver resolver(fs, options, &clock);
  const auto before = clock.now();
  resolver.resolve(created->fid);
  EXPECT_EQ(clock.now() - before, std::chrono::microseconds(100));
}

TEST_F(FidResolverTest, AccumulatesTotalCost) {
  auto created = fs.create("/f");
  FidResolverOptions options;
  options.base_cost = std::chrono::microseconds(10);
  options.per_component_cost = {};
  FidResolver resolver(fs, options);
  resolver.resolve(created->fid);
  resolver.resolve(created->fid);
  EXPECT_EQ(resolver.total_cost(), std::chrono::microseconds(20));
  EXPECT_EQ(resolver.calls(), 2u);
}

TEST_F(FidResolverTest, ResolveManyPreservesInputOrderSerially) {
  auto a = fs.create("/a");
  auto b = fs.create("/b");
  auto c = fs.create("/c");
  fs.unlink("/b");
  FidResolver resolver(fs, FidResolverOptions{});
  const std::vector<Fid> fids{a->fid, b->fid, c->fid};
  auto outcomes = resolver.resolve_many(fids, /*pool=*/nullptr);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].path.value(), "/a");
  EXPECT_EQ(outcomes[1].path.code(), common::ErrorCode::kNotFound);
  EXPECT_EQ(outcomes[2].path.value(), "/c");
  EXPECT_EQ(resolver.calls(), 3u);
  EXPECT_EQ(resolver.failures(), 1u);
}

TEST_F(FidResolverTest, ResolveManyPreservesInputOrderOnPool) {
  std::vector<Fid> fids;
  for (int i = 0; i < 32; ++i)
    fids.push_back(fs.create("/f" + std::to_string(i))->fid);
  FidResolver resolver(fs, FidResolverOptions{});
  common::ThreadPool pool(4);
  auto outcomes = resolver.resolve_many(fids, &pool);
  ASSERT_EQ(outcomes.size(), fids.size());
  for (std::size_t i = 0; i < fids.size(); ++i) {
    ASSERT_TRUE(outcomes[i].path.is_ok());
    EXPECT_EQ(outcomes[i].path.value(), "/f" + std::to_string(i));
  }
  EXPECT_EQ(resolver.calls(), fids.size());
}

}  // namespace
}  // namespace fsmon::lustre
