#include "src/lustre/filesystem.hpp"

#include <set>

#include <gtest/gtest.h>

#include "src/common/clock.hpp"

namespace fsmon::lustre {
namespace {

class LustreFsTest : public ::testing::Test {
 protected:
  LustreFsTest() : fs(LustreFsOptions{}, clock) {}

  const ChangelogRecord& last_record(std::uint32_t mdt = 0) {
    const auto& log = fs.mds(mdt).mdt().changelog();
    records_ = log.read(log.last_index() - 1, 1);
    return records_.back();
  }

  common::ManualClock clock;
  LustreFs fs;
  std::vector<ChangelogRecord> records_;
};

TEST_F(LustreFsTest, CreateEmitsCreatRecord) {
  auto result = fs.create("/hello.txt");
  ASSERT_TRUE(result.is_ok());
  const auto& record = last_record();
  EXPECT_EQ(record.type, ChangelogType::kCreat);
  EXPECT_EQ(record.target, result->fid);
  EXPECT_EQ(record.name, "hello.txt");
  ASSERT_TRUE(record.parent.has_value());
  EXPECT_EQ(*record.parent, fs.ns().root_fid());
}

TEST_F(LustreFsTest, MkdirEmitsMkdirRecord) {
  auto result = fs.mkdir("/okdir");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(last_record().type, ChangelogType::kMkdir);
  EXPECT_EQ(last_record().name, "okdir");
}

TEST_F(LustreFsTest, ModifyEmitsMtimeWithoutParentFid) {
  fs.create("/f");
  auto result = fs.modify("/f", 512);
  ASSERT_TRUE(result.is_ok());
  const auto& record = last_record();
  EXPECT_EQ(record.type, ChangelogType::kMtime);
  EXPECT_FALSE(record.parent.has_value());  // Table I: MTIME has no p=[]
  EXPECT_EQ(record.flags, 0x7u);
}

TEST_F(LustreFsTest, RenameAssignsNewFidAndRecordsOldNew) {
  auto created = fs.create("/hello.txt");
  ASSERT_TRUE(created.is_ok());
  auto renamed = fs.rename("/hello.txt", "/hi.txt");
  ASSERT_TRUE(renamed.is_ok());
  const auto& record = last_record();
  EXPECT_EQ(record.type, ChangelogType::kRenme);
  ASSERT_TRUE(record.rename_old.has_value());
  ASSERT_TRUE(record.rename_new.has_value());
  // sp= is the original FID, s= is the new one (paper Table I semantics).
  EXPECT_EQ(*record.rename_old, created->fid);
  EXPECT_EQ(*record.rename_new, renamed->fid);
  EXPECT_NE(*record.rename_old, *record.rename_new);
  EXPECT_EQ(record.name, "hello.txt");
  EXPECT_EQ(record.rename_target_name, "hi.txt");
  // The namespace now resolves the new FID.
  EXPECT_EQ(fs.lookup("/hi.txt").value(), renamed->fid);
  EXPECT_EQ(fs.fid2path(renamed->fid).value(), "/hi.txt");
  EXPECT_EQ(fs.fid2path(created->fid).code(), common::ErrorCode::kNotFound);
}

TEST_F(LustreFsTest, UnlinkEmitsUnlnkAndDropsFid) {
  auto created = fs.create("/f");
  fs.unlink("/f");
  EXPECT_EQ(last_record().type, ChangelogType::kUnlnk);
  EXPECT_EQ(fs.fid2path(created->fid).code(), common::ErrorCode::kNotFound);
}

TEST_F(LustreFsTest, TableOneScriptSequence) {
  // The exact script from the paper's Table I: create, modify, rename,
  // mkdir, delete — verify record type sequence.
  fs.create("/hello.txt");
  fs.modify("/hello.txt", 10);
  fs.rename("/hello.txt", "/hi.txt");
  fs.mkdir("/okdir");
  fs.unlink("/hi.txt");
  auto records = fs.mds(0).mdt().changelog().read(0, 100);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[0].type, ChangelogType::kCreat);
  EXPECT_EQ(records[1].type, ChangelogType::kMtime);
  EXPECT_EQ(records[2].type, ChangelogType::kRenme);
  EXPECT_EQ(records[3].type, ChangelogType::kMkdir);
  EXPECT_EQ(records[4].type, ChangelogType::kUnlnk);
  // The UNLNK's target is the rename's s= FID, as in Table I.
  EXPECT_EQ(records[4].target, *records[2].rename_new);
}

TEST_F(LustreFsTest, HardAndSoftLinksEmitRecords) {
  fs.create("/orig");
  fs.hardlink("/orig", "/hl");
  EXPECT_EQ(last_record().type, ChangelogType::kHlink);
  fs.softlink("/orig", "/sl");
  EXPECT_EQ(last_record().type, ChangelogType::kSlink);
  fs.mknod("/dev0");
  EXPECT_EQ(last_record().type, ChangelogType::kMknod);
}

TEST_F(LustreFsTest, AttrXattrTruncIoctlRecords) {
  fs.create("/f");
  fs.setattr("/f", 0600);
  EXPECT_EQ(last_record().type, ChangelogType::kSattr);
  fs.setxattr("/f");
  EXPECT_EQ(last_record().type, ChangelogType::kXattr);
  fs.truncate("/f", 0);
  EXPECT_EQ(last_record().type, ChangelogType::kTrunc);
  fs.ioctl("/f");
  EXPECT_EQ(last_record().type, ChangelogType::kIoctl);
  fs.close("/f");
  EXPECT_EQ(last_record().type, ChangelogType::kClose);
}

TEST_F(LustreFsTest, RecordsCarryClockTimestamps) {
  clock.advance(std::chrono::seconds(100));
  fs.create("/f");
  EXPECT_EQ(last_record().timestamp.time_since_epoch(), std::chrono::seconds(100));
}

TEST_F(LustreFsTest, ErrorsPropagate) {
  EXPECT_EQ(fs.create("/no/such/dir/f").code(), common::ErrorCode::kNotFound);
  EXPECT_EQ(fs.unlink("/missing").code(), common::ErrorCode::kNotFound);
  EXPECT_EQ(fs.create("/").code(), common::ErrorCode::kInvalid);
  fs.create("/dup");
  EXPECT_EQ(fs.create("/dup").code(), common::ErrorCode::kAlreadyExists);
}

TEST_F(LustreFsTest, OstAccountingFollowsFileLifecycle) {
  fs.create("/data");
  fs.modify("/data", 1 << 20);
  EXPECT_EQ(fs.osts().total_used_bytes(), 1u << 20);
  fs.unlink("/data");
  EXPECT_EQ(fs.osts().total_used_bytes(), 0u);
}

class DneTest : public ::testing::Test {
 protected:
  DneTest() : fs(make_options(), clock) {}
  static LustreFsOptions make_options() {
    LustreFsOptions options;
    options.mdt_count = 4;
    return options;
  }
  common::ManualClock clock;
  LustreFs fs;
};

TEST_F(DneTest, DirectoriesSpreadAcrossMdts) {
  std::set<std::uint32_t> used;
  for (int i = 0; i < 64; ++i) {
    auto result = fs.mkdir("/dir" + std::to_string(i));
    ASSERT_TRUE(result.is_ok());
    used.insert(result->mdt_index);
  }
  // Hash placement should reach every MDT with 64 directories.
  EXPECT_EQ(used.size(), 4u);
}

TEST_F(DneTest, FilesInheritDirectoryMdt) {
  auto dir = fs.mkdir("/d");
  ASSERT_TRUE(dir.is_ok());
  auto file = fs.create("/d/f");
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ(file->mdt_index, dir->mdt_index);
}

TEST_F(DneTest, RecordsLandOnOwningMdtChangelog) {
  auto dir = fs.mkdir("/d");
  auto file = fs.create("/d/f");
  const auto& log = fs.mds(file->mdt_index).mdt().changelog();
  bool found = false;
  for (const auto& record : log.read(0, 100)) {
    if (record.type == ChangelogType::kCreat && record.name == "f") found = true;
  }
  EXPECT_TRUE(found);
  (void)dir;
}

TEST_F(DneTest, Fid2PathWorksAcrossMdts) {
  fs.mkdir("/a");
  fs.mkdir("/a/b");
  auto f = fs.create("/a/b/c");
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(fs.fid2path(f->fid).value(), "/a/b/c");
}

TEST_F(DneTest, MgsKnowsAllMdts) {
  EXPECT_EQ(fs.mgs().services_of_kind("mds").size(), 4u);
  EXPECT_EQ(fs.mgs().get_param("mdt.count"), "4");
}

}  // namespace
}  // namespace fsmon::lustre
