#include "src/lustre/ost.hpp"

#include <gtest/gtest.h>

namespace fsmon::lustre {
namespace {

TEST(OstPoolTest, GeometryAndCapacity) {
  OstPool pool(10, 5, 10ull << 30);  // the Thor testbed: 10 OSS x 5 OST x 10 GB
  EXPECT_EQ(pool.ost_count(), 50u);
  EXPECT_EQ(pool.oss_count(), 10u);
  EXPECT_EQ(pool.total_capacity_bytes(), 500ull << 30);
}

TEST(OstPoolTest, RoundRobinAllocation) {
  OstPool pool(1, 4, 1 << 20);
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.allocate_objects(Fid{1, i + 1, 0}, 1).is_ok());
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto stripes = pool.stripes_of(Fid{1, i + 1, 0});
    ASSERT_TRUE(stripes.is_ok());
    EXPECT_EQ(stripes.value()[0], i);
  }
}

TEST(OstPoolTest, StripedWriteSpreadsBytes) {
  OstPool pool(1, 4, 1 << 30);
  const Fid f{1, 1, 0};
  ASSERT_TRUE(pool.allocate_objects(f, 4).is_ok());
  ASSERT_TRUE(pool.write(f, 400).is_ok());
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(pool.ost(i).used_bytes, 100u);
}

TEST(OstPoolTest, UnevenWriteDistributesRemainder) {
  OstPool pool(1, 4, 1 << 30);
  const Fid f{1, 1, 0};
  pool.allocate_objects(f, 4);
  pool.write(f, 10);  // 3,3,2,2
  EXPECT_EQ(pool.total_used_bytes(), 10u);
}

TEST(OstPoolTest, ReleaseReturnsSpace) {
  OstPool pool(1, 2, 1 << 30);
  const Fid f{1, 1, 0};
  pool.allocate_objects(f, 2);
  pool.write(f, 1000);
  EXPECT_TRUE(pool.release(f).is_ok());
  EXPECT_EQ(pool.total_used_bytes(), 0u);
  EXPECT_EQ(pool.ost(0).object_count, 0u);
  EXPECT_EQ(pool.stripes_of(f).code(), common::ErrorCode::kNotFound);
}

TEST(OstPoolTest, ErrorsOnBadArguments) {
  OstPool pool(1, 2, 1 << 20);
  const Fid f{1, 1, 0};
  EXPECT_EQ(pool.allocate_objects(f, 0).code(), common::ErrorCode::kInvalid);
  EXPECT_EQ(pool.allocate_objects(f, 3).code(), common::ErrorCode::kInvalid);
  pool.allocate_objects(f, 1);
  EXPECT_EQ(pool.allocate_objects(f, 1).code(), common::ErrorCode::kAlreadyExists);
  EXPECT_EQ(pool.write(Fid{9, 9, 9}, 1).code(), common::ErrorCode::kNotFound);
  EXPECT_EQ(pool.release(Fid{9, 9, 9}).code(), common::ErrorCode::kNotFound);
  EXPECT_THROW(OstPool(0, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fsmon::lustre
