#include <set>

#include <gtest/gtest.h>

#include "src/core/monitor.hpp"
#include "src/spectrumscale/fal_dsi.hpp"

namespace fsmon::spectrumscale {
namespace {

using core::EventKind;
using core::StdEvent;

TEST(AuditRecordTest, JsonRoundTrip) {
  AuditRecord record;
  record.sequence = 42;
  record.event = AuditEventType::kRename;
  record.cluster = "gpfs-cluster";
  record.node = "protocol-node-1";
  record.fs_name = "gpfs0";
  record.path = "/old/name.txt";
  record.dest_path = "/new/name.txt";
  record.inode = 777;
  record.is_dir = false;
  record.timestamp = common::TimePoint{std::chrono::nanoseconds(123456)};

  auto parsed = AuditRecord::from_json(record.to_json());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->sequence, 42u);
  EXPECT_EQ(parsed->event, AuditEventType::kRename);
  EXPECT_EQ(parsed->path, "/old/name.txt");
  EXPECT_EQ(parsed->dest_path, "/new/name.txt");
  EXPECT_EQ(parsed->inode, 777u);
  EXPECT_EQ(parsed->timestamp.time_since_epoch(), std::chrono::nanoseconds(123456));
}

TEST(AuditRecordTest, JsonEscaping) {
  AuditRecord record;
  record.event = AuditEventType::kCreate;
  record.path = "/weird\"na\\me";
  auto parsed = AuditRecord::from_json(record.to_json());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->path, "/weird\"na\\me");
}

TEST(AuditRecordTest, MalformedJsonRejected) {
  EXPECT_EQ(AuditRecord::from_json("{}").code(), common::ErrorCode::kCorrupt);
  EXPECT_EQ(AuditRecord::from_json("{\"event\":\"BOGUS\",\"path\":\"/x\"}").code(),
            common::ErrorCode::kCorrupt);
  EXPECT_EQ(AuditRecord::from_json("{\"event\":\"CREATE\"}").code(),
            common::ErrorCode::kCorrupt);
}

TEST(RetentionFilesetTest, AppendReadExpire) {
  common::ManualClock clock;
  RetentionFileset fileset(clock, std::chrono::hours(1));
  AuditRecord record;
  record.event = AuditEventType::kCreate;
  record.path = "/a";
  record.timestamp = clock.now();
  EXPECT_EQ(fileset.append(record), 1u);
  clock.advance(std::chrono::minutes(30));
  record.timestamp = clock.now();
  EXPECT_EQ(fileset.append(record), 2u);
  EXPECT_EQ(fileset.read(0, 10).size(), 2u);
  EXPECT_EQ(fileset.read(1, 10).size(), 1u);
  // After 45 more minutes the first record exceeds the retention period.
  clock.advance(std::chrono::minutes(45));
  EXPECT_EQ(fileset.expire(), 1u);
  EXPECT_EQ(fileset.retained(), 1u);
}

class GpfsClusterTest : public ::testing::Test {
 protected:
  GpfsClusterTest() : cluster(GpfsClusterOptions{}, clock) {}
  common::ManualClock clock;
  GpfsCluster cluster;
};

TEST_F(GpfsClusterTest, OpsLandInRetentionFileset) {
  ASSERT_TRUE(cluster.create("/data.txt").is_ok());
  ASSERT_TRUE(cluster.write("/data.txt").is_ok());
  ASSERT_TRUE(cluster.unlink("/data.txt").is_ok());
  EXPECT_EQ(cluster.fileset().retained(), 0u);  // not pumped yet
  EXPECT_EQ(cluster.pump(), 4u);  // CREATE, OPEN, CLOSE, DESTROY
  auto records = cluster.fileset().read(0, 10);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].event, AuditEventType::kCreate);
  EXPECT_EQ(records[1].event, AuditEventType::kOpen);
  EXPECT_EQ(records[2].event, AuditEventType::kClose);
  EXPECT_EQ(records[3].event, AuditEventType::kDestroy);
}

TEST_F(GpfsClusterTest, EventsSpreadAcrossProtocolNodes) {
  for (int i = 0; i < 9; ++i) cluster.create("/f" + std::to_string(i));
  cluster.pump();
  std::set<std::string> nodes;
  for (const auto& record : cluster.fileset().read(0, 100)) nodes.insert(record.node);
  EXPECT_EQ(nodes.size(), 3u);  // default node_count
}

TEST_F(GpfsClusterTest, RenameSingleRecordWithBothPaths) {
  cluster.create("/a");
  ASSERT_TRUE(cluster.rename("/a", "/b").is_ok());
  cluster.pump();
  auto records = cluster.fileset().read(0, 10);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].event, AuditEventType::kRename);
  EXPECT_EQ(records[1].path, "/a");
  EXPECT_EQ(records[1].dest_path, "/b");
  EXPECT_TRUE(cluster.exists("/b"));
  EXPECT_FALSE(cluster.exists("/a"));
}

TEST_F(GpfsClusterTest, ErrorsDoNotEmitRecords) {
  EXPECT_FALSE(cluster.unlink("/missing").is_ok());
  EXPECT_FALSE(cluster.open("/missing").is_ok());
  cluster.create("/f");
  EXPECT_FALSE(cluster.create("/f").is_ok());
  cluster.pump();
  EXPECT_EQ(cluster.fileset().retained(), 1u);
}

TEST(StandardizeAuditTest, KindMapping) {
  AuditRecord record;
  record.path = "/x";
  const std::pair<AuditEventType, EventKind> cases[] = {
      {AuditEventType::kCreate, EventKind::kCreate},
      {AuditEventType::kOpen, EventKind::kOpen},
      {AuditEventType::kClose, EventKind::kClose},
      {AuditEventType::kDestroy, EventKind::kDelete},
      {AuditEventType::kXattrChange, EventKind::kAttrib},
      {AuditEventType::kAclChange, EventKind::kAttrib},
  };
  for (const auto& [audit, kind] : cases) {
    record.event = audit;
    auto events = standardize_audit_record(record);
    ASSERT_EQ(events.size(), 1u) << to_string(audit);
    EXPECT_EQ(events[0].kind, kind);
  }
  record.event = AuditEventType::kMkdir;
  EXPECT_TRUE(standardize_audit_record(record)[0].is_dir);
}

TEST(StandardizeAuditTest, RenameExpandsToMovePair) {
  AuditRecord record;
  record.sequence = 9;
  record.event = AuditEventType::kRename;
  record.path = "/old";
  record.dest_path = "/new";
  auto events = standardize_audit_record(record);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kMovedFrom);
  EXPECT_EQ(events[0].path, "/old");
  EXPECT_EQ(events[1].kind, EventKind::kMovedTo);
  EXPECT_EQ(events[1].path, "/new");
  EXPECT_EQ(events[0].cookie, events[1].cookie);
}

class SpectrumScaleDsiTest : public ::testing::Test {
 protected:
  SpectrumScaleDsiTest() : cluster(GpfsClusterOptions{}, clock) {}
  common::ManualClock clock;
  GpfsCluster cluster;
};

TEST_F(SpectrumScaleDsiTest, DrainStandardizesStream) {
  SpectrumScaleDsi dsi(cluster, SpectrumScaleDsiOptions{}, clock);
  std::vector<StdEvent> events;
  ASSERT_TRUE(dsi.start([&](StdEvent event) { events.push_back(std::move(event)); }).is_ok());
  dsi.stop();  // stop the poller; use deterministic drains below
  cluster.create("/hello.txt");
  cluster.write("/hello.txt");
  cluster.rename("/hello.txt", "/hi.txt");
  cluster.unlink("/hi.txt");
  EXPECT_EQ(dsi.drain_once(), 5u);  // CREATE OPEN CLOSE RENAME DESTROY
  ASSERT_EQ(events.size(), 6u);     // rename expands into two
  EXPECT_EQ(events[0].kind, EventKind::kCreate);
  EXPECT_EQ(events[3].kind, EventKind::kMovedFrom);
  EXPECT_EQ(events[4].kind, EventKind::kMovedTo);
  EXPECT_EQ(events[5].kind, EventKind::kDelete);
  EXPECT_EQ(events[0].source.rfind("spectrumscale:", 0), 0u);
}

TEST_F(SpectrumScaleDsiTest, IncrementalDrains) {
  SpectrumScaleDsi dsi(cluster, SpectrumScaleDsiOptions{}, clock);
  std::vector<StdEvent> events;
  dsi.start([&](StdEvent event) { events.push_back(std::move(event)); });
  dsi.stop();
  cluster.create("/a");
  EXPECT_EQ(dsi.drain_once(), 1u);
  cluster.create("/b");
  EXPECT_EQ(dsi.drain_once(), 1u);  // only the new record
  EXPECT_EQ(events.size(), 2u);
}

TEST_F(SpectrumScaleDsiTest, WorksThroughFsMonitorFacade) {
  core::DsiRegistry registry;
  register_spectrumscale_dsi(registry, cluster, clock);
  core::MonitorOptions options;
  options.storage.scheme = "spectrumscale";
  options.storage.root = "/";
  core::FsMonitor monitor(options, &registry, &clock);
  std::mutex mu;
  std::vector<std::string> lines;
  monitor.subscribe({}, [&](const std::vector<StdEvent>& batch) {
    std::lock_guard lock(mu);
    for (const auto& event : batch) lines.push_back(core::to_inotify_line(event));
  });
  ASSERT_TRUE(monitor.start().is_ok());
  EXPECT_EQ(monitor.dsi_name(), "spectrumscale");
  cluster.create("/dataset.h5");
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    {
      std::lock_guard lock(mu);
      if (!lines.empty()) break;
    }
    if (std::chrono::steady_clock::now() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  monitor.stop();
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], "/ CREATE /dataset.h5");
}

}  // namespace
}  // namespace fsmon::spectrumscale
