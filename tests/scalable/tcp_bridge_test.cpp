// End-to-end distributed pipeline: LustreFs -> collectors -> aggregator
// -> TCP bridge -> remote consumer over loopback sockets.
#include "src/scalable/tcp_bridge.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "src/scalable/scalable_monitor.hpp"

namespace fsmon::scalable {
namespace {

bool sockets_available() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

class TcpBridgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!sockets_available()) GTEST_SKIP() << "sockets unavailable";
  }
  common::RealClock clock;
};

void wait_until(const std::function<bool()>& predicate) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!predicate() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(predicate());
}

TEST_F(TcpBridgeTest, EventsReachRemoteConsumer) {
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
  ScalableMonitor monitor(fs, ScalableMonitorOptions{}, clock);
  AggregatorTcpBridge bridge(monitor.sharded(), monitor.bus());
  ASSERT_TRUE(bridge.start(0).is_ok());
  ASSERT_TRUE(monitor.start().is_ok());

  std::mutex mu;
  std::vector<std::string> paths;
  RemoteConsumer remote(RemoteConsumerOptions{}, [&](const core::StdEvent& event) {
    std::lock_guard lock(mu);
    paths.push_back(event.path);
  });
  ASSERT_TRUE(remote.connect("127.0.0.1", bridge.port()).is_ok());

  // Give the TCP subscription a moment to register, then generate.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fs.create("/hello.txt");
  fs.modify("/hello.txt", 64);
  fs.unlink("/hello.txt");

  wait_until([&] { return remote.delivered() >= 3; });
  remote.stop();
  monitor.stop();
  bridge.stop();

  std::lock_guard lock(mu);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], "/hello.txt");
  EXPECT_GE(bridge.forwarded(), 3u);
}

TEST_F(TcpBridgeTest, RemoteFilteringApplies) {
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
  fs.mkdir("/keep");
  fs.mkdir("/drop");
  ScalableMonitor monitor(fs, ScalableMonitorOptions{}, clock);
  AggregatorTcpBridge bridge(monitor.sharded(), monitor.bus());
  ASSERT_TRUE(bridge.start(0).is_ok());
  ASSERT_TRUE(monitor.start().is_ok());

  RemoteConsumerOptions options;
  core::FilterRule rule;
  rule.root = "/keep";
  options.rules.push_back(rule);
  std::atomic<int> kept{0};
  RemoteConsumer remote(options, [&](const core::StdEvent&) { kept.fetch_add(1); });
  ASSERT_TRUE(remote.connect("127.0.0.1", bridge.port()).is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  fs.create("/keep/a");
  fs.create("/drop/b");
  wait_until([&] { return remote.last_seen_id() >= 2; });
  remote.stop();
  monitor.stop();
  bridge.stop();
  EXPECT_EQ(kept.load(), 1);
  EXPECT_EQ(remote.filtered_out(), 1u);
}

TEST_F(TcpBridgeTest, MultipleRemoteConsumersFanOut) {
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
  ScalableMonitor monitor(fs, ScalableMonitorOptions{}, clock);
  AggregatorTcpBridge bridge(monitor.sharded(), monitor.bus());
  ASSERT_TRUE(bridge.start(0).is_ok());
  ASSERT_TRUE(monitor.start().is_ok());

  std::atomic<int> a_count{0}, b_count{0};
  RemoteConsumer a(RemoteConsumerOptions{}, [&](const core::StdEvent&) { a_count++; });
  RemoteConsumer b(RemoteConsumerOptions{}, [&](const core::StdEvent&) { b_count++; });
  ASSERT_TRUE(a.connect("127.0.0.1", bridge.port()).is_ok());
  ASSERT_TRUE(b.connect("127.0.0.1", bridge.port()).is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  for (int i = 0; i < 10; ++i) fs.create("/f" + std::to_string(i));
  wait_until([&] { return a_count.load() >= 10 && b_count.load() >= 10; });
  a.stop();
  b.stop();
  monitor.stop();
  bridge.stop();
  EXPECT_EQ(a_count.load(), 10);
  EXPECT_EQ(b_count.load(), 10);
}

}  // namespace
}  // namespace fsmon::scalable
