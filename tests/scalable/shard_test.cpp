// Sharded aggregation tier: the shard map's stable partitioning, the
// vector cursor's wire format, the router's refusal semantics, and the
// acceptance-critical merged-view contract — the k-way merged replay is
// permutation-free (each shard's subsequence is byte-identical to that
// shard's own replay) and, as a multiset with ids normalized away, the
// 4-shard pipeline's output equals a 1-shard run of the same workload.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/chaos/fault.hpp"
#include "src/scalable/scalable_monitor.hpp"
#include "src/scalable/shard_map.hpp"

namespace fsmon::scalable {
namespace {

using core::StdEvent;
using lustre::LustreFs;
using lustre::LustreFsOptions;

TEST(ShardMapTest, TrailingIndexMapsRoundRobin) {
  ShardMap map(4);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(map.shard_of("lustre:MDT" + std::to_string(i)), i % 4)
        << "MDT" << i;
  }
}

TEST(ShardMapTest, SingleShardAlwaysZero) {
  ShardMap map(1);
  EXPECT_EQ(map.shard_of("lustre:MDT7"), 0u);
  EXPECT_EQ(map.shard_of("anything"), 0u);
  EXPECT_EQ(map.shard_of(""), 0u);
}

TEST(ShardMapTest, HashFallbackIsStableAndInRange) {
  ShardMap a(4);
  ShardMap b(4);
  for (const std::string source : {"no-digits", "inotify", "", "weird source"}) {
    const std::size_t shard = a.shard_of(source);
    EXPECT_LT(shard, 4u) << source;
    // Deterministic across independently constructed maps: every party
    // evaluating the map locally must agree.
    EXPECT_EQ(shard, b.shard_of(source)) << source;
  }
}

TEST(ShardMapTest, PinOverridesEveryOtherRule) {
  ShardMap map(4);
  ASSERT_EQ(map.shard_of("lustre:MDT1"), 1u);
  map.pin("lustre:MDT1", 3);
  EXPECT_EQ(map.shard_of("lustre:MDT1"), 3u);
  EXPECT_EQ(map.describe("lustre:MDT1"), "lustre:MDT1 -> shard3 (pinned)");
}

TEST(ShardMapTest, DescribeShowsTheRuleThatFired) {
  ShardMap map(4);
  EXPECT_EQ(map.describe("lustre:MDT6"), "lustre:MDT6 -> shard2 (index)");
  const std::string hashed = map.describe("no-digits");
  EXPECT_TRUE(hashed.find("(fnv1a)") != std::string::npos) << hashed;
}

TEST(VectorCursorTest, EncodeDecodeRoundTrip) {
  VectorCursor cursor;
  cursor.last_ids = {5, 0, 123456789, 7};
  EXPECT_EQ(cursor.encode(), "5,0,123456789,7");
  const auto decoded = VectorCursor::decode(cursor.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->last_ids, cursor.last_ids);
}

TEST(VectorCursorTest, SingleNumberIsAValidOneShardCursor) {
  // Backward compatibility: the pre-shard TCP replay protocol sent one
  // decimal id; it must still parse as a one-slot cursor.
  const auto decoded = VectorCursor::decode("42");
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ(decoded->at(0), 42u);
  EXPECT_EQ(VectorCursor{}.encode(), "0");
}

TEST(VectorCursorTest, DecodeRejectsMalformedInput) {
  for (const std::string bad : {"", ",", "1,", ",1", "1,,2", "x", "1,2x", "1 2"}) {
    EXPECT_FALSE(VectorCursor::decode(bad).has_value()) << "'" << bad << "'";
  }
}

TEST(VectorCursorTest, AdvanceIsMonotonicAndGrows) {
  VectorCursor cursor;
  cursor.advance(2, 10);
  ASSERT_EQ(cursor.size(), 3u);
  EXPECT_EQ(cursor.at(2), 10u);
  cursor.advance(2, 7);  // never moves backwards
  EXPECT_EQ(cursor.at(2), 10u);
  cursor.advance(0, 5);
  EXPECT_EQ(cursor.sum(), 15u);
}

std::string make_frame(const std::string& source, std::uint64_t first_cookie,
                       int count) {
  core::EventBatch batch;
  for (int i = 0; i < count; ++i) {
    StdEvent event;
    event.source = source;
    event.cookie = first_cookie + static_cast<std::uint64_t>(i);
    event.path = "/f" + std::to_string(event.cookie);
    batch.events.push_back(std::move(event));
  }
  const auto bytes = core::encode_batch(batch);
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

class ShardRouterTest : public ::testing::Test {
 protected:
  void TearDown() override { chaos::FaultInjector::instance().disarm(); }

  common::RealClock clock_;
};

TEST_F(ShardRouterTest, RoutesEachSourceToItsMapShard) {
  msgq::Bus bus;
  ShardedAggregatorOptions options;
  options.shards = 4;
  ShardedAggregator sharded(bus, "aggregator", options, clock_);

  for (std::size_t i = 0; i < 4; ++i) {
    const auto result = sharded.router().route(
        "t", make_frame("lustre:MDT" + std::to_string(i), 1, 3));
    EXPECT_EQ(result.shard, i);
    EXPECT_EQ(result.accepted, 1u);
  }
  EXPECT_EQ(sharded.router().frames_routed(), 4u);

  // Each shard pumps exactly its own source's events: the partitioning
  // held on the write path, not just in the map.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(sharded.shard(k).drain_once(), 1u) << "shard " << k;
    EXPECT_EQ(sharded.shard(k).aggregated(), 3u) << "shard " << k;
  }
}

TEST_F(ShardRouterTest, FaultRefusalSignalsCollectorRewind) {
  msgq::Bus bus;
  ShardedAggregatorOptions options;
  options.shards = 2;
  ShardedAggregator sharded(bus, "aggregator", options, clock_);

  chaos::FaultPlan plan;
  chaos::FaultRule rule;
  rule.point = "router.before_route";
  rule.action = chaos::FaultAction::kDrop;
  rule.max_fires = 1;
  plan.rules.push_back(rule);
  chaos::FaultInjector::instance().arm(std::move(plan));

  // A dropped link must look like a refusal (accepted == 0 with
  // subscribers > 0), never a silent accept: the collector then rewinds
  // and replays, so no frame is ever in nobody's custody.
  const auto refused = sharded.router().route("t", make_frame("lustre:MDT0", 1, 2));
  EXPECT_EQ(refused.accepted, 0u);
  EXPECT_GT(refused.subscribers, 0u);
  EXPECT_EQ(sharded.router().frames_refused(), 1u);

  const auto ok = sharded.router().route("t", make_frame("lustre:MDT0", 1, 2));
  EXPECT_EQ(ok.accepted, 1u);
  EXPECT_EQ(sharded.shard(0).drain_once(), 1u);
  EXPECT_EQ(sharded.shard(0).aggregated(), 2u);
}

TEST_F(ShardRouterTest, UnroutableFrameFallsBackToShardZero) {
  msgq::Bus bus;
  ShardedAggregatorOptions options;
  options.shards = 4;
  ShardedAggregator sharded(bus, "aggregator", options, clock_);

  const auto result = sharded.router().route("t", "not a batch frame");
  EXPECT_EQ(result.shard, 0u);
  EXPECT_EQ(result.accepted, 1u);
}

class ShardMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_shard_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

std::vector<std::byte> event_bytes(const StdEvent& event, bool keep_id) {
  StdEvent copy = event;
  if (!keep_id) copy.id = 0;  // ids are per-shard sequences; normalize away
  return core::serialize_event(copy);
}

/// Deterministic workload + drain cadence shared by the 1- and 4-shard
/// runs: a ManualClock makes timestamps identical across runs, so the
/// cross-run comparison can be byte-exact rather than field-by-field.
void run_workload(lustre::LustreFs& fs, ScalableMonitor& monitor,
                  common::ManualClock& clock) {
  std::vector<std::string> dirs;
  for (int i = 0; i < 8; ++i) {
    const std::string dir = "/d" + std::to_string(i);
    if (fs.mkdir(dir).is_ok()) dirs.push_back(dir);
  }
  for (int i = 0; i < 120; ++i) {
    clock.advance(std::chrono::milliseconds(1));
    const std::string path = dirs[static_cast<std::size_t>(i) % dirs.size()] +
                             "/f" + std::to_string(i);
    ASSERT_TRUE(fs.create(path).is_ok());
    if (i % 2 == 1) {
      ASSERT_TRUE(fs.rename(path, path + "r").is_ok());
    }
    if (i % 5 == 4) monitor.drain_collectors_once();
  }
  // Drain to quiescence: every record published, persisted, acked.
  while (monitor.drain_collectors_once() > 0) {
  }
}

TEST_F(ShardMergeTest, MergedViewIsPermutationFreeAndMatchesSingleShardRun) {
  auto run = [&](std::size_t shards, const std::filesystem::path& store_dir,
                 const std::function<void(ScalableMonitor&)>& inspect) {
    common::ManualClock clock;
    LustreFsOptions fs_options;
    fs_options.mdt_count = 4;
    LustreFs fs(fs_options, clock);
    ScalableMonitorOptions options;
    options.shards = shards;
    eventstore::EventStoreOptions store;
    store.directory = store_dir;
    options.aggregator.store = store;
    ScalableMonitor monitor(fs, options, clock);
    run_workload(fs, monitor, clock);
    inspect(monitor);
  };

  std::vector<std::vector<std::byte>> sharded_multiset;
  run(4, dir_ / "s4", [&](ScalableMonitor& monitor) {
    ShardedAggregator& sharded = monitor.sharded();
    VectorCursor cursor;
    auto merged = sharded.events_since(cursor);
    ASSERT_TRUE(merged.is_ok()) << merged.status().to_string();
    const std::vector<StdEvent>& events = merged.value();
    ASSERT_GT(events.size(), 0u);

    // Merged stream is timestamp-ordered and the cursor advanced over
    // everything.
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_LE(events[i - 1].timestamp, events[i].timestamp) << "at " << i;
    }
    EXPECT_EQ(cursor.sum(), sharded.last_event_id_sum());

    // Permutation-free: the merged stream restricted to shard k is
    // byte-identical (ids included) to shard k's own replay.
    for (std::size_t k = 0; k < sharded.shard_count(); ++k) {
      auto own = sharded.shard(k).events_since(0);
      ASSERT_TRUE(own.is_ok());
      std::vector<std::vector<std::byte>> own_bytes;
      for (const auto& event : own.value()) own_bytes.push_back(event_bytes(event, true));
      std::vector<std::vector<std::byte>> restricted;
      for (const auto& event : events) {
        if (sharded.map().shard_of(event.source) == k)
          restricted.push_back(event_bytes(event, true));
      }
      EXPECT_EQ(restricted, own_bytes) << "shard " << k;
    }

    // Paging invariance: the same merged stream comes back whatever the
    // page size, because the vector cursor carries the merge position.
    const auto whole = [&events] {
      std::vector<std::vector<std::byte>> bytes;
      for (const auto& event : events) bytes.push_back(event_bytes(event, true));
      return bytes;
    }();
    for (const std::size_t page : {std::size_t{1}, std::size_t{3}, std::size_t{1000}}) {
      VectorCursor paged_cursor;
      std::vector<std::vector<std::byte>> paged;
      while (true) {
        auto chunk = sharded.events_since(paged_cursor, page);
        ASSERT_TRUE(chunk.is_ok());
        if (chunk.value().empty()) break;
        for (const auto& event : chunk.value()) paged.push_back(event_bytes(event, true));
      }
      EXPECT_EQ(paged, whole) << "page size " << page;
    }

    for (const auto& event : events) sharded_multiset.push_back(event_bytes(event, false));
  });

  // The acceptance check: as a multiset with ids normalized away, the
  // 4-shard merged output IS the 1-shard output for the same workload.
  std::vector<std::vector<std::byte>> single_multiset;
  run(1, dir_ / "s1", [&](ScalableMonitor& monitor) {
    VectorCursor cursor;
    auto events = monitor.sharded().events_since(cursor);
    ASSERT_TRUE(events.is_ok());
    for (const auto& event : events.value())
      single_multiset.push_back(event_bytes(event, false));
  });

  std::sort(sharded_multiset.begin(), sharded_multiset.end());
  std::sort(single_multiset.begin(), single_multiset.end());
  EXPECT_EQ(sharded_multiset.size(), single_multiset.size());
  EXPECT_EQ(sharded_multiset, single_multiset);
}

// Regression (sharding review): the merged replay pages all shard stores
// BEFORE taking the consumer's delivery mutex. The inverted order would
// deadlock when a replay page blocks behind a slow consumer callback
// that itself waits on store progress. Run live traffic, a deliberately
// slow consumer, and concurrent replays; completion is the assertion.
TEST_F(ShardMergeTest, ConcurrentReplayAndSlowConsumerDoNotDeadlock) {
  common::RealClock clock;
  LustreFsOptions fs_options;
  fs_options.mdt_count = 4;
  LustreFs fs(fs_options, clock);
  ScalableMonitorOptions options;
  options.shards = 4;
  eventstore::EventStoreOptions store;
  store.directory = dir_;
  options.aggregator.store = store;
  ScalableMonitor monitor(fs, options, clock);

  std::atomic<std::uint64_t> delivered{0};
  ConsumerOptions consumer_options;
  consumer_options.ack_interval = 1;
  consumer_options.replay_page = 2;  // many small pages: maximal lock traffic
  auto consumer = monitor.make_consumer("slow", consumer_options,
                                        [&](const StdEvent&) {
                                          ++delivered;
                                          std::this_thread::sleep_for(
                                              std::chrono::microseconds(500));
                                        });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  std::jthread traffic([&] {
    for (int i = 0; i < 200; ++i) {
      fs.create("/t" + std::to_string(i));
      if (i % 16 == 15) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 10; ++i) {
    auto replayed = consumer->replay_historic(VectorCursor{}, /*rewind=*/false);
    EXPECT_TRUE(replayed.is_ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  traffic.join();

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (delivered.load() < 200 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(delivered.load(), 200u);
  consumer->stop();
  monitor.stop();
}

}  // namespace
}  // namespace fsmon::scalable
