// End-to-end tests of the threaded scalable pipeline:
// collectors -> aggregator -> consumers over the pub/sub bus.
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/scalable/scalable_monitor.hpp"

namespace fsmon::scalable {
namespace {

using core::EventKind;
using core::StdEvent;
using lustre::LustreFs;
using lustre::LustreFsOptions;

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_pipe_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ScalableMonitorOptions options(bool with_store = false) {
    ScalableMonitorOptions o;
    o.collector.cache_size = 64;
    if (with_store) {
      eventstore::EventStoreOptions store;
      store.directory = dir_;
      o.aggregator.store = store;
    }
    return o;
  }

  std::filesystem::path dir_;
  common::RealClock clock;
};

TEST_F(PipelineTest, SingleMdsEndToEnd) {
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitor monitor(fs, options(), clock);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<StdEvent> received;
  auto consumer = monitor.make_consumer("c", ConsumerOptions{}, [&](const StdEvent& event) {
    std::lock_guard lock(mu);
    received.push_back(event);
    cv.notify_all();
  });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  fs.create("/hello.txt");
  fs.modify("/hello.txt", 64);
  fs.unlink("/hello.txt");

  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return received.size() >= 3; }));
  }
  consumer->stop();
  monitor.stop();

  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[0].kind, EventKind::kCreate);
  EXPECT_EQ(received[0].path, "/hello.txt");
  EXPECT_EQ(received[1].kind, EventKind::kModify);
  EXPECT_EQ(received[2].kind, EventKind::kDelete);
  // Aggregator assigned increasing global ids.
  EXPECT_EQ(received[0].id, 1u);
  EXPECT_EQ(received[2].id, 3u);
}

TEST_F(PipelineTest, FourMdsEventsAggregateWithoutLoss) {
  LustreFsOptions fs_options;
  fs_options.mdt_count = 4;
  LustreFs fs(fs_options, clock);
  ScalableMonitor monitor(fs, options(), clock);
  EXPECT_EQ(monitor.collector_count(), 4u);

  std::atomic<int> received{0};
  auto consumer = monitor.make_consumer("c", ConsumerOptions{},
                                        [&](const StdEvent&) { received.fetch_add(1); });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  constexpr int kDirs = 40;
  int expected = 0;
  for (int i = 0; i < kDirs; ++i) {
    const std::string dir = "/d" + std::to_string(i);
    ASSERT_TRUE(fs.mkdir(dir).is_ok());
    ASSERT_TRUE(fs.create(dir + "/f").is_ok());
    ASSERT_TRUE(fs.unlink(dir + "/f").is_ok());
    expected += 3;
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (received.load() < expected && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  consumer->stop();
  monitor.stop();
  EXPECT_EQ(received.load(), expected);
  // Work actually spread over several collectors (DNE hashing).
  int active_collectors = 0;
  for (std::size_t i = 0; i < monitor.collector_count(); ++i) {
    if (monitor.collector(i).records_processed() > 0) ++active_collectors;
  }
  EXPECT_GE(active_collectors, 2);
  // Changelogs were purged after processing.
  for (std::uint32_t i = 0; i < fs.mdt_count(); ++i) {
    EXPECT_EQ(fs.mds(i).mdt().changelog().retained(), 0u) << "MDT" << i;
  }
}

TEST_F(PipelineTest, ConsumerFilteringIsLocal) {
  LustreFs fs(LustreFsOptions{}, clock);
  fs.mkdir("/keep");
  fs.mkdir("/drop");
  ScalableMonitor monitor(fs, options(), clock);

  ConsumerOptions consumer_options;
  core::FilterRule rule;
  rule.root = "/keep";
  consumer_options.rules.push_back(rule);
  std::atomic<int> kept{0};
  auto consumer = monitor.make_consumer("c", consumer_options,
                                        [&](const StdEvent&) { kept.fetch_add(1); });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  fs.create("/keep/a");
  fs.create("/drop/b");
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (consumer->last_seen_id() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  consumer->stop();
  monitor.stop();
  EXPECT_EQ(kept.load(), 1);
  EXPECT_EQ(consumer->filtered_out(), 1u);
  EXPECT_EQ(consumer->delivered(), 1u);
}

TEST_F(PipelineTest, AggregatorPersistsForReplay) {
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitor monitor(fs, options(/*with_store=*/true), clock);
  std::atomic<int> received{0};
  auto consumer = monitor.make_consumer("c", ConsumerOptions{},
                                        [&](const StdEvent&) { received.fetch_add(1); });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());
  fs.create("/a");
  fs.create("/b");
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((received.load() < 2 || monitor.aggregator().persisted() < 2) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  consumer->stop();
  monitor.stop();
  auto replay = monitor.aggregator().events_since(0);
  ASSERT_TRUE(replay.is_ok());
  ASSERT_EQ(replay.value().size(), 2u);
  EXPECT_EQ(replay.value()[0].path, "/a");
  EXPECT_EQ(replay.value()[1].path, "/b");
}

TEST_F(PipelineTest, ExactlyOneSerializationPerEventEndToEnd) {
  // The batched path's core invariant: the collector serializes each
  // event once; the aggregator patches ids into the encoded bytes and
  // the persister reuses them, so no further serialize_event calls
  // happen anywhere in the pipeline. (Each gtest case runs as its own
  // ctest process, so the process-wide codec counters are isolated.)
  LustreFs fs(LustreFsOptions{}, clock);
  obs::MetricsRegistry registry;
  auto o = options(/*with_store=*/true);
  o.aggregator.metrics = &registry;
  ScalableMonitor monitor(fs, o, clock);
  std::atomic<int> received{0};
  auto consumer = monitor.make_consumer("c", ConsumerOptions{},
                                        [&](const StdEvent&) { received.fetch_add(1); });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  constexpr int kEvents = 32;
  const auto before = core::codec_counters();
  for (int i = 0; i < kEvents; ++i) fs.create("/f" + std::to_string(i));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((received.load() < kEvents ||
          monitor.aggregator().persisted() < kEvents) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  consumer->stop();
  monitor.stop();
  const auto after = core::codec_counters();

  ASSERT_EQ(received.load(), kEvents);
  ASSERT_EQ(monitor.aggregator().persisted(), static_cast<std::uint64_t>(kEvents));
  // One serialization per event, total, across collector + aggregator +
  // persist path. (The consumer's decode costs deserialize calls, which
  // are unconstrained here.)
  EXPECT_EQ(after.serialize_calls - before.serialize_calls,
            static_cast<std::uint64_t>(kEvents));
  // And the obs registry agrees every event was persisted.
  EXPECT_EQ(registry.snapshot().counter_total("aggregator.events_persisted"),
            static_cast<std::uint64_t>(kEvents));
}

TEST_F(PipelineTest, BatchCallbackReceivesMatchingEventsOnce) {
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitor monitor(fs, options(), clock);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<StdEvent> received;
  std::size_t batches = 0;
  auto consumer = monitor.make_consumer(
      "c", ConsumerOptions{}, [&](const core::EventBatch& batch) {
        std::lock_guard lock(mu);
        ++batches;
        for (const auto& event : batch.events) received.push_back(event);
        cv.notify_all();
      });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  fs.create("/one");
  fs.create("/two");
  fs.create("/three");
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return received.size() >= 3; }));
  }
  consumer->stop();
  monitor.stop();
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[0].id, 1u);
  EXPECT_EQ(received[2].id, 3u);
  EXPECT_GE(batches, 1u);
  EXPECT_LE(batches, 3u);
  EXPECT_EQ(consumer->delivered(), 3u);
}

TEST_F(PipelineTest, DrainOnceIsDeterministic) {
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitor monitor(fs, options(), clock);
  fs.create("/x");
  fs.create("/y");
  // Without starting threads, drain synchronously.
  EXPECT_EQ(monitor.drain_collectors_once(), 2u);
  EXPECT_EQ(monitor.drain_collectors_once(), 0u);
  EXPECT_EQ(monitor.total_records_processed(), 2u);
  EXPECT_EQ(fs.mds(0).mdt().changelog().retained(), 0u);
}

TEST_F(PipelineTest, CollectorPurgesChangelogAfterProcessing) {
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitor monitor(fs, options(), clock);
  for (int i = 0; i < 10; ++i) fs.create("/f" + std::to_string(i));
  EXPECT_EQ(fs.mds(0).mdt().changelog().retained(), 10u);
  monitor.drain_collectors_once();
  EXPECT_EQ(fs.mds(0).mdt().changelog().retained(), 0u);
  // The collector's processor saw every record.
  EXPECT_EQ(monitor.collector(0).records_processed(), 10u);
}

}  // namespace
}  // namespace fsmon::scalable
