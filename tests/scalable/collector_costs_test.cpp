// Collector behaviour with modeled costs on an injected manual clock:
// the threaded collector pays per-record latency for real, which is how
// small-scale real-time deployments would see fid2path stalls.
#include <gtest/gtest.h>

#include "src/scalable/scalable_monitor.hpp"

namespace fsmon::scalable {
namespace {

TEST(CollectorCostsTest, ModeledLatencyAdvancesInjectedClock) {
  common::ManualClock clock;
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
  msgq::Bus bus;
  auto inbox = bus.make_subscriber("inbox", 1024);
  inbox->subscribe("");
  auto publisher = bus.make_publisher("pub");
  publisher->connect(inbox);

  CollectorOptions options;
  options.cache_size = 16;
  options.costs.base_latency = std::chrono::microseconds(100);
  options.costs.base_cpu = std::chrono::microseconds(10);
  options.resolver.base_cost = std::chrono::microseconds(50);
  options.resolver.per_component_cost = {};
  Collector collector(fs, 0, publisher, options, clock);

  fs.create("/a");  // parent (root) fid2path + construct: 100us + 50us + lookups
  fs.modify("/a", 1);  // target cache hit: 100us + lookups
  const auto before = clock.now();
  EXPECT_EQ(collector.drain_once(), 2u);
  const auto elapsed = clock.now() - before;
  // At least the base costs plus one fid2path must have been slept.
  EXPECT_GE(elapsed, std::chrono::microseconds(250));
  // Both events were published (possibly sharing one batch frame).
  std::size_t events = 0;
  while (auto message = inbox->try_recv()) {
    auto batch = core::decode_batch(message->byte_span());
    ASSERT_TRUE(batch.is_ok()) << batch.status().to_string();
    events += batch.value().size();
  }
  EXPECT_EQ(events, 2u);
}

TEST(CollectorCostsTest, ZeroCostsDoNotTouchClock) {
  common::ManualClock clock;
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
  msgq::Bus bus;
  auto publisher = bus.make_publisher("pub");
  CollectorOptions options;  // zero modeled costs
  Collector collector(fs, 0, publisher, options, clock);
  fs.create("/a");
  const auto before = clock.now();
  collector.drain_once();
  EXPECT_EQ(clock.now(), before);
}

TEST(CollectorCostsTest, CacheStatsExposed) {
  common::ManualClock clock;
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
  msgq::Bus bus;
  auto publisher = bus.make_publisher("pub");
  CollectorOptions options;
  options.cache_size = 16;
  Collector collector(fs, 0, publisher, options, clock);
  fs.create("/a");
  fs.modify("/a", 1);
  collector.drain_once();
  ASSERT_TRUE(collector.cache_stats().has_value());
  EXPECT_GE(collector.cache_stats()->hits, 1u);  // the MTIME target hit
  EXPECT_EQ(collector.processor_stats().records, 2u);

  CollectorOptions uncached;
  uncached.cache_size = 0;
  Collector bare(fs, 0, publisher, uncached, clock);
  EXPECT_FALSE(bare.cache_stats().has_value());
}

}  // namespace
}  // namespace fsmon::scalable
