// FanOutHub end-to-end: hub-mode delivery parity, slow-consumer
// demotion/promotion (gap-free, duplicate-free seam), eviction, and
// min-ack forwarding to the reliable stores.
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <set>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/scalable/scalable_monitor.hpp"

namespace fsmon::scalable {
namespace {

using core::StdEvent;
using lustre::LustreFs;
using lustre::LustreFsOptions;

class FlowControlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_flow_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ScalableMonitorOptions options(bool with_store = true) {
    ScalableMonitorOptions o;
    o.collector.cache_size = 64;
    o.fanout_hub = true;
    if (with_store) {
      eventstore::EventStoreOptions store;
      store.directory = dir_;
      o.aggregator.store = store;
    }
    return o;
  }

  /// Opens a consumer-stalling gate on scope exit, so a failed ASSERT
  /// never deadlocks the consumer destructors on a blocked callback.
  struct GateGuard {
    std::atomic<bool>& closed;
    std::condition_variable& cv;
    ~GateGuard() {
      closed.store(false);
      cv.notify_all();
    }
  };

  static bool wait_until(const std::function<bool()>& done,
                         std::chrono::seconds deadline = std::chrono::seconds(20)) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (!done()) {
      if (std::chrono::steady_clock::now() >= until) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }

  std::filesystem::path dir_;
  common::RealClock clock;
};

TEST_F(FlowControlTest, HubDeliversPerConsumerFilteredSubsets) {
  LustreFs fs(LustreFsOptions{}, clock);
  fs.mkdir("/keep");
  fs.mkdir("/drop");
  ScalableMonitor monitor(fs, options(/*with_store=*/false), clock);
  ASSERT_NE(monitor.hub(), nullptr);

  std::atomic<int> keep_count{0};
  std::atomic<int> all_count{0};
  ConsumerOptions keep_options;
  core::FilterRule keep_rule;
  keep_rule.root = "/keep";
  keep_options.rules.push_back(keep_rule);
  auto keep = monitor.make_consumer("keep", keep_options,
                                    [&](const StdEvent&) { keep_count.fetch_add(1); });
  auto all = monitor.make_consumer("all", ConsumerOptions{},
                                   [&](const StdEvent&) { all_count.fetch_add(1); });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(keep->start().is_ok());
  ASSERT_TRUE(all->start().is_ok());

  constexpr int kFiles = 32;
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(fs.create("/keep/f" + std::to_string(i)).is_ok());
    ASSERT_TRUE(fs.create("/drop/f" + std::to_string(i)).is_ok());
  }
  // The pre-start mkdirs predate the collectors, so only the creates
  // flow: kFiles under /keep, 2 * kFiles in total.
  ASSERT_TRUE(wait_until([&] {
    return keep_count.load() >= kFiles && all_count.load() >= 2 * kFiles;
  })) << "keep=" << keep_count.load() << " all=" << all_count.load()
      << " keep_state=" << to_string(keep->flow_state())
      << " all_state=" << to_string(all->flow_state())
      << " frames=" << monitor.hub()->frames_pumped();
  EXPECT_EQ(keep->flow_state(), FlowState::kLive);
  EXPECT_EQ(all->flow_state(), FlowState::kLive);
  EXPECT_GT(monitor.hub()->frames_pumped(), 0u);
  // One shared hub receiver on the shard output, not one per consumer.
  keep->stop();
  all->stop();
  monitor.stop();
  EXPECT_EQ(keep_count.load(), kFiles);
  EXPECT_EQ(all_count.load(), 2 * kFiles);
}

TEST_F(FlowControlTest, HubConsumerWithMetricsDeliversWithoutReceiver) {
  // Regression: a hub-mode consumer has no private transport receiver,
  // but a wired metrics registry still creates the overflow gauge — the
  // instrumented delivery path used to dereference the null receiver on
  // the first non-empty batch.
  LustreFs fs(LustreFsOptions{}, clock);
  obs::MetricsRegistry registry;
  ScalableMonitor monitor(fs, options(/*with_store=*/false), clock);
  ASSERT_NE(monitor.hub(), nullptr);

  std::atomic<int> count{0};
  ConsumerOptions metered_options;
  metered_options.metrics = &registry;
  auto consumer = monitor.make_consumer(
      "metered", metered_options, [&](const StdEvent&) { count.fetch_add(1); });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  constexpr int kFiles = 16;
  for (int i = 0; i < kFiles; ++i)
    ASSERT_TRUE(fs.create("/f" + std::to_string(i)).is_ok());
  ASSERT_TRUE(wait_until([&] { return count.load() >= kFiles; }));
  consumer->stop();
  monitor.stop();

  const obs::Labels labels{{"consumer", "metered"}};
  EXPECT_EQ(registry.gauge("consumer.overflow_dropped", labels).value(), 0);
  EXPECT_EQ(registry.counter("consumer.events_delivered", labels).value(),
            static_cast<std::uint64_t>(kFiles));
}

TEST_F(FlowControlTest, IdleSubscriberDoesNotPinStorePurge) {
  // Regression: a live consumer whose rules match nothing never appears
  // in a delivery set, so it never acks; its subscribe-time watermark
  // used to pin the hub's min-ack forever and the store purge reclaimed
  // nothing. The idle subscriber's effective cursor must track heads.
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitorOptions o = options();
  ScalableMonitor monitor(fs, o, clock);

  std::atomic<int> idle_count{0};
  std::atomic<int> healthy_count{0};
  ConsumerOptions idle_options;
  core::FilterRule never;
  never.root = "/never-created";
  idle_options.rules.push_back(never);
  idle_options.ack_interval = 16;
  auto idle = monitor.make_consumer("idle", idle_options,
                                    [&](const StdEvent&) { idle_count.fetch_add(1); });
  ConsumerOptions healthy_options;
  healthy_options.ack_interval = 16;
  auto healthy = monitor.make_consumer("healthy", healthy_options,
                                       [&](const StdEvent&) { healthy_count.fetch_add(1); });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(idle->start().is_ok());
  ASSERT_TRUE(healthy->start().is_ok());

  constexpr int kEvents = 600;
  for (int i = 0; i < kEvents; ++i)
    ASSERT_TRUE(fs.create("/f" + std::to_string(i)).is_ok());
  ASSERT_TRUE(wait_until([&] { return healthy_count.load() >= kEvents; }));
  EXPECT_EQ(idle->flow_state(), FlowState::kLive);

  // The healthy consumer's acks advance the min watermark because the
  // untouched idle subscriber no longer contributes to it.
  ASSERT_TRUE(wait_until([&] { return monitor.sharded().purge() > 0; },
                         std::chrono::seconds(10)));
  EXPECT_EQ(idle_count.load(), 0);

  idle->stop();
  healthy->stop();
  monitor.stop();
}

TEST_F(FlowControlTest, HubStoppedBeforeStartDoesNotBlockShardSenders) {
  // Regression: the constructor connects the hub's kBlock receiver to
  // every shard, but stop() used to early-return when start() never ran,
  // leaving the inbox open — once full it wedged the shard senders.
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitorOptions o;
  o.collector.cache_size = 64;  // legacy topology; the dead hub is extra
  ScalableMonitor monitor(fs, o, clock);
  FlowControlOptions flow;
  flow.high_water_mark = 2;  // fills after two frames if left open
  {
    FanOutHub dead(monitor.sharded(), flow);
    dead.stop();  // never started — must still close its inbox
    dead.stop();  // stopping twice stays safe
  }

  std::atomic<int> count{0};
  auto consumer = monitor.make_consumer("c", ConsumerOptions{},
                                        [&](const StdEvent&) { count.fetch_add(1); });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());
  constexpr int kFiles = 64;
  for (int i = 0; i < kFiles; ++i)
    ASSERT_TRUE(fs.create("/f" + std::to_string(i)).is_ok());
  ASSERT_TRUE(wait_until([&] { return count.load() >= kFiles; }));
  consumer->stop();
  monitor.stop();
  EXPECT_EQ(count.load(), kFiles);
}

TEST_F(FlowControlTest, StalledConsumerIsDemotedThenPromotedGapFree) {
  LustreFs fs(LustreFsOptions{}, clock);
  obs::MetricsRegistry registry;
  ScalableMonitorOptions o = options();
  o.aggregator.metrics = &registry;
  o.flow.credit_window = 256;
  ScalableMonitor monitor(fs, o, clock);

  // The stalled consumer blocks inside its callback until released; its
  // hub queue keeps growing, credits run out, the hub demotes it.
  std::atomic<bool> gate_closed{true};
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  std::mutex seen_mu;
  std::vector<common::EventId> stalled_ids;
  std::atomic<int> healthy_count{0};

  ConsumerOptions slow_options;
  slow_options.ack_interval = 16;
  auto stalled = monitor.make_consumer("stalled", slow_options, [&](const StdEvent& event) {
    {
      std::unique_lock lock(gate_mu);
      gate_cv.wait(lock, [&] { return !gate_closed.load(); });
    }
    std::lock_guard lock(seen_mu);
    stalled_ids.push_back(event.id);
  });
  ConsumerOptions healthy_options;
  healthy_options.ack_interval = 16;
  auto healthy = monitor.make_consumer("healthy", healthy_options,
                                       [&](const StdEvent&) { healthy_count.fetch_add(1); });
  GateGuard guard{gate_closed, gate_cv};
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(stalled->start().is_ok());
  ASSERT_TRUE(healthy->start().is_ok());

  constexpr int kEvents = 1000;
  for (int i = 0; i < kEvents; ++i)
    ASSERT_TRUE(fs.create("/f" + std::to_string(i)).is_ok());

  // Sibling isolation: the healthy consumer receives the full stream
  // while its sibling is stalled — the stall never back-pressures the
  // shared pump or the shard senders.
  ASSERT_TRUE(wait_until([&] { return healthy_count.load() >= kEvents; }));
  EXPECT_TRUE(wait_until([&] { return healthy->flow_state() == FlowState::kLive; }));
  // The hub noticed the exhausted window while the consumer was blocked.
  ASSERT_TRUE(wait_until([&] { return stalled->flow_state() == FlowState::kDemoted; }));
  EXPECT_GE(registry.counter("flow.demotions").value(), 1u);

  // Release the stall: the consumer drains its queued live items, hits
  // the demotion marker, catches up from the store, and is promoted.
  gate_closed.store(false);
  gate_cv.notify_all();
  ASSERT_TRUE(wait_until([&] {
    std::lock_guard lock(seen_mu);
    return stalled_ids.size() >= kEvents;
  }));
  ASSERT_TRUE(wait_until([&] { return stalled->flow_state() == FlowState::kLive; }));
  EXPECT_GE(registry.counter("flow.promotions").value(), 1u);

  stalled->stop();
  healthy->stop();
  monitor.stop();

  // Gap-free and duplicate-free across the live -> replay -> live seam:
  // exactly ids 1..kEvents, each once (single shard, dense sequence).
  std::lock_guard lock(seen_mu);
  ASSERT_EQ(stalled_ids.size(), static_cast<std::size_t>(kEvents));
  std::set<common::EventId> unique(stalled_ids.begin(), stalled_ids.end());
  EXPECT_EQ(unique.size(), stalled_ids.size()) << "duplicate delivery";
  EXPECT_EQ(*unique.begin(), 1u);
  EXPECT_EQ(*unique.rbegin(), static_cast<common::EventId>(kEvents));
}

TEST_F(FlowControlTest, NeverDrainingConsumerIsEvicted) {
  LustreFs fs(LustreFsOptions{}, clock);
  obs::MetricsRegistry registry;
  ScalableMonitorOptions o = options();
  o.aggregator.metrics = &registry;
  // Window and lag sized so the healthy consumer (which drains at memory
  // speed and acks every 16 events) can never trip them, while the
  // blocked sibling exhausts the window and blows past the lag bound.
  o.flow.credit_window = 4096;
  o.flow.eviction_lag = 6000;
  ScalableMonitor monitor(fs, o, clock);

  std::atomic<bool> gate_closed{true};
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  std::atomic<int> healthy_count{0};

  ConsumerOptions consumer_options;
  consumer_options.ack_interval = 16;
  auto stalled = monitor.make_consumer("stalled", consumer_options, [&](const StdEvent&) {
    std::unique_lock lock(gate_mu);
    gate_cv.wait(lock, [&] { return !gate_closed.load(); });
  });
  auto healthy = monitor.make_consumer("healthy", consumer_options,
                                       [&](const StdEvent&) { healthy_count.fetch_add(1); });
  GateGuard guard{gate_closed, gate_cv};
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(stalled->start().is_ok());
  ASSERT_TRUE(healthy->start().is_ok());

  constexpr int kEvents = 8000;
  for (int i = 0; i < kEvents; ++i)
    ASSERT_TRUE(fs.create("/f" + std::to_string(i)).is_ok());

  ASSERT_TRUE(wait_until([&] { return healthy_count.load() >= kEvents; }));
  ASSERT_TRUE(wait_until([&] { return stalled->flow_state() == FlowState::kEvicted; }));
  EXPECT_GE(registry.counter("flow.evictions").value(), 1u);

  // Release the callback so the worker can observe the eviction marker.
  gate_closed.store(false);
  gate_cv.notify_all();
  ASSERT_TRUE(wait_until([&] { return stalled->evicted(); }));
  EXPECT_TRUE(wait_until([&] { return healthy->flow_state() == FlowState::kLive; }));

  stalled->stop();
  healthy->stop();
  monitor.stop();
  EXPECT_EQ(healthy_count.load(), kEvents);
}

TEST_F(FlowControlTest, MinAckHoldsStorePurgeForDemotedConsumer) {
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitorOptions o = options();
  o.flow.credit_window = 256;
  ScalableMonitor monitor(fs, o, clock);

  std::atomic<bool> gate_closed{true};
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  std::atomic<int> stalled_count{0};
  std::atomic<int> healthy_count{0};

  ConsumerOptions fast_options;
  fast_options.ack_interval = 16;
  auto stalled = monitor.make_consumer("stalled", fast_options, [&](const StdEvent&) {
    {
      std::unique_lock lock(gate_mu);
      gate_cv.wait(lock, [&] { return !gate_closed.load(); });
    }
    stalled_count.fetch_add(1);
  });
  auto healthy = monitor.make_consumer("healthy", fast_options,
                                       [&](const StdEvent&) { healthy_count.fetch_add(1); });
  GateGuard guard{gate_closed, gate_cv};
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(stalled->start().is_ok());
  ASSERT_TRUE(healthy->start().is_ok());

  constexpr int kEvents = 600;
  for (int i = 0; i < kEvents; ++i)
    ASSERT_TRUE(fs.create("/f" + std::to_string(i)).is_ok());
  ASSERT_TRUE(wait_until([&] { return healthy_count.load() >= kEvents; }));
  ASSERT_TRUE(wait_until([&] { return stalled->flow_state() == FlowState::kDemoted; }));

  // The healthy consumer has acked far ahead, but the hub forwards the
  // MINIMUM across subscriptions: the store must keep everything the
  // demoted consumer still needs, so a purge reclaims nothing.
  EXPECT_EQ(monitor.sharded().purge(), 0u);

  gate_closed.store(false);
  gate_cv.notify_all();
  ASSERT_TRUE(wait_until([&] {
    return stalled_count.load() >= kEvents && stalled->flow_state() == FlowState::kLive;
  }));
  // Both consumers have now acked past most of the stream; the min
  // watermark advanced and the purge reclaims reported events.
  ASSERT_TRUE(wait_until([&] { return monitor.sharded().purge() > 0; },
                         std::chrono::seconds(10)));

  stalled->stop();
  healthy->stop();
  monitor.stop();
}

}  // namespace
}  // namespace fsmon::scalable
