// Validates the discrete-event simulation driver that generates the
// paper's Lustre tables — determinism, saturation behaviour, and the
// relative orderings ("shape") the reproduction targets.
#include "src/scalable/sim_driver.hpp"

#include <gtest/gtest.h>

namespace fsmon::scalable {
namespace {

SimConfig quick_config(std::size_t cache_size) {
  SimConfig config;
  config.profile = lustre::TestbedProfile::iota();
  config.duration = std::chrono::seconds(3);
  config.cache_size = cache_size;
  return config;
}

TEST(SimDriverTest, GenerationRateMatchesProfile) {
  auto report = run_pipeline_sim(quick_config(5000));
  EXPECT_NEAR(report.generated_rate, 9593.0, 9593.0 * 0.01);
}

TEST(SimDriverTest, DeterministicForSameSeed) {
  auto a = run_pipeline_sim(quick_config(1000));
  auto b = run_pipeline_sim(quick_config(1000));
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.reported, b.reported);
  EXPECT_EQ(a.fid2path_calls, b.fid2path_calls);
  EXPECT_DOUBLE_EQ(a.collector.cpu_percent, b.collector.cpu_percent);
}

TEST(SimDriverTest, CacheImprovesReportingRate) {
  // The paper's headline Table VI effect.
  auto without = run_pipeline_sim(quick_config(0));
  auto with = run_pipeline_sim(quick_config(5000));
  EXPECT_GT(with.reported_rate, without.reported_rate);
  // Without cache the pipeline loses roughly 15% on Iota.
  EXPECT_LT(without.reported_rate / without.generated_rate, 0.90);
  EXPECT_GT(with.reported_rate / with.generated_rate, 0.95);
}

TEST(SimDriverTest, CacheReducesCollectorCpu) {
  auto without = run_pipeline_sim(quick_config(0));
  auto with = run_pipeline_sim(quick_config(5000));
  EXPECT_LT(with.collector.cpu_percent, without.collector.cpu_percent);
  EXPECT_GT(with.cache_hit_rate, 0.9);
  EXPECT_EQ(without.cache_hit_rate, 0.0);
}

TEST(SimDriverTest, LargerCacheMonotoneUpToWorkingSet) {
  // Table VIII shape: rates rise with cache size up to ~5000.
  auto s200 = run_pipeline_sim(quick_config(200));
  auto s1000 = run_pipeline_sim(quick_config(1000));
  auto s5000 = run_pipeline_sim(quick_config(5000));
  EXPECT_LT(s200.reported_rate, s1000.reported_rate);
  EXPECT_LT(s1000.reported_rate, s5000.reported_rate);
}

TEST(SimDriverTest, FourMdsScalesAggregateThroughput) {
  auto one = run_pipeline_sim(quick_config(5000));
  auto config = quick_config(5000);
  config.mds_count = 4;
  auto four = run_pipeline_sim(config);
  EXPECT_NEAR(four.generated_rate, 4 * one.generated_rate, one.generated_rate * 0.05);
  EXPECT_GT(four.reported_rate, 3.5 * one.reported_rate);
}

TEST(SimDriverTest, RobinhoodSlowerThanFsmonitorOnFourMds) {
  // Section V-D5: concurrent per-MDS collection beats round-robin polling.
  auto config = quick_config(5000);
  config.mds_count = 4;
  auto fsmonitor = run_pipeline_sim(config);
  auto robinhood = run_robinhood_sim(config);
  EXPECT_GT(fsmonitor.reported_rate, robinhood.reported_rate);
  // The gap is moderate (paper: ~14.5%), not an order of magnitude.
  EXPECT_GT(robinhood.reported_rate, fsmonitor.reported_rate * 0.7);
}

TEST(SimDriverTest, AwsSlowerThanThorSlowerThanIota) {
  // Table V/VI ordering across testbeds.
  SimConfig config = quick_config(5000);
  config.profile = lustre::TestbedProfile::aws();
  auto aws = run_pipeline_sim(config);
  config.profile = lustre::TestbedProfile::thor();
  auto thor = run_pipeline_sim(config);
  config.profile = lustre::TestbedProfile::iota();
  auto iota = run_pipeline_sim(config);
  EXPECT_LT(aws.reported_rate, thor.reported_rate);
  EXPECT_LT(thor.reported_rate, iota.reported_rate);
}

TEST(SimDriverTest, NoEventLossOnlyDelay) {
  // "there is no overall loss of events; events are queued and simply
  // processed at a lower rate than they are generated" (Section V-D2).
  auto config = quick_config(0);
  config.duration = std::chrono::seconds(2);
  auto report = run_pipeline_sim(config);
  EXPECT_GT(report.peak_backlog_records, 0u);  // backlog built up...
  EXPECT_LT(report.reported, report.generated);  // ...so fewer reported in-window
  EXPECT_GT(report.reported, 0u);
}

TEST(SimDriverTest, WorkloadVariantsChangeCpu) {
  // Section V-D3: delete-heavy load costs more CPU than create+modify.
  auto config = quick_config(5000);
  config.workload = SimWorkload::kCreateDelete;
  auto deletes = run_pipeline_sim(config);
  config.workload = SimWorkload::kCreateModify;
  auto no_deletes = run_pipeline_sim(config);
  EXPECT_GT(deletes.collector.cpu_percent, no_deletes.collector.cpu_percent);
}

TEST(SimDriverTest, WorkloadNamesRender) {
  EXPECT_EQ(to_string(SimWorkload::kMixed), "mixed");
  EXPECT_EQ(to_string(SimWorkload::kCreateDelete), "create+delete");
  EXPECT_EQ(to_string(SimWorkload::kCreateModify), "create+modify");
}

}  // namespace
}  // namespace fsmon::scalable
