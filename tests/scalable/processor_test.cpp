// Unit tests for Algorithm 1 (changelog event processing).
#include "src/scalable/processor.hpp"

#include <gtest/gtest.h>

#include "src/common/clock.hpp"

namespace fsmon::scalable {
namespace {

using core::EventKind;
using lustre::ChangelogRecord;
using lustre::ChangelogType;
using lustre::LustreFs;
using lustre::LustreFsOptions;

class ProcessorTest : public ::testing::Test {
 protected:
  ProcessorTest()
      : fs(LustreFsOptions{}, clock),
        resolver(fs, resolver_options()),
        cache(5000),
        processor(resolver, &cache, costs(), "lustre:MDT0") {}

  static lustre::FidResolverOptions resolver_options() {
    lustre::FidResolverOptions options;
    options.base_cost = std::chrono::microseconds(100);
    options.per_component_cost = {};
    return options;
  }

  static ProcessorCosts costs() {
    ProcessorCosts c;
    c.base_latency = std::chrono::microseconds(10);
    c.base_cpu = std::chrono::microseconds(1);
    c.fid2path_cpu = std::chrono::microseconds(5);
    c.cache_lookup_coeff = std::chrono::nanoseconds(100);
    return c;
  }

  /// Fetch the most recent record from MDT0's changelog.
  ChangelogRecord last_record() {
    const auto& log = fs.mds(0).mdt().changelog();
    return log.read(log.last_index() - 1, 1).back();
  }

  common::ManualClock clock;
  LustreFs fs;
  lustre::FidResolver resolver;
  EventProcessor::FidCache cache;
  EventProcessor processor;
};

TEST_F(ProcessorTest, CreateResolvesViaParentAndSeedsCache) {
  auto created = fs.create("/hello.txt");
  auto output = processor.process(last_record());
  ASSERT_EQ(output.events.size(), 1u);
  EXPECT_EQ(output.events[0].kind, EventKind::kCreate);
  EXPECT_EQ(output.events[0].path, "/hello.txt");
  // The target FID mapping was seeded without a fid2path on the target.
  EXPECT_TRUE(cache.contains(created->fid));
  EXPECT_EQ(*cache.peek(created->fid), "/hello.txt");
}

TEST_F(ProcessorTest, MkdirYieldsIsdirCreate) {
  fs.mkdir("/okdir");
  auto output = processor.process(last_record());
  ASSERT_EQ(output.events.size(), 1u);
  EXPECT_EQ(output.events[0].kind, EventKind::kCreate);
  EXPECT_TRUE(output.events[0].is_dir);
  EXPECT_EQ(output.events[0].path, "/okdir");
}

TEST_F(ProcessorTest, ModifyHitsCacheSeededByCreate) {
  fs.create("/f");
  processor.process(last_record());
  const auto calls_before = processor.stats().fid2path_calls;
  fs.modify("/f", 100);
  auto output = processor.process(last_record());
  EXPECT_EQ(output.events[0].kind, EventKind::kModify);
  EXPECT_EQ(output.events[0].path, "/f");
  // Target lookup hit: no new fid2path.
  EXPECT_EQ(processor.stats().fid2path_calls, calls_before);
}

TEST_F(ProcessorTest, ModifyWithoutCacheEntryUsesFid2Path) {
  fs.create("/f");
  fs.modify("/f", 100);  // process only the MTIME record
  auto record = last_record();
  cache.clear();
  auto output = processor.process(record);
  EXPECT_EQ(output.events[0].path, "/f");
  EXPECT_EQ(processor.stats().fid2path_calls, 1u);
  // Latency includes the resolver's cost.
  EXPECT_GE(output.latency, std::chrono::microseconds(110));
}

TEST_F(ProcessorTest, UnlinkUsesStaleCacheEntryAndErasesIt) {
  // Algorithm 1 line 13: the cached mapping (seeded by CREAT) satisfies
  // the UNLNK even though the FID is now gone.
  auto created = fs.create("/gone.txt");
  processor.process(last_record());
  fs.unlink("/gone.txt");
  const auto calls_before = processor.stats().fid2path_calls;
  auto output = processor.process(last_record());
  ASSERT_EQ(output.events.size(), 1u);
  EXPECT_EQ(output.events[0].kind, EventKind::kDelete);
  EXPECT_EQ(output.events[0].path, "/gone.txt");
  EXPECT_EQ(processor.stats().fid2path_calls, calls_before);
  EXPECT_FALSE(cache.contains(created->fid));  // stale mapping dropped
}

TEST_F(ProcessorTest, UnlinkFallsBackToParentOnCacheMiss) {
  // Algorithm 1 lines 20-26: fid2path(target) fails -> resolve parent,
  // append the record's name.
  fs.mkdir("/dir");
  fs.create("/dir/f");
  fs.unlink("/dir/f");
  auto record = last_record();
  cache.clear();
  auto output = processor.process(record);
  ASSERT_EQ(output.events.size(), 1u);
  EXPECT_EQ(output.events[0].kind, EventKind::kDelete);
  EXPECT_EQ(output.events[0].path, "/dir/f");
  EXPECT_EQ(processor.stats().parent_fallbacks, 1u);
  // Two fid2path calls: failed target + successful parent.
  EXPECT_EQ(processor.stats().fid2path_calls, 2u);
  EXPECT_EQ(processor.stats().fid2path_failures, 1u);
}

TEST_F(ProcessorTest, RmdirWithDeletedParentReportsParentDirectoryRemoved) {
  // Algorithm 1 lines 40-42.
  fs.mkdir("/outer");
  fs.mkdir("/outer/inner");
  fs.rmdir("/outer/inner");
  auto inner_record = last_record();
  fs.rmdir("/outer");
  cache.clear();
  auto output = processor.process(inner_record);
  ASSERT_EQ(output.events.size(), 1u);
  EXPECT_EQ(output.events[0].kind, EventKind::kDelete);
  EXPECT_EQ(output.events[0].path, core::kParentDirectoryRemoved);
  EXPECT_EQ(processor.stats().unresolved, 1u);
}

TEST_F(ProcessorTest, RenameResolvesOldAndNewFids) {
  // Algorithm 1 lines 27-38: RENME resolves sp= (old) and s= (new).
  fs.create("/hello.txt");
  processor.process(last_record());  // seed cache with old fid
  fs.rename("/hello.txt", "/hi.txt");
  auto output = processor.process(last_record());
  ASSERT_EQ(output.events.size(), 2u);
  EXPECT_EQ(output.events[0].kind, EventKind::kMovedFrom);
  EXPECT_EQ(output.events[0].path, "/hello.txt");
  EXPECT_EQ(output.events[1].kind, EventKind::kMovedTo);
  EXPECT_EQ(output.events[1].path, "/hi.txt");
  EXPECT_EQ(output.events[0].cookie, output.events[1].cookie);
}

TEST_F(ProcessorTest, RenameWithColdCacheStillResolves) {
  fs.create("/hello.txt");
  fs.rename("/hello.txt", "/hi.txt");
  auto record = last_record();
  cache.clear();
  auto output = processor.process(record);
  ASSERT_EQ(output.events.size(), 2u);
  // Old FID is gone (re-keyed), so the old path is reconstructed from
  // the parent + old name.
  EXPECT_EQ(output.events[0].path, "/hello.txt");
  EXPECT_EQ(output.events[1].path, "/hi.txt");
  EXPECT_GE(processor.stats().parent_fallbacks, 1u);
}

TEST_F(ProcessorTest, EventKindMapping) {
  struct Case {
    std::function<void()> op;
    EventKind expected;
  };
  fs.create("/f");
  processor.process(last_record());
  const Case cases[] = {
      {[&] { fs.setattr("/f", 0600); }, EventKind::kAttrib},
      {[&] { fs.setxattr("/f"); }, EventKind::kAttrib},
      {[&] { fs.truncate("/f", 0); }, EventKind::kModify},
      {[&] { fs.ioctl("/f"); }, EventKind::kAttrib},
      {[&] { fs.close("/f"); }, EventKind::kClose},
      {[&] { fs.hardlink("/f", "/hl"); }, EventKind::kCreate},
      {[&] { fs.softlink("/f", "/sl"); }, EventKind::kCreate},
      {[&] { fs.mknod("/dev0"); }, EventKind::kCreate},
  };
  for (const auto& test_case : cases) {
    test_case.op();
    auto output = processor.process(last_record());
    ASSERT_FALSE(output.events.empty());
    EXPECT_EQ(output.events[0].kind, test_case.expected);
  }
}

TEST_F(ProcessorTest, CostsAccumulatePerRecord) {
  fs.create("/f");
  auto output = processor.process(last_record());
  // Base latency (10us) + parent fid2path (100us) + cache ops.
  EXPECT_GE(output.latency, std::chrono::microseconds(110));
  EXPECT_GE(output.cpu, std::chrono::microseconds(6));  // base 1 + fid2path 5
  EXPECT_LT(output.cpu, output.latency);
}

TEST_F(ProcessorTest, NoCacheModeAlwaysCallsFid2Path) {
  EventProcessor uncached(resolver, nullptr, costs(), "lustre:MDT0");
  fs.create("/a");
  uncached.process(last_record());
  fs.modify("/a", 1);
  uncached.process(last_record());
  EXPECT_EQ(uncached.stats().fid2path_calls, 2u);
  EXPECT_EQ(uncached.stats().cache_hits, 0u);
  EXPECT_EQ(uncached.stats().cache_misses, 0u);
}

TEST_F(ProcessorTest, StatsTrackHitsAndMisses) {
  fs.create("/f");
  processor.process(last_record());  // parent miss (root not yet cached)
  fs.modify("/f", 1);
  processor.process(last_record());  // target hit
  EXPECT_EQ(processor.stats().records, 2u);
  EXPECT_GE(processor.stats().cache_hits, 1u);
  EXPECT_GE(processor.stats().cache_misses, 1u);
}

TEST_F(ProcessorTest, SourceTagsEvents) {
  fs.create("/f");
  auto output = processor.process(last_record());
  EXPECT_EQ(output.events[0].source, "lustre:MDT0");
}

}  // namespace
}  // namespace fsmon::scalable
