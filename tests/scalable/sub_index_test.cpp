// SubscriptionIndex: trie semantics against the legacy per-consumer
// matcher, including the byte-identity property test over randomized
// rule sets that the ISSUE acceptance criteria require.
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "src/core/filter.hpp"
#include "src/scalable/sub_index.hpp"

namespace fsmon::scalable {
namespace {

using core::CompiledRule;
using core::CompiledRuleSet;
using core::EventKind;
using core::FilterRule;
using core::StdEvent;

StdEvent event_at(std::string path, EventKind kind = EventKind::kCreate) {
  StdEvent event;
  event.path = std::move(path);
  event.kind = kind;
  return event;
}

std::vector<CompiledRule> compile(const std::vector<FilterRule>& rules) {
  std::vector<CompiledRule> compiled;
  for (const auto& rule : rules) compiled.push_back(CompiledRule::compile(rule));
  return compiled;
}

bool index_matches(const SubscriptionIndex& index, SubscriberId id,
                   const StdEvent& event) {
  auto ids = index.match_event(event);
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

TEST(SubIndexTest, EmptyRuleSetMatchesEverything) {
  SubscriptionIndex index;
  const SubscriberId id = index.add_subscriber({});
  EXPECT_TRUE(index_matches(index, id, event_at("/")));
  EXPECT_TRUE(index_matches(index, id, event_at("/a/b/c")));
}

TEST(SubIndexTest, RecursiveRuleMatchesSubtreeWithExactBoundary) {
  SubscriptionIndex index;
  std::vector<FilterRule> rules{{.root = "/foo", .recursive = true}};
  const SubscriberId id = index.add_subscriber(compile(rules));
  EXPECT_TRUE(index_matches(index, id, event_at("/foo")));
  EXPECT_TRUE(index_matches(index, id, event_at("/foo/x")));
  EXPECT_TRUE(index_matches(index, id, event_at("/foo/x/y")));
  // The classic prefix bug: "/foo" must not match "/foobar".
  EXPECT_FALSE(index_matches(index, id, event_at("/foobar")));
  EXPECT_FALSE(index_matches(index, id, event_at("/foobar/x")));
  EXPECT_FALSE(index_matches(index, id, event_at("/")));
}

TEST(SubIndexTest, TrailingSlashRootNormalizesLikeLegacy) {
  SubscriptionIndex index;
  std::vector<FilterRule> rules{{.root = "/foo/", .recursive = true}};
  const SubscriberId id = index.add_subscriber(compile(rules));
  EXPECT_TRUE(index_matches(index, id, event_at("/foo")));
  EXPECT_TRUE(index_matches(index, id, event_at("/foo/x")));
  EXPECT_FALSE(index_matches(index, id, event_at("/foobar")));
}

TEST(SubIndexTest, NonRecursiveRuleMatchesDirectChildrenOnly) {
  SubscriptionIndex index;
  std::vector<FilterRule> rules{{.root = "/foo", .recursive = false}};
  const SubscriberId id = index.add_subscriber(compile(rules));
  EXPECT_FALSE(index_matches(index, id, event_at("/foo")));
  EXPECT_TRUE(index_matches(index, id, event_at("/foo/x")));
  EXPECT_FALSE(index_matches(index, id, event_at("/foo/x/y")));
  EXPECT_FALSE(index_matches(index, id, event_at("/foobar")));
  EXPECT_FALSE(index_matches(index, id, event_at("/foobar/x")));
}

TEST(SubIndexTest, RootRuleQuirksMatchLegacySemantics) {
  SubscriptionIndex index;
  std::vector<FilterRule> recursive_rules{{.root = "/", .recursive = true}};
  std::vector<FilterRule> direct_rules{{.root = "/", .recursive = false}};
  const SubscriberId rec = index.add_subscriber(compile(recursive_rules));
  const SubscriberId dir = index.add_subscriber(compile(direct_rules));
  EXPECT_TRUE(index_matches(index, rec, event_at("/")));
  EXPECT_TRUE(index_matches(index, rec, event_at("/a/b")));
  // Legacy quirk: parent_path("/") == "/", so a non-recursive "/" rule
  // matches the root path itself, plus direct children.
  EXPECT_TRUE(index_matches(index, dir, event_at("/")));
  EXPECT_TRUE(index_matches(index, dir, event_at("/a")));
  EXPECT_FALSE(index_matches(index, dir, event_at("/a/b")));
}

TEST(SubIndexTest, KindMaskRestrictsPerNodeBitmaps) {
  SubscriptionIndex index;
  std::vector<FilterRule> rules{
      {.root = "/d", .recursive = true, .kinds = std::set<EventKind>{EventKind::kModify}}};
  const SubscriberId id = index.add_subscriber(compile(rules));
  EXPECT_TRUE(index_matches(index, id, event_at("/d/f", EventKind::kModify)));
  EXPECT_FALSE(index_matches(index, id, event_at("/d/f", EventKind::kCreate)));
}

TEST(SubIndexTest, GlobPatternAppliesToBaseName) {
  SubscriptionIndex index;
  std::vector<FilterRule> rules{
      {.root = "/data", .recursive = true, .name_pattern = "*.h5"}};
  const SubscriberId id = index.add_subscriber(compile(rules));
  EXPECT_TRUE(index_matches(index, id, event_at("/data/run/out.h5")));
  EXPECT_FALSE(index_matches(index, id, event_at("/data/run/out.txt")));
}

TEST(SubIndexTest, RemoveSubscriberPrunesNodesAndReusesIds) {
  SubscriptionIndex index;
  std::vector<FilterRule> rules{{.root = "/a/b/c", .recursive = true}};
  const SubscriberId id = index.add_subscriber(compile(rules));
  EXPECT_EQ(index.subscriber_count(), 1u);
  EXPECT_EQ(index.node_count(), 4u);  // root + a + b + c
  index.remove_subscriber(id);
  EXPECT_EQ(index.subscriber_count(), 0u);
  EXPECT_EQ(index.node_count(), 1u);
  EXPECT_FALSE(index_matches(index, id, event_at("/a/b/c")));
  const SubscriberId reused = index.add_subscriber(compile(rules));
  EXPECT_EQ(reused, id);
}

TEST(SubIndexTest, MatchBatchYieldsPerSubscriberIndicesInBatchOrder) {
  SubscriptionIndex index;
  std::vector<FilterRule> foo_rules{{.root = "/foo", .recursive = true}};
  std::vector<FilterRule> bar_rules{{.root = "/bar", .recursive = true}};
  const SubscriberId foo = index.add_subscriber(compile(foo_rules));
  const SubscriberId bar = index.add_subscriber(compile(bar_rules));

  std::vector<StdEvent> events{event_at("/foo/1"), event_at("/bar/1"),
                               event_at("/baz/1"), event_at("/foo/2")};
  DeliverySet out;
  index.match_batch(events, out);
  ASSERT_EQ(out.touched().size(), 2u);
  const auto foo_indices = out.indices_for(foo);
  const auto bar_indices = out.indices_for(bar);
  EXPECT_EQ(std::vector<std::uint32_t>(foo_indices.begin(), foo_indices.end()),
            (std::vector<std::uint32_t>{0, 3}));
  EXPECT_EQ(std::vector<std::uint32_t>(bar_indices.begin(), bar_indices.end()),
            (std::vector<std::uint32_t>{1}));
}

// ---------------------------------------------------------------------------
// Randomized byte-identity property: for every (subscriber, event) pair,
// index delivery == CompiledRuleSet::matches == legacy matches_any. This
// is the acceptance criterion that lets the hub replace per-consumer
// filtering without changing a single delivered byte.

FilterRule random_rule(std::mt19937& rng) {
  static const char* kRoots[] = {
      "/",      "/foo",       "/foo/",   "/foobar",    "/foo/bar",
      "/a",     "/a/b",       "/a/b/c",  "/data",      "/data/run1",
      "//a//b", "/a/./b",     "/a/../b", "/deep/x/y/z", "/foo/bar/baz",
  };
  static const char* kPatterns[] = {"", "", "", "*.h5", "f*", "?", "*a*"};
  std::uniform_int_distribution<std::size_t> root_dist(0, std::size(kRoots) - 1);
  std::uniform_int_distribution<std::size_t> pattern_dist(0, std::size(kPatterns) - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  FilterRule rule;
  rule.root = kRoots[root_dist(rng)];
  rule.recursive = coin(rng) == 1;
  rule.name_pattern = kPatterns[pattern_dist(rng)];
  if (coin(rng) == 1) {
    std::set<EventKind> kinds;
    std::uniform_int_distribution<int> kind_dist(0, 7);
    const int count = 1 + kind_dist(rng) % 3;
    for (int i = 0; i < count; ++i)
      kinds.insert(static_cast<EventKind>(kind_dist(rng)));
    rule.kinds = std::move(kinds);
  }
  return rule;
}

StdEvent random_event(std::mt19937& rng) {
  static const char* kPaths[] = {
      "/",          "/foo",        "/foobar",      "/foo/bar",
      "/foo/bar/x", "/foo/f.h5",   "/foobar/f.h5", "/a",
      "/a/b",       "/a/b/c",      "/a/b/c/d",     "/data/run1/out.h5",
      "/data/run2/out.txt",        "/deep/x/y/z/w", "/b",
      "//foo//bar", "/a/./b/../c",
  };
  std::uniform_int_distribution<std::size_t> path_dist(0, std::size(kPaths) - 1);
  std::uniform_int_distribution<int> kind_dist(0, 7);
  return event_at(kPaths[path_dist(rng)], static_cast<EventKind>(kind_dist(rng)));
}

TEST(SubIndexPropertyTest, IndexDeliveryIsByteIdenticalToLegacyFiltering) {
  std::mt19937 rng(20260808);
  for (int round = 0; round < 20; ++round) {
    SubscriptionIndex index;
    std::uniform_int_distribution<int> sub_count_dist(1, 24);
    std::uniform_int_distribution<int> rule_count_dist(0, 4);
    const int sub_count = sub_count_dist(rng);

    std::vector<std::vector<FilterRule>> rule_sets(sub_count);
    std::vector<SubscriberId> ids;
    for (int s = 0; s < sub_count; ++s) {
      const int rule_count = rule_count_dist(rng);
      for (int r = 0; r < rule_count; ++r)
        rule_sets[s].push_back(random_rule(rng));
      ids.push_back(index.add_subscriber(compile(rule_sets[s])));
    }
    // Churn: remove and re-add a subscriber so freed ids and pruned
    // nodes are exercised mid-stream.
    if (sub_count > 2) {
      index.remove_subscriber(ids[1]);
      ids[1] = index.add_subscriber(compile(rule_sets[1]));
    }

    std::vector<StdEvent> events;
    for (int e = 0; e < 64; ++e) events.push_back(random_event(rng));

    DeliverySet out;
    index.match_batch(events, out);
    for (int s = 0; s < sub_count; ++s) {
      const CompiledRuleSet compiled_set{
          std::span<const FilterRule>(rule_sets[s])};
      const auto indices = out.indices_for(ids[s]);
      std::size_t cursor = 0;
      for (std::uint32_t e = 0; e < events.size(); ++e) {
        const bool legacy = core::matches_any(rule_sets[s], events[e]);
        const bool compiled = compiled_set.matches(events[e]);
        const bool indexed =
            cursor < indices.size() && indices[cursor] == e;
        if (indexed) ++cursor;
        ASSERT_EQ(compiled, legacy)
            << "round " << round << " sub " << s << " event " << events[e].path;
        ASSERT_EQ(indexed, legacy)
            << "round " << round << " sub " << s << " event " << events[e].path
            << " kind " << static_cast<int>(events[e].kind);
      }
      ASSERT_EQ(cursor, indices.size());
    }
  }
}

}  // namespace
}  // namespace fsmon::scalable
