#include "src/scalable/robinhood.hpp"

#include <gtest/gtest.h>

namespace fsmon::scalable {
namespace {

using lustre::LustreFs;
using lustre::LustreFsOptions;

class RobinhoodTest : public ::testing::Test {
 protected:
  static LustreFsOptions four_mds() {
    LustreFsOptions options;
    options.mdt_count = 4;
    return options;
  }
  common::RealClock clock;
};

TEST_F(RobinhoodTest, SweepCollectsFromAllMdss) {
  LustreFs fs(four_mds(), clock);
  RobinhoodPoller poller(fs, RobinhoodOptions{}, clock);
  // Spread work across MDTs via directories.
  for (int i = 0; i < 20; ++i) {
    fs.mkdir("/d" + std::to_string(i));
    fs.create("/d" + std::to_string(i) + "/f");
  }
  const std::size_t total = poller.sweep_once();
  EXPECT_EQ(total, 40u);
  EXPECT_EQ(poller.records_processed(), 40u);
  EXPECT_EQ(poller.database().size(), 40u);
  std::uint64_t across = 0;
  for (std::uint32_t i = 0; i < 4; ++i) across += poller.records_from_mds(i);
  EXPECT_EQ(across, 40u);
}

TEST_F(RobinhoodTest, EventsResolvedClientSide) {
  LustreFs fs(LustreFsOptions{}, clock);
  RobinhoodPoller poller(fs, RobinhoodOptions{}, clock);
  fs.create("/hello.txt");
  fs.unlink("/hello.txt");
  poller.sweep_once();
  ASSERT_EQ(poller.database().size(), 2u);
  EXPECT_EQ(poller.database()[0].path, "/hello.txt");
  EXPECT_EQ(poller.database()[0].kind, core::EventKind::kCreate);
  EXPECT_EQ(poller.database()[1].kind, core::EventKind::kDelete);
}

TEST_F(RobinhoodTest, SweepPurgesChangelogs) {
  LustreFs fs(four_mds(), clock);
  RobinhoodPoller poller(fs, RobinhoodOptions{}, clock);
  for (int i = 0; i < 8; ++i) fs.mkdir("/d" + std::to_string(i));
  poller.sweep_once();
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_EQ(fs.mds(i).mdt().changelog().retained(), 0u);
  EXPECT_EQ(poller.sweep_once(), 0u);
}

TEST_F(RobinhoodTest, ThreadedPollerKeepsUp) {
  LustreFs fs(four_mds(), clock);
  RobinhoodPoller poller(fs, RobinhoodOptions{}, clock);
  ASSERT_TRUE(poller.start().is_ok());
  int expected = 0;
  for (int i = 0; i < 25; ++i) {
    fs.mkdir("/dir" + std::to_string(i));
    fs.create("/dir" + std::to_string(i) + "/f");
    expected += 2;
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (poller.records_processed() < static_cast<std::uint64_t>(expected) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  poller.stop();
  EXPECT_EQ(poller.records_processed(), static_cast<std::uint64_t>(expected));
}

}  // namespace
}  // namespace fsmon::scalable
