// A slow consumer with the DropNewest policy loses events at its
// high-water mark instead of stalling the pipeline — and recovers the
// gap from the reliable store (paper Section IV "Consumption").
#include <filesystem>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/scalable/scalable_monitor.hpp"

namespace fsmon::scalable {
namespace {

using lustre::LustreFs;
using lustre::LustreFsOptions;

class ConsumerOverflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_overflow_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  common::RealClock clock;
};

TEST_F(ConsumerOverflowTest, DropNewestLosesAtHwmAndReplayRecovers) {
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitorOptions options;
  // One frame per event so the tiny HWM below is actually exceeded (a
  // batched frame would carry the whole burst in a handful of messages).
  options.collector.publish_batch = 1;
  eventstore::EventStoreOptions store;
  store.directory = dir_;
  options.aggregator.store = store;
  ScalableMonitor monitor(fs, options, clock);

  // A consumer with a tiny inbox that is never started: its queue fills
  // and (DropNewest) sheds everything past the HWM.
  ConsumerOptions consumer_options;
  consumer_options.high_water_mark = 8;
  consumer_options.overflow_policy = common::OverflowPolicy::kDropNewest;
  std::vector<common::EventId> seen;
  auto slow = monitor.make_consumer("slow", consumer_options,
                                    [&](const core::StdEvent& event) {
                                      seen.push_back(event.id);
                                    });
  // Suppress auto-start by not starting the monitor until after creation:
  // make_consumer only starts consumers when the monitor runs.
  ASSERT_TRUE(monitor.start().is_ok());

  constexpr int kEvents = 64;
  for (int i = 0; i < kEvents; ++i) fs.create("/f" + std::to_string(i));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (monitor.aggregator().persisted() < kEvents &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(monitor.aggregator().persisted(), static_cast<std::uint64_t>(kEvents));
  // The un-started consumer shed most of the burst...
  EXPECT_GT(slow->dropped(), 0u);

  // ...but the aggregator's store is complete, so replaying recovers
  // every event exactly once (ids 1..64, in order). Replay before
  // start() so the recovered prefix is deterministic — deliveries are
  // serialized either way, but live frames could otherwise land first.
  auto replayed = slow->replay_historic(0);
  ASSERT_TRUE(replayed.is_ok());
  ASSERT_TRUE(slow->start().is_ok());
  slow->stop();
  monitor.stop();
  // Drain order: replay delivered the full history; the queued live
  // events may add duplicates after it, which real consumers dedupe by
  // id — verify the replay prefix is complete and ordered.
  ASSERT_GE(seen.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], static_cast<common::EventId>(i + 1));
  }
}

TEST_F(ConsumerOverflowTest, BlockPolicyIsLosslessUnderBurst) {
  LustreFs fs(LustreFsOptions{}, clock);
  ScalableMonitor monitor(fs, ScalableMonitorOptions{}, clock);
  ConsumerOptions consumer_options;
  consumer_options.high_water_mark = 4;  // tiny, but Block never drops
  std::atomic<int> count{0};
  auto consumer = monitor.make_consumer("c", consumer_options,
                                        [&](const core::StdEvent&) {
                                          count.fetch_add(1);
                                        });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());
  constexpr int kEvents = 200;
  for (int i = 0; i < kEvents; ++i) fs.create("/g" + std::to_string(i));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (count.load() < kEvents && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  consumer->stop();
  monitor.stop();
  EXPECT_EQ(count.load(), kEvents);
  EXPECT_EQ(consumer->dropped(), 0u);
}

}  // namespace
}  // namespace fsmon::scalable
