// Property tests: Algorithm 1's resolved paths against ground truth
// over randomized operation histories, under both synchronous and
// deferred (backlogged) processing.
#include <map>

#include <gtest/gtest.h>

#include "src/common/random.hpp"
#include "src/scalable/processor.hpp"

namespace fsmon::scalable {
namespace {

using core::EventKind;
using lustre::LustreFs;
using lustre::LustreFsOptions;

/// Randomized client driving a LustreFs while recording the ground-truth
/// path of every operation at the moment it happened.
class RandomHistory {
 public:
  RandomHistory(LustreFs& fs, std::uint64_t seed) : fs_(fs), rng_(seed) {
    fs_.mkdir("/w");
    dirs_.push_back("/w");
  }

  struct Expectation {
    EventKind kind;
    std::string path;        ///< Ground truth at operation time.
    std::string dest_path;   ///< Renames only.
  };

  /// Perform one random operation; returns the expectation, or nullopt
  /// if the chosen op was not applicable this round.
  std::optional<Expectation> step() {
    switch (rng_.next_below(6)) {
      case 0: {  // create
        const std::string path =
            dirs_[rng_.next_below(dirs_.size())] + "/f" + std::to_string(counter_++);
        if (!fs_.create(path).is_ok()) return std::nullopt;
        files_.push_back(path);
        return Expectation{EventKind::kCreate, path, {}};
      }
      case 1: {  // mkdir
        const std::string path =
            dirs_[rng_.next_below(dirs_.size())] + "/d" + std::to_string(counter_++);
        if (!fs_.mkdir(path).is_ok()) return std::nullopt;
        dirs_.push_back(path);
        return Expectation{EventKind::kCreate, path, {}};
      }
      case 2: {  // modify
        if (files_.empty()) return std::nullopt;
        const std::string& path = files_[rng_.next_below(files_.size())];
        if (!fs_.modify(path, 64).is_ok()) return std::nullopt;
        return Expectation{EventKind::kModify, path, {}};
      }
      case 3: {  // unlink
        if (files_.empty()) return std::nullopt;
        const std::size_t index = rng_.next_below(files_.size());
        const std::string path = files_[index];
        if (!fs_.unlink(path).is_ok()) return std::nullopt;
        files_.erase(files_.begin() + static_cast<std::ptrdiff_t>(index));
        return Expectation{EventKind::kDelete, path, {}};
      }
      case 4: {  // rename a file within its directory
        if (files_.empty()) return std::nullopt;
        const std::size_t index = rng_.next_below(files_.size());
        const std::string from = files_[index];
        const std::string to = from + "r";
        if (!fs_.rename(from, to).is_ok()) return std::nullopt;
        files_[index] = to;
        return Expectation{EventKind::kMovedFrom, from, to};
      }
      default: {  // close
        if (files_.empty()) return std::nullopt;
        const std::string& path = files_[rng_.next_below(files_.size())];
        if (!fs_.close(path).is_ok()) return std::nullopt;
        return Expectation{EventKind::kClose, path, {}};
      }
    }
  }

 private:
  LustreFs& fs_;
  common::Rng rng_;
  std::vector<std::string> dirs_;
  std::vector<std::string> files_;
  std::uint64_t counter_ = 0;
};

class Algorithm1PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Algorithm1PropertyTest, SynchronousProcessingMatchesGroundTruthExactly) {
  // When records are processed as they are produced (no backlog), every
  // resolved path must equal the path at operation time.
  common::ManualClock clock;
  LustreFs fs(LustreFsOptions{}, clock);
  lustre::FidResolverOptions resolver_options;
  lustre::FidResolver resolver(fs, resolver_options);
  EventProcessor::FidCache cache(256);  // small: force evictions too
  EventProcessor processor(resolver, &cache, ProcessorCosts{}, "mdt0");
  RandomHistory history(fs, GetParam());

  auto user = fs.mds(0).register_changelog_user();
  std::uint64_t checked = 0;
  for (int i = 0; i < 400; ++i) {
    auto expectation = history.step();
    auto records = fs.mds(0).changelog_read(user, 16);
    ASSERT_TRUE(records.is_ok());
    for (const auto& record : records.value()) {
      auto output = processor.process(record);
      ASSERT_FALSE(output.events.empty());
      if (expectation && output.events[0].kind == EventKind::kMovedFrom) {
        ASSERT_EQ(output.events.size(), 2u);
        EXPECT_EQ(output.events[0].path, expectation->path);
        EXPECT_EQ(output.events[1].path, expectation->dest_path);
      } else if (expectation) {
        EXPECT_EQ(output.events[0].kind, expectation->kind);
        EXPECT_EQ(output.events[0].path, expectation->path);
      }
      ++checked;
      fs.mds(0).changelog_clear(user, record.index);
    }
  }
  EXPECT_GT(checked, 100u);
  EXPECT_EQ(processor.stats().unresolved, 0u);
}

TEST_P(Algorithm1PropertyTest, DeferredProcessingNeverLosesEvents) {
  // With the whole history processed afterwards (maximal staleness),
  // every record must still produce an event, and paths must be the
  // ground-truth path (resolution through parents reconstructs deleted
  // subjects' paths; only multi-rename chains may report a stale name).
  common::ManualClock clock;
  LustreFs fs(LustreFsOptions{}, clock);
  lustre::FidResolverOptions resolver_options;
  lustre::FidResolver resolver(fs, resolver_options);
  EventProcessor::FidCache cache(4096);
  EventProcessor processor(resolver, &cache, ProcessorCosts{}, "mdt0");
  RandomHistory history(fs, GetParam() + 1000);

  std::vector<RandomHistory::Expectation> expectations;
  for (int i = 0; i < 400; ++i) {
    if (auto expectation = history.step()) expectations.push_back(*expectation);
  }
  auto records = fs.mds(0).mdt().changelog().read(0, 100000);
  // One record per op (+1 for the initial /w mkdir handled before the
  // first expectation).
  ASSERT_EQ(records.size(), expectations.size() + 1);

  std::size_t events_produced = 0;
  std::size_t exact_matches = 0;
  for (std::size_t i = 1; i < records.size(); ++i) {
    auto output = processor.process(records[i]);
    ASSERT_FALSE(output.events.empty()) << records[i].to_line();
    events_produced += output.events.size();
    const auto& expected = expectations[i - 1];
    if (output.events[0].path == expected.path) ++exact_matches;
    // Never the catastrophic fallback: parents live in this history.
    EXPECT_NE(output.events[0].path, core::kParentDirectoryRemoved);
  }
  EXPECT_GE(events_produced, expectations.size());
  // The strong property: deferred resolution still reconstructs >95% of
  // paths exactly (the remainder are files renamed after the recorded
  // op, where fid2path returns the *current* name).
  EXPECT_GT(static_cast<double>(exact_matches) / expectations.size(), 0.95);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Algorithm1PropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

TEST(DnePropertyTest, RecordsPartitionAcrossChangelogs) {
  // Every operation produces exactly one record, on exactly one MDT.
  common::ManualClock clock;
  LustreFsOptions options;
  options.mdt_count = 4;
  LustreFs fs(options, clock);
  RandomHistory history(fs, 5);
  std::size_t ops = 1;  // the initial /w mkdir
  for (int i = 0; i < 500; ++i) {
    if (history.step()) ++ops;
  }
  std::uint64_t total = 0;
  for (std::uint32_t m = 0; m < 4; ++m)
    total += fs.mds(m).mdt().changelog().total_appended();
  EXPECT_EQ(total, ops);
}

TEST(DnePropertyTest, Fid2PathConsistentAcrossAllLiveFids) {
  // For every live inode, fid2path(lookup(path)) == path.
  common::ManualClock clock;
  LustreFsOptions options;
  options.mdt_count = 4;
  LustreFs fs(options, clock);
  common::Rng rng(17);
  std::vector<std::string> paths{"/"};
  for (int i = 0; i < 200; ++i) {
    const std::string parent = paths[rng.next_below(paths.size())];
    const std::string path =
        (parent == "/" ? "" : parent) + "/n" + std::to_string(i);
    if (rng.next_bool(0.4)) {
      if (fs.mkdir(path).is_ok()) paths.push_back(path);
    } else {
      fs.create(path);
    }
  }
  std::size_t verified = 0;
  for (const auto& path : paths) {
    if (path == "/") continue;
    auto fid = fs.lookup(path);
    ASSERT_TRUE(fid.is_ok()) << path;
    auto resolved = fs.fid2path(*fid);
    ASSERT_TRUE(resolved.is_ok()) << path;
    EXPECT_EQ(resolved.value(), path);
    ++verified;
  }
  EXPECT_GT(verified, 50u);
}

}  // namespace
}  // namespace fsmon::scalable
