#include "src/common/bounded_queue.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(BoundedQueueTest, PushPopFifo) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
}

TEST(BoundedQueueTest, TryPopEmptyReturnsNullopt) {
  BoundedQueue<int> queue(4);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(BoundedQueueTest, DropNewestRejectsWhenFull) {
  BoundedQueue<int> queue(2, OverflowPolicy::kDropNewest);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_FALSE(queue.push(3));
  EXPECT_EQ(queue.dropped(), 1u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, CloseUnblocksPoppers) {
  BoundedQueue<int> queue(4);
  std::jthread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
  });
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueueTest, CloseDrainsRemainingItems) {
  BoundedQueue<int> queue(4);
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_FALSE(queue.push(3));
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueueTest, PopBatchTakesUpToMax) {
  BoundedQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) queue.push(i);
  auto batch = queue.pop_batch(4);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0], 0);
  EXPECT_EQ(batch[3], 3);
  EXPECT_EQ(queue.size(), 6u);
}

TEST(BoundedQueueTest, PopBatchAfterCloseReturnsEmpty) {
  BoundedQueue<int> queue(4);
  queue.close();
  EXPECT_TRUE(queue.pop_batch(8).empty());
}

TEST(BoundedQueueTest, BlockingPushWaitsForSpace) {
  BoundedQueue<int> queue(1);
  queue.push(1);
  std::jthread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.pop();
  });
  // Blocks until the consumer pops, then succeeds.
  EXPECT_TRUE(queue.push(2));
  EXPECT_EQ(queue.pop(), 2);
}

TEST(BoundedQueueTest, MpmcNoLossNoDuplication) {
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 2000;
  BoundedQueue<int> queue(64);
  std::atomic<int> consumed{0};
  std::vector<std::atomic<int>> seen(kProducers * kItemsEach);

  std::vector<std::jthread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = queue.pop()) {
        seen[static_cast<std::size_t>(*v)].fetch_add(1);
        consumed.fetch_add(1);
      }
    });
  }
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kItemsEach; ++i)
          ASSERT_TRUE(queue.push(p * kItemsEach + i));
      });
    }
  }
  queue.close();
  consumers.clear();
  EXPECT_EQ(consumed.load(), kProducers * kItemsEach);
  for (const auto& count : seen) EXPECT_EQ(count.load(), 1);
}

TEST(BoundedQueueTest, CountersTrackTraffic) {
  BoundedQueue<int> queue(4);
  queue.push(1);
  queue.push(2);
  queue.pop();
  EXPECT_EQ(queue.pushed(), 2u);
  EXPECT_EQ(queue.popped(), 1u);
}

}  // namespace
}  // namespace fsmon::common
