#include "src/common/string_util.hpp"

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(SplitJoinTest, RoundTrip) {
  const auto parts = split("a/b//c", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, '/'), "a/b//c");
}

TEST(SplitTest, EmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nx"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(NormalizePathTest, Basics) {
  EXPECT_EQ(normalize_path("/a/b"), "/a/b");
  EXPECT_EQ(normalize_path("a/b"), "/a/b");
  EXPECT_EQ(normalize_path("/a//b/"), "/a/b");
  EXPECT_EQ(normalize_path("/"), "/");
  EXPECT_EQ(normalize_path(""), "/");
  EXPECT_EQ(normalize_path("/a/./b"), "/a/b");
  EXPECT_EQ(normalize_path("/a/../b"), "/b");
  EXPECT_EQ(normalize_path("/../.."), "/");
}

TEST(ParentBaseTest, Decomposition) {
  EXPECT_EQ(parent_path("/a/b"), "/a");
  EXPECT_EQ(parent_path("/a"), "/");
  EXPECT_EQ(parent_path("/"), "/");
  EXPECT_EQ(base_name("/a/b"), "b");
  EXPECT_EQ(base_name("/a"), "a");
  EXPECT_EQ(base_name("/"), "");
}

TEST(IsUnderTest, SubtreeChecks) {
  EXPECT_TRUE(is_under("/a/b", "/a"));
  EXPECT_TRUE(is_under("/a", "/a"));
  EXPECT_FALSE(is_under("/ab", "/a"));  // prefix but not a component boundary
  EXPECT_TRUE(is_under("/a", "/"));
  EXPECT_FALSE(is_under("/b/c", "/a"));
}

TEST(GlobMatchTest, Wildcards) {
  EXPECT_TRUE(glob_match("*.txt", "hello.txt"));
  EXPECT_FALSE(glob_match("*.txt", "hello.dat"));
  EXPECT_TRUE(glob_match("h?llo", "hello"));
  EXPECT_FALSE(glob_match("h?llo", "hllo"));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(glob_match("a*b*c", "aXXbYY"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
}

TEST(GlobMatchTest, StarDoesNotCrossSlash) {
  EXPECT_FALSE(glob_match("*.txt", "dir/hello.txt"));
  EXPECT_TRUE(glob_match("dir/*.txt", "dir/hello.txt"));
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
}

TEST(FormatFixedTest, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(1.0, 0), "1");
  EXPECT_EQ(format_fixed(0.005, 2), "0.01");
}

}  // namespace
}  // namespace fsmon::common
