#include "src/common/crc32.hpp"

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32 test vectors.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("abc"), 0x352441C2u);
}

TEST(Crc32Test, ChunkedEqualsWhole) {
  const std::string_view text = "the quick brown fox jumps over the lazy dog";
  const auto whole = crc32(text);
  const auto first = crc32(text.substr(0, 10));
  const auto chunked = crc32(text.substr(10), first);
  EXPECT_EQ(whole, chunked);
}

TEST(Crc32Test, DifferentInputsDiffer) {
  EXPECT_NE(crc32("hello"), crc32("hellp"));
  EXPECT_NE(crc32("hello"), crc32("hello "));
}

TEST(Crc32Test, BinaryData) {
  const std::byte data[] = {std::byte{0x00}, std::byte{0xFF}, std::byte{0x7F}};
  EXPECT_NE(crc32(std::span<const std::byte>(data, 3)), 0u);
}

}  // namespace
}  // namespace fsmon::common
