#include "src/common/resource_probe.hpp"

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(RealResourceProbeTest, SamplesRssAndCpu) {
  if (!RealResourceProbe::available()) GTEST_SKIP() << "/proc unavailable";
  RealResourceProbe probe;
  auto first = probe.sample();
  EXPECT_GT(first.rss_bytes, 0u);  // this process certainly has pages
  // Burn some CPU, then the second sample must attribute it.
  volatile double sink = 0;
  for (int i = 0; i < 8'000'000; ++i) sink += static_cast<double>(i) * 1e-9;
  auto second = probe.sample();
  EXPECT_GT(second.cpu_percent, 0.0);
  (void)sink;
}

TEST(ModeledUsageTest, CpuPercentArithmetic) {
  ModeledUsage usage;
  usage.charge_busy(std::chrono::milliseconds(250));
  usage.charge_busy(std::chrono::milliseconds(250));
  EXPECT_NEAR(usage.cpu_percent(std::chrono::seconds(1)), 50.0, 1e-9);
  EXPECT_EQ(usage.busy(), std::chrono::milliseconds(500));
  EXPECT_EQ(usage.cpu_percent(Duration::zero()), 0.0);
}

TEST(ModeledUsageTest, PeakMemoryTracksMaximum) {
  ModeledUsage usage;
  usage.note_memory(100);
  usage.note_memory(50);
  usage.note_memory(200);
  usage.note_memory(150);
  EXPECT_EQ(usage.peak_memory_bytes(), 200u);
  usage.reset();
  EXPECT_EQ(usage.peak_memory_bytes(), 0u);
  EXPECT_EQ(usage.busy(), Duration::zero());
}

}  // namespace
}  // namespace fsmon::common
