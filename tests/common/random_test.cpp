#include "src/common/random.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.next_range(3, 2), std::invalid_argument);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(11);
  const double rate = 4.0;
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(RngTest, GammaMeanAndVariance) {
  // Filebench's file-size distribution: shape 1.5, mean 16384.
  Rng rng(13);
  const double shape = 1.5;
  const double scale = 16384.0 / shape;
  const int n = 60'000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gamma(shape, scale);
    EXPECT_GT(v, 0.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 16384.0, 16384.0 * 0.03);
  EXPECT_NEAR(var, shape * scale * scale, shape * scale * scale * 0.10);
}

TEST(RngTest, GammaShapeBelowOne) {
  Rng rng(17);
  const int n = 40'000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.next_gamma(0.5, 2.0);
  EXPECT_NEAR(sum / n, 1.0, 0.05);  // mean = shape * scale
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  const int n = 60'000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(ZipfSamplerTest, RankOneMostPopular) {
  Rng rng(23);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50'000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfSamplerTest, SkewZeroIsUniform) {
  Rng rng(29);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(ZipfSamplerTest, ZipfFrequencyRatio) {
  // With skew 1, rank-1 should be ~2x rank-2.
  Rng rng(31);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 400'000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.25);
}

TEST(ZipfSamplerTest, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace fsmon::common
