#include "src/common/config.hpp"

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(ConfigTest, ParseArgsSplitsPairsAndPositionals) {
  const char* argv[] = {"prog", "key=value", "positional", "n=42"};
  Config config;
  const auto positional = config.parse_args(4, argv);
  ASSERT_EQ(positional.size(), 1u);
  EXPECT_EQ(positional[0], "positional");
  EXPECT_EQ(config.get_or("key", ""), "value");
  EXPECT_EQ(config.get_int("n", 0), 42);
}

TEST(ConfigTest, ParseTextWithCommentsAndBlanks) {
  Config config;
  config.parse_text("# comment\n\nrate = 9593\nname= iota \n");
  EXPECT_EQ(config.get_int("rate", 0), 9593);
  EXPECT_EQ(config.get_or("name", ""), "iota");
}

TEST(ConfigTest, MalformedLineThrows) {
  Config config;
  EXPECT_THROW(config.parse_text("no_equals_here"), std::invalid_argument);
}

TEST(ConfigTest, TypedAccessors) {
  Config config;
  config.set("d", "2.5");
  config.set("b1", "true");
  config.set("b2", "off");
  EXPECT_DOUBLE_EQ(config.get_double("d", 0), 2.5);
  EXPECT_TRUE(config.get_bool("b1", false));
  EXPECT_FALSE(config.get_bool("b2", true));
  EXPECT_EQ(config.get_int("missing", 7), 7);
  EXPECT_FALSE(config.get("missing").has_value());
}

TEST(ConfigTest, BadBoolThrows) {
  Config config;
  config.set("b", "maybe");
  EXPECT_THROW(config.get_bool("b", false), std::invalid_argument);
}

}  // namespace
}  // namespace fsmon::common
