#include "src/common/lru_cache.hpp"

#include <string>

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(LruCacheTest, RejectsZeroCapacity) {
  EXPECT_THROW((LruCache<int, int>(0)), std::invalid_argument);
}

TEST(LruCacheTest, MissOnEmpty) {
  LruCache<int, std::string> cache(4);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(LruCacheTest, PutThenGet) {
  LruCache<int, std::string> cache(4);
  cache.put(1, "one");
  auto v = cache.get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "one");
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(LruCacheTest, OverwriteUpdatesValue) {
  LruCache<int, std::string> cache(4);
  cache.put(1, "one");
  cache.put(1, "uno");
  EXPECT_EQ(*cache.get(1), "uno");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, OverwriteIsNotCountedAsInsertion) {
  LruCache<int, int> cache(4);
  cache.put(1, 10);
  cache.put(1, 11);  // overwrite: updates value, not an insertion
  cache.put(2, 20);
  EXPECT_EQ(cache.stats().insertions, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(3);
  cache.put(1, 1);
  cache.put(2, 2);
  cache.put(3, 3);
  cache.get(1);     // 1 becomes most recent; 2 is now LRU
  cache.put(4, 4);  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, PutPromotesExistingEntry) {
  LruCache<int, int> cache(2);
  cache.put(1, 1);
  cache.put(2, 2);
  cache.put(1, 10);  // promotes 1; 2 is LRU
  cache.put(3, 3);   // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruCacheTest, EraseRemovesEntry) {
  LruCache<int, int> cache(2);
  cache.put(1, 1);
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, PeekDoesNotPromoteOrCount) {
  LruCache<int, int> cache(2);
  cache.put(1, 1);
  cache.put(2, 2);
  EXPECT_EQ(*cache.peek(1), 1);  // does not promote 1
  const auto hits = cache.stats().hits;
  cache.put(3, 3);  // evicts 1 (still LRU despite peek)
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.stats().hits, hits);
}

TEST(LruCacheTest, LruKeyTracksOrder) {
  LruCache<int, int> cache(3);
  cache.put(1, 1);
  cache.put(2, 2);
  EXPECT_EQ(cache.lru_key(), 1);
  cache.get(1);
  EXPECT_EQ(cache.lru_key(), 2);
}

TEST(LruCacheTest, ClearEmptiesCache) {
  LruCache<int, int> cache(3);
  cache.put(1, 1);
  cache.put(2, 2);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(LruCacheTest, HitRateComputation) {
  LruCache<int, int> cache(2);
  cache.put(1, 1);
  cache.get(1);
  cache.get(1);
  cache.get(2);  // miss
  EXPECT_NEAR(cache.stats().hit_rate(), 2.0 / 3.0, 1e-9);
}

// Property: a cache of capacity C never holds more than C entries, and a
// sequential scan over K > C keys evicts in strict insertion order.
class LruCapacityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LruCapacityTest, NeverExceedsCapacityAndEvictsInOrder) {
  const std::size_t capacity = GetParam();
  LruCache<std::size_t, std::size_t> cache(capacity);
  const std::size_t total = capacity * 3;
  for (std::size_t i = 0; i < total; ++i) {
    cache.put(i, i);
    EXPECT_LE(cache.size(), capacity);
    if (i >= capacity) {
      // Oldest surviving key is exactly i - capacity + 1.
      EXPECT_EQ(cache.lru_key(), i - capacity + 1);
      EXPECT_FALSE(cache.contains(i - capacity));
    }
  }
  EXPECT_EQ(cache.stats().evictions, total - capacity);
}

INSTANTIATE_TEST_SUITE_P(Capacities, LruCapacityTest,
                         ::testing::Values(1, 2, 3, 8, 64, 1000));

}  // namespace
}  // namespace fsmon::common
