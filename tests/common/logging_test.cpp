#include "src/common/logging.hpp"

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = log_level();
    set_log_sink([this](LogLevel level, const std::string& line) {
      captured_.emplace_back(level, line);
    });
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(saved_level_);
  }

  LogLevel saved_level_ = LogLevel::kWarn;
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, LevelFiltering) {
  set_log_level(LogLevel::kWarn);
  FSMON_DEBUG("test", "dropped");
  FSMON_INFO("test", "dropped too");
  FSMON_WARN("test", "kept");
  FSMON_ERROR("test", "kept too");
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured_[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  FSMON_ERROR("test", "nope");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, MessageFormatting) {
  set_log_level(LogLevel::kDebug);
  FSMON_INFO("component", "value=", 42, " rate=", 1.5);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "component: value=42 rate=1.5");
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace fsmon::common
