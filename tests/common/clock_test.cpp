#include "src/common/clock.hpp"

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(RealClockTest, Monotonic) {
  RealClock clock;
  const auto a = clock.now();
  const auto b = clock.now();
  EXPECT_LE(a, b);
}

TEST(RealClockTest, SleepForAdvancesAtLeastDuration) {
  RealClock clock;
  const auto start = clock.now();
  clock.sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(clock.now() - start, std::chrono::milliseconds(10));
}

TEST(ManualClockTest, StartsAtGivenTime) {
  ManualClock clock(TimePoint{std::chrono::seconds(5)});
  EXPECT_EQ(clock.now().time_since_epoch(), std::chrono::seconds(5));
}

TEST(ManualClockTest, AdvanceMovesForward) {
  ManualClock clock;
  clock.advance(std::chrono::milliseconds(100));
  EXPECT_EQ(clock.now().time_since_epoch(), std::chrono::milliseconds(100));
}

TEST(ManualClockTest, SleepForAdvances) {
  ManualClock clock;
  clock.sleep_for(std::chrono::seconds(1));
  EXPECT_EQ(clock.now().time_since_epoch(), std::chrono::seconds(1));
}

TEST(ManualClockTest, NegativeAdvanceIsNoOp) {
  ManualClock clock;
  clock.advance(std::chrono::seconds(-1));
  EXPECT_EQ(clock.now().time_since_epoch(), Duration::zero());
}

TEST(ManualClockTest, SetForwardOk) {
  ManualClock clock;
  clock.set(TimePoint{std::chrono::seconds(3)});
  EXPECT_EQ(clock.now().time_since_epoch(), std::chrono::seconds(3));
}

TEST(ManualClockTest, SetBackwardThrows) {
  ManualClock clock(TimePoint{std::chrono::seconds(10)});
  EXPECT_THROW(clock.set(TimePoint{std::chrono::seconds(1)}), std::invalid_argument);
}

}  // namespace
}  // namespace fsmon::common
