#include "src/common/rate_meter.hpp"

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(RateMeterTest, AverageRateOverManualClock) {
  ManualClock clock;
  RateMeter meter(clock);
  clock.advance(std::chrono::seconds(1));
  meter.record(100);
  clock.advance(std::chrono::seconds(1));
  meter.record(100);
  EXPECT_NEAR(meter.average_rate(), 100.0, 1e-9);  // 200 events over 2s
  EXPECT_EQ(meter.count(), 200u);
}

TEST(RateMeterTest, WindowedRateEvictsOldSamples) {
  ManualClock clock;
  RateMeter meter(clock, std::chrono::seconds(1));
  meter.record(50);
  clock.advance(std::chrono::milliseconds(500));
  meter.record(50);
  EXPECT_NEAR(meter.windowed_rate(), 100.0, 1e-9);
  clock.advance(std::chrono::milliseconds(600));  // first sample now stale
  EXPECT_NEAR(meter.windowed_rate(), 50.0, 1e-9);
  clock.advance(std::chrono::seconds(2));
  EXPECT_NEAR(meter.windowed_rate(), 0.0, 1e-9);
}

TEST(RateMeterTest, ResetClearsState) {
  ManualClock clock;
  RateMeter meter(clock);
  meter.record(10);
  clock.advance(std::chrono::seconds(1));
  meter.reset();
  EXPECT_EQ(meter.count(), 0u);
  clock.advance(std::chrono::seconds(1));
  meter.record(5);
  EXPECT_NEAR(meter.average_rate(), 5.0, 1e-9);
}

TEST(RateMeterTest, ZeroElapsedGivesZeroRate) {
  ManualClock clock;
  RateMeter meter(clock);
  meter.record(10);
  EXPECT_EQ(meter.average_rate(), 0.0);
}

}  // namespace
}  // namespace fsmon::common
