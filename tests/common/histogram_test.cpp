#include "src/common/histogram.hpp"

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (std::uint64_t v : {10, 20, 30, 40}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(HistogramTest, QuantileWithinBucketBounds) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(100);
  // 100 falls in bucket [64, 128).
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 128.0);
}

TEST(HistogramTest, QuantileOrdering) {
  Histogram h;
  for (std::uint64_t i = 1; i <= 10'000; ++i) h.record(i);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.record(5);
  b.record(500);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 500u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SummaryContainsFields) {
  Histogram h;
  h.record(7);
  const auto s = h.summary("ns");
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace fsmon::common
