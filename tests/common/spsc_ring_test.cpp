#include "src/common/spsc_ring.hpp"

#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  SpscRing<int> tiny(1);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(SpscRingTest, PushPopSingle) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.try_push(42));
  auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRingTest, FullRingRejectsPush) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  ring.try_pop();
  EXPECT_TRUE(ring.try_push(3));
}

TEST(SpscRingTest, PreservesFifoOrder) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ring.try_push(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ring.try_pop(), i);
}

TEST(SpscRingTest, CrossThreadTransferIsLossless) {
  constexpr std::size_t kCount = 200'000;
  SpscRing<std::size_t> ring(1024);
  std::uint64_t sum = 0;
  std::jthread consumer([&] {
    std::size_t received = 0;
    while (received < kCount) {
      if (auto v = ring.try_pop()) {
        sum += *v;
        ++received;
      }
    }
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    while (!ring.try_push(i)) {
    }
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(SpscRingTest, IndicesWrapAroundManyTimes) {
  // Head/tail are free-running counters masked into the slot array; push
  // and pop far more items than the capacity so the indices lap the ring
  // repeatedly and FIFO order must survive every wrap.
  SpscRing<int> ring(4);
  ASSERT_EQ(ring.capacity(), 4u);
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    // Vary the burst size so wrap points land at every slot offset.
    const int burst = 1 + round % static_cast<int>(ring.capacity());
    for (int i = 0; i < burst; ++i) ASSERT_TRUE(ring.try_push(next_push++));
    for (int i = 0; i < burst; ++i) {
      auto v = ring.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_pop++);
    }
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRingTest, FullAndEmptyEdgesInterleave) {
  // Drive the ring to its full and empty edges repeatedly: a full ring
  // refuses exactly one push, one pop reopens exactly one slot, and an
  // emptied ring refuses pops until the next push.
  SpscRing<int> ring(2);
  for (int round = 0; round < 50; ++round) {
    EXPECT_EQ(ring.size_approx(), 0u);
    EXPECT_FALSE(ring.try_pop().has_value());
    ASSERT_TRUE(ring.try_push(2 * round));
    ASSERT_TRUE(ring.try_push(2 * round + 1));
    EXPECT_EQ(ring.size_approx(), 2u);
    EXPECT_FALSE(ring.try_push(-1));  // full edge
    EXPECT_EQ(ring.try_pop(), 2 * round);
    ASSERT_TRUE(ring.try_push(2 * round + 2));  // one pop frees one slot
    EXPECT_FALSE(ring.try_push(-1));            // full again
    EXPECT_EQ(ring.try_pop(), 2 * round + 1);
    EXPECT_EQ(ring.try_pop(), 2 * round + 2);
    EXPECT_FALSE(ring.try_pop().has_value());  // empty edge
  }
}

TEST(SpscRingTest, MoveOnlyPayloadsTransferAcrossThreads) {
  // TSan stress with a heap-owning, move-only payload: any data race on a
  // slot would show up as a use-after-free / torn unique_ptr rather than
  // just a wrong integer. The tiny capacity keeps both threads grinding
  // on the full and empty edges where the acquire/release pairs matter.
  constexpr std::size_t kCount = 50'000;
  SpscRing<std::unique_ptr<std::size_t>> ring(2);
  std::uint64_t sum = 0;
  std::size_t received = 0;
  std::jthread consumer([&] {
    while (received < kCount) {
      if (auto v = ring.try_pop()) {
        ASSERT_TRUE(*v != nullptr);
        EXPECT_EQ(**v, received);
        sum += **v;
        ++received;
      }
    }
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    auto item = std::make_unique<std::size_t>(i);
    while (!ring.try_push(std::move(item))) {
      // try_push takes the payload by value; on refusal the moved-from
      // wrapper in the caller is empty, so rebuild before retrying.
      if (item == nullptr) item = std::make_unique<std::size_t>(i);
    }
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(SpscRingTest, BurstyProducerAndConsumerStayLossless) {
  // Bursty schedule: the producer pushes in ragged bursts with yields
  // between them while the consumer drains in its own bursts, so the
  // threads keep crossing the empty and full boundaries concurrently.
  constexpr std::size_t kCount = 100'000;
  SpscRing<std::size_t> ring(8);
  std::vector<std::size_t> seen;
  seen.reserve(kCount);
  std::jthread consumer([&] {
    std::size_t burst = 1;
    while (seen.size() < kCount) {
      for (std::size_t i = 0; i < burst && seen.size() < kCount; ++i) {
        if (auto v = ring.try_pop()) seen.push_back(*v);
      }
      burst = burst % 7 + 1;
      std::this_thread::yield();
    }
  });
  std::size_t pushed = 0, burst = 1;
  while (pushed < kCount) {
    for (std::size_t i = 0; i < burst && pushed < kCount; ++i) {
      while (!ring.try_push(pushed)) {
      }
      ++pushed;
    }
    burst = burst % 5 + 1;
    std::this_thread::yield();
  }
  consumer.join();
  ASSERT_EQ(seen.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(seen[i], i) << "reordered at index " << i;
  }
}

}  // namespace
}  // namespace fsmon::common
