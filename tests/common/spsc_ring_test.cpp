#include "src/common/spsc_ring.hpp"

#include <thread>

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  SpscRing<int> tiny(1);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(SpscRingTest, PushPopSingle) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.try_push(42));
  auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRingTest, FullRingRejectsPush) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  ring.try_pop();
  EXPECT_TRUE(ring.try_push(3));
}

TEST(SpscRingTest, PreservesFifoOrder) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ring.try_push(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ring.try_pop(), i);
}

TEST(SpscRingTest, CrossThreadTransferIsLossless) {
  constexpr std::size_t kCount = 200'000;
  SpscRing<std::size_t> ring(1024);
  std::uint64_t sum = 0;
  std::jthread consumer([&] {
    std::size_t received = 0;
    while (received < kCount) {
      if (auto v = ring.try_pop()) {
        sum += *v;
        ++received;
      }
    }
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    while (!ring.try_push(i)) {
    }
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

}  // namespace
}  // namespace fsmon::common
