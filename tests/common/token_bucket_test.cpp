#include "src/common/token_bucket.hpp"

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(TokenBucketTest, StartsFull) {
  ManualClock clock;
  TokenBucket bucket(clock, 10.0, 5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire());
}

TEST(TokenBucketTest, RefillsAtRate) {
  ManualClock clock;
  TokenBucket bucket(clock, 10.0, 5.0);  // 10 tokens/s
  while (bucket.try_acquire()) {
  }
  clock.advance(std::chrono::milliseconds(100));  // +1 token
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire());
}

TEST(TokenBucketTest, BurstCapsAccumulation) {
  ManualClock clock;
  TokenBucket bucket(clock, 100.0, 3.0);
  clock.advance(std::chrono::seconds(10));  // would be 1000 tokens; capped at 3
  EXPECT_TRUE(bucket.try_acquire(3.0));
  EXPECT_FALSE(bucket.try_acquire(0.5));
}

TEST(TokenBucketTest, TimeUntilAvailable) {
  ManualClock clock;
  TokenBucket bucket(clock, 10.0, 1.0);
  EXPECT_EQ(bucket.time_until_available(1.0), Duration::zero());
  bucket.try_acquire(1.0);
  const auto wait = bucket.time_until_available(1.0);
  EXPECT_NEAR(to_seconds(wait), 0.1, 1e-6);
}

TEST(TokenBucketTest, InvalidParamsThrow) {
  ManualClock clock;
  EXPECT_THROW(TokenBucket(clock, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(clock, 1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace fsmon::common
