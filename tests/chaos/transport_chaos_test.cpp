// Transport-layer chaos: the exactly-once pipeline guarantees must hold
// no matter which carrier the stages ride. The 4-shard crash/restart
// sweep and the refused-send rewind protocol run identically over the
// in-process bus, the shared-memory rings and TCP sockets; the
// transport.shm.full lever turns ring backpressure into a refusal
// instead of a stuck sender; and a torn WAL group commit
// (wal.group_commit_torn) must ack NOTHING in the crashed group — the
// durable prefix dedups on replay, the unacked suffix is re-published.
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/chaos/fault.hpp"
#include "src/common/random.hpp"
#include "src/core/event.hpp"
#include "src/obs/metrics.hpp"
#include "src/scalable/scalable_monitor.hpp"
#include "src/transport/inproc.hpp"
#include "src/transport/shm.hpp"
#include "src/transport/tcp.hpp"

namespace fsmon::scalable {
namespace {

using core::StdEvent;
using lustre::LustreFs;
using lustre::LustreFsOptions;

bool sockets_available() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

struct EventKey {
  std::string source;
  std::uint64_t cookie = 0;
  int kind = 0;

  bool operator<(const EventKey& other) const {
    return std::tie(source, cookie, kind) <
           std::tie(other.source, other.cookie, other.kind);
  }
  bool operator==(const EventKey& other) const = default;
};

using KeyCounts = std::map<EventKey, int>;

EventKey key_of(const StdEvent& event) {
  return EventKey{event.source, event.cookie, static_cast<int>(event.kind)};
}

/// Same seeded workload shape as shard_chaos_test: creates / renames /
/// unlinks / mkdirs spread over the MDTs by DNE hashing.
class ChaosWorkload {
 public:
  ChaosWorkload(LustreFs& fs, std::uint64_t seed) : fs_(fs), rng_(seed) {
    for (int i = 0; i < 8; ++i) {
      const std::string dir = "/d" + std::to_string(i);
      if (fs_.mkdir(dir).is_ok()) dirs_.push_back(dir);
    }
  }

  void step() {
    const double p = rng_.next_double();
    if (p < 0.6 || live_.empty()) {
      const std::string path =
          dirs_[rng_.next_below(dirs_.size())] + "/f" + std::to_string(next_++);
      if (fs_.create(path).is_ok()) live_.push_back(path);
    } else if (p < 0.75) {
      const std::size_t victim = rng_.next_below(live_.size());
      const std::string to =
          dirs_[rng_.next_below(dirs_.size())] + "/r" + std::to_string(next_++);
      if (fs_.rename(live_[victim], to).is_ok()) live_[victim] = to;
    } else if (p < 0.9) {
      const std::size_t victim = rng_.next_below(live_.size());
      if (fs_.unlink(live_[victim]).is_ok()) {
        live_[victim] = live_.back();
        live_.pop_back();
      }
    } else {
      fs_.mkdir("/m" + std::to_string(next_++));
    }
  }

 private:
  LustreFs& fs_;
  common::Rng rng_;
  std::vector<std::string> dirs_;
  std::vector<std::string> live_;
  int next_ = 0;
};

class TransportChaosTest : public ::testing::TestWithParam<transport::TransportKind> {
 protected:
  void SetUp() override {
    if (GetParam() == transport::TransportKind::kTcp && !sockets_available()) {
      GTEST_SKIP() << "sockets unavailable";
    }
    // The parameterized test name contains '/'; flatten it for the path.
    std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (auto& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_transportchaos_" + std::to_string(::getpid()) + "_" + name);
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    chaos::FaultInjector::instance().disarm();
    std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<transport::Transport> make_transport() {
    switch (GetParam()) {
      case transport::TransportKind::kInProc:
        return std::make_unique<transport::InProcTransport>(transport_bus_);
      case transport::TransportKind::kShm:
        return std::make_unique<transport::ShmTransport>();
      case transport::TransportKind::kTcp:
        return std::make_unique<transport::TcpTransport>();
    }
    return nullptr;
  }

  ScalableMonitorOptions options(transport::Transport* transport) {
    ScalableMonitorOptions o;
    o.shards = 4;
    o.transport = transport;
    eventstore::EventStoreOptions store;
    store.directory = dir_;
    o.aggregator.store = store;
    return o;
  }

  void babysit(ScalableMonitor& monitor) {
    for (std::size_t i = 0; i < monitor.collector_count(); ++i) {
      if (monitor.collector(i).crashed()) {
        EXPECT_TRUE(monitor.restart_collector(i).is_ok());
      }
    }
    for (std::size_t k = 0; k < monitor.sharded().shard_count(); ++k) {
      if (monitor.sharded().shard(k).crashed()) {
        EXPECT_TRUE(monitor.restart_aggregator_shard(k).is_ok());
      }
    }
  }

  void run_with_babysitter(ScalableMonitor& monitor, ChaosWorkload& workload,
                           int ops) {
    for (int i = 0; i < ops; ++i) {
      workload.step();
      if (i % 4 == 3) {
        babysit(monitor);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }

  void settle(ScalableMonitor& monitor, LustreFs& fs) {
    chaos::FaultInjector::instance().disarm();
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      babysit(monitor);
      bool cleared = true;
      for (std::uint32_t i = 0; i < fs.mdt_count(); ++i) {
        if (fs.mds(i).mdt().changelog().retained() != 0) {
          cleared = false;
          break;
        }
      }
      if (cleared) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::string retained;
    for (std::uint32_t i = 0; i < fs.mdt_count(); ++i)
      retained += " MDT" + std::to_string(i) + "=" +
                  std::to_string(fs.mds(i).mdt().changelog().retained());
    FAIL() << "pipeline did not settle; retained records:" << retained;
  }

  KeyCounts collect_store(ScalableMonitor& monitor) {
    KeyCounts counts;
    VectorCursor cursor;
    auto events = monitor.sharded().events_since(cursor);
    EXPECT_TRUE(events.is_ok()) << events.status().to_string();
    if (!events.is_ok()) return counts;
    for (const auto& event : events.value()) ++counts[key_of(event)];
    return counts;
  }

  void verify_exactly_once(const KeyCounts& observed, LustreFs& fs,
                           const std::string& what) {
    for (const auto& [key, count] : observed) {
      EXPECT_EQ(count, 1) << what << ": (" << key.source << ", cookie " << key.cookie
                          << ", kind " << key.kind << ") seen " << count << " times";
    }
    for (std::uint32_t i = 0; i < fs.mdt_count(); ++i) {
      const std::string source = "lustre:MDT" + std::to_string(i);
      std::set<std::uint64_t> seen;
      for (const auto& [key, count] : observed) {
        if (key.source == source) seen.insert(key.cookie);
      }
      const std::uint64_t last = fs.mds(i).mdt().changelog().last_index();
      for (std::uint64_t cookie = 1; cookie <= last; ++cookie) {
        EXPECT_TRUE(seen.count(cookie) > 0)
            << what << " lost " << source << " record " << cookie;
      }
      EXPECT_EQ(seen.size(), last) << what << ": " << source;
    }
  }

  void wait_until(const std::function<bool()>& predicate) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!predicate() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(predicate());
  }

  msgq::Bus transport_bus_;
  std::filesystem::path dir_;
  common::RealClock clock_;
};

/// Same store/consumer cross-check as shard_chaos_test.
#define VERIFY_PIPELINE(monitor, fs, consumer_counts, consumer_mu)                \
  do {                                                                            \
    settle(monitor, fs);                                                          \
    const KeyCounts store_counts = collect_store(monitor);                        \
    verify_exactly_once(store_counts, fs, "store");                               \
    std::set<std::pair<std::string, std::uint64_t>> store_pairs;                  \
    for (const auto& [key, count] : store_counts)                                 \
      store_pairs.emplace(key.source, key.cookie);                                \
    wait_until([&] {                                                              \
      std::lock_guard lock(consumer_mu);                                          \
      std::set<std::pair<std::string, std::uint64_t>> pairs;                      \
      for (const auto& [key, count] : consumer_counts)                            \
        pairs.emplace(key.source, key.cookie);                                    \
      return pairs.size() >= store_pairs.size();                                  \
    });                                                                           \
    std::lock_guard lock(consumer_mu);                                            \
    verify_exactly_once(consumer_counts, fs, "consumer");                         \
    std::set<std::pair<std::string, std::uint64_t>> consumer_pairs;               \
    for (const auto& [key, count] : consumer_counts)                              \
      consumer_pairs.emplace(key.source, key.cookie);                             \
    EXPECT_EQ(consumer_pairs, store_pairs);                                       \
  } while (0)

TEST_P(TransportChaosTest, FourShardCrashSweepIsExactlyOnce) {
  LustreFsOptions fs_options;
  fs_options.mdt_count = 4;  // MDT i -> shard i: every shard owns traffic
  LustreFs fs(fs_options, clock_);
  auto transport = make_transport();
  ScalableMonitor monitor(fs, options(transport.get()), clock_);
  std::mutex mu;
  KeyCounts delivered;
  auto consumer = monitor.make_consumer("c", ConsumerOptions{}, [&](const StdEvent& e) {
    std::lock_guard lock(mu);
    ++delivered[key_of(e)];
  });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  // Kill shards mid-stream with frames buffered in their inboxes. The
  // dead shard's carrier endpoints go down with it — over TCP the
  // restart must literally re-dial the collector senders — and its
  // unpersisted events must be re-published by the rewound owner
  // collectors while the other three shards keep flowing.
  ChaosWorkload workload(fs, 91);
  for (int round = 0; round < 2; ++round) {
    const std::size_t victim = static_cast<std::size_t>(round * 2 + 1) % 4;
    for (int i = 0; i < 25; ++i) workload.step();
    monitor.crash_aggregator_shard(victim);
    run_with_babysitter(monitor, workload, 15);
    babysit(monitor);
  }
  for (int i = 0; i < 20; ++i) workload.step();

  VERIFY_PIPELINE(monitor, fs, delivered, mu);
  consumer->stop();
  monitor.stop();
}

TEST_P(TransportChaosTest, RefusedSendsRewindCollectorsExactlyOnce) {
  // transport.before_send turns individual sends into refusals. The
  // collector must treat every refusal as a rewind signal regardless of
  // carrier: the refused records stay retained in the changelog and the
  // run replays contiguously, so the merged store view is exactly-once.
  LustreFsOptions fs_options;
  fs_options.mdt_count = 4;
  LustreFs fs(fs_options, clock_);
  auto transport = make_transport();
  ScalableMonitor monitor(fs, options(transport.get()), clock_);
  ASSERT_TRUE(monitor.start().is_ok());

  chaos::FaultPlan plan;
  plan.seed = 7;
  chaos::FaultRule rule;
  rule.point = "transport.before_send";
  rule.action = chaos::FaultAction::kDrop;
  rule.probability = 0.35;
  rule.max_fires = 10;
  plan.rules.push_back(rule);
  chaos::FaultInjector::instance().arm(std::move(plan));

  ChaosWorkload workload(fs, 123);
  run_with_babysitter(monitor, workload, 160);

  settle(monitor, fs);
  verify_exactly_once(collect_store(monitor), fs, "store");
  monitor.stop();
}

TEST_P(TransportChaosTest, CrashWindowReplayRecoversWithoutBabysitterRewind) {
  // Deterministic regression for the reconnect suffix-loss race that
  // made FourShardCrashSweepIsExactlyOnce/tcp flake (~1 in 3 runs): a
  // collector that publishes into the window between a shard's teardown
  // and its re-dial used to see receivers == 0 over TCP ("nobody ever
  // listened") and advance past frames no one received. Once the shard
  // came back, every later frame sat above the hole and was gap-refused
  // forever — the suffix was lost from the store AND the consumer, and
  // the pipeline wedged. This test forces that exact interleaving:
  // crash a shard, wait until its collector has read and published the
  // fresh records into the closed window, then restart the shard
  // *without* the monitor-level babysitter rewind. Recovery must come
  // from the transport tier itself (vanished-receiver sends surface as
  // refusals -> collector rewinds) backed by the aggregator's
  // gap-refusal nack. Pre-fix this fails deterministically on TCP.
  LustreFsOptions fs_options;
  fs_options.mdt_count = 4;
  LustreFs fs(fs_options, clock_);
  auto transport = make_transport();
  ScalableMonitor monitor(fs, options(transport.get()), clock_);
  std::mutex mu;
  KeyCounts delivered;
  auto consumer = monitor.make_consumer("c", ConsumerOptions{}, [&](const StdEvent& e) {
    std::lock_guard lock(mu);
    ++delivered[key_of(e)];
  });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  // Warm-up traffic, fully acked and cleared: the victim shard's
  // watermark is established, so any suffix lost in the crash window
  // opens a detectable gap right above it.
  ChaosWorkload workload(fs, 17);
  for (int i = 0; i < 30; ++i) workload.step();
  settle(monitor, fs);

  const std::size_t victim = 1;
  const std::uint64_t before = fs.mds(victim).mdt().changelog().last_index();
  const std::uint64_t processed_before = monitor.collector(victim).records_processed();
  monitor.crash_aggregator_shard(victim);

  // Generate records for the dead shard and wait until its collector
  // has read past all of them — every publish of that run lands in the
  // closed window.
  for (int i = 0; i < 60; ++i) workload.step();
  const std::uint64_t added =
      fs.mds(victim).mdt().changelog().last_index() - before;
  ASSERT_GT(added, 0u) << "workload never touched the victim MDT";
  wait_until([&] {
    return monitor.collector(victim).records_processed() >= processed_before + added;
  });
  // The counter advances during processing; give the trailing publish
  // calls a beat to complete inside the closed window.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Restart the shard directly — deliberately NOT through
  // restart_aggregator_shard, which would rewind the collector and mask
  // the bug. The unacked suffix must come back on its own.
  ASSERT_TRUE(monitor.sharded().shard(victim).restart().is_ok());
  // A little post-restart traffic exercises the gap-refusal nack path
  // too: frames above the hole are refused until the rewind heals it.
  for (int i = 0; i < 10; ++i) workload.step();

  VERIFY_PIPELINE(monitor, fs, delivered, mu);
  consumer->stop();
  monitor.stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TransportChaosTest,
    ::testing::Values(transport::TransportKind::kInProc,
                      transport::TransportKind::kShm,
                      transport::TransportKind::kTcp),
    [](const ::testing::TestParamInfo<transport::TransportKind>& info) {
      return std::string(transport::to_string(info.param));
    });

class ShmFullChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { chaos::FaultInjector::instance().disarm(); }
};

TEST_F(ShmFullChaosTest, FullRingFaultTurnsBackpressureIntoRefusal) {
  // A full ring normally blocks the sender until the receiver releases
  // records. The transport.shm.full point breaks that wait into a
  // refusal — the same signal a closed inbox produces — so chaos plans
  // can exercise the rewind path without a stuck producer thread.
  transport::ShmTransportOptions options;
  options.ring_bytes = 1024;
  transport::ShmTransport transport(options);
  obs::MetricsRegistry registry;
  transport.attach_metrics(&registry);
  auto sender = transport.make_sender("s");
  auto receiver = transport.make_receiver("r", 1024, transport::OverflowPolicy::kBlock);
  receiver->subscribe("");
  sender->connect(receiver);

  // Two records of 16B header + 1B topic + 480B payload, padded to 504,
  // fill the 1024-byte ring; a third cannot fit until one is reclaimed.
  const std::string payload(480, 'x');
  ASSERT_EQ(sender->send("t", transport::FrameRef::adopt(std::string(payload))).accepted,
            1u);
  ASSERT_EQ(sender->send("t", transport::FrameRef::adopt(std::string(payload))).accepted,
            1u);

  chaos::FaultPlan plan;
  chaos::FaultRule rule;
  rule.point = "transport.shm.full";
  rule.action = chaos::FaultAction::kFail;
  rule.max_fires = 1;
  plan.rules.push_back(rule);
  chaos::FaultInjector::instance().arm(std::move(plan));

  const auto refused = sender->send("t", transport::FrameRef::adopt(std::string(payload)));
  EXPECT_EQ(refused.accepted, 0u);
  EXPECT_TRUE(refused.refused());
  EXPECT_GE(registry.snapshot().counter_total("transport.ring_full_waits"), 1u);

  chaos::FaultInjector::instance().disarm();
  // Drain the ring (dropping each frame releases its record) and the
  // refused send goes through on retry — nothing was lost or wedged.
  for (int i = 0; i < 2; ++i) {
    auto frame = receiver->recv(std::chrono::milliseconds(1000));
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->payload.size(), payload.size());
  }
  const auto retried = sender->send("t", transport::FrameRef::adopt(std::string(payload)));
  EXPECT_EQ(retried.accepted, 1u);
  auto frame = receiver->recv(std::chrono::milliseconds(1000));
  ASSERT_TRUE(frame.has_value());
}

class GroupCommitChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_groupchaos_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    chaos::FaultInjector::instance().disarm();
    std::filesystem::remove_all(dir_);
  }

  static std::string make_frame(const std::string& source,
                                std::uint64_t first_cookie, int count) {
    core::EventBatch batch;
    for (int i = 0; i < count; ++i) {
      StdEvent event;
      event.source = source;
      event.cookie = first_cookie + static_cast<std::uint64_t>(i);
      event.path = "/f" + std::to_string(event.cookie);
      batch.events.push_back(std::move(event));
    }
    const auto bytes = core::encode_batch(batch);
    return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }

  std::filesystem::path dir_;
  common::RealClock clock_;
};

TEST_F(GroupCommitChaosTest, TornGroupCommitAcksNothingAndReplayRecovers) {
  msgq::Bus bus;
  AggregatorOptions options;
  eventstore::EventStoreOptions store;
  store.directory = dir_;
  options.store = store;
  // A wide straggler window so the three batches sent below coalesce
  // into one commit group before the torn fault evaluates.
  options.wal_group_commit_us = std::chrono::milliseconds(200);
  Aggregator aggregator(bus, "aggregator", options, clock_);

  std::mutex mu;
  std::map<std::string, std::uint64_t> acked;  // source -> max acked index
  std::size_t ack_calls = 0;
  aggregator.set_ack_callback([&](std::string_view source, std::uint64_t index) {
    std::lock_guard lock(mu);
    auto& high = acked[std::string(source)];
    high = std::max(high, index);
    ++ack_calls;
  });

  // kCrash with arg=1: the store keeps a one-batch durable prefix of the
  // group, but the crash lands before ANY ack is released. Acking the
  // prefix here would be wrong even though it is durable: the chaos
  // schedule promises the whole group's acks are atomic with its commit.
  chaos::FaultPlan plan;
  chaos::FaultRule rule;
  rule.point = "wal.group_commit_torn";
  rule.action = chaos::FaultAction::kCrash;
  rule.arg = 1;
  rule.max_fires = 1;
  plan.rules.push_back(rule);
  chaos::FaultInjector::instance().arm(std::move(plan));

  ASSERT_TRUE(aggregator.start().is_ok());
  auto sender = aggregator.transport().make_sender("collector");
  sender->connect(aggregator.input());
  const std::string source = "lustre:MDT0";
  for (int i = 0; i < 3; ++i) {
    const auto result = sender->send(
        "collector/MDT0",
        transport::FrameRef::adopt(make_frame(source, 1 + 2 * i, 2)));
    ASSERT_EQ(result.accepted, 1u) << "frame " << i;
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!aggregator.crashed() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(aggregator.crashed());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    std::lock_guard lock(mu);
    EXPECT_EQ(ack_calls, 0u) << "a torn group must not ack any of its batches";
  }

  // Restart and replay the whole run, as a rewound collector would. The
  // durable prefix batch dedups against the recovered watermark (its ack
  // flows as an ack-only marker), the rest persists for the first time.
  chaos::FaultInjector::instance().disarm();
  ASSERT_TRUE(aggregator.restart().is_ok());
  for (int i = 0; i < 3; ++i) {
    const auto result = sender->send(
        "collector/MDT0",
        transport::FrameRef::adopt(make_frame(source, 1 + 2 * i, 2)));
    ASSERT_EQ(result.accepted, 1u) << "replayed frame " << i;
  }
  const auto ack_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    {
      std::lock_guard lock(mu);
      if (acked[source] >= 6) break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), ack_deadline)
        << "replay never acked through record 6";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  auto events = aggregator.events_since(0);
  ASSERT_TRUE(events.is_ok()) << events.status().to_string();
  std::map<std::uint64_t, int> cookies;
  for (const auto& event : events.value()) ++cookies[event.cookie];
  EXPECT_EQ(cookies.size(), 6u);
  for (std::uint64_t cookie = 1; cookie <= 6; ++cookie) {
    EXPECT_EQ(cookies[cookie], 1) << "cookie " << cookie;
  }
  EXPECT_GE(aggregator.commit_groups(), 1u);
  aggregator.stop();
}

}  // namespace
}  // namespace fsmon::scalable
