// Sharded-tier chaos: run the exactly-once verification harness with
// the aggregator partitioned across four shards while individual shards
// crash — explicitly and through seeded per-shard fault schedules — and
// the babysitter restarts only the crashed shard (rewinding only the
// collectors that shard owns). The surviving shards keep flowing
// throughout; exactly-once per (source, cookie) must hold in the merged
// store view and at the consumer.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/chaos/fault.hpp"
#include "src/common/random.hpp"
#include "src/scalable/scalable_monitor.hpp"

namespace fsmon::scalable {
namespace {

using core::StdEvent;
using lustre::LustreFs;
using lustre::LustreFsOptions;

struct EventKey {
  std::string source;
  std::uint64_t cookie = 0;
  int kind = 0;

  bool operator<(const EventKey& other) const {
    return std::tie(source, cookie, kind) <
           std::tie(other.source, other.cookie, other.kind);
  }
  bool operator==(const EventKey& other) const = default;
};

using KeyCounts = std::map<EventKey, int>;

EventKey key_of(const StdEvent& event) {
  return EventKey{event.source, event.cookie, static_cast<int>(event.kind)};
}

/// Same seeded workload shape as chaos_pipeline_test: creates / renames /
/// unlinks / mkdirs spread over the MDTs by DNE hashing.
class ChaosWorkload {
 public:
  ChaosWorkload(LustreFs& fs, std::uint64_t seed) : fs_(fs), rng_(seed) {
    for (int i = 0; i < 8; ++i) {
      const std::string dir = "/d" + std::to_string(i);
      if (fs_.mkdir(dir).is_ok()) dirs_.push_back(dir);
    }
  }

  void step() {
    const double p = rng_.next_double();
    if (p < 0.6 || live_.empty()) {
      const std::string path =
          dirs_[rng_.next_below(dirs_.size())] + "/f" + std::to_string(next_++);
      if (fs_.create(path).is_ok()) live_.push_back(path);
    } else if (p < 0.75) {
      const std::size_t victim = rng_.next_below(live_.size());
      const std::string to =
          dirs_[rng_.next_below(dirs_.size())] + "/r" + std::to_string(next_++);
      if (fs_.rename(live_[victim], to).is_ok()) live_[victim] = to;
    } else if (p < 0.9) {
      const std::size_t victim = rng_.next_below(live_.size());
      if (fs_.unlink(live_[victim]).is_ok()) {
        live_[victim] = live_.back();
        live_.pop_back();
      }
    } else {
      fs_.mkdir("/m" + std::to_string(next_++));
    }
  }

 private:
  LustreFs& fs_;
  common::Rng rng_;
  std::vector<std::string> dirs_;
  std::vector<std::string> live_;
  int next_ = 0;
};

class ShardChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_shardchaos_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    chaos::FaultInjector::instance().disarm();
    std::filesystem::remove_all(dir_);
  }

  ScalableMonitorOptions options(const std::filesystem::path& store_dir) {
    ScalableMonitorOptions o;
    o.shards = 4;
    eventstore::EventStoreOptions store;
    store.directory = store_dir;
    o.aggregator.store = store;
    return o;
  }

  /// Per-shard babysitter: a crashed shard is restarted individually —
  /// restart_aggregator_shard rewinds only that shard's collectors, the
  /// rest of the tier is never touched.
  void babysit(ScalableMonitor& monitor) {
    for (std::size_t i = 0; i < monitor.collector_count(); ++i) {
      if (monitor.collector(i).crashed()) {
        EXPECT_TRUE(monitor.restart_collector(i).is_ok());
      }
    }
    for (std::size_t k = 0; k < monitor.sharded().shard_count(); ++k) {
      if (monitor.sharded().shard(k).crashed()) {
        EXPECT_TRUE(monitor.restart_aggregator_shard(k).is_ok());
      }
    }
  }

  void run_with_babysitter(ScalableMonitor& monitor, ChaosWorkload& workload,
                           int ops) {
    for (int i = 0; i < ops; ++i) {
      workload.step();
      if (i % 4 == 3) {
        babysit(monitor);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }

  void settle(ScalableMonitor& monitor, LustreFs& fs) {
    chaos::FaultInjector::instance().disarm();
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      babysit(monitor);
      bool cleared = true;
      for (std::uint32_t i = 0; i < fs.mdt_count(); ++i) {
        if (fs.mds(i).mdt().changelog().retained() != 0) {
          cleared = false;
          break;
        }
      }
      if (cleared) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::string retained;
    for (std::uint32_t i = 0; i < fs.mdt_count(); ++i)
      retained += " MDT" + std::to_string(i) + "=" +
                  std::to_string(fs.mds(i).mdt().changelog().retained());
    FAIL() << "pipeline did not settle; retained records:" << retained;
  }

  /// Merged view across all shard stores (the vector-cursor read path —
  /// the same pages a recovering consumer replays).
  KeyCounts collect_store(ScalableMonitor& monitor) {
    KeyCounts counts;
    VectorCursor cursor;
    auto events = monitor.sharded().events_since(cursor);
    EXPECT_TRUE(events.is_ok()) << events.status().to_string();
    if (!events.is_ok()) return counts;
    for (const auto& event : events.value()) ++counts[key_of(event)];
    return counts;
  }

  void verify_exactly_once(const KeyCounts& observed, LustreFs& fs,
                           const std::string& what) {
    for (const auto& [key, count] : observed) {
      EXPECT_EQ(count, 1) << what << ": (" << key.source << ", cookie " << key.cookie
                          << ", kind " << key.kind << ") seen " << count << " times";
    }
    for (std::uint32_t i = 0; i < fs.mdt_count(); ++i) {
      const std::string source = "lustre:MDT" + std::to_string(i);
      std::set<std::uint64_t> seen;
      for (const auto& [key, count] : observed) {
        if (key.source == source) seen.insert(key.cookie);
      }
      const std::uint64_t last = fs.mds(i).mdt().changelog().last_index();
      for (std::uint64_t cookie = 1; cookie <= last; ++cookie) {
        EXPECT_TRUE(seen.count(cookie) > 0)
            << what << " lost " << source << " record " << cookie;
      }
      EXPECT_EQ(seen.size(), last) << what << ": " << source;
    }
  }

  void wait_until(const std::function<bool()>& predicate) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!predicate() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(predicate());
  }

  std::filesystem::path dir_;
  common::RealClock clock_;
};

/// Shared verification tail; see chaos_pipeline_test for why the
/// store/consumer cross-check is (source, cookie)-granular.
#define VERIFY_PIPELINE(monitor, fs, consumer_counts, consumer_mu)                \
  do {                                                                            \
    settle(monitor, fs);                                                          \
    const KeyCounts store_counts = collect_store(monitor);                        \
    verify_exactly_once(store_counts, fs, "store");                               \
    std::set<std::pair<std::string, std::uint64_t>> store_pairs;                  \
    for (const auto& [key, count] : store_counts)                                 \
      store_pairs.emplace(key.source, key.cookie);                                \
    wait_until([&] {                                                              \
      std::lock_guard lock(consumer_mu);                                          \
      std::set<std::pair<std::string, std::uint64_t>> pairs;                      \
      for (const auto& [key, count] : consumer_counts)                            \
        pairs.emplace(key.source, key.cookie);                                    \
      return pairs.size() >= store_pairs.size();                                  \
    });                                                                           \
    std::lock_guard lock(consumer_mu);                                            \
    verify_exactly_once(consumer_counts, fs, "consumer");                         \
    std::set<std::pair<std::string, std::uint64_t>> consumer_pairs;               \
    for (const auto& [key, count] : consumer_counts)                              \
      consumer_pairs.emplace(key.source, key.cookie);                             \
    EXPECT_EQ(consumer_pairs, store_pairs);                                       \
  } while (0)

TEST_F(ShardChaosTest, SingleShardCrashAndRestartIsExactlyOnce) {
  LustreFsOptions fs_options;
  fs_options.mdt_count = 4;  // MDT i -> shard i: every shard owns traffic
  LustreFs fs(fs_options, clock_);
  ScalableMonitor monitor(fs, options(dir_), clock_);
  std::mutex mu;
  KeyCounts delivered;
  auto consumer = monitor.make_consumer("c", ConsumerOptions{}, [&](const StdEvent& e) {
    std::lock_guard lock(mu);
    ++delivered[key_of(e)];
  });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  ChaosWorkload workload(fs, 42);
  for (int round = 0; round < 3; ++round) {
    const std::size_t victim = static_cast<std::size_t>(round) % 4;
    for (int i = 0; i < 30; ++i) workload.step();
    // Kill one shard with frames buffered: its unpersisted events die
    // with it and must be re-published by the rewound owner collectors,
    // while the other three shards never stop.
    monitor.crash_aggregator_shard(victim);
    for (int i = 0; i < 20; ++i) workload.step();
    ASSERT_TRUE(monitor.restart_aggregator_shard(victim).is_ok());
  }
  for (int i = 0; i < 30; ++i) workload.step();

  VERIFY_PIPELINE(monitor, fs, delivered, mu);
  consumer->stop();
  monitor.stop();
}

TEST_F(ShardChaosTest, SeededPerShardFaultSweepIsExactlyOnce) {
  // One seed per FSMON_CHAOS_SEED when set (tools/run_tier1.sh --chaos N
  // sweeps 1..N); a small built-in sweep otherwise.
  std::vector<std::uint64_t> seeds{1, 2, 3};
  if (const char* env = std::getenv("FSMON_CHAOS_SEED")) {
    seeds.assign(1, std::strtoull(env, nullptr, 10));
  }
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto store_dir = dir_ / ("seed" + std::to_string(seed));
    LustreFsOptions fs_options;
    fs_options.mdt_count = 4;
    LustreFs fs(fs_options, clock_);
    ScalableMonitor monitor(fs, options(store_dir), clock_);
    std::mutex mu;
    KeyCounts delivered;
    auto consumer =
        monitor.make_consumer("c", ConsumerOptions{}, [&](const StdEvent& e) {
          std::lock_guard lock(mu);
          ++delivered[key_of(e)];
        });
    ASSERT_TRUE(monitor.start().is_ok());
    ASSERT_TRUE(consumer->start().is_ok());

    // Per-shard fault points: two seed-chosen shards crash at different
    // stages (publish vs persist), plus a routed-link drop that forces
    // collector rewinds and a torn WAL write in whichever shard hits it.
    chaos::FaultPlan plan;
    plan.seed = seed;
    chaos::FaultRule rule;
    rule.point = "aggregator.shard" + std::to_string(seed % 4) + ".before_publish";
    rule.action = chaos::FaultAction::kCrash;
    rule.after_hits = 1 + seed % 4;
    rule.probability = 0.5;
    rule.max_fires = 2;
    plan.rules.push_back(rule);
    rule = {};
    rule.point = "aggregator.shard" + std::to_string((seed + 1) % 4) + ".before_persist";
    rule.action = chaos::FaultAction::kCrash;
    rule.after_hits = 1 + seed % 5;
    rule.probability = 0.5;
    rule.max_fires = 2;
    plan.rules.push_back(rule);
    rule = {};
    rule.point = "router.before_route";
    rule.action = chaos::FaultAction::kDrop;
    rule.probability = 0.1;
    rule.max_fires = 4;
    plan.rules.push_back(rule);
    rule = {};
    rule.point = "wal.torn_write";
    rule.action = chaos::FaultAction::kFail;
    rule.after_hits = 3 + seed % 7;
    rule.max_fires = 1;
    plan.rules.push_back(rule);
    chaos::FaultInjector::instance().arm(std::move(plan));

    ChaosWorkload workload(fs, seed * 1000 + 29);
    run_with_babysitter(monitor, workload, 240);

    VERIFY_PIPELINE(monitor, fs, delivered, mu);
    consumer->stop();
    monitor.stop();
  }
}

}  // namespace
}  // namespace fsmon::scalable
