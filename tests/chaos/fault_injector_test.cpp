// Unit tests for the deterministic fault injector: arming, rule
// matching (after_hits / probability / max_fires), per-seed determinism,
// independent per-point streams, and the chaos.* metrics.
#include "src/chaos/fault.hpp"

#include <gtest/gtest.h>

#include "src/obs/metrics.hpp"

namespace fsmon::chaos {
namespace {

FaultRule rule_for(std::string point, FaultAction action) {
  FaultRule rule;
  rule.point = std::move(point);
  rule.action = action;
  return rule;
}

TEST(FaultInjectorTest, DisarmedIsNoop) {
  ASSERT_FALSE(FaultInjector::armed());
  const FaultOutcome outcome = fault("collector.before_publish");
  EXPECT_FALSE(outcome);
  EXPECT_EQ(outcome.action, FaultAction::kNone);
}

TEST(FaultInjectorTest, ScopedPlanArmsAndDisarms) {
  {
    ScopedFaultPlan scope(FaultPlan{});
    EXPECT_TRUE(FaultInjector::armed());
  }
  EXPECT_FALSE(FaultInjector::armed());
}

TEST(FaultInjectorTest, UnmatchedPointNeverFires) {
  FaultPlan plan;
  plan.rules.push_back(rule_for("a", FaultAction::kFail));
  ScopedFaultPlan scope(std::move(plan));
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fault("b"));
  EXPECT_EQ(FaultInjector::instance().hits("b"), 10u);
  EXPECT_EQ(FaultInjector::instance().fires("b"), 0u);
}

TEST(FaultInjectorTest, AfterHitsSkipsTheWarmup) {
  FaultPlan plan;
  auto rule = rule_for("p", FaultAction::kFail);
  rule.after_hits = 3;
  rule.max_fires = 0;  // unlimited once past the warmup
  plan.rules.push_back(rule);
  ScopedFaultPlan scope(std::move(plan));
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(fault("p"));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(fault("p"));
  EXPECT_EQ(FaultInjector::instance().hits("p"), 7u);
  EXPECT_EQ(FaultInjector::instance().fires("p"), 4u);
}

TEST(FaultInjectorTest, MaxFiresCapsInjections) {
  FaultPlan plan;
  auto rule = rule_for("p", FaultAction::kCrash);
  rule.max_fires = 2;
  plan.rules.push_back(rule);
  ScopedFaultPlan scope(std::move(plan));
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (fault("p")) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(FaultInjector::instance().fires("p"), 2u);
}

TEST(FaultInjectorTest, DelayAndArgPassThrough) {
  FaultPlan plan;
  auto rule = rule_for("p", FaultAction::kDelay);
  rule.delay = std::chrono::milliseconds(7);
  rule.arg = 42;
  plan.rules.push_back(rule);
  ScopedFaultPlan scope(std::move(plan));
  const FaultOutcome outcome = fault("p");
  ASSERT_TRUE(outcome);
  EXPECT_EQ(outcome.action, FaultAction::kDelay);
  EXPECT_EQ(outcome.delay, std::chrono::milliseconds(7));
  EXPECT_EQ(outcome.arg, 42u);
}

std::vector<bool> fire_pattern(std::uint64_t seed, int draws) {
  FaultPlan plan;
  plan.seed = seed;
  auto rule = rule_for("p", FaultAction::kFail);
  rule.probability = 0.5;
  rule.max_fires = 0;
  plan.rules.push_back(rule);
  ScopedFaultPlan scope(std::move(plan));
  std::vector<bool> pattern;
  pattern.reserve(static_cast<std::size_t>(draws));
  for (int i = 0; i < draws; ++i) pattern.push_back(static_cast<bool>(fault("p")));
  return pattern;
}

TEST(FaultInjectorTest, SameSeedReplaysTheSameSchedule) {
  const auto first = fire_pattern(1234, 200);
  const auto second = fire_pattern(1234, 200);
  EXPECT_EQ(first, second);
}

TEST(FaultInjectorTest, DifferentSeedsProduceDifferentSchedules) {
  // 200 p=0.5 draws collide across seeds with probability 2^-200.
  EXPECT_NE(fire_pattern(1, 200), fire_pattern(2, 200));
}

TEST(FaultInjectorTest, PointsDrawFromIndependentStreams) {
  // Two points under one seed must not share a stream: the pattern at
  // "a" is unchanged whether or not "b" is interleaved between draws.
  FaultPlan plan;
  plan.seed = 99;
  auto rule = rule_for("a", FaultAction::kFail);
  rule.probability = 0.5;
  rule.max_fires = 0;
  plan.rules.push_back(rule);
  auto other = rule_for("b", FaultAction::kFail);
  other.probability = 0.5;
  other.max_fires = 0;
  plan.rules.push_back(other);

  std::vector<bool> alone;
  {
    ScopedFaultPlan scope(plan);
    for (int i = 0; i < 100; ++i) alone.push_back(static_cast<bool>(fault("a")));
  }
  std::vector<bool> interleaved;
  {
    ScopedFaultPlan scope(plan);
    for (int i = 0; i < 100; ++i) {
      interleaved.push_back(static_cast<bool>(fault("a")));
      fault("b");
    }
  }
  EXPECT_EQ(alone, interleaved);
}

TEST(FaultInjectorTest, RearmResetsCounters) {
  FaultPlan plan;
  plan.rules.push_back(rule_for("p", FaultAction::kFail));
  {
    ScopedFaultPlan scope(plan);
    fault("p");
    EXPECT_EQ(FaultInjector::instance().hits("p"), 1u);
  }
  ScopedFaultPlan scope(plan);
  EXPECT_EQ(FaultInjector::instance().hits("p"), 0u);
  EXPECT_EQ(FaultInjector::instance().fires("p"), 0u);
}

TEST(FaultInjectorTest, MetricsCountEvaluationsAndInjections) {
  obs::MetricsRegistry registry;
  FaultPlan plan;
  auto rule = rule_for("p", FaultAction::kFail);
  rule.after_hits = 1;
  rule.max_fires = 0;
  plan.rules.push_back(rule);
  ScopedFaultPlan scope(std::move(plan), &registry);
  for (int i = 0; i < 5; ++i) fault("p");
  EXPECT_EQ(registry.counter("chaos.fault_evaluations", {{"point", "p"}}).value(), 5u);
  EXPECT_EQ(
      registry.counter("chaos.faults_injected", {{"point", "p"}, {"action", "fail"}})
          .value(),
      4u);
}

}  // namespace
}  // namespace fsmon::chaos
