// Torn-tail fuzz for the WAL (satellite of the chaos subsystem): a crash
// mid-write leaves a prefix of the final record on disk. For *every*
// byte offset inside that final record, scan() must recover exactly the
// intact prefix, and store recovery must truncate the torn bytes so the
// segment is clean for whoever opens it next.
#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/chaos/fault.hpp"
#include "src/eventstore/store.hpp"
#include "src/eventstore/wal.hpp"

namespace fsmon::eventstore {
namespace {

std::vector<std::byte> make_payload(std::size_t size, std::uint8_t fill) {
  return std::vector<std::byte>(size, static_cast<std::byte>(fill));
}

class WalTornTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_torn_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    chaos::FaultInjector::instance().disarm();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
};

TEST_F(WalTornTailTest, EveryTruncationOffsetInsideFinalRecordRecoversThePrefix) {
  const auto path = dir_ / "seg.wal";
  constexpr std::size_t kRecords = 5;
  std::vector<std::vector<std::byte>> payloads;
  std::uint64_t intact_boundary = 0;  // byte offset where the final record starts
  std::uint64_t file_size = 0;
  {
    WalSegment segment(path);
    for (std::size_t i = 0; i < kRecords; ++i) {
      payloads.push_back(make_payload(32 + 7 * i, static_cast<std::uint8_t>(i)));
      ASSERT_TRUE(segment.append(i + 1, payloads.back()).is_ok());
      if (i + 1 < kRecords) intact_boundary += 16 + payloads.back().size();
      file_size += 16 + payloads.back().size();
    }
    ASSERT_TRUE(segment.flush().is_ok());
  }
  ASSERT_EQ(std::filesystem::file_size(path), file_size);

  for (std::uint64_t cut = intact_boundary; cut < file_size; ++cut) {
    const auto torn = dir_ / "torn.wal";
    std::filesystem::copy_file(path, torn,
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(torn, cut);

    std::uint64_t intact_bytes = 0;
    auto scanned = WalSegment::scan(torn, &intact_bytes);
    ASSERT_TRUE(scanned.is_ok()) << "cut at " << cut << ": "
                                 << scanned.status().to_string();
    EXPECT_EQ(intact_bytes, intact_boundary) << "cut at " << cut;
    ASSERT_EQ(scanned.value().size(), kRecords - 1) << "cut at " << cut;
    for (std::size_t i = 0; i + 1 < kRecords; ++i) {
      EXPECT_EQ(scanned.value()[i].id, i + 1);
      EXPECT_EQ(scanned.value()[i].payload, payloads[i]);
    }
  }

  // The untouched file scans whole.
  std::uint64_t intact_bytes = 0;
  auto scanned = WalSegment::scan(path, &intact_bytes);
  ASSERT_TRUE(scanned.is_ok());
  EXPECT_EQ(scanned.value().size(), kRecords);
  EXPECT_EQ(intact_bytes, file_size);
}

TEST_F(WalTornTailTest, InjectedTornWriteKeepsOnlyCompleteRecords) {
  const auto path = dir_ / "seg.wal";
  WalSegment segment(path);
  ASSERT_TRUE(segment.append(1, make_payload(24, 1)).is_ok());
  ASSERT_TRUE(segment.append(2, make_payload(24, 2)).is_ok());

  chaos::FaultPlan plan;
  chaos::FaultRule rule;
  rule.point = "wal.torn_write";
  rule.action = chaos::FaultAction::kFail;
  plan.rules.push_back(rule);
  chaos::ScopedFaultPlan scope(std::move(plan));

  // The torn batch loses its final record mid-frame; earlier records of
  // the same batch were fully written and must survive the scan.
  const std::vector<std::byte> a = make_payload(24, 3);
  const std::vector<std::byte> b = make_payload(24, 4);
  const std::vector<std::byte> c = make_payload(24, 5);
  const std::span<const std::byte> batch[] = {a, b, c};
  EXPECT_FALSE(segment.append_batch(3, batch).is_ok());
  segment.flush();

  std::uint64_t intact_bytes = 0;
  auto scanned = WalSegment::scan(path, &intact_bytes);
  ASSERT_TRUE(scanned.is_ok());
  ASSERT_EQ(scanned.value().size(), 4u);
  EXPECT_EQ(scanned.value().back().id, 4u);
  EXPECT_LT(intact_bytes, std::filesystem::file_size(path));
}

TEST_F(WalTornTailTest, TornWriteArgControlsTheCutPoint) {
  const auto path = dir_ / "seg.wal";
  WalSegment segment(path);

  chaos::FaultPlan plan;
  chaos::FaultRule rule;
  rule.point = "wal.torn_write";
  rule.action = chaos::FaultAction::kFail;
  rule.arg = 5;  // keep all but the last 5 bytes of the framed batch
  plan.rules.push_back(rule);
  chaos::ScopedFaultPlan scope(std::move(plan));

  const std::vector<std::byte> payload = make_payload(40, 9);
  EXPECT_FALSE(segment.append(1, payload).is_ok());
  segment.flush();
  EXPECT_EQ(std::filesystem::file_size(path), 16 + payload.size() - 5);

  auto scanned = WalSegment::scan(path);
  ASSERT_TRUE(scanned.is_ok());
  EXPECT_TRUE(scanned.value().empty());  // the only record is torn
}

TEST_F(WalTornTailTest, StoreRecoveryTruncatesTornTailAndResumesAppends) {
  EventStoreOptions options;
  options.directory = dir_;
  const auto payload = make_payload(48, 7);
  {
    EventStore store(options);
    for (common::EventId id = 1; id <= 3; ++id)
      ASSERT_TRUE(store.append(id, payload).is_ok());

    chaos::FaultPlan plan;
    chaos::FaultRule rule;
    rule.point = "wal.torn_write";
    rule.action = chaos::FaultAction::kFail;
    plan.rules.push_back(rule);
    chaos::ScopedFaultPlan scope(std::move(plan));
    EXPECT_FALSE(store.append(4, payload).is_ok());
    EXPECT_EQ(store.last_id(), 3u);  // the failed append must not count
  }

  // Recovery: the torn tail is truncated away, the intact prefix
  // survives, and the id sequence resumes cleanly.
  EventStore revived(options);
  EXPECT_EQ(revived.last_id(), 3u);
  EXPECT_EQ(revived.events_since(0).size(), 3u);
  std::uint64_t total_bytes = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".wal") total_bytes += entry.file_size();
  }
  EXPECT_EQ(total_bytes, 3 * (16 + payload.size()));

  ASSERT_TRUE(revived.append(4, payload).is_ok());
  ASSERT_TRUE(revived.flush().is_ok());  // revived stays open; flush for the scan
  EventStore third(options);
  EXPECT_EQ(third.last_id(), 4u);
  EXPECT_EQ(third.events_since(0).size(), 4u);
}

}  // namespace
}  // namespace fsmon::eventstore
