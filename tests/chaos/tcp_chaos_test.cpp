// TCP-transport chaos: kill the aggregator bridge mid-stream and assert
// the remote consumer auto-reconnects with backoff and replays the
// missed range without duplicates; drop a frame in flight (tcp.drop)
// and assert the id-gap detection triggers a replay that restores
// exactly-once delivery.
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <tuple>

#include <gtest/gtest.h>

#include "src/chaos/fault.hpp"
#include "src/scalable/scalable_monitor.hpp"
#include "src/scalable/tcp_bridge.hpp"

namespace fsmon::scalable {
namespace {

using core::StdEvent;
using lustre::LustreFs;
using lustre::LustreFsOptions;

bool sockets_available() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

using Key = std::tuple<std::string, std::uint64_t, int>;  // (source, cookie, kind)

class TcpChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!sockets_available()) GTEST_SKIP() << "sockets unavailable";
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_tcpchaos_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    chaos::FaultInjector::instance().disarm();
    std::filesystem::remove_all(dir_);
  }

  ScalableMonitorOptions options() {
    ScalableMonitorOptions o;
    eventstore::EventStoreOptions store;
    store.directory = dir_;
    o.aggregator.store = store;
    return o;
  }

  void wait_until(const std::function<bool()>& predicate) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!predicate() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(predicate());
  }

  std::filesystem::path dir_;
  common::RealClock clock_;
};

TEST_F(TcpChaosTest, BridgeRestartMidStreamReconnectsAndReplaysWithoutDuplicates) {
  LustreFs fs(LustreFsOptions{}, clock_);
  ScalableMonitor monitor(fs, options(), clock_);
  std::optional<AggregatorTcpBridge> bridge;
  bridge.emplace(monitor.sharded(), monitor.bus());
  ASSERT_TRUE(bridge->start(0).is_ok());
  const std::uint16_t port = bridge->port();
  ASSERT_TRUE(monitor.start().is_ok());

  RemoteConsumerOptions remote_options;
  remote_options.auto_reconnect = true;
  remote_options.backoff_initial = std::chrono::milliseconds(5);
  remote_options.backoff_max = std::chrono::milliseconds(100);
  remote_options.reconnect_seed = 3;
  std::mutex mu;
  std::map<Key, int> delivered;
  RemoteConsumer remote(remote_options, [&](const StdEvent& event) {
    std::lock_guard lock(mu);
    ++delivered[{event.source, event.cookie, static_cast<int>(event.kind)}];
  });
  ASSERT_TRUE(remote.connect("127.0.0.1", port).is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  for (int i = 0; i < 5; ++i) fs.create("/pre" + std::to_string(i));
  wait_until([&] {
    std::lock_guard lock(mu);
    return delivered.size() >= 5;
  });

  // Kill the bridge mid-stream. Events produced during the outage reach
  // the store but not the wire; the reconnected consumer must recover
  // them via replay, not lose them.
  bridge.reset();
  for (int i = 0; i < 5; ++i) fs.create("/mid" + std::to_string(i));
  wait_until([&] { return monitor.aggregator().persisted() >= 10; });

  bridge.emplace(monitor.sharded(), monitor.bus());
  ASSERT_TRUE(bridge->start(port).is_ok());

  wait_until([&] {
    std::lock_guard lock(mu);
    return delivered.size() >= 10;
  });
  EXPECT_GE(remote.reconnects(), 1u);
  EXPECT_GE(bridge->replayed(), 5u);

  // Live delivery works after the reconnect too.
  fs.create("/post");
  wait_until([&] {
    std::lock_guard lock(mu);
    return delivered.size() >= 11;
  });

  remote.stop();
  monitor.stop();
  bridge->stop();

  std::lock_guard lock(mu);
  ASSERT_EQ(delivered.size(), 11u);
  for (const auto& [key, count] : delivered) {
    EXPECT_EQ(count, 1) << "cookie " << std::get<1>(key) << " delivered " << count
                        << " times";
  }
  // Zero lost: every changelog record surfaced exactly once.
  for (std::uint64_t cookie = 1; cookie <= 11; ++cookie) {
    EXPECT_TRUE(delivered.count({"lustre:MDT0", cookie, 0}) > 0)
        << "lost record " << cookie;
  }
}

TEST_F(TcpChaosTest, DroppedFrameTriggersGapReplayExactlyOnce) {
  LustreFs fs(LustreFsOptions{}, clock_);
  ScalableMonitor monitor(fs, options(), clock_);
  AggregatorTcpBridge bridge(monitor.sharded(), monitor.bus());
  ASSERT_TRUE(bridge.start(0).is_ok());
  ASSERT_TRUE(monitor.start().is_ok());

  RemoteConsumerOptions remote_options;
  remote_options.auto_reconnect = true;
  std::mutex mu;
  std::map<Key, int> delivered;
  RemoteConsumer remote(remote_options, [&](const StdEvent& event) {
    std::lock_guard lock(mu);
    ++delivered[{event.source, event.cookie, static_cast<int>(event.kind)}];
  });
  ASSERT_TRUE(remote.connect("127.0.0.1", bridge.port()).is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Drop the third forwarded frame (after_hits=2 lets the first frames
  // through, so the consumer has a watermark to detect the gap against).
  chaos::FaultPlan plan;
  chaos::FaultRule rule;
  rule.point = "tcp.drop";
  rule.action = chaos::FaultAction::kDrop;
  rule.after_hits = 2;
  rule.max_fires = 1;
  plan.rules.push_back(rule);
  chaos::FaultInjector::instance().arm(std::move(plan));

  constexpr int kEvents = 8;
  for (int i = 0; i < kEvents; ++i) {
    fs.create("/f" + std::to_string(i));
    // Space the creates out so each lands in its own frame: the drop then
    // leaves a real id gap for the next frame to expose.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  wait_until([&] {
    std::lock_guard lock(mu);
    return delivered.size() >= kEvents;
  });
  chaos::FaultInjector::instance().disarm();

  remote.stop();
  monitor.stop();
  bridge.stop();

  EXPECT_EQ(bridge.dropped_frames(), 1u);
  EXPECT_GE(bridge.replayed(), 1u);
  std::lock_guard lock(mu);
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kEvents));
  for (const auto& [key, count] : delivered) {
    EXPECT_EQ(count, 1) << "cookie " << std::get<1>(key) << " delivered " << count
                        << " times";
  }
  for (std::uint64_t cookie = 1; cookie <= kEvents; ++cookie) {
    EXPECT_TRUE(delivered.count({"lustre:MDT0", cookie, 0}) > 0)
        << "lost record " << cookie;
  }
}

}  // namespace
}  // namespace fsmon::scalable
