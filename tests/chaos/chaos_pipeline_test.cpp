// Chaos verification harness (the crash-recovery subsystem's acceptance
// test): run a randomized workload over the full collector -> aggregator
// -> consumer pipeline while stages crash — either explicitly or through
// seeded fault schedules — restart every crashed stage, then assert
// exactly-once delivery: zero lost and zero duplicate events, both in
// the reliable store and at the consumer callback.
//
// Identity that survives recovery is (source, cookie, kind): event ids
// are reassigned when the aggregator restarts, but the cookie is the
// changelog record index, unique per MDT, and a rename record is the
// only one emitting two events (distinct kinds) for one cookie.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/chaos/fault.hpp"
#include "src/common/random.hpp"
#include "src/scalable/scalable_monitor.hpp"

namespace fsmon::scalable {
namespace {

using core::StdEvent;
using lustre::LustreFs;
using lustre::LustreFsOptions;

struct EventKey {
  std::string source;
  std::uint64_t cookie = 0;
  int kind = 0;

  bool operator<(const EventKey& other) const {
    return std::tie(source, cookie, kind) <
           std::tie(other.source, other.cookie, other.kind);
  }
  bool operator==(const EventKey& other) const = default;
};

using KeyCounts = std::map<EventKey, int>;

EventKey key_of(const StdEvent& event) {
  return EventKey{event.source, event.cookie, static_cast<int>(event.kind)};
}

/// Seeded random mix of creates / renames / unlinks / mkdirs across a
/// set of directories (DNE hashing spreads them over the MDTs).
class ChaosWorkload {
 public:
  ChaosWorkload(LustreFs& fs, std::uint64_t seed) : fs_(fs), rng_(seed) {
    for (int i = 0; i < 8; ++i) {
      const std::string dir = "/d" + std::to_string(i);
      if (fs_.mkdir(dir).is_ok()) dirs_.push_back(dir);
    }
  }

  void step() {
    const double p = rng_.next_double();
    if (p < 0.6 || live_.empty()) {
      const std::string path =
          dirs_[rng_.next_below(dirs_.size())] + "/f" + std::to_string(next_++);
      if (fs_.create(path).is_ok()) live_.push_back(path);
    } else if (p < 0.75) {
      const std::size_t victim = rng_.next_below(live_.size());
      const std::string to =
          dirs_[rng_.next_below(dirs_.size())] + "/r" + std::to_string(next_++);
      if (fs_.rename(live_[victim], to).is_ok()) live_[victim] = to;
    } else if (p < 0.9) {
      const std::size_t victim = rng_.next_below(live_.size());
      if (fs_.unlink(live_[victim]).is_ok()) {
        live_[victim] = live_.back();
        live_.pop_back();
      }
    } else {
      fs_.mkdir("/m" + std::to_string(next_++));
    }
  }

 private:
  LustreFs& fs_;
  common::Rng rng_;
  std::vector<std::string> dirs_;
  std::vector<std::string> live_;
  int next_ = 0;
};

class ChaosPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_chaos_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    chaos::FaultInjector::instance().disarm();
    std::filesystem::remove_all(dir_);
  }

  ScalableMonitorOptions options(const std::filesystem::path& store_dir) {
    ScalableMonitorOptions o;
    eventstore::EventStoreOptions store;
    store.directory = store_dir;
    o.aggregator.store = store;
    return o;
  }

  /// The chaos babysitter: a real deployment's supervisor. Any stage the
  /// fault schedule (or the test) crashed gets restarted.
  void babysit(ScalableMonitor& monitor) {
    for (std::size_t i = 0; i < monitor.collector_count(); ++i) {
      if (monitor.collector(i).crashed()) {
        EXPECT_TRUE(monitor.restart_collector(i).is_ok());
      }
    }
    if (monitor.aggregator().crashed()) {
      EXPECT_TRUE(monitor.restart_aggregator().is_ok());
    }
  }

  void run_with_babysitter(ScalableMonitor& monitor, ChaosWorkload& workload,
                           int ops) {
    for (int i = 0; i < ops; ++i) {
      workload.step();
      if (i % 4 == 3) {
        babysit(monitor);
        // Let the pipeline make progress so fault points are actually hit
        // while the workload is still producing records.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }

  /// Disarm faults, restart anything still down, and wait until every
  /// changelog is fully acknowledged and cleared (nothing in flight).
  void settle(ScalableMonitor& monitor, LustreFs& fs) {
    chaos::FaultInjector::instance().disarm();
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      babysit(monitor);
      bool cleared = true;
      for (std::uint32_t i = 0; i < fs.mdt_count(); ++i) {
        if (fs.mds(i).mdt().changelog().retained() != 0) {
          cleared = false;
          break;
        }
      }
      if (cleared) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::string retained;
    for (std::uint32_t i = 0; i < fs.mdt_count(); ++i)
      retained += " MDT" + std::to_string(i) + "=" +
                  std::to_string(fs.mds(i).mdt().changelog().retained());
    FAIL() << "pipeline did not settle; retained records:" << retained;
  }

  KeyCounts collect_store(ScalableMonitor& monitor) {
    KeyCounts counts;
    auto events = monitor.aggregator().events_since(0);
    EXPECT_TRUE(events.is_ok()) << events.status().to_string();
    if (!events.is_ok()) return counts;
    for (const auto& event : events.value()) ++counts[key_of(event)];
    return counts;
  }

  /// Zero duplicates: no (source, cookie, kind) seen twice. Zero lost:
  /// every changelog record index of every MDT surfaced at least once.
  void verify_exactly_once(const KeyCounts& observed, LustreFs& fs,
                           const std::string& what) {
    for (const auto& [key, count] : observed) {
      EXPECT_EQ(count, 1) << what << ": (" << key.source << ", cookie " << key.cookie
                          << ", kind " << key.kind << ") seen " << count << " times";
    }
    for (std::uint32_t i = 0; i < fs.mdt_count(); ++i) {
      const std::string source = "lustre:MDT" + std::to_string(i);
      std::set<std::uint64_t> seen;
      for (const auto& [key, count] : observed) {
        if (key.source == source) seen.insert(key.cookie);
      }
      const std::uint64_t last = fs.mds(i).mdt().changelog().last_index();
      for (std::uint64_t cookie = 1; cookie <= last; ++cookie) {
        EXPECT_TRUE(seen.count(cookie) > 0)
            << what << " lost " << source << " record " << cookie;
      }
      EXPECT_EQ(seen.size(), last) << what << ": " << source;
    }
  }

  void wait_until(const std::function<bool()>& predicate) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!predicate() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(predicate());
  }

  std::filesystem::path dir_;
  common::RealClock clock_;
};

/// Shared tail of every scenario: settle, then check the store and the
/// consumer both saw exactly the changelog, exactly once.
///
/// The store/consumer cross-check is (source, cookie)-granular, not
/// per-kind: re-processing a record after a crash can legitimately
/// change the event *shape* (a rename whose paths no longer both
/// resolve emits one fallback event instead of two), so the consumer —
/// which saw the pre-crash publication — may hold a different kind set
/// for a record than the store, which persisted the re-publication.
/// Exactly-once is per record either way.
#define VERIFY_PIPELINE(monitor, fs, consumer_counts, consumer_mu)                \
  do {                                                                            \
    settle(monitor, fs);                                                          \
    const KeyCounts store_counts = collect_store(monitor);                        \
    verify_exactly_once(store_counts, fs, "store");                               \
    std::set<std::pair<std::string, std::uint64_t>> store_pairs;                  \
    for (const auto& [key, count] : store_counts)                                 \
      store_pairs.emplace(key.source, key.cookie);                                \
    wait_until([&] {                                                              \
      std::lock_guard lock(consumer_mu);                                          \
      std::set<std::pair<std::string, std::uint64_t>> pairs;                      \
      for (const auto& [key, count] : consumer_counts)                            \
        pairs.emplace(key.source, key.cookie);                                    \
      return pairs.size() >= store_pairs.size();                                  \
    });                                                                           \
    std::lock_guard lock(consumer_mu);                                            \
    verify_exactly_once(consumer_counts, fs, "consumer");                         \
    std::set<std::pair<std::string, std::uint64_t>> consumer_pairs;               \
    for (const auto& [key, count] : consumer_counts)                              \
      consumer_pairs.emplace(key.source, key.cookie);                             \
    EXPECT_EQ(consumer_pairs, store_pairs);                                       \
  } while (0)

TEST_F(ChaosPipelineTest, CollectorCrashAndRestartIsExactlyOnce) {
  LustreFsOptions fs_options;
  fs_options.mdt_count = 4;
  LustreFs fs(fs_options, clock_);
  ScalableMonitor monitor(fs, options(dir_), clock_);
  std::mutex mu;
  KeyCounts delivered;
  auto consumer = monitor.make_consumer("c", ConsumerOptions{}, [&](const StdEvent& e) {
    std::lock_guard lock(mu);
    ++delivered[key_of(e)];
  });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  ChaosWorkload workload(fs, 42);
  for (int i = 0; i < 50; ++i) workload.step();
  for (std::size_t i = 0; i < monitor.collector_count(); ++i)
    monitor.crash_collector(i);
  // Records written while every collector is down are retained by the
  // changelog and re-read after restart.
  for (int i = 0; i < 50; ++i) workload.step();
  for (std::size_t i = 0; i < monitor.collector_count(); ++i)
    ASSERT_TRUE(monitor.restart_collector(i).is_ok());
  for (int i = 0; i < 50; ++i) workload.step();

  VERIFY_PIPELINE(monitor, fs, delivered, mu);
  consumer->stop();
  monitor.stop();
}

TEST_F(ChaosPipelineTest, AggregatorCrashAndRestartIsExactlyOnce) {
  LustreFsOptions fs_options;
  fs_options.mdt_count = 4;
  LustreFs fs(fs_options, clock_);
  ScalableMonitor monitor(fs, options(dir_), clock_);
  std::mutex mu;
  KeyCounts delivered;
  auto consumer = monitor.make_consumer("c", ConsumerOptions{}, [&](const StdEvent& e) {
    std::lock_guard lock(mu);
    ++delivered[key_of(e)];
  });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  ChaosWorkload workload(fs, 7);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 40; ++i) workload.step();
    // Crash with frames buffered: everything unpersisted is lost with the
    // process and must be re-published by the rewound collectors.
    monitor.crash_aggregator();
    for (int i = 0; i < 20; ++i) workload.step();
    ASSERT_TRUE(monitor.restart_aggregator().is_ok());
  }
  for (int i = 0; i < 40; ++i) workload.step();

  VERIFY_PIPELINE(monitor, fs, delivered, mu);
  consumer->stop();
  monitor.stop();
}

TEST_F(ChaosPipelineTest, ConsumerCrashAndRestartIsExactlyOnce) {
  LustreFsOptions fs_options;
  fs_options.mdt_count = 2;
  LustreFs fs(fs_options, clock_);
  ScalableMonitor monitor(fs, options(dir_), clock_);
  std::mutex mu;
  KeyCounts delivered;
  ConsumerOptions consumer_options;
  // Ack every batch so the replay window after a crash starts exactly at
  // the last delivered batch (no delivered-but-unacked tail to repeat).
  consumer_options.ack_interval = 1;
  auto consumer =
      monitor.make_consumer("c", consumer_options, [&](const StdEvent& e) {
        std::lock_guard lock(mu);
        ++delivered[key_of(e)];
      });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  ChaosWorkload workload(fs, 9);
  for (int i = 0; i < 40; ++i) workload.step();
  wait_until([&] { return consumer->delivered() > 0; });
  consumer->crash();
  // Everything fanned out while the consumer is down misses its inbox;
  // restart() replays it from the reliable store. Quiesce first: replay
  // reads the store, so the outage's events must be persisted (= acked,
  // = cleared) before the restart for the store to cover them.
  for (int i = 0; i < 40; ++i) workload.step();
  wait_until([&] {
    for (std::uint32_t i = 0; i < fs.mdt_count(); ++i) {
      if (fs.mds(i).mdt().changelog().retained() != 0) return false;
    }
    return true;
  });
  ASSERT_TRUE(consumer->restart().is_ok());
  for (int i = 0; i < 40; ++i) workload.step();

  VERIFY_PIPELINE(monitor, fs, delivered, mu);
  consumer->stop();
  monitor.stop();
}

TEST_F(ChaosPipelineTest, TornPersistCrashRecoversExactlyOnce) {
  LustreFsOptions fs_options;
  fs_options.mdt_count = 2;
  LustreFs fs(fs_options, clock_);
  ScalableMonitor monitor(fs, options(dir_), clock_);
  std::mutex mu;
  KeyCounts delivered;
  auto consumer = monitor.make_consumer("c", ConsumerOptions{}, [&](const StdEvent& e) {
    std::lock_guard lock(mu);
    ++delivered[key_of(e)];
  });
  ASSERT_TRUE(monitor.start().is_ok());
  ASSERT_TRUE(consumer->start().is_ok());

  // A torn WAL write fails the persist, which fail-stops the aggregator;
  // the babysitter restarts it and recovery truncates the torn tail.
  chaos::FaultPlan plan;
  plan.seed = 5;
  chaos::FaultRule torn;
  torn.point = "wal.torn_write";
  torn.action = chaos::FaultAction::kFail;
  torn.after_hits = 2;
  torn.max_fires = 1;
  plan.rules.push_back(torn);
  chaos::FaultInjector::instance().arm(std::move(plan));

  ChaosWorkload workload(fs, 11);
  run_with_babysitter(monitor, workload, 120);
  const std::uint64_t torn_fires = chaos::FaultInjector::instance().fires("wal.torn_write");

  VERIFY_PIPELINE(monitor, fs, delivered, mu);
  EXPECT_EQ(torn_fires, 1u);
  consumer->stop();
  monitor.stop();
}

TEST_F(ChaosPipelineTest, SeededFaultScheduleSweepIsExactlyOnce) {
  // One seed per FSMON_CHAOS_SEED when set (tools/run_tier1.sh --chaos N
  // sweeps 1..N); a small built-in sweep otherwise.
  std::vector<std::uint64_t> seeds{1, 2, 3};
  if (const char* env = std::getenv("FSMON_CHAOS_SEED")) {
    seeds.assign(1, std::strtoull(env, nullptr, 10));
  }
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto store_dir = dir_ / ("seed" + std::to_string(seed));
    LustreFsOptions fs_options;
    fs_options.mdt_count = 4;
    LustreFs fs(fs_options, clock_);
    ScalableMonitor monitor(fs, options(store_dir), clock_);
    std::mutex mu;
    KeyCounts delivered;
    auto consumer =
        monitor.make_consumer("c", ConsumerOptions{}, [&](const StdEvent& e) {
          std::lock_guard lock(mu);
          ++delivered[key_of(e)];
        });
    ASSERT_TRUE(monitor.start().is_ok());
    ASSERT_TRUE(consumer->start().is_ok());

    // The fault schedule derives from the seed: collector and aggregator
    // crashes at seed-varied points, a torn WAL write, flaky changelog
    // clears, and jittered publish delays — all deterministic per seed.
    chaos::FaultPlan plan;
    plan.seed = seed;
    chaos::FaultRule rule;
    rule.point = "collector.before_publish";
    rule.action = chaos::FaultAction::kCrash;
    rule.after_hits = 2 + seed % 5;
    rule.probability = 0.5;
    rule.max_fires = 2;
    plan.rules.push_back(rule);
    rule = {};
    rule.point = "aggregator.before_persist";
    rule.action = chaos::FaultAction::kCrash;
    rule.after_hits = 1 + seed % 7;
    rule.probability = 0.5;
    rule.max_fires = 2;
    plan.rules.push_back(rule);
    rule = {};
    rule.point = "wal.torn_write";
    rule.action = chaos::FaultAction::kFail;
    rule.after_hits = 3 + seed % 11;
    rule.max_fires = 1;
    plan.rules.push_back(rule);
    rule = {};
    rule.point = "collector.clear";
    rule.action = chaos::FaultAction::kFail;
    rule.probability = 0.3;
    rule.max_fires = 0;
    plan.rules.push_back(rule);
    rule = {};
    rule.point = "aggregator.before_publish";
    rule.action = chaos::FaultAction::kDelay;
    rule.delay = std::chrono::milliseconds(1);
    rule.probability = 0.05;
    rule.max_fires = 0;
    plan.rules.push_back(rule);
    chaos::FaultInjector::instance().arm(std::move(plan));

    ChaosWorkload workload(fs, seed * 1000 + 17);
    run_with_babysitter(monitor, workload, 240);

    VERIFY_PIPELINE(monitor, fs, delivered, mu);
    consumer->stop();
    monitor.stop();
  }
}

}  // namespace
}  // namespace fsmon::scalable
