#include "src/localfs/native.hpp"

#include <gtest/gtest.h>

namespace fsmon::localfs {
namespace {

using common::TimePoint;

FsAction action_of(FsOpKind kind, const std::string& path, bool is_dir = false,
                   const std::string& dest = {}) {
  FsAction action;
  action.kind = kind;
  action.path = path;
  action.is_dir = is_dir;
  action.dest_path = dest;
  return action;
}

TEST(InotifyEmitterTest, CreateModifyDeleteMasks) {
  InotifyEmitter emitter;
  auto created = emitter.on_action(action_of(FsOpKind::kCreate, "/f"), TimePoint{});
  ASSERT_EQ(created.size(), 1u);
  EXPECT_EQ(created[0].flags, kInCreate);
  auto mkdir = emitter.on_action(action_of(FsOpKind::kMkdir, "/d", true), TimePoint{});
  EXPECT_EQ(mkdir[0].flags, kInCreate | kInIsDir);
  auto removed = emitter.on_action(action_of(FsOpKind::kDelete, "/f"), TimePoint{});
  EXPECT_EQ(removed[0].flags, kInDelete);
}

TEST(InotifyEmitterTest, RenameEmitsPairWithSharedCookie) {
  InotifyEmitter emitter;
  auto pair = emitter.on_action(action_of(FsOpKind::kRename, "/a", false, "/b"), TimePoint{});
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0].flags, kInMovedFrom);
  EXPECT_EQ(pair[0].path, "/a");
  EXPECT_EQ(pair[1].flags, kInMovedTo);
  EXPECT_EQ(pair[1].path, "/b");
  EXPECT_EQ(pair[0].cookie, pair[1].cookie);
  EXPECT_NE(pair[0].cookie, 0u);
  // A second rename uses a different cookie.
  auto pair2 = emitter.on_action(action_of(FsOpKind::kRename, "/c", false, "/d"), TimePoint{});
  EXPECT_NE(pair2[0].cookie, pair[0].cookie);
}

TEST(KqueueEmitterTest, CreateSignalsParentVnode) {
  // kqueue cannot name the new child: the only signal is NOTE_WRITE|
  // NOTE_EXTEND on the parent directory vnode.
  KqueueEmitter emitter;
  auto events = emitter.on_action(action_of(FsOpKind::kCreate, "/dir/f"), TimePoint{});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].flags, kNoteWrite | kNoteExtend);
  EXPECT_EQ(events[0].path, "/dir");
}

TEST(KqueueEmitterTest, DeleteSignalsFileAndParent) {
  KqueueEmitter emitter;
  auto events = emitter.on_action(action_of(FsOpKind::kDelete, "/dir/f"), TimePoint{});
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].flags, kNoteDelete);
  EXPECT_EQ(events[0].path, "/dir/f");
  EXPECT_EQ(events[1].path, "/dir");
}

TEST(KqueueEmitterTest, CrossDirectoryRenameTouchesBothParents) {
  KqueueEmitter emitter;
  auto events =
      emitter.on_action(action_of(FsOpKind::kRename, "/a/f", false, "/b/f"), TimePoint{});
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].flags, kNoteRename);
  EXPECT_EQ(events[0].dest_path, "/b/f");
  EXPECT_EQ(events[1].path, "/a");
  EXPECT_EQ(events[2].path, "/b");
}

TEST(FsEventsEmitterTest, NoWindowPassesThrough) {
  FsEventsEmitter emitter;  // window 0
  auto events = emitter.on_action(action_of(FsOpKind::kCreate, "/f"), TimePoint{});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].flags, kFseCreated | kFseIsFile);
  EXPECT_EQ(emitter.coalesced(), 0u);
}

TEST(FsEventsEmitterTest, CoalescesSamePathWithinWindow) {
  FsEventsEmitter emitter(std::chrono::milliseconds(100));
  TimePoint t0{};
  EXPECT_TRUE(emitter.on_action(action_of(FsOpKind::kCreate, "/f"), t0).empty());
  EXPECT_TRUE(
      emitter.on_action(action_of(FsOpKind::kModify, "/f"), t0 + std::chrono::milliseconds(10))
          .empty());
  EXPECT_EQ(emitter.coalesced(), 1u);
  // After the window ages out, a single merged record appears.
  auto flushed = emitter.flush(t0 + std::chrono::milliseconds(200));
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].flags & kFseCreated, kFseCreated);
  EXPECT_EQ(flushed[0].flags & kFseModified, kFseModified);
}

TEST(FsEventsEmitterTest, AgedEventsReleasedOnNextAction) {
  FsEventsEmitter emitter(std::chrono::milliseconds(50));
  TimePoint t0{};
  emitter.on_action(action_of(FsOpKind::kCreate, "/a"), t0);
  auto released = emitter.on_action(action_of(FsOpKind::kCreate, "/b"),
                                    t0 + std::chrono::milliseconds(100));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].path, "/a");
}

TEST(FsEventsEmitterTest, DifferentPathsDoNotCoalesce) {
  FsEventsEmitter emitter(std::chrono::milliseconds(100));
  TimePoint t0{};
  emitter.on_action(action_of(FsOpKind::kCreate, "/a"), t0);
  emitter.on_action(action_of(FsOpKind::kCreate, "/b"), t0);
  EXPECT_EQ(emitter.coalesced(), 0u);
  EXPECT_EQ(emitter.flush(t0).size(), 2u);
}

TEST(FsEventsEmitterTest, OpensNotReported) {
  FsEventsEmitter emitter;
  EXPECT_TRUE(emitter.on_action(action_of(FsOpKind::kOpen, "/f"), TimePoint{}).empty());
}

TEST(FswEmitterTest, FourChangeTypes) {
  FswEmitter emitter;
  emitter.on_action(action_of(FsOpKind::kCreate, "/f"), TimePoint{});
  emitter.on_action(action_of(FsOpKind::kModify, "/f"), TimePoint{});
  emitter.on_action(action_of(FsOpKind::kDelete, "/f"), TimePoint{});
  emitter.on_action(action_of(FsOpKind::kRename, "/f", false, "/g"), TimePoint{});
  auto events = emitter.drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].flags, kFswCreated);
  EXPECT_EQ(events[1].flags, kFswChanged);
  EXPECT_EQ(events[2].flags, kFswDeleted);
  EXPECT_EQ(events[3].flags, kFswRenamed);
  EXPECT_EQ(events[3].dest_path, "/g");
}

TEST(FswEmitterTest, BufferOverflowLosesEvents) {
  // The paper: "The buffer can overflow when many file system changes
  // occur in a short period of time, causing event loss."
  FswEmitter emitter(64);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (emitter.on_action(action_of(FsOpKind::kCreate, "/some/longish/path"), TimePoint{}))
      ++accepted;
  }
  EXPECT_LT(accepted, 10);
  EXPECT_GT(emitter.overflows(), 0u);
  // Draining frees space again.
  emitter.drain();
  EXPECT_TRUE(emitter.on_action(action_of(FsOpKind::kCreate, "/f"), TimePoint{}));
}

TEST(FswEmitterTest, DrainRespectsMaxEvents) {
  FswEmitter emitter;
  for (int i = 0; i < 5; ++i)
    emitter.on_action(action_of(FsOpKind::kCreate, "/f" + std::to_string(i)), TimePoint{});
  EXPECT_EQ(emitter.drain(2).size(), 2u);
  EXPECT_EQ(emitter.drain().size(), 3u);
}

}  // namespace
}  // namespace fsmon::localfs
