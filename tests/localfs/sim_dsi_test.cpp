#include "src/localfs/sim_dsi.hpp"

#include <gtest/gtest.h>

namespace fsmon::localfs {
namespace {

using core::EventKind;
using core::StdEvent;

class SimDsiTest : public ::testing::Test {
 protected:
  std::vector<StdEvent> capture_with(core::DsiBase& dsi, const std::function<void()>& ops) {
    std::vector<StdEvent> events;
    EXPECT_TRUE(dsi.start([&](StdEvent event) { events.push_back(std::move(event)); }).is_ok());
    ops();
    dsi.stop();
    return events;
  }

  common::ManualClock clock;
  MemFs fs;
};

TEST_F(SimDsiTest, InotifyDsiStandardizesBasicOps) {
  SimInotifyDsi dsi(fs, clock);
  auto events = capture_with(dsi, [&] {
    fs.create("/hello.txt");
    fs.write("/hello.txt");
    fs.remove("/hello.txt");
  });
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kCreate);
  EXPECT_EQ(events[1].kind, EventKind::kModify);
  EXPECT_EQ(events[2].kind, EventKind::kDelete);
  EXPECT_EQ(events[0].path, "/hello.txt");
  EXPECT_EQ(events[0].source, "sim-inotify");
}

TEST_F(SimDsiTest, InotifyDsiRenamePair) {
  fs.create("/hello.txt");
  SimInotifyDsi dsi(fs, clock);
  auto events = capture_with(dsi, [&] { fs.rename("/hello.txt", "/hi.txt"); });
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kMovedFrom);
  EXPECT_EQ(events[0].path, "/hello.txt");
  EXPECT_EQ(events[1].kind, EventKind::kMovedTo);
  EXPECT_EQ(events[1].path, "/hi.txt");
  EXPECT_EQ(events[0].cookie, events[1].cookie);
}

TEST_F(SimDsiTest, KqueueDsiRecoversChildNamesViaDiff) {
  // kqueue only reports NOTE_WRITE on the parent; the DSI must diff the
  // directory to produce named CREATE/DELETE events.
  fs.mkdir("/dir");
  SimKqueueDsi dsi(fs, clock);
  auto events = capture_with(dsi, [&] {
    fs.create("/dir/a.txt");
    fs.remove("/dir/a.txt");
  });
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kCreate);
  EXPECT_EQ(events[0].path, "/dir/a.txt");
  EXPECT_EQ(events[1].kind, EventKind::kDelete);
  EXPECT_EQ(events[1].path, "/dir/a.txt");
}

TEST_F(SimDsiTest, KqueueDsiModifyOnFileVnode) {
  fs.create("/f");
  SimKqueueDsi dsi(fs, clock);
  auto events = capture_with(dsi, [&] { fs.write("/f"); });
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kModify);
}

TEST_F(SimDsiTest, KqueueDsiRename) {
  fs.create("/a");
  SimKqueueDsi dsi(fs, clock);
  auto events = capture_with(dsi, [&] { fs.rename("/a", "/b"); });
  // NOTE_RENAME -> MOVED_FROM/MOVED_TO; parent NOTE_WRITEs produce no
  // duplicate create/delete because snapshots were refreshed.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kMovedFrom);
  EXPECT_EQ(events[1].kind, EventKind::kMovedTo);
}

TEST_F(SimDsiTest, FsEventsDsiStandardizes) {
  SimFsEventsDsi dsi(fs, clock);
  auto events = capture_with(dsi, [&] {
    fs.create("/f");
    fs.write("/f");
    fs.remove("/f");
  });
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kCreate);
  EXPECT_EQ(events[1].kind, EventKind::kModify);
  EXPECT_EQ(events[2].kind, EventKind::kDelete);
  EXPECT_EQ(events[0].source, "sim-fsevents");
}

TEST_F(SimDsiTest, FsEventsDsiRenamePairsAdjacentRecords) {
  fs.create("/a");
  SimFsEventsDsi dsi(fs, clock);
  auto events = capture_with(dsi, [&] { fs.rename("/a", "/b"); });
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kMovedFrom);
  EXPECT_EQ(events[0].path, "/a");
  EXPECT_EQ(events[1].kind, EventKind::kMovedTo);
  EXPECT_EQ(events[1].path, "/b");
  EXPECT_EQ(events[0].cookie, events[1].cookie);
}

TEST_F(SimDsiTest, FswDsiStandardizes) {
  SimFswDsi dsi(fs, clock);
  auto events = capture_with(dsi, [&] {
    fs.create("/f");
    fs.chmod("/f", 0600);
    fs.remove("/f");
  });
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kCreate);
  EXPECT_EQ(events[1].kind, EventKind::kModify);  // FSW folds attrib into Changed
  EXPECT_EQ(events[2].kind, EventKind::kDelete);
  EXPECT_EQ(events[0].source, "sim-filesystemwatcher");
}

TEST_F(SimDsiTest, StopSilencesEvents) {
  SimInotifyDsi dsi(fs, clock);
  std::vector<StdEvent> events;
  dsi.start([&](StdEvent event) { events.push_back(std::move(event)); });
  fs.create("/a");
  dsi.stop();
  fs.create("/b");
  EXPECT_EQ(events.size(), 1u);
  // Restart resumes delivery without duplicating the listener.
  dsi.start([&](StdEvent event) { events.push_back(std::move(event)); });
  fs.create("/c");
  dsi.stop();
  EXPECT_EQ(events.size(), 2u);
}

TEST_F(SimDsiTest, RegistryBindsBackend) {
  core::DsiRegistry registry;
  register_sim_dsis(registry, fs, clock);
  for (const char* scheme :
       {"sim-inotify", "sim-kqueue", "sim-fsevents", "sim-filesystemwatcher"}) {
    core::StorageDescriptor descriptor;
    descriptor.scheme = scheme;
    auto dsi = registry.create(descriptor);
    ASSERT_TRUE(dsi.is_ok()) << scheme;
    EXPECT_EQ(dsi.value()->name(), scheme);
  }
}

TEST_F(SimDsiTest, TimestampsComeFromInjectedClock) {
  clock.advance(std::chrono::seconds(42));
  SimInotifyDsi dsi(fs, clock);
  auto events = capture_with(dsi, [&] { fs.create("/f"); });
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].timestamp.time_since_epoch(), std::chrono::seconds(42));
}

}  // namespace
}  // namespace fsmon::localfs
