// Tests against the REAL Linux inotify facility. Skipped automatically
// when the kernel does not expose inotify (some sandboxes).
#include "src/localfs/inotify_dsi.hpp"

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>

#include <unistd.h>

#include <gtest/gtest.h>

namespace fsmon::localfs {
namespace {

using core::EventKind;
using core::StdEvent;

class InotifyDsiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!InotifyDsi::available()) GTEST_SKIP() << "inotify unavailable on this host";
    dir_ = std::filesystem::temp_directory_path() /
           ("fsmon_inotify_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void touch(const std::filesystem::path& path) {
    std::ofstream out(path);
    out << "data";
  }

  /// Wait until the predicate holds over captured events or timeout.
  bool wait_for(const std::function<bool()>& predicate) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, std::chrono::seconds(5), predicate);
  }

  std::vector<StdEvent> snapshot() {
    std::lock_guard lock(mu_);
    return events_;
  }

  core::DsiBase::EventCallback collector() {
    return [this](StdEvent event) {
      std::lock_guard lock(mu_);
      events_.push_back(std::move(event));
      cv_.notify_all();
    };
  }

  bool saw(EventKind kind, const std::string& suffix) {
    for (const auto& event : events_) {
      if (event.kind == kind && event.path.ends_with(suffix)) return true;
    }
    return false;
  }

  std::filesystem::path dir_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<StdEvent> events_;
};

TEST_F(InotifyDsiTest, DetectsCreateModifyDelete) {
  InotifyDsi dsi({dir_.string(), true});
  ASSERT_TRUE(dsi.start(collector()).is_ok());
  touch(dir_ / "hello.txt");
  ASSERT_TRUE(wait_for([&] { return saw(EventKind::kClose, "hello.txt"); }));
  std::filesystem::remove(dir_ / "hello.txt");
  ASSERT_TRUE(wait_for([&] { return saw(EventKind::kDelete, "hello.txt"); }));
  dsi.stop();
  EXPECT_TRUE(saw(EventKind::kCreate, "hello.txt"));
  EXPECT_TRUE(saw(EventKind::kModify, "hello.txt"));
}

TEST_F(InotifyDsiTest, RecursiveWatchCoversNewSubdirectories) {
  InotifyDsi dsi({dir_.string(), true});
  ASSERT_TRUE(dsi.start(collector()).is_ok());
  const std::size_t initial = dsi.watch_count();
  std::filesystem::create_directories(dir_ / "sub");
  ASSERT_TRUE(wait_for([&] { return saw(EventKind::kCreate, "sub"); }));
  // Give the DSI a beat to add the watch, then create inside it.
  ASSERT_TRUE(wait_for([&] { return dsi.watch_count() > initial; }));
  touch(dir_ / "sub" / "inner.txt");
  EXPECT_TRUE(wait_for([&] { return saw(EventKind::kCreate, "inner.txt"); }));
  dsi.stop();
}

TEST_F(InotifyDsiTest, DetectsRenamePair) {
  touch(dir_ / "old.txt");
  InotifyDsi dsi({dir_.string(), true});
  ASSERT_TRUE(dsi.start(collector()).is_ok());
  std::filesystem::rename(dir_ / "old.txt", dir_ / "new.txt");
  ASSERT_TRUE(wait_for([&] {
    return saw(EventKind::kMovedFrom, "old.txt") && saw(EventKind::kMovedTo, "new.txt");
  }));
  dsi.stop();
  // The rename pair shares a kernel cookie.
  std::uint64_t from_cookie = 0, to_cookie = 0;
  for (const auto& event : snapshot()) {
    if (event.kind == EventKind::kMovedFrom) from_cookie = event.cookie;
    if (event.kind == EventKind::kMovedTo) to_cookie = event.cookie;
  }
  EXPECT_NE(from_cookie, 0u);
  EXPECT_EQ(from_cookie, to_cookie);
}

TEST_F(InotifyDsiTest, NonRecursiveIgnoresSubdirectories) {
  std::filesystem::create_directories(dir_ / "sub");
  InotifyDsi dsi({dir_.string(), false});
  ASSERT_TRUE(dsi.start(collector()).is_ok());
  EXPECT_EQ(dsi.watch_count(), 1u);
  dsi.stop();
}

TEST_F(InotifyDsiTest, StartStopRestart) {
  InotifyDsi dsi({dir_.string(), true});
  ASSERT_TRUE(dsi.start(collector()).is_ok());
  dsi.stop();
  EXPECT_FALSE(dsi.running());
  ASSERT_TRUE(dsi.start(collector()).is_ok());
  EXPECT_TRUE(dsi.running());
  touch(dir_ / "again.txt");
  EXPECT_TRUE(wait_for([&] { return saw(EventKind::kCreate, "again.txt"); }));
  dsi.stop();
}

TEST_F(InotifyDsiTest, StartFailsOnMissingRoot) {
  InotifyDsi dsi({(dir_ / "does-not-exist").string(), true});
  EXPECT_FALSE(dsi.start(collector()).is_ok());
}

}  // namespace
}  // namespace fsmon::localfs
