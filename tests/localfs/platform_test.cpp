#include "src/localfs/platform.hpp"

#include <gtest/gtest.h>

namespace fsmon::localfs {
namespace {

TEST(PlatformProfileTest, PaperBaselineRates) {
  // Table III generation rates.
  EXPECT_EQ(PlatformProfile::macos().generation_rate, 4503);
  EXPECT_EQ(PlatformProfile::ubuntu().generation_rate, 4007);
  EXPECT_EQ(PlatformProfile::centos().generation_rate, 3894);
}

TEST(PlatformProfileTest, ComparatorToolsPerPlatform) {
  EXPECT_EQ(PlatformProfile::macos().other_tool, "FSWatch");
  EXPECT_EQ(PlatformProfile::ubuntu().other_tool, "inotifywait");
  EXPECT_EQ(PlatformProfile::centos().other_tool, "inotifywait");
}

TEST(PlatformProfileTest, FsWatchIsSlowerOnMacos) {
  // The paper's key local result: FSWatch trails FSMonitor on macOS while
  // inotifywait marginally leads it on Linux.
  const auto macos = PlatformProfile::macos();
  EXPECT_GT(macos.other_event_cost, macos.fsmonitor_event_cost);
  const auto ubuntu = PlatformProfile::ubuntu();
  EXPECT_LT(ubuntu.other_event_cost, ubuntu.fsmonitor_event_cost);
}

TEST(PlatformProfileTest, MemoryIsFractionOfRam) {
  for (const auto& profile : {PlatformProfile::macos(), PlatformProfile::ubuntu(),
                              PlatformProfile::centos()}) {
    // Table IV: 0.01% of machine RAM.
    EXPECT_NEAR(10000.0 * profile.fsmonitor_rss_bytes / profile.ram_bytes, 1.0, 0.01)
        << profile.name;
  }
}

TEST(PlatformProfileTest, ServiceCostsImplyPaperReportingRates) {
  // 1/cost must land at the paper's reported events/sec (saturated).
  const auto macos = PlatformProfile::macos();
  EXPECT_NEAR(1.0 / common::to_seconds(macos.fsmonitor_event_cost), 4467, 10);
  EXPECT_NEAR(1.0 / common::to_seconds(macos.other_event_cost), 3004, 10);
  const auto centos = PlatformProfile::centos();
  EXPECT_NEAR(1.0 / common::to_seconds(centos.fsmonitor_event_cost), 3875, 10);
}

}  // namespace
}  // namespace fsmon::localfs
