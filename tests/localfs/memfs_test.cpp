#include "src/localfs/memfs.hpp"

#include <gtest/gtest.h>

namespace fsmon::localfs {
namespace {

class MemFsTest : public ::testing::Test {
 protected:
  MemFsTest() {
    fs.add_listener([this](const FsAction& action) { actions.push_back(action); });
  }
  MemFs fs;
  std::vector<FsAction> actions;
};

TEST_F(MemFsTest, CreateEmitsAction) {
  ASSERT_TRUE(fs.create("/f.txt").is_ok());
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, FsOpKind::kCreate);
  EXPECT_EQ(actions[0].path, "/f.txt");
  EXPECT_FALSE(actions[0].is_dir);
  EXPECT_TRUE(fs.exists("/f.txt"));
}

TEST_F(MemFsTest, MkdirAndNesting) {
  ASSERT_TRUE(fs.mkdir("/d").is_ok());
  ASSERT_TRUE(fs.create("/d/f").is_ok());
  EXPECT_TRUE(fs.is_directory("/d"));
  EXPECT_FALSE(fs.is_directory("/d/f"));
  EXPECT_EQ(fs.create("/nodir/f").code(), common::ErrorCode::kNotFound);
}

TEST_F(MemFsTest, DuplicateCreateFails) {
  fs.create("/f");
  EXPECT_EQ(fs.create("/f").code(), common::ErrorCode::kAlreadyExists);
  EXPECT_EQ(actions.size(), 1u);  // failed ops emit nothing
}

TEST_F(MemFsTest, WriteRequiresExistingFile) {
  EXPECT_EQ(fs.write("/missing").code(), common::ErrorCode::kNotFound);
  fs.mkdir("/d");
  EXPECT_EQ(fs.write("/d").code(), common::ErrorCode::kIsADirectory);
  fs.create("/f");
  EXPECT_TRUE(fs.write("/f").is_ok());
  EXPECT_EQ(actions.back().kind, FsOpKind::kModify);
}

TEST_F(MemFsTest, RemoveFileAndRmdir) {
  fs.create("/f");
  ASSERT_TRUE(fs.remove("/f").is_ok());
  EXPECT_FALSE(fs.exists("/f"));
  fs.mkdir("/d");
  fs.create("/d/f");
  EXPECT_EQ(fs.rmdir("/d").code(), common::ErrorCode::kNotEmpty);
  fs.remove("/d/f");
  EXPECT_TRUE(fs.rmdir("/d").is_ok());
  EXPECT_EQ(fs.remove("/d").code(), common::ErrorCode::kNotFound);
}

TEST_F(MemFsTest, RemoveDirectoryWithRemoveFails) {
  fs.mkdir("/d");
  EXPECT_EQ(fs.remove("/d").code(), common::ErrorCode::kIsADirectory);
  fs.create("/f");
  EXPECT_EQ(fs.rmdir("/f").code(), common::ErrorCode::kNotADirectory);
}

TEST_F(MemFsTest, RenameFile) {
  fs.create("/hello.txt");
  ASSERT_TRUE(fs.rename("/hello.txt", "/hi.txt").is_ok());
  EXPECT_FALSE(fs.exists("/hello.txt"));
  EXPECT_TRUE(fs.exists("/hi.txt"));
  EXPECT_EQ(actions.back().kind, FsOpKind::kRename);
  EXPECT_EQ(actions.back().path, "/hello.txt");
  EXPECT_EQ(actions.back().dest_path, "/hi.txt");
}

TEST_F(MemFsTest, RenameDirectoryMovesChildren) {
  fs.mkdir("/a");
  fs.mkdir("/a/sub");
  fs.create("/a/sub/f");
  ASSERT_TRUE(fs.rename("/a", "/b").is_ok());
  EXPECT_TRUE(fs.exists("/b/sub/f"));
  EXPECT_FALSE(fs.exists("/a/sub/f"));
  EXPECT_TRUE(fs.is_directory("/b/sub"));
}

TEST_F(MemFsTest, RenameOntoExistingFails) {
  fs.create("/a");
  fs.create("/b");
  EXPECT_EQ(fs.rename("/a", "/b").code(), common::ErrorCode::kAlreadyExists);
}

TEST_F(MemFsTest, ChmodEmitsAttrib) {
  fs.create("/f");
  ASSERT_TRUE(fs.chmod("/f", 0600).is_ok());
  EXPECT_EQ(actions.back().kind, FsOpKind::kAttrib);
}

TEST_F(MemFsTest, OpenCloseEmit) {
  fs.create("/f");
  fs.open("/f");
  EXPECT_EQ(actions.back().kind, FsOpKind::kOpen);
  fs.close("/f");
  EXPECT_EQ(actions.back().kind, FsOpKind::kClose);
}

TEST_F(MemFsTest, ListDirectChildren) {
  fs.mkdir("/d");
  fs.create("/d/b");
  fs.mkdir("/d/a");
  fs.create("/d/a/deep");  // must not appear in /d listing
  auto entries = fs.list("/d");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "a");
  EXPECT_TRUE(entries[0].second);
  EXPECT_EQ(entries[1].first, "b");
  EXPECT_FALSE(entries[1].second);
  // Root listing.
  EXPECT_EQ(fs.list("/").size(), 1u);
}

TEST_F(MemFsTest, SequenceNumbersMonotonic) {
  fs.create("/a");
  fs.create("/b");
  fs.write("/a");
  ASSERT_EQ(actions.size(), 3u);
  EXPECT_EQ(actions[0].sequence, 0u);
  EXPECT_EQ(actions[1].sequence, 1u);
  EXPECT_EQ(actions[2].sequence, 2u);
}

}  // namespace
}  // namespace fsmon::localfs
