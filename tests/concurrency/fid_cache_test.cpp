// Versioned-window semantics of the fid->path cache under the resolver
// pool's ordered-invalidation protocol.
#include "src/scalable/fid_cache.hpp"

#include <gtest/gtest.h>

namespace fsmon::scalable {
namespace {

const lustre::Fid kFid{0x200000401, 1, 0};
const lustre::Fid kOther{0x200000401, 2, 0};

PathPtr make_path(std::string s) {
  return std::make_shared<const std::string>(std::move(s));
}

TEST(FidPathCacheTest, SerialProtocolRoundTrip) {
  FidPathCache cache(8);
  EXPECT_EQ(cache.get(kFid), nullptr);
  cache.put(kFid, "/a");
  ASSERT_NE(cache.peek(kFid), nullptr);
  EXPECT_EQ(*cache.peek(kFid), "/a");
  EXPECT_TRUE(cache.erase(kFid));
  EXPECT_FALSE(cache.contains(kFid));
}

TEST(FidPathCacheTest, HitSharesTheStoredString) {
  FidPathCache cache(8);
  auto stored = make_path("/shared");
  cache.put(kFid, stored);
  auto hit = cache.get(kFid);
  // The hit hands out the same immutable string, not a heap copy.
  EXPECT_EQ(hit.get(), stored.get());
}

TEST(FidPathCacheTest, VersionedGetHonorsValidityWindow) {
  FidPathCache cache(8, 2);
  cache.put(kFid, make_path("/a"), /*seq=*/3);
  EXPECT_EQ(cache.get(kFid, 2), nullptr);  // ordered before the write
  ASSERT_NE(cache.get(kFid, 3), nullptr);
  EXPECT_EQ(*cache.get(kFid, 7), "/a");    // no tombstone yet
}

TEST(FidPathCacheTest, InvalidateTombstonesButKeepsEarlierWindowAlive) {
  FidPathCache cache(8, 2);
  cache.put(kFid, make_path("/a"), 3);
  cache.invalidate(kFid, 10);  // record 10 deletes the file
  // Records ordered inside [3, 10) still see the mapping...
  ASSERT_NE(cache.get(kFid, 5), nullptr);
  EXPECT_EQ(*cache.get(kFid, 9), "/a");
  // ...records at or after the delete do not.
  EXPECT_EQ(cache.get(kFid, 10), nullptr);
  EXPECT_EQ(cache.get(kFid, 12), nullptr);
}

TEST(FidPathCacheTest, LatePutFromBeforeADeleteLandsTombstoned) {
  FidPathCache cache(8, 2);
  cache.invalidate(kFid, 10);  // the delete's position is applied first
  // A slow worker for record 4 now publishes the pre-delete mapping.
  cache.put(kFid, make_path("/a"), 4);
  // In-window readers hit; readers past the delete never see the corpse
  // resurrected.
  ASSERT_NE(cache.get(kFid, 6), nullptr);
  EXPECT_EQ(cache.get(kFid, 11), nullptr);
}

TEST(FidPathCacheTest, PutAtOrAfterPendingDeleteInsertsAlive) {
  FidPathCache cache(8, 2);
  cache.invalidate(kFid, 10);
  // A record ordered after the delete re-creates the mapping (e.g. the
  // fid resurfaces via a later hardlink resolution).
  cache.put(kFid, make_path("/b"), 12);
  ASSERT_NE(cache.get(kFid, 13), nullptr);
  EXPECT_EQ(*cache.get(kFid, 13), "/b");
}

TEST(FidPathCacheTest, OlderPutNeverClobbersNewerWrite) {
  FidPathCache cache(8, 2);
  cache.put(kFid, make_path("/new"), 10);
  cache.put(kFid, make_path("/old"), 3);  // stale straggler
  ASSERT_NE(cache.get(kFid, 11), nullptr);
  EXPECT_EQ(*cache.get(kFid, 11), "/new");
}

TEST(FidPathCacheTest, RetireSweepsGuardsAndDeadEntries) {
  FidPathCache cache(8, 2);
  cache.put(kFid, make_path("/a"), 3);
  cache.put(kOther, make_path("/b"), 4);
  cache.invalidate(kFid, 10);
  cache.retire(10);  // publish pointer has passed the delete
  // The dead entry is gone; the untouched one survives.
  EXPECT_FALSE(cache.contains(kFid));
  EXPECT_TRUE(cache.contains(kOther));
  // With the guard retired, a fresh put for a later batch is alive again.
  cache.put(kFid, make_path("/a2"), 20);
  ASSERT_NE(cache.get(kFid, 21), nullptr);
  EXPECT_EQ(*cache.get(kFid, 21), "/a2");
}

TEST(FidPathCacheTest, ReadAtOrPastTombstoneErasesTheCorpse) {
  FidPathCache cache(8, 2);
  cache.put(kFid, make_path("/a"), 3);
  cache.invalidate(kFid, 5);
  EXPECT_EQ(cache.get(kFid, 6), nullptr);  // miss erases the dead entry
  EXPECT_FALSE(cache.contains(kFid));
}

TEST(FidPathCacheTest, ShardedConstructionExposesShardCount) {
  FidPathCache cache(64, 8);
  EXPECT_EQ(cache.shard_count(), 8u);
  EXPECT_GE(cache.capacity(), 64u);
  cache.put(kFid, make_path("/a"), 1);
  EXPECT_GE(cache.max_shard_size(), 1u);
}

}  // namespace
}  // namespace fsmon::scalable
