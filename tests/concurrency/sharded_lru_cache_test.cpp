#include "src/common/sharded_lru_cache.hpp"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(ShardedLruCacheTest, RejectsZeroCapacityOrShards) {
  EXPECT_THROW((ShardedLruCache<int, int>(0, 4)), std::invalid_argument);
  EXPECT_THROW((ShardedLruCache<int, int>(16, 0)), std::invalid_argument);
}

TEST(ShardedLruCacheTest, SingleShardBehavesLikeLruCache) {
  ShardedLruCache<int, std::string> cache(4, 1);
  EXPECT_EQ(cache.shard_count(), 1u);
  cache.put(1, "one");
  cache.put(2, "two");
  EXPECT_EQ(*cache.get(1), "one");
  EXPECT_EQ(*cache.peek(2), "two");
  EXPECT_FALSE(cache.get(3).has_value());
  EXPECT_TRUE(cache.erase(2));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_EQ(cache.size(), 1u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 2u);
}

TEST(ShardedLruCacheTest, CapacitySplitsAcrossShardsRoundedUp) {
  ShardedLruCache<int, int> cache(10, 4);  // ceil(10/4) = 3 per shard
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_EQ(cache.capacity(), 12u);
}

TEST(ShardedLruCacheTest, ShardIndexIsStableAndInRange) {
  ShardedLruCache<int, int> cache(64, 8);
  for (int k = 0; k < 1000; ++k) {
    const auto index = cache.shard_index(k);
    EXPECT_LT(index, 8u);
    EXPECT_EQ(index, cache.shard_index(k));
  }
}

TEST(ShardedLruCacheTest, EvictionIsPerShard) {
  ShardedLruCache<int, int> cache(8, 8);  // 1 entry per shard
  for (int k = 0; k < 64; ++k) cache.put(k, k);
  EXPECT_LE(cache.size(), 8u);
  EXPECT_LE(cache.max_shard_size(), 1u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ShardedLruCacheTest, WithShardComposesAtomically) {
  ShardedLruCache<int, int> cache(16, 4);
  cache.put(7, 70);
  // Read-check-write under one shard lock.
  const int result = cache.with_shard(7, [](LruCache<int, int>& shard) {
    auto v = shard.peek(7);
    shard.put(7, *v + 1);
    return *shard.peek(7);
  });
  EXPECT_EQ(result, 71);
  EXPECT_EQ(*cache.get(7), 71);
}

TEST(ShardedLruCacheTest, ClearAndResetStats) {
  ShardedLruCache<int, int> cache(16, 4);
  cache.put(1, 1);
  cache.get(1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

// Hammer the cache from several threads; correctness here is "no data
// race / no crash / stats add up" — TSan makes this test meaningful.
TEST(ShardedLruCacheTest, ConcurrentMixedOperations) {
  ShardedLruCache<int, int> cache(256, 8);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 5000;
  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key = (t * 31 + i * 7) % 512;
        switch (i % 4) {
          case 0: cache.put(key, key * 2); break;
          case 1: {
            auto v = cache.get(key);
            if (v.has_value()) {
              EXPECT_EQ(*v, key * 2);
            }
            break;
          }
          case 2: cache.contains(key); break;
          case 3:
            if (i % 64 == 3) cache.erase(key);
            break;
        }
      }
    });
  }
  threads.clear();  // join
  EXPECT_LE(cache.size(), cache.capacity());
  const auto stats = cache.stats();
  EXPECT_GT(stats.insertions, 0u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace fsmon::common
