#include "src/common/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(ThreadPoolTest, SpawnsAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.thread_count(), 4u);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  // mu/cv declared before the pool: the pool's destructor joins the
  // workers before the sync objects they touch are destroyed.
  std::mutex mu;
  std::condition_variable cv;
  int ran = 0;
  ThreadPool pool(2);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      std::lock_guard lock(mu);
      if (++ran == 100) cv.notify_all();
    });
  }
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10), [&] { return ran == 100; }));
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ran.fetch_add(1); });
  }  // dtor must finish all 50 before joining
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, TasksRunConcurrentlyAcrossWorkers) {
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  ThreadPool pool(2);
  // Two tasks that each wait for the other: only completes if the pool
  // really runs them on distinct threads.
  auto rendezvous = [&] {
    std::unique_lock lock(mu);
    ++arrived;
    cv.notify_all();
    cv.wait_for(lock, std::chrono::seconds(10), [&] { return arrived == 2; });
  };
  pool.submit(rendezvous);
  pool.submit(rendezvous);
  std::unique_lock lock(mu);
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(10), [&] { return arrived == 2; }));
}

}  // namespace
}  // namespace fsmon::common
