#include "src/scalable/reorder_buffer.hpp"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fsmon::scalable {
namespace {

TEST(ReorderBufferTest, InOrderPushPopsImmediately) {
  ReorderBuffer<int> buffer(0);
  buffer.push(0, 10);
  buffer.push(1, 11);
  EXPECT_EQ(buffer.pop(), 10);
  EXPECT_EQ(buffer.pop(), 11);
  EXPECT_EQ(buffer.head(), 2u);
  EXPECT_EQ(buffer.buffered(), 0u);
}

TEST(ReorderBufferTest, OutOfOrderCompletionsPopInSequence) {
  ReorderBuffer<std::string> buffer(0);
  buffer.push(2, "two");
  buffer.push(0, "zero");
  buffer.push(1, "one");
  EXPECT_EQ(buffer.pop(), "zero");
  EXPECT_EQ(buffer.pop(), "one");
  EXPECT_EQ(buffer.pop(), "two");
  // 2 and 0 were parked together before the first pop.
  EXPECT_GE(buffer.max_depth(), 2u);
}

TEST(ReorderBufferTest, PopBlocksUntilHeadArrives) {
  ReorderBuffer<int> buffer(0);
  buffer.push(1, 11);  // head (0) still missing
  std::jthread producer([&buffer] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    buffer.push(0, 10);
  });
  EXPECT_EQ(buffer.pop(), 10);  // blocks until the producer delivers 0
  EXPECT_EQ(buffer.pop(), 11);
}

TEST(ReorderBufferTest, ResetStartsNewBatchAndKeepsHighWaterMark) {
  ReorderBuffer<int> buffer(0);
  buffer.push(1, 1);
  buffer.push(0, 0);
  buffer.pop();
  buffer.pop();
  const auto depth = buffer.max_depth();
  EXPECT_GE(depth, 2u);
  buffer.reset(0);
  EXPECT_EQ(buffer.head(), 0u);
  buffer.push(0, 5);
  EXPECT_EQ(buffer.pop(), 5);
  EXPECT_EQ(buffer.max_depth(), depth);  // high-water mark survives reset
}

TEST(ReorderBufferTest, ManyProducersOneConsumerPreservesSequence) {
  constexpr std::uint64_t kItems = 2000;
  ReorderBuffer<std::uint64_t> buffer(0);
  std::vector<std::jthread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&buffer, t] {
      // Thread t pushes sequences congruent to t mod 4, scrambled enough
      // that arrival order differs from sequence order.
      for (std::uint64_t seq = t; seq < kItems; seq += 4) buffer.push(seq, seq * 3);
    });
  }
  for (std::uint64_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(buffer.pop(), i * 3);
  }
  producers.clear();
  EXPECT_EQ(buffer.buffered(), 0u);
}

}  // namespace
}  // namespace fsmon::scalable
