// The tentpole invariant of the resolver pool: for an interleaved
// create/rename/unlink workload, a collector with resolver_threads = 4
// publishes the byte-identical event sequence a serial collector does,
// and deletes always carry the path that was actually deleted (no stale
// cache resurrection).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/scalable/scalable_monitor.hpp"

namespace fsmon::scalable {
namespace {

using core::EventKind;
using core::StdEvent;
using lustre::LustreFs;
using lustre::LustreFsOptions;

constexpr int kFiles = 60;

// The deterministic op script both runs replay. CREAT/RENME/UNLNK records
// all reconstruct their paths from the parent fid + record name, so every
// divergence between serial and parallel mode would be a real ordering or
// staleness bug. (MTIME is deliberately absent: it has no parent-fid
// fallback, so its path depends on cache hit/miss patterns — the one
// documented serial/parallel divergence, see DESIGN.md.)
void apply_workload(LustreFs& fs) {
  for (int i = 0; i < kFiles; ++i) {
    const std::string f = "/f" + std::to_string(i);
    ASSERT_TRUE(fs.create(f).is_ok());
    std::string current = f;
    if (i % 3 == 0) {
      const std::string r = "/r" + std::to_string(i);
      ASSERT_TRUE(fs.rename(f, r).is_ok());
      current = r;
    }
    if (i % 2 == 0) {
      ASSERT_TRUE(fs.unlink(current).is_ok());
    }
  }
}

std::vector<StdEvent> run_collector(std::size_t resolver_threads,
                                    std::size_t cache_size) {
  common::ManualClock clock;
  LustreFs fs(LustreFsOptions{}, clock);
  msgq::Bus bus;
  auto inbox = bus.make_subscriber("inbox", 4096);
  inbox->subscribe("");
  auto publisher = bus.make_publisher("pub");
  publisher->connect(inbox);

  CollectorOptions options;
  options.cache_size = cache_size;
  options.resolver_threads = resolver_threads;
  Collector collector(fs, 0, publisher, options, clock);
  apply_workload(fs);
  collector.drain_once();

  std::vector<StdEvent> events;
  while (auto message = inbox->try_recv()) {
    auto batch = core::decode_batch(message->byte_span());
    EXPECT_TRUE(batch.is_ok()) << batch.status().to_string();
    if (!batch.is_ok()) continue;
    for (auto& event : batch.value().events) events.push_back(std::move(event));
  }
  return events;
}

std::vector<std::byte> serialize_all(const std::vector<StdEvent>& events) {
  std::vector<std::byte> bytes;
  for (const auto& event : events) core::serialize_event(event, bytes);
  return bytes;
}

void check_ground_truth(const std::vector<StdEvent>& events) {
  // Every delete names the path that was really deleted, every rename
  // pair names the true old and new paths — stale cache entries would
  // surface here as "/f<i>" deletes for renamed files.
  std::size_t deletes = 0, renames = 0;
  for (std::size_t k = 0; k < events.size(); ++k) {
    const auto& event = events[k];
    if (event.kind == EventKind::kDelete) {
      ++deletes;
      const std::string digits = event.path.substr(2);
      const int i = std::stoi(digits);
      const std::string expected =
          (i % 3 == 0 ? "/r" : "/f") + std::to_string(i);
      EXPECT_EQ(event.path, expected) << "stale path for deleted file " << i;
    } else if (event.kind == EventKind::kMovedFrom &&
               k + 1 < events.size() &&
               events[k + 1].kind == EventKind::kMovedTo) {
      ++renames;
      const int i = std::stoi(event.path.substr(2));
      EXPECT_EQ(event.path, "/f" + std::to_string(i));
      EXPECT_EQ(events[k + 1].path, "/r" + std::to_string(i));
    }
  }
  EXPECT_EQ(deletes, static_cast<std::size_t>(kFiles / 2));
  EXPECT_EQ(renames, static_cast<std::size_t>((kFiles + 2) / 3));
}

TEST(ParallelResolutionTest, PoolPublishesSerialOrderWithCache) {
  const auto serial = run_collector(/*resolver_threads=*/1, /*cache_size=*/512);
  const auto parallel = run_collector(/*resolver_threads=*/4, /*cache_size=*/512);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(parallel.size(), serial.size());
  EXPECT_EQ(parallel, serial);
  EXPECT_EQ(serialize_all(parallel), serialize_all(serial));
  check_ground_truth(serial);
  check_ground_truth(parallel);
}

TEST(ParallelResolutionTest, PoolPublishesSerialOrderWithoutCache) {
  const auto serial = run_collector(1, /*cache_size=*/0);
  const auto parallel = run_collector(4, /*cache_size=*/0);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(parallel, serial);
  EXPECT_EQ(serialize_all(parallel), serialize_all(serial));
  check_ground_truth(parallel);
}

TEST(ParallelResolutionTest, TinyCacheStaysOrdered) {
  // Heavy eviction pressure: windows are constantly evicted and
  // re-resolved, which stresses the pending-invalidation guards.
  const auto serial = run_collector(1, /*cache_size=*/4);
  const auto parallel = run_collector(4, /*cache_size=*/4);
  EXPECT_EQ(parallel, serial);
  check_ground_truth(parallel);
}

TEST(ParallelResolutionTest, RepeatedRunsAreStable) {
  // The pool completes records in nondeterministic order; rerun a few
  // times so a racy reorder would actually get a chance to fire.
  const auto serial = run_collector(1, 128);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(run_collector(4, 128), serial) << "round " << round;
  }
}

}  // namespace
}  // namespace fsmon::scalable
