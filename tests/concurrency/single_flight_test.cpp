#include "src/common/single_flight.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fsmon::common {
namespace {

TEST(SingleFlightTest, SequentialCallsEachLead) {
  SingleFlight<int, int> flight;
  int computed = 0;
  auto first = flight.run(1, [&] { return ++computed; });
  auto second = flight.run(1, [&] { return ++computed; });
  EXPECT_TRUE(first.leader);
  EXPECT_TRUE(second.leader);
  EXPECT_EQ(first.value, 1);
  EXPECT_EQ(second.value, 2);  // no coalescing across non-overlapping calls
  EXPECT_EQ(flight.coalesced(), 0u);
}

TEST(SingleFlightTest, DistinctKeysDoNotCoalesce) {
  SingleFlight<int, int> flight;
  auto a = flight.run(1, [] { return 10; });
  auto b = flight.run(2, [] { return 20; });
  EXPECT_TRUE(a.leader);
  EXPECT_TRUE(b.leader);
  EXPECT_EQ(flight.coalesced(), 0u);
}

// Concurrent misses on one key: exactly one caller runs the computation,
// everyone shares its result. The leader blocks on a gate until all
// latecomers have joined the flight, so coalescing is deterministic.
TEST(SingleFlightTest, OverlappingCallsShareOneComputation) {
  SingleFlight<int, std::string> flight;
  constexpr int kLatecomers = 3;

  std::mutex mu;
  std::condition_variable cv;
  int waiting = 0;
  bool gate_open = false;
  std::atomic<int> executions{0};
  std::atomic<int> leaders{0};

  auto worker = [&] {
    auto outcome = flight.run(42, [&] {
      executions.fetch_add(1);
      // Hold the flight open until every latecomer has called run().
      std::unique_lock lock(mu);
      cv.wait(lock, [&] { return gate_open; });
      return std::string("resolved");
    });
    if (outcome.leader) leaders.fetch_add(1);
    EXPECT_EQ(outcome.value, "resolved");
  };

  std::vector<std::jthread> threads;
  threads.emplace_back(worker);  // one of these becomes the leader
  for (int i = 0; i < kLatecomers; ++i) threads.emplace_back(worker);

  // Open the gate once all non-leader threads are accounted for: the
  // coalesced counter is bumped before a latecomer blocks on the slot.
  while (flight.coalesced() < kLatecomers) std::this_thread::yield();
  {
    std::lock_guard lock(mu);
    gate_open = true;
    waiting = 0;  // silence unused warning paths
    (void)waiting;
  }
  cv.notify_all();
  threads.clear();  // join

  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(flight.coalesced(), static_cast<std::uint64_t>(kLatecomers));
}

}  // namespace
}  // namespace fsmon::common
