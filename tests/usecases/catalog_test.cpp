#include "src/usecases/catalog.hpp"

#include <gtest/gtest.h>

namespace fsmon::usecases {
namespace {

using core::EventKind;
using core::StdEvent;

StdEvent event_at(const std::string& path, EventKind kind,
                  std::uint64_t cookie = 0,
                  common::TimePoint ts = common::TimePoint{std::chrono::seconds(1)}) {
  StdEvent event;
  event.kind = kind;
  event.path = path;
  event.cookie = cookie;
  event.timestamp = ts;
  return event;
}

class CatalogTest : public ::testing::Test {
 protected:
  MetadataExtractor extractor;
  Catalog catalog{extractor};
};

TEST_F(CatalogTest, ExtractorInfersTypes) {
  EXPECT_EQ(extractor.infer_type("/a/b.csv"), "tabular");
  EXPECT_EQ(extractor.infer_type("/a/b.H5"), "hdf5");
  EXPECT_EQ(extractor.infer_type("/a/b.png"), "image");
  EXPECT_EQ(extractor.infer_type("/a/noext"), "unknown");
  EXPECT_EQ(extractor.infer_type("/a/b.weird"), "weird");
}

TEST_F(CatalogTest, ExtractorKeywords) {
  const auto keywords = extractor.extract_keywords("/exp/run1_temperature.csv");
  EXPECT_NE(std::find(keywords.begin(), keywords.end(), "run1"), keywords.end());
  EXPECT_NE(std::find(keywords.begin(), keywords.end(), "temperature"), keywords.end());
  EXPECT_NE(std::find(keywords.begin(), keywords.end(), "csv"), keywords.end());
  // Deduplicated and sorted.
  EXPECT_TRUE(std::is_sorted(keywords.begin(), keywords.end()));
  EXPECT_EQ(std::adjacent_find(keywords.begin(), keywords.end()), keywords.end());
}

TEST_F(CatalogTest, CreateIndexesEntry) {
  catalog.apply(event_at("/data/run.csv", EventKind::kCreate));
  auto entry = catalog.lookup("/data/run.csv");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->file_type, "tabular");
  EXPECT_EQ(entry->version, 1u);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST_F(CatalogTest, ModifyBumpsVersion) {
  catalog.apply(event_at("/f.txt", EventKind::kCreate));
  catalog.apply(event_at("/f.txt", EventKind::kModify, 0,
                         common::TimePoint{std::chrono::seconds(9)}));
  auto entry = catalog.lookup("/f.txt");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->version, 2u);
  EXPECT_EQ(entry->modified.time_since_epoch(), std::chrono::seconds(9));
  EXPECT_EQ(entry->created.time_since_epoch(), std::chrono::seconds(1));
}

TEST_F(CatalogTest, ModifyOfUnknownPathIndexesIt) {
  // Catalog attached mid-stream: events for unseen files index them.
  catalog.apply(event_at("/f.txt", EventKind::kModify));
  EXPECT_TRUE(catalog.lookup("/f.txt").has_value());
}

TEST_F(CatalogTest, DeleteRemovesEntry) {
  catalog.apply(event_at("/f.txt", EventKind::kCreate));
  catalog.apply(event_at("/f.txt", EventKind::kDelete));
  EXPECT_FALSE(catalog.lookup("/f.txt").has_value());
  EXPECT_EQ(catalog.size(), 0u);
}

TEST_F(CatalogTest, MovePreservesVersionAndReExtracts) {
  catalog.apply(event_at("/old/data.txt", EventKind::kCreate));
  catalog.apply(event_at("/old/data.txt", EventKind::kModify));
  catalog.apply(event_at("/old/data.txt", EventKind::kMovedFrom, 42));
  catalog.apply(event_at("/new/data.csv", EventKind::kMovedTo, 42));
  EXPECT_FALSE(catalog.lookup("/old/data.txt").has_value());
  auto moved = catalog.lookup("/new/data.csv");
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(moved->version, 2u);            // survives the move
  EXPECT_EQ(moved->file_type, "tabular");   // re-extracted from new name
  EXPECT_EQ(catalog.moves_joined(), 1u);
}

TEST_F(CatalogTest, UnpairedMovedToIndexesFresh) {
  catalog.apply(event_at("/appeared.txt", EventKind::kMovedTo, 99));
  EXPECT_TRUE(catalog.lookup("/appeared.txt").has_value());
  EXPECT_EQ(catalog.moves_joined(), 0u);
}

TEST_F(CatalogTest, SearchByPathGlob) {
  catalog.apply(event_at("/exp/a.csv", EventKind::kCreate));
  catalog.apply(event_at("/exp/b.csv", EventKind::kCreate));
  catalog.apply(event_at("/exp/c.txt", EventKind::kCreate));
  catalog.apply(event_at("/other/d.csv", EventKind::kCreate));
  EXPECT_EQ(catalog.search_path("/exp/*.csv").size(), 2u);
  EXPECT_EQ(catalog.search_path("/exp/*").size(), 3u);
}

TEST_F(CatalogTest, SearchByKeywordAndType) {
  catalog.apply(event_at("/exp/run1_temp.csv", EventKind::kCreate));
  catalog.apply(event_at("/exp/run2_temp.csv", EventKind::kCreate));
  catalog.apply(event_at("/exp/run1_notes.txt", EventKind::kCreate));
  EXPECT_EQ(catalog.search_keyword("run1").size(), 2u);
  EXPECT_EQ(catalog.search_keyword("temp").size(), 2u);
  EXPECT_EQ(catalog.search_type("tabular").size(), 2u);
  EXPECT_EQ(catalog.search_type("text").size(), 1u);
  EXPECT_TRUE(catalog.search_keyword("absent").empty());
}

TEST_F(CatalogTest, OpenEventsIgnored) {
  catalog.apply(event_at("/f", EventKind::kOpen));
  EXPECT_EQ(catalog.size(), 0u);
  EXPECT_EQ(catalog.events_applied(), 1u);
}

TEST_F(CatalogTest, EventStreamEquivalentToCrawl) {
  // Property: applying a create/modify/delete history leaves exactly the
  // live files indexed.
  for (int i = 0; i < 100; ++i)
    catalog.apply(event_at("/d/f" + std::to_string(i), EventKind::kCreate));
  for (int i = 0; i < 100; i += 2)
    catalog.apply(event_at("/d/f" + std::to_string(i), EventKind::kDelete));
  EXPECT_EQ(catalog.size(), 50u);
  EXPECT_FALSE(catalog.lookup("/d/f0").has_value());
  EXPECT_TRUE(catalog.lookup("/d/f1").has_value());
}

}  // namespace
}  // namespace fsmon::usecases
