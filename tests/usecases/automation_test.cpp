#include "src/usecases/automation.hpp"

#include <gtest/gtest.h>

namespace fsmon::usecases {
namespace {

using core::EventKind;
using core::StdEvent;

StdEvent event_at(const std::string& path, EventKind kind = EventKind::kClose) {
  StdEvent event;
  event.id = 7;
  event.kind = kind;
  event.watch_root = "/mnt/lustre";
  event.path = path;
  event.source = "lustre:MDT0";
  return event;
}

TEST(MetadataJsonTest, ContainsPaperFields) {
  // §VI-A: "constructs a JSON document of metadata, such as the file
  // type, size, owner, and location".
  const auto json = event_metadata_json(event_at("/data/scan.h5"));
  EXPECT_NE(json.find("\"event\":\"CLOSE\""), std::string::npos);
  EXPECT_NE(json.find("\"location\":\"/mnt/lustre/data/scan.h5\""), std::string::npos);
  EXPECT_NE(json.find("\"file_type\":\"h5\""), std::string::npos);
  EXPECT_NE(json.find("\"event_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"source\":\"lustre:MDT0\""), std::string::npos);
}

TEST(MetadataJsonTest, EscapesSpecialCharacters) {
  const auto json = event_metadata_json(event_at("/weird\"name\\file"));
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
}

class FlowRunnerTest : public ::testing::Test {
 protected:
  FlowRunner runner{2};
};

TEST_F(FlowRunnerTest, ExecutesStepsInOrder) {
  std::vector<std::string> calls;
  runner.register_service("a", [&](const FlowStep& step, const StdEvent&) {
    calls.push_back("a:" + step.action);
    return common::Status::ok();
  });
  runner.register_service("b", [&](const FlowStep& step, const StdEvent&) {
    calls.push_back("b:" + step.action);
    return common::Status::ok();
  });
  Flow flow{"f", {{"a", "one"}, {"b", "two"}, {"a", "three"}}};
  auto execution = runner.execute(flow, event_at("/x"));
  EXPECT_TRUE(execution.succeeded);
  EXPECT_EQ(execution.steps_completed, 3u);
  EXPECT_EQ(calls, (std::vector<std::string>{"a:one", "b:two", "a:three"}));
}

TEST_F(FlowRunnerTest, RetriesTransientFailures) {
  int attempts = 0;
  runner.register_service("flaky", [&](const FlowStep&, const StdEvent&) {
    return ++attempts < 3 ? common::Status(common::ErrorCode::kUnavailable, "x")
                          : common::Status::ok();
  });
  auto execution = runner.execute(Flow{"f", {{"flaky", "go"}}}, event_at("/x"));
  EXPECT_TRUE(execution.succeeded);
  EXPECT_EQ(execution.retries, 2u);
}

TEST_F(FlowRunnerTest, AbortsAfterExhaustedRetries) {
  runner.register_service("dead", [](const FlowStep&, const StdEvent&) {
    return common::Status(common::ErrorCode::kUnavailable, "always");
  });
  bool later_ran = false;
  runner.register_service("later", [&](const FlowStep&, const StdEvent&) {
    later_ran = true;
    return common::Status::ok();
  });
  auto execution =
      runner.execute(Flow{"f", {{"dead", "go"}, {"later", "go"}}}, event_at("/x"));
  EXPECT_FALSE(execution.succeeded);
  EXPECT_EQ(execution.steps_completed, 0u);
  EXPECT_EQ(execution.retries, 2u);  // max_retries
  EXPECT_FALSE(later_ran);
}

TEST_F(FlowRunnerTest, UnknownServiceAborts) {
  auto execution = runner.execute(Flow{"f", {{"ghost", "go"}}}, event_at("/x"));
  EXPECT_FALSE(execution.succeeded);
  EXPECT_FALSE(runner.has_service("ghost"));
}

class AutomationClientTest : public ::testing::Test {
 protected:
  AutomationClientTest() : client(runner) {
    runner.register_service("noop",
                            [&](const FlowStep&, const StdEvent&) {
                              ++invocations;
                              return common::Status::ok();
                            });
  }
  FlowRunner runner;
  AutomationClient client;
  int invocations = 0;
};

TEST_F(AutomationClientTest, TriggersMatchingRulesOnly) {
  core::FilterRule h5;
  h5.name_pattern = "*.h5";
  client.add_rule(h5, Flow{"h5-flow", {{"noop", "x"}}});
  core::FilterRule csv;
  csv.name_pattern = "*.csv";
  client.add_rule(csv, Flow{"csv-flow", {{"noop", "x"}}});

  auto executions = client.on_event(event_at("/data/a.h5"));
  ASSERT_EQ(executions.size(), 1u);
  EXPECT_EQ(executions[0].flow_name, "h5-flow");
  EXPECT_EQ(client.on_event(event_at("/data/a.txt")).size(), 0u);
  EXPECT_EQ(client.events_seen(), 2u);
  EXPECT_EQ(client.flows_started(), 1u);
}

TEST_F(AutomationClientTest, MultipleRulesCanFireForOneEvent) {
  client.add_rule({}, Flow{"all", {{"noop", "x"}}});
  core::FilterRule closes;
  closes.kinds = std::set<EventKind>{EventKind::kClose};
  client.add_rule(closes, Flow{"closes", {{"noop", "x"}}});
  auto executions = client.on_event(event_at("/f", EventKind::kClose));
  EXPECT_EQ(executions.size(), 2u);
  EXPECT_EQ(invocations, 2);
}

TEST_F(AutomationClientTest, TracksFailures) {
  runner.register_service("dead", [](const FlowStep&, const StdEvent&) {
    return common::Status(common::ErrorCode::kUnavailable, "x");
  });
  client.add_rule({}, Flow{"doomed", {{"dead", "x"}}});
  client.on_event(event_at("/f"));
  EXPECT_EQ(client.flows_failed(), 1u);
  ASSERT_EQ(client.history().size(), 1u);
  EXPECT_FALSE(client.history()[0].succeeded);
  EXPECT_EQ(client.history()[0].trigger_path, "/mnt/lustre/f");
}

}  // namespace
}  // namespace fsmon::usecases
