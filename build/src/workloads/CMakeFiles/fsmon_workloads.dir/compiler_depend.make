# Empty compiler generated dependencies file for fsmon_workloads.
# This may be replaced when dependencies are built.
