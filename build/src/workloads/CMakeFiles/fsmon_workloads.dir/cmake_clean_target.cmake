file(REMOVE_RECURSE
  "libfsmon_workloads.a"
)
