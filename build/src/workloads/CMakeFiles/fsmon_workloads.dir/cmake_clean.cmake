file(REMOVE_RECURSE
  "CMakeFiles/fsmon_workloads.dir/filebench.cpp.o"
  "CMakeFiles/fsmon_workloads.dir/filebench.cpp.o.d"
  "CMakeFiles/fsmon_workloads.dir/hacc.cpp.o"
  "CMakeFiles/fsmon_workloads.dir/hacc.cpp.o.d"
  "CMakeFiles/fsmon_workloads.dir/ior.cpp.o"
  "CMakeFiles/fsmon_workloads.dir/ior.cpp.o.d"
  "CMakeFiles/fsmon_workloads.dir/scripts.cpp.o"
  "CMakeFiles/fsmon_workloads.dir/scripts.cpp.o.d"
  "libfsmon_workloads.a"
  "libfsmon_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmon_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
