
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eventstore/store.cpp" "src/eventstore/CMakeFiles/fsmon_eventstore.dir/store.cpp.o" "gcc" "src/eventstore/CMakeFiles/fsmon_eventstore.dir/store.cpp.o.d"
  "/root/repo/src/eventstore/wal.cpp" "src/eventstore/CMakeFiles/fsmon_eventstore.dir/wal.cpp.o" "gcc" "src/eventstore/CMakeFiles/fsmon_eventstore.dir/wal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fsmon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
