file(REMOVE_RECURSE
  "CMakeFiles/fsmon_eventstore.dir/store.cpp.o"
  "CMakeFiles/fsmon_eventstore.dir/store.cpp.o.d"
  "CMakeFiles/fsmon_eventstore.dir/wal.cpp.o"
  "CMakeFiles/fsmon_eventstore.dir/wal.cpp.o.d"
  "libfsmon_eventstore.a"
  "libfsmon_eventstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmon_eventstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
