# Empty compiler generated dependencies file for fsmon_eventstore.
# This may be replaced when dependencies are built.
