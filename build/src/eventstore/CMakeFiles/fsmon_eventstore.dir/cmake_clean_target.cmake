file(REMOVE_RECURSE
  "libfsmon_eventstore.a"
)
