# Empty compiler generated dependencies file for fsmon_localfs.
# This may be replaced when dependencies are built.
