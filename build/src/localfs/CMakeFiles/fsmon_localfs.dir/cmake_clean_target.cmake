file(REMOVE_RECURSE
  "libfsmon_localfs.a"
)
