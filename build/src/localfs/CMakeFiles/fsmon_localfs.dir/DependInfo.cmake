
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/localfs/inotify_dsi.cpp" "src/localfs/CMakeFiles/fsmon_localfs.dir/inotify_dsi.cpp.o" "gcc" "src/localfs/CMakeFiles/fsmon_localfs.dir/inotify_dsi.cpp.o.d"
  "/root/repo/src/localfs/memfs.cpp" "src/localfs/CMakeFiles/fsmon_localfs.dir/memfs.cpp.o" "gcc" "src/localfs/CMakeFiles/fsmon_localfs.dir/memfs.cpp.o.d"
  "/root/repo/src/localfs/native.cpp" "src/localfs/CMakeFiles/fsmon_localfs.dir/native.cpp.o" "gcc" "src/localfs/CMakeFiles/fsmon_localfs.dir/native.cpp.o.d"
  "/root/repo/src/localfs/platform.cpp" "src/localfs/CMakeFiles/fsmon_localfs.dir/platform.cpp.o" "gcc" "src/localfs/CMakeFiles/fsmon_localfs.dir/platform.cpp.o.d"
  "/root/repo/src/localfs/register.cpp" "src/localfs/CMakeFiles/fsmon_localfs.dir/register.cpp.o" "gcc" "src/localfs/CMakeFiles/fsmon_localfs.dir/register.cpp.o.d"
  "/root/repo/src/localfs/sim_dsi.cpp" "src/localfs/CMakeFiles/fsmon_localfs.dir/sim_dsi.cpp.o" "gcc" "src/localfs/CMakeFiles/fsmon_localfs.dir/sim_dsi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fsmon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fsmon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eventstore/CMakeFiles/fsmon_eventstore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
