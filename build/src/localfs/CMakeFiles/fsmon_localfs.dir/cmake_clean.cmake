file(REMOVE_RECURSE
  "CMakeFiles/fsmon_localfs.dir/inotify_dsi.cpp.o"
  "CMakeFiles/fsmon_localfs.dir/inotify_dsi.cpp.o.d"
  "CMakeFiles/fsmon_localfs.dir/memfs.cpp.o"
  "CMakeFiles/fsmon_localfs.dir/memfs.cpp.o.d"
  "CMakeFiles/fsmon_localfs.dir/native.cpp.o"
  "CMakeFiles/fsmon_localfs.dir/native.cpp.o.d"
  "CMakeFiles/fsmon_localfs.dir/platform.cpp.o"
  "CMakeFiles/fsmon_localfs.dir/platform.cpp.o.d"
  "CMakeFiles/fsmon_localfs.dir/register.cpp.o"
  "CMakeFiles/fsmon_localfs.dir/register.cpp.o.d"
  "CMakeFiles/fsmon_localfs.dir/sim_dsi.cpp.o"
  "CMakeFiles/fsmon_localfs.dir/sim_dsi.cpp.o.d"
  "libfsmon_localfs.a"
  "libfsmon_localfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmon_localfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
