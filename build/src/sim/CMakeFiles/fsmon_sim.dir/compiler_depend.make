# Empty compiler generated dependencies file for fsmon_sim.
# This may be replaced when dependencies are built.
