file(REMOVE_RECURSE
  "libfsmon_sim.a"
)
