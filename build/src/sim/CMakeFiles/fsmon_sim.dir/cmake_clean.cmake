file(REMOVE_RECURSE
  "CMakeFiles/fsmon_sim.dir/engine.cpp.o"
  "CMakeFiles/fsmon_sim.dir/engine.cpp.o.d"
  "CMakeFiles/fsmon_sim.dir/service_station.cpp.o"
  "CMakeFiles/fsmon_sim.dir/service_station.cpp.o.d"
  "libfsmon_sim.a"
  "libfsmon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
