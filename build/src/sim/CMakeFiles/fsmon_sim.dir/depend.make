# Empty dependencies file for fsmon_sim.
# This may be replaced when dependencies are built.
