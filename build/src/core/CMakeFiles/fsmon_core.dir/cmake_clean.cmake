file(REMOVE_RECURSE
  "CMakeFiles/fsmon_core.dir/dialects.cpp.o"
  "CMakeFiles/fsmon_core.dir/dialects.cpp.o.d"
  "CMakeFiles/fsmon_core.dir/dsi.cpp.o"
  "CMakeFiles/fsmon_core.dir/dsi.cpp.o.d"
  "CMakeFiles/fsmon_core.dir/event.cpp.o"
  "CMakeFiles/fsmon_core.dir/event.cpp.o.d"
  "CMakeFiles/fsmon_core.dir/filter.cpp.o"
  "CMakeFiles/fsmon_core.dir/filter.cpp.o.d"
  "CMakeFiles/fsmon_core.dir/interface.cpp.o"
  "CMakeFiles/fsmon_core.dir/interface.cpp.o.d"
  "CMakeFiles/fsmon_core.dir/monitor.cpp.o"
  "CMakeFiles/fsmon_core.dir/monitor.cpp.o.d"
  "CMakeFiles/fsmon_core.dir/resolution.cpp.o"
  "CMakeFiles/fsmon_core.dir/resolution.cpp.o.d"
  "CMakeFiles/fsmon_core.dir/watchdog_api.cpp.o"
  "CMakeFiles/fsmon_core.dir/watchdog_api.cpp.o.d"
  "libfsmon_core.a"
  "libfsmon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
