file(REMOVE_RECURSE
  "libfsmon_core.a"
)
