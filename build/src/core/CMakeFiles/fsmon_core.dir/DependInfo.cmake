
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dialects.cpp" "src/core/CMakeFiles/fsmon_core.dir/dialects.cpp.o" "gcc" "src/core/CMakeFiles/fsmon_core.dir/dialects.cpp.o.d"
  "/root/repo/src/core/dsi.cpp" "src/core/CMakeFiles/fsmon_core.dir/dsi.cpp.o" "gcc" "src/core/CMakeFiles/fsmon_core.dir/dsi.cpp.o.d"
  "/root/repo/src/core/event.cpp" "src/core/CMakeFiles/fsmon_core.dir/event.cpp.o" "gcc" "src/core/CMakeFiles/fsmon_core.dir/event.cpp.o.d"
  "/root/repo/src/core/filter.cpp" "src/core/CMakeFiles/fsmon_core.dir/filter.cpp.o" "gcc" "src/core/CMakeFiles/fsmon_core.dir/filter.cpp.o.d"
  "/root/repo/src/core/interface.cpp" "src/core/CMakeFiles/fsmon_core.dir/interface.cpp.o" "gcc" "src/core/CMakeFiles/fsmon_core.dir/interface.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/fsmon_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/fsmon_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/resolution.cpp" "src/core/CMakeFiles/fsmon_core.dir/resolution.cpp.o" "gcc" "src/core/CMakeFiles/fsmon_core.dir/resolution.cpp.o.d"
  "/root/repo/src/core/watchdog_api.cpp" "src/core/CMakeFiles/fsmon_core.dir/watchdog_api.cpp.o" "gcc" "src/core/CMakeFiles/fsmon_core.dir/watchdog_api.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fsmon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/eventstore/CMakeFiles/fsmon_eventstore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
