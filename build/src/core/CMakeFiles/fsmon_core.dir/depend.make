# Empty dependencies file for fsmon_core.
# This may be replaced when dependencies are built.
