file(REMOVE_RECURSE
  "libfsmon_usecases.a"
)
