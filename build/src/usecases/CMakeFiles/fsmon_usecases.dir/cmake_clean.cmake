file(REMOVE_RECURSE
  "CMakeFiles/fsmon_usecases.dir/automation.cpp.o"
  "CMakeFiles/fsmon_usecases.dir/automation.cpp.o.d"
  "CMakeFiles/fsmon_usecases.dir/catalog.cpp.o"
  "CMakeFiles/fsmon_usecases.dir/catalog.cpp.o.d"
  "libfsmon_usecases.a"
  "libfsmon_usecases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmon_usecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
