# Empty dependencies file for fsmon_usecases.
# This may be replaced when dependencies are built.
