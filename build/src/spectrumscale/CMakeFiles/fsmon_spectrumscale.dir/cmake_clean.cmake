file(REMOVE_RECURSE
  "CMakeFiles/fsmon_spectrumscale.dir/fal.cpp.o"
  "CMakeFiles/fsmon_spectrumscale.dir/fal.cpp.o.d"
  "CMakeFiles/fsmon_spectrumscale.dir/fal_dsi.cpp.o"
  "CMakeFiles/fsmon_spectrumscale.dir/fal_dsi.cpp.o.d"
  "libfsmon_spectrumscale.a"
  "libfsmon_spectrumscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmon_spectrumscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
