file(REMOVE_RECURSE
  "libfsmon_spectrumscale.a"
)
