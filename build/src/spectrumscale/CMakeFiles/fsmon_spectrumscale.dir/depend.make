# Empty dependencies file for fsmon_spectrumscale.
# This may be replaced when dependencies are built.
