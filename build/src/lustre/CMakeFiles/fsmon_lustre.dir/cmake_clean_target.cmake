file(REMOVE_RECURSE
  "libfsmon_lustre.a"
)
