
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lustre/changelog.cpp" "src/lustre/CMakeFiles/fsmon_lustre.dir/changelog.cpp.o" "gcc" "src/lustre/CMakeFiles/fsmon_lustre.dir/changelog.cpp.o.d"
  "/root/repo/src/lustre/fid.cpp" "src/lustre/CMakeFiles/fsmon_lustre.dir/fid.cpp.o" "gcc" "src/lustre/CMakeFiles/fsmon_lustre.dir/fid.cpp.o.d"
  "/root/repo/src/lustre/fid_resolver.cpp" "src/lustre/CMakeFiles/fsmon_lustre.dir/fid_resolver.cpp.o" "gcc" "src/lustre/CMakeFiles/fsmon_lustre.dir/fid_resolver.cpp.o.d"
  "/root/repo/src/lustre/filesystem.cpp" "src/lustre/CMakeFiles/fsmon_lustre.dir/filesystem.cpp.o" "gcc" "src/lustre/CMakeFiles/fsmon_lustre.dir/filesystem.cpp.o.d"
  "/root/repo/src/lustre/mdt.cpp" "src/lustre/CMakeFiles/fsmon_lustre.dir/mdt.cpp.o" "gcc" "src/lustre/CMakeFiles/fsmon_lustre.dir/mdt.cpp.o.d"
  "/root/repo/src/lustre/mgs.cpp" "src/lustre/CMakeFiles/fsmon_lustre.dir/mgs.cpp.o" "gcc" "src/lustre/CMakeFiles/fsmon_lustre.dir/mgs.cpp.o.d"
  "/root/repo/src/lustre/namespace.cpp" "src/lustre/CMakeFiles/fsmon_lustre.dir/namespace.cpp.o" "gcc" "src/lustre/CMakeFiles/fsmon_lustre.dir/namespace.cpp.o.d"
  "/root/repo/src/lustre/ost.cpp" "src/lustre/CMakeFiles/fsmon_lustre.dir/ost.cpp.o" "gcc" "src/lustre/CMakeFiles/fsmon_lustre.dir/ost.cpp.o.d"
  "/root/repo/src/lustre/profiles.cpp" "src/lustre/CMakeFiles/fsmon_lustre.dir/profiles.cpp.o" "gcc" "src/lustre/CMakeFiles/fsmon_lustre.dir/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fsmon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
