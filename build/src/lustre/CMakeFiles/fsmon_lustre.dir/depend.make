# Empty dependencies file for fsmon_lustre.
# This may be replaced when dependencies are built.
