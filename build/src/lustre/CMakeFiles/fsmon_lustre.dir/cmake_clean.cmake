file(REMOVE_RECURSE
  "CMakeFiles/fsmon_lustre.dir/changelog.cpp.o"
  "CMakeFiles/fsmon_lustre.dir/changelog.cpp.o.d"
  "CMakeFiles/fsmon_lustre.dir/fid.cpp.o"
  "CMakeFiles/fsmon_lustre.dir/fid.cpp.o.d"
  "CMakeFiles/fsmon_lustre.dir/fid_resolver.cpp.o"
  "CMakeFiles/fsmon_lustre.dir/fid_resolver.cpp.o.d"
  "CMakeFiles/fsmon_lustre.dir/filesystem.cpp.o"
  "CMakeFiles/fsmon_lustre.dir/filesystem.cpp.o.d"
  "CMakeFiles/fsmon_lustre.dir/mdt.cpp.o"
  "CMakeFiles/fsmon_lustre.dir/mdt.cpp.o.d"
  "CMakeFiles/fsmon_lustre.dir/mgs.cpp.o"
  "CMakeFiles/fsmon_lustre.dir/mgs.cpp.o.d"
  "CMakeFiles/fsmon_lustre.dir/namespace.cpp.o"
  "CMakeFiles/fsmon_lustre.dir/namespace.cpp.o.d"
  "CMakeFiles/fsmon_lustre.dir/ost.cpp.o"
  "CMakeFiles/fsmon_lustre.dir/ost.cpp.o.d"
  "CMakeFiles/fsmon_lustre.dir/profiles.cpp.o"
  "CMakeFiles/fsmon_lustre.dir/profiles.cpp.o.d"
  "libfsmon_lustre.a"
  "libfsmon_lustre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmon_lustre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
