file(REMOVE_RECURSE
  "CMakeFiles/fsmon_scalable.dir/aggregator.cpp.o"
  "CMakeFiles/fsmon_scalable.dir/aggregator.cpp.o.d"
  "CMakeFiles/fsmon_scalable.dir/collector.cpp.o"
  "CMakeFiles/fsmon_scalable.dir/collector.cpp.o.d"
  "CMakeFiles/fsmon_scalable.dir/consumer.cpp.o"
  "CMakeFiles/fsmon_scalable.dir/consumer.cpp.o.d"
  "CMakeFiles/fsmon_scalable.dir/processor.cpp.o"
  "CMakeFiles/fsmon_scalable.dir/processor.cpp.o.d"
  "CMakeFiles/fsmon_scalable.dir/robinhood.cpp.o"
  "CMakeFiles/fsmon_scalable.dir/robinhood.cpp.o.d"
  "CMakeFiles/fsmon_scalable.dir/scalable_monitor.cpp.o"
  "CMakeFiles/fsmon_scalable.dir/scalable_monitor.cpp.o.d"
  "CMakeFiles/fsmon_scalable.dir/sim_driver.cpp.o"
  "CMakeFiles/fsmon_scalable.dir/sim_driver.cpp.o.d"
  "CMakeFiles/fsmon_scalable.dir/tcp_bridge.cpp.o"
  "CMakeFiles/fsmon_scalable.dir/tcp_bridge.cpp.o.d"
  "libfsmon_scalable.a"
  "libfsmon_scalable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmon_scalable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
