
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scalable/aggregator.cpp" "src/scalable/CMakeFiles/fsmon_scalable.dir/aggregator.cpp.o" "gcc" "src/scalable/CMakeFiles/fsmon_scalable.dir/aggregator.cpp.o.d"
  "/root/repo/src/scalable/collector.cpp" "src/scalable/CMakeFiles/fsmon_scalable.dir/collector.cpp.o" "gcc" "src/scalable/CMakeFiles/fsmon_scalable.dir/collector.cpp.o.d"
  "/root/repo/src/scalable/consumer.cpp" "src/scalable/CMakeFiles/fsmon_scalable.dir/consumer.cpp.o" "gcc" "src/scalable/CMakeFiles/fsmon_scalable.dir/consumer.cpp.o.d"
  "/root/repo/src/scalable/processor.cpp" "src/scalable/CMakeFiles/fsmon_scalable.dir/processor.cpp.o" "gcc" "src/scalable/CMakeFiles/fsmon_scalable.dir/processor.cpp.o.d"
  "/root/repo/src/scalable/robinhood.cpp" "src/scalable/CMakeFiles/fsmon_scalable.dir/robinhood.cpp.o" "gcc" "src/scalable/CMakeFiles/fsmon_scalable.dir/robinhood.cpp.o.d"
  "/root/repo/src/scalable/scalable_monitor.cpp" "src/scalable/CMakeFiles/fsmon_scalable.dir/scalable_monitor.cpp.o" "gcc" "src/scalable/CMakeFiles/fsmon_scalable.dir/scalable_monitor.cpp.o.d"
  "/root/repo/src/scalable/sim_driver.cpp" "src/scalable/CMakeFiles/fsmon_scalable.dir/sim_driver.cpp.o" "gcc" "src/scalable/CMakeFiles/fsmon_scalable.dir/sim_driver.cpp.o.d"
  "/root/repo/src/scalable/tcp_bridge.cpp" "src/scalable/CMakeFiles/fsmon_scalable.dir/tcp_bridge.cpp.o" "gcc" "src/scalable/CMakeFiles/fsmon_scalable.dir/tcp_bridge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fsmon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fsmon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lustre/CMakeFiles/fsmon_lustre.dir/DependInfo.cmake"
  "/root/repo/build/src/msgq/CMakeFiles/fsmon_msgq.dir/DependInfo.cmake"
  "/root/repo/build/src/eventstore/CMakeFiles/fsmon_eventstore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsmon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
