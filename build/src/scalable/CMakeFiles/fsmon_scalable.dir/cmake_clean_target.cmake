file(REMOVE_RECURSE
  "libfsmon_scalable.a"
)
