# Empty dependencies file for fsmon_scalable.
# This may be replaced when dependencies are built.
