# Empty dependencies file for fsmon_common.
# This may be replaced when dependencies are built.
