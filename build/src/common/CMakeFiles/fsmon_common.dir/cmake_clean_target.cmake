file(REMOVE_RECURSE
  "libfsmon_common.a"
)
