file(REMOVE_RECURSE
  "CMakeFiles/fsmon_common.dir/clock.cpp.o"
  "CMakeFiles/fsmon_common.dir/clock.cpp.o.d"
  "CMakeFiles/fsmon_common.dir/config.cpp.o"
  "CMakeFiles/fsmon_common.dir/config.cpp.o.d"
  "CMakeFiles/fsmon_common.dir/crc32.cpp.o"
  "CMakeFiles/fsmon_common.dir/crc32.cpp.o.d"
  "CMakeFiles/fsmon_common.dir/histogram.cpp.o"
  "CMakeFiles/fsmon_common.dir/histogram.cpp.o.d"
  "CMakeFiles/fsmon_common.dir/logging.cpp.o"
  "CMakeFiles/fsmon_common.dir/logging.cpp.o.d"
  "CMakeFiles/fsmon_common.dir/random.cpp.o"
  "CMakeFiles/fsmon_common.dir/random.cpp.o.d"
  "CMakeFiles/fsmon_common.dir/rate_meter.cpp.o"
  "CMakeFiles/fsmon_common.dir/rate_meter.cpp.o.d"
  "CMakeFiles/fsmon_common.dir/resource_probe.cpp.o"
  "CMakeFiles/fsmon_common.dir/resource_probe.cpp.o.d"
  "CMakeFiles/fsmon_common.dir/string_util.cpp.o"
  "CMakeFiles/fsmon_common.dir/string_util.cpp.o.d"
  "CMakeFiles/fsmon_common.dir/token_bucket.cpp.o"
  "CMakeFiles/fsmon_common.dir/token_bucket.cpp.o.d"
  "libfsmon_common.a"
  "libfsmon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
