
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/clock.cpp" "src/common/CMakeFiles/fsmon_common.dir/clock.cpp.o" "gcc" "src/common/CMakeFiles/fsmon_common.dir/clock.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/common/CMakeFiles/fsmon_common.dir/config.cpp.o" "gcc" "src/common/CMakeFiles/fsmon_common.dir/config.cpp.o.d"
  "/root/repo/src/common/crc32.cpp" "src/common/CMakeFiles/fsmon_common.dir/crc32.cpp.o" "gcc" "src/common/CMakeFiles/fsmon_common.dir/crc32.cpp.o.d"
  "/root/repo/src/common/histogram.cpp" "src/common/CMakeFiles/fsmon_common.dir/histogram.cpp.o" "gcc" "src/common/CMakeFiles/fsmon_common.dir/histogram.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/fsmon_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/fsmon_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/common/CMakeFiles/fsmon_common.dir/random.cpp.o" "gcc" "src/common/CMakeFiles/fsmon_common.dir/random.cpp.o.d"
  "/root/repo/src/common/rate_meter.cpp" "src/common/CMakeFiles/fsmon_common.dir/rate_meter.cpp.o" "gcc" "src/common/CMakeFiles/fsmon_common.dir/rate_meter.cpp.o.d"
  "/root/repo/src/common/resource_probe.cpp" "src/common/CMakeFiles/fsmon_common.dir/resource_probe.cpp.o" "gcc" "src/common/CMakeFiles/fsmon_common.dir/resource_probe.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "src/common/CMakeFiles/fsmon_common.dir/string_util.cpp.o" "gcc" "src/common/CMakeFiles/fsmon_common.dir/string_util.cpp.o.d"
  "/root/repo/src/common/token_bucket.cpp" "src/common/CMakeFiles/fsmon_common.dir/token_bucket.cpp.o" "gcc" "src/common/CMakeFiles/fsmon_common.dir/token_bucket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
