file(REMOVE_RECURSE
  "libfsmon_msgq.a"
)
