file(REMOVE_RECURSE
  "CMakeFiles/fsmon_msgq.dir/message.cpp.o"
  "CMakeFiles/fsmon_msgq.dir/message.cpp.o.d"
  "CMakeFiles/fsmon_msgq.dir/pubsub.cpp.o"
  "CMakeFiles/fsmon_msgq.dir/pubsub.cpp.o.d"
  "CMakeFiles/fsmon_msgq.dir/tcp.cpp.o"
  "CMakeFiles/fsmon_msgq.dir/tcp.cpp.o.d"
  "libfsmon_msgq.a"
  "libfsmon_msgq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmon_msgq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
