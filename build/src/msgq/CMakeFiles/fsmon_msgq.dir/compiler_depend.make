# Empty compiler generated dependencies file for fsmon_msgq.
# This may be replaced when dependencies are built.
