file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_reporting.dir/bench_table6_reporting.cpp.o"
  "CMakeFiles/bench_table6_reporting.dir/bench_table6_reporting.cpp.o.d"
  "bench_table6_reporting"
  "bench_table6_reporting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_reporting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
