# Empty compiler generated dependencies file for bench_table2_event_defs.
# This may be replaced when dependencies are built.
