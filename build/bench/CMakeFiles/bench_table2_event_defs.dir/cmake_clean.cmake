file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_event_defs.dir/bench_table2_event_defs.cpp.o"
  "CMakeFiles/bench_table2_event_defs.dir/bench_table2_event_defs.cpp.o.d"
  "bench_table2_event_defs"
  "bench_table2_event_defs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_event_defs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
