
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_event_defs.cpp" "bench/CMakeFiles/bench_table2_event_defs.dir/bench_table2_event_defs.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_event_defs.dir/bench_table2_event_defs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fsmon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/msgq/CMakeFiles/fsmon_msgq.dir/DependInfo.cmake"
  "/root/repo/build/src/eventstore/CMakeFiles/fsmon_eventstore.dir/DependInfo.cmake"
  "/root/repo/build/src/lustre/CMakeFiles/fsmon_lustre.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fsmon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/localfs/CMakeFiles/fsmon_localfs.dir/DependInfo.cmake"
  "/root/repo/build/src/scalable/CMakeFiles/fsmon_scalable.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/fsmon_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
