# Empty compiler generated dependencies file for bench_table8_cache_sweep.
# This may be replaced when dependencies are built.
