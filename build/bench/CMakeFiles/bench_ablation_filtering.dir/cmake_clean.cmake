file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_filtering.dir/bench_ablation_filtering.cpp.o"
  "CMakeFiles/bench_ablation_filtering.dir/bench_ablation_filtering.cpp.o.d"
  "bench_ablation_filtering"
  "bench_ablation_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
