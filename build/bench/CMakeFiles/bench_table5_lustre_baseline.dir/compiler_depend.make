# Empty compiler generated dependencies file for bench_table5_lustre_baseline.
# This may be replaced when dependencies are built.
