file(REMOVE_RECURSE
  "CMakeFiles/bench_watch_scaling.dir/bench_watch_scaling.cpp.o"
  "CMakeFiles/bench_watch_scaling.dir/bench_watch_scaling.cpp.o.d"
  "bench_watch_scaling"
  "bench_watch_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_watch_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
