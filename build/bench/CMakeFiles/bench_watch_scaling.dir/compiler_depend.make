# Empty compiler generated dependencies file for bench_watch_scaling.
# This may be replaced when dependencies are built.
