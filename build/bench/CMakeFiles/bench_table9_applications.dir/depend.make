# Empty dependencies file for bench_table9_applications.
# This may be replaced when dependencies are built.
