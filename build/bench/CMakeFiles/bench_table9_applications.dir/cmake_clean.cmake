file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_applications.dir/bench_table9_applications.cpp.o"
  "CMakeFiles/bench_table9_applications.dir/bench_table9_applications.cpp.o.d"
  "bench_table9_applications"
  "bench_table9_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
