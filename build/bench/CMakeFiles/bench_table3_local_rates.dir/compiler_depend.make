# Empty compiler generated dependencies file for bench_table3_local_rates.
# This may be replaced when dependencies are built.
