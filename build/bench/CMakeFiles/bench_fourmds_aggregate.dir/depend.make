# Empty dependencies file for bench_fourmds_aggregate.
# This may be replaced when dependencies are built.
