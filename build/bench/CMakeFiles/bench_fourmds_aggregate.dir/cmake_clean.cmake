file(REMOVE_RECURSE
  "CMakeFiles/bench_fourmds_aggregate.dir/bench_fourmds_aggregate.cpp.o"
  "CMakeFiles/bench_fourmds_aggregate.dir/bench_fourmds_aggregate.cpp.o.d"
  "bench_fourmds_aggregate"
  "bench_fourmds_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fourmds_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
