# Empty dependencies file for bench_robinhood_compare.
# This may be replaced when dependencies are built.
