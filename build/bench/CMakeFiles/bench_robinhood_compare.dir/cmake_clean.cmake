file(REMOVE_RECURSE
  "CMakeFiles/bench_robinhood_compare.dir/bench_robinhood_compare.cpp.o"
  "CMakeFiles/bench_robinhood_compare.dir/bench_robinhood_compare.cpp.o.d"
  "bench_robinhood_compare"
  "bench_robinhood_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robinhood_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
