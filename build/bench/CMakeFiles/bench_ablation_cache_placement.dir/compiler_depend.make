# Empty compiler generated dependencies file for bench_ablation_cache_placement.
# This may be replaced when dependencies are built.
