# Empty dependencies file for fsmon_tests.
# This may be replaced when dependencies are built.
