
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/bounded_queue_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/common/bounded_queue_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/common/bounded_queue_test.cpp.o.d"
  "/root/repo/tests/common/clock_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/common/clock_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/common/clock_test.cpp.o.d"
  "/root/repo/tests/common/config_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/common/config_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/common/config_test.cpp.o.d"
  "/root/repo/tests/common/crc32_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/common/crc32_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/common/crc32_test.cpp.o.d"
  "/root/repo/tests/common/histogram_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/common/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/common/histogram_test.cpp.o.d"
  "/root/repo/tests/common/logging_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/common/logging_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/common/logging_test.cpp.o.d"
  "/root/repo/tests/common/lru_cache_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/common/lru_cache_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/common/lru_cache_test.cpp.o.d"
  "/root/repo/tests/common/random_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/common/random_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/common/random_test.cpp.o.d"
  "/root/repo/tests/common/rate_meter_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/common/rate_meter_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/common/rate_meter_test.cpp.o.d"
  "/root/repo/tests/common/resource_probe_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/common/resource_probe_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/common/resource_probe_test.cpp.o.d"
  "/root/repo/tests/common/spsc_ring_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/common/spsc_ring_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/common/spsc_ring_test.cpp.o.d"
  "/root/repo/tests/common/string_util_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/common/string_util_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/common/string_util_test.cpp.o.d"
  "/root/repo/tests/common/token_bucket_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/common/token_bucket_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/common/token_bucket_test.cpp.o.d"
  "/root/repo/tests/core/dialects_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/core/dialects_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/core/dialects_test.cpp.o.d"
  "/root/repo/tests/core/dsi_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/core/dsi_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/core/dsi_test.cpp.o.d"
  "/root/repo/tests/core/event_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/core/event_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/core/event_test.cpp.o.d"
  "/root/repo/tests/core/filter_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/core/filter_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/core/filter_test.cpp.o.d"
  "/root/repo/tests/core/interface_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/core/interface_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/core/interface_test.cpp.o.d"
  "/root/repo/tests/core/monitor_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/core/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/core/monitor_test.cpp.o.d"
  "/root/repo/tests/core/resolution_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/core/resolution_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/core/resolution_test.cpp.o.d"
  "/root/repo/tests/core/watchdog_api_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/core/watchdog_api_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/core/watchdog_api_test.cpp.o.d"
  "/root/repo/tests/eventstore/store_property_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/eventstore/store_property_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/eventstore/store_property_test.cpp.o.d"
  "/root/repo/tests/eventstore/store_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/eventstore/store_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/eventstore/store_test.cpp.o.d"
  "/root/repo/tests/eventstore/wal_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/eventstore/wal_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/eventstore/wal_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/fault_tolerance_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/integration/fault_tolerance_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/integration/fault_tolerance_test.cpp.o.d"
  "/root/repo/tests/integration/local_replay_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/integration/local_replay_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/integration/local_replay_test.cpp.o.d"
  "/root/repo/tests/localfs/inotify_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/localfs/inotify_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/localfs/inotify_test.cpp.o.d"
  "/root/repo/tests/localfs/memfs_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/localfs/memfs_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/localfs/memfs_test.cpp.o.d"
  "/root/repo/tests/localfs/native_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/localfs/native_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/localfs/native_test.cpp.o.d"
  "/root/repo/tests/localfs/platform_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/localfs/platform_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/localfs/platform_test.cpp.o.d"
  "/root/repo/tests/localfs/sim_dsi_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/localfs/sim_dsi_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/localfs/sim_dsi_test.cpp.o.d"
  "/root/repo/tests/lustre/changelog_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/lustre/changelog_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/lustre/changelog_test.cpp.o.d"
  "/root/repo/tests/lustre/fid_resolver_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/lustre/fid_resolver_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/lustre/fid_resolver_test.cpp.o.d"
  "/root/repo/tests/lustre/fid_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/lustre/fid_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/lustre/fid_test.cpp.o.d"
  "/root/repo/tests/lustre/filesystem_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/lustre/filesystem_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/lustre/filesystem_test.cpp.o.d"
  "/root/repo/tests/lustre/mdt_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/lustre/mdt_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/lustre/mdt_test.cpp.o.d"
  "/root/repo/tests/lustre/namespace_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/lustre/namespace_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/lustre/namespace_test.cpp.o.d"
  "/root/repo/tests/lustre/ost_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/lustre/ost_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/lustre/ost_test.cpp.o.d"
  "/root/repo/tests/msgq/message_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/msgq/message_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/msgq/message_test.cpp.o.d"
  "/root/repo/tests/msgq/pubsub_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/msgq/pubsub_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/msgq/pubsub_test.cpp.o.d"
  "/root/repo/tests/msgq/tcp_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/msgq/tcp_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/msgq/tcp_test.cpp.o.d"
  "/root/repo/tests/scalable/collector_costs_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/scalable/collector_costs_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/scalable/collector_costs_test.cpp.o.d"
  "/root/repo/tests/scalable/consumer_overflow_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/scalable/consumer_overflow_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/scalable/consumer_overflow_test.cpp.o.d"
  "/root/repo/tests/scalable/pipeline_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/scalable/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/scalable/pipeline_test.cpp.o.d"
  "/root/repo/tests/scalable/processor_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/scalable/processor_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/scalable/processor_test.cpp.o.d"
  "/root/repo/tests/scalable/property_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/scalable/property_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/scalable/property_test.cpp.o.d"
  "/root/repo/tests/scalable/robinhood_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/scalable/robinhood_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/scalable/robinhood_test.cpp.o.d"
  "/root/repo/tests/scalable/sim_driver_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/scalable/sim_driver_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/scalable/sim_driver_test.cpp.o.d"
  "/root/repo/tests/scalable/tcp_bridge_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/scalable/tcp_bridge_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/scalable/tcp_bridge_test.cpp.o.d"
  "/root/repo/tests/sim/engine_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/sim/engine_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/sim/engine_test.cpp.o.d"
  "/root/repo/tests/sim/service_station_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/sim/service_station_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/sim/service_station_test.cpp.o.d"
  "/root/repo/tests/spectrumscale/fal_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/spectrumscale/fal_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/spectrumscale/fal_test.cpp.o.d"
  "/root/repo/tests/usecases/automation_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/usecases/automation_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/usecases/automation_test.cpp.o.d"
  "/root/repo/tests/usecases/catalog_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/usecases/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/usecases/catalog_test.cpp.o.d"
  "/root/repo/tests/workloads/workloads_test.cpp" "tests/CMakeFiles/fsmon_tests.dir/workloads/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/fsmon_tests.dir/workloads/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fsmon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/msgq/CMakeFiles/fsmon_msgq.dir/DependInfo.cmake"
  "/root/repo/build/src/eventstore/CMakeFiles/fsmon_eventstore.dir/DependInfo.cmake"
  "/root/repo/build/src/lustre/CMakeFiles/fsmon_lustre.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fsmon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/localfs/CMakeFiles/fsmon_localfs.dir/DependInfo.cmake"
  "/root/repo/build/src/scalable/CMakeFiles/fsmon_scalable.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/fsmon_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/usecases/CMakeFiles/fsmon_usecases.dir/DependInfo.cmake"
  "/root/repo/build/src/spectrumscale/CMakeFiles/fsmon_spectrumscale.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
