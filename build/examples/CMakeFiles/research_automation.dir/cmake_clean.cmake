file(REMOVE_RECURSE
  "CMakeFiles/research_automation.dir/research_automation.cpp.o"
  "CMakeFiles/research_automation.dir/research_automation.cpp.o.d"
  "research_automation"
  "research_automation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/research_automation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
