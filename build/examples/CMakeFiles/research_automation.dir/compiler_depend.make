# Empty compiler generated dependencies file for research_automation.
# This may be replaced when dependencies are built.
