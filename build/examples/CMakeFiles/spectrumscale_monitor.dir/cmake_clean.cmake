file(REMOVE_RECURSE
  "CMakeFiles/spectrumscale_monitor.dir/spectrumscale_monitor.cpp.o"
  "CMakeFiles/spectrumscale_monitor.dir/spectrumscale_monitor.cpp.o.d"
  "spectrumscale_monitor"
  "spectrumscale_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrumscale_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
