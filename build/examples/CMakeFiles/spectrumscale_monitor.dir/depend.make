# Empty dependencies file for spectrumscale_monitor.
# This may be replaced when dependencies are built.
