# Empty dependencies file for lustre_site_monitor.
# This may be replaced when dependencies are built.
