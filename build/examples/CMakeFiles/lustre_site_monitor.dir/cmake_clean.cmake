file(REMOVE_RECURSE
  "CMakeFiles/lustre_site_monitor.dir/lustre_site_monitor.cpp.o"
  "CMakeFiles/lustre_site_monitor.dir/lustre_site_monitor.cpp.o.d"
  "lustre_site_monitor"
  "lustre_site_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lustre_site_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
