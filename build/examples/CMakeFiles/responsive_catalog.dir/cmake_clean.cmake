file(REMOVE_RECURSE
  "CMakeFiles/responsive_catalog.dir/responsive_catalog.cpp.o"
  "CMakeFiles/responsive_catalog.dir/responsive_catalog.cpp.o.d"
  "responsive_catalog"
  "responsive_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/responsive_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
