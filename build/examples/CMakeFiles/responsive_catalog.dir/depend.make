# Empty dependencies file for responsive_catalog.
# This may be replaced when dependencies are built.
