file(REMOVE_RECURSE
  "CMakeFiles/fsmonitorwait.dir/fsmonitorwait.cpp.o"
  "CMakeFiles/fsmonitorwait.dir/fsmonitorwait.cpp.o.d"
  "fsmonitorwait"
  "fsmonitorwait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmonitorwait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
