# Empty compiler generated dependencies file for fsmonitorwait.
# This may be replaced when dependencies are built.
