// Deterministic, seeded fault injection for crash-recovery testing.
//
// Pipeline stages name the places where a real deployment can fail —
// "collector.before_clear", "wal.torn_write", "tcp.drop" — and consult the
// process-wide FaultInjector at each one. A test arms the injector with a
// FaultPlan (a seed plus a list of rules); production code pays only a single
// relaxed atomic load per fault point while disarmed, and compiling with
// FSMON_DISABLE_FAULT_INJECTION removes even that.
//
// Firing is deterministic: each fault point gets its own xoshiro stream seeded
// from `plan.seed ^ hash(point)`, so a given (seed, workload) pair replays the
// same fault schedule on every run regardless of thread interleaving at other
// points.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fsmon::obs {
class MetricsRegistry;
}

namespace fsmon::chaos {

enum class FaultAction : std::uint8_t {
  kNone = 0,  // no fault — proceed normally
  kCrash,     // fail-stop the enclosing stage (harness restarts it later)
  kDelay,     // sleep for `delay` before proceeding
  kFail,      // make the enclosing call report failure
  kDrop,      // silently drop the frame / message being handled
};

std::string_view to_string(FaultAction action);

/// What the injector decided for one evaluation of one fault point.
struct FaultOutcome {
  FaultAction action = FaultAction::kNone;
  std::chrono::nanoseconds delay{0};
  /// Action-specific argument (e.g. number of bytes to keep in a torn write).
  std::uint64_t arg = 0;

  explicit operator bool() const { return action != FaultAction::kNone; }
};

/// One rule in a plan. A rule matches a single fault point by exact name and
/// fires at most `max_fires` times, after skipping the first `after_hits`
/// evaluations of that point, each time with probability `probability` drawn
/// from the point's deterministic stream.
struct FaultRule {
  std::string point;
  FaultAction action = FaultAction::kFail;
  std::uint64_t after_hits = 0;
  double probability = 1.0;
  std::uint64_t max_fires = 1;  // 0 = unlimited
  std::chrono::nanoseconds delay{0};
  std::uint64_t arg = 0;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;
};

/// Process-wide singleton. `armed()` is the fast path; everything else takes a
/// mutex and is only reachable from tests that armed a plan.
class FaultInjector {
 public:
  static FaultInjector& instance();

  static bool armed();

  /// Install `plan` and start evaluating faults. Counters reset. `metrics`
  /// may be null; when set, evaluations and injected faults are counted as
  /// `chaos.fault_evaluations` / `chaos.faults_injected`.
  void arm(FaultPlan plan, obs::MetricsRegistry* metrics = nullptr);

  /// Stop injecting. Hit/fire counters remain readable until the next arm().
  void disarm();

  /// Consult the plan at a named fault point. Returns kNone when disarmed or
  /// when no rule fires. Thread-safe.
  FaultOutcome evaluate(std::string_view point);

  /// Times `point` has been evaluated / has fired since the last arm().
  std::uint64_t hits(std::string_view point) const;
  std::uint64_t fires(std::string_view point) const;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  FaultInjector() = default;
  struct Impl;
  Impl& impl() const;
};

#if defined(FSMON_DISABLE_FAULT_INJECTION)
inline FaultOutcome fault(std::string_view) { return {}; }
#else
/// The call sites' entry point: one relaxed load when disarmed.
inline FaultOutcome fault(std::string_view point) {
  if (!FaultInjector::armed()) return {};
  return FaultInjector::instance().evaluate(point);
}
#endif

/// RAII arm/disarm for tests.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan,
                           obs::MetricsRegistry* metrics = nullptr) {
    FaultInjector::instance().arm(std::move(plan), metrics);
  }
  ~ScopedFaultPlan() { FaultInjector::instance().disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace fsmon::chaos
