#include "src/chaos/fault.hpp"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/common/random.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::chaos {

std::string_view to_string(FaultAction action) {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kCrash:
      return "crash";
    case FaultAction::kDelay:
      return "delay";
    case FaultAction::kFail:
      return "fail";
    case FaultAction::kDrop:
      return "drop";
  }
  return "unknown";
}

namespace {
// The armed flag lives outside Impl so `armed()` never touches the mutex.
std::atomic<bool> g_armed{false};
}  // namespace

struct FaultInjector::Impl {
  struct PointState {
    common::Rng rng{0};
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    // Per-rule fire counts, indexed parallel to plan.rules (only entries for
    // rules naming this point are ever consulted).
    std::vector<std::uint64_t> rule_fires;
  };

  mutable std::mutex mu;
  FaultPlan plan;
  obs::MetricsRegistry* metrics = nullptr;
  std::unordered_map<std::string, PointState> points;

  PointState& point_state(std::string_view point) {
    auto it = points.find(std::string(point));
    if (it == points.end()) {
      PointState state;
      state.rng = common::Rng(plan.seed ^ std::hash<std::string_view>{}(point));
      state.rule_fires.assign(plan.rules.size(), 0);
      it = points.emplace(std::string(point), std::move(state)).first;
    }
    return it->second;
  }
};

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::Impl& FaultInjector::impl() const {
  static Impl impl;
  return impl;
}

bool FaultInjector::armed() { return g_armed.load(std::memory_order_relaxed); }

void FaultInjector::arm(FaultPlan plan, obs::MetricsRegistry* metrics) {
  Impl& state = impl();
  std::lock_guard lock(state.mu);
  state.plan = std::move(plan);
  state.metrics = metrics;
  state.points.clear();
  g_armed.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  Impl& state = impl();
  std::lock_guard lock(state.mu);
  g_armed.store(false, std::memory_order_relaxed);
  state.metrics = nullptr;
}

FaultOutcome FaultInjector::evaluate(std::string_view point) {
  Impl& state = impl();
  std::lock_guard lock(state.mu);
  if (!g_armed.load(std::memory_order_relaxed)) return {};

  Impl::PointState& ps = state.point_state(point);
  ps.hits += 1;
  if (state.metrics != nullptr) {
    state.metrics->counter("chaos.fault_evaluations", {{"point", std::string(point)}},
                           "Fault-point evaluations while armed").inc();
  }

  for (std::size_t i = 0; i < state.plan.rules.size(); ++i) {
    const FaultRule& rule = state.plan.rules[i];
    if (rule.point != point) continue;
    if (ps.hits <= rule.after_hits) continue;
    if (rule.max_fires != 0 && ps.rule_fires[i] >= rule.max_fires) continue;
    if (rule.probability < 1.0 && ps.rng.next_double() >= rule.probability) continue;

    ps.rule_fires[i] += 1;
    ps.fires += 1;
    if (state.metrics != nullptr) {
      state.metrics->counter("chaos.faults_injected",
                             {{"point", std::string(point)},
                              {"action", std::string(to_string(rule.action))}},
                             "Faults actually injected").inc();
    }
    FaultOutcome outcome;
    outcome.action = rule.action;
    outcome.delay = rule.delay;
    outcome.arg = rule.arg;
    return outcome;
  }
  return {};
}

std::uint64_t FaultInjector::hits(std::string_view point) const {
  Impl& state = impl();
  std::lock_guard lock(state.mu);
  auto it = state.points.find(std::string(point));
  return it == state.points.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fires(std::string_view point) const {
  Impl& state = impl();
  std::lock_guard lock(state.mu);
  auto it = state.points.find(std::string(point));
  return it == state.points.end() ? 0 : it->second.fires;
}

}  // namespace fsmon::chaos
