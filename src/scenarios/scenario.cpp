#include "src/scenarios/scenario.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

#include <unistd.h>

#include "src/chaos/fault.hpp"
#include "src/common/clock.hpp"
#include "src/common/random.hpp"
#include "src/common/string_util.hpp"
#include "src/eventstore/store.hpp"
#include "src/federation/federated_monitor.hpp"
#include "src/localfs/inotify_dsi.hpp"
#include "src/localfs/memfs.hpp"
#include "src/localfs/sim_dsi.hpp"
#include "src/lustre/filesystem.hpp"
#include "src/obs/metrics.hpp"
#include "src/scalable/flow_control.hpp"
#include "src/scalable/scalable_monitor.hpp"
#include "src/spectrumscale/fal_dsi.hpp"
#include "src/transport/tcp.hpp"
#include "src/workloads/filebench.hpp"
#include "src/workloads/hacc.hpp"
#include "src/workloads/ior.hpp"
#include "src/workloads/scripts.hpp"
#include "src/workloads/target.hpp"

#include <sys/socket.h>

namespace fsmon::scenarios {

using common::ErrorCode;
using common::Result;
using common::Status;
using core::StdEvent;
using federation::FederatedMonitor;
using federation::MountTable;

namespace {

bool sockets_available() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

/// Tap decorator: counts every event the wrapped DSI emits, so the
/// verifier has per-mount ground truth independent of the federation
/// layer under test.
class CountingDsi final : public core::DsiBase {
 public:
  explicit CountingDsi(std::unique_ptr<core::DsiBase> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  Status start(EventCallback callback) override {
    return inner_->start([this, callback = std::move(callback)](StdEvent event) {
      emitted_.fetch_add(1, std::memory_order_relaxed);
      callback(std::move(event));
    });
  }
  void stop() override { inner_->stop(); }
  bool running() const override { return inner_->running(); }

  std::uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  core::DsiBase* inner() { return inner_.get(); }

 private:
  std::unique_ptr<core::DsiBase> inner_;
  std::atomic<std::uint64_t> emitted_{0};
};

/// FsTarget over the simulated Spectrum Scale cluster.
class GpfsTarget final : public workloads::FsTarget {
 public:
  explicit GpfsTarget(spectrumscale::GpfsCluster& cluster) : cluster_(cluster) {}

  Status create(const std::string& path) override { return cluster_.create(path); }
  Status mkdir(const std::string& path) override { return cluster_.mkdir(path); }
  Status write(const std::string& path, std::uint64_t) override {
    return cluster_.write(path);
  }
  Status close(const std::string& path) override { return cluster_.close(path); }
  Status rename(const std::string& from, const std::string& to) override {
    return cluster_.rename(from, to);
  }
  Status remove(const std::string& path) override { return cluster_.unlink(path); }
  Status rmdir(const std::string& path) override { return cluster_.rmdir(path); }

 private:
  spectrumscale::GpfsCluster& cluster_;
};

/// FsTarget over a real directory tree (drives the real-inotify mount).
class PosixTarget final : public workloads::FsTarget {
 public:
  explicit PosixTarget(std::filesystem::path root) : root_(std::move(root)) {}

  Status create(const std::string& path) override {
    std::ofstream out(real(path));
    return out ? Status::ok() : Status(ErrorCode::kInvalid, "create " + path);
  }
  Status mkdir(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(real(path), ec);
    return ec ? Status(ErrorCode::kInvalid, "mkdir " + path) : Status::ok();
  }
  Status write(const std::string& path, std::uint64_t bytes) override {
    std::ofstream out(real(path), std::ios::app);
    if (!out) return Status(ErrorCode::kInvalid, "write " + path);
    out << std::string(static_cast<std::size_t>(std::min<std::uint64_t>(bytes, 256)), 'x');
    return Status::ok();
  }
  Status close(const std::string&) override { return Status::ok(); }
  Status rename(const std::string& from, const std::string& to) override {
    std::error_code ec;
    std::filesystem::rename(real(from), real(to), ec);
    return ec ? Status(ErrorCode::kNotFound, "rename " + from) : Status::ok();
  }
  Status remove(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::remove(real(path), ec) && !ec
               ? Status::ok()
               : Status(ErrorCode::kNotFound, "remove " + path);
  }
  Status rmdir(const std::string& path) override { return remove(path); }

 private:
  std::filesystem::path real(const std::string& path) const {
    return root_ / std::filesystem::path(path).relative_path();
  }
  std::filesystem::path root_;
};

/// Seeded mixed-op churn against any FsTarget (the scenario default):
/// creates, writes, renames, deletes, mkdirs in chaos-test proportions.
class TargetChurn {
 public:
  TargetChurn(workloads::FsTarget& target, std::uint64_t seed) : target_(target), rng_(seed) {
    for (int i = 0; i < 4; ++i) {
      const std::string dir = "/d" + std::to_string(i);
      if (target_.mkdir(dir).is_ok()) dirs_.push_back(dir);
    }
    if (dirs_.empty()) dirs_.push_back("/");
  }

  /// One op; returns 1 on success, 0 when the op failed.
  std::uint64_t step() {
    const double p = rng_.next_double();
    if (p < 0.5 || live_.empty()) {
      const std::string path =
          dirs_[rng_.next_below(dirs_.size())] + "/f" + std::to_string(next_++);
      if (target_.create(path).is_ok()) {
        live_.push_back(path);
        return 1;
      }
    } else if (p < 0.65) {
      const std::string& path = live_[rng_.next_below(live_.size())];
      if (target_.write(path, 512).is_ok() && target_.close(path).is_ok()) return 1;
    } else if (p < 0.8) {
      const std::size_t victim = rng_.next_below(live_.size());
      const std::string to =
          dirs_[rng_.next_below(dirs_.size())] + "/r" + std::to_string(next_++);
      if (target_.rename(live_[victim], to).is_ok()) {
        live_[victim] = to;
        return 1;
      }
    } else if (p < 0.92) {
      const std::size_t victim = rng_.next_below(live_.size());
      if (target_.remove(live_[victim]).is_ok()) {
        live_[victim] = live_.back();
        live_.pop_back();
        return 1;
      }
    } else {
      if (target_.mkdir("/m" + std::to_string(next_++)).is_ok()) return 1;
    }
    return 0;
  }

 private:
  workloads::FsTarget& target_;
  common::Rng rng_;
  std::vector<std::string> dirs_;
  std::vector<std::string> live_;
  int next_ = 0;
};

/// Everything one mount owns at runtime. Backend-specific members are
/// null for other backends.
struct MountRuntime {
  std::string name;
  std::string backend;
  std::string prefix;
  std::uint32_t mount_id = 0;
  bool skipped = false;

  lustre::LustreFs* lustre = nullptr;
  scalable::ScalableDsi* scalable = nullptr;
  spectrumscale::GpfsCluster* gpfs = nullptr;
  spectrumscale::SpectrumScaleDsi* fal = nullptr;
  CountingDsi* tap = nullptr;

  std::unique_ptr<workloads::FsTarget> target;
  std::unique_ptr<TargetChurn> churn;
};

/// (source, local cookie, kind) — the per-mount exactly-once key.
using EventKey = std::tuple<std::string, std::uint64_t, int>;

struct Verifier {
  std::mutex mu;
  std::map<std::string, std::map<EventKey, std::uint64_t>> counts;  // mount -> key -> n
  std::map<std::string, std::uint64_t> received;                    // mount -> events
  std::set<std::uint64_t> ids;
  std::uint64_t max_id = 0;
  std::uint64_t total = 0;

  void on_event(const StdEvent& event) {
    const std::size_t colon = event.source.find(':');
    const std::string mount =
        colon == std::string::npos ? event.source : event.source.substr(0, colon);
    std::lock_guard lock(mu);
    ++total;
    ids.insert(event.id);
    max_id = std::max(max_id, event.id);
    ++received[mount];
    ++counts[mount][EventKey{event.source, MountTable::local_cookie(event.cookie),
                             static_cast<int>(event.kind)}];
  }
};

struct Runtime {
  explicit Runtime(obs::MetricsRegistry& registry)
      : fed(federation::FederatedMonitorOptions{&registry}) {}

  std::unique_ptr<common::ManualClock> manual;  // soak mode
  common::Clock* clock = nullptr;
  std::vector<std::unique_ptr<lustre::LustreFs>> lustres;
  std::vector<std::unique_ptr<transport::Transport>> transports;
  std::vector<std::unique_ptr<localfs::MemFs>> memfs;
  std::vector<std::unique_ptr<spectrumscale::GpfsCluster>> clusters;
  // Declared after every backend it monitors: the federated monitor (and
  // with it every mounted DSI, collector, and shard) must be destroyed
  // FIRST — collector teardown still dereferences its LustreFs.
  FederatedMonitor fed;
  std::vector<MountRuntime> mounts;
  std::filesystem::path dir;
  std::vector<std::string> notes;  // non-fatal environment fallbacks
};

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  for (const auto& part : common::split(csv, ',')) {
    const auto trimmed = common::trim(part);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

/// Build one mount from its config keys; appends ownership into the
/// runtime and registers it with the federated monitor.
Status build_mount(const ScenarioSpec& spec, Runtime& rt, const std::string& mname) {
  const auto& cfg = spec.config;
  const std::string key = "mount." + mname + ".";
  MountRuntime mount;
  mount.name = mname;
  mount.backend = cfg.get_or(key + "backend", "sim-inotify");
  mount.prefix = cfg.get_or(key + "prefix", "/mnt/" + mname);

  std::unique_ptr<core::DsiBase> dsi;
  if (mount.backend == "lustre") {
    lustre::LustreFsOptions fs_options;
    fs_options.mdt_count =
        static_cast<std::uint32_t>(cfg.get_int(key + "mdts", 2));
    rt.lustres.push_back(std::make_unique<lustre::LustreFs>(fs_options, *rt.clock));
    mount.lustre = rt.lustres.back().get();

    scalable::ScalableMonitorOptions options;
    options.shards = static_cast<std::size_t>(
        cfg.get_int(key + "shards", static_cast<std::int64_t>(fs_options.mdt_count)));
    const std::string carrier = cfg.get_or(key + "transport", "inproc");
    if (carrier == "tcp") {
      if (sockets_available()) {
        rt.transports.push_back(std::make_unique<transport::TcpTransport>());
        options.transport = rt.transports.back().get();
      } else {
        rt.notes.push_back(mname + ": sockets unavailable, tcp fell back to inproc");
      }
    }
    eventstore::EventStoreOptions store;
    store.directory = rt.dir / ("store_" + mname);
    options.aggregator.store = store;
    options.fanout_hub = cfg.get_bool(key + "fanout", false);
    auto scalable_dsi =
        std::make_unique<scalable::ScalableDsi>(*mount.lustre, options, *rt.clock);
    mount.scalable = scalable_dsi.get();
    mount.target = std::make_unique<workloads::LustreTarget>(*mount.lustre);
    dsi = std::move(scalable_dsi);
  } else if (mount.backend.rfind("sim-", 0) == 0) {
    rt.memfs.push_back(std::make_unique<localfs::MemFs>());
    localfs::MemFs& fs = *rt.memfs.back();
    if (mount.backend == "sim-inotify") {
      dsi = std::make_unique<localfs::SimInotifyDsi>(fs, *rt.clock);
    } else if (mount.backend == "sim-kqueue") {
      dsi = std::make_unique<localfs::SimKqueueDsi>(fs, *rt.clock);
    } else if (mount.backend == "sim-fsevents") {
      dsi = std::make_unique<localfs::SimFsEventsDsi>(fs, *rt.clock);
    } else if (mount.backend == "sim-filesystemwatcher") {
      dsi = std::make_unique<localfs::SimFswDsi>(fs, *rt.clock);
    } else {
      return Status(ErrorCode::kInvalid, mname + ": unknown backend " + mount.backend);
    }
    mount.target = std::make_unique<workloads::MemFsTarget>(fs);
  } else if (mount.backend == "spectrumscale") {
    spectrumscale::GpfsClusterOptions options;
    options.node_count = static_cast<std::uint32_t>(cfg.get_int(key + "nodes", 3));
    // Virtual-time soaks jump the clock by hours at a time; the fileset
    // must not expire records the DSI has not consumed yet.
    options.retention_period =
        std::chrono::hours(cfg.get_int(key + "retention_hours", 100000));
    rt.clusters.push_back(
        std::make_unique<spectrumscale::GpfsCluster>(options, *rt.clock));
    mount.gpfs = rt.clusters.back().get();
    auto fal = std::make_unique<spectrumscale::SpectrumScaleDsi>(
        *mount.gpfs, spectrumscale::SpectrumScaleDsiOptions{}, *rt.clock);
    mount.fal = fal.get();
    mount.target = std::make_unique<GpfsTarget>(*mount.gpfs);
    dsi = std::move(fal);
  } else if (mount.backend == "inotify") {
    if (!localfs::InotifyDsi::available()) {
      if (cfg.get_bool(key + "optional", true)) {
        mount.skipped = true;
        rt.mounts.push_back(std::move(mount));
        rt.notes.push_back(mname + ": inotify unavailable, mount skipped");
        return Status::ok();
      }
      return Status(ErrorCode::kUnavailable, mname + ": inotify unavailable");
    }
    const std::filesystem::path root = rt.dir / ("inotify_" + mname);
    std::filesystem::create_directories(root);
    localfs::InotifyDsiOptions options;
    options.root = root.string();
    dsi = std::make_unique<localfs::InotifyDsi>(options);
    mount.target = std::make_unique<PosixTarget>(root);
  } else {
    return Status(ErrorCode::kInvalid, mname + ": unknown backend " + mount.backend);
  }

  auto tap = std::make_unique<CountingDsi>(std::move(dsi));
  mount.tap = tap.get();
  auto id = rt.fed.mount(mname, mount.prefix, std::move(tap));
  if (!id) return id.status();
  mount.mount_id = id.value();
  rt.mounts.push_back(std::move(mount));
  return Status::ok();
}

/// Arm the configured fault plan; returns the fault points armed (for
/// the fires report).
std::vector<std::string> arm_faults(const ScenarioSpec& spec, const Runtime& rt) {
  const std::string plan_name = spec.config.get_or("faults", "none");
  if (plan_name == "none") return {};
  chaos::FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(spec.config.get_int("faults.seed", 1));
  if (const char* env = std::getenv("FSMON_CHAOS_SEED")) {
    plan.seed = static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  auto add = [&plan](std::string point, chaos::FaultAction action, double probability,
                     std::uint64_t after_hits, std::uint64_t max_fires,
                     std::uint64_t arg = 0) {
    chaos::FaultRule rule;
    rule.point = std::move(point);
    rule.action = action;
    rule.probability = probability;
    rule.after_hits = after_hits;
    rule.max_fires = max_fires;
    rule.arg = arg;
    plan.rules.push_back(std::move(rule));
  };
  const bool shard_crash = plan_name == "shard_crash" || plan_name == "mixed";
  const bool tcp_drop = plan_name == "tcp_drop" || plan_name == "mixed";
  if (shard_crash) {
    for (const auto& mount : rt.mounts) {
      if (mount.scalable == nullptr) continue;
      const std::size_t shards = mount.scalable->monitor().sharded().shard_count();
      if (shards <= 1) {
        add("aggregator.before_persist", chaos::FaultAction::kCrash, 0.3, 4, 1);
      } else {
        for (std::size_t k = 0; k < shards; ++k) {
          add("aggregator.shard" + std::to_string(k) + ".before_persist",
              chaos::FaultAction::kCrash, 0.3, 4, 1);
        }
      }
    }
  }
  // "transport.before_send" is the sender-side drop point every carrier
  // (tcp included) consults; the refusal protocol must absorb the loss.
  // Batching means a whole workload fits in a handful of frames, so the
  // per-frame probability has to be high to bite at all.
  if (tcp_drop)
    add("transport.before_send", chaos::FaultAction::kDrop, 0.9, 0, 50);
  // Tear the very first group commit: WAL recovery must replay it.
  if (plan_name == "wal_torn")
    add("wal.group_commit_torn", chaos::FaultAction::kCrash, 1.0, 0, 1, /*arg=*/1);
  std::vector<std::string> points;
  for (const auto& rule : plan.rules) points.push_back(rule.point);
  chaos::FaultInjector::instance().arm(std::move(plan));
  return points;
}

/// Restart any crashed collector or aggregator shard (the chaos
/// babysitter). Returns the number of restarts performed.
std::uint64_t babysit(Runtime& rt) {
  std::uint64_t restarts = 0;
  for (auto& mount : rt.mounts) {
    if (mount.scalable == nullptr) continue;
    auto& monitor = mount.scalable->monitor();
    for (std::size_t i = 0; i < monitor.collector_count(); ++i) {
      if (monitor.collector(i).crashed()) {
        if (monitor.restart_collector(i).is_ok()) ++restarts;
      }
    }
    for (std::size_t k = 0; k < monitor.sharded().shard_count(); ++k) {
      if (monitor.sharded().shard(k).crashed()) {
        if (monitor.restart_aggregator_shard(k).is_ok()) ++restarts;
      }
    }
  }
  return restarts;
}

std::uint64_t run_workload(const ScenarioSpec& spec, Runtime& rt,
                           std::uint64_t& restarts) {
  const auto& cfg = spec.config;
  const std::string kind = cfg.get_or("workload", "churn");
  const std::uint64_t seed = static_cast<std::uint64_t>(cfg.get_int("workload.seed", 17));
  std::uint64_t ops = 0;
  if (kind == "churn") {
    const std::int64_t steps = cfg.get_int("workload.steps", 300);
    for (auto& mount : rt.mounts) {
      if (mount.skipped) continue;
      mount.churn = std::make_unique<TargetChurn>(*mount.target,
                                                  seed + mount.mount_id);
    }
    for (std::int64_t i = 0; i < steps; ++i) {
      for (auto& mount : rt.mounts) {
        if (mount.churn) ops += mount.churn->step();
      }
      if (i % 8 == 7) {
        restarts += babysit(rt);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return ops;
  }
  for (auto& mount : rt.mounts) {
    if (mount.skipped) continue;
    workloads::WorkloadFootprint footprint;
    // The canned workloads assume their base directory exists.
    for (const char* base : {"/ior", "/hacc", "/fb", "/perf"}) {
      (void)mount.target->mkdir(base);
    }
    if (kind == "ior") {
      workloads::IorOptions options;
      options.processes = static_cast<std::uint32_t>(cfg.get_int("workload.processes", 16));
      footprint = workloads::run_ior(*mount.target, "/ior", options);
    } else if (kind == "hacc") {
      workloads::HaccIoOptions options;
      options.processes = static_cast<std::uint32_t>(cfg.get_int("workload.processes", 16));
      options.particles = 64'000;
      footprint = workloads::run_hacc_io(*mount.target, "/hacc", options);
    } else if (kind == "filebench") {
      workloads::FilebenchOptions options;
      options.files = static_cast<std::uint64_t>(cfg.get_int("workload.files", 200));
      options.seed = seed;
      footprint = workloads::run_filebench_create(*mount.target, "/fb", options).footprint;
    } else if (kind == "script") {
      workloads::PerformanceScriptOptions options;
      options.iterations = static_cast<std::uint64_t>(cfg.get_int("workload.steps", 200));
      footprint = workloads::run_performance_script(*mount.target, "/perf", options);
    }
    ops += footprint.total_ops();
    restarts += babysit(rt);
  }
  return ops;
}

/// Subscriber churn (and the virtual-time soak): cycle federated
/// subscribers, and — where a lustre mount runs the fan-out hub — hub
/// subscriptions, while the babysitter keeps restarting crashed stages
/// and the manual clock compresses the configured virtual span.
std::uint64_t run_subscriber_churn(const ScenarioSpec& spec, Runtime& rt,
                                   std::uint64_t& restarts, std::uint64_t& ops) {
  const auto& cfg = spec.config;
  const double virtual_hours = cfg.get_double("soak.virtual_hours", 0);
  std::uint64_t cycles = static_cast<std::uint64_t>(cfg.get_int("subscribers.churn", 0));
  if (cycles == 0 && virtual_hours > 0) cycles = 1000;
  if (cycles == 0) return 0;

  scalable::FanOutHub* hub = nullptr;
  for (auto& mount : rt.mounts) {
    if (mount.scalable != nullptr && mount.scalable->monitor().hub() != nullptr) {
      hub = mount.scalable->monitor().hub();
      break;
    }
  }
  const common::Duration step_advance =
      virtual_hours > 0
          ? std::chrono::duration_cast<common::Duration>(
                std::chrono::duration<double>(virtual_hours * 3600.0 /
                                              static_cast<double>(cycles)))
          : common::Duration{0};
  std::uint64_t churns = 0;
  for (std::uint64_t i = 0; i < cycles; ++i) {
    const std::uint64_t token = rt.fed.subscribe([](const StdEvent&) {});
    rt.fed.unsubscribe(token);
    ++churns;
    if (hub != nullptr) {
      auto sub = hub->subscribe("churn-" + std::to_string(i), {});
      (void)hub->pop(*sub, std::chrono::milliseconds(1));
      hub->unsubscribe(*sub);
      ++churns;
    }
    // Keep the pipeline fed so churned subscribers see live traffic.
    if (i % 4 == 0) {
      for (auto& mount : rt.mounts) {
        if (mount.churn) ops += mount.churn->step();
      }
    }
    if (i % 16 == 15) restarts += babysit(rt);
    if (rt.manual != nullptr) rt.manual->advance(step_advance);
  }
  return churns;
}

/// Block until every lustre changelog is cleared and every FAL record
/// consumed (faults disarmed; the babysitter keeps running).
void settle(Runtime& rt, std::uint64_t& restarts, std::vector<std::string>& failures,
            bool faults_armed) {
  // Drain under fire first: the workload finishes in milliseconds, but
  // most pipeline sends happen while collectors poll afterwards — keep
  // the fault plan armed through that drain so it actually bites, then
  // disarm for the final stability settle. Bounded: every plan caps
  // max_fires, so an armed drain cannot refuse forever.
  if (faults_armed) {
    const auto armed_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    for (;;) {
      restarts += babysit(rt);
      bool drained = true;
      for (auto& mount : rt.mounts) {
        if (mount.lustre != nullptr) {
          for (std::uint32_t i = 0; i < mount.lustre->mdt_count(); ++i) {
            if (mount.lustre->mds(i).mdt().changelog().retained() != 0) drained = false;
          }
        }
        if (mount.fal != nullptr && mount.gpfs != nullptr &&
            mount.fal->records_consumed() < mount.gpfs->fileset().last_sequence())
          drained = false;
      }
      if (drained || std::chrono::steady_clock::now() >= armed_deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  chaos::FaultInjector::instance().disarm();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  // Asynchronous backends (FAL sink pump, real inotify) have in-flight
  // records invisible from here, so "settled" additionally means the
  // observable counters stopped moving for a few consecutive rounds.
  std::map<const MountRuntime*, std::pair<std::uint64_t, std::uint64_t>> prev;
  int stable_rounds = 0;
  for (;;) {
    restarts += babysit(rt);
    bool done = true;
    bool stable = true;
    for (auto& mount : rt.mounts) {
      if (mount.lustre != nullptr) {
        for (std::uint32_t i = 0; i < mount.lustre->mdt_count(); ++i) {
          if (mount.lustre->mds(i).mdt().changelog().retained() != 0) done = false;
        }
      }
      std::uint64_t emitted = mount.tap != nullptr ? mount.tap->emitted() : 0;
      std::uint64_t upstream = 0;
      if (mount.fal != nullptr && mount.gpfs != nullptr) {
        upstream = mount.gpfs->fileset().last_sequence();
        if (mount.fal->records_consumed() < upstream) done = false;
      }
      auto& seen = prev[&mount];
      if (seen != std::pair{emitted, upstream}) {
        seen = {emitted, upstream};
        stable = false;
      }
    }
    stable_rounds = stable ? stable_rounds + 1 : 0;
    if (done && stable_rounds >= 3) return;
    if (std::chrono::steady_clock::now() >= deadline) {
      std::string detail;
      for (auto& mount : rt.mounts) {
        if (mount.lustre == nullptr) continue;
        for (std::uint32_t i = 0; i < mount.lustre->mdt_count(); ++i) {
          const auto retained = mount.lustre->mds(i).mdt().changelog().retained();
          if (retained != 0)
            detail += " " + mount.name + ":MDT" + std::to_string(i) + "=" +
                      std::to_string(retained);
        }
      }
      failures.push_back("pipeline did not settle;" + detail);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Wait for consumer-side delivery to catch up with the settled stores.
void await_coverage(Runtime& rt, Verifier& verifier) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(15);
  for (;;) {
    bool done = true;
    {
      std::lock_guard lock(verifier.mu);
      for (auto& mount : rt.mounts) {
        if (mount.lustre == nullptr) continue;
        const auto& counts = verifier.counts[mount.name];
        for (std::uint32_t i = 0; i < mount.lustre->mdt_count(); ++i) {
          const std::string source = mount.name + ":lustre:MDT" + std::to_string(i);
          const std::uint64_t last = mount.lustre->mds(i).mdt().changelog().last_index();
          std::set<std::uint64_t> seen;
          for (const auto& [key, n] : counts) {
            if (std::get<0>(key) == source) seen.insert(std::get<1>(key));
          }
          if (seen.size() < last) done = false;
        }
        if (mount.tap != nullptr &&
            verifier.received[mount.name] < mount.tap->emitted())
          done = false;
      }
    }
    if (done || std::chrono::steady_clock::now() >= deadline) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void verify(Runtime& rt, Verifier& verifier, ScenarioResult& result) {
  std::lock_guard lock(verifier.mu);
  for (auto& mount : rt.mounts) {
    MountReport report;
    report.name = mount.name;
    report.backend = mount.backend;
    report.skipped = mount.skipped;
    if (mount.skipped) {
      result.mounts.push_back(std::move(report));
      continue;
    }
    report.emitted = mount.tap->emitted();
    report.received = verifier.received[mount.name];
    if (mount.lustre != nullptr) {
      // Exactly-once against the changelog ground truth: every record
      // index of every MDT exactly once per kind.
      const auto& counts = verifier.counts[mount.name];
      for (const auto& [key, n] : counts) {
        if (n > 1) report.duplicated += n - 1;
      }
      for (std::uint32_t i = 0; i < mount.lustre->mdt_count(); ++i) {
        const std::string source = mount.name + ":lustre:MDT" + std::to_string(i);
        const std::uint64_t last = mount.lustre->mds(i).mdt().changelog().last_index();
        std::set<std::uint64_t> seen;
        for (const auto& [key, n] : counts) {
          if (std::get<0>(key) == source) seen.insert(std::get<1>(key));
        }
        for (std::uint64_t record = 1; record <= last; ++record) {
          if (!seen.count(record)) ++report.lost;
        }
      }
      if (report.lost > 0)
        result.failures.push_back(mount.name + ": lost " +
                                  std::to_string(report.lost) + " changelog records");
      if (report.duplicated > 0)
        result.failures.push_back(mount.name + ": " + std::to_string(report.duplicated) +
                                  " duplicated deliveries");
    } else {
      // Synchronous backends: the federation layer must deliver exactly
      // what the DSI emitted.
      if (report.emitted > report.received)
        report.lost = report.emitted - report.received;
      if (report.received > report.emitted)
        report.duplicated = report.received - report.emitted;
      if (report.lost > 0 || report.duplicated > 0)
        result.failures.push_back(mount.name + ": emitted " +
                                  std::to_string(report.emitted) + " != received " +
                                  std::to_string(report.received));
    }
    result.mounts.push_back(std::move(report));
  }
  // The merged stream's ids must be dense and unique across all mounts.
  if (verifier.ids.size() != verifier.total)
    result.failures.push_back("duplicate federated event ids");
  if (verifier.max_id != verifier.total)
    result.failures.push_back("federated ids not dense: max " +
                              std::to_string(verifier.max_id) + " != count " +
                              std::to_string(verifier.total));
  result.events = verifier.total;
}

}  // namespace

Result<ScenarioSpec> ScenarioSpec::parse(std::string_view text) {
  ScenarioSpec spec;
  try {
    spec.config.parse_text(text);
  } catch (const std::exception& e) {
    return Status(ErrorCode::kInvalid, e.what());
  }
  auto name = spec.config.get("name");
  if (!name || name->empty())
    return Status(ErrorCode::kInvalid, "scenario has no `name = ...` key");
  spec.name = *name;
  return spec;
}

Result<ScenarioSpec> ScenarioSpec::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open())
    return Status(ErrorCode::kNotFound, "cannot open scenario file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto spec = parse(buffer.str());
  if (!spec) {
    return Status(spec.status().code(), path + ": " + spec.status().message());
  }
  return spec;
}

std::string MountReport::to_line(const std::string& scenario) const {
  std::ostringstream out;
  out << "MOUNT scenario=" << scenario << " mount=" << name << " backend=" << backend
      << " emitted=" << emitted << " received=" << received << " lost=" << lost
      << " dup=" << duplicated << " stale=" << stale
      << " skipped=" << (skipped ? 1 : 0);
  return out.str();
}

std::string ScenarioResult::to_line() const {
  std::uint64_t lost = 0;
  std::uint64_t dup = 0;
  std::uint64_t stale = 0;
  for (const auto& mount : mounts) {
    lost += mount.lost;
    dup += mount.duplicated;
    stale += mount.stale;
  }
  std::ostringstream out;
  out << "RESULT scenario=" << name << " status=" << (passed ? "PASS" : "FAIL")
      << " events=" << events << " events_per_sec=" << static_cast<std::uint64_t>(events_per_sec)
      << " ops=" << workload_ops << " mounts=" << mounts.size() << " lost=" << lost
      << " dup=" << dup << " stale=" << stale << " restarts=" << restarts
      << " faults=" << faults_injected << " churns=" << subscriber_churns
      << " wall_s=" << wall_seconds << " virtual_h=" << virtual_hours << " detail=\""
      << (failures.empty() ? "-" : failures.front()) << "\"";
  return out.str();
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  ScenarioResult result;
  result.name = spec.name;
  obs::MetricsRegistry registry;
  Runtime rt(registry);
  rt.dir = std::filesystem::temp_directory_path() /
           ("fsmon_scenario_" + std::to_string(::getpid()) + "_" + spec.name);
  std::filesystem::remove_all(rt.dir);
  std::filesystem::create_directories(rt.dir);

  const double virtual_hours = spec.config.get_double("soak.virtual_hours", 0);
  if (virtual_hours > 0) {
    rt.manual = std::make_unique<common::ManualClock>();
    rt.clock = rt.manual.get();
    result.virtual_hours = virtual_hours;
  } else {
    rt.clock = &common::RealClock::instance();
  }

  const auto mount_names = split_list(spec.config.get_or("mounts", ""));
  if (mount_names.empty()) {
    result.failures.push_back("scenario lists no mounts");
    return result;
  }
  for (const auto& mname : mount_names) {
    if (auto s = build_mount(spec, rt, mname); !s.is_ok()) {
      result.failures.push_back(s.to_string());
      return result;
    }
  }

  Verifier verifier;
  rt.fed.subscribe([&verifier](const StdEvent& event) { verifier.on_event(event); });
  const std::int64_t population = spec.config.get_int("subscribers", 1);
  std::atomic<std::uint64_t> population_seen{0};
  for (std::int64_t i = 1; i < population; ++i) {
    rt.fed.subscribe([&population_seen](const StdEvent&) {
      population_seen.fetch_add(1, std::memory_order_relaxed);
    });
  }

  if (auto s = rt.fed.start(); !s.is_ok()) {
    result.failures.push_back("start: " + s.to_string());
    chaos::FaultInjector::instance().disarm();
    return result;
  }

  const auto armed_points = arm_faults(spec, rt);
  const auto wall_start = std::chrono::steady_clock::now();
  result.workload_ops = run_workload(spec, rt, result.restarts);
  result.subscriber_churns =
      run_subscriber_churn(spec, rt, result.restarts, result.workload_ops);
  settle(rt, result.restarts, result.failures, !armed_points.empty());
  await_coverage(rt, verifier);
  const auto wall_end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();

  for (const auto& point : armed_points)
    result.faults_injected += chaos::FaultInjector::instance().fires(point);

  verify(rt, verifier, result);
  if (result.wall_seconds > 0)
    result.events_per_sec = static_cast<double>(result.events) / result.wall_seconds;

  rt.fed.stop();
  chaos::FaultInjector::instance().disarm();
  std::filesystem::remove_all(rt.dir);
  result.passed = result.failures.empty();
  return result;
}

}  // namespace fsmon::scenarios
