// Declarative scenarios: topology x workload x fault plan x subscribers.
//
// A scenario file is a common::Config text (key = value lines) naming a
// federated topology (which backends, mounted where), a workload from
// src/workloads/ to drive against every mount, a chaos fault plan, and
// a subscriber population — the whole matrix the paper's evaluation
// sweeps by hand, executable as data. run_scenario() builds the
// federation, runs the workload under the babysitter, settles the
// pipeline, and verifies the federated stream:
//
//   - exactly-once per Lustre mount: every changelog record index of
//     every MDT appears exactly once per event kind (zero lost, zero
//     duplicated), across crashes, restarts, and dropped frames;
//   - zero federation loss per local/FAL mount: events the DSI emitted
//     equal events delivered (minus counted stale drops);
//   - dense federated ids: the merged stream's ids are 1..N unique.
//
// docs/SCENARIOS.md documents the file format; scenarios/*.scenario are
// the shipped matrix; tools/run_scenarios.sh sweeps them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/config.hpp"
#include "src/common/status.hpp"

namespace fsmon::scenarios {

struct ScenarioSpec {
  std::string name;
  common::Config config;

  /// Parse scenario text (Config lines; `name` key required).
  static common::Result<ScenarioSpec> parse(std::string_view text);
  /// Load and parse a scenario file.
  static common::Result<ScenarioSpec> load_file(const std::string& path);
};

/// Per-mount verification report.
struct MountReport {
  std::string name;
  std::string backend;
  std::uint64_t emitted = 0;     ///< Events the mount's DSI produced.
  std::uint64_t received = 0;    ///< Federated events delivered for it.
  std::uint64_t lost = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t stale = 0;       ///< Dropped after unmount (expected 0 here).
  bool skipped = false;          ///< Optional backend unavailable.

  std::string to_line(const std::string& scenario) const;
};

struct ScenarioResult {
  std::string name;
  bool passed = false;
  std::vector<std::string> failures;  ///< Empty when passed.
  std::uint64_t events = 0;           ///< Federated events delivered.
  double events_per_sec = 0;
  double wall_seconds = 0;
  double virtual_hours = 0;  ///< Soak scenarios: virtual time covered.
  std::uint64_t workload_ops = 0;
  std::uint64_t restarts = 0;           ///< Babysitter stage restarts.
  std::uint64_t faults_injected = 0;
  std::uint64_t subscriber_churns = 0;  ///< Federated + hub subscribe/unsubscribe cycles.
  std::vector<MountReport> mounts;

  /// One machine-readable line: "RESULT scenario=<name> status=... ".
  std::string to_line() const;
};

/// Execute one scenario end to end. Never throws; failures are reported
/// in the result.
ScenarioResult run_scenario(const ScenarioSpec& spec);

}  // namespace fsmon::scenarios
