// Bounded multi-producer multi-consumer queue with close semantics.
//
// This is the processing-queue primitive used by the resolution layer and
// by the scalable monitor's collector → aggregator → consumer pipeline. It
// supports two overflow policies mirroring message-queue high-water-mark
// behaviour: Block (producers wait) and DropNewest (offer fails), plus a
// cooperative close() that wakes all waiters — the idiom every pipeline
// stage uses for clean shutdown.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace fsmon::common {

enum class OverflowPolicy {
  kBlock,       ///< push() blocks until space is available.
  kDropNewest,  ///< push() returns false when full (the new item is dropped).
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity, OverflowPolicy policy = OverflowPolicy::kBlock)
      : capacity_(capacity), policy_(policy) {
    if (capacity_ == 0) throw std::invalid_argument("BoundedQueue capacity must be > 0");
  }

  /// Enqueue one item. Returns false only when the queue is closed, or when
  /// the policy is DropNewest and the queue is full (item dropped).
  bool push(T item) {
    std::unique_lock lock(mu_);
    if (policy_ == OverflowPolicy::kBlock) {
      not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
    } else {
      if (closed_) return false;
      if (items_.size() >= capacity_) {
        ++dropped_;
        return false;
      }
    }
    items_.push_back(std::move(item));
    ++pushed_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Dequeue one item, blocking until an item is available or the queue is
  /// closed and drained (returns nullopt in that case).
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    ++popped_;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Dequeue one item, waiting at most `timeout`. Returns nullopt on
  /// timeout or when the queue is closed and drained — the group-commit
  /// coalescing wait (a persist thread gives later batches `timeout` to
  /// arrive before fsyncing the group it already holds).
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    not_empty_.wait_for(lock, timeout, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    ++popped_;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking dequeue.
  std::optional<T> try_pop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    ++popped_;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Drain up to `max_items` currently queued items in one lock
  /// acquisition — the batching primitive used by the resolution layer.
  std::vector<T> pop_batch(std::size_t max_items) {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    std::vector<T> batch;
    const std::size_t n = std::min(max_items, items_.size());
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    popped_ += n;
    lock.unlock();
    not_full_.notify_all();
    return batch;
  }

  /// Close the queue: subsequent pushes fail, poppers drain what remains
  /// then observe end-of-stream. Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Reopen a closed queue, discarding anything still buffered — the
  /// crash()/restart() harness primitive. A restarted stage must not see
  /// items its pre-crash incarnation never drained (a real restart loses
  /// its process memory), so the backlog is dropped, not replayed here;
  /// recovery paths (changelog rewind, replay_historic) repopulate it.
  void reopen() {
    std::lock_guard lock(mu_);
    items_.clear();
    closed_ = false;
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  std::uint64_t dropped() const {
    std::lock_guard lock(mu_);
    return dropped_;
  }
  std::uint64_t pushed() const {
    std::lock_guard lock(mu_);
    return pushed_;
  }
  std::uint64_t popped() const {
    std::lock_guard lock(mu_);
    return popped_;
  }

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  std::uint64_t dropped_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
};

}  // namespace fsmon::common
