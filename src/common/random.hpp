// Deterministic random number generation and the samplers used by the
// workload generators (Filebench's gamma-distributed file sizes, zipfian
// path popularity for cache experiments, exponential inter-arrival times).
#pragma once

#include <cstdint>
#include <vector>

namespace fsmon::common {

/// xoshiro256** — fast, high-quality, and (unlike std::mt19937) with a
/// stable, documented output sequence so workloads are reproducible across
/// platforms and standard-library versions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  bool next_bool(double p_true = 0.5);

  /// Exponential with the given rate (mean 1/rate).
  double next_exponential(double rate);

  /// Gamma(shape k, scale theta) via Marsaglia–Tsang; handles k < 1.
  double next_gamma(double shape, double scale);

  /// Normal(0,1) via Box–Muller (no cached spare: stateless per call pair).
  double next_normal();

 private:
  std::uint64_t s_[4];
};

/// Zipf(s) sampler over {0..n-1} with precomputed CDF; used to model
/// skewed directory popularity in cache-behaviour experiments.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew);
  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace fsmon::common
