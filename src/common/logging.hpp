// Minimal thread-safe leveled logger.
//
// Components log through a process-global sink; tests can swap the sink to
// capture output. Logging is intentionally simple — the hot paths never
// log per-event at levels above Debug.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace fsmon::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

std::string_view to_string(LogLevel level);

/// Process-wide minimum level (default Warn so tests stay quiet).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replace the sink (default writes to stderr). Pass nullptr to restore
/// the default. The sink is called with a fully formatted line.
void set_log_sink(std::function<void(LogLevel, const std::string&)> sink);

/// Emit one log line if `level` passes the global threshold.
void log_line(LogLevel level, std::string_view component, std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

#define FSMON_LOG(level, component, ...)                                       \
  do {                                                                         \
    if (static_cast<int>(level) >= static_cast<int>(::fsmon::common::log_level())) \
      ::fsmon::common::log_line(level, component,                              \
                                ::fsmon::common::detail::concat(__VA_ARGS__)); \
  } while (0)

#define FSMON_DEBUG(component, ...) FSMON_LOG(::fsmon::common::LogLevel::kDebug, component, __VA_ARGS__)
#define FSMON_INFO(component, ...) FSMON_LOG(::fsmon::common::LogLevel::kInfo, component, __VA_ARGS__)
#define FSMON_WARN(component, ...) FSMON_LOG(::fsmon::common::LogLevel::kWarn, component, __VA_ARGS__)
#define FSMON_ERROR(component, ...) FSMON_LOG(::fsmon::common::LogLevel::kError, component, __VA_ARGS__)

}  // namespace fsmon::common
