#include "src/common/string_util.hpp"

#include <cctype>
#include <cstdio>

namespace fsmon::common {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, char delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.push_back(delim);
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string normalize_path(std::string_view path) {
  std::vector<std::string> stack;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    std::string_view comp = path.substr(i, j - i);
    i = j;
    if (comp.empty() || comp == ".") continue;
    if (comp == "..") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    stack.emplace_back(comp);
  }
  if (stack.empty()) return "/";
  std::string out;
  for (const auto& comp : stack) {
    out.push_back('/');
    out += comp;
  }
  return out;
}

std::string parent_path(std::string_view path) {
  if (path.empty() || path == "/") return "/";
  const auto pos = path.rfind('/');
  if (pos == 0 || pos == std::string_view::npos) return "/";
  return std::string(path.substr(0, pos));
}

std::string base_name(std::string_view path) {
  if (path.empty() || path == "/") return "";
  const auto pos = path.rfind('/');
  if (pos == std::string_view::npos) return std::string(path);
  return std::string(path.substr(pos + 1));
}

bool is_under(std::string_view path, std::string_view root) {
  if (root == "/") return !path.empty() && path[0] == '/';
  if (!starts_with(path, root)) return false;
  return path.size() == root.size() || path[root.size()] == '/';
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative wildcard matcher with backtracking over the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t] || (pattern[p] == '?' && text[t] != '/'))) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos && text[match] != '/') {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace fsmon::common
