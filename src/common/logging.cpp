#include "src/common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace fsmon::common {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mu;
std::function<void(LogLevel, const std::string&)> g_sink;

void default_sink(LogLevel level, const std::string& line) {
  std::cerr << '[' << to_string(level) << "] " << line << '\n';
}

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_sink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard lock(g_sink_mu);
  g_sink = std::move(sink);
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  std::string line;
  line.reserve(component.size() + message.size() + 2);
  line.append(component).append(": ").append(message);
  std::lock_guard lock(g_sink_mu);
  if (g_sink) {
    g_sink(level, line);
  } else {
    default_sink(level, line);
  }
}

}  // namespace fsmon::common
