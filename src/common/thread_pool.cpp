#include "src/common/thread_pool.hpp"

namespace fsmon::common {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // jthread joins on destruction.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace fsmon::common
