// Token-bucket rate limiter.
//
// Workload generators use this to drive the simulated clients at the
// paper's calibrated baseline event-generation rates (e.g. Iota generating
// 9593 metadata events/second, Table V).
#pragma once

#include <cstdint>

#include "src/common/clock.hpp"

namespace fsmon::common {

class TokenBucket {
 public:
  /// `rate` tokens per second with a burst capacity of `burst` tokens.
  TokenBucket(const Clock& clock, double rate, double burst);

  /// Try to take `n` tokens; returns true on success.
  bool try_acquire(double n = 1.0);

  /// Duration until `n` tokens would be available (zero if already).
  Duration time_until_available(double n = 1.0);

  double rate() const { return rate_; }

 private:
  void refill();

  const Clock& clock_;
  const double rate_;
  const double burst_;
  double tokens_;
  TimePoint last_;
};

}  // namespace fsmon::common
