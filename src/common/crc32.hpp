// CRC-32 (IEEE 802.3 polynomial, reflected) used to checksum message-queue
// frames and event-store WAL records.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace fsmon::common {

/// Compute the CRC-32 of `data`, optionally continuing from a previous
/// value (pass the prior result as `seed` to checksum in chunks).
std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed = 0);

/// Convenience overload for text.
std::uint32_t crc32(std::string_view text, std::uint32_t seed = 0);

}  // namespace fsmon::common
