// Single-flight call coalescing.
//
// When several resolver workers miss the fid cache on the same FID at the
// same time, issuing one fid2path per worker wastes the MDS round trip
// the cache exists to avoid. SingleFlight keys in-flight computations:
// the first caller for a key (the leader) runs the function; concurrent
// callers for the same key block until the leader publishes the result
// and then share it. Once the leader finishes, the key leaves the table —
// coalescing applies only to overlapping calls, never to sequential ones.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace fsmon::common {

/// `Value` must be default-constructible and copyable (callers each get a
/// copy of the leader's result — use shared_ptr payloads for cheap
/// sharing). The computation must not throw.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class SingleFlight {
 public:
  struct Outcome {
    Value value;
    bool leader = false;  ///< True when this caller ran the computation.
  };

  /// Run `fn()` for `key`, or wait for the identical in-flight call and
  /// share its result.
  template <typename Fn>
  Outcome run(const Key& key, Fn&& fn) {
    std::shared_ptr<Slot> slot;
    bool leader = false;
    {
      std::lock_guard lock(mu_);
      auto [it, inserted] = inflight_.try_emplace(key);
      if (inserted) it->second = std::make_shared<Slot>();
      slot = it->second;
      leader = inserted;
    }
    if (leader) {
      Value value = std::forward<Fn>(fn)();
      {
        std::lock_guard slot_lock(slot->mu);
        slot->value = std::move(value);
        slot->done = true;
      }
      slot->cv.notify_all();
      {
        std::lock_guard lock(mu_);
        inflight_.erase(key);
      }
      std::lock_guard slot_lock(slot->mu);
      return {slot->value, true};
    }
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock slot_lock(slot->mu);
    slot->cv.wait(slot_lock, [&] { return slot->done; });
    return {slot->value, false};
  }

  /// Calls that piggybacked on another caller's in-flight computation.
  std::uint64_t coalesced() const { return coalesced_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Value value{};
  };

  std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<Slot>, Hash> inflight_;
  std::atomic<std::uint64_t> coalesced_{0};
};

}  // namespace fsmon::common
