// Injectable clock abstraction.
//
// All time-dependent components take a `Clock&` so the same pipeline code
// can run against wall-clock time (production, integration tests) or a
// manually advanced clock (deterministic unit tests and the discrete-event
// simulator in src/sim).
#pragma once

#include <atomic>

#include "src/common/types.hpp"

namespace fsmon::common {

/// Abstract monotonic clock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current point on this clock's monotonic timeline.
  virtual TimePoint now() const = 0;

  /// Block (or virtually advance) for `d`. Implementations must tolerate
  /// zero and negative durations by returning immediately.
  virtual void sleep_for(Duration d) = 0;
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  TimePoint now() const override;
  void sleep_for(Duration d) override;

  /// Process-wide shared instance (stateless, thread-safe).
  static RealClock& instance();
};

/// Manually advanced clock for deterministic tests. Thread-safe: `advance`
/// and `now` may be called concurrently; `sleep_for` advances the clock
/// itself (single-threaded test semantics).
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = TimePoint{}) : now_ns_(start.time_since_epoch().count()) {}

  TimePoint now() const override {
    return TimePoint{Duration{now_ns_.load(std::memory_order_acquire)}};
  }

  void sleep_for(Duration d) override {
    if (d.count() > 0) advance(d);
  }

  /// Move the clock forward by `d` (no-op for non-positive durations).
  void advance(Duration d) {
    if (d.count() > 0) now_ns_.fetch_add(d.count(), std::memory_order_acq_rel);
  }

  /// Jump the clock to an absolute time (must not move backwards).
  void set(TimePoint t);

 private:
  std::atomic<std::int64_t> now_ns_;
};

}  // namespace fsmon::common
