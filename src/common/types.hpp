// Common scalar types and small helpers shared across the FSMonitor
// code base.
#pragma once

#include <chrono>
#include <cstdint>

namespace fsmon::common {

/// Nanosecond-resolution duration used throughout the library for both
/// real and simulated (virtual) time.
using Duration = std::chrono::nanoseconds;

/// A point on a monotonic timeline. For the real clock this is
/// steady_clock-based; for simulated clocks it is virtual time since the
/// start of the simulation.
using TimePoint = std::chrono::time_point<std::chrono::steady_clock, Duration>;

/// Monotonically increasing identifier assigned to standardized events by
/// the interface layer. Id 0 is reserved as "no event"/"from the start".
using EventId = std::uint64_t;

constexpr EventId kNoEventId = 0;

/// Convert a duration to fractional seconds (for reporting).
constexpr double to_seconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Convert fractional seconds to a Duration.
constexpr Duration from_seconds(double s) {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(s));
}

}  // namespace fsmon::common
