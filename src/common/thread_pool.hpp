// Fixed-size worker pool for the collector's resolver threads.
//
// Deliberately minimal: a shared FIFO queue and N workers. Ordering and
// result reassembly are the caller's concern (the collector pairs this
// with a sequence-numbered ReorderBuffer), so the pool itself makes no
// ordering promises beyond FIFO dequeue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fsmon::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Signals shutdown and joins the workers. Tasks already queued are
  /// still executed before the workers exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; runs on some worker in FIFO dispatch order.
  void submit(std::function<void()> task);

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace fsmon::common
