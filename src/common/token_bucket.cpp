#include "src/common/token_bucket.hpp"

#include <algorithm>
#include <stdexcept>

namespace fsmon::common {

TokenBucket::TokenBucket(const Clock& clock, double rate, double burst)
    : clock_(clock), rate_(rate), burst_(burst), tokens_(burst), last_(clock.now()) {
  if (rate <= 0 || burst <= 0)
    throw std::invalid_argument("TokenBucket: rate and burst must be > 0");
}

void TokenBucket::refill() {
  const TimePoint now = clock_.now();
  const double elapsed = to_seconds(now - last_);
  if (elapsed > 0) {
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    last_ = now;
  }
}

bool TokenBucket::try_acquire(double n) {
  refill();
  if (tokens_ >= n) {
    tokens_ -= n;
    return true;
  }
  return false;
}

Duration TokenBucket::time_until_available(double n) {
  refill();
  if (tokens_ >= n) return Duration::zero();
  const double deficit = n - tokens_;
  return from_seconds(deficit / rate_);
}

}  // namespace fsmon::common
