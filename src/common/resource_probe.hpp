// Resource-usage measurement for the paper's CPU% / memory tables
// (Tables IV, VII, VIII).
//
// Two flavours exist:
//  - RealResourceProbe samples this process via /proc (Linux) — used by
//    the real-threaded local benchmarks and examples.
//  - ModeledUsage is the accounting record the discrete-event simulator
//    fills from modeled busy time and component state sizes — used by the
//    simulated Lustre testbed benchmarks where the paper's numbers are a
//    function of the modeled costs, not of the host machine.
#pragma once

#include <cstdint>

#include "src/common/types.hpp"

namespace fsmon::common {

/// One sample of process usage.
struct UsageSample {
  double cpu_percent = 0.0;     ///< Of one core, since the previous sample.
  std::uint64_t rss_bytes = 0;  ///< Resident set size.
};

/// Samples this process's CPU time and RSS from /proc. CPU percentage is
/// computed over the interval between successive sample() calls.
class RealResourceProbe {
 public:
  RealResourceProbe();

  /// Take a sample; the first call returns cpu_percent == 0.
  UsageSample sample();

  static bool available();

 private:
  std::uint64_t last_cpu_ns_ = 0;
  std::int64_t last_wall_ns_ = 0;
};

/// Accumulates modeled busy-time and peak memory for one simulated
/// component (collector, aggregator, consumer). The simulator charges
/// busy time for each modeled operation; utilization is busy/elapsed.
class ModeledUsage {
 public:
  void charge_busy(Duration d) { busy_ns_ += d.count(); }
  void note_memory(std::uint64_t bytes) {
    if (bytes > peak_bytes_) peak_bytes_ = bytes;
  }

  /// CPU percent of one core over `elapsed` of simulated time.
  double cpu_percent(Duration elapsed) const {
    return elapsed.count() <= 0
               ? 0.0
               : 100.0 * static_cast<double>(busy_ns_) / static_cast<double>(elapsed.count());
  }

  std::uint64_t peak_memory_bytes() const { return peak_bytes_; }
  Duration busy() const { return Duration{busy_ns_}; }

  void reset() {
    busy_ns_ = 0;
    peak_bytes_ = 0;
  }

 private:
  std::int64_t busy_ns_ = 0;
  std::uint64_t peak_bytes_ = 0;
};

}  // namespace fsmon::common
