// Least-Recently-Used cache.
//
// This is the cache the paper's scalable collector uses to memoize
// fid2path resolutions (Section IV, Algorithm 1; evaluated in Tables VI
// and VIII). It is a classic doubly-linked-list + hash-map design with
// O(1) get/put and hit/miss/eviction counters so benchmarks can report
// cache effectiveness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace fsmon::common {

/// Statistics accumulated over the lifetime of an LruCache.
struct LruStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;

  double hit_rate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Fixed-capacity LRU cache. Not thread-safe; callers that share a cache
/// across threads must synchronize externally (the collector owns its
/// cache exclusively, matching the paper's per-collector cache).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  /// Capacity must be at least 1.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) throw std::invalid_argument("LruCache capacity must be > 0");
    map_.reserve(capacity_);
  }

  /// Look up `key`; promotes the entry to most-recently-used on a hit.
  std::optional<Value> get(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Peek without promoting or counting (for tests/inspection).
  std::optional<Value> peek(const Key& key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second->second;
  }

  /// Insert or overwrite; the entry becomes most-recently-used. Evicts the
  /// least-recently-used entry when at capacity. Overwriting an existing
  /// key is not counted as an insertion.
  void put(const Key& key, Value value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    ++stats_.insertions;
    if (map_.size() >= capacity_) evict_one();
    order_.emplace_front(key, std::move(value));
    map_.emplace(key, order_.begin());
  }

  /// Remove an entry if present; returns true when something was erased.
  /// Used when a FID is deleted (UNLNK/RMDIR) and its mapping is stale.
  bool erase(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    order_.erase(it->second);
    map_.erase(it);
    return true;
  }

  bool contains(const Key& key) const { return map_.find(key) != map_.end(); }

  void clear() {
    order_.clear();
    map_.clear();
  }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  const LruStats& stats() const { return stats_; }
  void reset_stats() { stats_ = LruStats{}; }

  /// Key of the least-recently-used entry (throws when empty); test hook.
  const Key& lru_key() const {
    if (order_.empty()) throw std::logic_error("LruCache::lru_key on empty cache");
    return order_.back().first;
  }

 private:
  void evict_one() {
    auto& victim = order_.back();
    map_.erase(victim.first);
    order_.pop_back();
    ++stats_.evictions;
  }

  std::size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  // front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator, Hash> map_;
  LruStats stats_;
};

}  // namespace fsmon::common
