#include "src/common/random.hpp"

#include <cmath>
#include <stdexcept>

namespace fsmon::common {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four lanes with splitmix64 as the xoshiro authors recommend.
  std::uint64_t x = seed;
  for (auto& lane : s_) lane = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound must be > 0");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_range: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : next_below(span));
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

double Rng::next_exponential(double rate) {
  if (rate <= 0) throw std::invalid_argument("Rng::next_exponential: rate must be > 0");
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double Rng::next_normal() {
  double u1;
  do {
    u1 = next_double();
  } while (u1 == 0.0);
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::next_gamma(double shape, double scale) {
  if (shape <= 0 || scale <= 0)
    throw std::invalid_argument("Rng::next_gamma: shape and scale must be > 0");
  if (shape < 1.0) {
    // Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
    const double u = std::max(next_double(), 1e-300);
    return next_gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = next_normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = next_double();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

ZipfSampler::ZipfSampler(std::size_t n, double skew) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  cdf_.resize(n);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace fsmon::common
