// Event-rate measurement.
//
// RateMeter produces the "events per second" numbers reported throughout
// the paper's evaluation (Tables III, V, VI, VIII). It records event
// timestamps against an injected clock and reports both the lifetime
// average rate and a sliding-window rate.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>

#include "src/common/clock.hpp"
#include "src/common/types.hpp"

namespace fsmon::common {

class RateMeter {
 public:
  /// `window` bounds the sliding-window rate computation.
  explicit RateMeter(const Clock& clock, Duration window = std::chrono::seconds(1));

  /// Record `n` events occurring now.
  void record(std::uint64_t n = 1);

  /// Total events recorded since construction (or last reset).
  std::uint64_t count() const;

  /// Lifetime average events/second since construction (or last reset).
  double average_rate() const;

  /// Events/second over the trailing window.
  double windowed_rate() const;

  /// Consistent point-in-time view (one lock) for metrics exporters.
  struct Snapshot {
    std::uint64_t count = 0;
    double average_rate = 0;
    double windowed_rate = 0;
  };
  Snapshot snapshot() const;

  void reset();

 private:
  void evict_expired(TimePoint now) const;

  const Clock& clock_;
  const Duration window_;
  mutable std::mutex mu_;
  TimePoint start_;
  std::uint64_t total_ = 0;
  // (timestamp, count) pairs within the sliding window.
  mutable std::deque<std::pair<TimePoint, std::uint64_t>> samples_;
  mutable std::uint64_t window_total_ = 0;
};

}  // namespace fsmon::common
