// Small string and path helpers used across modules. Paths here are
// logical file-system paths inside a monitored store (always '/'
// separated), not host OS paths.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fsmon::common {

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Join with a delimiter.
std::string join(const std::vector<std::string>& parts, char delim);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Normalize a logical path: ensure a single leading '/', collapse
/// duplicate separators, resolve "." and ".." components, drop any
/// trailing '/'. "/" normalizes to "/".
std::string normalize_path(std::string_view path);

/// Parent of a normalized path ("/a/b" -> "/a", "/a" -> "/", "/" -> "/").
std::string parent_path(std::string_view path);

/// Final component of a normalized path ("/a/b" -> "b", "/" -> "").
std::string base_name(std::string_view path);

/// True when `path` equals `root` or is underneath it. Both must be
/// normalized. is_under("/a/bc", "/a/b") is false.
bool is_under(std::string_view path, std::string_view root);

/// Shell-style glob match supporting '*', '?' and character classes are
/// NOT supported ('[' matches literally). '*' does not match '/'.
bool glob_match(std::string_view pattern, std::string_view text);

/// Format a double with fixed decimals (for table output).
std::string format_fixed(double value, int decimals);

}  // namespace fsmon::common
