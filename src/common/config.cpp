#include "src/common/config.hpp"

#include <stdexcept>

#include "src/common/string_util.hpp"

namespace fsmon::common {

std::vector<std::string> Config::parse_args(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      positional.emplace_back(arg);
      continue;
    }
    set(std::string(trim(arg.substr(0, eq))), std::string(trim(arg.substr(eq + 1))));
  }
  return positional;
}

void Config::parse_text(std::string_view text) {
  for (const auto& raw_line : split(text, '\n')) {
    std::string_view line = trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos)
      throw std::invalid_argument("Config: malformed line: " + std::string(line));
    set(std::string(trim(line.substr(0, eq))), std::string(trim(line.substr(eq + 1))));
  }
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::contains(const std::string& key) const { return entries_.count(key) != 0; }

std::optional<std::string> Config::get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(const std::string& key, std::string fallback) const {
  auto v = get(key);
  return v ? *v : std::move(fallback);
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  return std::stoll(*v);
}

double Config::get_double(const std::string& key, double fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  return std::stod(*v);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("Config: not a boolean: " + key + "=" + *v);
}

}  // namespace fsmon::common
