#include "src/common/rate_meter.hpp"

namespace fsmon::common {

RateMeter::RateMeter(const Clock& clock, Duration window)
    : clock_(clock), window_(window), start_(clock.now()) {}

void RateMeter::record(std::uint64_t n) {
  const TimePoint now = clock_.now();
  std::lock_guard lock(mu_);
  total_ += n;
  samples_.emplace_back(now, n);
  window_total_ += n;
  evict_expired(now);
}

std::uint64_t RateMeter::count() const {
  std::lock_guard lock(mu_);
  return total_;
}

double RateMeter::average_rate() const {
  const TimePoint now = clock_.now();
  std::lock_guard lock(mu_);
  const double elapsed = to_seconds(now - start_);
  return elapsed <= 0 ? 0.0 : static_cast<double>(total_) / elapsed;
}

double RateMeter::windowed_rate() const {
  const TimePoint now = clock_.now();
  std::lock_guard lock(mu_);
  evict_expired(now);
  const double w = to_seconds(window_);
  return w <= 0 ? 0.0 : static_cast<double>(window_total_) / w;
}

RateMeter::Snapshot RateMeter::snapshot() const {
  const TimePoint now = clock_.now();
  std::lock_guard lock(mu_);
  evict_expired(now);
  Snapshot snap;
  snap.count = total_;
  const double elapsed = to_seconds(now - start_);
  snap.average_rate = elapsed <= 0 ? 0.0 : static_cast<double>(total_) / elapsed;
  const double w = to_seconds(window_);
  snap.windowed_rate = w <= 0 ? 0.0 : static_cast<double>(window_total_) / w;
  return snap;
}

void RateMeter::reset() {
  const TimePoint now = clock_.now();
  std::lock_guard lock(mu_);
  start_ = now;
  total_ = 0;
  samples_.clear();
  window_total_ = 0;
}

void RateMeter::evict_expired(TimePoint now) const {
  const TimePoint cutoff = now - window_;
  while (!samples_.empty() && samples_.front().first < cutoff) {
    window_total_ -= samples_.front().second;
    samples_.pop_front();
  }
}

}  // namespace fsmon::common
