#include "src/common/clock.hpp"

#include <stdexcept>
#include <thread>

namespace fsmon::common {

TimePoint RealClock::now() const {
  return std::chrono::time_point_cast<Duration>(std::chrono::steady_clock::now());
}

void RealClock::sleep_for(Duration d) {
  if (d.count() > 0) std::this_thread::sleep_for(d);
}

RealClock& RealClock::instance() {
  static RealClock clock;
  return clock;
}

void ManualClock::set(TimePoint t) {
  const auto target = t.time_since_epoch().count();
  auto cur = now_ns_.load(std::memory_order_acquire);
  while (cur < target) {
    if (now_ns_.compare_exchange_weak(cur, target, std::memory_order_acq_rel)) return;
  }
  if (cur > target) throw std::invalid_argument("ManualClock::set: time must not move backwards");
}

}  // namespace fsmon::common
