#include "src/common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace fsmon::common {

Histogram::Histogram() : buckets_(64, 0) {}

int Histogram::bucket_index(std::uint64_t value) {
  if (value == 0) return 0;
  return std::min(63, static_cast<int>(std::bit_width(value)));
}

std::uint64_t Histogram::bucket_low(int index) {
  if (index <= 0) return 0;
  return 1ull << (index - 1);
}

void Histogram::record(std::uint64_t value) {
  ++buckets_[static_cast<std::size_t>(bucket_index(value))];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

std::uint64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = 0;
  for (int i = 0; i < 64; ++i) {
    const double c = static_cast<double>(buckets_[static_cast<std::size_t>(i)]);
    if (cumulative + c >= target) {
      const double low = static_cast<double>(bucket_low(i));
      const double high = static_cast<double>(bucket_low(i + 1));
      const double frac = c == 0 ? 0 : (target - cumulative) / c;
      // Interpolation within a power-of-two bucket can overshoot the
      // true extremes; clamp to the exact observed range.
      return std::clamp(low + frac * (high - low), static_cast<double>(min()),
                        static_cast<double>(max_));
    }
    cumulative += c;
  }
  return static_cast<double>(max_);
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::vector<Histogram::CumulativeBucket> Histogram::cumulative_buckets() const {
  std::vector<CumulativeBucket> out;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t c = buckets_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    cumulative += c;
    // Bucket i spans [bucket_low(i), bucket_low(i+1)); the inclusive
    // upper edge is one below the next bucket's low bound.
    const std::uint64_t upper = i >= 63 ? UINT64_MAX : bucket_low(i + 1) - 1;
    out.push_back({upper, cumulative});
  }
  return out;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

std::string Histogram::summary(const std::string& unit) const {
  std::ostringstream os;
  os << "count=" << count_ << " min=" << min() << unit << " mean=" << mean() << unit
     << " p50=" << quantile(0.5) << unit << " p99=" << quantile(0.99) << unit
     << " max=" << max_ << unit;
  return os.str();
}

}  // namespace fsmon::common
