// Sharded LRU cache: N independently-locked LruCache shards.
//
// The fid2path cache becomes a contention point once a collector resolves
// records on a worker pool: every lookup promotes an entry, so a single
// mutex around one LruCache serializes the resolvers. Sharding by key
// hash gives each shard its own lock, bounding contention to keys that
// genuinely collide, while `stats()` aggregates the per-shard counters so
// the Table VI/VIII cache-effectiveness numbers stay a single series.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/common/lru_cache.hpp"

namespace fsmon::common {

/// Thread-safe fixed-capacity LRU cache built from `shards` independently
/// locked LruCache instances. The requested capacity is split evenly
/// (rounded up, minimum 1 per shard), so the effective capacity is
/// shards * ceil(capacity / shards).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  ShardedLruCache(std::size_t capacity, std::size_t shards = 1) {
    if (capacity == 0) throw std::invalid_argument("ShardedLruCache capacity must be > 0");
    if (shards == 0) throw std::invalid_argument("ShardedLruCache shard count must be > 0");
    const std::size_t per_shard = std::max<std::size_t>(1, (capacity + shards - 1) / shards);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
      shards_.push_back(std::make_unique<Shard>(per_shard));
  }

  std::optional<Value> get(const Key& key) {
    Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mu);
    return shard.cache.get(key);
  }

  std::optional<Value> peek(const Key& key) const {
    const Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mu);
    return shard.cache.peek(key);
  }

  void put(const Key& key, Value value) {
    Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mu);
    shard.cache.put(key, std::move(value));
  }

  bool erase(const Key& key) {
    Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mu);
    return shard.cache.erase(key);
  }

  bool contains(const Key& key) const {
    const Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mu);
    return shard.cache.contains(key);
  }

  void clear() {
    for (auto& shard : shards_) {
      std::lock_guard lock(shard->mu);
      shard->cache.clear();
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard lock(shard->mu);
      total += shard->cache.size();
    }
    return total;
  }

  /// Effective total capacity (sum of the per-shard capacities).
  std::size_t capacity() const {
    return shards_.size() * shards_.front()->cache.capacity();
  }

  std::size_t shard_count() const { return shards_.size(); }

  /// Entries in the fullest shard — a skew indicator for the
  /// fidcache.shard_size_max gauge.
  std::size_t max_shard_size() const {
    std::size_t largest = 0;
    for (const auto& shard : shards_) {
      std::lock_guard lock(shard->mu);
      largest = std::max(largest, shard->cache.size());
    }
    return largest;
  }

  /// Hit/miss/eviction/insertion counters aggregated across shards.
  LruStats stats() const {
    LruStats total;
    for (const auto& shard : shards_) {
      std::lock_guard lock(shard->mu);
      const LruStats& s = shard->cache.stats();
      total.hits += s.hits;
      total.misses += s.misses;
      total.evictions += s.evictions;
      total.insertions += s.insertions;
    }
    return total;
  }

  void reset_stats() {
    for (auto& shard : shards_) {
      std::lock_guard lock(shard->mu);
      shard->cache.reset_stats();
    }
  }

  std::size_t shard_index(const Key& key) const {
    // Fold the high bits in so shard selection is decorrelated from the
    // bucket selection the per-shard unordered_map does with the same hash.
    const std::size_t h = Hash{}(key);
    return (h ^ (h >> 16)) % shards_.size();
  }

  /// Run `fn(LruCache&)` under the shard lock for `key`. This is the
  /// escape hatch for composite read-check-write operations that must be
  /// atomic with respect to other accesses of the same key (e.g. the fid
  /// cache's sequence-guarded insert).
  template <typename Fn>
  decltype(auto) with_shard(const Key& key, Fn&& fn) {
    Shard& shard = *shards_[shard_index(key)];
    std::lock_guard lock(shard.mu);
    return std::forward<Fn>(fn)(shard.cache);
  }

  /// Run `fn(LruCache&)` under the lock of shard `index` (whole-cache
  /// sweeps, e.g. retiring expired invalidation guards shard by shard).
  template <typename Fn>
  decltype(auto) with_shard_index(std::size_t index, Fn&& fn) {
    Shard& shard = *shards_[index];
    std::lock_guard lock(shard.mu);
    return std::forward<Fn>(fn)(shard.cache);
  }

 private:
  struct Shard {
    explicit Shard(std::size_t capacity) : cache(capacity) {}
    mutable std::mutex mu;
    LruCache<Key, Value, Hash> cache;
  };

  Shard& shard_for(const Key& key) { return *shards_[shard_index(key)]; }
  const Shard& shard_for(const Key& key) const { return *shards_[shard_index(key)]; }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fsmon::common
