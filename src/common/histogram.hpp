// Latency/size histogram with exponential buckets plus exact min/max/mean.
// Benchmarks use it to report event-processing latency distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fsmon::common {

class Histogram {
 public:
  /// Buckets are [0,1), [1,2), [2,4), ... doubling up to 2^62, in the
  /// caller's unit (typically nanoseconds or bytes).
  Histogram();

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const;
  std::uint64_t max() const { return max_; }
  double mean() const;

  /// Approximate quantile (q in [0,1]) using linear interpolation within
  /// the containing bucket.
  double quantile(double q) const;

  void merge(const Histogram& other);
  void reset();

  /// One cumulative bucket boundary for exporters (Prometheus `le`).
  struct CumulativeBucket {
    std::uint64_t upper_bound;      ///< Inclusive upper edge of the bucket.
    std::uint64_t cumulative_count; ///< Observations <= upper_bound.
  };

  /// Cumulative counts at every non-empty bucket edge, ascending. Empty
  /// when nothing has been recorded.
  std::vector<CumulativeBucket> cumulative_buckets() const;

  /// Human-readable multi-line summary.
  std::string summary(const std::string& unit) const;

 private:
  static int bucket_index(std::uint64_t value);
  static std::uint64_t bucket_low(int index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

}  // namespace fsmon::common
