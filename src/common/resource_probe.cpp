#include "src/common/resource_probe.hpp"

#include <ctime>
#include <fstream>
#include <string>

#include <unistd.h>

namespace fsmon::common {
namespace {

std::uint64_t process_cpu_ns() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::int64_t wall_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1'000'000'000ll + ts.tv_nsec;
}

std::uint64_t rss_bytes() {
  std::ifstream statm("/proc/self/statm");
  if (!statm) return 0;
  std::uint64_t total_pages = 0, resident_pages = 0;
  statm >> total_pages >> resident_pages;
  return resident_pages * static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
}

}  // namespace

RealResourceProbe::RealResourceProbe() {
  last_cpu_ns_ = process_cpu_ns();
  last_wall_ns_ = wall_ns();
}

UsageSample RealResourceProbe::sample() {
  UsageSample s;
  const auto cpu = process_cpu_ns();
  const auto wall = wall_ns();
  const auto d_cpu = cpu - last_cpu_ns_;
  const auto d_wall = wall - last_wall_ns_;
  if (d_wall > 0) {
    s.cpu_percent = 100.0 * static_cast<double>(d_cpu) / static_cast<double>(d_wall);
  }
  last_cpu_ns_ = cpu;
  last_wall_ns_ = wall;
  s.rss_bytes = rss_bytes();
  return s;
}

bool RealResourceProbe::available() {
  std::ifstream statm("/proc/self/statm");
  return static_cast<bool>(statm);
}

}  // namespace fsmon::common
