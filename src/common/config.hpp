// Simple key=value configuration with typed accessors; used by bench
// binaries and examples to override testbed profiles from the command
// line ("key=value" arguments) or a file (one pair per line, '#'
// comments).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fsmon::common {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" tokens (e.g. argv). Unrecognized tokens (no '=')
  /// are returned so callers can treat them as positional arguments.
  std::vector<std::string> parse_args(int argc, const char* const* argv);

  /// Parse file contents (not the filename). Lines: `key = value`.
  void parse_text(std::string_view text);

  void set(std::string key, std::string value);
  bool contains(const std::string& key) const;

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, std::string fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace fsmon::common
