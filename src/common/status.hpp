// Lightweight error handling: Status + Result<T> (an expected-like type;
// std::expected is C++23 and this project targets C++20).
//
// Fallible file-system and store operations return Result<T> rather than
// throwing: "file not found" and "FID already deleted" are ordinary
// outcomes the monitoring pipeline must branch on (Algorithm 1's
// fid2path error handling), not exceptional conditions.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace fsmon::common {

enum class ErrorCode {
  kOk = 0,
  kNotFound,       ///< Path or FID does not exist (fid2path's ENOENT).
  kAlreadyExists,  ///< Create target already present.
  kNotADirectory,
  kIsADirectory,
  kNotEmpty,     ///< rmdir on a non-empty directory.
  kInvalid,      ///< Malformed argument.
  kUnavailable,  ///< Component stopped / connection closed.
  kCorrupt,      ///< Checksum mismatch (WAL / wire frames).
  kOutOfRange,   ///< Record index outside retained window.
};

std::string_view to_string(ErrorCode code);

class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(fsmon::common::to_string(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(value_).is_ok())
      throw std::logic_error("Result constructed from OK status without a value");
  }

  bool is_ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    check();
    return std::get<T>(value_);
  }
  T& value() & {
    check();
    return std::get<T>(value_);
  }
  T&& take() && {
    check();
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(value_);
  }
  ErrorCode code() const { return status().code(); }

 private:
  void check() const {
    if (!is_ok())
      throw std::logic_error("Result::value on error: " + std::get<Status>(value_).to_string());
  }
  std::variant<T, Status> value_;
};

inline std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kNotADirectory: return "NOT_A_DIRECTORY";
    case ErrorCode::kIsADirectory: return "IS_A_DIRECTORY";
    case ErrorCode::kNotEmpty: return "NOT_EMPTY";
    case ErrorCode::kInvalid: return "INVALID";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kCorrupt: return "CORRUPT";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
  }
  return "?";
}

}  // namespace fsmon::common
