#include "src/common/crc32.hpp"

#include <array>

namespace fsmon::common {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

// Slice-by-16: table[0] is the classic byte-wise table; table[k][i] is
// the CRC of byte i followed by k zero bytes, letting the loop fold
// sixteen input bytes per iteration. Produces bit-identical results to
// the byte-wise algorithm (event frames and WAL records checksum this
// on the hot path, so the table width is worth its 16 KiB).
constexpr std::size_t kSlices = 16;

constexpr std::array<std::array<std::uint32_t, 256>, kSlices> make_tables() {
  std::array<std::array<std::uint32_t, 256>, kSlices> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t k = 1; k < kSlices; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

constexpr auto kTables = make_tables();

inline std::uint32_t load_le32(const std::byte* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= kSlices) {
    const std::uint32_t a = c ^ load_le32(p);
    const std::uint32_t b = load_le32(p + 4);
    const std::uint32_t d = load_le32(p + 8);
    const std::uint32_t e = load_le32(p + 12);
    c = kTables[15][a & 0xFFu] ^ kTables[14][(a >> 8) & 0xFFu] ^
        kTables[13][(a >> 16) & 0xFFu] ^ kTables[12][a >> 24] ^
        kTables[11][b & 0xFFu] ^ kTables[10][(b >> 8) & 0xFFu] ^
        kTables[9][(b >> 16) & 0xFFu] ^ kTables[8][b >> 24] ^
        kTables[7][d & 0xFFu] ^ kTables[6][(d >> 8) & 0xFFu] ^
        kTables[5][(d >> 16) & 0xFFu] ^ kTables[4][d >> 24] ^
        kTables[3][e & 0xFFu] ^ kTables[2][(e >> 8) & 0xFFu] ^
        kTables[1][(e >> 16) & 0xFFu] ^ kTables[0][e >> 24];
    p += kSlices;
    n -= kSlices;
  }
  for (; n > 0; --n, ++p) {
    c = kTables[0][(c ^ static_cast<std::uint8_t>(*p)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::string_view text, std::uint32_t seed) {
  return crc32(std::as_bytes(std::span(text.data(), text.size())), seed);
}

}  // namespace fsmon::common
