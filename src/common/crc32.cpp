#include "src/common/crc32.hpp"

#include <array>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FSMON_CRC32_CLMUL 1
#include <immintrin.h>
#endif

namespace fsmon::common {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

// Slice-by-16: table[0] is the classic byte-wise table; table[k][i] is
// the CRC of byte i followed by k zero bytes, letting the loop fold
// sixteen input bytes per iteration. Produces bit-identical results to
// the byte-wise algorithm (event frames and WAL records checksum this
// on the hot path, so the table width is worth its 16 KiB).
constexpr std::size_t kSlices = 16;

constexpr std::array<std::array<std::uint32_t, 256>, kSlices> make_tables() {
  std::array<std::array<std::uint32_t, 256>, kSlices> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t k = 1; k < kSlices; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

constexpr auto kTables = make_tables();

inline std::uint32_t load_le32(const std::byte* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

#ifdef FSMON_CRC32_CLMUL
// PCLMULQDQ folding over the same reflected polynomial (the classic
// Gopal et al. "Fast CRC Computation Using PCLMULQDQ" scheme as adopted
// by zlib): four 128-bit accumulators fold 64 input bytes per step, then
// reduce through 128- and 64-bit folds and a Barrett step. Bit-identical
// to the table algorithm — WAL segments and event frames written either
// way verify under the other. Compiled with a function-level target so
// the rest of the build keeps the baseline ISA; dispatched at runtime.
//
// Consumes as many whole 64-byte blocks as possible, advancing p/n; the
// caller finishes the tail with the table loop.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t crc32_clmul(
    std::uint32_t crc, const std::byte*& p, std::size_t& n) {
  alignas(16) static const std::uint64_t k1k2[2] = {0x0154442bd4, 0x01c6e41596};
  alignas(16) static const std::uint64_t k3k4[2] = {0x01751997d0, 0x00ccaa009e};
  alignas(16) static const std::uint64_t k5k0[2] = {0x0163cd6124, 0x0000000000};
  alignas(16) static const std::uint64_t kPolyMu[2] = {0x01db710641, 0x01f7011641};
  const std::byte* buf = p;
  std::size_t len = n;

  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 16));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 32));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 48));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  __m128i x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k1k2));
  buf += 64;
  len -= 64;

  while (len >= 64) {
    __m128i x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    __m128i x6 = _mm_clmulepi64_si128(x2, x0, 0x00);
    __m128i x7 = _mm_clmulepi64_si128(x3, x0, 0x00);
    __m128i x8 = _mm_clmulepi64_si128(x4, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
    x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
    x4 = _mm_clmulepi64_si128(x4, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf)));
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 16)));
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 32)));
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 48)));
    buf += 64;
    len -= 64;
  }

  // Fold the four accumulators into one.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k3k4));
  __m128i x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

  while (len >= 16) {
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf)));
    buf += 16;
    len -= 16;
  }

  // 128 -> 64 -> 32 reduction, then Barrett.
  __m128i x6 = _mm_clmulepi64_si128(x1, x0, 0x10);
  const __m128i mask = _mm_setr_epi32(~0, 0, ~0, 0);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x6);
  x0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(k5k0));
  x6 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_xor_si128(x1, x6);
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(kPolyMu));
  x6 = _mm_and_si128(x1, mask);
  x6 = _mm_clmulepi64_si128(x6, x0, 0x10);
  x6 = _mm_and_si128(x6, mask);
  x6 = _mm_clmulepi64_si128(x6, x0, 0x00);
  x1 = _mm_xor_si128(x1, x6);

  p = buf;
  n = len;
  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

bool cpu_has_clmul() {
  return __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
}
#endif  // FSMON_CRC32_CLMUL

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const std::byte* p = data.data();
  std::size_t n = data.size();
#ifdef FSMON_CRC32_CLMUL
  static const bool kClmul = cpu_has_clmul();
  if (kClmul && n >= 64) c = crc32_clmul(c, p, n);
#endif
  while (n >= kSlices) {
    const std::uint32_t a = c ^ load_le32(p);
    const std::uint32_t b = load_le32(p + 4);
    const std::uint32_t d = load_le32(p + 8);
    const std::uint32_t e = load_le32(p + 12);
    c = kTables[15][a & 0xFFu] ^ kTables[14][(a >> 8) & 0xFFu] ^
        kTables[13][(a >> 16) & 0xFFu] ^ kTables[12][a >> 24] ^
        kTables[11][b & 0xFFu] ^ kTables[10][(b >> 8) & 0xFFu] ^
        kTables[9][(b >> 16) & 0xFFu] ^ kTables[8][b >> 24] ^
        kTables[7][d & 0xFFu] ^ kTables[6][(d >> 8) & 0xFFu] ^
        kTables[5][(d >> 16) & 0xFFu] ^ kTables[4][d >> 24] ^
        kTables[3][e & 0xFFu] ^ kTables[2][(e >> 8) & 0xFFu] ^
        kTables[1][(e >> 16) & 0xFFu] ^ kTables[0][e >> 24];
    p += kSlices;
    n -= kSlices;
  }
  for (; n > 0; --n, ++p) {
    c = kTables[0][(c ^ static_cast<std::uint8_t>(*p)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::string_view text, std::uint32_t seed) {
  return crc32(std::as_bytes(std::span(text.data(), text.size())), seed);
}

}  // namespace fsmon::common
