// Single-producer single-consumer lock-free ring buffer.
//
// Used on the hot path between a DSI's event-capture thread and the
// resolution layer where exactly one producer and one consumer exist.
// Classic Lamport queue with C++20 atomics; capacity is rounded up to a
// power of two so index masking is a single AND.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

namespace fsmon::common {

// 64 bytes covers x86-64 and most AArch64 parts; a fixed value keeps the
// ABI stable across translation units (GCC warns that the library
// constant may vary with -mtune).
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscRing {
 public:
  /// `min_capacity` is rounded up to the next power of two (>= 2).
  explicit SpscRing(std::size_t min_capacity)
      : mask_(std::bit_ceil(std::max<std::size_t>(min_capacity, 2)) - 1),
        slots_(mask_ + 1) {}

  /// Producer side. Returns false when the ring is full.
  bool try_push(T item) {
    const auto head = head_.load(std::memory_order_relaxed);
    const auto tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    slots_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when the ring is empty.
  std::optional<T> try_pop() {
    const auto tail = tail_.load(std::memory_order_relaxed);
    const auto head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    T item = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return item;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Approximate size; exact only when called from one of the two threads
  /// while the other is quiescent.
  std::size_t size_approx() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
};

}  // namespace fsmon::common
