// Serial service resource for the discrete-event simulator.
//
// A ServiceStation models one CPU-bound component (an MDS servicing
// metadata operations, a collector processing changelog records, the
// aggregator's publish thread, ...). Jobs arrive with a service time and
// are processed one at a time in FIFO order; completion fires a callback.
// The station tracks busy time (=> utilization / CPU%) and queue-depth
// statistics — these produce the paper's CPU% numbers in Tables VII/VIII.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/common/resource_probe.hpp"
#include "src/sim/engine.hpp"

namespace fsmon::sim {

class ServiceStation {
 public:
  ServiceStation(Engine& engine, std::string name);

  /// Enqueue a job taking `service_time` of this station's time;
  /// `on_done` fires when the job completes (may be nullptr).
  void submit(common::Duration service_time, std::function<void()> on_done);

  /// Jobs waiting plus the one in service.
  std::size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }

  std::uint64_t completed() const { return completed_; }
  std::size_t peak_queue_depth() const { return peak_depth_; }
  const std::string& name() const { return name_; }

  /// CPU accounting. Service time models *occupancy* (how long a job
  /// holds the serial stage — RPC waits included); CPU busy time is
  /// charged explicitly by the caller via usage().charge_busy(), since
  /// most of a monitoring stage's latency is I/O wait, not cycles.
  const common::ModeledUsage& usage() const { return usage_; }
  common::ModeledUsage& usage() { return usage_; }

 private:
  struct Job {
    common::Duration service_time;
    std::function<void()> on_done;
  };

  void start_next();

  Engine& engine_;
  std::string name_;
  std::deque<Job> queue_;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
  std::size_t peak_depth_ = 0;
  common::ModeledUsage usage_;
};

}  // namespace fsmon::sim
