// Discrete-event simulation engine.
//
// The Lustre-scale experiments (Tables V-VIII, the 4-MDS aggregate, and
// the Robinhood comparison) run the monitoring pipeline in virtual time:
// modeled costs (metadata-op service time, fid2path latency, queue
// transfer costs) are charged against this engine's clock, making every
// benchmark deterministic and independent of the host machine.
//
// The engine is single-threaded: callbacks run inline in timestamp order
// (FIFO among equal timestamps). Components built for the real-threaded
// pipeline (LRU cache, Algorithm 1 processor, changelog) are pure and are
// reused unchanged inside simulation callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/clock.hpp"
#include "src/common/types.hpp"

namespace fsmon::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  common::TimePoint now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time (>= 0).
  void schedule(common::Duration delay, std::function<void()> fn);

  /// Schedule `fn` at an absolute virtual time (>= now()).
  void schedule_at(common::TimePoint when, std::function<void()> fn);

  /// Run callbacks until the event queue is empty. Returns the number of
  /// callbacks executed.
  std::uint64_t run();

  /// Run callbacks with timestamp <= `until`; afterwards now() == until
  /// (even if the queue drained earlier). Returns callbacks executed.
  std::uint64_t run_until(common::TimePoint until);

  /// Convenience: run for `d` of virtual time from now().
  std::uint64_t run_for(common::Duration d) { return run_until(now_ + d); }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// A Clock view of this engine. sleep_for is unsupported (callbacks must
  /// schedule continuations instead) and throws.
  common::Clock& clock() { return clock_view_; }
  const common::Clock& clock() const { return clock_view_; }

 private:
  struct Scheduled {
    common::TimePoint when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  class ClockView final : public common::Clock {
   public:
    explicit ClockView(const Engine& engine) : engine_(engine) {}
    common::TimePoint now() const override { return engine_.now(); }
    [[noreturn]] void sleep_for(common::Duration) override;

   private:
    const Engine& engine_;
  };

  common::TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  ClockView clock_view_{*this};
};

}  // namespace fsmon::sim
