#include "src/sim/service_station.hpp"

#include <stdexcept>
#include <utility>

namespace fsmon::sim {

ServiceStation::ServiceStation(Engine& engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

void ServiceStation::submit(common::Duration service_time, std::function<void()> on_done) {
  if (service_time.count() < 0)
    throw std::invalid_argument("ServiceStation::submit: negative service time");
  queue_.push_back(Job{service_time, std::move(on_done)});
  peak_depth_ = std::max(peak_depth_, queue_depth());
  if (!busy_) start_next();
}

void ServiceStation::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  engine_.schedule(job.service_time, [this, done = std::move(job.on_done)]() {
    ++completed_;
    if (done) done();
    start_next();
  });
}

}  // namespace fsmon::sim
