#include "src/sim/engine.hpp"

#include <stdexcept>

namespace fsmon::sim {

void Engine::schedule(common::Duration delay, std::function<void()> fn) {
  if (delay.count() < 0) throw std::invalid_argument("Engine::schedule: negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

void Engine::schedule_at(common::TimePoint when, std::function<void()> fn) {
  if (when < now_) throw std::invalid_argument("Engine::schedule_at: time in the past");
  queue_.push(Scheduled{when, next_seq_++, std::move(fn)});
}

std::uint64_t Engine::run() {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    // Move out of the queue before running: the callback may schedule.
    auto item = queue_.top();
    queue_.pop();
    now_ = item.when;
    item.fn();
    ++executed;
  }
  return executed;
}

std::uint64_t Engine::run_until(common::TimePoint until) {
  if (until < now_) throw std::invalid_argument("Engine::run_until: time in the past");
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    auto item = queue_.top();
    queue_.pop();
    now_ = item.when;
    item.fn();
    ++executed;
  }
  now_ = until;
  return executed;
}

void Engine::ClockView::sleep_for(common::Duration) {
  throw std::logic_error(
      "sim::Engine clock does not support sleep_for; schedule a continuation instead");
}

}  // namespace fsmon::sim
