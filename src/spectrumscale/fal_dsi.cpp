#include "src/spectrumscale/fal_dsi.hpp"

namespace fsmon::spectrumscale {

using core::EventKind;
using core::StdEvent;

std::vector<StdEvent> standardize_audit_record(const AuditRecord& record) {
  StdEvent event;
  event.path = record.path;
  event.is_dir = record.is_dir;
  event.timestamp = record.timestamp;
  event.source = "spectrumscale:" + record.node;
  event.cookie = record.sequence;
  switch (record.event) {
    case AuditEventType::kCreate: event.kind = EventKind::kCreate; break;
    case AuditEventType::kMkdir:
      event.kind = EventKind::kCreate;
      event.is_dir = true;
      break;
    case AuditEventType::kOpen: event.kind = EventKind::kOpen; break;
    case AuditEventType::kClose: event.kind = EventKind::kClose; break;
    case AuditEventType::kDestroy: event.kind = EventKind::kDelete; break;
    case AuditEventType::kRmdir:
      event.kind = EventKind::kDelete;
      event.is_dir = true;
      break;
    case AuditEventType::kXattrChange:
    case AuditEventType::kAclChange:
    case AuditEventType::kGpfsAttrChange: event.kind = EventKind::kAttrib; break;
    case AuditEventType::kRename: {
      // One FAL RENAME record carries both paths: expand to the standard
      // MOVED_FROM / MOVED_TO pair.
      StdEvent from = event;
      from.kind = EventKind::kMovedFrom;
      StdEvent to = event;
      to.kind = EventKind::kMovedTo;
      to.path = record.dest_path;
      return {std::move(from), std::move(to)};
    }
  }
  return {std::move(event)};
}

std::size_t SpectrumScaleDsi::poll_batch() {
  if (options_.pump_cluster) cluster_.pump();
  auto records = cluster_.fileset().read(last_sequence_, options_.batch_size);
  for (const auto& record : records) {
    last_sequence_ = record.sequence;
    for (auto& event : standardize_audit_record(record)) {
      if (callback_) callback_(std::move(event));
    }
  }
  consumed_.fetch_add(records.size());
  return records.size();
}

std::size_t SpectrumScaleDsi::drain_once() {
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = poll_batch();
    if (n == 0) break;
    total += n;
  }
  return total;
}

common::Status SpectrumScaleDsi::start(EventCallback callback) {
  if (running_.load()) return common::Status::ok();
  callback_ = std::move(callback);
  running_.store(true);
  worker_ = std::jthread([this](std::stop_token stop) { run(stop); });
  return common::Status::ok();
}

void SpectrumScaleDsi::stop() {
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
  running_.store(false);
}

void SpectrumScaleDsi::run(std::stop_token stop) {
  while (!stop.stop_requested()) {
    if (poll_batch() == 0) clock_.sleep_for(options_.poll_interval);
  }
  drain_once();
}

void register_spectrumscale_dsi(core::DsiRegistry& registry, GpfsCluster& cluster,
                                common::Clock& clock, SpectrumScaleDsiOptions options) {
  registry.register_dsi(
      "spectrumscale",
      [&cluster, &clock, options](const core::StorageDescriptor&)
          -> common::Result<std::unique_ptr<core::DsiBase>> {
        return common::Result<std::unique_ptr<core::DsiBase>>(
            std::make_unique<SpectrumScaleDsi>(cluster, options, clock));
      });
}

}  // namespace fsmon::spectrumscale
