#include "src/spectrumscale/fal.hpp"

#include <sstream>

#include "src/common/string_util.hpp"

namespace fsmon::spectrumscale {

using common::ErrorCode;
using common::Result;
using common::Status;

std::string_view to_string(AuditEventType type) {
  switch (type) {
    case AuditEventType::kCreate: return "CREATE";
    case AuditEventType::kOpen: return "OPEN";
    case AuditEventType::kClose: return "CLOSE";
    case AuditEventType::kDestroy: return "DESTROY";
    case AuditEventType::kRename: return "RENAME";
    case AuditEventType::kRmdir: return "RMDIR";
    case AuditEventType::kMkdir: return "MKDIR";
    case AuditEventType::kXattrChange: return "XATTRCHANGE";
    case AuditEventType::kAclChange: return "ACLCHANGE";
    case AuditEventType::kGpfsAttrChange: return "GPFSATTRCHANGE";
  }
  return "?";
}

std::optional<AuditEventType> parse_audit_event_type(std::string_view text) {
  static constexpr AuditEventType kAll[] = {
      AuditEventType::kCreate,      AuditEventType::kOpen,
      AuditEventType::kClose,       AuditEventType::kDestroy,
      AuditEventType::kRename,      AuditEventType::kRmdir,
      AuditEventType::kMkdir,       AuditEventType::kXattrChange,
      AuditEventType::kAclChange,   AuditEventType::kGpfsAttrChange,
  };
  for (AuditEventType t : kAll) {
    if (to_string(t) == text) return t;
  }
  return std::nullopt;
}

namespace {

void append_json_string(std::ostringstream& os, std::string_view key,
                        std::string_view value, bool trailing_comma = true) {
  os << '"' << key << "\":\"";
  for (char c : value) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
  if (trailing_comma) os << ',';
}

/// Extract a "key":"value" or "key":number field from flat JSON.
std::optional<std::string> json_field(std::string_view json, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = json.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::size_t start = pos + needle.size();
  if (start >= json.size()) return std::nullopt;
  if (json[start] == '"') {
    ++start;
    std::string out;
    for (std::size_t i = start; i < json.size(); ++i) {
      if (json[i] == '\\' && i + 1 < json.size()) {
        out.push_back(json[++i]);
      } else if (json[i] == '"') {
        return out;
      } else {
        out.push_back(json[i]);
      }
    }
    return std::nullopt;  // unterminated
  }
  std::size_t end = start;
  while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
  return std::string(json.substr(start, end - start));
}

}  // namespace

std::string AuditRecord::to_json() const {
  std::ostringstream os;
  os << '{';
  os << "\"seq\":" << sequence << ',';
  append_json_string(os, "event", to_string(event));
  append_json_string(os, "clusterName", cluster);
  append_json_string(os, "nodeName", node);
  append_json_string(os, "fsName", fs_name);
  append_json_string(os, "path", path);
  if (!dest_path.empty()) append_json_string(os, "targetPath", dest_path);
  os << "\"inode\":" << inode << ',';
  os << "\"isDir\":" << (is_dir ? "true" : "false") << ',';
  os << "\"eventTimeNs\":" << timestamp.time_since_epoch().count();
  os << '}';
  return os.str();
}

Result<AuditRecord> AuditRecord::from_json(std::string_view json) {
  AuditRecord record;
  auto event_name = json_field(json, "event");
  if (!event_name) return Status(ErrorCode::kCorrupt, "audit record: missing event");
  auto type = parse_audit_event_type(*event_name);
  if (!type) return Status(ErrorCode::kCorrupt, "audit record: unknown event " + *event_name);
  record.event = *type;
  auto path = json_field(json, "path");
  if (!path) return Status(ErrorCode::kCorrupt, "audit record: missing path");
  record.path = *path;
  record.dest_path = json_field(json, "targetPath").value_or("");
  record.cluster = json_field(json, "clusterName").value_or("");
  record.node = json_field(json, "nodeName").value_or("");
  record.fs_name = json_field(json, "fsName").value_or("");
  try {
    record.sequence = std::stoull(json_field(json, "seq").value_or("0"));
    record.inode = std::stoull(json_field(json, "inode").value_or("0"));
    record.timestamp = common::TimePoint{
        common::Duration{std::stoll(json_field(json, "eventTimeNs").value_or("0"))}};
  } catch (const std::exception&) {
    return Status(ErrorCode::kCorrupt, "audit record: bad numeric field");
  }
  record.is_dir = json_field(json, "isDir").value_or("false") == "true";
  return record;
}

std::uint64_t RetentionFileset::append(AuditRecord record) {
  record.sequence = next_sequence_++;
  records_.push_back(std::move(record));
  return records_.back().sequence;
}

std::vector<AuditRecord> RetentionFileset::read(std::uint64_t after,
                                                std::size_t max_records) const {
  std::vector<AuditRecord> out;
  for (const auto& record : records_) {
    if (record.sequence <= after) continue;
    out.push_back(record);
    if (out.size() >= max_records) break;
  }
  return out;
}

std::size_t RetentionFileset::expire() {
  const auto cutoff = clock_.now() - retention_;
  std::size_t dropped = 0;
  while (!records_.empty() && records_.front().timestamp < cutoff) {
    records_.pop_front();
    ++dropped;
  }
  return dropped;
}

GpfsCluster::GpfsCluster(GpfsClusterOptions options, common::Clock& clock)
    : options_(std::move(options)),
      clock_(clock),
      fileset_(clock, options_.retention_period) {
  sink_ = bus_.make_subscriber("fal-sink", 1 << 16);
  sink_->subscribe("");  // the sink consumes every node's audit topic
  for (std::uint32_t i = 0; i < options_.node_count; ++i) {
    auto publisher = bus_.make_publisher("node" + std::to_string(i));
    publisher->connect(sink_);
    node_publishers_.push_back(std::move(publisher));
  }
}

bool GpfsCluster::exists(const std::string& path) const {
  return entries_.count(common::normalize_path(path)) != 0;
}

Status GpfsCluster::emit(AuditEventType type, const std::string& path,
                         const std::string& dest) {
  AuditRecord record;
  record.event = type;
  record.cluster = options_.cluster_name;
  record.fs_name = options_.fs_name;
  record.path = path;
  record.dest_path = dest;
  record.timestamp = clock_.now();
  auto it = entries_.find(dest.empty() ? path : dest);
  if (it != entries_.end()) {
    record.inode = it->second.inode;
    record.is_dir = it->second.is_dir;
  }
  // Locally generated events go out via the generating node's publisher.
  const std::uint32_t node = next_node_;
  next_node_ = (next_node_ + 1) % options_.node_count;
  record.node = "protocol-node-" + std::to_string(node);
  node_publishers_[node]->publish("fal/" + record.node, record.to_json());
  return Status::ok();
}

Status GpfsCluster::create(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  if (entries_.count(norm) != 0) return Status(ErrorCode::kAlreadyExists, norm);
  entries_[norm] = Entry{false, next_inode_++};
  return emit(AuditEventType::kCreate, norm);
}

Status GpfsCluster::mkdir(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  if (entries_.count(norm) != 0) return Status(ErrorCode::kAlreadyExists, norm);
  entries_[norm] = Entry{true, next_inode_++};
  return emit(AuditEventType::kMkdir, norm);
}

Status GpfsCluster::open(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  if (entries_.count(norm) == 0) return Status(ErrorCode::kNotFound, norm);
  return emit(AuditEventType::kOpen, norm);
}

Status GpfsCluster::close(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  if (entries_.count(norm) == 0) return Status(ErrorCode::kNotFound, norm);
  return emit(AuditEventType::kClose, norm);
}

Status GpfsCluster::write(const std::string& path) {
  // FAL has no per-write event; modifications surface as CLOSE after a
  // writing open. Model the open+close pair directly.
  if (auto s = open(path); !s.is_ok()) return s;
  return close(path);
}

Status GpfsCluster::unlink(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  auto it = entries_.find(norm);
  if (it == entries_.end()) return Status(ErrorCode::kNotFound, norm);
  if (it->second.is_dir) return Status(ErrorCode::kIsADirectory, norm);
  auto status = emit(AuditEventType::kDestroy, norm);
  entries_.erase(it);
  return status;
}

Status GpfsCluster::rmdir(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  auto it = entries_.find(norm);
  if (it == entries_.end()) return Status(ErrorCode::kNotFound, norm);
  if (!it->second.is_dir) return Status(ErrorCode::kNotADirectory, norm);
  auto status = emit(AuditEventType::kRmdir, norm);
  entries_.erase(it);
  return status;
}

Status GpfsCluster::rename(const std::string& from, const std::string& to) {
  const std::string src = common::normalize_path(from);
  const std::string dst = common::normalize_path(to);
  auto it = entries_.find(src);
  if (it == entries_.end()) return Status(ErrorCode::kNotFound, src);
  if (entries_.count(dst) != 0) return Status(ErrorCode::kAlreadyExists, dst);
  Entry entry = it->second;
  entries_.erase(it);
  entries_[dst] = entry;
  return emit(AuditEventType::kRename, src, dst);
}

Status GpfsCluster::set_xattr(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  if (entries_.count(norm) == 0) return Status(ErrorCode::kNotFound, norm);
  return emit(AuditEventType::kXattrChange, norm);
}

Status GpfsCluster::set_acl(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  if (entries_.count(norm) == 0) return Status(ErrorCode::kNotFound, norm);
  return emit(AuditEventType::kAclChange, norm);
}

std::size_t GpfsCluster::pump() {
  std::size_t pumped = 0;
  while (auto message = sink_->try_recv()) {
    auto record = AuditRecord::from_json(message->payload);
    if (record) {
      fileset_.append(std::move(record).take());
      ++pumped;
    }
  }
  return pumped;
}

}  // namespace fsmon::spectrumscale
