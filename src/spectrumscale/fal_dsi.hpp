// Spectrum Scale DSI: consumes File-Audit-Logging records from the
// retention fileset and standardizes them to FSMonitor's event
// representation — the concrete demonstration of the paper's claim that
// the scalable-monitor design "can be extended to build a scalable
// monitoring solution for Spectrum Scale in addition to Lustre"
// (Section II-B2).
#pragma once

#include <atomic>
#include <thread>

#include "src/core/dsi.hpp"
#include "src/spectrumscale/fal.hpp"

namespace fsmon::spectrumscale {

/// Standardize one audit record (pure; unit-tested directly). RENAME
/// expands into a MOVED_FROM/MOVED_TO pair keyed by the record sequence.
std::vector<core::StdEvent> standardize_audit_record(const AuditRecord& record);

struct SpectrumScaleDsiOptions {
  std::size_t batch_size = 512;
  common::Duration poll_interval = std::chrono::milliseconds(1);
  /// Drive the fileset pump from the DSI (single-process deployments).
  bool pump_cluster = true;
};

class SpectrumScaleDsi final : public core::DsiBase {
 public:
  SpectrumScaleDsi(GpfsCluster& cluster, SpectrumScaleDsiOptions options,
                   common::Clock& clock)
      : cluster_(cluster), options_(options), clock_(clock) {}
  ~SpectrumScaleDsi() override { stop(); }

  std::string name() const override { return "spectrumscale"; }
  common::Status start(EventCallback callback) override;
  void stop() override;
  bool running() const override { return running_.load(); }

  /// Synchronously drain everything currently in the fileset
  /// (deterministic tests). Returns records consumed.
  std::size_t drain_once();

  std::uint64_t records_consumed() const { return consumed_.load(); }

 private:
  std::size_t poll_batch();
  void run(std::stop_token stop);

  GpfsCluster& cluster_;
  SpectrumScaleDsiOptions options_;
  common::Clock& clock_;
  EventCallback callback_;
  std::uint64_t last_sequence_ = 0;
  std::jthread worker_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> consumed_{0};
};

/// Register scheme "spectrumscale" bound to `cluster`.
void register_spectrumscale_dsi(core::DsiRegistry& registry, GpfsCluster& cluster,
                                common::Clock& clock,
                                SpectrumScaleDsiOptions options = {});

}  // namespace fsmon::spectrumscale
