// IBM Spectrum Scale (GPFS) File Audit Logging substrate.
//
// The paper argues FSMonitor extends beyond Lustre to any distributed
// store with a metadata catalog: "Spectrum Scale File Audit Logging
// takes locally generated file system events and puts them on a
// multi-node message queue from which they are consumed and written to
// a retention enabled fileset. Therefore, FSMonitor can be extended to
// build a scalable monitoring solution for Spectrum Scale" (§II-B2).
//
// This module simulates exactly that pipeline: protocol nodes generate
// JSON audit records for local operations, publish them onto the
// multi-node message queue (one publisher per node, fan-in), and a
// consumer writes them to the retention-enabled fileset, which retains
// records for a configurable period and serves incremental reads — the
// surface the Spectrum Scale DSI consumes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/clock.hpp"
#include "src/common/status.hpp"
#include "src/msgq/pubsub.hpp"

namespace fsmon::spectrumscale {

/// Spectrum Scale FAL event types (the JSON "event" field).
enum class AuditEventType : std::uint8_t {
  kCreate,
  kOpen,
  kClose,
  kDestroy,  ///< FAL's name for file deletion.
  kRename,
  kRmdir,
  kMkdir,  ///< Reported as CREATE of a directory in FAL; kept distinct here.
  kXattrChange,
  kAclChange,
  kGpfsAttrChange,
};

std::string_view to_string(AuditEventType type);
std::optional<AuditEventType> parse_audit_event_type(std::string_view text);

/// One File-Audit-Logging record (rendered as JSON in the fileset).
struct AuditRecord {
  std::uint64_t sequence = 0;  ///< Assigned by the retention fileset.
  AuditEventType event = AuditEventType::kCreate;
  std::string cluster;
  std::string node;       ///< Protocol node that generated the event.
  std::string fs_name;
  std::string path;
  std::string dest_path;  ///< RENAME only.
  std::uint64_t inode = 0;
  bool is_dir = false;
  common::TimePoint timestamp{};

  /// Render in FAL's JSON shape.
  std::string to_json() const;

  /// Parse a record produced by to_json(); kCorrupt on malformed input.
  static common::Result<AuditRecord> from_json(std::string_view json);
};

/// The retention-enabled fileset: an append-only log of audit records
/// with sequence numbers, incremental reads, and age-based expiry.
class RetentionFileset {
 public:
  RetentionFileset(common::Clock& clock, common::Duration retention_period)
      : clock_(clock), retention_(retention_period) {}

  /// Append one record; assigns and returns its sequence number.
  std::uint64_t append(AuditRecord record);

  /// Records with sequence > after, up to max_records.
  std::vector<AuditRecord> read(std::uint64_t after, std::size_t max_records) const;

  /// Drop records older than the retention period; returns count dropped.
  std::size_t expire();

  std::uint64_t last_sequence() const { return next_sequence_ - 1; }
  std::size_t retained() const { return records_.size(); }

 private:
  common::Clock& clock_;
  common::Duration retention_;
  std::deque<AuditRecord> records_;
  std::uint64_t next_sequence_ = 1;
};

struct GpfsClusterOptions {
  std::string cluster_name = "gpfs-cluster";
  std::string fs_name = "gpfs0";
  std::uint32_t node_count = 3;
  common::Duration retention_period = std::chrono::hours(24);
};

/// The simulated cluster: file operations routed round-robin over
/// protocol nodes; each node publishes audit records onto the message
/// queue; a built-in sink drains the queue into the retention fileset
/// (the paper's FAL pipeline).
class GpfsCluster {
 public:
  GpfsCluster(GpfsClusterOptions options, common::Clock& clock);

  // Client operations. Each successful op emits one audit record (two
  // publishes for rename: FAL reports a single RENAME record with both
  // paths, which we follow).
  common::Status create(const std::string& path);
  common::Status mkdir(const std::string& path);
  common::Status open(const std::string& path);
  common::Status close(const std::string& path);
  common::Status write(const std::string& path);  ///< emits CLOSE-on-write semantics via close()
  common::Status unlink(const std::string& path);
  common::Status rmdir(const std::string& path);
  common::Status rename(const std::string& from, const std::string& to);
  common::Status set_xattr(const std::string& path);
  common::Status set_acl(const std::string& path);

  /// Pump queued audit records from the message queue into the retention
  /// fileset (in deployment this runs continuously on sink nodes).
  std::size_t pump();

  RetentionFileset& fileset() { return fileset_; }
  const GpfsClusterOptions& options() const { return options_; }
  std::uint32_t node_count() const { return options_.node_count; }
  bool exists(const std::string& path) const;

 private:
  struct Entry {
    bool is_dir = false;
    std::uint64_t inode = 0;
  };

  common::Status emit(AuditEventType type, const std::string& path,
                      const std::string& dest = {});

  GpfsClusterOptions options_;
  common::Clock& clock_;
  std::map<std::string, Entry> entries_;
  std::uint64_t next_inode_ = 1;
  std::uint32_t next_node_ = 0;
  msgq::Bus bus_;
  std::vector<std::shared_ptr<msgq::Publisher>> node_publishers_;
  std::shared_ptr<msgq::Subscriber> sink_;
  RetentionFileset fileset_;
};

}  // namespace fsmon::spectrumscale
