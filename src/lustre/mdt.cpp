#include "src/lustre/mdt.hpp"

#include <algorithm>

namespace fsmon::lustre {

using common::ErrorCode;
using common::Result;
using common::Status;

void Mds::attach_metrics(obs::MetricsRegistry& registry) {
  const obs::Labels labels{{"mdt", std::to_string(index())}};
  reads_counter_ = &registry.counter("changelog.reads", labels,
                                     "changelog_read calls served (lfs changelog)", "calls");
  records_read_counter_ =
      &registry.counter("changelog.records_read", labels,
                        "Records handed to changelog users by changelog_read", "records");
  records_cleared_counter_ = &registry.counter(
      "changelog.records_cleared", labels,
      "Records acknowledged via changelog_clear (lfs changelog_clear)", "records");
  mdt_.changelog().attach_metrics(registry, labels);
}

std::string Mds::register_changelog_user() {
  std::string id = "cl" + std::to_string(next_user_++);
  // A new user starts at the log head: it sees only records appended
  // after registration (Lustre semantics).
  users_.emplace(id, mdt_.changelog().last_index());
  return id;
}

Status Mds::deregister_changelog_user(const std::string& user_id) {
  if (users_.erase(user_id) == 0) return Status(ErrorCode::kNotFound, user_id);
  return Status::ok();
}

Result<std::vector<ChangelogRecord>> Mds::changelog_read(
    const std::string& user_id, std::size_t max_records,
    std::optional<std::uint64_t> after_index) {
  auto it = users_.find(user_id);
  if (it == users_.end())
    return Status(ErrorCode::kNotFound, "unregistered changelog user " + user_id);
  auto records =
      mdt_.changelog().read(after_index.value_or(it->second), max_records);
  if (reads_counter_ != nullptr) reads_counter_->inc();
  if (records_read_counter_ != nullptr) records_read_counter_->inc(records.size());
  return records;
}

Result<std::uint64_t> Mds::cleared_index(const std::string& user_id) const {
  auto it = users_.find(user_id);
  if (it == users_.end())
    return Status(ErrorCode::kNotFound, "unregistered changelog user " + user_id);
  return it->second;
}

Status Mds::changelog_clear(const std::string& user_id, std::uint64_t index) {
  auto it = users_.find(user_id);
  if (it == users_.end())
    return Status(ErrorCode::kNotFound, "unregistered changelog user " + user_id);
  if (index > mdt_.changelog().last_index())
    return Status(ErrorCode::kOutOfRange, "clear beyond last record");
  if (records_cleared_counter_ != nullptr && index > it->second)
    records_cleared_counter_->inc(index - it->second);
  it->second = std::max(it->second, index);
  // Physically purge up to the minimum acknowledged index.
  std::uint64_t min_cleared = index;
  for (const auto& [id, cleared] : users_) min_cleared = std::min(min_cleared, cleared);
  if (min_cleared > 0) return mdt_.changelog().clear_upto(min_cleared);
  return Status::ok();
}

}  // namespace fsmon::lustre
