#include "src/lustre/fid_resolver.hpp"

#include <algorithm>

namespace fsmon::lustre {

void FidResolver::attach_metrics(obs::MetricsRegistry& registry, obs::Labels labels) {
  calls_counter_ = &registry.counter("fid2path.calls", labels,
                                     "fid2path invocations (cache misses fall through here)",
                                     "calls");
  failures_counter_ = &registry.counter(
      "fid2path.failures", labels, "fid2path calls on FIDs that no longer exist", "calls");
  latency_hist_ = &registry.histogram("fid2path.latency_us", std::move(labels),
                                      "Per-call fid2path resolve latency", "us");
}

ResolveOutcome FidResolver::resolve(const Fid& fid) {
  ++calls_;
  if (calls_counter_ != nullptr) calls_counter_->inc();
  auto path = fs_.fid2path(fid);
  std::size_t components = 1;
  if (path.is_ok()) {
    components = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::count(path.value().begin(), path.value().end(), '/')));
  } else {
    ++failures_;
    if (failures_counter_ != nullptr) failures_counter_->inc();
  }
  const common::Duration cost =
      options_.base_cost + options_.per_component_cost * static_cast<std::int64_t>(components);
  total_cost_ += cost;
  if (latency_hist_ != nullptr)
    latency_hist_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(cost).count()));
  if (clock_ != nullptr) clock_->sleep_for(cost);
  return ResolveOutcome(std::move(path), cost);
}

}  // namespace fsmon::lustre
