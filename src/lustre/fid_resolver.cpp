#include "src/lustre/fid_resolver.hpp"

#include <algorithm>

namespace fsmon::lustre {

ResolveOutcome FidResolver::resolve(const Fid& fid) {
  ++calls_;
  auto path = fs_.fid2path(fid);
  std::size_t components = 1;
  if (path.is_ok()) {
    components = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::count(path.value().begin(), path.value().end(), '/')));
  } else {
    ++failures_;
  }
  const common::Duration cost =
      options_.base_cost + options_.per_component_cost * static_cast<std::int64_t>(components);
  total_cost_ += cost;
  if (clock_ != nullptr) clock_->sleep_for(cost);
  return ResolveOutcome(std::move(path), cost);
}

}  // namespace fsmon::lustre
