#include "src/lustre/fid_resolver.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <optional>

namespace fsmon::lustre {

void FidResolver::attach_metrics(obs::MetricsRegistry& registry, obs::Labels labels) {
  calls_counter_ = &registry.counter("fid2path.calls", labels,
                                     "fid2path invocations (cache misses fall through here)",
                                     "calls");
  failures_counter_ = &registry.counter(
      "fid2path.failures", labels, "fid2path calls on FIDs that no longer exist", "calls");
  latency_hist_ = &registry.histogram("fid2path.latency_us", std::move(labels),
                                      "Per-call fid2path resolve latency", "us");
}

ResolveOutcome FidResolver::resolve(const Fid& fid) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (calls_counter_ != nullptr) calls_counter_->inc();
  auto path = fs_.fid2path(fid);
  std::size_t components = 1;
  if (path.is_ok()) {
    components = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::count(path.value().begin(), path.value().end(), '/')));
  } else {
    failures_.fetch_add(1, std::memory_order_relaxed);
    if (failures_counter_ != nullptr) failures_counter_->inc();
  }
  const common::Duration cost =
      options_.base_cost + options_.per_component_cost * static_cast<std::int64_t>(components);
  total_cost_ns_.fetch_add(cost.count(), std::memory_order_relaxed);
  if (latency_hist_ != nullptr)
    latency_hist_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(cost).count()));
  if (clock_ != nullptr) clock_->sleep_for(cost);
  return ResolveOutcome(std::move(path), cost);
}

std::vector<ResolveOutcome> FidResolver::resolve_many(const std::vector<Fid>& fids,
                                                      common::ThreadPool* pool) {
  std::vector<std::optional<ResolveOutcome>> slots(fids.size());
  if (pool == nullptr) {
    for (std::size_t i = 0; i < fids.size(); ++i) slots[i].emplace(resolve(fids[i]));
  } else {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = fids.size();
    for (std::size_t i = 0; i < fids.size(); ++i) {
      pool->submit([this, &fids, &slots, &mu, &cv, &remaining, i] {
        auto outcome = resolve(fids[i]);
        std::lock_guard lock(mu);
        slots[i].emplace(std::move(outcome));
        if (--remaining == 0) cv.notify_one();
      });
    }
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
  }
  std::vector<ResolveOutcome> outcomes;
  outcomes.reserve(fids.size());
  for (auto& slot : slots) outcomes.push_back(std::move(*slot));
  return outcomes;
}

}  // namespace fsmon::lustre
