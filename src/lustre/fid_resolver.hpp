// fid2path with a calibrated cost model.
//
// The paper identifies Lustre's `fid2path` tool as the event-reporting
// bottleneck: "fid2path is costly and executing it for every event
// reduces overall throughput" (Section V-D2, a 14.9% reporting-rate loss
// on Iota without caching). The resolver wraps the namespace walk with a
// per-call cost so both the threaded pipeline (which sleeps the cost on
// its injected clock) and the discrete-event benchmarks (which charge the
// cost to a ServiceStation) model that expense faithfully.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/clock.hpp"
#include "src/common/status.hpp"
#include "src/common/thread_pool.hpp"
#include "src/lustre/filesystem.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::lustre {

struct FidResolverOptions {
  /// Fixed cost per fid2path invocation (upcall + MDT lookup).
  common::Duration base_cost = std::chrono::microseconds(25);
  /// Additional cost per path component resolved (linkEA walk).
  common::Duration per_component_cost = std::chrono::microseconds(2);
};

/// Outcome of a resolution: the path (or error) plus the modeled cost of
/// the call, so callers in simulation charge it to the right resource.
struct ResolveOutcome {
  common::Result<std::string> path;
  common::Duration cost{};

  ResolveOutcome(common::Result<std::string> p, common::Duration c)
      : path(std::move(p)), cost(c) {}
};

/// Safe for concurrent callers: the namespace walk locks inside LustreFs,
/// the counters are atomic, and the metric instruments are thread-safe.
/// attach_metrics() must still happen before resolution starts.
class FidResolver {
 public:
  /// `clock` may be null: then resolve() only reports the cost; when set,
  /// resolve() also sleeps it (threaded mode pays the latency for real).
  FidResolver(const LustreFs& fs, FidResolverOptions options,
              common::Clock* clock = nullptr)
      : fs_(fs), options_(options), clock_(clock) {}

  /// Resolve a FID to its absolute path. Errors with kNotFound when the
  /// FID has been deleted — the condition Algorithm 1 branches on.
  ResolveOutcome resolve(const Fid& fid);

  /// Async entry point: fan the resolutions out across `pool`'s workers
  /// (inline when `pool` is null) and return the outcomes in input order
  /// regardless of completion order.
  std::vector<ResolveOutcome> resolve_many(const std::vector<Fid>& fids,
                                           common::ThreadPool* pool);

  std::uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  std::uint64_t failures() const { return failures_.load(std::memory_order_relaxed); }
  common::Duration total_cost() const {
    return common::Duration{total_cost_ns_.load(std::memory_order_relaxed)};
  }

  /// Register fid2path call/failure counters and the per-call resolve
  /// latency histogram (microseconds of modeled cost).
  void attach_metrics(obs::MetricsRegistry& registry, obs::Labels labels);

 private:
  const LustreFs& fs_;
  FidResolverOptions options_;
  common::Clock* clock_;
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::int64_t> total_cost_ns_{0};
  obs::Counter* calls_counter_ = nullptr;
  obs::Counter* failures_counter_ = nullptr;
  obs::HistogramMetric* latency_hist_ = nullptr;
};

}  // namespace fsmon::lustre
