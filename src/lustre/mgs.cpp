#include "src/lustre/mgs.hpp"

namespace fsmon::lustre {

using common::ErrorCode;
using common::Status;

void Mgs::set_param(const std::string& key, const std::string& value) {
  params_[key] = value;
}

std::optional<std::string> Mgs::get_param(const std::string& key) const {
  auto it = params_.find(key);
  if (it == params_.end()) return std::nullopt;
  return it->second;
}

Status Mgs::register_service(ServiceRecord record) {
  if (record.name.empty()) return Status(ErrorCode::kInvalid, "service name required");
  if (services_.count(record.name) != 0)
    return Status(ErrorCode::kAlreadyExists, record.name);
  services_.emplace(record.name, std::move(record));
  return Status::ok();
}

Status Mgs::deregister_service(const std::string& name) {
  if (services_.erase(name) == 0) return Status(ErrorCode::kNotFound, name);
  return Status::ok();
}

std::vector<ServiceRecord> Mgs::services_of_kind(const std::string& kind) const {
  std::vector<ServiceRecord> out;
  for (const auto& [name, record] : services_) {
    if (record.kind == kind) out.push_back(record);
  }
  return out;
}

}  // namespace fsmon::lustre
