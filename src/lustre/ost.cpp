#include "src/lustre/ost.hpp"

#include <stdexcept>

namespace fsmon::lustre {

using common::ErrorCode;
using common::Result;
using common::Status;

OstPool::OstPool(std::uint32_t oss_count, std::uint32_t osts_per_oss,
                 std::uint64_t ost_capacity_bytes)
    : oss_count_(oss_count) {
  if (oss_count == 0 || osts_per_oss == 0)
    throw std::invalid_argument("OstPool: need at least one OSS and OST");
  osts_.resize(static_cast<std::size_t>(oss_count) * osts_per_oss);
  for (auto& ost : osts_) ost.capacity_bytes = ost_capacity_bytes;
}

std::uint64_t OstPool::total_capacity_bytes() const {
  std::uint64_t total = 0;
  for (const auto& ost : osts_) total += ost.capacity_bytes;
  return total;
}

std::uint64_t OstPool::total_used_bytes() const {
  std::uint64_t total = 0;
  for (const auto& ost : osts_) total += ost.used_bytes;
  return total;
}

Status OstPool::allocate_objects(const Fid& fid, std::uint32_t stripe_count) {
  if (stripe_count == 0 || stripe_count > osts_.size())
    return Status(ErrorCode::kInvalid, "bad stripe count");
  if (files_.count(fid) != 0) return Status(ErrorCode::kAlreadyExists, to_string(fid));
  FileObjects objects;
  objects.ost_indices.reserve(stripe_count);
  for (std::uint32_t i = 0; i < stripe_count; ++i) {
    const std::uint32_t idx = next_ost_;
    next_ost_ = (next_ost_ + 1) % osts_.size();
    objects.ost_indices.push_back(idx);
    ++osts_[idx].object_count;
  }
  files_.emplace(fid, std::move(objects));
  return Status::ok();
}

Status OstPool::write(const Fid& fid, std::uint64_t bytes) {
  auto it = files_.find(fid);
  if (it == files_.end()) return Status(ErrorCode::kNotFound, to_string(fid));
  auto& objects = it->second;
  const std::uint64_t per_stripe = bytes / objects.ost_indices.size();
  std::uint64_t remainder = bytes % objects.ost_indices.size();
  for (std::uint32_t idx : objects.ost_indices) {
    const std::uint64_t chunk = per_stripe + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    osts_[idx].used_bytes += chunk;
  }
  objects.bytes += bytes;
  return Status::ok();
}

Status OstPool::release(const Fid& fid) {
  auto it = files_.find(fid);
  if (it == files_.end()) return Status(ErrorCode::kNotFound, to_string(fid));
  auto& objects = it->second;
  const std::uint64_t per_stripe = objects.bytes / objects.ost_indices.size();
  std::uint64_t remainder = objects.bytes % objects.ost_indices.size();
  for (std::uint32_t idx : objects.ost_indices) {
    const std::uint64_t chunk = per_stripe + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    osts_[idx].used_bytes -= std::min(osts_[idx].used_bytes, chunk);
    --osts_[idx].object_count;
  }
  files_.erase(it);
  return Status::ok();
}

Result<std::vector<std::uint32_t>> OstPool::stripes_of(const Fid& fid) const {
  auto it = files_.find(fid);
  if (it == files_.end()) return Status(ErrorCode::kNotFound, to_string(fid));
  return it->second.ost_indices;
}

}  // namespace fsmon::lustre
