#include "src/lustre/profiles.hpp"

namespace fsmon::lustre {
namespace {

using std::chrono::microseconds;
using std::chrono::nanoseconds;

constexpr std::uint64_t kGiB = 1ull << 30;
constexpr std::uint64_t kTiB = 1ull << 40;

}  // namespace

// Calibration (see EXPERIMENTS.md §Calibration). Without a cache, the
// processor issues one fid2path per record except deletes, whose target
// call fails and falls back to the parent — 2 calls — so the mixed
// stream (equal create/modify/delete thirds) averages 4/3 calls per
// event. With the 5000-entry cache the residual miss rate is ~8%
// (zipf-tail directories and evicted target FIDs). Solving
//   base + 4/3 * fid2path        = 1 / reported_without_cache   (Table VI)
//   base + 0.08 * fid2path       = 1 / reported_with_cache      (Table VI)
// yields the collector latency parameters; CPU shares are solved the
// same way from Table VII's collector CPU% with and without cache.

TestbedProfile TestbedProfile::aws() {
  TestbedProfile p;
  p.name = "AWS";
  p.storage_label = "20 GB";
  p.fs_options.fsname = "awslustre";
  p.fs_options.mdt_count = 1;
  p.fs_options.oss_count = 1;
  p.fs_options.osts_per_oss = 1;
  p.fs_options.ost_capacity_bytes = 20 * kGiB;
  p.create_rate = 352;
  p.modify_rate = 534;
  p.delete_rate = 832;
  p.mixed_event_rate = 1366;
  p.collector_base_cost = nanoseconds(739200);
  p.collector_base_cpu = nanoseconds(46360);
  p.fid2path_cost = nanoseconds(155300);
  p.fid2path_cpu = nanoseconds(30950);
  p.cache_lookup_coeff = nanoseconds(150);
  p.aggregator_event_cost = microseconds(50);
  p.aggregator_event_cpu = microseconds(20);
  p.consumer_event_cost = microseconds(20);
  p.consumer_event_cpu = nanoseconds(11100);
  p.robinhood_event_cost = nanoseconds(30300);
  p.robinhood_poll_rtt = microseconds(1000);
  p.robinhood_batch = 2000;
  p.dir_pool = 500;
  p.dir_zipf_skew = 0.9;
  p.event_bytes = 900;
  p.cache_entry_bytes = 2100;
  p.collector_base_bytes = 8ull << 20;
  p.aggregator_base_bytes = 5600ull << 10;
  p.consumer_base_bytes = 50ull << 10;
  return p;
}

TestbedProfile TestbedProfile::thor() {
  TestbedProfile p;
  p.name = "Thor";
  p.storage_label = "500 GB";
  p.fs_options.fsname = "thor";
  p.fs_options.mdt_count = 1;
  p.fs_options.oss_count = 10;
  p.fs_options.osts_per_oss = 5;
  p.fs_options.ost_capacity_bytes = 10 * kGiB;
  p.create_rate = 746;
  p.modify_rate = 1347;
  p.delete_rate = 2104;
  p.mixed_event_rate = 4509;
  p.collector_base_cost = nanoseconds(220300);
  p.collector_base_cpu = nanoseconds(740);
  p.fid2path_cost = nanoseconds(23400);
  p.fid2path_cpu = nanoseconds(13960);
  p.cache_lookup_coeff = nanoseconds(150);
  p.aggregator_event_cost = microseconds(20);
  p.aggregator_event_cpu = nanoseconds(1270);
  p.consumer_event_cost = microseconds(5);
  p.consumer_event_cpu = nanoseconds(512);
  p.robinhood_event_cost = nanoseconds(30300);
  p.robinhood_poll_rtt = microseconds(1000);
  p.robinhood_batch = 2000;
  p.dir_pool = 1200;
  p.dir_zipf_skew = 0.9;
  p.event_bytes = 1300;
  p.cache_entry_bytes = 2100;
  p.collector_base_bytes = 15ull << 20;
  p.aggregator_base_bytes = 7ull << 20;
  p.consumer_base_bytes = 200ull << 10;
  return p;
}

TestbedProfile TestbedProfile::iota() {
  TestbedProfile p;
  p.name = "Iota";
  p.storage_label = "897 TB";
  p.fs_options.fsname = "iota";
  p.fs_options.mdt_count = 4;  // Lustre DNE, paper Section V-A2
  p.fs_options.oss_count = 44;
  p.fs_options.osts_per_oss = 4;
  p.fs_options.ost_capacity_bytes = 897 * kTiB / (44 * 4);
  p.create_rate = 1389;
  p.modify_rate = 2538;
  p.delete_rate = 3442;
  p.mixed_event_rate = 9593;
  p.collector_base_cost = nanoseconds(102800);
  p.collector_base_cpu = nanoseconds(450);
  p.fid2path_cost = nanoseconds(14550);
  p.fid2path_cpu = nanoseconds(5700);
  p.cache_lookup_coeff = nanoseconds(150);
  p.aggregator_event_cost = microseconds(20);
  p.aggregator_event_cpu = nanoseconds(60);
  p.consumer_event_cost = microseconds(5);
  p.consumer_event_cpu = nanoseconds(20);
  p.robinhood_event_cost = nanoseconds(30300);
  p.robinhood_poll_rtt = microseconds(1000);
  p.robinhood_batch = 2000;
  p.dir_pool = 2000;
  p.dir_zipf_skew = 0.9;
  p.event_bytes = 923;
  p.cache_entry_bytes = 2100;
  p.collector_base_bytes = 42ull << 20;
  p.aggregator_base_bytes = 17600ull << 10;
  p.consumer_base_bytes = 2800ull << 10;
  return p;
}

}  // namespace fsmon::lustre
