// Lustre File IDentifier (FID).
//
// A FID is the cluster-wide stable identifier for a namespace object:
// a 64-bit sequence, a 32-bit object id within the sequence, and a
// 32-bit version. Changelog records carry FIDs (t=[...], p=[...],
// s=[...], sp=[...]) in the bracketed hex form shown in the paper's
// Table I, e.g. "[0x300005716:0x626c:0x0]".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace fsmon::lustre {

struct Fid {
  std::uint64_t seq = 0;
  std::uint32_t oid = 0;
  std::uint32_t ver = 0;

  friend bool operator==(const Fid&, const Fid&) = default;
  friend auto operator<=>(const Fid&, const Fid&) = default;

  bool is_null() const { return seq == 0 && oid == 0 && ver == 0; }
};

/// The null FID ([0x0:0x0:0x0]) — never allocated to an object.
inline constexpr Fid kNullFid{};

/// Format as "[0x<seq>:0x<oid>:0x<ver>]" (lower-case hex, no padding),
/// matching Lustre's `lfs changelog` output.
std::string to_string(const Fid& fid);

/// Parse the bracketed form; also accepts the form without brackets.
/// Returns nullopt on malformed input.
std::optional<Fid> parse_fid(std::string_view text);

/// Allocates FIDs the way a metadata target does: each allocator owns a
/// distinct sequence range so FIDs are unique across MDTs without
/// coordination.
class FidAllocator {
 public:
  /// `mdt_index` selects the sequence range (matches the paper's records
  /// where Iota FIDs start at sequence 0x300005716 for MDT0).
  explicit FidAllocator(std::uint32_t mdt_index);

  Fid next();

  std::uint64_t allocated() const { return count_; }

 private:
  std::uint64_t seq_;
  std::uint32_t next_oid_ = 1;
  std::uint64_t count_ = 0;
};

}  // namespace fsmon::lustre

template <>
struct std::hash<fsmon::lustre::Fid> {
  std::size_t operator()(const fsmon::lustre::Fid& fid) const noexcept {
    // Mix the three fields; seq dominates entropy.
    std::uint64_t h = fid.seq * 0x9E3779B97F4A7C15ull;
    h ^= (static_cast<std::uint64_t>(fid.oid) << 32) | fid.ver;
    h *= 0xBF58476D1CE4E5B9ull;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};
