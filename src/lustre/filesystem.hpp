// LustreFs: the assembled simulated deployment — MGS + one or more
// MDS/MDT pairs (DNE when more than one) + an OST pool + the shared
// namespace. Clients perform metadata operations through this facade;
// each operation mutates the namespace and appends the corresponding
// Changelog record(s) on the owning MDT.
//
// Thread safety: all public operations take an internal mutex so
// real-threaded tests can run clients and collectors concurrently. The
// discrete-event benchmarks run single-threaded and pay no contention.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.hpp"
#include "src/common/status.hpp"
#include "src/lustre/changelog.hpp"
#include "src/lustre/mdt.hpp"
#include "src/lustre/mgs.hpp"
#include "src/lustre/namespace.hpp"
#include "src/lustre/ost.hpp"

namespace fsmon::lustre {

struct LustreFsOptions {
  std::string fsname = "lustre";
  std::uint32_t mdt_count = 1;  ///< >1 enables DNE (paper: Iota has 4).
  std::uint32_t oss_count = 1;
  std::uint32_t osts_per_oss = 1;
  std::uint64_t ost_capacity_bytes = 10ull << 30;
  std::uint32_t default_stripe_count = 1;
};

/// Result of a metadata operation: the FID acted upon and the changelog
/// record index (on mdt_index) it produced.
struct OpResult {
  Fid fid;
  std::uint32_t mdt_index = 0;
  std::uint64_t record_index = 0;
};

class LustreFs {
 public:
  explicit LustreFs(LustreFsOptions options, common::Clock& clock);

  const LustreFsOptions& options() const { return options_; }
  std::uint32_t mdt_count() const { return static_cast<std::uint32_t>(mds_.size()); }
  Mds& mds(std::uint32_t index) { return *mds_.at(index); }
  Mgs& mgs() { return mgs_; }
  OstPool& osts() { return osts_; }

  /// The namespace is shared for inspection; mutate only through ops.
  const Namespace& ns() const { return namespace_; }

  /// Serializes access for callers that read namespace + changelog
  /// together (collectors resolving FIDs while clients mutate).
  std::mutex& mutex() { return mu_; }

  // ---- Client metadata operations. Paths are normalized internally.
  common::Result<OpResult> create(const std::string& path);
  common::Result<OpResult> mkdir(const std::string& path);
  common::Result<OpResult> mknod(const std::string& path);
  common::Result<OpResult> hardlink(const std::string& existing, const std::string& link);
  common::Result<OpResult> softlink(const std::string& target, const std::string& link);
  /// Write/extend a file: MTIME record (no parent FID, per Table I).
  common::Result<OpResult> modify(const std::string& path, std::uint64_t new_size);
  /// Close after IO: CLOSE record.
  common::Result<OpResult> close(const std::string& path);
  common::Result<OpResult> rename(const std::string& from, const std::string& to);
  common::Result<OpResult> unlink(const std::string& path);
  common::Result<OpResult> rmdir(const std::string& path);
  common::Result<OpResult> truncate(const std::string& path, std::uint64_t size);
  common::Result<OpResult> setattr(const std::string& path, std::uint32_t mode);
  common::Result<OpResult> setxattr(const std::string& path);
  common::Result<OpResult> ioctl(const std::string& path);

  /// DNE placement preview: which MDT a directory created at `path`
  /// would land on (no mutation). Lets load generators construct
  /// per-MDT-balanced namespaces the way the paper's per-MDS clients do.
  common::Result<std::uint32_t> preview_dir_placement(const std::string& path);

  /// fid2path without cost model (the FidResolver wraps this with one).
  common::Result<std::string> fid2path(const Fid& fid) const;

  common::Result<Fid> lookup(const std::string& path) const;
  bool exists(const std::string& path) const;

  /// Total records appended across all MDT changelogs.
  std::uint64_t total_records() const;

  /// Register per-MDT changelog metrics for every MDS in the deployment.
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  struct ParentRef {
    Fid fid;
    std::string name;       ///< final component
    std::uint32_t mdt = 0;  ///< MDT owning the parent inode
  };

  /// Resolve the parent directory of `path` (which need not exist).
  common::Result<ParentRef> resolve_parent(const std::string& path);

  /// DNE placement for a new inode under `parent`.
  std::uint32_t place_inode(const Fid& parent, const std::string& name, NodeType type);

  std::uint64_t append_record(std::uint32_t mdt_index, ChangelogRecord record);

  LustreFsOptions options_;
  common::Clock& clock_;
  mutable std::mutex mu_;
  Namespace namespace_;
  Mgs mgs_;
  OstPool osts_;
  std::vector<std::unique_ptr<Mds>> mds_;
};

}  // namespace fsmon::lustre
