// Object Storage Servers / Targets.
//
// File *contents* live on OSTs as stripe objects. The monitor never reads
// file data, but the simulator models object allocation and capacity so
// testbed profiles can state real sizes (AWS 20 GB, Thor 500 GB, Iota
// 897 TB) and workloads consume space realistically.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.hpp"
#include "src/lustre/fid.hpp"

namespace fsmon::lustre {

struct OstStats {
  std::uint64_t capacity_bytes = 0;
  std::uint64_t used_bytes = 0;
  std::uint64_t object_count = 0;
};

/// A pool of OSTs spread over OSSs with round-robin stripe allocation.
class OstPool {
 public:
  /// `oss_count` servers each hosting `osts_per_oss` targets of
  /// `ost_capacity_bytes` each.
  OstPool(std::uint32_t oss_count, std::uint32_t osts_per_oss,
          std::uint64_t ost_capacity_bytes);

  std::uint32_t ost_count() const { return static_cast<std::uint32_t>(osts_.size()); }
  std::uint32_t oss_count() const { return oss_count_; }
  std::uint64_t total_capacity_bytes() const;
  std::uint64_t total_used_bytes() const;

  /// Allocate `stripe_count` stripe objects for file `fid`, round-robin
  /// from the next OST. Fails if stripe_count exceeds the pool size.
  common::Status allocate_objects(const Fid& fid, std::uint32_t stripe_count);

  /// Account `bytes` of data written to `fid`, spread over its stripes.
  common::Status write(const Fid& fid, std::uint64_t bytes);

  /// Release the objects of `fid` (file deletion).
  common::Status release(const Fid& fid);

  /// Stripe OST indices for a file (empty result if unknown fid).
  common::Result<std::vector<std::uint32_t>> stripes_of(const Fid& fid) const;

  const OstStats& ost(std::uint32_t index) const { return osts_.at(index); }

 private:
  struct FileObjects {
    std::vector<std::uint32_t> ost_indices;
    std::uint64_t bytes = 0;
  };

  std::uint32_t oss_count_;
  std::vector<OstStats> osts_;
  std::unordered_map<Fid, FileObjects> files_;
  std::uint32_t next_ost_ = 0;
};

}  // namespace fsmon::lustre
