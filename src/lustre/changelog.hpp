// Lustre Changelog: the per-MDT metadata event journal the scalable
// monitor consumes (paper Section IV-1, Table I).
//
// Every namespace operation serviced by an MDT appends one record with a
// monotonically increasing index (the paper's "EventID"), a numbered
// operation type ("01CREAT", "17MTIME", ...), timestamp, flags, target
// and parent FIDs, and the target name. Rename records additionally carry
// the s=[] / sp=[] FID pair the paper highlights.
//
// A changelog listener reads records from its last-consumed index and
// periodically clears (purges) everything it has processed, exactly like
// `lfs changelog` / `lfs changelog_clear`.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.hpp"
#include "src/common/types.hpp"
#include "src/lustre/fid.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::lustre {

/// Changelog record types with Lustre's numeric codes (the two-digit
/// prefix in "01CREAT"). Matches the paper's Section IV-1 event list.
enum class ChangelogType : std::uint8_t {
  kMark = 0,    // CL_MARK (internal)
  kCreat = 1,   // CREAT: regular file creation
  kMkdir = 2,   // MKDIR
  kHlink = 3,   // HLINK: hard link
  kSlink = 4,   // SLINK: soft link
  kMknod = 5,   // MKNOD: device file
  kUnlnk = 6,   // UNLNK: file deletion
  kRmdir = 7,   // RMDIR
  kRenme = 8,   // RENME: rename source record
  kRnmto = 9,   // RNMTO: rename target record
  kIoctl = 10,  // IOCTL
  kClose = 11,  // CLOSE (CL_CLOSE)
  kTrunc = 13,  // TRUNC
  kSattr = 14,  // SATTR: attribute change
  kXattr = 15,  // XATTR: extended attribute change
  kMtime = 17,  // MTIME: file modification
};

/// "CREAT", "MKDIR", ... (the paper's names).
std::string_view to_string(ChangelogType type);

/// "01CREAT" style tag as printed by `lfs changelog`.
std::string type_tag(ChangelogType type);

/// Parse "CREAT" or "01CREAT"; nullopt for unknown.
std::optional<ChangelogType> parse_changelog_type(std::string_view text);

struct ChangelogRecord {
  std::uint64_t index = 0;  ///< EventID: record number within this MDT's log.
  ChangelogType type = ChangelogType::kMark;
  common::TimePoint timestamp{};  ///< Virtual or real time of the operation.
  std::uint32_t flags = 0;
  Fid target;                 ///< t=[...]
  std::optional<Fid> parent;  ///< p=[...]; absent for MTIME (paper Table I).
  /// RENME only — the paper's s=[] (FID the file has been renamed to) and
  /// sp=[] (FID of the original file).
  std::optional<Fid> rename_new;  ///< s=[...]
  std::optional<Fid> rename_old;  ///< sp=[...]
  std::string name;               ///< Target name that triggered the event.
  std::string rename_target_name;  ///< RENME: the new name (paper's second row).

  /// One-line rendering in the `lfs changelog` format of Table I.
  std::string to_line() const;
};

/// Append-only record journal with purge, per-MDT. Thread-safe: the
/// owning MDS serializes writers behind the filesystem lock, but
/// collector threads read/clear concurrently through Mds directly, so
/// the journal guards its own state.
class Changelog {
 public:
  Changelog() = default;

  /// Append a record; assigns and returns its index.
  std::uint64_t append(ChangelogRecord record);

  /// Read up to `max_records` records with index > `after_index`, in
  /// index order. Does not consume: pair with clear_upto().
  std::vector<ChangelogRecord> read(std::uint64_t after_index, std::size_t max_records) const;

  /// Purge all records with index <= `index` (lfs changelog_clear).
  /// Clearing an index beyond the last appended record is an error.
  common::Status clear_upto(std::uint64_t index);

  /// Number of records currently retained.
  std::size_t retained() const {
    std::lock_guard lock(mu_);
    return records_.size();
  }

  /// Index of the most recently appended record (0 when none yet).
  std::uint64_t last_index() const {
    std::lock_guard lock(mu_);
    return next_index_ - 1;
  }

  /// Lowest retained index (0 when empty).
  std::uint64_t first_retained_index() const {
    std::lock_guard lock(mu_);
    return records_.empty() ? 0 : records_.front().index;
  }

  std::uint64_t total_appended() const {
    std::lock_guard lock(mu_);
    return next_index_ - 1;
  }
  std::uint64_t total_purged() const {
    std::lock_guard lock(mu_);
    return purged_;
  }

  /// Register this changelog's metrics (records appended/purged, retained
  /// backlog) with `labels` qualifying the owning MDT.
  void attach_metrics(obs::MetricsRegistry& registry, obs::Labels labels);

 private:
  mutable std::mutex mu_;
  std::deque<ChangelogRecord> records_;
  std::uint64_t next_index_ = 1;
  std::uint64_t purged_ = 0;
  obs::Counter* appended_counter_ = nullptr;
  obs::Counter* purged_counter_ = nullptr;
  obs::Gauge* backlog_gauge_ = nullptr;
};

}  // namespace fsmon::lustre
