// Metadata namespace for the simulated Lustre file system.
//
// A hierarchical inode tree keyed by FID. This is what the MDTs manage:
// directories, file names, layouts and permissions (paper Section II-B1).
// The namespace supports the full set of operations that produce
// Changelog record types — create/mkdir/mknod, hard and soft links,
// unlink/rmdir, rename (with replaced-target semantics), attribute,
// xattr, truncate, and modification updates — and implements the
// FID-to-path resolution underlying Lustre's `fid2path` tool.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.hpp"
#include "src/lustre/fid.hpp"

namespace fsmon::lustre {

enum class NodeType : std::uint8_t { kFile, kDirectory, kSymlink, kDevice };

std::string_view to_string(NodeType type);

/// One directory entry: where a link to an inode lives.
struct LinkLocation {
  Fid parent;
  std::string name;

  friend bool operator==(const LinkLocation&, const LinkLocation&) = default;
};

struct Inode {
  Fid fid;
  NodeType type = NodeType::kFile;
  /// All directory entries referencing this inode. links[0] is the
  /// primary link used by path_of. Directories always have exactly one.
  std::vector<LinkLocation> links;
  /// Children by name; only for directories.
  std::map<std::string, Fid> children;
  std::uint64_t size = 0;
  std::uint32_t mode = 0644;
  std::uint32_t xattr_count = 0;
  std::string symlink_target;  ///< Only for kSymlink.
  /// MDT that owns this inode (DNE placement); index into the fs's MDTs.
  std::uint32_t mdt_index = 0;

  std::uint32_t nlink() const { return static_cast<std::uint32_t>(links.size()); }
  bool is_dir() const { return type == NodeType::kDirectory; }
};

class Namespace {
 public:
  /// Creates the root directory with a well-known FID on MDT0.
  Namespace();

  const Fid& root_fid() const { return root_; }

  /// Resolve a normalized absolute path to a FID.
  common::Result<Fid> lookup(std::string_view path) const;

  /// Inode metadata by FID (kNotFound when the FID was deleted).
  common::Result<const Inode*> stat(const Fid& fid) const;

  bool exists(const Fid& fid) const { return inodes_.count(fid) != 0; }

  /// Absolute path of `fid` via its primary link — the core of fid2path.
  common::Result<std::string> path_of(const Fid& fid) const;

  // ---- Mutations. The caller (Mds) allocates FIDs and assigns MDT
  // ownership; the namespace enforces structural invariants.

  /// Create a file/directory/device entry `name` under `parent`.
  common::Status create(const Fid& parent, const std::string& name, NodeType type,
                        const Fid& new_fid, std::uint32_t mdt_index);

  /// Create a symlink whose body is `target_path`.
  common::Status symlink(const Fid& parent, const std::string& name,
                         const std::string& target_path, const Fid& new_fid,
                         std::uint32_t mdt_index);

  /// Add a hard link to existing file `fid` as `parent`/`name`.
  common::Status hardlink(const Fid& fid, const Fid& parent, const std::string& name);

  /// Remove the file link `parent`/`name`; the inode is destroyed when its
  /// last link goes. Fails with kIsADirectory on directories.
  common::Status unlink(const Fid& parent, const std::string& name);

  /// Remove the empty directory `parent`/`name`.
  common::Status rmdir(const Fid& parent, const std::string& name);

  /// Move `src_parent`/`src_name` to `dst_parent`/`dst_name`. An existing
  /// non-directory destination is replaced (its FID is returned so the
  /// caller can record the victim); returns kNullFid when nothing was
  /// replaced.
  common::Result<Fid> rename(const Fid& src_parent, const std::string& src_name,
                             const Fid& dst_parent, const std::string& dst_name);

  /// Append/extend a file (MTIME source).
  common::Status write(const Fid& fid, std::uint64_t new_size);

  /// Re-key a non-directory inode from `old_fid` to `new_fid`, updating
  /// every directory entry that references it. Models the paper's rename
  /// semantics where the RENME record carries an old (sp=) and a new (s=)
  /// FID for the renamed file.
  common::Status rebind_fid(const Fid& old_fid, const Fid& new_fid);

  common::Status truncate(const Fid& fid, std::uint64_t new_size);
  common::Status set_mode(const Fid& fid, std::uint32_t mode);
  common::Status add_xattr(const Fid& fid);

  std::size_t inode_count() const { return inodes_.size(); }

  /// Children names of a directory (test/inspection helper).
  common::Result<std::vector<std::string>> list(const Fid& dir) const;

 private:
  Inode* find(const Fid& fid);
  const Inode* find(const Fid& fid) const;
  common::Result<Inode*> dir_checked(const Fid& fid);
  common::Status insert_entry(Inode& parent, const std::string& name, const Fid& child);
  void remove_link(Inode& inode, const Fid& parent, const std::string& name);

  Fid root_;
  std::unordered_map<Fid, Inode> inodes_;
};

}  // namespace fsmon::lustre
