// Management Server: stores the file-system configuration and the
// component registry (paper Section II-B1). The scalable monitor's
// aggregator runs on the MGS and discovers the MDS endpoints through it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.hpp"

namespace fsmon::lustre {

/// One registered service endpoint (an MDS, OSS, or monitor component).
struct ServiceRecord {
  std::string name;      ///< e.g. "MDS0", "collector-2"
  std::string kind;      ///< "mds", "oss", "collector", "aggregator", ...
  std::string endpoint;  ///< transport address (msgq topic or host:port)
};

class Mgs {
 public:
  explicit Mgs(std::string fsname) : fsname_(std::move(fsname)) {}

  const std::string& fsname() const { return fsname_; }

  /// Persist a configuration parameter on the MGT.
  void set_param(const std::string& key, const std::string& value);
  std::optional<std::string> get_param(const std::string& key) const;

  common::Status register_service(ServiceRecord record);
  common::Status deregister_service(const std::string& name);

  std::vector<ServiceRecord> services_of_kind(const std::string& kind) const;
  std::size_t service_count() const { return services_.size(); }

 private:
  std::string fsname_;
  std::map<std::string, std::string> params_;
  std::map<std::string, ServiceRecord> services_;
};

}  // namespace fsmon::lustre
