// Metadata Target / Metadata Server pair.
//
// Each MDT owns a FID allocation range and a Changelog; the MDS is the
// service wrapper that registers changelog users (listeners) and exposes
// read/clear, mirroring `lfs changelog` / `lfs changelog_clear` with a
// registered user id (paper Section II-B1: "Developers can create a
// Changelog listener and subscribe to a specific MDT").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.hpp"
#include "src/lustre/changelog.hpp"
#include "src/lustre/fid.hpp"

namespace fsmon::lustre {

class Mdt {
 public:
  explicit Mdt(std::uint32_t index) : index_(index), allocator_(index) {}

  std::uint32_t index() const { return index_; }
  std::string name() const { return "MDT" + std::to_string(index_); }

  FidAllocator& allocator() { return allocator_; }
  Changelog& changelog() { return changelog_; }
  const Changelog& changelog() const { return changelog_; }

 private:
  std::uint32_t index_;
  FidAllocator allocator_;
  Changelog changelog_;
};

/// Changelog-user registry + read/clear protocol on top of one MDT.
class Mds {
 public:
  explicit Mds(std::uint32_t index) : mdt_(index) {}

  std::uint32_t index() const { return mdt_.index(); }
  std::string name() const { return "MDS" + std::to_string(mdt_.index()); }

  Mdt& mdt() { return mdt_; }
  const Mdt& mdt() const { return mdt_; }

  /// Register a changelog user; returns the user id ("cl1", "cl2", ...).
  std::string register_changelog_user();

  /// Deregister; pending records the user had not cleared stay retained
  /// until every remaining user clears past them.
  common::Status deregister_changelog_user(const std::string& user_id);

  /// Read up to `max_records` records newer than the user's cleared index.
  /// With `after_index` set, read records newer than that index instead —
  /// the read-ahead cursor a collector keeps while clearing lags behind
  /// at the acknowledged (persisted) watermark.
  common::Result<std::vector<ChangelogRecord>> changelog_read(
      const std::string& user_id, std::size_t max_records,
      std::optional<std::uint64_t> after_index = std::nullopt);

  /// Acknowledge records up to `index` for this user. The log purges up
  /// to the minimum cleared index across all registered users.
  common::Status changelog_clear(const std::string& user_id, std::uint64_t index);

  std::size_t changelog_user_count() const { return users_.size(); }

  /// The index this user has acknowledged via changelog_clear (0 = none
  /// beyond registration). Restarting collectors rewind their read cursor
  /// here: everything past it is unacknowledged and must be re-read.
  common::Result<std::uint64_t> cleared_index(const std::string& user_id) const;

  /// Register this MDS's changelog-protocol metrics (reads, records read,
  /// records acknowledged) plus the underlying changelog's, labelled
  /// mdt=<index>.
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  Mdt mdt_;
  std::map<std::string, std::uint64_t> users_;  // user id -> cleared index
  std::uint32_t next_user_ = 1;
  obs::Counter* reads_counter_ = nullptr;
  obs::Counter* records_read_counter_ = nullptr;
  obs::Counter* records_cleared_counter_ = nullptr;
};

}  // namespace fsmon::lustre
