#include "src/lustre/filesystem.hpp"

#include <functional>

#include "src/common/string_util.hpp"

namespace fsmon::lustre {

using common::ErrorCode;
using common::Result;
using common::Status;

LustreFs::LustreFs(LustreFsOptions options, common::Clock& clock)
    : options_(options),
      clock_(clock),
      mgs_(options.fsname),
      osts_(options.oss_count, options.osts_per_oss, options.ost_capacity_bytes) {
  if (options_.mdt_count == 0) options_.mdt_count = 1;
  mds_.reserve(options_.mdt_count);
  for (std::uint32_t i = 0; i < options_.mdt_count; ++i) {
    mds_.push_back(std::make_unique<Mds>(i));
    mgs_.register_service({"MDS" + std::to_string(i), "mds", "mdt://" + std::to_string(i)});
  }
  mgs_.set_param("mdt.count", std::to_string(options_.mdt_count));
}

Result<LustreFs::ParentRef> LustreFs::resolve_parent(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  if (norm == "/") return Status(ErrorCode::kInvalid, "operation on root");
  const std::string parent = common::parent_path(norm);
  auto parent_fid = namespace_.lookup(parent);
  if (!parent_fid) return parent_fid.status();
  auto inode = namespace_.stat(*parent_fid);
  if (!inode) return inode.status();
  return ParentRef{*parent_fid, common::base_name(norm), (*inode)->mdt_index};
}

std::uint32_t LustreFs::place_inode(const Fid& parent, const std::string& name,
                                    NodeType type) {
  // DNE: new directories are hash-striped across MDTs (remote
  // directories); regular files live on their parent directory's MDT.
  if (type == NodeType::kDirectory && mdt_count() > 1) {
    const std::size_t h =
        std::hash<Fid>{}(parent) ^ (std::hash<std::string>{}(name) * 0x9E3779B9u);
    return static_cast<std::uint32_t>(h % mdt_count());
  }
  auto inode = namespace_.stat(parent);
  return inode ? (*inode)->mdt_index : 0;
}

std::uint64_t LustreFs::append_record(std::uint32_t mdt_index, ChangelogRecord record) {
  record.timestamp = clock_.now();
  return mds_[mdt_index]->mdt().changelog().append(std::move(record));
}

Result<OpResult> LustreFs::create(const std::string& path) {
  std::lock_guard lock(mu_);
  auto parent = resolve_parent(path);
  if (!parent) return parent.status();
  const std::uint32_t mdt = place_inode(parent->fid, parent->name, NodeType::kFile);
  const Fid fid = mds_[mdt]->mdt().allocator().next();
  if (auto s = namespace_.create(parent->fid, parent->name, NodeType::kFile, fid, mdt);
      !s.is_ok())
    return s;
  osts_.allocate_objects(fid, options_.default_stripe_count);
  ChangelogRecord record;
  record.type = ChangelogType::kCreat;
  record.target = fid;
  record.parent = parent->fid;
  record.name = parent->name;
  const auto index = append_record(mdt, std::move(record));
  return OpResult{fid, mdt, index};
}

Result<OpResult> LustreFs::mkdir(const std::string& path) {
  std::lock_guard lock(mu_);
  auto parent = resolve_parent(path);
  if (!parent) return parent.status();
  const std::uint32_t mdt = place_inode(parent->fid, parent->name, NodeType::kDirectory);
  const Fid fid = mds_[mdt]->mdt().allocator().next();
  if (auto s = namespace_.create(parent->fid, parent->name, NodeType::kDirectory, fid, mdt);
      !s.is_ok())
    return s;
  ChangelogRecord record;
  record.type = ChangelogType::kMkdir;
  record.target = fid;
  record.parent = parent->fid;
  record.name = parent->name;
  const auto index = append_record(mdt, std::move(record));
  return OpResult{fid, mdt, index};
}

Result<OpResult> LustreFs::mknod(const std::string& path) {
  std::lock_guard lock(mu_);
  auto parent = resolve_parent(path);
  if (!parent) return parent.status();
  const std::uint32_t mdt = place_inode(parent->fid, parent->name, NodeType::kDevice);
  const Fid fid = mds_[mdt]->mdt().allocator().next();
  if (auto s = namespace_.create(parent->fid, parent->name, NodeType::kDevice, fid, mdt);
      !s.is_ok())
    return s;
  ChangelogRecord record;
  record.type = ChangelogType::kMknod;
  record.target = fid;
  record.parent = parent->fid;
  record.name = parent->name;
  const auto index = append_record(mdt, std::move(record));
  return OpResult{fid, mdt, index};
}

Result<OpResult> LustreFs::hardlink(const std::string& existing, const std::string& link) {
  std::lock_guard lock(mu_);
  auto target = namespace_.lookup(existing);
  if (!target) return target.status();
  auto parent = resolve_parent(link);
  if (!parent) return parent.status();
  if (auto s = namespace_.hardlink(*target, parent->fid, parent->name); !s.is_ok()) return s;
  ChangelogRecord record;
  record.type = ChangelogType::kHlink;
  record.target = *target;
  record.parent = parent->fid;
  record.name = parent->name;
  const auto index = append_record(parent->mdt, std::move(record));
  return OpResult{*target, parent->mdt, index};
}

Result<OpResult> LustreFs::softlink(const std::string& target, const std::string& link) {
  std::lock_guard lock(mu_);
  auto parent = resolve_parent(link);
  if (!parent) return parent.status();
  const std::uint32_t mdt = place_inode(parent->fid, parent->name, NodeType::kSymlink);
  const Fid fid = mds_[mdt]->mdt().allocator().next();
  if (auto s = namespace_.symlink(parent->fid, parent->name, target, fid, mdt); !s.is_ok())
    return s;
  ChangelogRecord record;
  record.type = ChangelogType::kSlink;
  record.target = fid;
  record.parent = parent->fid;
  record.name = parent->name;
  const auto index = append_record(mdt, std::move(record));
  return OpResult{fid, mdt, index};
}

Result<OpResult> LustreFs::modify(const std::string& path, std::uint64_t new_size) {
  std::lock_guard lock(mu_);
  auto fid = namespace_.lookup(path);
  if (!fid) return fid.status();
  auto inode = namespace_.stat(*fid);
  if (!inode) return inode.status();
  const std::uint32_t mdt = (*inode)->mdt_index;
  const std::uint64_t old_size = (*inode)->size;
  if (auto s = namespace_.write(*fid, new_size); !s.is_ok()) return s;
  if (new_size > old_size) osts_.write(*fid, new_size - old_size);
  ChangelogRecord record;
  record.type = ChangelogType::kMtime;
  record.flags = 0x7;  // Table I shows MTIME flags 0x7
  record.target = *fid;
  // MTIME records carry no parent FID (paper Table I).
  record.name = common::base_name(common::normalize_path(path));
  const auto index = append_record(mdt, std::move(record));
  return OpResult{*fid, mdt, index};
}

Result<OpResult> LustreFs::close(const std::string& path) {
  std::lock_guard lock(mu_);
  auto fid = namespace_.lookup(path);
  if (!fid) return fid.status();
  auto inode = namespace_.stat(*fid);
  if (!inode) return inode.status();
  const std::uint32_t mdt = (*inode)->mdt_index;
  ChangelogRecord record;
  record.type = ChangelogType::kClose;
  record.target = *fid;
  record.name = common::base_name(common::normalize_path(path));
  const auto index = append_record(mdt, std::move(record));
  return OpResult{*fid, mdt, index};
}

Result<OpResult> LustreFs::rename(const std::string& from, const std::string& to) {
  std::lock_guard lock(mu_);
  auto src_parent = resolve_parent(from);
  if (!src_parent) return src_parent.status();
  auto dst_parent = resolve_parent(to);
  if (!dst_parent) return dst_parent.status();
  auto old_fid = namespace_.lookup(from);
  if (!old_fid) return old_fid.status();

  auto replaced = namespace_.rename(src_parent->fid, src_parent->name, dst_parent->fid,
                                    dst_parent->name);
  if (!replaced) return replaced.status();

  // The paper's Table I shows rename assigning a new FID: the RENME
  // record's s=[] is "a new file identifier to which the file has been
  // renamed" and sp=[] "the file identifier for the original file". We
  // reproduce that for regular files by re-keying the inode; directories
  // keep their FID (the paper's example renames a file).
  const std::uint32_t mdt = src_parent->mdt;
  Fid new_fid = *old_fid;
  if (auto inode = namespace_.stat(*old_fid); inode && !(*inode)->is_dir()) {
    new_fid = mds_[mdt]->mdt().allocator().next();
    if (auto s = namespace_.rebind_fid(*old_fid, new_fid); !s.is_ok()) return s;
  }
  ChangelogRecord record;
  record.type = ChangelogType::kRenme;
  record.flags = 0x1;
  record.target = replaced->is_null() ? mds_[mdt]->mdt().allocator().next() : *replaced;
  record.parent = src_parent->fid;
  record.rename_new = new_fid;
  record.rename_old = *old_fid;
  record.name = src_parent->name;
  record.rename_target_name = dst_parent->name;
  const auto index = append_record(mdt, std::move(record));
  return OpResult{new_fid, mdt, index};
}

Result<OpResult> LustreFs::unlink(const std::string& path) {
  std::lock_guard lock(mu_);
  auto parent = resolve_parent(path);
  if (!parent) return parent.status();
  auto fid = namespace_.lookup(path);
  if (!fid) return fid.status();
  auto inode = namespace_.stat(*fid);
  if (!inode) return inode.status();
  const bool last_link = (*inode)->nlink() <= 1;
  if (auto s = namespace_.unlink(parent->fid, parent->name); !s.is_ok()) return s;
  if (last_link) osts_.release(*fid);
  ChangelogRecord record;
  record.type = ChangelogType::kUnlnk;
  record.target = *fid;
  record.parent = parent->fid;
  record.name = parent->name;
  const auto index = append_record(parent->mdt, std::move(record));
  return OpResult{*fid, parent->mdt, index};
}

Result<OpResult> LustreFs::rmdir(const std::string& path) {
  std::lock_guard lock(mu_);
  auto parent = resolve_parent(path);
  if (!parent) return parent.status();
  auto fid = namespace_.lookup(path);
  if (!fid) return fid.status();
  if (auto s = namespace_.rmdir(parent->fid, parent->name); !s.is_ok()) return s;
  ChangelogRecord record;
  record.type = ChangelogType::kRmdir;
  record.target = *fid;
  record.parent = parent->fid;
  record.name = parent->name;
  const auto index = append_record(parent->mdt, std::move(record));
  return OpResult{*fid, parent->mdt, index};
}

Result<OpResult> LustreFs::truncate(const std::string& path, std::uint64_t size) {
  std::lock_guard lock(mu_);
  auto fid = namespace_.lookup(path);
  if (!fid) return fid.status();
  auto inode = namespace_.stat(*fid);
  if (!inode) return inode.status();
  const std::uint32_t mdt = (*inode)->mdt_index;
  if (auto s = namespace_.truncate(*fid, size); !s.is_ok()) return s;
  ChangelogRecord record;
  record.type = ChangelogType::kTrunc;
  record.target = *fid;
  record.parent = (*inode)->links.empty() ? std::optional<Fid>{} :
                  std::optional<Fid>{(*inode)->links[0].parent};
  record.name = common::base_name(common::normalize_path(path));
  const auto index = append_record(mdt, std::move(record));
  return OpResult{*fid, mdt, index};
}

Result<OpResult> LustreFs::setattr(const std::string& path, std::uint32_t mode) {
  std::lock_guard lock(mu_);
  auto fid = namespace_.lookup(path);
  if (!fid) return fid.status();
  auto inode = namespace_.stat(*fid);
  if (!inode) return inode.status();
  const std::uint32_t mdt = (*inode)->mdt_index;
  if (auto s = namespace_.set_mode(*fid, mode); !s.is_ok()) return s;
  ChangelogRecord record;
  record.type = ChangelogType::kSattr;
  record.target = *fid;
  record.parent = (*inode)->links.empty() ? std::optional<Fid>{} :
                  std::optional<Fid>{(*inode)->links[0].parent};
  record.name = common::base_name(common::normalize_path(path));
  const auto index = append_record(mdt, std::move(record));
  return OpResult{*fid, mdt, index};
}

Result<OpResult> LustreFs::setxattr(const std::string& path) {
  std::lock_guard lock(mu_);
  auto fid = namespace_.lookup(path);
  if (!fid) return fid.status();
  auto inode = namespace_.stat(*fid);
  if (!inode) return inode.status();
  const std::uint32_t mdt = (*inode)->mdt_index;
  if (auto s = namespace_.add_xattr(*fid); !s.is_ok()) return s;
  ChangelogRecord record;
  record.type = ChangelogType::kXattr;
  record.target = *fid;
  record.parent = (*inode)->links.empty() ? std::optional<Fid>{} :
                  std::optional<Fid>{(*inode)->links[0].parent};
  record.name = common::base_name(common::normalize_path(path));
  const auto index = append_record(mdt, std::move(record));
  return OpResult{*fid, mdt, index};
}

Result<OpResult> LustreFs::ioctl(const std::string& path) {
  std::lock_guard lock(mu_);
  auto fid = namespace_.lookup(path);
  if (!fid) return fid.status();
  auto inode = namespace_.stat(*fid);
  if (!inode) return inode.status();
  const std::uint32_t mdt = (*inode)->mdt_index;
  ChangelogRecord record;
  record.type = ChangelogType::kIoctl;
  record.target = *fid;
  record.parent = (*inode)->links.empty() ? std::optional<Fid>{} :
                  std::optional<Fid>{(*inode)->links[0].parent};
  record.name = common::base_name(common::normalize_path(path));
  const auto index = append_record(mdt, std::move(record));
  return OpResult{*fid, mdt, index};
}

Result<std::uint32_t> LustreFs::preview_dir_placement(const std::string& path) {
  std::lock_guard lock(mu_);
  auto parent = resolve_parent(path);
  if (!parent) return parent.status();
  return place_inode(parent->fid, parent->name, NodeType::kDirectory);
}

Result<std::string> LustreFs::fid2path(const Fid& fid) const {
  std::lock_guard lock(mu_);
  return namespace_.path_of(fid);
}

Result<Fid> LustreFs::lookup(const std::string& path) const {
  std::lock_guard lock(mu_);
  return namespace_.lookup(path);
}

bool LustreFs::exists(const std::string& path) const {
  std::lock_guard lock(mu_);
  return namespace_.lookup(path).is_ok();
}

std::uint64_t LustreFs::total_records() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& mds : mds_) total += mds->mdt().changelog().total_appended();
  return total;
}

void LustreFs::attach_metrics(obs::MetricsRegistry& registry) {
  std::lock_guard lock(mu_);
  for (const auto& mds : mds_) mds->attach_metrics(registry);
}

}  // namespace fsmon::lustre
