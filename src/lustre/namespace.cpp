#include "src/lustre/namespace.hpp"

#include <algorithm>

#include "src/common/string_util.hpp"

namespace fsmon::lustre {

using common::ErrorCode;
using common::Result;
using common::Status;

std::string_view to_string(NodeType type) {
  switch (type) {
    case NodeType::kFile: return "file";
    case NodeType::kDirectory: return "directory";
    case NodeType::kSymlink: return "symlink";
    case NodeType::kDevice: return "device";
  }
  return "?";
}

namespace {
// Root FID: Lustre's root is a well-known FID (FID_SEQ_ROOT); we use a
// recognizable constant outside any allocator's range.
constexpr Fid kRootFid{0x200000007ull, 0x1, 0x0};
}  // namespace

Namespace::Namespace() : root_(kRootFid) {
  Inode root;
  root.fid = root_;
  root.type = NodeType::kDirectory;
  root.mode = 0755;
  // Root has no parent link; links stays empty and path_of special-cases it.
  inodes_.emplace(root_, std::move(root));
}

Inode* Namespace::find(const Fid& fid) {
  auto it = inodes_.find(fid);
  return it == inodes_.end() ? nullptr : &it->second;
}

const Inode* Namespace::find(const Fid& fid) const {
  auto it = inodes_.find(fid);
  return it == inodes_.end() ? nullptr : &it->second;
}

Result<Fid> Namespace::lookup(std::string_view path) const {
  const std::string norm = common::normalize_path(path);
  Fid cur = root_;
  if (norm == "/") return cur;
  for (const auto& comp : common::split(norm.substr(1), '/')) {
    const Inode* node = find(cur);
    if (node == nullptr) return Status(ErrorCode::kNotFound, "dangling fid in path walk");
    if (!node->is_dir()) return Status(ErrorCode::kNotADirectory, norm);
    auto it = node->children.find(comp);
    if (it == node->children.end()) return Status(ErrorCode::kNotFound, norm);
    cur = it->second;
  }
  return cur;
}

Result<const Inode*> Namespace::stat(const Fid& fid) const {
  const Inode* node = find(fid);
  if (node == nullptr) return Status(ErrorCode::kNotFound, to_string(fid));
  return node;
}

Result<std::string> Namespace::path_of(const Fid& fid) const {
  if (fid == root_) return std::string("/");
  std::vector<const std::string*> parts;
  Fid cur = fid;
  // Walk primary links up to the root; bounded by tree depth.
  for (std::size_t depth = 0; depth < 4096; ++depth) {
    const Inode* node = find(cur);
    if (node == nullptr) return Status(ErrorCode::kNotFound, to_string(fid));
    if (node->links.empty()) {
      // Only the root has no links.
      if (cur != root_) return Status(ErrorCode::kNotFound, "orphan inode");
      break;
    }
    parts.push_back(&node->links[0].name);
    cur = node->links[0].parent;
  }
  std::string path;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    path.push_back('/');
    path += **it;
  }
  return path;
}

Result<Inode*> Namespace::dir_checked(const Fid& fid) {
  Inode* node = find(fid);
  if (node == nullptr) return Status(ErrorCode::kNotFound, to_string(fid));
  if (!node->is_dir()) return Status(ErrorCode::kNotADirectory, to_string(fid));
  return node;
}

Status Namespace::insert_entry(Inode& parent, const std::string& name, const Fid& child) {
  if (name.empty() || name.find('/') != std::string::npos)
    return Status(ErrorCode::kInvalid, "bad entry name: " + name);
  if (!parent.children.emplace(name, child).second)
    return Status(ErrorCode::kAlreadyExists, name);
  return Status::ok();
}

Status Namespace::create(const Fid& parent, const std::string& name, NodeType type,
                         const Fid& new_fid, std::uint32_t mdt_index) {
  if (type == NodeType::kSymlink)
    return Status(ErrorCode::kInvalid, "use symlink() for symlinks");
  auto dir = dir_checked(parent);
  if (!dir) return dir.status();
  if (inodes_.count(new_fid) != 0) return Status(ErrorCode::kAlreadyExists, "fid reuse");
  if (auto s = insert_entry(**dir, name, new_fid); !s.is_ok()) return s;
  Inode node;
  node.fid = new_fid;
  node.type = type;
  node.links.push_back({parent, name});
  node.mode = type == NodeType::kDirectory ? 0755 : 0644;
  node.mdt_index = mdt_index;
  inodes_.emplace(new_fid, std::move(node));
  return Status::ok();
}

Status Namespace::symlink(const Fid& parent, const std::string& name,
                          const std::string& target_path, const Fid& new_fid,
                          std::uint32_t mdt_index) {
  auto dir = dir_checked(parent);
  if (!dir) return dir.status();
  if (inodes_.count(new_fid) != 0) return Status(ErrorCode::kAlreadyExists, "fid reuse");
  if (auto s = insert_entry(**dir, name, new_fid); !s.is_ok()) return s;
  Inode node;
  node.fid = new_fid;
  node.type = NodeType::kSymlink;
  node.links.push_back({parent, name});
  node.symlink_target = target_path;
  node.mdt_index = mdt_index;
  inodes_.emplace(new_fid, std::move(node));
  return Status::ok();
}

Status Namespace::hardlink(const Fid& fid, const Fid& parent, const std::string& name) {
  Inode* target = find(fid);
  if (target == nullptr) return Status(ErrorCode::kNotFound, to_string(fid));
  if (target->is_dir()) return Status(ErrorCode::kIsADirectory, "hardlink to directory");
  auto dir = dir_checked(parent);
  if (!dir) return dir.status();
  if (auto s = insert_entry(**dir, name, fid); !s.is_ok()) return s;
  target->links.push_back({parent, name});
  return Status::ok();
}

void Namespace::remove_link(Inode& inode, const Fid& parent, const std::string& name) {
  auto it = std::find(inode.links.begin(), inode.links.end(), LinkLocation{parent, name});
  if (it != inode.links.end()) inode.links.erase(it);
}

Status Namespace::unlink(const Fid& parent, const std::string& name) {
  auto dir = dir_checked(parent);
  if (!dir) return dir.status();
  auto entry = (*dir)->children.find(name);
  if (entry == (*dir)->children.end()) return Status(ErrorCode::kNotFound, name);
  Inode* node = find(entry->second);
  if (node == nullptr) return Status(ErrorCode::kNotFound, "dangling entry");
  if (node->is_dir()) return Status(ErrorCode::kIsADirectory, name);
  const Fid fid = node->fid;
  (*dir)->children.erase(entry);
  remove_link(*node, parent, name);
  if (node->links.empty()) inodes_.erase(fid);
  return Status::ok();
}

Status Namespace::rmdir(const Fid& parent, const std::string& name) {
  auto dir = dir_checked(parent);
  if (!dir) return dir.status();
  auto entry = (*dir)->children.find(name);
  if (entry == (*dir)->children.end()) return Status(ErrorCode::kNotFound, name);
  Inode* node = find(entry->second);
  if (node == nullptr) return Status(ErrorCode::kNotFound, "dangling entry");
  if (!node->is_dir()) return Status(ErrorCode::kNotADirectory, name);
  if (!node->children.empty()) return Status(ErrorCode::kNotEmpty, name);
  const Fid fid = node->fid;
  (*dir)->children.erase(entry);
  inodes_.erase(fid);
  return Status::ok();
}

Result<Fid> Namespace::rename(const Fid& src_parent, const std::string& src_name,
                              const Fid& dst_parent, const std::string& dst_name) {
  auto src_dir = dir_checked(src_parent);
  if (!src_dir) return src_dir.status();
  auto dst_dir = dir_checked(dst_parent);
  if (!dst_dir) return dst_dir.status();
  auto src_entry = (*src_dir)->children.find(src_name);
  if (src_entry == (*src_dir)->children.end()) return Status(ErrorCode::kNotFound, src_name);
  const Fid moving = src_entry->second;
  Inode* moving_node = find(moving);
  if (moving_node == nullptr) return Status(ErrorCode::kNotFound, "dangling entry");

  Fid replaced = kNullFid;
  auto dst_entry = (*dst_dir)->children.find(dst_name);
  if (dst_entry != (*dst_dir)->children.end()) {
    Inode* victim = find(dst_entry->second);
    if (victim == nullptr) return Status(ErrorCode::kNotFound, "dangling destination");
    if (victim->is_dir()) {
      if (!victim->children.empty()) return Status(ErrorCode::kNotEmpty, dst_name);
      if (!moving_node->is_dir()) return Status(ErrorCode::kIsADirectory, dst_name);
      replaced = victim->fid;
      inodes_.erase(victim->fid);
    } else {
      if (moving_node->is_dir()) return Status(ErrorCode::kNotADirectory, dst_name);
      replaced = victim->fid;
      remove_link(*victim, dst_parent, dst_name);
      if (victim->links.empty()) inodes_.erase(replaced);
    }
    (*dst_dir)->children.erase(dst_name);
  }

  (*src_dir)->children.erase(src_entry);
  (*dst_dir)->children.emplace(dst_name, moving);
  // Update the link record (primary link if that is the one that moved).
  auto link = std::find(moving_node->links.begin(), moving_node->links.end(),
                        LinkLocation{src_parent, src_name});
  if (link != moving_node->links.end()) {
    link->parent = dst_parent;
    link->name = dst_name;
  } else {
    moving_node->links.push_back({dst_parent, dst_name});
  }
  return replaced;
}

Status Namespace::rebind_fid(const Fid& old_fid, const Fid& new_fid) {
  auto it = inodes_.find(old_fid);
  if (it == inodes_.end()) return Status(ErrorCode::kNotFound, to_string(old_fid));
  if (it->second.is_dir())
    return Status(ErrorCode::kIsADirectory, "cannot rebind a directory FID");
  if (inodes_.count(new_fid) != 0) return Status(ErrorCode::kAlreadyExists, to_string(new_fid));
  Inode node = std::move(it->second);
  inodes_.erase(it);
  node.fid = new_fid;
  for (const auto& link : node.links) {
    Inode* dir = find(link.parent);
    if (dir != nullptr) {
      auto entry = dir->children.find(link.name);
      if (entry != dir->children.end()) entry->second = new_fid;
    }
  }
  inodes_.emplace(new_fid, std::move(node));
  return Status::ok();
}

Status Namespace::write(const Fid& fid, std::uint64_t new_size) {
  Inode* node = find(fid);
  if (node == nullptr) return Status(ErrorCode::kNotFound, to_string(fid));
  if (node->is_dir()) return Status(ErrorCode::kIsADirectory, to_string(fid));
  node->size = new_size;
  return Status::ok();
}

Status Namespace::truncate(const Fid& fid, std::uint64_t new_size) {
  Inode* node = find(fid);
  if (node == nullptr) return Status(ErrorCode::kNotFound, to_string(fid));
  if (node->is_dir()) return Status(ErrorCode::kIsADirectory, to_string(fid));
  node->size = std::min(node->size, new_size);
  return Status::ok();
}

Status Namespace::set_mode(const Fid& fid, std::uint32_t mode) {
  Inode* node = find(fid);
  if (node == nullptr) return Status(ErrorCode::kNotFound, to_string(fid));
  node->mode = mode;
  return Status::ok();
}

Status Namespace::add_xattr(const Fid& fid) {
  Inode* node = find(fid);
  if (node == nullptr) return Status(ErrorCode::kNotFound, to_string(fid));
  ++node->xattr_count;
  return Status::ok();
}

Result<std::vector<std::string>> Namespace::list(const Fid& dir) const {
  const Inode* node = find(dir);
  if (node == nullptr) return Status(ErrorCode::kNotFound, to_string(dir));
  if (!node->is_dir()) return Status(ErrorCode::kNotADirectory, to_string(dir));
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, fid] : node->children) names.push_back(name);
  return names;
}

}  // namespace fsmon::lustre
