#include "src/lustre/fid.hpp"

#include <charconv>
#include <cstdio>

namespace fsmon::lustre {
namespace {

// Parse one "0x..." hex field.
template <typename Int>
bool parse_hex(std::string_view text, Int& out) {
  if (text.size() < 3 || text[0] != '0' || (text[1] != 'x' && text[1] != 'X')) return false;
  const char* first = text.data() + 2;
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, out, 16);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

std::string to_string(const Fid& fid) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[0x%llx:0x%x:0x%x]",
                static_cast<unsigned long long>(fid.seq), fid.oid, fid.ver);
  return buf;
}

std::optional<Fid> parse_fid(std::string_view text) {
  if (!text.empty() && text.front() == '[') {
    if (text.back() != ']') return std::nullopt;
    text = text.substr(1, text.size() - 2);
  }
  const auto c1 = text.find(':');
  if (c1 == std::string_view::npos) return std::nullopt;
  const auto c2 = text.find(':', c1 + 1);
  if (c2 == std::string_view::npos) return std::nullopt;
  if (text.find(':', c2 + 1) != std::string_view::npos) return std::nullopt;

  Fid fid;
  if (!parse_hex(text.substr(0, c1), fid.seq)) return std::nullopt;
  if (!parse_hex(text.substr(c1 + 1, c2 - c1 - 1), fid.oid)) return std::nullopt;
  if (!parse_hex(text.substr(c2 + 1), fid.ver)) return std::nullopt;
  return fid;
}

FidAllocator::FidAllocator(std::uint32_t mdt_index)
    // Base sequence mirrors the paper's observed range; each MDT gets a
    // disjoint 2^32-wide slice.
    : seq_(0x300005716ull + (static_cast<std::uint64_t>(mdt_index) << 32)) {}

Fid FidAllocator::next() {
  Fid fid{seq_, next_oid_, 0};
  if (++next_oid_ == 0) {  // oid space exhausted: move to the next sequence
    ++seq_;
    next_oid_ = 1;
  }
  ++count_;
  return fid;
}

}  // namespace fsmon::lustre
