#include "src/lustre/changelog.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fsmon::lustre {

std::string_view to_string(ChangelogType type) {
  switch (type) {
    case ChangelogType::kMark: return "MARK";
    case ChangelogType::kCreat: return "CREAT";
    case ChangelogType::kMkdir: return "MKDIR";
    case ChangelogType::kHlink: return "HLINK";
    case ChangelogType::kSlink: return "SLINK";
    case ChangelogType::kMknod: return "MKNOD";
    case ChangelogType::kUnlnk: return "UNLNK";
    case ChangelogType::kRmdir: return "RMDIR";
    case ChangelogType::kRenme: return "RENME";
    case ChangelogType::kRnmto: return "RNMTO";
    case ChangelogType::kIoctl: return "IOCTL";
    case ChangelogType::kClose: return "CLOSE";
    case ChangelogType::kTrunc: return "TRUNC";
    case ChangelogType::kSattr: return "SATTR";
    case ChangelogType::kXattr: return "XATTR";
    case ChangelogType::kMtime: return "MTIME";
  }
  return "?";
}

std::string type_tag(ChangelogType type) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02u%s", static_cast<unsigned>(type),
                std::string(to_string(type)).c_str());
  return buf;
}

std::optional<ChangelogType> parse_changelog_type(std::string_view text) {
  // Strip a numeric prefix if present ("01CREAT" -> "CREAT").
  std::size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') ++i;
  const std::string_view name = text.substr(i);
  static constexpr ChangelogType kAll[] = {
      ChangelogType::kMark,  ChangelogType::kCreat, ChangelogType::kMkdir,
      ChangelogType::kHlink, ChangelogType::kSlink, ChangelogType::kMknod,
      ChangelogType::kUnlnk, ChangelogType::kRmdir, ChangelogType::kRenme,
      ChangelogType::kRnmto, ChangelogType::kIoctl, ChangelogType::kClose,
      ChangelogType::kTrunc, ChangelogType::kSattr, ChangelogType::kXattr,
      ChangelogType::kMtime,
  };
  for (ChangelogType t : kAll) {
    if (to_string(t) == name) return t;
  }
  return std::nullopt;
}

std::string ChangelogRecord::to_line() const {
  // Render the timestamp as HH:MM:SS.nnnnnnnnn time-of-day the way
  // `lfs changelog` does.
  const auto since_epoch = timestamp.time_since_epoch();
  const auto total_ns = since_epoch.count();
  const auto day_ns = total_ns % (24ll * 3600 * 1'000'000'000);
  const auto secs = day_ns / 1'000'000'000;
  const auto ns = day_ns % 1'000'000'000;
  char timebuf[40];
  std::snprintf(timebuf, sizeof(timebuf), "%02lld:%02lld:%02lld.%09lld",
                static_cast<long long>(secs / 3600), static_cast<long long>((secs / 60) % 60),
                static_cast<long long>(secs % 60), static_cast<long long>(ns));

  std::ostringstream os;
  os << index << ' ' << type_tag(type) << ' ' << timebuf << " 0x" << std::hex << flags
     << std::dec << " t=" << to_string(target);
  if (rename_new) os << " s=" << to_string(*rename_new);
  if (rename_old) os << " sp=" << to_string(*rename_old);
  if (parent) os << " p=" << to_string(*parent);
  os << ' ' << name;
  if (!rename_target_name.empty()) os << " -> " << rename_target_name;
  return os.str();
}

void Changelog::attach_metrics(obs::MetricsRegistry& registry, obs::Labels labels) {
  std::lock_guard lock(mu_);
  appended_counter_ = &registry.counter("changelog.records_appended", labels,
                                        "Changelog records appended on this MDT", "records");
  purged_counter_ = &registry.counter("changelog.records_purged", labels,
                                      "Records physically removed by changelog_clear",
                                      "records");
  backlog_gauge_ = &registry.gauge("changelog.backlog_records", std::move(labels),
                                   "Records retained (appended, not yet purged)", "records");
}

std::uint64_t Changelog::append(ChangelogRecord record) {
  std::lock_guard lock(mu_);
  record.index = next_index_++;
  records_.push_back(std::move(record));
  if (appended_counter_ != nullptr) appended_counter_->inc();
  if (backlog_gauge_ != nullptr) backlog_gauge_->set(static_cast<std::int64_t>(records_.size()));
  return records_.back().index;
}

std::vector<ChangelogRecord> Changelog::read(std::uint64_t after_index,
                                             std::size_t max_records) const {
  std::lock_guard lock(mu_);
  std::vector<ChangelogRecord> out;
  if (records_.empty() || max_records == 0) return out;
  // Records are stored in index order; binary search for the start.
  auto it = std::upper_bound(records_.begin(), records_.end(), after_index,
                             [](std::uint64_t idx, const ChangelogRecord& r) {
                               return idx < r.index;
                             });
  for (; it != records_.end() && out.size() < max_records; ++it) out.push_back(*it);
  return out;
}

common::Status Changelog::clear_upto(std::uint64_t index) {
  std::lock_guard lock(mu_);
  if (index >= next_index_) {
    return common::Status(common::ErrorCode::kOutOfRange,
                          "changelog_clear beyond last record");
  }
  std::uint64_t removed = 0;
  while (!records_.empty() && records_.front().index <= index) {
    records_.pop_front();
    ++purged_;
    ++removed;
  }
  if (purged_counter_ != nullptr && removed > 0) purged_counter_->inc(removed);
  if (backlog_gauge_ != nullptr) backlog_gauge_->set(static_cast<std::int64_t>(records_.size()));
  return common::Status::ok();
}

}  // namespace fsmon::lustre
