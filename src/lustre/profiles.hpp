// Testbed profiles for the three Lustre deployments evaluated in the
// paper (Section V-A2): AWS (20 GB, 1 MDS), Thor (500 GB, 1 MDS), and
// Iota (897 TB, 4 MDSs with DNE).
//
// Each profile carries the deployment geometry plus calibrated cost
// parameters. Calibration methodology (documented in EXPERIMENTS.md):
// the per-op generation rates are the paper's Table V; the collector
// base cost and fid2path cost are solved from Table VI's with/without
// cache reporting rates under the event mix implied by Table V, so the
// simulation reproduces the paper's relative behaviour (the ~15%
// uncached penalty on Iota, the cache-size optimum at 5000, the
// Robinhood gap) without the original hardware.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/types.hpp"
#include "src/lustre/filesystem.hpp"

namespace fsmon::lustre {

struct TestbedProfile {
  std::string name;
  std::string storage_label;
  LustreFsOptions fs_options;

  // Paper Table V: baseline per-op generation rates (events/second, per
  // MDS) and the mixed-script aggregate the reporting pipeline ingests.
  double create_rate = 0;
  double modify_rate = 0;
  double delete_rate = 0;
  double mixed_event_rate = 0;

  // Collector cost model (per changelog record). Costs are split into a
  // latency part (end-to-end time the record occupies the serial
  // pipeline stage: RPC round-trips, waiting on the MDT) and a CPU part
  // (cycles actually burned on the node) — fid2path is an upcall whose
  // latency is mostly wait, which is how the paper's components show low
  // CPU% while still limiting throughput (Tables VI vs VII).
  common::Duration collector_base_cost{};   ///< Latency: parse + read + publish prep.
  common::Duration collector_base_cpu{};    ///< CPU share of the base cost.
  common::Duration fid2path_cost{};         ///< Latency of one fid2path call.
  common::Duration fid2path_cpu{};          ///< CPU share of a fid2path call.
  common::Duration cache_lookup_coeff{};    ///< Latency per log2(cache size) per lookup.

  // Downstream per-event costs (latency / CPU).
  common::Duration aggregator_event_cost{};
  common::Duration aggregator_event_cpu{};
  common::Duration consumer_event_cost{};
  common::Duration consumer_event_cpu{};

  // Robinhood baseline (Section V-D5): a single client-side poller
  // visiting MDSs round-robin.
  common::Duration robinhood_event_cost{};
  common::Duration robinhood_poll_rtt{};  ///< Per-visit switch latency.
  std::size_t robinhood_batch = 2000;

  // Working set of the performance script on this testbed: parent
  // directories touched (zipf-popular), giving the cache-size sweep of
  // Table VIII its shape.
  std::size_t dir_pool = 0;
  double dir_zipf_skew = 0.9;

  // Memory model for Tables VII/VIII: bytes per queued event awaiting
  // processing, per cache entry, and a per-component baseline.
  std::uint64_t event_bytes = 650;
  std::uint64_t cache_entry_bytes = 2100;
  std::uint64_t collector_base_bytes = 0;
  std::uint64_t aggregator_base_bytes = 0;
  std::uint64_t consumer_base_bytes = 0;

  /// Event-type mix fractions of the mixed performance script, derived
  /// from the per-op rates.
  double create_fraction() const {
    return create_rate / (create_rate + modify_rate + delete_rate);
  }
  double modify_fraction() const {
    return modify_rate / (create_rate + modify_rate + delete_rate);
  }
  double delete_fraction() const {
    return delete_rate / (create_rate + modify_rate + delete_rate);
  }

  static TestbedProfile aws();
  static TestbedProfile thor();
  static TestbedProfile iota();
};

}  // namespace fsmon::lustre
