// FrameRef: an immutable, ref-counted handle to one encoded batch frame.
//
// Every hop of the pipeline (collector -> router -> shard aggregator ->
// consumers / bridge / persist queue) moves the same already-encoded
// CRC-trailed frame bytes. Before the transport layer existed each hop
// copied the frame into the next stage's inbox; a FrameRef makes the
// handoff a shared_ptr bump instead, and the process-wide frame_copies()
// counter proves it: the counter increments only when a frame's payload
// bytes are actually duplicated onto the heap (FrameRef::copy, or a
// copy-on-write detach of a shared buffer), never on a handoff, a ring
// write, or a socket write — those are transmissions, not copies.
//
// Ownership model:
//   - adopt()  takes an existing buffer by move (no copy, not counted).
//   - copy()   duplicates bytes (counted) — the explicit slow path.
//   - borrow() wraps memory owned elsewhere (a shm ring record); the
//     release hook runs when the last FrameRef drops, returning the
//     region to its owner. Consumers therefore read ring frames in
//     place and the ring reclaims the record only after every retainer
//     (fan-out, persist queue) is done with it.
//
// mutable_bytes() supports the aggregator's in-place id patch: when the
// ref is the sole owner the underlying buffer is handed out directly
// (borrowed ring records included — the SPSC consumer owns the record
// exclusively until release); when shared, the payload is detached into
// a fresh buffer first, which counts as one frame copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fsmon::transport {

/// Process-wide count of frame payload duplications (relaxed atomic).
/// Tests take deltas across a pipeline run to assert zero-copy hops.
std::uint64_t frame_copies();

class FrameRef {
 public:
  FrameRef() = default;

  /// Take ownership of an existing buffer by move. Not a copy.
  static FrameRef adopt(std::string payload);
  static FrameRef adopt(std::vector<std::byte> payload);

  /// Duplicate `payload` onto the heap. Counted in frame_copies().
  static FrameRef copy(std::span<const std::byte> payload);

  /// Wrap memory owned elsewhere (a shm ring record). `release` runs
  /// exactly once, when the last FrameRef referencing the region drops.
  static FrameRef borrow(std::span<std::byte> region, std::function<void()> release);

  explicit operator bool() const { return data_ != nullptr; }
  bool empty() const { return data_ == nullptr || data_->view.empty(); }
  std::size_t size() const { return data_ == nullptr ? 0 : data_->view.size(); }

  std::span<const std::byte> bytes() const {
    return data_ == nullptr ? std::span<const std::byte>() : std::span<const std::byte>(data_->view);
  }
  std::string_view chars() const {
    const auto b = bytes();
    return {reinterpret_cast<const char*>(b.data()), b.size()};
  }

  /// Mutable access for in-place id patching (see file comment). May
  /// detach (one counted copy) when the buffer is shared.
  std::span<std::byte> mutable_bytes();

  /// Owners of the underlying buffer, 0 for a null ref.
  long use_count() const { return data_.use_count(); }

  /// Logical equality: same bytes (topic travels outside the ref).
  friend bool operator==(const FrameRef& a, const FrameRef& b) {
    return a.chars() == b.chars();
  }

 private:
  struct Data {
    /// Owning storage; exactly one is non-empty unless borrowing.
    std::string owned_str;
    std::vector<std::byte> owned_vec;
    /// The frame bytes, pointing into owned storage or a borrowed region.
    std::span<std::byte> view;
    std::function<void()> release;
    ~Data() {
      if (release) release();
    }
  };

  explicit FrameRef(std::shared_ptr<Data> data) : data_(std::move(data)) {}

  std::shared_ptr<Data> data_;
};

namespace detail {
/// Increment frame_copies(); exposed so adapters that must materialize a
/// duplicate (e.g. a copy-mode benchmark) count it at the site.
void count_frame_copy();
}  // namespace detail

}  // namespace fsmon::transport
