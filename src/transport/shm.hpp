// ShmTransport: shared-memory ring transport for co-located stages.
//
// Each (sender, receiver) edge gets its own ShmRing: send() writes the
// frame bytes once into each subscribed receiver's ring, and the
// receiver hands them out as borrowing FrameRefs — the consumer reads
// the batch in place and the record is reclaimed when the last retainer
// (fan-out, persist queue) drops its ref. No heap copy happens on the
// hop, which the frame.copies counter asserts structurally.
//
// The rings here live in process memory. A true cross-process deployment
// would back the same layout with a mmap'd segment; nothing in the ring
// format (offsets, no pointers, atomic state words) prevents that — the
// constructor is the only place that would change.
//
// Backpressure: a full ring blocks the sender (counted as
// transport.ring_full_waits, consulted against the `transport.shm.full`
// chaos point) until the receiver releases records — unless the receiver
// is closed, which surfaces as a refusal exactly like a closed msgq
// subscriber, so the collector rewind protocol carries over unchanged.
// Frames larger than the ring can ever hold travel via a small overflow
// queue of FrameRefs (a shared_ptr bump, still no copy).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/bounded_queue.hpp"
#include "src/transport/shm_ring.hpp"
#include "src/transport/transport.hpp"

namespace fsmon::transport {

class ShmReceiver;

struct ShmTransportOptions {
  /// Per-edge ring capacity in bytes (rounded up to a power of two).
  std::size_t ring_bytes = 1 << 20;
  /// Capacity of the per-edge overflow queue for frames too large for
  /// the ring (frames this size are rare; the queue is a safety valve).
  std::size_t overflow_capacity = 64;
};

class ShmSender : public Sender {
 public:
  ShmSender(std::string name, ShmTransportOptions options);

  SendResult send(std::string_view topic, FrameRef frame) override;
  void connect(const std::shared_ptr<Receiver>& receiver) override;
  void disconnect(const std::shared_ptr<Receiver>& receiver) override;
  std::size_t receiver_count() const override;
  std::uint64_t sent() const override { return sent_; }
  const std::string& name() const override { return name_; }

  void set_metrics(TransportMetrics metrics) { metrics_ = metrics; }

 private:
  struct Edge {
    std::shared_ptr<ShmReceiver> receiver;
    std::shared_ptr<ShmRing> ring;
    std::shared_ptr<common::BoundedQueue<Frame>> overflow;
  };

  const std::string name_;
  const ShmTransportOptions options_;
  mutable std::mutex mu_;  ///< serializes send() (the ring's single producer)
  std::vector<Edge> edges_;
  std::uint64_t sent_ = 0;
  TransportMetrics metrics_;
};

class ShmReceiver : public Receiver,
                    public std::enable_shared_from_this<ShmReceiver> {
 public:
  ShmReceiver(std::string name, std::size_t high_water_mark, OverflowPolicy policy);

  std::optional<Frame> recv(std::chrono::milliseconds timeout) override;
  std::optional<Frame> try_recv() override;
  void subscribe(std::string_view prefix) override;
  void close() override;
  void reopen() override;
  bool closed() const override;
  std::size_t pending() const override;
  std::uint64_t dropped() const override;
  const std::string& name() const override { return name_; }

  bool accepts(std::string_view topic) const;

 private:
  friend class ShmSender;

  struct Source {
    std::shared_ptr<ShmRing> ring;
    /// Frames too large for the ring (delivered by shared_ptr bump).
    std::shared_ptr<common::BoundedQueue<Frame>> overflow;
  };

  void add_source(Source source);
  void remove_source(const std::shared_ptr<ShmRing>& ring);
  /// Sender-side wakeup after a push.
  void notify();
  std::optional<Frame> poll_sources();

  const std::string name_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Source> sources_;
  std::vector<std::string> filters_;
  bool closed_ = false;
  std::uint64_t dropped_ = 0;
};

class ShmTransport : public Transport {
 public:
  explicit ShmTransport(ShmTransportOptions options = {});

  TransportKind kind() const override { return TransportKind::kShm; }
  std::shared_ptr<Sender> make_sender(std::string name) override;
  std::shared_ptr<Receiver> make_receiver(std::string name, std::size_t high_water_mark,
                                          OverflowPolicy policy) override;
  void attach_metrics(obs::MetricsRegistry* registry) override;

 private:
  const ShmTransportOptions options_;
  std::mutex mu_;
  std::vector<std::shared_ptr<ShmSender>> senders_;
  TransportMetrics metrics_;
  bool metrics_attached_ = false;
};

}  // namespace fsmon::transport
