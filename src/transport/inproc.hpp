// InProcTransport: the msgq::Bus pub/sub rebased onto the Transport
// interface.
//
// The carrier is unchanged — msgq::Publisher fan-out into each
// msgq::Subscriber's bounded inbox — but the payload now rides in
// msgq::Message::frame, so the per-subscriber Message copy that used to
// duplicate the encoded batch is a FrameRef shared_ptr bump. The
// adapters also expose their underlying msgq endpoints (publisher() /
// subscriber()) for the compat accessors the fault-tolerance tests use
// to splice rogue publishers into a running pipeline.
//
// Declared under src/transport/ but compiled into fsmon_msgq:
// fsmon_transport cannot depend on msgq (msgq::Message embeds FrameRef),
// so the adapter sources live where both sides are visible.
#pragma once

#include <memory>
#include <string>

#include "src/msgq/pubsub.hpp"
#include "src/transport/transport.hpp"

namespace fsmon::transport {

class InProcReceiver : public Receiver {
 public:
  explicit InProcReceiver(std::shared_ptr<msgq::Subscriber> subscriber)
      : subscriber_(std::move(subscriber)) {}

  std::optional<Frame> recv(std::chrono::milliseconds timeout) override;
  std::optional<Frame> try_recv() override;
  void subscribe(std::string_view prefix) override { subscriber_->subscribe(std::string(prefix)); }
  void close() override { subscriber_->close(); }
  void reopen() override { subscriber_->reopen(); }
  bool closed() const override { return subscriber_->closed(); }
  std::size_t pending() const override { return subscriber_->pending(); }
  std::uint64_t dropped() const override { return subscriber_->dropped(); }
  const std::string& name() const override { return subscriber_->name(); }

  /// The wrapped msgq endpoint (compat splice point for tests).
  const std::shared_ptr<msgq::Subscriber>& subscriber() const { return subscriber_; }

 private:
  static std::optional<Frame> to_frame(std::optional<msgq::Message> message);

  std::shared_ptr<msgq::Subscriber> subscriber_;
};

class InProcSender : public Sender {
 public:
  explicit InProcSender(std::shared_ptr<msgq::Publisher> publisher)
      : publisher_(std::move(publisher)) {}

  SendResult send(std::string_view topic, FrameRef frame) override;
  void connect(const std::shared_ptr<Receiver>& receiver) override;
  void disconnect(const std::shared_ptr<Receiver>& receiver) override;
  std::size_t receiver_count() const override { return publisher_->subscriber_count(); }
  std::uint64_t sent() const override { return publisher_->published(); }
  const std::string& name() const override { return publisher_->name(); }

  void set_metrics(TransportMetrics metrics) { metrics_ = metrics; }

  /// The wrapped msgq endpoint (compat splice point for tests).
  const std::shared_ptr<msgq::Publisher>& publisher() const { return publisher_; }

 private:
  std::shared_ptr<msgq::Publisher> publisher_;
  TransportMetrics metrics_;
};

class InProcTransport : public Transport {
 public:
  explicit InProcTransport(msgq::Bus& bus) : bus_(bus) {}

  TransportKind kind() const override { return TransportKind::kInProc; }
  std::shared_ptr<Sender> make_sender(std::string name) override;
  std::shared_ptr<Receiver> make_receiver(std::string name, std::size_t high_water_mark,
                                          OverflowPolicy policy) override;
  void attach_metrics(obs::MetricsRegistry* registry) override;

  msgq::Bus& bus() { return bus_; }

 private:
  msgq::Bus& bus_;
  std::mutex mu_;
  std::vector<std::shared_ptr<InProcSender>> senders_;
  TransportMetrics metrics_;
  bool metrics_attached_ = false;
};

}  // namespace fsmon::transport
