// TcpTransport: the socket endpoints rebased onto the Transport
// interface.
//
// Each sender owns a msgq::TcpPublisher listening on an ephemeral
// loopback port; connect(receiver) makes the receiver's
// msgq::TcpSubscriber dial it and blocks until the subscription control
// frames registered before the connect have been processed by the
// publisher — after connect() returns, a send() is guaranteed to see
// the receiver's filters.
//
// The hot path is the scatter-gather TcpConnection::send: the frame's
// payload bytes go straight from the FrameRef into sendmsg with the
// length-prefix header and CRC trailer as separate iovec entries, so
// the sender side stays copy-free (the receive side necessarily
// materializes the bytes off the socket — that is a wire transfer, not
// a counted frame copy).
//
// Like the inproc adapter, this lives under src/transport/ but compiles
// into fsmon_msgq (it needs msgq's endpoints; fsmon_transport cannot
// depend on msgq).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/msgq/tcp.hpp"
#include "src/transport/transport.hpp"

namespace fsmon::transport {

struct TcpTransportOptions {
  std::string host = "127.0.0.1";
  msgq::TcpSubscriberOptions subscriber;
};

/// One receiver, many upstream publishers: a consumer or bridge tap
/// connects to every shard's output sender, so the receiver keeps one
/// TcpSubscriber per dialed endpoint and recv() round-robins their
/// inboxes. close() tears the connections down; reopen() re-dials every
/// remembered endpoint and re-registers the filters (restart semantics —
/// frames sent while closed are gone, recovery is replay's job).
class TcpReceiver : public Receiver {
 public:
  TcpReceiver(std::string name, std::size_t high_water_mark, OverflowPolicy policy,
              const TcpTransportOptions& options);

  std::optional<Frame> recv(std::chrono::milliseconds timeout) override;
  std::optional<Frame> try_recv() override;
  void subscribe(std::string_view prefix) override;
  void close() override;
  void reopen() override;
  bool closed() const override;
  std::size_t pending() const override;
  std::uint64_t dropped() const override { return 0; }
  const std::string& name() const override { return name_; }

 private:
  friend class TcpSender;

  struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
    std::unique_ptr<msgq::TcpSubscriber> subscriber;
  };

  /// Dial `host`:`port` and register every filter subscribed so far.
  /// Returns the number of filters sent (the sender waits for them).
  std::size_t dial(const std::string& host, std::uint16_t port);
  /// Drop the connection to the sender listening on `port`.
  void undial(std::uint16_t port);

  std::unique_ptr<msgq::TcpSubscriber> make_subscriber() const;
  static std::optional<Frame> to_frame(std::optional<msgq::Message> message);
  /// Round-robin one non-blocking sweep over the endpoints (mu_ held).
  std::optional<Frame> poll_endpoints();

  const std::string name_;
  msgq::TcpSubscriberOptions subscriber_options_;
  mutable std::mutex mu_;
  std::vector<Endpoint> endpoints_;
  std::vector<std::string> filters_;
  std::size_t next_poll_ = 0;
  bool closed_ = false;
};

class TcpSender : public Sender {
 public:
  TcpSender(std::string name, TcpTransportOptions options);
  ~TcpSender() override;

  SendResult send(std::string_view topic, FrameRef frame) override;
  void connect(const std::shared_ptr<Receiver>& receiver) override;
  void disconnect(const std::shared_ptr<Receiver>& receiver) override;
  /// Live connections, or 1 when every previously-connected receiver has
  /// vanished (see send() — a vanished receiver refuses, never drops).
  std::size_t receiver_count() const override;
  std::uint64_t sent() const override { return sent_.load(); }
  const std::string& name() const override { return name_; }

  msgq::TcpPublisher& publisher() { return publisher_; }
  std::uint16_t port() const { return publisher_.port(); }

  void set_metrics(TransportMetrics metrics) { metrics_ = metrics; }

 private:
  const std::string name_;
  const TcpTransportOptions options_;
  msgq::TcpPublisher publisher_;
  std::atomic<std::uint64_t> sent_{0};
  /// Set once a receiver connection has ever been observed. Over sockets
  /// a crashed receiver and a never-connected one look identical (the
  /// connection table is simply empty), but the refusal protocol above
  /// this layer depends on the difference; mutable because the sticky
  /// observation also happens in const receiver_count().
  mutable std::atomic<bool> had_receiver_{false};
  TransportMetrics metrics_;
};

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options = {});

  TransportKind kind() const override { return TransportKind::kTcp; }
  std::shared_ptr<Sender> make_sender(std::string name) override;
  std::shared_ptr<Receiver> make_receiver(std::string name, std::size_t high_water_mark,
                                          OverflowPolicy policy) override;
  void attach_metrics(obs::MetricsRegistry* registry) override;

 private:
  const TcpTransportOptions options_;
  std::mutex mu_;
  std::vector<std::shared_ptr<TcpSender>> senders_;
  TransportMetrics metrics_;
  bool metrics_attached_ = false;
};

}  // namespace fsmon::transport
