// Variable-length SPSC byte ring: the storage under ShmTransport.
//
// common/spsc_ring.hpp moves fixed-size slots; a frame hop moves a
// variable-length encoded batch, and the whole point of the shm path is
// that the frame bytes are written exactly once — into the ring — and
// read in place by the consumer. So this ring stores records, not slots:
//
//   [u32 total_len][u32 state][u32 topic_len][u32 payload_len]
//   [topic bytes][payload bytes][pad to 8]
//
// Records never straddle the wrap: when a record does not fit in the
// space before the end of the buffer, an 8-byte padding record
// ([u32 total_len][u32 state=kPadding]) fills the remainder so every
// payload is a single contiguous span the consumer can hand out as a
// borrowing FrameRef.
//
// Cursors (monotonic byte offsets, masked on access):
//   tail_ <= read_ <= head_
//   - head_: producer publish cursor (store-release after the record is
//     written; the consumer's load-acquire makes the bytes visible).
//   - read_: consumer cursor; a popped record's payload stays live in
//     the ring until its FrameRef drops.
//   - tail_: producer reclaim cursor; advances over kReleased records.
//
// Release is out of order by design — the persist queue may hold frame
// N while frame N+1's consumers already finished — so each record
// carries a state word flipped to kReleased by the FrameRef's release
// hook (any thread, std::atomic_ref), and the producer reclaims in tail
// order as far as the first still-live record.
//
// SPSC contract: one thread calls try_push (the sender serializes its
// callers), one thread calls try_pop; release hooks may run anywhere.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/transport/frame.hpp"

namespace fsmon::transport {

class ShmRing : public std::enable_shared_from_this<ShmRing> {
 public:
  enum class PushResult : std::uint8_t {
    kOk,
    kFull,      ///< not enough reclaimable space right now
    kTooLarge,  ///< record can never fit; route around the ring
  };

  /// One popped record: topic plus a FrameRef borrowing the ring bytes.
  struct Popped {
    std::string topic;
    FrameRef payload;
  };

  /// `min_capacity` bytes, rounded up to a power of two (>= 1024).
  explicit ShmRing(std::size_t min_capacity);

  /// Producer side. Writes topic + payload into the ring (the single
  /// write of the zero-copy path) and publishes the record.
  PushResult try_push(std::string_view topic, std::span<const std::byte> payload);

  /// Consumer side. The returned payload borrows ring memory; the record
  /// is reclaimed only after the FrameRef (and all its retainers) drop.
  std::optional<Popped> try_pop();

  /// Block the producer until a release may have freed space (or timeout).
  void wait_for_space(std::chrono::milliseconds timeout);

  std::size_t capacity() const { return capacity_; }
  /// Committed-but-unpopped records (approximate across threads).
  std::size_t pending() const { return pending_.load(std::memory_order_acquire); }
  /// Bytes between reclaim and publish cursors (approximate).
  std::size_t bytes_used() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }

  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

 private:
  static constexpr std::uint32_t kStateCommitted = 1;
  static constexpr std::uint32_t kStateReleased = 2;
  static constexpr std::uint32_t kStatePadding = 3;
  static constexpr std::size_t kHeaderBytes = 16;
  static constexpr std::size_t kPaddingHeaderBytes = 8;

  std::byte* data() { return reinterpret_cast<std::byte*>(buffer_.data()); }
  const std::byte* data() const { return reinterpret_cast<const std::byte*>(buffer_.data()); }

  std::uint32_t load_u32(std::size_t offset) const;
  void store_u32(std::size_t offset, std::uint32_t value);
  std::uint32_t load_state(std::size_t offset, std::memory_order order) const;
  void store_state(std::size_t offset, std::uint32_t value, std::memory_order order);

  /// Advance `tail` over one released/consumed-padding record.
  bool reclaim_one(std::uint64_t& tail);

  /// FrameRef release hook target: mark the record free, wake the producer.
  void release_record(std::size_t offset);

  const std::size_t capacity_;
  const std::size_t mask_;
  /// u64 storage guarantees 8-byte alignment for the record headers.
  std::vector<std::uint64_t> buffer_;

  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> read_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::size_t> pending_{0};

  std::mutex space_mu_;
  std::condition_variable space_cv_;
};

}  // namespace fsmon::transport
