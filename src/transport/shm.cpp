#include "src/transport/shm.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "src/chaos/fault.hpp"

namespace fsmon::transport {

// ---------------------------------------------------------------------------
// ShmSender

ShmSender::ShmSender(std::string name, ShmTransportOptions options)
    : name_(std::move(name)), options_(options) {}

void ShmSender::connect(const std::shared_ptr<Receiver>& receiver) {
  auto shm = std::dynamic_pointer_cast<ShmReceiver>(receiver);
  if (shm == nullptr) {
    throw std::invalid_argument("ShmSender::connect: receiver is not a shm receiver");
  }
  auto ring = std::make_shared<ShmRing>(options_.ring_bytes);
  auto overflow = std::make_shared<common::BoundedQueue<Frame>>(
      options_.overflow_capacity, common::OverflowPolicy::kBlock);
  shm->add_source(ShmReceiver::Source{ring, overflow});
  std::lock_guard lock(mu_);
  edges_.push_back(Edge{std::move(shm), std::move(ring), std::move(overflow)});
}

void ShmSender::disconnect(const std::shared_ptr<Receiver>& receiver) {
  std::lock_guard lock(mu_);
  std::erase_if(edges_, [&](const Edge& edge) {
    if (edge.receiver != receiver) return false;
    edge.receiver->remove_source(edge.ring);
    return true;
  });
}

std::size_t ShmSender::receiver_count() const {
  std::lock_guard lock(mu_);
  return edges_.size();
}

SendResult ShmSender::send(std::string_view topic, FrameRef frame) {
  std::lock_guard lock(mu_);
  ++sent_;
  SendResult result;
  if (detail::send_faulted()) {
    for (const auto& edge : edges_) {
      if (edge.receiver->accepts(topic)) ++result.receivers;
    }
    // Surface as a refusal even with no one listening so chaos schedules
    // deterministically trigger the producer's rewind path.
    result.receivers = std::max<std::uint64_t>(result.receivers, 1);
    return result;
  }
  for (const auto& edge : edges_) {
    if (!edge.receiver->accepts(topic)) continue;
    ++result.receivers;
    bool delivered = false;
    while (!edge.receiver->closed()) {
      const auto pushed = edge.ring->try_push(topic, frame.bytes());
      if (pushed == ShmRing::PushResult::kOk) {
        delivered = true;
        break;
      }
      if (pushed == ShmRing::PushResult::kTooLarge) {
        // Route around the ring: the overflow queue moves the FrameRef
        // itself (a shared_ptr bump, still no byte copy).
        delivered = edge.overflow->push(Frame{std::string(topic), frame});
        break;
      }
      // Ring full: block until the receiver releases records, unless the
      // chaos point turns the wait into a refusal.
      metrics_.on_ring_full_wait();
      const auto outcome = chaos::fault("transport.shm.full");
      if (outcome && outcome.action != chaos::FaultAction::kDelay) break;
      if (outcome.action == chaos::FaultAction::kDelay) {
        std::this_thread::sleep_for(outcome.delay);
      }
      edge.ring->wait_for_space(std::chrono::milliseconds(1));
    }
    if (delivered) {
      ++result.accepted;
      edge.receiver->notify();
    }
  }
  metrics_.on_send(result.accepted, result.accepted * frame.size());
  return result;
}

// ---------------------------------------------------------------------------
// ShmReceiver

ShmReceiver::ShmReceiver(std::string name, std::size_t /*high_water_mark*/,
                         OverflowPolicy /*policy*/)
    : name_(std::move(name)) {}

void ShmReceiver::add_source(Source source) {
  std::lock_guard lock(mu_);
  if (closed_) source.overflow->close();
  sources_.push_back(std::move(source));
}

void ShmReceiver::remove_source(const std::shared_ptr<ShmRing>& ring) {
  std::lock_guard lock(mu_);
  std::erase_if(sources_, [&](const Source& s) { return s.ring == ring; });
}

void ShmReceiver::notify() {
  {
    std::lock_guard lock(mu_);
  }
  cv_.notify_all();
}

bool ShmReceiver::accepts(std::string_view topic) const {
  std::lock_guard lock(mu_);
  return std::any_of(filters_.begin(), filters_.end(),
                     [&](const std::string& prefix) { return topic.starts_with(prefix); });
}

void ShmReceiver::subscribe(std::string_view prefix) {
  std::lock_guard lock(mu_);
  filters_.emplace_back(prefix);
}

std::optional<Frame> ShmReceiver::poll_sources() {
  for (auto& source : sources_) {
    if (auto popped = source.ring->try_pop()) {
      return Frame{std::move(popped->topic), std::move(popped->payload)};
    }
    if (auto frame = source.overflow->try_pop()) return frame;
  }
  return std::nullopt;
}

std::optional<Frame> ShmReceiver::try_recv() {
  std::lock_guard lock(mu_);
  return poll_sources();
}

std::optional<Frame> ShmReceiver::recv(std::chrono::milliseconds timeout) {
  const bool bounded = timeout.count() >= 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lock(mu_);
  while (true) {
    if (auto frame = poll_sources()) return frame;
    if (closed_) return std::nullopt;  // drained, end of stream
    if (bounded) {
      if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
      cv_.wait_until(lock, deadline);
    } else {
      cv_.wait(lock);
    }
  }
}

void ShmReceiver::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
    // Wake senders blocked on a full overflow queue; they observe the
    // close as a refusal.
    for (auto& source : sources_) source.overflow->close();
  }
  cv_.notify_all();
}

void ShmReceiver::reopen() {
  std::lock_guard lock(mu_);
  closed_ = false;
  // A restarted stage must not see frames its pre-crash incarnation never
  // drained (BoundedQueue::reopen semantics): discard the backlog.
  for (auto& source : sources_) {
    source.overflow->reopen();
    while (source.ring->try_pop()) {
    }
  }
}

bool ShmReceiver::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t ShmReceiver::pending() const {
  std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const auto& source : sources_) {
    total += source.ring->pending() + source.overflow->size();
  }
  return total;
}

std::uint64_t ShmReceiver::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

// ---------------------------------------------------------------------------
// ShmTransport

ShmTransport::ShmTransport(ShmTransportOptions options) : options_(options) {}

std::shared_ptr<Sender> ShmTransport::make_sender(std::string name) {
  auto sender = std::make_shared<ShmSender>(std::move(name), options_);
  std::lock_guard lock(mu_);
  if (metrics_attached_) sender->set_metrics(metrics_);
  senders_.push_back(sender);
  return sender;
}

std::shared_ptr<Receiver> ShmTransport::make_receiver(std::string name,
                                                      std::size_t high_water_mark,
                                                      OverflowPolicy policy) {
  return std::make_shared<ShmReceiver>(std::move(name), high_water_mark, policy);
}

void ShmTransport::attach_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  std::lock_guard lock(mu_);
  metrics_ = TransportMetrics::create(*registry, TransportKind::kShm);
  metrics_attached_ = true;
  for (auto& sender : senders_) sender->set_metrics(metrics_);
}

}  // namespace fsmon::transport
