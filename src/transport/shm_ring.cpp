#include "src/transport/shm_ring.hpp"

#include <bit>
#include <cstring>

namespace fsmon::transport {
namespace {

constexpr std::size_t align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

}  // namespace

ShmRing::ShmRing(std::size_t min_capacity)
    : capacity_(std::bit_ceil(std::max<std::size_t>(min_capacity, 1024))),
      mask_(capacity_ - 1),
      buffer_(capacity_ / sizeof(std::uint64_t)) {}

std::uint32_t ShmRing::load_u32(std::size_t offset) const {
  std::uint32_t value;
  std::memcpy(&value, data() + offset, sizeof(value));
  return value;
}

void ShmRing::store_u32(std::size_t offset, std::uint32_t value) {
  std::memcpy(data() + offset, &value, sizeof(value));
}

std::uint32_t ShmRing::load_state(std::size_t offset, std::memory_order order) const {
  const auto* p = reinterpret_cast<const std::uint32_t*>(data() + offset + 4);
  return std::atomic_ref<const std::uint32_t>(*p).load(order);
}

void ShmRing::store_state(std::size_t offset, std::uint32_t value,
                          std::memory_order order) {
  auto* p = reinterpret_cast<std::uint32_t*>(data() + offset + 4);
  std::atomic_ref<std::uint32_t>(*p).store(value, order);
}

bool ShmRing::reclaim_one(std::uint64_t& tail) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  if (tail == head) return false;
  const std::size_t pos = tail & mask_;
  // The acquire pairs with the release hook's store: once we see
  // kReleased the last reader is gone and the bytes may be overwritten.
  if (load_state(pos, std::memory_order_acquire) != kStateReleased) return false;
  tail += load_u32(pos);
  return true;
}

ShmRing::PushResult ShmRing::try_push(std::string_view topic,
                                      std::span<const std::byte> payload) {
  const std::size_t needed = align8(kHeaderBytes + topic.size() + payload.size());
  if (needed > capacity_) return PushResult::kTooLarge;

  std::uint64_t head = head_.load(std::memory_order_relaxed);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  while (true) {
    const std::size_t pos = head & mask_;
    const std::size_t pad = pos + needed > capacity_ ? capacity_ - pos : 0;
    while (capacity_ - (head - tail) < pad + needed) {
      if (!reclaim_one(tail)) {
        tail_.store(tail, std::memory_order_relaxed);
        return PushResult::kFull;
      }
    }
    tail_.store(tail, std::memory_order_relaxed);
    if (pad == 0) {
      store_u32(pos, static_cast<std::uint32_t>(needed));
      store_state(pos, kStateCommitted, std::memory_order_relaxed);
      store_u32(pos + 8, static_cast<std::uint32_t>(topic.size()));
      store_u32(pos + 12, static_cast<std::uint32_t>(payload.size()));
      std::memcpy(data() + pos + kHeaderBytes, topic.data(), topic.size());
      if (!payload.empty()) {
        std::memcpy(data() + pos + kHeaderBytes + topic.size(), payload.data(),
                    payload.size());
      }
      pending_.fetch_add(1, std::memory_order_release);
      // Publishes the record bytes to the consumer's acquire load.
      head_.store(head + needed, std::memory_order_release);
      return PushResult::kOk;
    }
    // Wrap: fill the remainder with a padding record (8-byte header is
    // all it needs — record sizes are 8-aligned so pad >= 8) and retry
    // from the buffer start.
    store_u32(pos, static_cast<std::uint32_t>(pad));
    store_state(pos, kStatePadding, std::memory_order_relaxed);
    head_.store(head + pad, std::memory_order_release);
    head += pad;
  }
}

std::optional<ShmRing::Popped> ShmRing::try_pop() {
  std::uint64_t read = read_.load(std::memory_order_relaxed);
  while (true) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (read == head) {
      read_.store(read, std::memory_order_release);
      return std::nullopt;
    }
    const std::size_t pos = read & mask_;
    const std::uint32_t total_len = load_u32(pos);
    if (load_state(pos, std::memory_order_relaxed) == kStatePadding) {
      // Hand the padding straight back to the producer.
      store_state(pos, kStateReleased, std::memory_order_release);
      {
        std::lock_guard lock(space_mu_);
      }
      space_cv_.notify_all();
      read += total_len;
      continue;
    }
    const std::uint32_t topic_len = load_u32(pos + 8);
    const std::uint32_t payload_len = load_u32(pos + 12);
    Popped popped;
    popped.topic.assign(reinterpret_cast<const char*>(data() + pos + kHeaderBytes),
                        topic_len);
    auto self = shared_from_this();
    popped.payload = FrameRef::borrow(
        std::span<std::byte>(data() + pos + kHeaderBytes + topic_len, payload_len),
        [self, pos]() { self->release_record(pos); });
    pending_.fetch_sub(1, std::memory_order_release);
    read_.store(read + total_len, std::memory_order_release);
    return popped;
  }
}

void ShmRing::release_record(std::size_t offset) {
  store_state(offset, kStateReleased, std::memory_order_release);
  {
    std::lock_guard lock(space_mu_);
  }
  space_cv_.notify_all();
}

void ShmRing::wait_for_space(std::chrono::milliseconds timeout) {
  std::unique_lock lock(space_mu_);
  space_cv_.wait_for(lock, timeout);
}

}  // namespace fsmon::transport
