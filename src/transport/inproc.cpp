#include "src/transport/inproc.hpp"

#include <stdexcept>

namespace fsmon::transport {

std::optional<Frame> InProcReceiver::to_frame(std::optional<msgq::Message> message) {
  if (!message) return std::nullopt;
  Frame frame;
  frame.topic = std::move(message->topic);
  // Messages published through the transport carry a FrameRef already;
  // legacy publishers that still fill `payload` get it adopted (a move,
  // not a copy).
  frame.payload = message->frame ? std::move(message->frame)
                                 : FrameRef::adopt(std::move(message->payload));
  return frame;
}

std::optional<Frame> InProcReceiver::recv(std::chrono::milliseconds timeout) {
  if (timeout.count() < 0) return to_frame(subscriber_->recv());
  return to_frame(subscriber_->recv_for(timeout));
}

std::optional<Frame> InProcReceiver::try_recv() {
  return to_frame(subscriber_->try_recv());
}

SendResult InProcSender::send(std::string_view topic, FrameRef frame) {
  SendResult result;
  if (detail::send_faulted()) {
    result.receivers = std::max<std::uint64_t>(publisher_->subscriber_count(), 1);
    return result;
  }
  msgq::Message message;
  message.topic = topic;
  message.frame = std::move(frame);
  const std::size_t bytes = message.frame.size();
  result.receivers = publisher_->subscriber_count();
  // Move-aware publish: with single-subscriber fan-in the frame refcount
  // stays at one end to end, so the receiver can mutate in place.
  result.accepted = publisher_->publish(std::move(message));
  metrics_.on_send(result.accepted, result.accepted * bytes);
  return result;
}

void InProcSender::connect(const std::shared_ptr<Receiver>& receiver) {
  auto inproc = std::dynamic_pointer_cast<InProcReceiver>(receiver);
  if (inproc == nullptr) {
    throw std::invalid_argument(
        "InProcSender::connect: receiver is not an in-process receiver");
  }
  publisher_->connect(inproc->subscriber());
}

void InProcSender::disconnect(const std::shared_ptr<Receiver>& receiver) {
  auto inproc = std::dynamic_pointer_cast<InProcReceiver>(receiver);
  if (inproc == nullptr) return;
  publisher_->disconnect(inproc->subscriber()->name());
}

std::shared_ptr<Sender> InProcTransport::make_sender(std::string name) {
  auto sender = std::make_shared<InProcSender>(bus_.make_publisher(name));
  std::lock_guard lock(mu_);
  if (metrics_attached_) sender->set_metrics(metrics_);
  senders_.push_back(sender);
  return sender;
}

std::shared_ptr<Receiver> InProcTransport::make_receiver(std::string name,
                                                         std::size_t high_water_mark,
                                                         OverflowPolicy policy) {
  const auto msgq_policy = policy == OverflowPolicy::kDropNewest
                               ? common::OverflowPolicy::kDropNewest
                               : common::OverflowPolicy::kBlock;
  return std::make_shared<InProcReceiver>(
      bus_.make_subscriber(name, high_water_mark, msgq_policy));
}

void InProcTransport::attach_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  std::lock_guard lock(mu_);
  metrics_ = TransportMetrics::create(*registry, TransportKind::kInProc);
  metrics_attached_ = true;
  for (auto& sender : senders_) sender->set_metrics(metrics_);
}

}  // namespace fsmon::transport
