#include "src/transport/transport.hpp"

#include <thread>

#include "src/chaos/fault.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::transport {

std::string_view to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProc:
      return "inproc";
    case TransportKind::kShm:
      return "shm";
    case TransportKind::kTcp:
      return "tcp";
  }
  return "unknown";
}

struct TransportMetrics::Instruments {
  obs::Counter* frames = nullptr;
  obs::Counter* bytes = nullptr;
  obs::Counter* ring_full_waits = nullptr;
  obs::Gauge* frame_copies = nullptr;
};

TransportMetrics TransportMetrics::create(obs::MetricsRegistry& registry,
                                          TransportKind kind) {
  TransportMetrics metrics;
  metrics.registry = &registry;
  const obs::Labels labels{{"transport", std::string(to_string(kind))}};
  auto instruments = std::make_shared<Instruments>();
  instruments->frames =
      &registry.counter("transport.frames", labels,
                        "Frames accepted by this transport's senders", "frames");
  instruments->bytes =
      &registry.counter("transport.bytes", labels,
                        "Payload bytes accepted by this transport's senders", "bytes");
  instruments->ring_full_waits = &registry.counter(
      "transport.ring_full_waits", labels,
      "Times a shm sender blocked because a receiver's ring was full");
  instruments->frame_copies = &registry.gauge(
      "frame.copies", {},
      "Process-wide count of frame payload heap duplications (0 = zero-copy)",
      "copies");
  metrics.instruments_ = std::move(instruments);
  return metrics;
}

void TransportMetrics::on_send(std::uint64_t frames, std::uint64_t bytes) {
  if (instruments_ == nullptr) return;
  instruments_->frames->inc(frames);
  instruments_->bytes->inc(bytes);
  refresh_frame_copies();
}

void TransportMetrics::on_ring_full_wait() {
  if (instruments_ == nullptr) return;
  instruments_->ring_full_waits->inc();
}

void TransportMetrics::refresh_frame_copies() {
  if (instruments_ == nullptr) return;
  instruments_->frame_copies->set(static_cast<std::int64_t>(frame_copies()));
}

namespace detail {

bool send_faulted() {
  const auto outcome = chaos::fault("transport.before_send");
  if (!outcome) return false;
  switch (outcome.action) {
    case chaos::FaultAction::kDelay:
      std::this_thread::sleep_for(outcome.delay);
      return false;
    case chaos::FaultAction::kDrop:
    case chaos::FaultAction::kFail:
    case chaos::FaultAction::kCrash:
      return true;
    case chaos::FaultAction::kNone:
      break;
  }
  return false;
}

}  // namespace detail

}  // namespace fsmon::transport
