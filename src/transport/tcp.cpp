#include "src/transport/tcp.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace fsmon::transport {

// ---------------------------------------------------------------------------
// TcpReceiver

TcpReceiver::TcpReceiver(std::string name, std::size_t high_water_mark,
                         OverflowPolicy policy, const TcpTransportOptions& options)
    : name_(std::move(name)), subscriber_options_(options.subscriber) {
  subscriber_options_.high_water_mark = high_water_mark;
  subscriber_options_.overflow_policy = policy == OverflowPolicy::kDropNewest
                                            ? common::OverflowPolicy::kDropNewest
                                            : common::OverflowPolicy::kBlock;
}

std::unique_ptr<msgq::TcpSubscriber> TcpReceiver::make_subscriber() const {
  return std::make_unique<msgq::TcpSubscriber>(subscriber_options_);
}

std::optional<Frame> TcpReceiver::to_frame(std::optional<msgq::Message> message) {
  if (!message) return std::nullopt;
  Frame frame;
  frame.topic = std::move(message->topic);
  // The socket read materialized the payload string; adopting it is a
  // move. Wire receive is a transfer, not a counted frame copy.
  frame.payload = message->frame ? std::move(message->frame)
                                 : FrameRef::adopt(std::move(message->payload));
  return frame;
}

std::optional<Frame> TcpReceiver::poll_endpoints() {
  // Round-robin so one busy shard cannot starve the others' frames.
  const std::size_t n = endpoints_.size();
  for (std::size_t i = 0; i < n; ++i) {
    auto& endpoint = endpoints_[(next_poll_ + i) % n];
    if (endpoint.subscriber == nullptr) continue;
    if (auto message = endpoint.subscriber->try_recv()) {
      next_poll_ = (next_poll_ + i + 1) % n;
      return to_frame(std::move(message));
    }
  }
  return std::nullopt;
}

std::optional<Frame> TcpReceiver::recv(std::chrono::milliseconds timeout) {
  const bool bounded = timeout.count() >= 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    {
      std::lock_guard lock(mu_);
      if (auto frame = poll_endpoints()) return frame;
      if (closed_) return std::nullopt;  // drained, end of stream
    }
    if (bounded && std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    // The per-endpoint inboxes cannot share one condition variable, so
    // blocking recv is a short poll loop across them.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::optional<Frame> TcpReceiver::try_recv() {
  std::lock_guard lock(mu_);
  return poll_endpoints();
}

void TcpReceiver::subscribe(std::string_view prefix) {
  std::lock_guard lock(mu_);
  filters_.emplace_back(prefix);
  for (auto& endpoint : endpoints_) {
    if (endpoint.subscriber != nullptr)
      (void)endpoint.subscriber->subscribe(std::string(prefix));
  }
}

std::size_t TcpReceiver::dial(const std::string& host, std::uint16_t port) {
  std::lock_guard lock(mu_);
  auto subscriber = make_subscriber();
  const auto status = subscriber->connect(host, port);
  if (!status.is_ok()) {
    throw std::runtime_error("TcpReceiver::dial: " + status.message());
  }
  for (const auto& prefix : filters_) (void)subscriber->subscribe(prefix);
  endpoints_.push_back(Endpoint{host, port, std::move(subscriber)});
  return filters_.size();
}

void TcpReceiver::undial(std::uint16_t port) {
  std::lock_guard lock(mu_);
  for (auto& endpoint : endpoints_) {
    if (endpoint.port == port && endpoint.subscriber != nullptr) {
      endpoint.subscriber->disconnect();
    }
  }
  std::erase_if(endpoints_, [&](const Endpoint& e) { return e.port == port; });
}

void TcpReceiver::close() {
  std::lock_guard lock(mu_);
  closed_ = true;
  // Tear the connections down but remember the endpoints: reopen()
  // re-dials them (restart semantics — see class comment).
  for (auto& endpoint : endpoints_) {
    if (endpoint.subscriber != nullptr) {
      endpoint.subscriber->disconnect();
      endpoint.subscriber.reset();
    }
  }
}

void TcpReceiver::reopen() {
  std::lock_guard lock(mu_);
  closed_ = false;
  for (auto& endpoint : endpoints_) {
    if (endpoint.subscriber != nullptr) continue;
    auto subscriber = make_subscriber();
    if (const auto status = subscriber->connect(endpoint.host, endpoint.port);
        !status.is_ok()) {
      continue;  // sender gone (stage torn down mid-restart); stay dark
    }
    for (const auto& prefix : filters_) (void)subscriber->subscribe(prefix);
    endpoint.subscriber = std::move(subscriber);
  }
}

bool TcpReceiver::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t TcpReceiver::pending() const {
  std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const auto& endpoint : endpoints_) {
    if (endpoint.subscriber != nullptr) total += endpoint.subscriber->pending();
  }
  return total;
}

// ---------------------------------------------------------------------------
// TcpSender

TcpSender::TcpSender(std::string name, TcpTransportOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  const auto status = publisher_.start(0);
  if (!status.is_ok()) {
    throw std::runtime_error("TcpSender: failed to listen: " + status.message());
  }
}

TcpSender::~TcpSender() { publisher_.stop(); }

void TcpSender::connect(const std::shared_ptr<Receiver>& receiver) {
  auto tcp = std::dynamic_pointer_cast<TcpReceiver>(receiver);
  if (tcp == nullptr) {
    throw std::invalid_argument("TcpSender::connect: receiver is not a TCP receiver");
  }
  const std::size_t before = publisher_.subscription_count();
  const std::size_t expected = tcp->dial(options_.host, publisher_.port());
  had_receiver_.store(true, std::memory_order_relaxed);
  // Block until the subscriber's sub control frames are registered so a
  // send() issued right after connect() cannot race past the filters.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (publisher_.subscription_count() < before + expected &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void TcpSender::disconnect(const std::shared_ptr<Receiver>& receiver) {
  auto tcp = std::dynamic_pointer_cast<TcpReceiver>(receiver);
  if (tcp == nullptr) return;
  tcp->undial(publisher_.port());
}

std::size_t TcpSender::receiver_count() const {
  const std::size_t live = publisher_.connection_count();
  if (live > 0) {
    had_receiver_.store(true, std::memory_order_relaxed);
    return live;
  }
  return had_receiver_.load(std::memory_order_relaxed) ? 1 : 0;
}

SendResult TcpSender::send(std::string_view topic, FrameRef frame) {
  SendResult result;
  if (detail::send_faulted()) {
    result.receivers = std::max<std::uint64_t>(publisher_.connection_count(), 1);
    return result;
  }
  msgq::Message message;
  message.topic = topic;
  message.frame = std::move(frame);
  const std::size_t bytes = message.frame.size();
  sent_.fetch_add(1, std::memory_order_relaxed);
  result.accepted = publisher_.publish(message);
  result.receivers = publisher_.connection_count();
  if (result.receivers > 0) {
    had_receiver_.store(true, std::memory_order_relaxed);
  } else if (had_receiver_.load(std::memory_order_relaxed)) {
    // A receiver connected once and every connection is now gone. The
    // in-proc and shm carriers keep the receiver's inbox object across a
    // stage crash, so a send into a closed inbox still reports an
    // audience and is refused; over TCP the crashed stage's socket
    // simply vanishes and the send would read as "nobody ever listened
    // — fine to drop". That silent drop is the reconnect suffix-loss
    // race: a collector replaying an unacked suffix into the window
    // between a shard's teardown and its re-dial advances past frames
    // no one received, and the records are unrecoverable once the
    // changelog clears. Report the vanished audience as one refusing
    // receiver so the sender's tier rewinds and retries until the
    // replacement connection lands.
    result.receivers = 1;
  }
  metrics_.on_send(result.accepted, result.accepted * bytes);
  return result;
}

// ---------------------------------------------------------------------------
// TcpTransport

TcpTransport::TcpTransport(TcpTransportOptions options) : options_(std::move(options)) {}

std::shared_ptr<Sender> TcpTransport::make_sender(std::string name) {
  auto sender = std::make_shared<TcpSender>(std::move(name), options_);
  std::lock_guard lock(mu_);
  if (metrics_attached_) sender->set_metrics(metrics_);
  senders_.push_back(sender);
  return sender;
}

std::shared_ptr<Receiver> TcpTransport::make_receiver(std::string name,
                                                      std::size_t high_water_mark,
                                                      OverflowPolicy policy) {
  return std::make_shared<TcpReceiver>(std::move(name), high_water_mark, policy, options_);
}

void TcpTransport::attach_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  std::lock_guard lock(mu_);
  metrics_ = TransportMetrics::create(*registry, TransportKind::kTcp);
  metrics_attached_ = true;
  for (auto& sender : senders_) sender->set_metrics(metrics_);
}

}  // namespace fsmon::transport
