#include "src/transport/frame.hpp"

#include <atomic>
#include <cstring>

namespace fsmon::transport {
namespace {

std::atomic<std::uint64_t> g_frame_copies{0};

}  // namespace

std::uint64_t frame_copies() {
  return g_frame_copies.load(std::memory_order_relaxed);
}

namespace detail {
void count_frame_copy() {
  g_frame_copies.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

FrameRef FrameRef::adopt(std::string payload) {
  auto data = std::make_shared<Data>();
  data->owned_str = std::move(payload);
  data->view = std::span<std::byte>(
      reinterpret_cast<std::byte*>(data->owned_str.data()), data->owned_str.size());
  return FrameRef(std::move(data));
}

FrameRef FrameRef::adopt(std::vector<std::byte> payload) {
  auto data = std::make_shared<Data>();
  data->owned_vec = std::move(payload);
  data->view = std::span<std::byte>(data->owned_vec);
  return FrameRef(std::move(data));
}

FrameRef FrameRef::copy(std::span<const std::byte> payload) {
  detail::count_frame_copy();
  auto data = std::make_shared<Data>();
  data->owned_vec.assign(payload.begin(), payload.end());
  data->view = std::span<std::byte>(data->owned_vec);
  return FrameRef(std::move(data));
}

FrameRef FrameRef::borrow(std::span<std::byte> region, std::function<void()> release) {
  auto data = std::make_shared<Data>();
  data->view = region;
  data->release = std::move(release);
  return FrameRef(std::move(data));
}

std::span<std::byte> FrameRef::mutable_bytes() {
  if (data_ == nullptr) return {};
  if (data_.use_count() == 1) return data_->view;
  // Shared: detach into a private buffer (one counted copy) so other
  // retainers keep seeing the original bytes.
  detail::count_frame_copy();
  auto fresh = std::make_shared<Data>();
  fresh->owned_vec.assign(data_->view.begin(), data_->view.end());
  fresh->view = std::span<std::byte>(fresh->owned_vec);
  data_ = std::move(fresh);
  return data_->view;
}

}  // namespace fsmon::transport
