// Transport: the stage-boundary abstraction of the pipeline.
//
// Every hop — collector -> router, router -> shard aggregator,
// aggregator -> consumers / TCP bridge — moves one topic string plus one
// immutable FrameRef over a Sender/Receiver pair. The stages no longer
// know what carries the frame; three implementations sit behind the
// interface:
//
//   - InProcTransport (src/transport/inproc.hpp, built on msgq::Bus):
//     handoff is a shared_ptr bump into the receiver's bounded inbox.
//   - ShmTransport (src/transport/shm.hpp, built on a variable-length
//     SPSC byte ring): publish writes the frame once into the ring;
//     receivers read it in place via a borrowing FrameRef.
//   - TcpTransport (src/transport/tcp.hpp, over msgq's TCP endpoints):
//     scatter-gather writev of header + payload, no assembly buffer.
//
// Contract (all implementations):
//   - SendResult mirrors the refusal protocol the collector rewind
//     depends on: `accepted == 0 && receivers > 0` means every connected
//     receiver refused the frame and the producer must rewind/retry.
//     `receivers == 0` means nobody is listening (fine to drop).
//   - A frame accepted by send() is delivered to every connected,
//     subscribed, open receiver exactly once, in per-sender order.
//   - Receivers filter by topic prefix (subscribe("") = everything) and
//     mirror msgq::Subscriber lifecycle: close() wakes blocked recv()
//     which drains the backlog then returns nullopt; senders see a
//     closed receiver as refusing; reopen() discards the backlog.
//   - Every send() consults the `transport.before_send` chaos point:
//     kDrop/kFail/kCrash surface as a refusal (accepted=0), kDelay
//     sleeps for real. This gives the chaos suite one lever that works
//     identically over all three transports.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/transport/frame.hpp"

namespace fsmon::obs {
class MetricsRegistry;
}

namespace fsmon::transport {

/// One delivered message: the topic it was sent under plus the frame.
struct Frame {
  std::string topic;
  FrameRef payload;
};

/// Outcome of one send() over one Sender.
struct SendResult {
  std::uint64_t accepted = 0;   ///< receivers that took the frame
  std::uint64_t receivers = 0;  ///< receivers connected at send time

  /// The collector/router refusal condition: everyone listening said no.
  bool refused() const { return accepted == 0 && receivers > 0; }
};

enum class TransportKind : std::uint8_t { kInProc, kShm, kTcp };

std::string_view to_string(TransportKind kind);

class Receiver {
 public:
  virtual ~Receiver() = default;

  /// Block until a frame arrives, the receiver closes (drains then
  /// nullopt), or `timeout` elapses (nullopt). timeout <= 0 waits
  /// indefinitely.
  virtual std::optional<Frame> recv(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(-1)) = 0;

  /// Non-blocking recv.
  virtual std::optional<Frame> try_recv() = 0;

  /// Add a topic prefix filter; no filters = receive nothing,
  /// subscribe("") = receive everything (msgq::Subscriber semantics).
  virtual void subscribe(std::string_view prefix) = 0;

  virtual void close() = 0;
  virtual void reopen() = 0;
  virtual bool closed() const = 0;

  /// Frames waiting to be recv'd / dropped by overflow policy so far.
  virtual std::size_t pending() const = 0;
  virtual std::uint64_t dropped() const = 0;

  virtual const std::string& name() const = 0;
};

class Sender {
 public:
  virtual ~Sender() = default;

  /// Deliver `frame` under `topic` to every connected receiver.
  virtual SendResult send(std::string_view topic, FrameRef frame) = 0;

  /// Attach a receiver made by the same Transport. Connecting a receiver
  /// from a different transport kind throws std::invalid_argument.
  virtual void connect(const std::shared_ptr<Receiver>& receiver) = 0;
  virtual void disconnect(const std::shared_ptr<Receiver>& receiver) = 0;

  virtual std::size_t receiver_count() const = 0;
  virtual std::uint64_t sent() const = 0;

  virtual const std::string& name() const = 0;
};

/// Per-transport instrument bundle, attached via Transport::attach_metrics.
struct TransportMetrics {
  obs::MetricsRegistry* registry = nullptr;

  /// Registers transport.frames / transport.bytes /
  /// transport.ring_full_waits counters and the frame.copies gauge
  /// (labelled transport=<kind>). See docs/OBSERVABILITY.md.
  static TransportMetrics create(obs::MetricsRegistry& registry, TransportKind kind);

  void on_send(std::uint64_t frames, std::uint64_t bytes);
  void on_ring_full_wait();
  /// Publish the process-wide frame_copies() counter as a gauge.
  void refresh_frame_copies();

 private:
  struct Instruments;
  std::shared_ptr<Instruments> instruments_;
};

/// Overflow behaviour for a receiver's inbox (mirrors msgq policies).
enum class OverflowPolicy : std::uint8_t { kBlock, kDropNewest };

class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;

  virtual std::shared_ptr<Sender> make_sender(std::string name) = 0;
  virtual std::shared_ptr<Receiver> make_receiver(
      std::string name, std::size_t high_water_mark = 1 << 16,
      OverflowPolicy policy = OverflowPolicy::kBlock) = 0;

  /// Instrument every sender/receiver this transport creates (including
  /// already-created ones). Safe to call once; null registry is a no-op.
  virtual void attach_metrics(obs::MetricsRegistry* registry) = 0;
};

namespace detail {
/// Evaluate the `transport.before_send` chaos point. Returns true when
/// the send should be refused (kDrop/kFail/kCrash); kDelay sleeps here.
bool send_faulted();
}  // namespace detail

}  // namespace fsmon::transport
