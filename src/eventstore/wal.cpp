#include "src/eventstore/wal.hpp"

#include <chrono>
#include <cstring>

#include "src/chaos/fault.hpp"
#include "src/common/crc32.hpp"

namespace fsmon::eventstore {

using common::ErrorCode;
using common::Result;
using common::Status;

namespace {

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// Wall-clock microseconds of real I/O work, not simulated time: WAL
// writes always hit the actual filesystem.
std::uint64_t elapsed_us(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

}  // namespace

WalMetrics WalMetrics::create(obs::MetricsRegistry& registry,
                              const obs::Labels& labels) {
  WalMetrics m;
  m.appends = &registry.counter("wal.appends", labels, "Records appended to WAL segments",
                                "records");
  m.append_bytes = &registry.counter("wal.append_bytes", labels,
                                     "Framed bytes written to WAL segments", "bytes");
  m.append_latency_us = &registry.histogram(
      "wal.append_latency_us", labels, "Wall-clock latency of one framed WAL append", "us");
  m.fsyncs = &registry.counter("wal.fsyncs", labels,
                               "Explicit WAL flushes to the OS (durability barrier)",
                               "flushes");
  m.fsync_latency_us = &registry.histogram("wal.fsync_latency_us", labels,
                                           "Wall-clock latency of one WAL flush", "us");
  m.batch_size = &registry.histogram("wal.batch_size", labels,
                                     "Records committed per WAL append_batch call",
                                     "records");
  return m;
}

WalSegment::WalSegment(std::filesystem::path path, const WalMetrics* metrics)
    : path_(std::move(path)), metrics_(metrics) {
  std::filesystem::create_directories(path_.parent_path());
  out_.open(path_, std::ios::binary | std::ios::app);
  if (out_) {
    bytes_written_ = std::filesystem::exists(path_) ? std::filesystem::file_size(path_) : 0;
  }
}

WalSegment::~WalSegment() {
  if (out_.is_open()) out_.flush();
}

Status WalSegment::append(common::EventId id, std::span<const std::byte> payload) {
  const std::span<const std::byte> one[] = {payload};
  return append_batch(id, one);
}

Status WalSegment::append_batch(common::EventId first_id,
                                std::span<const std::span<const std::byte>> payloads) {
  if (payloads.empty()) return Status::ok();
  if (!out_) return Status(ErrorCode::kUnavailable, "wal segment not writable: " + path_.string());
  const auto start = std::chrono::steady_clock::now();
  std::size_t total = 0;
  for (const auto& payload : payloads) total += 16 + payload.size();
  std::vector<std::byte> buffer;
  buffer.reserve(total);
  std::size_t last_record_start = 0;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const std::size_t record_start = buffer.size();
    last_record_start = record_start;
    put_u32(buffer, static_cast<std::uint32_t>(payloads[i].size()));
    put_u64(buffer, first_id + i);
    buffer.insert(buffer.end(), payloads[i].begin(), payloads[i].end());
    const std::uint32_t crc =
        common::crc32(std::span(buffer.data() + record_start, buffer.size() - record_start));
    put_u32(buffer, crc);
  }
  // Chaos: a torn write persists only a prefix of the batch — the tail
  // record is cut mid-frame, exactly what a crash between write() and
  // the disk finishing leaves behind. scan() must recover the intact
  // prefix and recovery must truncate the torn bytes away.
  if (auto outcome = chaos::fault("wal.torn_write");
      outcome && outcome.action == chaos::FaultAction::kFail) {
    std::size_t cut = last_record_start + (buffer.size() - last_record_start) / 2;
    if (outcome.arg > 0 && outcome.arg < buffer.size())
      cut = buffer.size() - static_cast<std::size_t>(outcome.arg);
    out_.write(reinterpret_cast<const char*>(buffer.data()),
               static_cast<std::streamsize>(cut));
    out_.flush();
    bytes_written_ += cut;
    return Status(ErrorCode::kUnavailable, "injected torn write");
  }
  out_.write(reinterpret_cast<const char*>(buffer.data()),
             static_cast<std::streamsize>(buffer.size()));
  if (!out_) return Status(ErrorCode::kUnavailable, "wal write failed");
  bytes_written_ += buffer.size();
  if (metrics_ != nullptr) {
    metrics_->appends->inc(payloads.size());
    metrics_->append_bytes->inc(buffer.size());
    metrics_->append_latency_us->record(elapsed_us(start));
    if (metrics_->batch_size != nullptr) metrics_->batch_size->record(payloads.size());
  }
  return Status::ok();
}

Status WalSegment::flush() {
  const auto start = std::chrono::steady_clock::now();
  out_.flush();
  if (!out_) return Status(ErrorCode::kUnavailable, "wal flush failed");
  if (metrics_ != nullptr) {
    metrics_->fsyncs->inc();
    metrics_->fsync_latency_us->record(elapsed_us(start));
  }
  return Status::ok();
}

Result<std::vector<WalRecord>> WalSegment::scan(const std::filesystem::path& path,
                                                std::uint64_t* intact_bytes) {
  std::vector<WalRecord> records;
  auto streamed = stream(path, 0, [&](const WalRecordView& view) {
    WalRecord record;
    record.id = view.id;
    record.payload.assign(view.payload.begin(), view.payload.end());
    records.push_back(std::move(record));
    return true;
  });
  if (!streamed) return streamed.status();
  if (intact_bytes != nullptr) *intact_bytes = streamed.value();
  return records;
}

Result<std::uint64_t> WalSegment::stream(
    const std::filesystem::path& path, std::uint64_t offset,
    const std::function<bool(const WalRecordView&)>& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status(ErrorCode::kNotFound, path.string());
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  if (offset > size)
    return Status(ErrorCode::kInvalid, "wal stream offset past EOF in " + path.string());
  in.seekg(static_cast<std::streamoff>(offset));

  std::vector<std::byte> buffer;  // one record frame at a time
  std::byte header[12];
  std::uint64_t pos = offset;
  while (pos < size) {
    if (size - pos < 16) break;  // torn tail header
    in.read(reinterpret_cast<char*>(header), sizeof(header));
    if (!in) return Status(ErrorCode::kUnavailable, "wal read failed in " + path.string());
    const std::uint32_t len = get_u32(header);
    if (len > (1u << 30))
      return Status(ErrorCode::kCorrupt, "wal record length corrupt in " + path.string());
    const std::uint64_t total = 16ull + len;
    if (size - pos < total) break;  // torn tail body
    buffer.resize(total);
    std::memcpy(buffer.data(), header, sizeof(header));
    in.read(reinterpret_cast<char*>(buffer.data() + sizeof(header)),
            static_cast<std::streamsize>(total - sizeof(header)));
    if (!in) return Status(ErrorCode::kUnavailable, "wal read failed in " + path.string());
    const std::uint32_t expected = get_u32(buffer.data() + total - 4);
    const std::uint32_t actual = common::crc32(std::span(buffer.data(), total - 4));
    if (expected != actual) {
      // A bad CRC at the very end is a torn write; earlier means real
      // corruption.
      if (pos + total >= size) break;
      return Status(ErrorCode::kCorrupt, "wal CRC mismatch mid-file in " + path.string());
    }
    WalRecordView view;
    view.id = get_u64(buffer.data() + 4);
    view.payload = std::span(buffer.data() + 12, len);
    view.offset = pos;
    view.framed_size = total;
    const bool keep_going = fn(view);
    pos += total;
    if (!keep_going) break;
  }
  return pos;
}

}  // namespace fsmon::eventstore
