// Sparse per-segment record index: the seek structure that lets
// events_since() replay from sealed WAL segments on disk instead of a
// resident copy of every payload.
//
// One SegmentIndex summarizes one WAL segment file: id range, record
// count, payload bytes, the framed byte length it covers, and a sparse
// table mapping every K-th record id to its byte offset in the segment.
// The index is built incrementally while the segment is active (one
// note_record() per append), persisted as `events-*.idx` next to the
// segment when it seals, and rebuilt from a full scan at recovery when
// the file is missing, corrupt, or stale (its recorded file length no
// longer matches the segment on disk — e.g. after a torn-tail
// truncation). The index is a pure accelerator: losing it costs one
// scan, never data.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "src/common/status.hpp"
#include "src/common/types.hpp"

namespace fsmon::eventstore {

struct SegmentIndexEntry {
  common::EventId id = 0;      ///< Id of the indexed record.
  std::uint64_t offset = 0;    ///< Byte offset of its frame in the segment.
};

class SegmentIndex {
 public:
  /// Index every K-th record. At the default WAL record shape (~100
  /// framed bytes) this keeps the resident index ~3 orders of magnitude
  /// smaller than the data while bounding a seek's over-read to K-1
  /// records.
  static constexpr std::uint32_t kDefaultStride = 64;

  std::uint32_t stride = kDefaultStride;
  common::EventId first_id = 0;     ///< 0 = no records.
  common::EventId last_id = 0;
  std::uint64_t record_count = 0;
  std::uint64_t payload_bytes = 0;  ///< Sum of record payload sizes.
  std::uint64_t file_bytes = 0;     ///< Framed bytes this index covers.
  std::vector<SegmentIndexEntry> entries;

  /// Account one record appended (or scanned) at `offset`; adds a sparse
  /// entry for every stride-th record. Must be called in id order.
  void note_record(common::EventId id, std::uint64_t offset, std::uint64_t payload_size);

  /// Byte offset to start scanning from when looking for `target`: the
  /// offset of the greatest indexed record with id <= target, else 0.
  std::uint64_t seek(common::EventId target) const;

  /// Persist to `path` (write temp + rename, CRC-trailed). Best-effort
  /// durability: a lost index is rebuilt by the next recovery.
  common::Status save(const std::filesystem::path& path) const;

  /// Load and validate a persisted index. kCorrupt on CRC/format
  /// mismatch; kNotFound when absent.
  static common::Result<SegmentIndex> load(const std::filesystem::path& path);

  /// `events-NNN.wal` -> `events-NNN.idx`.
  static std::filesystem::path path_for(const std::filesystem::path& wal_path);
};

}  // namespace fsmon::eventstore
