// Reliable event store (the paper's MySQL substitute).
//
// The interface layer "provid[es] fault-tolerance by storing all events
// received from the resolution layer into an event store (database).
// Once events have been retrieved from FSMonitor, they are flagged as
// having been reported and can be removed from the database. The size of
// this database is configurable" (Section III-A3). The aggregator's
// persister thread appends here; consumers replay historic events after
// a failure via events_since().
//
// Implementation: sealed WAL segments on disk are the authoritative
// replay source. Each segment carries a sparse index (every K-th record
// id -> byte offset, persisted as `events-*.idx` at seal time, rebuilt
// from a scan when missing or stale) so events_since() binary-searches
// the segment list, seeks into the right segment, and streams records
// from disk. RAM holds only a bounded tail cache — the active segment's
// live records plus the most recent `cache_bytes` of sealed payload — so
// the hot live path never touches disk while resident memory stays
// configurable regardless of how far a consumer lags.
//
// Ids are assigned consecutively by the interface layer, which lets the
// store track live records as the arithmetic range
// (dropped_upto_, last_id_] and replace per-record `reported` flags with
// a single persisted reported-watermark id: mark_reported() is O(1), and
// a purge cycle drops the reported prefix and deletes segments that no
// longer hold live records. A hard size cap evicts oldest records even
// if unreported (configurable, as in the paper).
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/common/status.hpp"
#include "src/common/types.hpp"
#include "src/eventstore/segment_index.hpp"
#include "src/eventstore/wal.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::eventstore {

struct EventStoreOptions {
  std::filesystem::path directory;
  std::uint64_t segment_bytes = 4ull << 20;  ///< Rotate segments at this size.
  /// Hard cap on retained payload bytes; 0 = unlimited. When exceeded the
  /// oldest records are evicted regardless of reported flag.
  std::uint64_t max_bytes = 0;
  /// Resident payload budget for the in-memory tail cache. The active
  /// segment's live records always stay cached (their WAL bytes may not
  /// be flushed yet); sealed records beyond the budget are evicted and
  /// served from disk via the segment index. 0 = cache only the active
  /// segment.
  std::uint64_t cache_bytes = 4ull << 20;
  /// Sparse-index granularity: one offset entry every K records.
  std::uint32_t index_stride = SegmentIndex::kDefaultStride;
  /// Labels on every store.* / wal.* metric this store registers. A
  /// sharded aggregator runs one store per shard against one registry;
  /// labels (shard=<k>) keep the per-shard gauges distinct.
  obs::Labels labels;
  bool flush_each_append = false;  ///< Durability vs throughput knob.
  /// Observability registry; null = uninstrumented. Registers wal.* and
  /// store.* metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

struct StoredEvent {
  common::EventId id = 0;
  std::vector<std::byte> payload;
  bool reported = false;
};

class EventStore {
 public:
  /// Opens the store, recovering any records already on disk.
  explicit EventStore(EventStoreOptions options);

  /// Append an event; ids must be consecutive (the first append to an
  /// empty store fixes the base id).
  common::Status append(common::EventId id, std::span<const std::byte> payload);

  /// Group commit: append payloads with consecutive ids starting at
  /// `first_id` under one lock acquisition, one WAL write per segment
  /// (batches are chunked across segment rolls), and — when
  /// `flush_each_append` is set — exactly one flush for the whole batch.
  common::Status append_batch(common::EventId first_id,
                              std::span<const std::span<const std::byte>> payloads);

  /// Events with id > `after_id`, oldest first, up to `max_events`.
  /// Served from the tail cache when resident, else streamed from sealed
  /// segments on disk. An unreadable segment ends the scan early (logged).
  std::vector<StoredEvent> events_since(common::EventId after_id,
                                        std::size_t max_events = SIZE_MAX) const;

  /// Stream events with id > `after_id`, oldest first, up to
  /// `max_events`, without materializing them. `fn(id, payload, reported)`
  /// runs under the store lock with a payload view valid only for that
  /// call (do not re-enter the store from it); returning false stops the
  /// scan. Returns non-OK if a sealed segment could not be read.
  common::Status for_each_since(
      common::EventId after_id, std::size_t max_events,
      const std::function<bool(common::EventId, std::span<const std::byte>, bool)>& fn)
      const;

  /// Flag all events with id <= `up_to_id` as reported. O(1): advances a
  /// persisted watermark instead of touching records.
  void mark_reported(common::EventId up_to_id);

  /// Drop reported records from the head of the store and delete any
  /// segment files left with no live records. Returns records removed.
  std::size_t purge_reported();

  std::size_t live_records() const;
  std::uint64_t live_bytes() const;
  common::EventId last_id() const;
  common::EventId first_id() const;
  std::size_t segment_count() const;

  /// Payload bytes currently resident in the tail cache (the store's
  /// only per-record RAM). Bounded by cache_bytes plus the active
  /// segment's live payload.
  std::uint64_t cache_resident_bytes() const;

  /// Records visited by mark_reported() since the store opened. Pinned
  /// at 0 by a regression test: acks advance a watermark and must never
  /// rescan live records (the old implementation was O(live) per ack).
  std::uint64_t ack_scan_records() const;

  /// Segment indexes rebuilt by a full scan during recovery (missing,
  /// corrupt, or stale `.idx` files).
  std::uint64_t index_rebuilds() const;

  common::Status flush();

 private:
  struct Segment {
    std::filesystem::path path;
    std::unique_ptr<WalSegment> wal;  ///< Null once sealed.
    SegmentIndex index;               ///< Covers every record in the file.
    /// Payload bytes of live (unpurged) records; <= index.payload_bytes.
    std::uint64_t live_payload = 0;
  };

  struct CachedRecord {
    common::EventId id = 0;
    std::vector<std::byte> payload;
  };

  void recover();
  void roll_segment_locked();
  /// Flush + close the active segment. Persists its index unless
  /// `write_index` is false (used after a failed append, when the file
  /// tail holds bytes the index does not cover). Deletes the file when
  /// the segment never committed a record.
  void seal_active_locked(bool write_index);
  void enforce_cap_locked();
  /// Evict sealed records from the cache front until the payload budget
  /// holds; the active segment's live records are never evicted.
  void trim_cache_locked();
  /// Drop all live records with id <= `up_to` (clamped down if a sealed
  /// segment cannot be read): pops cache entries, deletes dead sealed
  /// segments, persists the purge watermark. Returns records removed.
  std::size_t drop_through_locked(common::EventId up_to);
  /// Payload bytes of records with id in (`from_excl`, `to_incl`] inside
  /// `seg`, from the cache when resident, else streamed from disk.
  common::Result<std::uint64_t> range_payload_bytes_locked(
      const Segment& seg, common::EventId from_excl, common::EventId to_incl) const;
  std::filesystem::path segment_path(common::EventId first_id) const;
  std::filesystem::path purge_watermark_path() const;
  std::filesystem::path reported_watermark_path() const;

  /// Updates store.* gauges from current locked state; no-op when
  /// uninstrumented.
  void update_gauges_locked();

  EventStoreOptions options_;
  WalMetrics wal_metrics_;  ///< Shared by every segment; zeroed when unused.
  obs::Counter* purged_counter_ = nullptr;
  obs::Counter* seal_flush_failures_counter_ = nullptr;
  obs::Counter* index_rebuilds_counter_ = nullptr;
  obs::Counter* replay_cache_counter_ = nullptr;
  obs::Counter* replay_disk_counter_ = nullptr;
  obs::Gauge* live_records_gauge_ = nullptr;
  obs::Gauge* live_bytes_gauge_ = nullptr;
  obs::Gauge* segments_gauge_ = nullptr;
  obs::Gauge* cache_bytes_gauge_ = nullptr;
  mutable std::mutex mu_;
  /// Contiguous suffix of live records ending at last_id_; the only
  /// per-record payload copies held in RAM.
  std::deque<CachedRecord> cache_;
  std::uint64_t cache_payload_bytes_ = 0;
  std::uint64_t live_bytes_ = 0;
  std::vector<Segment> segments_;  // ordered; back() is active when open
  common::EventId last_id_ = 0;
  common::EventId dropped_upto_ = 0;   ///< All ids <= this are gone.
  common::EventId reported_upto_ = 0;  ///< All ids <= this are acked.
  std::uint64_t ack_scan_records_ = 0;
  std::uint64_t index_rebuilds_ = 0;
};

}  // namespace fsmon::eventstore
