// Reliable event store (the paper's MySQL substitute).
//
// The interface layer "provid[es] fault-tolerance by storing all events
// received from the resolution layer into an event store (database).
// Once events have been retrieved from FSMonitor, they are flagged as
// having been reported and can be removed from the database. The size of
// this database is configurable" (Section III-A3). The aggregator's
// persister thread appends here; consumers replay historic events after
// a failure via events_since().
//
// Implementation: WAL segments on disk for durability plus an in-memory
// index ordered by event id. Records are appended strictly in id order.
// A purge cycle removes reported records, oldest first, and deletes
// segments that no longer hold live records; a hard size cap evicts
// oldest records even if unreported (configurable, as in the paper).
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/common/status.hpp"
#include "src/common/types.hpp"
#include "src/eventstore/wal.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::eventstore {

struct EventStoreOptions {
  std::filesystem::path directory;
  std::uint64_t segment_bytes = 4ull << 20;  ///< Rotate segments at this size.
  /// Hard cap on retained payload bytes; 0 = unlimited. When exceeded the
  /// oldest records are evicted regardless of reported flag.
  std::uint64_t max_bytes = 0;
  bool flush_each_append = false;  ///< Durability vs throughput knob.
  /// Observability registry; null = uninstrumented. Registers wal.* and
  /// store.* metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

struct StoredEvent {
  common::EventId id = 0;
  std::vector<std::byte> payload;
  bool reported = false;
};

class EventStore {
 public:
  /// Opens the store, recovering any records already on disk.
  explicit EventStore(EventStoreOptions options);

  /// Append an event; ids must be strictly increasing.
  common::Status append(common::EventId id, std::span<const std::byte> payload);

  /// Group commit: append payloads with consecutive ids starting at
  /// `first_id` under one lock acquisition, one WAL write per segment
  /// (batches are chunked across segment rolls), and — when
  /// `flush_each_append` is set — exactly one flush for the whole batch.
  common::Status append_batch(common::EventId first_id,
                              std::span<const std::span<const std::byte>> payloads);

  /// Events with id > `after_id`, oldest first, up to `max_events`.
  std::vector<StoredEvent> events_since(common::EventId after_id,
                                        std::size_t max_events = SIZE_MAX) const;

  /// Flag all events with id <= `up_to_id` as reported.
  void mark_reported(common::EventId up_to_id);

  /// Drop reported records from the head of the store and delete any
  /// segment files left with no live records. Returns records removed.
  std::size_t purge_reported();

  std::size_t live_records() const;
  std::uint64_t live_bytes() const;
  common::EventId last_id() const;
  common::EventId first_id() const;
  std::size_t segment_count() const;

  common::Status flush();

 private:
  struct Segment {
    std::filesystem::path path;
    std::unique_ptr<WalSegment> wal;  ///< Null for recovered, sealed segments.
    common::EventId first_id = 0;
    common::EventId last_id = 0;
    std::uint64_t bytes = 0;
  };

  void recover();
  void roll_segment_locked();
  void enforce_cap_locked();
  void drop_record_locked();
  /// Persist the highest dropped id so recovery does not resurrect
  /// purged records that share a segment with live ones.
  void write_watermark_locked();
  std::filesystem::path segment_path(common::EventId first_id) const;
  std::filesystem::path watermark_path() const;

  /// Updates store.* gauges from current locked state; no-op when
  /// uninstrumented.
  void update_gauges_locked();

  EventStoreOptions options_;
  WalMetrics wal_metrics_;  ///< Shared by every segment; zeroed when unused.
  obs::Counter* purged_counter_ = nullptr;
  obs::Gauge* live_records_gauge_ = nullptr;
  obs::Gauge* live_bytes_gauge_ = nullptr;
  obs::Gauge* segments_gauge_ = nullptr;
  mutable std::mutex mu_;
  std::deque<StoredEvent> records_;  // ordered by id
  std::uint64_t live_bytes_ = 0;
  std::vector<Segment> segments_;   // ordered; back() is active
  common::EventId last_id_ = 0;
  common::EventId dropped_upto_ = 0;  ///< All ids <= this are gone.
};

}  // namespace fsmon::eventstore
