// Write-ahead log segment: the durability primitive under the reliable
// event store.
//
// One segment is one file of records:
//   u32 payload_len | u64 event_id | payload bytes | u32 crc
// where the CRC covers length, id, and payload. Appends go through a
// buffered writer with explicit flush; scan() recovers every intact
// record and tolerates a torn tail (a partially written final record is
// truncated away, matching crash semantics).
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.hpp"
#include "src/common/types.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::eventstore {

struct WalRecord {
  common::EventId id = 0;
  std::vector<std::byte> payload;
};

/// One record surfaced by stream(): borrowed views, valid only inside
/// the callback.
struct WalRecordView {
  common::EventId id = 0;
  std::span<const std::byte> payload;
  std::uint64_t offset = 0;       ///< Byte offset of the record frame.
  std::uint64_t framed_size = 0;  ///< 16 + payload.size().
};

/// Shared instrument handles for every segment of one store (wal.*).
/// Owned by the EventStore, outliving its segments.
struct WalMetrics {
  obs::Counter* appends = nullptr;
  obs::Counter* append_bytes = nullptr;
  obs::HistogramMetric* append_latency_us = nullptr;
  obs::Counter* fsyncs = nullptr;
  obs::HistogramMetric* fsync_latency_us = nullptr;
  obs::HistogramMetric* batch_size = nullptr;

  static WalMetrics create(obs::MetricsRegistry& registry,
                           const obs::Labels& labels = {});
};

class WalSegment {
 public:
  /// Opens (creating if needed) the segment file for appending.
  /// `metrics` (optional) must outlive the segment.
  explicit WalSegment(std::filesystem::path path, const WalMetrics* metrics = nullptr);
  ~WalSegment();

  WalSegment(const WalSegment&) = delete;
  WalSegment& operator=(const WalSegment&) = delete;

  common::Status append(common::EventId id, std::span<const std::byte> payload);

  /// Group commit: frame every payload (record i gets id `first_id + i`)
  /// into one buffer and issue a single write. Callers that flush after
  /// this pay one durability barrier for the whole batch instead of one
  /// per record.
  common::Status append_batch(common::EventId first_id,
                              std::span<const std::span<const std::byte>> payloads);

  /// Flush buffered appends to the OS.
  common::Status flush();

  std::uint64_t bytes_written() const { return bytes_written_; }
  const std::filesystem::path& path() const { return path_; }

  /// Read all intact records from a segment file. A torn final record is
  /// ignored (crash recovery); corruption before the tail yields
  /// kCorrupt. The file need not be open for writing by anyone.
  /// `intact_bytes` (optional) receives the byte length of the intact
  /// record prefix — recovery truncates the file to it so a reopened
  /// segment never appends after torn garbage.
  static common::Result<std::vector<WalRecord>> scan(const std::filesystem::path& path,
                                                     std::uint64_t* intact_bytes = nullptr);

  /// Stream intact records starting at byte `offset` (which must be a
  /// record boundary, e.g. from SegmentIndex::seek) without materializing
  /// the whole file. `fn` is called once per record with borrowed views;
  /// returning false stops early. A torn tail ends the stream cleanly;
  /// a CRC mismatch before the tail yields kCorrupt. Returns the byte
  /// offset where streaming stopped (== the intact prefix length when
  /// `fn` never stops early).
  static common::Result<std::uint64_t> stream(
      const std::filesystem::path& path, std::uint64_t offset,
      const std::function<bool(const WalRecordView&)>& fn);

 private:
  std::filesystem::path path_;
  std::ofstream out_;
  std::uint64_t bytes_written_ = 0;
  const WalMetrics* metrics_ = nullptr;
};

}  // namespace fsmon::eventstore
