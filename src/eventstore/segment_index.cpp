#include "src/eventstore/segment_index.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "src/common/crc32.hpp"

namespace fsmon::eventstore {

using common::ErrorCode;
using common::Result;
using common::Status;

namespace {

constexpr std::uint32_t kMagic = 0x58495346;  // "FSIX" little-endian
constexpr std::uint32_t kVersion = 1;

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void SegmentIndex::note_record(common::EventId id, std::uint64_t offset,
                               std::uint64_t payload_size) {
  if (stride == 0) stride = kDefaultStride;
  if (record_count % stride == 0) entries.push_back(SegmentIndexEntry{id, offset});
  if (record_count == 0) first_id = id;
  last_id = id;
  ++record_count;
  payload_bytes += payload_size;
  file_bytes = offset + 16 + payload_size;
}

std::uint64_t SegmentIndex::seek(common::EventId target) const {
  auto it = std::upper_bound(entries.begin(), entries.end(), target,
                             [](common::EventId t, const SegmentIndexEntry& e) {
                               return t < e.id;
                             });
  if (it == entries.begin()) return 0;
  return std::prev(it)->offset;
}

Status SegmentIndex::save(const std::filesystem::path& path) const {
  std::vector<std::byte> buffer;
  buffer.reserve(64 + entries.size() * 16);
  put_u32(buffer, kMagic);
  put_u32(buffer, kVersion);
  put_u32(buffer, stride);
  put_u32(buffer, 0);  // reserved / alignment
  put_u64(buffer, record_count);
  put_u64(buffer, first_id);
  put_u64(buffer, last_id);
  put_u64(buffer, payload_bytes);
  put_u64(buffer, file_bytes);
  put_u64(buffer, entries.size());
  for (const auto& entry : entries) {
    put_u64(buffer, entry.id);
    put_u64(buffer, entry.offset);
  }
  put_u32(buffer, common::crc32(std::span(buffer.data(), buffer.size())));

  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status(ErrorCode::kUnavailable, "cannot write " + tmp);
    out.write(reinterpret_cast<const char*>(buffer.data()),
              static_cast<std::streamsize>(buffer.size()));
    out.flush();
    if (!out) return Status(ErrorCode::kUnavailable, "short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status(ErrorCode::kUnavailable, "rename " + tmp + ": " + ec.message());
  return Status::ok();
}

Result<SegmentIndex> SegmentIndex::load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status(ErrorCode::kNotFound, path.string());
  std::vector<std::byte> data;
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  data.resize(size);
  in.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(size));
  if (!in) return Status(ErrorCode::kCorrupt, "short read from " + path.string());

  constexpr std::size_t kHeader = 4 * 4 + 6 * 8;
  if (size < kHeader + 4)
    return Status(ErrorCode::kCorrupt, "index too small: " + path.string());
  const std::uint32_t expected = get_u32(data.data() + size - 4);
  const std::uint32_t actual = common::crc32(std::span(data.data(), size - 4));
  if (expected != actual)
    return Status(ErrorCode::kCorrupt, "index CRC mismatch: " + path.string());
  if (get_u32(data.data()) != kMagic || get_u32(data.data() + 4) != kVersion)
    return Status(ErrorCode::kCorrupt, "index magic/version mismatch: " + path.string());

  SegmentIndex index;
  index.stride = get_u32(data.data() + 8);
  index.record_count = get_u64(data.data() + 16);
  index.first_id = get_u64(data.data() + 24);
  index.last_id = get_u64(data.data() + 32);
  index.payload_bytes = get_u64(data.data() + 40);
  index.file_bytes = get_u64(data.data() + 48);
  const std::uint64_t entry_count = get_u64(data.data() + 56);
  if (index.stride == 0 || size != kHeader + entry_count * 16 + 4)
    return Status(ErrorCode::kCorrupt, "index entry table truncated: " + path.string());
  index.entries.reserve(entry_count);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    const std::byte* p = data.data() + kHeader + i * 16;
    index.entries.push_back(SegmentIndexEntry{get_u64(p), get_u64(p + 8)});
  }
  return index;
}

std::filesystem::path SegmentIndex::path_for(const std::filesystem::path& wal_path) {
  auto idx = wal_path;
  idx.replace_extension(".idx");
  return idx;
}

}  // namespace fsmon::eventstore
