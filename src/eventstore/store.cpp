#include "src/eventstore/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "src/common/logging.hpp"

namespace fsmon::eventstore {

using common::ErrorCode;
using common::Result;
using common::Status;

namespace {

/// Write a decimal id to `path` via temp file + flush + atomic rename so
/// a crash mid-write leaves the previous value intact. `do_fsync` adds a
/// durability barrier — required for the purge watermark (losing it
/// resurrects purged ids), skipped for the reported watermark (losing it
/// merely re-replays acked events, which consumers dedup).
Status write_id_file_atomic(const std::filesystem::path& path, std::uint64_t value,
                            bool do_fsync) {
  const std::string tmp = path.string() + ".tmp";
  char buf[32];
  const int len = std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status(ErrorCode::kUnavailable, "cannot open " + tmp);
  ssize_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, buf + written, static_cast<std::size_t>(len - written));
    if (n < 0) {
      ::close(fd);
      return Status(ErrorCode::kUnavailable, "cannot write " + tmp);
    }
    written += n;
  }
  if (do_fsync) ::fsync(fd);
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status(ErrorCode::kUnavailable, "rename " + tmp + ": " + ec.message());
  return Status::ok();
}

common::EventId read_id_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  common::EventId value = 0;
  if (in >> value) return value;
  return 0;
}

}  // namespace

EventStore::EventStore(EventStoreOptions options) : options_(std::move(options)) {
  if (options_.index_stride == 0) options_.index_stride = SegmentIndex::kDefaultStride;
  if (options_.metrics != nullptr) {
    auto& registry = *options_.metrics;
    wal_metrics_ = WalMetrics::create(registry, options_.labels);
    purged_counter_ = &registry.counter("store.purged_records", options_.labels,
                                        "Records removed by purge cycles or the size cap",
                                        "records");
    seal_flush_failures_counter_ =
        &registry.counter("store.seal_flush_failures", options_.labels,
                          "Segment seals whose final WAL flush failed", "seals");
    index_rebuilds_counter_ = &registry.counter(
        "store.index_rebuilds", options_.labels,
        "Segment indexes rebuilt by a recovery scan (missing/corrupt/stale .idx)",
        "segments");
    replay_cache_counter_ = &registry.counter(
        "store.replay_cache_records", options_.labels,
        "Replayed records served from the in-memory tail cache", "records");
    replay_disk_counter_ =
        &registry.counter("store.replay_disk_records", options_.labels,
                          "Replayed records streamed from sealed segments on disk",
                          "records");
    live_records_gauge_ = &registry.gauge("store.live_records", options_.labels,
                                          "Records currently retained in the store",
                                          "records");
    live_bytes_gauge_ = &registry.gauge("store.live_bytes", options_.labels,
                                        "Payload bytes currently retained in the store",
                                        "bytes");
    segments_gauge_ = &registry.gauge("store.segments", options_.labels,
                                      "WAL segment files backing the store", "segments");
    cache_bytes_gauge_ = &registry.gauge(
        "store.cache_bytes", options_.labels,
        "Payload bytes resident in the in-memory tail cache", "bytes");
  }
  std::filesystem::create_directories(options_.directory);
  recover();
  update_gauges_locked();  // safe pre-threading: no lock needed yet
}

void EventStore::update_gauges_locked() {
  if (live_records_gauge_ == nullptr) return;
  live_records_gauge_->set(static_cast<std::int64_t>(last_id_ - dropped_upto_));
  live_bytes_gauge_->set(static_cast<std::int64_t>(live_bytes_));
  segments_gauge_->set(static_cast<std::int64_t>(segments_.size()));
  cache_bytes_gauge_->set(static_cast<std::int64_t>(cache_payload_bytes_));
}

std::filesystem::path EventStore::purge_watermark_path() const {
  return options_.directory / "purge.watermark";
}

std::filesystem::path EventStore::reported_watermark_path() const {
  return options_.directory / "reported.watermark";
}

std::filesystem::path EventStore::segment_path(common::EventId first_id) const {
  char name[64];
  std::snprintf(name, sizeof(name), "events-%020" PRIu64 ".wal", first_id);
  return options_.directory / name;
}

void EventStore::recover() {
  // Records at or below the purge watermark were dropped before the
  // restart; skip them even if their segment file survives.
  dropped_upto_ = read_id_file(purge_watermark_path());
  const common::EventId reported = read_id_file(reported_watermark_path());
  // Collect segment files in name order (names embed the first id,
  // zero-padded, so lexicographic order == id order).
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(options_.directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".wal")
      paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    const auto idx_path = SegmentIndex::path_for(path);
    Segment segment;
    segment.path = path;
    bool have_index = false;
    if (auto loaded = SegmentIndex::load(idx_path)) {
      // An index is trusted only when it covers the file exactly: a size
      // mismatch means the segment was torn or re-appended after the
      // index was written. Overlapping ids (first_id <= a previous
      // segment's last) force a rescan so the dedup logic below applies.
      std::error_code ec;
      const auto on_disk = std::filesystem::file_size(path, ec);
      if (!ec && loaded.value().record_count > 0 &&
          loaded.value().file_bytes == on_disk && loaded.value().first_id > last_id_) {
        segment.index = std::move(loaded.value());
        have_index = true;
      }
    }
    if (!have_index) {
      // Rebuild by scanning the file. The index is a pure accelerator, so
      // this path costs one sequential read, never data.
      SegmentIndex rebuilt;
      rebuilt.stride = options_.index_stride;
      auto streamed =
          WalSegment::stream(path, 0, [&](const WalRecordView& view) {
            if (view.id <= last_id_) return true;  // duplicate from a re-appended tail
            rebuilt.note_record(view.id, view.offset, view.payload.size());
            return true;
          });
      if (!streamed) {
        FSMON_WARN("eventstore", "skipping unreadable segment ", path.string(), ": ",
                   streamed.status().to_string());
        continue;
      }
      ++index_rebuilds_;
      if (index_rebuilds_counter_ != nullptr) index_rebuilds_counter_->inc();
      // Truncate a torn tail now: recovered segments stay sealed, and the
      // rebuilt index must cover the file exactly so later recoveries can
      // trust it.
      const std::uint64_t intact = streamed.value();
      std::error_code ec;
      const auto on_disk = std::filesystem::file_size(path, ec);
      if (!ec && on_disk > intact) {
        std::filesystem::resize_file(path, intact, ec);
        FSMON_WARN("eventstore", "truncated torn tail of ", path.string(), ": ",
                   on_disk - intact, " bytes");
      }
      rebuilt.file_bytes = intact;
      segment.index = std::move(rebuilt);
      if (segment.index.record_count > 0) {
        if (auto s = segment.index.save(idx_path); !s.is_ok())
          FSMON_WARN("eventstore", "cannot persist rebuilt index ", idx_path.string(),
                     ": ", s.to_string());
      }
    }
    if (segment.index.record_count == 0 || segment.index.last_id <= dropped_upto_) {
      // Empty or fully purged before the restart: delete instead of
      // registering so store.segments stays accurate.
      std::error_code ec;
      std::filesystem::remove(path, ec);
      std::filesystem::remove(idx_path, ec);
      continue;
    }
    if (segment.index.first_id > dropped_upto_) {
      segment.live_payload = segment.index.payload_bytes;
    } else {
      // Straddles the purge watermark: sum the live suffix from disk.
      auto live = range_payload_bytes_locked(segment, dropped_upto_,
                                             segment.index.last_id);
      if (live) {
        segment.live_payload = live.value();
      } else {
        FSMON_WARN("eventstore", "cannot size live suffix of ", path.string(), ": ",
                   live.status().to_string(), "; over-counting whole segment");
        segment.live_payload = segment.index.payload_bytes;
      }
    }
    live_bytes_ += segment.live_payload;
    last_id_ = segment.index.last_id;
    segments_.push_back(std::move(segment));
  }
  // A fully purged store still remembers where ids left off, so appends
  // resume without resurrecting purged ids.
  last_id_ = std::max(last_id_, dropped_upto_);
  // No watermark file but surviving segments (first boot used a non-1
  // base id, or the watermark was lost): everything below the first
  // on-disk record is gone by definition.
  if (!segments_.empty() && segments_.front().index.first_id > dropped_upto_ + 1)
    dropped_upto_ = segments_.front().index.first_id - 1;
  reported_upto_ = std::min(reported, last_id_);
}

Status EventStore::append(common::EventId id, std::span<const std::byte> payload) {
  const std::span<const std::byte> one[] = {payload};
  return append_batch(id, one);
}

Status EventStore::append_batch(common::EventId first_id,
                                std::span<const std::span<const std::byte>> payloads) {
  if (payloads.empty()) return Status::ok();
  std::lock_guard lock(mu_);
  const bool virgin = last_id_ == 0 && dropped_upto_ == 0;
  if (virgin) {
    if (first_id == 0) return Status(ErrorCode::kInvalid, "event id 0 is reserved");
    // The first append fixes the id base; live accounting is the range
    // (dropped_upto_, last_id_] from here on.
    dropped_upto_ = first_id - 1;
  } else if (first_id != last_id_ + 1) {
    return Status(ErrorCode::kInvalid, "event ids must be consecutive");
  }
  std::size_t i = 0;
  while (i < payloads.size()) {
    if (segments_.empty() || segments_.back().wal == nullptr ||
        segments_.back().index.payload_bytes >= options_.segment_bytes) {
      roll_segment_locked();
    }
    Segment& seg = segments_.back();
    // Take as many payloads as fit before the segment rolls (always >= 1
    // so oversized records still land somewhere).
    std::size_t chunk_end = i + 1;
    std::uint64_t chunk_bytes = payloads[i].size();
    while (chunk_end < payloads.size() &&
           seg.index.payload_bytes + chunk_bytes < options_.segment_bytes) {
      chunk_bytes += payloads[chunk_end].size();
      ++chunk_end;
    }
    const common::EventId chunk_first = first_id + i;
    std::uint64_t offset = seg.wal->bytes_written();
    if (auto s = seg.wal->append_batch(chunk_first, payloads.subspan(i, chunk_end - i));
        !s.is_ok()) {
      // The file tail now holds bytes of unknown integrity; seal the
      // segment (without trusting the in-memory index onto disk) so no
      // later append lands after torn garbage. Recovery rescans it.
      seal_active_locked(/*write_index=*/false);
      if (virgin && last_id_ == 0) dropped_upto_ = 0;  // nothing landed
      update_gauges_locked();
      return s;
    }
    for (std::size_t j = i; j < chunk_end; ++j) {
      const std::uint64_t size = payloads[j].size();
      seg.index.note_record(first_id + j, offset, size);
      offset += 16 + size;
      cache_.push_back(CachedRecord{
          first_id + j, std::vector<std::byte>(payloads[j].begin(), payloads[j].end())});
      cache_payload_bytes_ += size;
      live_bytes_ += size;
    }
    seg.live_payload += chunk_bytes;
    last_id_ = first_id + chunk_end - 1;
    i = chunk_end;
  }
  if (options_.flush_each_append) {
    if (auto s = segments_.back().wal->flush(); !s.is_ok()) return s;
  }
  enforce_cap_locked();
  trim_cache_locked();
  update_gauges_locked();
  return Status::ok();
}

void EventStore::seal_active_locked(bool write_index) {
  if (segments_.empty() || segments_.back().wal == nullptr) return;
  Segment& seg = segments_.back();
  if (auto s = seg.wal->flush(); !s.is_ok()) {
    FSMON_WARN("eventstore", "seal flush failed for ", seg.path.string(), ": ",
               s.to_string());
    if (seal_flush_failures_counter_ != nullptr) seal_flush_failures_counter_->inc();
  }
  seg.wal.reset();
  if (seg.index.record_count == 0) {
    // Never committed a record (e.g. the first append into it tore);
    // nothing to replay, so drop the file.
    std::error_code ec;
    std::filesystem::remove(seg.path, ec);
    segments_.pop_back();
    return;
  }
  if (write_index) {
    if (auto s = seg.index.save(SegmentIndex::path_for(seg.path)); !s.is_ok())
      FSMON_WARN("eventstore", "cannot persist segment index for ", seg.path.string(),
                 ": ", s.to_string());
  }
}

void EventStore::roll_segment_locked() {
  seal_active_locked(/*write_index=*/true);
  Segment segment;
  segment.path = segment_path(last_id_ + 1);
  segment.index.stride = options_.index_stride;
  segment.wal = std::make_unique<WalSegment>(
      segment.path, wal_metrics_.appends != nullptr ? &wal_metrics_ : nullptr);
  segments_.push_back(std::move(segment));
}

Result<std::uint64_t> EventStore::range_payload_bytes_locked(
    const Segment& seg, common::EventId from_excl, common::EventId to_incl) const {
  if (to_incl <= from_excl) return std::uint64_t{0};
  std::uint64_t total = 0;
  if (!cache_.empty() && from_excl + 1 >= cache_.front().id) {
    // Consecutive ids make the cache directly addressable.
    std::size_t idx = static_cast<std::size_t>(from_excl + 1 - cache_.front().id);
    for (; idx < cache_.size() && cache_[idx].id <= to_incl; ++idx)
      total += cache_[idx].payload.size();
    return total;
  }
  auto streamed = WalSegment::stream(
      seg.path, seg.index.seek(from_excl + 1), [&](const WalRecordView& view) {
        if (view.id <= from_excl) return true;  // sparse-seek over-read
        if (view.id > to_incl || view.id > seg.index.last_id) return false;
        total += view.payload.size();
        return true;
      });
  if (!streamed) return streamed.status();
  return total;
}

std::size_t EventStore::drop_through_locked(common::EventId up_to) {
  common::EventId target = std::min(up_to, last_id_);
  if (target <= dropped_upto_) return 0;
  std::uint64_t shed = 0;
  common::EventId cursor = dropped_upto_;
  auto it = segments_.begin();
  while (it != segments_.end() && cursor < target) {
    Segment& seg = *it;
    if (seg.index.record_count == 0) break;  // fresh active segment
    if (seg.index.last_id <= target) {
      shed += seg.live_payload;
      cursor = seg.index.last_id;
      seg.live_payload = 0;
      if (seg.wal == nullptr) {
        std::error_code ec;
        std::filesystem::remove(seg.path, ec);
        std::filesystem::remove(SegmentIndex::path_for(seg.path), ec);
        it = segments_.erase(it);
      } else {
        ++it;  // active segment: file stays open for appends
      }
      continue;
    }
    // Straddler: shed only its prefix.
    auto bytes = range_payload_bytes_locked(seg, cursor, target);
    if (!bytes) {
      FSMON_WARN("eventstore", "cannot size purge range in ", seg.path.string(), ": ",
                 bytes.status().to_string(), "; clamping purge");
      target = cursor;  // keep accounting exact: drop whole segments only
      break;
    }
    shed += bytes.value();
    seg.live_payload -= bytes.value();
    cursor = target;
    break;
  }
  if (cursor <= dropped_upto_) return 0;
  const std::size_t removed = static_cast<std::size_t>(cursor - dropped_upto_);
  while (!cache_.empty() && cache_.front().id <= cursor) {
    cache_payload_bytes_ -= cache_.front().payload.size();
    cache_.pop_front();
  }
  live_bytes_ -= shed;
  dropped_upto_ = cursor;
  if (purged_counter_ != nullptr) purged_counter_->inc(removed);
  // Persist with a durability barrier: losing this watermark would
  // resurrect purged ids at recovery.
  if (auto s = write_id_file_atomic(purge_watermark_path(), dropped_upto_, true);
      !s.is_ok())
    FSMON_WARN("eventstore", "cannot persist purge watermark: ", s.to_string());
  return removed;
}

void EventStore::enforce_cap_locked() {
  if (options_.max_bytes == 0 || live_bytes_ <= options_.max_bytes) return;
  const std::uint64_t need = live_bytes_ - options_.max_bytes;
  if (last_id_ <= dropped_upto_ + 1) return;          // always keep one record
  const common::EventId limit = last_id_ - 1;
  std::uint64_t acc = 0;
  common::EventId cursor = dropped_upto_;
  for (const auto& seg : segments_) {
    if (acc >= need || cursor >= limit) break;
    if (seg.index.record_count == 0 || seg.index.last_id <= cursor) continue;
    if (seg.index.last_id < limit && acc + seg.live_payload < need) {
      acc += seg.live_payload;
      cursor = seg.index.last_id;
      continue;
    }
    // The boundary falls inside this segment: walk record sizes.
    if (!cache_.empty() && cursor + 1 >= cache_.front().id) {
      std::size_t idx = static_cast<std::size_t>(cursor + 1 - cache_.front().id);
      for (; idx < cache_.size() && acc < need && cursor < limit; ++idx) {
        acc += cache_[idx].payload.size();
        cursor = cache_[idx].id;
      }
    } else {
      auto streamed = WalSegment::stream(
          seg.path, seg.index.seek(cursor + 1), [&](const WalRecordView& view) {
            if (view.id <= cursor) return true;  // sparse-seek over-read
            if (view.id > seg.index.last_id) return false;
            acc += view.payload.size();
            cursor = view.id;
            return acc < need && cursor < limit;
          });
      if (!streamed) {
        FSMON_WARN("eventstore", "cannot size cap eviction in ", seg.path.string(),
                   ": ", streamed.status().to_string());
        break;
      }
    }
  }
  if (cursor > dropped_upto_) drop_through_locked(cursor);
}

void EventStore::trim_cache_locked() {
  // The active segment's live records must stay resident: their WAL
  // bytes may still sit in the writer's buffer, invisible to readers.
  common::EventId keep_from = 0;
  if (!segments_.empty() && segments_.back().wal != nullptr &&
      segments_.back().index.record_count > 0) {
    keep_from = std::max(segments_.back().index.first_id, dropped_upto_ + 1);
  }
  while (cache_payload_bytes_ > options_.cache_bytes && !cache_.empty()) {
    const CachedRecord& front = cache_.front();
    if (keep_from != 0 && front.id >= keep_from) break;
    cache_payload_bytes_ -= front.payload.size();
    cache_.pop_front();
  }
}

Status EventStore::for_each_since(
    common::EventId after_id, std::size_t max_events,
    const std::function<bool(common::EventId, std::span<const std::byte>, bool)>& fn)
    const {
  std::lock_guard lock(mu_);
  common::EventId cursor = std::max(after_id, dropped_upto_);
  std::size_t count = 0;
  bool stopped = false;
  while (cursor < last_id_ && count < max_events && !stopped) {
    if (!cache_.empty() && cursor + 1 >= cache_.front().id) {
      // Tail cache fast path: the cache is a contiguous suffix ending at
      // last_id_, so everything from here on is resident.
      std::size_t idx = static_cast<std::size_t>(cursor + 1 - cache_.front().id);
      for (; idx < cache_.size() && count < max_events; ++idx) {
        const CachedRecord& record = cache_[idx];
        ++count;
        cursor = record.id;
        if (replay_cache_counter_ != nullptr) replay_cache_counter_->inc();
        if (!fn(record.id, std::span(record.payload), record.id <= reported_upto_)) {
          stopped = true;
          break;
        }
      }
      break;  // cache ends at last_id_
    }
    // Binary-search the sealed prefix for the segment holding cursor+1.
    // (Live records in the active segment are always cached, so the disk
    // path only ever needs sealed segments.)
    const common::EventId target = cursor + 1;
    auto end = segments_.end();
    if (!segments_.empty() && segments_.back().wal != nullptr) --end;
    auto it = std::partition_point(
        segments_.begin(), end,
        [&](const Segment& s) { return s.index.last_id < target; });
    if (it == end) break;  // nothing sealed holds it (lost segment)
    const Segment& seg = *it;
    auto streamed = WalSegment::stream(
        seg.path, seg.index.seek(target), [&](const WalRecordView& view) {
          if (view.id <= cursor) return true;  // sparse-seek over-read / purged
          if (view.id > seg.index.last_id) return false;  // bytes past the index
          ++count;
          cursor = view.id;
          if (replay_disk_counter_ != nullptr) replay_disk_counter_->inc();
          if (!fn(view.id, view.payload, view.id <= reported_upto_)) {
            stopped = true;
            return false;
          }
          return count < max_events && view.id < seg.index.last_id;
        });
    if (!streamed) return streamed.status();
    if (cursor < target) break;  // segment yielded nothing; avoid spinning
  }
  return Status::ok();
}

std::vector<StoredEvent> EventStore::events_since(common::EventId after_id,
                                                  std::size_t max_events) const {
  std::vector<StoredEvent> out;
  auto status = for_each_since(
      after_id, max_events,
      [&](common::EventId id, std::span<const std::byte> payload, bool reported) {
        out.push_back(
            StoredEvent{id, std::vector<std::byte>(payload.begin(), payload.end()),
                        reported});
        return true;
      });
  if (!status.is_ok())
    FSMON_WARN("eventstore", "events_since stopped early: ", status.to_string());
  return out;
}

void EventStore::mark_reported(common::EventId up_to_id) {
  std::lock_guard lock(mu_);
  const common::EventId target = std::min(up_to_id, last_id_);
  if (target <= reported_upto_) return;
  reported_upto_ = target;
  // No fsync: a lost reported watermark only causes conservative
  // re-replay of already-acked events, which consumers dedup.
  if (auto s = write_id_file_atomic(reported_watermark_path(), reported_upto_, false);
      !s.is_ok())
    FSMON_WARN("eventstore", "cannot persist reported watermark: ", s.to_string());
}

std::size_t EventStore::purge_reported() {
  std::lock_guard lock(mu_);
  const std::size_t removed = drop_through_locked(reported_upto_);
  update_gauges_locked();
  return removed;
}

std::size_t EventStore::live_records() const {
  std::lock_guard lock(mu_);
  return static_cast<std::size_t>(last_id_ - dropped_upto_);
}

std::uint64_t EventStore::live_bytes() const {
  std::lock_guard lock(mu_);
  return live_bytes_;
}

common::EventId EventStore::last_id() const {
  std::lock_guard lock(mu_);
  return last_id_;
}

common::EventId EventStore::first_id() const {
  std::lock_guard lock(mu_);
  return last_id_ > dropped_upto_ ? dropped_upto_ + 1 : 0;
}

std::size_t EventStore::segment_count() const {
  std::lock_guard lock(mu_);
  return segments_.size();
}

std::uint64_t EventStore::cache_resident_bytes() const {
  std::lock_guard lock(mu_);
  return cache_payload_bytes_;
}

std::uint64_t EventStore::ack_scan_records() const {
  std::lock_guard lock(mu_);
  return ack_scan_records_;
}

std::uint64_t EventStore::index_rebuilds() const {
  std::lock_guard lock(mu_);
  return index_rebuilds_;
}

Status EventStore::flush() {
  std::lock_guard lock(mu_);
  if (!segments_.empty() && segments_.back().wal != nullptr)
    return segments_.back().wal->flush();
  return Status::ok();
}

}  // namespace fsmon::eventstore
