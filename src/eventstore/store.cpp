#include "src/eventstore/store.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "src/common/logging.hpp"

namespace fsmon::eventstore {

using common::ErrorCode;
using common::Status;

EventStore::EventStore(EventStoreOptions options) : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    auto& registry = *options_.metrics;
    wal_metrics_ = WalMetrics::create(registry);
    purged_counter_ = &registry.counter("store.purged_records", {},
                                        "Records removed by purge cycles or the size cap",
                                        "records");
    live_records_gauge_ = &registry.gauge("store.live_records", {},
                                          "Records currently retained in the store",
                                          "records");
    live_bytes_gauge_ = &registry.gauge("store.live_bytes", {},
                                        "Payload bytes currently retained in the store",
                                        "bytes");
    segments_gauge_ = &registry.gauge("store.segments", {},
                                      "WAL segment files backing the store", "segments");
  }
  std::filesystem::create_directories(options_.directory);
  recover();
  update_gauges_locked();  // safe pre-threading: no lock needed yet
}

void EventStore::update_gauges_locked() {
  if (live_records_gauge_ == nullptr) return;
  live_records_gauge_->set(static_cast<std::int64_t>(records_.size()));
  live_bytes_gauge_->set(static_cast<std::int64_t>(live_bytes_));
  segments_gauge_->set(static_cast<std::int64_t>(segments_.size()));
}

std::filesystem::path EventStore::watermark_path() const {
  return options_.directory / "purge.watermark";
}

void EventStore::write_watermark_locked() {
  // Small enough that a rewrite is atomic in practice; a torn write is
  // detected as an unparsable value and ignored (conservative recovery).
  std::ofstream out(watermark_path(), std::ios::trunc);
  out << dropped_upto_;
}

std::filesystem::path EventStore::segment_path(common::EventId first_id) const {
  char name[64];
  std::snprintf(name, sizeof(name), "events-%020" PRIu64 ".wal", first_id);
  return options_.directory / name;
}

void EventStore::recover() {
  // Records at or below the purge watermark were dropped before the
  // restart; skip them even if their segment file survives.
  {
    std::ifstream in(watermark_path());
    common::EventId watermark = 0;
    if (in >> watermark) dropped_upto_ = watermark;
  }
  // Collect segment files in name order (names embed the first id,
  // zero-padded, so lexicographic order == id order).
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(options_.directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".wal")
      paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::uint64_t intact_bytes = 0;
    auto scanned = WalSegment::scan(path, &intact_bytes);
    if (!scanned) {
      FSMON_WARN("eventstore", "skipping unreadable segment ", path.string(), ": ",
                 scanned.status().to_string());
      continue;
    }
    // Truncate a torn tail now: recovered segments are normally sealed,
    // but if this path is ever reopened for append (a crash straight
    // after a roll), appending after torn garbage would corrupt every
    // later record.
    std::error_code ec;
    const auto on_disk = std::filesystem::file_size(path, ec);
    if (!ec && on_disk > intact_bytes) {
      std::filesystem::resize_file(path, intact_bytes, ec);
      FSMON_WARN("eventstore", "truncated torn tail of ", path.string(), ": ",
                 on_disk - intact_bytes, " bytes");
    }
    Segment segment;
    segment.path = path;
    for (auto& record : scanned.value()) {
      if (record.id <= dropped_upto_) continue;  // purged before restart
      if (record.id <= last_id_) continue;  // duplicate from a re-appended tail
      if (segment.first_id == 0) segment.first_id = record.id;
      segment.last_id = record.id;
      segment.bytes += record.payload.size();
      live_bytes_ += record.payload.size();
      last_id_ = record.id;
      records_.push_back(StoredEvent{record.id, std::move(record.payload), false});
    }
    segments_.push_back(std::move(segment));
  }
}

Status EventStore::append(common::EventId id, std::span<const std::byte> payload) {
  const std::span<const std::byte> one[] = {payload};
  return append_batch(id, one);
}

Status EventStore::append_batch(common::EventId first_id,
                                std::span<const std::span<const std::byte>> payloads) {
  if (payloads.empty()) return Status::ok();
  std::lock_guard lock(mu_);
  if (first_id <= last_id_)
    return Status(ErrorCode::kInvalid, "event ids must be strictly increasing");
  std::size_t i = 0;
  while (i < payloads.size()) {
    if (segments_.empty() || segments_.back().wal == nullptr ||
        segments_.back().bytes >= options_.segment_bytes) {
      roll_segment_locked();
    }
    Segment& seg = segments_.back();
    // Take as many payloads as fit before the segment rolls (always >= 1
    // so oversized records still land somewhere).
    std::size_t chunk_end = i + 1;
    std::uint64_t chunk_bytes = payloads[i].size();
    while (chunk_end < payloads.size() &&
           seg.bytes + chunk_bytes < options_.segment_bytes) {
      chunk_bytes += payloads[chunk_end].size();
      ++chunk_end;
    }
    const common::EventId chunk_first = first_id + i;
    if (auto s = seg.wal->append_batch(chunk_first, payloads.subspan(i, chunk_end - i));
        !s.is_ok())
      return s;
    if (seg.first_id == 0) seg.first_id = chunk_first;
    seg.last_id = first_id + chunk_end - 1;
    seg.bytes += chunk_bytes;
    for (std::size_t j = i; j < chunk_end; ++j) {
      records_.push_back(StoredEvent{
          first_id + j, std::vector<std::byte>(payloads[j].begin(), payloads[j].end()),
          false});
      live_bytes_ += payloads[j].size();
    }
    last_id_ = first_id + chunk_end - 1;
    i = chunk_end;
  }
  if (options_.flush_each_append) {
    if (auto s = segments_.back().wal->flush(); !s.is_ok()) return s;
  }
  enforce_cap_locked();
  update_gauges_locked();
  return Status::ok();
}

void EventStore::roll_segment_locked() {
  if (!segments_.empty() && segments_.back().wal != nullptr) {
    segments_.back().wal->flush();
    segments_.back().wal.reset();  // seal
  }
  Segment segment;
  segment.path = segment_path(last_id_ + 1);
  segment.wal = std::make_unique<WalSegment>(
      segment.path, wal_metrics_.appends != nullptr ? &wal_metrics_ : nullptr);
  segments_.push_back(std::move(segment));
}

void EventStore::enforce_cap_locked() {
  if (options_.max_bytes == 0) return;
  bool dropped = false;
  while (live_bytes_ > options_.max_bytes && records_.size() > 1) {
    drop_record_locked();
    dropped = true;
  }
  if (dropped) write_watermark_locked();
}

void EventStore::drop_record_locked() {
  const StoredEvent& victim = records_.front();
  live_bytes_ -= victim.payload.size();
  const common::EventId dropped_id = victim.id;
  dropped_upto_ = std::max(dropped_upto_, dropped_id);
  records_.pop_front();
  if (purged_counter_ != nullptr) purged_counter_->inc();
  // Delete leading segments whose records are all gone.
  while (!segments_.empty() && segments_.front().wal == nullptr &&
         segments_.front().last_id <= dropped_id &&
         (records_.empty() || segments_.front().last_id < records_.front().id)) {
    std::error_code ec;
    std::filesystem::remove(segments_.front().path, ec);
    segments_.erase(segments_.begin());
  }
}

std::vector<StoredEvent> EventStore::events_since(common::EventId after_id,
                                                  std::size_t max_events) const {
  std::lock_guard lock(mu_);
  std::vector<StoredEvent> out;
  auto it = std::upper_bound(records_.begin(), records_.end(), after_id,
                             [](common::EventId id, const StoredEvent& e) {
                               return id < e.id;
                             });
  for (; it != records_.end() && out.size() < max_events; ++it) out.push_back(*it);
  return out;
}

void EventStore::mark_reported(common::EventId up_to_id) {
  std::lock_guard lock(mu_);
  for (auto& record : records_) {
    if (record.id > up_to_id) break;
    record.reported = true;
  }
}

std::size_t EventStore::purge_reported() {
  std::lock_guard lock(mu_);
  std::size_t removed = 0;
  while (!records_.empty() && records_.front().reported) {
    drop_record_locked();
    ++removed;
  }
  if (removed > 0) write_watermark_locked();
  update_gauges_locked();
  return removed;
}

std::size_t EventStore::live_records() const {
  std::lock_guard lock(mu_);
  return records_.size();
}

std::uint64_t EventStore::live_bytes() const {
  std::lock_guard lock(mu_);
  return live_bytes_;
}

common::EventId EventStore::last_id() const {
  std::lock_guard lock(mu_);
  return last_id_;
}

common::EventId EventStore::first_id() const {
  std::lock_guard lock(mu_);
  return records_.empty() ? 0 : records_.front().id;
}

std::size_t EventStore::segment_count() const {
  std::lock_guard lock(mu_);
  return segments_.size();
}

Status EventStore::flush() {
  std::lock_guard lock(mu_);
  if (!segments_.empty() && segments_.back().wal != nullptr)
    return segments_.back().wal->flush();
  return Status::ok();
}

}  // namespace fsmon::eventstore
