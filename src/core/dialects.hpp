// Event-dialect templates.
//
// Rather than defining yet another event representation, FSMonitor's
// resolution layer "support[s] transformation into any of the commonly
// defined formats (inotify, kqueue, FSEvents) by populating the
// appropriate event template" (Section III-A2). This module implements
// those templates: a StdEvent renders into each native dialect's event
// name(s) and line format, so tools written against one dialect consume
// FSMonitor output unchanged.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/core/event.hpp"

namespace fsmon::core {

enum class Dialect {
  kInotify,            ///< IN_CREATE, IN_MODIFY, ... (the default output).
  kKqueue,             ///< NOTE_WRITE, NOTE_EXTEND, NOTE_DELETE, ...
  kFsEvents,           ///< ItemCreated, ItemModified, ... (macOS).
  kFileSystemWatcher,  ///< Created, Changed, Deleted, Renamed (Windows).
};

std::string_view to_string(Dialect dialect);
std::optional<Dialect> parse_dialect(std::string_view name);

/// Native event-name token(s) for `event` in `dialect`. A single
/// StdEvent can map to multiple native tokens (e.g. a kqueue write is
/// NOTE_WRITE|NOTE_EXTEND); tokens are returned in canonical order.
std::vector<std::string> native_tokens(Dialect dialect, const StdEvent& event);

/// Render a full native-format line:
///  - inotify (inotifywait format):   <root> <KIND[,ISDIR]> <path>
///  - kqueue:                         <full_path> NOTE_X[|NOTE_Y]
///  - FSEvents:                       <full_path> ItemX [ItemIsDir]
///  - FileSystemWatcher:              <Kind>: <full_path>
std::string render(Dialect dialect, const StdEvent& event);

}  // namespace fsmon::core
