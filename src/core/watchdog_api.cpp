#include "src/core/watchdog_api.hpp"

namespace fsmon::core {

void HandlerDispatcher::dispatch(const StdEvent& event) {
  ++dispatched_;
  switch (event.kind) {
    case EventKind::kCreate: handler_.on_created(event); return;
    case EventKind::kModify: handler_.on_modified(event); return;
    case EventKind::kDelete: handler_.on_deleted(event); return;
    case EventKind::kClose: handler_.on_closed(event); return;
    case EventKind::kAttrib: handler_.on_attrib(event); return;
    case EventKind::kOpen: handler_.on_any_event(event); return;
    case EventKind::kMovedFrom:
      if (event.cookie == 0) {
        handler_.on_moved_away(event);
      } else {
        pending_moves_[event.cookie] = event;
      }
      return;
    case EventKind::kMovedTo: {
      auto pending = pending_moves_.find(event.cookie);
      if (pending != pending_moves_.end()) {
        const StdEvent from = std::move(pending->second);
        pending_moves_.erase(pending);
        handler_.on_moved(from, event);
      } else {
        handler_.on_moved_in(event);
      }
      return;
    }
  }
}

void HandlerDispatcher::flush_pending_moves() {
  for (auto& [cookie, event] : pending_moves_) handler_.on_moved_away(event);
  pending_moves_.clear();
}

Observer::WatchId Observer::schedule(EventHandler& handler, FsMonitor& monitor,
                                     const std::string& path, bool recursive) {
  auto dispatcher = std::make_unique<HandlerDispatcher>(handler);
  HandlerDispatcher* raw = dispatcher.get();
  FilterRule rule;
  rule.root = path;
  rule.recursive = recursive;
  // The monitor delivers batches on its resolution thread; the
  // dispatcher itself is confined to that thread.
  const SubscriptionId subscription =
      monitor.subscribe(rule, [raw](const std::vector<StdEvent>& batch) {
        for (const auto& event : batch) raw->dispatch(event);
      });
  std::lock_guard lock(mu_);
  const WatchId id = next_id_++;
  watches_.emplace(id, Watch{&monitor, subscription, std::move(dispatcher)});
  return id;
}

void Observer::unschedule(WatchId id) {
  std::lock_guard lock(mu_);
  auto it = watches_.find(id);
  if (it == watches_.end()) return;
  it->second.monitor->unsubscribe(it->second.subscription);
  it->second.dispatcher->flush_pending_moves();
  watches_.erase(it);
}

void Observer::unschedule_all() {
  std::lock_guard lock(mu_);
  for (auto& [id, watch] : watches_) {
    watch.monitor->unsubscribe(watch.subscription);
    watch.dispatcher->flush_pending_moves();
  }
  watches_.clear();
}

std::size_t Observer::watch_count() const {
  std::lock_guard lock(mu_);
  return watches_.size();
}

}  // namespace fsmon::core
