// FsMonitor facade: the public entry point tying the three layers
// together (Figure 3): DSI -> resolution -> interface.
//
// Typical use:
//
//   core::MonitorOptions options;
//   options.storage.scheme = "inotify";          // or empty to auto-detect
//   options.storage.root = "/home/arnab/test";
//   core::FsMonitor monitor(options);
//   auto sub = monitor.subscribe({}, [](const auto& batch) {
//     for (const auto& e : batch) std::cout << core::to_inotify_line(e) << '\n';
//   });
//   monitor.start();
//   ...
//   monitor.stop();
#pragma once

#include <memory>
#include <string>

#include "src/common/clock.hpp"
#include "src/core/dialects.hpp"
#include "src/core/dsi.hpp"
#include "src/core/interface.hpp"
#include "src/core/resolution.hpp"

namespace fsmon::core {

struct MonitorOptions {
  StorageDescriptor storage;
  ResolutionOptions resolution;
  InterfaceOptions interface;
  /// Render dialect used by render_line(); default is inotify, the
  /// paper's standard representation.
  Dialect output_dialect = Dialect::kInotify;
};

class FsMonitor {
 public:
  /// Creates the monitor using `registry` to pick the DSI; the global
  /// registry by default. `clock` defaults to the real clock.
  explicit FsMonitor(MonitorOptions options,
                     DsiRegistry* registry = nullptr,
                     common::Clock* clock = nullptr);
  ~FsMonitor();

  FsMonitor(const FsMonitor&) = delete;
  FsMonitor& operator=(const FsMonitor&) = delete;

  /// Select the DSI and begin capturing. Fails if no DSI matches.
  common::Status start();
  void stop();
  bool running() const;

  /// Register a filtered subscriber (may be called before start()).
  SubscriptionId subscribe(FilterRule rule, InterfaceLayer::EventSink sink);
  void unsubscribe(SubscriptionId id);

  /// Replay support (requires a configured event store).
  common::Result<std::vector<StdEvent>> events_since(common::EventId after_id,
                                                     std::size_t max_events = SIZE_MAX) const;
  void acknowledge(common::EventId up_to_id);
  std::size_t purge();

  /// Render an event in the configured output dialect.
  std::string render_line(const StdEvent& event) const;

  /// Name of the selected DSI (empty before start()).
  std::string dsi_name() const;

  const InterfaceLayer& interface_layer() const { return interface_; }
  const ResolutionLayer& resolution_layer() const { return resolution_; }

 private:
  MonitorOptions options_;
  DsiRegistry* registry_;
  common::Clock* clock_;
  ResolutionLayer resolution_;
  InterfaceLayer interface_;
  std::unique_ptr<DsiBase> dsi_;
  bool started_ = false;
};

/// Registers every DSI built into this library (the local-fs DSIs and
/// the scalable Lustre DSI register through their own modules; this
/// helper is defined in src/localfs and src/scalable and linked in when
/// those libraries are used). Declared here for discoverability.
void register_builtin_dsis();

}  // namespace fsmon::core
