// Subscription filtering rules.
//
// The interface layer filters events per subscriber. Recursive
// monitoring is implemented here — "FSMonitor will monitor events
// recursively by just modifying the filtering rule in the Interface
// layer" (Section V-C1) instead of placing per-directory watchers the
// way inotify must.
#pragma once

#include <optional>
#include <set>
#include <span>
#include <string>

#include "src/core/event.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::core {

struct FilterRule {
  /// Subtree of interest, relative to the watch root ("/" = everything).
  std::string root = "/";
  /// When false, only events on direct children of `root` match —
  /// inotify's single-directory semantics. When true (the FSMonitor
  /// default extension), the whole subtree matches.
  bool recursive = true;
  /// Optional glob over the event's base name ("*.h5"); empty = any.
  std::string name_pattern;
  /// Optional restriction on event kinds; nullopt = all kinds.
  std::optional<std::set<EventKind>> kinds;

  bool matches(const StdEvent& event) const;
};

/// Instrument handles for one filtering site (filter.*). Created by the
/// owning subscriber (e.g. a Consumer) with a distinguishing label.
struct FilterMetrics {
  obs::Counter* evaluations = nullptr;
  obs::Counter* matches = nullptr;
  obs::Counter* drops = nullptr;

  static FilterMetrics create(obs::MetricsRegistry& registry, const obs::Labels& labels);
};

/// True when any rule matches (or the rule set is empty — match-all, the
/// consumer default). Counts the outcome against `metrics` when given.
bool matches_any(std::span<const FilterRule> rules, const StdEvent& event,
                 const FilterMetrics* metrics = nullptr);

}  // namespace fsmon::core
