// Subscription filtering rules.
//
// The interface layer filters events per subscriber. Recursive
// monitoring is implemented here — "FSMonitor will monitor events
// recursively by just modifying the filtering rule in the Interface
// layer" (Section V-C1) instead of placing per-directory watchers the
// way inotify must.
//
// Two representations exist:
//
//   FilterRule      — the user-facing rule, kept verbatim from the
//                     subscription call. matches() normalizes paths on
//                     every evaluation: correct, but it allocates per
//                     (rule, event) pair.
//   CompiledRule /  — the hot-path form, built once at subscription
//   CompiledRuleSet   time: root pre-normalized and split into path
//                     components, the kind set flattened into an 8-bit
//                     mask, and the filter.* counters resolved up front
//                     so per-event evaluation does no labelled-metric
//                     lookups and no per-rule normalization. This is
//                     also the representation the scalable tier's
//                     SubscriptionIndex ingests (one trie insertion per
//                     component list).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/event.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::core {

struct FilterRule {
  /// Subtree of interest, relative to the watch root ("/" = everything).
  std::string root = "/";
  /// When false, only events on direct children of `root` match —
  /// inotify's single-directory semantics. When true (the FSMonitor
  /// default extension), the whole subtree matches.
  bool recursive = true;
  /// Optional glob over the event's base name ("*.h5"); empty = any.
  std::string name_pattern;
  /// Optional restriction on event kinds; nullopt = all kinds.
  std::optional<std::set<EventKind>> kinds;

  bool matches(const StdEvent& event) const;
};

/// Bitmask over the 8 EventKind values: bit (1 << kind) is set when the
/// kind is accepted. kAllKinds accepts everything.
using KindMask = std::uint8_t;
inline constexpr KindMask kAllKinds = 0xFF;

/// Flatten an optional kind set into a mask (nullopt = kAllKinds).
KindMask kind_mask(const std::optional<std::set<EventKind>>& kinds);
inline bool mask_accepts(KindMask mask, EventKind kind) {
  return (mask & static_cast<KindMask>(1u << static_cast<std::uint8_t>(kind))) != 0;
}

/// Split a normalized path into its components ("/" -> {}).
std::vector<std::string> path_components(std::string_view normalized_path);

/// A FilterRule compiled once at subscription time. Semantics are
/// byte-identical to FilterRule::matches (property-tested); only the
/// per-event cost changes.
struct CompiledRule {
  std::string root;                     ///< Normalized ("/a/b", or "/").
  std::vector<std::string> components;  ///< Split root; empty for "/".
  bool recursive = true;
  std::string name_pattern;             ///< Empty = any name.
  KindMask kinds = kAllKinds;

  static CompiledRule compile(const FilterRule& rule);

  /// Match against a pre-normalized path whose base name is `base`.
  bool matches(std::string_view normalized_path, std::string_view base,
               EventKind kind) const;
};

/// Instrument handles for one filtering site (filter.*). Created by the
/// owning subscriber (e.g. a Consumer) with a distinguishing label.
struct FilterMetrics {
  obs::Counter* evaluations = nullptr;
  obs::Counter* matches = nullptr;
  obs::Counter* drops = nullptr;

  static FilterMetrics create(obs::MetricsRegistry& registry, const obs::Labels& labels);

  bool wired() const { return evaluations != nullptr; }
  /// Batched accounting: one atomic add per counter per batch instead of
  /// one per event (the old per-event hot-path cost).
  void count(std::uint64_t matched, std::uint64_t dropped) const {
    if (evaluations == nullptr) return;
    evaluations->inc(matched + dropped);
    if (matched > 0) matches->inc(matched);
    if (dropped > 0) drops->inc(dropped);
  }
};

/// A subscriber's whole rule set in compiled form, with its filter.*
/// counters bound at construction (subscription) time. The empty rule
/// set matches everything — the consumer default.
class CompiledRuleSet {
 public:
  CompiledRuleSet() = default;
  explicit CompiledRuleSet(std::span<const FilterRule> rules,
                           FilterMetrics metrics = {});

  bool empty() const { return rules_.empty(); }
  std::span<const CompiledRule> rules() const { return rules_; }
  const FilterMetrics& metrics() const { return metrics_; }

  /// Equivalent to matches_any(rules, event) — normalizes the event path
  /// once (not once per rule) and never touches counters.
  bool matches(const StdEvent& event) const;

  /// Filter a batch, appending the indices of matching events to `out`
  /// (not cleared). Counts the outcome against the bound counters with
  /// one batched add — no per-event labelled-counter traffic.
  void filter_batch(std::span<const StdEvent> events,
                    std::vector<std::uint32_t>& out) const;

 private:
  std::vector<CompiledRule> rules_;
  FilterMetrics metrics_;
};

/// True when any rule matches (or the rule set is empty — match-all, the
/// consumer default). Counts the outcome against `metrics` when given.
/// Legacy per-event path; hot paths use CompiledRuleSet instead.
bool matches_any(std::span<const FilterRule> rules, const StdEvent& event,
                 const FilterMetrics* metrics = nullptr);

}  // namespace fsmon::core
