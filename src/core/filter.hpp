// Subscription filtering rules.
//
// The interface layer filters events per subscriber. Recursive
// monitoring is implemented here — "FSMonitor will monitor events
// recursively by just modifying the filtering rule in the Interface
// layer" (Section V-C1) instead of placing per-directory watchers the
// way inotify must.
#pragma once

#include <optional>
#include <set>
#include <string>

#include "src/core/event.hpp"

namespace fsmon::core {

struct FilterRule {
  /// Subtree of interest, relative to the watch root ("/" = everything).
  std::string root = "/";
  /// When false, only events on direct children of `root` match —
  /// inotify's single-directory semantics. When true (the FSMonitor
  /// default extension), the whole subtree matches.
  bool recursive = true;
  /// Optional glob over the event's base name ("*.h5"); empty = any.
  std::string name_pattern;
  /// Optional restriction on event kinds; nullopt = all kinds.
  std::optional<std::set<EventKind>> kinds;

  bool matches(const StdEvent& event) const;
};

}  // namespace fsmon::core
