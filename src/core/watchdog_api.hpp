// Watchdog-style convenience API.
//
// The paper builds its local DSIs on the Python Watchdog library
// (Section II-A); many downstream tools are written against Watchdog's
// handler idiom rather than a raw callback. This adapter offers the
// same ergonomics over FsMonitor: subclass EventHandler, override the
// on_* hooks you care about, and schedule it on an Observer with a path
// and recursion flag.
//
//   class MyHandler : public core::EventHandler {
//     void on_created(const core::StdEvent& e) override { ... }
//     void on_moved(const core::StdEvent& from, const core::StdEvent& to) override { ... }
//   };
//   core::Observer observer;
//   MyHandler handler;
//   observer.schedule(handler, monitor, "/data", /*recursive=*/true);
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "src/core/monitor.hpp"

namespace fsmon::core {

/// Override the hooks of interest; unhandled kinds fall through to
/// on_any_event (default: ignore).
class EventHandler {
 public:
  virtual ~EventHandler() = default;

  virtual void on_created(const StdEvent& event) { on_any_event(event); }
  virtual void on_modified(const StdEvent& event) { on_any_event(event); }
  virtual void on_deleted(const StdEvent& event) { on_any_event(event); }
  virtual void on_closed(const StdEvent& event) { on_any_event(event); }
  virtual void on_attrib(const StdEvent& event) { on_any_event(event); }
  /// A completed rename: both halves of the pair.
  virtual void on_moved(const StdEvent& moved_from, const StdEvent& moved_to) {
    on_any_event(moved_from);
    on_any_event(moved_to);
  }
  /// A MOVED_FROM whose partner never arrived (moved outside the watch).
  virtual void on_moved_away(const StdEvent& moved_from) { on_any_event(moved_from); }
  /// A MOVED_TO with no visible source (moved in from outside).
  virtual void on_moved_in(const StdEvent& moved_to) { on_any_event(moved_to); }

  virtual void on_any_event(const StdEvent& event) { (void)event; }
};

/// Dispatches a standardized event stream to a handler, pairing rename
/// halves on their cookie. Pure and synchronous (unit-testable without
/// a monitor); Observer drives it from live subscriptions.
class HandlerDispatcher {
 public:
  explicit HandlerDispatcher(EventHandler& handler) : handler_(handler) {}

  void dispatch(const StdEvent& event);

  /// Flush unpaired MOVED_FROM halves as on_moved_away (call at stream
  /// end or after a timeout).
  void flush_pending_moves();

  std::uint64_t dispatched() const { return dispatched_; }

 private:
  EventHandler& handler_;
  std::map<std::uint64_t, StdEvent> pending_moves_;  // cookie -> MOVED_FROM
  std::uint64_t dispatched_ = 0;
};

/// Watchdog's Observer: owns subscriptions binding handlers to watches.
class Observer {
 public:
  using WatchId = std::uint64_t;

  /// Subscribe `handler` to events under `path` on `monitor`. The
  /// returned id unschedules it.
  WatchId schedule(EventHandler& handler, FsMonitor& monitor, const std::string& path,
                   bool recursive = true);
  void unschedule(WatchId id);
  void unschedule_all();

  std::size_t watch_count() const;

 private:
  struct Watch {
    FsMonitor* monitor = nullptr;
    SubscriptionId subscription = 0;
    std::unique_ptr<HandlerDispatcher> dispatcher;
  };

  mutable std::mutex mu_;
  std::map<WatchId, Watch> watches_;
  WatchId next_id_ = 1;
};

}  // namespace fsmon::core
