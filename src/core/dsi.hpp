// Data Storage Interface (DSI) layer.
//
// "The lowest level of FSMonitor is responsible for interfacing with the
// underlying file system to capture events and report them to the
// resolution layer ... a modular architecture via which arbitrary
// monitoring interfaces can be integrated" (Section III-A1). A DSI wraps
// one native monitoring facility (inotify, kqueue, FSEvents,
// FileSystemWatcher, or the scalable Lustre monitor), converts native
// events to StdEvent, and pushes them to a callback. The registry
// selects the appropriate DSI for a storage descriptor — explicitly by
// scheme, or by probing when the scheme is left empty.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/config.hpp"
#include "src/common/status.hpp"
#include "src/core/event.hpp"

namespace fsmon::core {

/// Identifies a storage target to monitor.
struct StorageDescriptor {
  /// DSI scheme, e.g. "inotify", "kqueue", "fsevents",
  /// "filesystemwatcher", "lustre". Empty = auto-detect via probes.
  std::string scheme;
  /// Root to monitor (a directory path, or a mount point for Lustre).
  std::string root;
  /// DSI-specific parameters (cache sizes, endpoints, ...).
  common::Config params;
};

class DsiBase {
 public:
  /// Called from the DSI's capture context for every native event, after
  /// conversion to the standard representation. Events do not yet carry
  /// an EventId (the interface layer assigns ids).
  using EventCallback = std::function<void(StdEvent)>;

  virtual ~DsiBase() = default;

  virtual std::string name() const = 0;

  /// Begin capturing; events flow to `callback` until stop(). A DSI must
  /// tolerate start/stop/start cycles.
  virtual common::Status start(EventCallback callback) = 0;
  virtual void stop() = 0;

  /// True while capturing.
  virtual bool running() const = 0;
};

/// Factory + probe registry. DSIs self-describe: the probe inspects a
/// descriptor and returns a score (>0 = usable; highest wins) so
/// FSMonitor can "select the appropriate monitoring tool for the given
/// storage device" when no scheme is forced.
class DsiRegistry {
 public:
  using Factory =
      std::function<common::Result<std::unique_ptr<DsiBase>>(const StorageDescriptor&)>;
  using Probe = std::function<int(const StorageDescriptor&)>;

  /// Register a DSI under `scheme`. `probe` may be null (never
  /// auto-selected).
  void register_dsi(std::string scheme, Factory factory, Probe probe = nullptr);

  bool has_scheme(const std::string& scheme) const;
  std::vector<std::string> schemes() const;

  /// Create the DSI for `descriptor`: by scheme when set, else the
  /// highest-scoring probe.
  common::Result<std::unique_ptr<DsiBase>> create(const StorageDescriptor& descriptor) const;

  /// Process-wide registry used by the FsMonitor facade. Built-in DSIs
  /// register themselves here via register_builtin_dsis().
  static DsiRegistry& global();

 private:
  struct Entry {
    std::string scheme;
    Factory factory;
    Probe probe;
  };
  std::vector<Entry> entries_;
};

}  // namespace fsmon::core
