// Interface layer.
//
// "The topmost layer provides an interface for users and programs to
// interact with FSMonitor ... If users provide an event identifier,
// FSMonitor will only report events that have happened since that event.
// This layer is also responsible for providing fault-tolerance by
// storing all events received from the resolution layer into an event
// store" (Section III-A3).
//
// Responsibilities implemented here: event-id assignment, per-subscriber
// filtering (including the recursive-monitoring rule), batched callback
// delivery, replay-since-id from the reliable event store, and the
// acknowledge/purge cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/common/clock.hpp"
#include "src/common/status.hpp"
#include "src/core/event.hpp"
#include "src/core/filter.hpp"
#include "src/eventstore/store.hpp"

namespace fsmon::core {

struct InterfaceOptions {
  /// When set, events are persisted for replay; when null the layer is
  /// delivery-only (no fault tolerance), like a bare native monitor.
  std::optional<eventstore::EventStoreOptions> store;
  /// Deliver callbacks in batches up to this size.
  std::size_t delivery_batch = 256;
};

using SubscriptionId = std::uint64_t;

class InterfaceLayer {
 public:
  using EventSink = std::function<void(const std::vector<StdEvent>&)>;

  explicit InterfaceLayer(InterfaceOptions options);

  /// Register a subscriber; events matching `rule` are delivered to
  /// `sink` (on the resolution worker thread).
  SubscriptionId subscribe(FilterRule rule, EventSink sink);
  void unsubscribe(SubscriptionId id);
  std::size_t subscriber_count() const;

  /// Ingest a processed batch from the resolution layer: assign ids,
  /// persist, dispatch to matching subscribers.
  void ingest(std::vector<StdEvent> batch);

  /// Replay: events with id > after_id from the event store. Requires a
  /// configured store.
  common::Result<std::vector<StdEvent>> events_since(common::EventId after_id,
                                                     std::size_t max_events = SIZE_MAX) const;

  /// Flag events as reported; they become eligible for the next purge
  /// cycle.
  void acknowledge(common::EventId up_to_id);

  /// Drop acknowledged events from the store; returns records removed.
  std::size_t purge();

  common::EventId last_event_id() const;
  std::uint64_t ingested() const;
  bool has_store() const { return store_ != nullptr; }
  const eventstore::EventStore* store() const { return store_.get(); }

 private:
  struct Subscription {
    FilterRule rule;
    EventSink sink;
  };

  InterfaceOptions options_;
  std::unique_ptr<eventstore::EventStore> store_;
  mutable std::mutex mu_;
  std::map<SubscriptionId, Subscription> subscriptions_;
  SubscriptionId next_subscription_ = 1;
  common::EventId next_event_id_ = 1;
  std::uint64_t ingested_ = 0;
};

}  // namespace fsmon::core
