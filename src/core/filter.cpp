#include "src/core/filter.hpp"

#include "src/common/string_util.hpp"

namespace fsmon::core {

bool FilterRule::matches(const StdEvent& event) const {
  const std::string path = common::normalize_path(event.path);
  const std::string rule_root = common::normalize_path(root);
  if (!common::is_under(path, rule_root)) return false;
  if (!recursive) {
    // Direct children only: the parent of the event path must be exactly
    // the rule root.
    if (common::parent_path(path) != rule_root) return false;
  }
  if (!name_pattern.empty() &&
      !common::glob_match(name_pattern, common::base_name(path)))
    return false;
  if (kinds && kinds->count(event.kind) == 0) return false;
  return true;
}

FilterMetrics FilterMetrics::create(obs::MetricsRegistry& registry,
                                    const obs::Labels& labels) {
  FilterMetrics m;
  m.evaluations = &registry.counter("filter.evaluations", labels,
                                    "Events run through a subscriber's rule set",
                                    "events");
  m.matches = &registry.counter("filter.matches", labels,
                                "Events accepted by at least one rule", "events");
  m.drops = &registry.counter("filter.drops", labels,
                              "Events rejected by every rule in the set", "events");
  return m;
}

bool matches_any(std::span<const FilterRule> rules, const StdEvent& event,
                 const FilterMetrics* metrics) {
  bool matched = rules.empty();
  if (!matched) {
    for (const auto& rule : rules) {
      if (rule.matches(event)) {
        matched = true;
        break;
      }
    }
  }
  if (metrics != nullptr) {
    metrics->evaluations->inc();
    (matched ? metrics->matches : metrics->drops)->inc();
  }
  return matched;
}

}  // namespace fsmon::core
