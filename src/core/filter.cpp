#include "src/core/filter.hpp"

#include "src/common/string_util.hpp"

namespace fsmon::core {

bool FilterRule::matches(const StdEvent& event) const {
  const std::string path = common::normalize_path(event.path);
  const std::string rule_root = common::normalize_path(root);
  if (!common::is_under(path, rule_root)) return false;
  if (!recursive) {
    // Direct children only: the parent of the event path must be exactly
    // the rule root.
    if (common::parent_path(path) != rule_root) return false;
  }
  if (!name_pattern.empty() &&
      !common::glob_match(name_pattern, common::base_name(path)))
    return false;
  if (kinds && kinds->count(event.kind) == 0) return false;
  return true;
}

FilterMetrics FilterMetrics::create(obs::MetricsRegistry& registry,
                                    const obs::Labels& labels) {
  FilterMetrics m;
  m.evaluations = &registry.counter("filter.evaluations", labels,
                                    "Events run through a subscriber's rule set",
                                    "events");
  m.matches = &registry.counter("filter.matches", labels,
                                "Events accepted by at least one rule", "events");
  m.drops = &registry.counter("filter.drops", labels,
                              "Events rejected by every rule in the set", "events");
  return m;
}

KindMask kind_mask(const std::optional<std::set<EventKind>>& kinds) {
  if (!kinds) return kAllKinds;
  KindMask mask = 0;
  for (EventKind kind : *kinds)
    mask |= static_cast<KindMask>(1u << static_cast<std::uint8_t>(kind));
  return mask;
}

std::vector<std::string> path_components(std::string_view normalized_path) {
  std::vector<std::string> components;
  std::size_t pos = 0;
  while (pos < normalized_path.size()) {
    if (normalized_path[pos] == '/') {
      ++pos;
      continue;
    }
    std::size_t end = normalized_path.find('/', pos);
    if (end == std::string_view::npos) end = normalized_path.size();
    components.emplace_back(normalized_path.substr(pos, end - pos));
    pos = end;
  }
  return components;
}

CompiledRule CompiledRule::compile(const FilterRule& rule) {
  CompiledRule compiled;
  compiled.root = common::normalize_path(rule.root);
  compiled.components = path_components(compiled.root);
  compiled.recursive = rule.recursive;
  compiled.name_pattern = rule.name_pattern;
  compiled.kinds = kind_mask(rule.kinds);
  return compiled;
}

bool CompiledRule::matches(std::string_view normalized_path,
                           std::string_view base, EventKind kind) const {
  if (!mask_accepts(kinds, kind)) return false;
  if (!common::is_under(normalized_path, root)) return false;
  if (!recursive) {
    // Direct children only. is_under already established the prefix, so
    // the parent check reduces to: the remainder after the root holds
    // exactly one more component. The root "/" quirk — parent_path("/")
    // is "/" itself, so a non-recursive "/" rule matches the event path
    // "/" — is preserved (depth(path) == 1, or path == root == "/").
    if (root.size() == 1) {  // root == "/"
      if (normalized_path.size() > 1 &&
          normalized_path.find('/', 1) != std::string_view::npos)
        return false;
    } else {
      if (normalized_path.size() <= root.size()) return false;  // path == root
      if (normalized_path.find('/', root.size() + 1) != std::string_view::npos)
        return false;
    }
  }
  if (!name_pattern.empty() && !common::glob_match(name_pattern, base))
    return false;
  return true;
}

CompiledRuleSet::CompiledRuleSet(std::span<const FilterRule> rules,
                                 FilterMetrics metrics)
    : metrics_(metrics) {
  rules_.reserve(rules.size());
  for (const auto& rule : rules) rules_.push_back(CompiledRule::compile(rule));
}

bool CompiledRuleSet::matches(const StdEvent& event) const {
  if (rules_.empty()) return true;
  const std::string path = common::normalize_path(event.path);
  const std::string base = common::base_name(path);
  for (const auto& rule : rules_) {
    if (rule.matches(path, base, event.kind)) return true;
  }
  return false;
}

void CompiledRuleSet::filter_batch(std::span<const StdEvent> events,
                                   std::vector<std::uint32_t>& out) const {
  std::uint64_t matched = 0;
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    if (matches(events[i])) {
      out.push_back(i);
      ++matched;
    }
  }
  metrics_.count(matched, events.size() - matched);
}

bool matches_any(std::span<const FilterRule> rules, const StdEvent& event,
                 const FilterMetrics* metrics) {
  bool matched = rules.empty();
  if (!matched) {
    for (const auto& rule : rules) {
      if (rule.matches(event)) {
        matched = true;
        break;
      }
    }
  }
  if (metrics != nullptr) {
    metrics->evaluations->inc();
    (matched ? metrics->matches : metrics->drops)->inc();
  }
  return matched;
}

}  // namespace fsmon::core
