#include "src/core/filter.hpp"

#include "src/common/string_util.hpp"

namespace fsmon::core {

bool FilterRule::matches(const StdEvent& event) const {
  const std::string path = common::normalize_path(event.path);
  const std::string rule_root = common::normalize_path(root);
  if (!common::is_under(path, rule_root)) return false;
  if (!recursive) {
    // Direct children only: the parent of the event path must be exactly
    // the rule root.
    if (common::parent_path(path) != rule_root) return false;
  }
  if (!name_pattern.empty() &&
      !common::glob_match(name_pattern, common::base_name(path)))
    return false;
  if (kinds && kinds->count(event.kind) == 0) return false;
  return true;
}

}  // namespace fsmon::core
