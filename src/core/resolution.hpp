// Resolution layer.
//
// "The resolution layer provides a multi-faceted approach to reliably
// recording and aggregating events from the DSIs and then reporting
// them to the interface layer. This layer includes a queue to receive
// and manage events until they are processed ... events are then
// processed to resolve and dereference paths" (Section III-A2).
//
// Events submitted by a DSI land in a bounded processing queue; a worker
// thread drains them in batches, normalizes paths relative to the watch
// root, stamps missing timestamps, and hands batches to the interface
// layer's sink. Batching is the layer's main throughput optimization.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bounded_queue.hpp"
#include "src/common/clock.hpp"
#include "src/core/event.hpp"

namespace fsmon::core {

struct ResolutionOptions {
  std::size_t queue_capacity = 65536;
  common::OverflowPolicy overflow_policy = common::OverflowPolicy::kBlock;
  std::size_t batch_size = 256;
  /// Watch root used to relativize event paths.
  std::string watch_root = "/";
};

class ResolutionLayer {
 public:
  /// `sink` receives processed batches on the worker thread.
  using BatchSink = std::function<void(std::vector<StdEvent>)>;

  ResolutionLayer(ResolutionOptions options, common::Clock& clock);
  ~ResolutionLayer();

  ResolutionLayer(const ResolutionLayer&) = delete;
  ResolutionLayer& operator=(const ResolutionLayer&) = delete;

  /// Start the processing thread.
  void start(BatchSink sink);

  /// Drain the queue and stop the worker. Idempotent.
  void stop();

  /// Entry point for DSIs. Returns false when the queue rejected the
  /// event (DropNewest policy at capacity, or stopped).
  bool submit(StdEvent event);

  /// Normalize one event in place (exposed for tests): relativize the
  /// path against the watch root, normalize separators, stamp time.
  void resolve(StdEvent& event) const;

  std::uint64_t processed() const { return processed_.load(std::memory_order_relaxed); }
  std::uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return queue_.dropped(); }
  std::size_t queue_depth() const { return queue_.size(); }
  const ResolutionOptions& options() const { return options_; }

 private:
  void run(BatchSink sink);

  ResolutionOptions options_;
  common::Clock& clock_;
  common::BoundedQueue<StdEvent> queue_;
  std::jthread worker_;
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> batches_{0};
};

}  // namespace fsmon::core
