#include "src/core/resolution.hpp"

#include "src/common/string_util.hpp"

namespace fsmon::core {

ResolutionLayer::ResolutionLayer(ResolutionOptions options, common::Clock& clock)
    : options_(std::move(options)),
      clock_(clock),
      queue_(options_.queue_capacity, options_.overflow_policy) {
  options_.watch_root = common::normalize_path(options_.watch_root);
}

ResolutionLayer::~ResolutionLayer() { stop(); }

void ResolutionLayer::start(BatchSink sink) {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  worker_ = std::jthread([this, sink = std::move(sink)] { run(sink); });
}

void ResolutionLayer::stop() {
  queue_.close();
  if (worker_.joinable()) worker_.join();
  started_.store(false);
}

bool ResolutionLayer::submit(StdEvent event) { return queue_.push(std::move(event)); }

void ResolutionLayer::resolve(StdEvent& event) const {
  // Relativize: DSIs may deliver absolute host paths or already-relative
  // logical paths; after resolution, event.path is always the normalized
  // path relative to the watch root and event.watch_root is the root.
  std::string path = common::normalize_path(event.path);
  if (options_.watch_root != "/" && common::is_under(path, options_.watch_root)) {
    path = path.substr(options_.watch_root.size());
    if (path.empty()) path = "/";
  }
  event.path = std::move(path);
  event.watch_root = options_.watch_root;
  if (event.timestamp == common::TimePoint{}) event.timestamp = clock_.now();
}

void ResolutionLayer::run(BatchSink sink) {
  for (;;) {
    auto batch = queue_.pop_batch(options_.batch_size);
    if (batch.empty()) break;  // closed and drained
    for (auto& event : batch) resolve(event);
    processed_.fetch_add(batch.size(), std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    sink(std::move(batch));
  }
}

}  // namespace fsmon::core
