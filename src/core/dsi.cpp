#include "src/core/dsi.hpp"

#include <algorithm>

namespace fsmon::core {

using common::ErrorCode;
using common::Result;
using common::Status;

void DsiRegistry::register_dsi(std::string scheme, Factory factory, Probe probe) {
  // Re-registering a scheme replaces the previous entry (tests swap in
  // fakes).
  std::erase_if(entries_, [&](const Entry& e) { return e.scheme == scheme; });
  entries_.push_back(Entry{std::move(scheme), std::move(factory), std::move(probe)});
}

bool DsiRegistry::has_scheme(const std::string& scheme) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.scheme == scheme; });
}

std::vector<std::string> DsiRegistry::schemes() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.scheme);
  return out;
}

Result<std::unique_ptr<DsiBase>> DsiRegistry::create(
    const StorageDescriptor& descriptor) const {
  if (!descriptor.scheme.empty()) {
    for (const auto& entry : entries_) {
      if (entry.scheme == descriptor.scheme) return entry.factory(descriptor);
    }
    return Status(ErrorCode::kNotFound, "no DSI for scheme: " + descriptor.scheme);
  }
  const Entry* best = nullptr;
  int best_score = 0;
  for (const auto& entry : entries_) {
    if (!entry.probe) continue;
    const int score = entry.probe(descriptor);
    if (score > best_score) {
      best = &entry;
      best_score = score;
    }
  }
  if (best == nullptr)
    return Status(ErrorCode::kNotFound, "no DSI matches storage root: " + descriptor.root);
  return best->factory(descriptor);
}

DsiRegistry& DsiRegistry::global() {
  static DsiRegistry registry;
  return registry;
}

}  // namespace fsmon::core
