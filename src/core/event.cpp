#include "src/core/event.hpp"

#include <cstring>

namespace fsmon::core {

using common::ErrorCode;
using common::Result;
using common::Status;

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kCreate: return "CREATE";
    case EventKind::kModify: return "MODIFY";
    case EventKind::kAttrib: return "ATTRIB";
    case EventKind::kClose: return "CLOSE";
    case EventKind::kOpen: return "OPEN";
    case EventKind::kDelete: return "DELETE";
    case EventKind::kMovedFrom: return "MOVED_FROM";
    case EventKind::kMovedTo: return "MOVED_TO";
  }
  return "?";
}

std::optional<EventKind> parse_event_kind(std::string_view text) {
  static constexpr EventKind kAll[] = {
      EventKind::kCreate, EventKind::kModify,    EventKind::kAttrib, EventKind::kClose,
      EventKind::kOpen,   EventKind::kDelete,    EventKind::kMovedFrom,
      EventKind::kMovedTo,
  };
  for (EventKind k : kAll) {
    if (to_string(k) == text) return k;
  }
  return std::nullopt;
}

std::string StdEvent::full_path() const {
  if (watch_root == "/" || watch_root.empty()) return path;
  return watch_root + path;
}

std::string to_inotify_line(const StdEvent& event) {
  std::string line;
  line.reserve(event.watch_root.size() + event.path.size() + 24);
  line += event.watch_root;
  line += ' ';
  line += to_string(event.kind);
  if (event.is_dir) line += ",ISDIR";
  line += ' ';
  line += event.path;
  return line;
}

namespace {

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void put_string(std::vector<std::byte>& out, const std::string& s) {
  put_u64(out, s.size());
  for (char c : s) out.push_back(static_cast<std::byte>(c));
}

bool get_u64(std::span<const std::byte> in, std::size_t& offset, std::uint64_t& v) {
  if (in.size() - offset < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(in[offset + static_cast<std::size_t>(i)]) << (8 * i);
  offset += 8;
  return true;
}

bool get_string(std::span<const std::byte> in, std::size_t& offset, std::string& s) {
  std::uint64_t len = 0;
  if (!get_u64(in, offset, len)) return false;
  if (len > (1ull << 30) || in.size() - offset < len) return false;
  s.resize(len);
  std::memcpy(s.data(), in.data() + offset, len);
  offset += len;
  return true;
}

}  // namespace

void serialize_event(const StdEvent& event, std::vector<std::byte>& out) {
  put_u64(out, event.id);
  out.push_back(static_cast<std::byte>(event.kind));
  out.push_back(static_cast<std::byte>(event.is_dir ? 1 : 0));
  put_u64(out, event.cookie);
  put_u64(out, static_cast<std::uint64_t>(event.timestamp.time_since_epoch().count()));
  put_string(out, event.watch_root);
  put_string(out, event.path);
  put_string(out, event.source);
}

std::vector<std::byte> serialize_event(const StdEvent& event) {
  std::vector<std::byte> out;
  serialize_event(event, out);
  return out;
}

Result<std::pair<StdEvent, std::size_t>> deserialize_event(std::span<const std::byte> in) {
  StdEvent event;
  std::size_t offset = 0;
  std::uint64_t id = 0;
  if (!get_u64(in, offset, id))
    return Status(ErrorCode::kCorrupt, "event: truncated id");
  event.id = id;
  if (in.size() - offset < 2) return Status(ErrorCode::kCorrupt, "event: truncated header");
  const auto kind_raw = static_cast<std::uint8_t>(in[offset++]);
  if (kind_raw > static_cast<std::uint8_t>(EventKind::kMovedTo))
    return Status(ErrorCode::kCorrupt, "event: bad kind");
  event.kind = static_cast<EventKind>(kind_raw);
  event.is_dir = in[offset++] != std::byte{0};
  if (!get_u64(in, offset, event.cookie))
    return Status(ErrorCode::kCorrupt, "event: truncated cookie");
  std::uint64_t ts = 0;
  if (!get_u64(in, offset, ts)) return Status(ErrorCode::kCorrupt, "event: truncated time");
  event.timestamp = common::TimePoint{common::Duration{static_cast<std::int64_t>(ts)}};
  if (!get_string(in, offset, event.watch_root) || !get_string(in, offset, event.path) ||
      !get_string(in, offset, event.source))
    return Status(ErrorCode::kCorrupt, "event: truncated strings");
  return std::make_pair(std::move(event), offset);
}

}  // namespace fsmon::core
